# Resolves GoogleTest and guarantees the GTest::gtest_main target exists.
#
# Resolution order:
#   1. When sanitizing, or when no prebuilt package exists: build from the
#      Debian/Ubuntu source package at /usr/src/googletest so the test
#      framework is compiled with the same flags (and sanitizer) as the
#      code under test.
#   2. A system-installed package via find_package(GTest).
#   3. FetchContent from GitHub — only reachable on networked machines;
#      offline builds are expected to be served by (1) or (2).

if(TARGET GTest::gtest_main)
  return()
endif()

set(_slim_gtest_src "/usr/src/googletest")

# A prebuilt (uninstrumented) libgtest.a must not be mixed into a
# sanitized build, so prefer the source package when SLIM_SANITIZE is set —
# and link slim_build_flags into the gtest targets themselves so the
# framework is actually compiled with the sanitizer.
if(SLIM_SANITIZE AND EXISTS "${_slim_gtest_src}/CMakeLists.txt")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${_slim_gtest_src}" "${CMAKE_BINARY_DIR}/_deps/googletest"
    EXCLUDE_FROM_ALL)
  target_link_libraries(gtest PRIVATE slim_build_flags)
  target_link_libraries(gtest_main PRIVATE slim_build_flags)
  # The source package predates the namespaced aliases on some distros.
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  return()
endif()

find_package(GTest QUIET)
if(TARGET GTest::gtest_main)
  return()
endif()

if(EXISTS "${_slim_gtest_src}/CMakeLists.txt")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  add_subdirectory("${_slim_gtest_src}" "${CMAKE_BINARY_DIR}/_deps/googletest"
    EXCLUDE_FROM_ALL)
  if(NOT TARGET GTest::gtest_main)
    add_library(GTest::gtest_main ALIAS gtest_main)
    add_library(GTest::gtest ALIAS gtest)
  endif()
  return()
endif()

include(FetchContent)
FetchContent_Declare(googletest
  URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
  URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
FetchContent_MakeAvailable(googletest)
