// Quickstart: link two anonymised mobility datasets end to end.
//
// Generates a small taxi workload, splits it into two "services" with
// unrelated anonymised ids (only half the entities appear in both), runs
// SLIM with paper-default parameters, and prints the discovered links with
// their similarity scores.
//
// Build & run:
//   cmake -B build -S . && cmake --build build -j
//   ./build/examples/quickstart
#include <cstdio>

#include "slim.h"

int main() {
  // 1. A mobility workload. In real use, load your own data instead:
  //      auto ds = slim::ReadCsv("records.csv", "my-service");
  slim::CabGeneratorOptions gen;
  gen.num_taxis = 40;
  gen.duration_days = 2.0;
  gen.record_interval_seconds = 300.0;
  const slim::LocationDataset master = slim::GenerateCabDataset(gen);
  std::printf("master workload: %zu entities, %zu records\n",
              master.num_entities(), master.num_records());

  // 2. Derive two overlapping, independently sampled "services". Each
  //    record lands in either side with probability 0.5 and the sides share
  //    only half of their entities — the realistic setting where neither
  //    dataset is a subset of the other.
  slim::PairSampleOptions sampling;
  sampling.entities_per_side = 20;
  sampling.intersection_ratio = 0.5;
  sampling.inclusion_probability = 0.5;
  auto sample = slim::SampleLinkedPair(master, sampling);
  if (!sample.ok()) {
    std::fprintf(stderr, "sampling failed: %s\n",
                 sample.status().ToString().c_str());
    return 1;
  }
  std::printf("service A: %zu entities; service B: %zu entities; "
              "%zu truly shared\n",
              sample->a.num_entities(), sample->b.num_entities(),
              sample->truth.size());

  // 3. Link. SlimConfig defaults follow the paper: level-12 cells,
  //    15-minute windows, b = 0.5, alpha = 2 km/min.
  slim::SlimConfig config;
  const slim::SlimLinker linker(config);
  auto result = linker.Link(sample->a, sample->b);
  if (!result.ok()) {
    std::fprintf(stderr, "linkage failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the links.
  std::printf("\nSLIM produced %zu links (stop threshold %s at %.1f):\n",
              result->links.size(),
              result->threshold_valid ? "detected" : "not applicable",
              result->threshold_valid ? result->threshold.threshold : 0.0);
  for (const slim::LinkedEntityPair& link : result->links) {
    std::printf("  A:%-4lld  <->  B:%-4lld   score %.1f   %s\n",
                static_cast<long long>(link.u),
                static_cast<long long>(link.v), link.score,
                sample->truth.AreLinked(link.u, link.v) ? "(correct)"
                                                        : "(FALSE LINK)");
  }

  // 5. Score against the ground truth (only available because we generated
  //    the data ourselves — real deployments have no such luxury).
  const slim::LinkageQuality q =
      slim::EvaluateLinks(result->links, sample->truth);
  std::printf("\nprecision %.3f   recall %.3f   F1 %.3f\n", q.precision,
              q.recall, q.f1);
  std::printf("pairs scored: %llu of %llu possible; record comparisons: %s\n",
              static_cast<unsigned long long>(result->candidate_pairs),
              static_cast<unsigned long long>(result->possible_pairs),
              slim::FormatWithCommas(
                  static_cast<int64_t>(result->stats.record_comparisons))
                  .c_str());
  return 0;
}
