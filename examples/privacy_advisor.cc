// Privacy advisor: estimate the re-identification risk of an "anonymised"
// mobility dataset (the paper's motivating privacy application, Sec. 1).
//
// Scenario: a check-in service wants to release an anonymised dump of its
// location records. An attacker holds a second, public dataset (here: the
// other half of the same underlying behaviour). The advisor runs SLIM as
// the attacker would and reports, per released entity, how exposed it is:
// whether it was linked, with what score margin, and which of its
// time-location bins carried the most identifying signal (lowest idf).
#include <algorithm>
#include <cstdio>

#include "slim.h"

int main() {
  // The "world": sparse check-in behaviour across a handful of cities.
  slim::CheckinGeneratorOptions gen;
  gen.num_users = 600;
  gen.num_cities = 12;
  const slim::LocationDataset world = slim::GenerateCheckinDataset(gen);

  // The release (dataset A) and the attacker's side information (B).
  slim::PairSampleOptions sampling;
  sampling.entities_per_side = 220;
  sampling.intersection_ratio = 0.6;
  sampling.inclusion_probability = 0.7;
  auto sample = slim::SampleLinkedPair(world, sampling);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }

  // Attack: SLIM with wider windows (check-ins are sparse).
  slim::SlimConfig config;
  config.history.window_seconds = 3600;
  const slim::SlimLinker linker(config);
  auto result = linker.Link(sample->a, sample->b);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  const size_t released = sample->a.num_entities();
  const size_t linked = result->links.size();
  size_t correctly = 0;
  for (const auto& link : result->links) {
    correctly += sample->truth.AreLinked(link.u, link.v) ? 1 : 0;
  }
  std::printf("privacy assessment of the released dataset\n");
  std::printf("  released entities:            %zu\n", released);
  std::printf("  linked by the attacker:       %zu (%.1f%%)\n", linked,
              100.0 * static_cast<double>(linked) /
                  static_cast<double>(released));
  std::printf("  of which correctly re-identified: %zu\n", correctly);

  // Per-entity exposure: the most exposed released entities, ranked by how
  // far their link score clears the stop threshold.
  struct Exposure {
    slim::EntityId entity;
    double margin;
    double score;
  };
  std::vector<Exposure> exposures;
  const double threshold =
      result->threshold_valid ? result->threshold.threshold : 0.0;
  for (const auto& link : result->links) {
    exposures.push_back({link.u, link.score - threshold, link.score});
  }
  std::sort(exposures.begin(), exposures.end(),
            [](const Exposure& a, const Exposure& b) {
              return a.margin > b.margin;
            });

  // Identifying-signal analysis: the rarest bins of the top exposures.
  const slim::HistoryConfig hc = config.history;
  const slim::HistorySet histories = slim::HistorySet::Build(sample->a, hc);
  std::printf("\nmost exposed released entities:\n");
  std::printf("  %-8s %-10s %-10s %s\n", "entity", "score", "margin",
              "rarest visited bin (idf)");
  const size_t top = std::min<size_t>(exposures.size(), 8);
  for (size_t k = 0; k < top; ++k) {
    const auto& ex = exposures[k];
    const slim::MobilityHistory* h = histories.Find(ex.entity);
    double max_idf = 0.0;
    slim::TimeLocationBin rarest;
    if (h != nullptr) {
      for (const auto& bin : h->bins()) {
        const double idf = histories.Idf(bin.window, bin.cell);
        if (idf > max_idf) {
          max_idf = idf;
          rarest = bin;
        }
      }
    }
    std::printf("  %-8lld %-10.1f %-10.1f cell %s @ window %lld (%.2f)\n",
                static_cast<long long>(ex.entity), ex.score, ex.margin,
                rarest.cell.IsValid() ? rarest.cell.ToToken().c_str() : "-",
                static_cast<long long>(rarest.window), max_idf);
  }

  std::printf(
      "\nadvice: entities above are linkable from spatio-temporal shape "
      "alone;\ncoarsening their rare bins (or suppressing those windows) "
      "before release\nwould cut the top identifying signal.\n");
  return 0;
}
