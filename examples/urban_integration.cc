// Urban data integration: fuse two partial mobility datasets into one
// unified view (the paper's urban-planning motivation, Sec. 1).
//
// Two sensing systems observe the same fleet — say, a taxi-meter feed and a
// wifi-positioning feed — each catching only part of each vehicle's
// movement. Counting either feed alone under- or over-estimates density.
// SLIM links the entities across the feeds; the example then merges each
// linked pair's records and compares hourly coverage of the unified
// dataset against the single-feed views.
#include <cstdio>
#include <unordered_map>

#include "slim.h"

int main() {
  slim::CabGeneratorOptions gen;
  gen.num_taxis = 50;
  gen.duration_days = 2.0;
  gen.record_interval_seconds = 300.0;
  const slim::LocationDataset fleet = slim::GenerateCabDataset(gen);

  // Two sensing systems: asynchronous sightings of the same fleet.
  slim::PairSampleOptions sampling;
  sampling.entities_per_side = 30;
  sampling.intersection_ratio = 0.8;
  sampling.inclusion_probability = 0.4;
  auto sample = slim::SampleLinkedPair(fleet, sampling);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }
  const slim::LocationDataset& meter_feed = sample->a;
  const slim::LocationDataset& wifi_feed = sample->b;

  // Link the feeds.
  slim::SlimConfig config;
  const slim::SlimLinker linker(config);
  auto result = linker.Link(meter_feed, wifi_feed);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  size_t correct = 0;
  for (const auto& link : result->links) {
    correct += sample->truth.AreLinked(link.u, link.v) ? 1 : 0;
  }
  std::printf("linked %zu vehicle identities across the two feeds "
              "(%zu verified correct)\n\n",
              result->links.size(), correct);

  // Build the unified dataset: merged records for linked vehicles, plus
  // the unlinked remainder of both feeds under fresh ids.
  slim::LocationDataset unified("unified");
  std::unordered_map<slim::EntityId, slim::EntityId> meter_to_unified;
  std::unordered_map<slim::EntityId, slim::EntityId> wifi_to_unified;
  slim::EntityId next_id = 0;
  for (const auto& link : result->links) {
    meter_to_unified[link.u] = next_id;
    wifi_to_unified[link.v] = next_id;
    ++next_id;
  }
  for (slim::EntityId e : meter_feed.entity_ids()) {
    if (!meter_to_unified.count(e)) meter_to_unified[e] = next_id++;
  }
  for (slim::EntityId e : wifi_feed.entity_ids()) {
    if (!wifi_to_unified.count(e)) wifi_to_unified[e] = next_id++;
  }
  for (const slim::Record& r : meter_feed.records()) {
    unified.Add(meter_to_unified.at(r.entity), r.location, r.timestamp);
  }
  for (const slim::Record& r : wifi_feed.records()) {
    unified.Add(wifi_to_unified.at(r.entity), r.location, r.timestamp);
  }
  unified.Finalize();

  // Without linkage, a naive union would double-count every linked
  // vehicle.
  const size_t naive_union =
      meter_feed.num_entities() + wifi_feed.num_entities();
  std::printf("fleet size estimates\n");
  std::printf("  meter feed alone:         %zu vehicles\n",
              meter_feed.num_entities());
  std::printf("  wifi feed alone:          %zu vehicles\n",
              wifi_feed.num_entities());
  std::printf("  naive union (no linkage): %zu vehicles (double-counts)\n",
              naive_union);
  std::printf("  unified via SLIM:         %zu vehicles\n\n",
              unified.num_entities());

  // Coverage: mean observed sightings per vehicle per 6h bucket.
  auto coverage = [](const slim::LocationDataset& ds) {
    if (ds.num_entities() == 0) return 0.0;
    std::unordered_map<int64_t, size_t> per_bucket;
    for (const slim::Record& r : ds.records()) {
      ++per_bucket[slim::WindowIndexOf(r.timestamp, 6 * 3600)];
    }
    double total = 0.0;
    for (const auto& [bucket, n] : per_bucket) {
      total += static_cast<double>(n);
    }
    return total / (static_cast<double>(per_bucket.size()) *
                    static_cast<double>(ds.num_entities()));
  };
  std::printf("sightings per vehicle per 6-hour bucket\n");
  std::printf("  meter feed alone: %.1f\n", coverage(meter_feed));
  std::printf("  wifi feed alone:  %.1f\n", coverage(wifi_feed));
  std::printf("  unified:          %.1f\n", coverage(unified));
  return 0;
}
