// Operating the scalability layer: auto-tune the spatial level (Sec. 3.3)
// and pick LSH parameters with the S-curve math (Sec. 4).
//
// Walks through what a deployment would do before a big linkage run:
// 1. auto-detect the spatial level for the chosen window width,
// 2. inspect the Lambert-W band sizing and collision S-curve for a few
//    candidate LSH thresholds,
// 3. run the linkage with and without LSH and report the cost/quality
//    trade actually realised.
#include <cstdio>

#include "slim.h"

int main() {
  slim::CabGeneratorOptions gen;
  gen.num_taxis = 60;
  gen.duration_days = 2.0;
  gen.record_interval_seconds = 300.0;
  const slim::LocationDataset master = slim::GenerateCabDataset(gen);

  slim::PairSampleOptions sampling;
  sampling.entities_per_side = 35;
  auto sample = slim::SampleLinkedPair(master, sampling);
  if (!sample.ok()) {
    std::fprintf(stderr, "%s\n", sample.status().ToString().c_str());
    return 1;
  }

  // --- Step 1: spatial level auto-tuning (Sec. 3.3). ---
  slim::TuningOptions tuning;
  tuning.window_seconds = 900;
  auto level = slim::AutoTuneSpatialLevelForPair(sample->a, sample->b,
                                                 tuning);
  if (!level.ok()) {
    std::fprintf(stderr, "%s\n", level.status().ToString().c_str());
    return 1;
  }
  std::printf("auto-tuned spatial level for 15-minute windows: %d\n\n",
              *level);

  // --- Step 2: banding math for the LSH layer (Sec. 4). ---
  // With 2-hour queries over this dataset's span, the signature length is
  // span / step; size the bands for a few thresholds.
  const auto [t_lo, t_hi] = sample->a.TimeRange();
  const size_t signature_size = static_cast<size_t>(
      ((t_hi - t_lo) / 900 + 1 + 7) / 8);  // 8-leaf-window queries
  std::printf("signature length at 2-hour queries: %zu\n", signature_size);
  std::printf("%-12s %-7s %-6s %-22s\n", "threshold t", "bands", "rows",
              "P(collide) at s=t / s=t+-0.2");
  for (double t : {0.4, 0.6, 0.8}) {
    const int b = slim::ComputeNumBands(signature_size, t);
    const int r = static_cast<int>((signature_size +
                                    static_cast<size_t>(b) - 1) /
                                   static_cast<size_t>(b));
    std::printf("%-12.1f %-7d %-6d %.2f / %.2f / %.2f\n", t, b, r,
                slim::BandCollisionProbability(t - 0.2, r, b),
                slim::BandCollisionProbability(t, r, b),
                slim::BandCollisionProbability(t + 0.2 > 1 ? 1 : t + 0.2, r,
                                               b));
  }

  // --- Step 3: realised cost/quality with and without LSH. ---
  std::printf("\n%-10s %-10s %-12s %-18s %s\n", "mode", "F1", "links",
              "record_compares", "seconds");
  for (bool use_lsh : {false, true}) {
    slim::SlimConfig config;
    config.history.spatial_level = *level;
    config.candidates = use_lsh ? slim::CandidateKind::kLsh
                                : slim::CandidateKind::kBruteForce;
    config.lsh.signature_spatial_level = 10;
    config.lsh.temporal_step_windows = 8;
    config.lsh.similarity_threshold = 0.4;
    auto result = slim::SlimLinker(config).Link(sample->a, sample->b);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const slim::LinkageQuality q =
        slim::EvaluateLinks(result->links, sample->truth);
    std::printf("%-10s %-10.3f %-12zu %-18s %.3f\n",
                use_lsh ? "LSH" : "brute", q.f1, result->links.size(),
                slim::FormatWithCommas(
                    static_cast<int64_t>(result->stats.record_comparisons))
                    .c_str(),
                result->seconds_total);
  }
  return 0;
}
