// Figure 10: ablation study — F1 as a function of the spatial level
// (15-minute windows) and of the window width (level 12), for five
// variants of SLIM:
//   Original          — full scoring (MNN + MFN alibi pass + IDF + norm)
//   MNN               — MFN alibi pass removed
//   All_Pairs         — Cartesian-product pairing instead of MNN
//   No_IDF            — idf multiplier removed
//   No_Normalization  — BM25-style length normalisation removed
//
// Paper shape: all variants agree at narrow windows; All_Pairs collapses
// at wide windows (0.61 vs 0.90 F1 at 720 min); No_Normalization falls
// behind at high spatial detail; No_IDF falls behind at wide windows.
#include <functional>

#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

struct Variant {
  const char* name;
  std::function<void(SimilarityConfig*)> apply;
};

const Variant kVariants[] = {
    {"Original", [](SimilarityConfig*) {}},
    {"MNN", [](SimilarityConfig* c) { c->use_mfn = false; }},
    {"All_Pairs",
     [](SimilarityConfig* c) {
       c->pairing = PairingKind::kAllPairs;
       c->use_mfn = false;
     }},
    {"No_IDF", [](SimilarityConfig* c) { c->use_idf = false; }},
    {"No_Normalization",
     [](SimilarityConfig* c) { c->use_normalization = false; }},
};

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 10", "ablation: F1 vs spatial level and vs window width — Cab",
      "variants tie at 15-min windows; All_Pairs degrades sharply at wide "
      "windows; No_Normalization degrades at high spatial detail; No_IDF "
      "degrades at wide windows");

  const LocationDataset& master = CachedCabMaster(scale);
  auto sample = SampleLinkedPair(master, bench::CabSampleOptions(scale));
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  auto run_one = [&](const Variant& v, int level, int64_t window_min) {
    SlimConfig cfg = bench::DefaultSlimConfig();
    cfg.history.spatial_level = level;
    cfg.history.window_seconds = window_min * 60;
    v.apply(&cfg.similarity);
    auto r = SlimLinker(cfg).Link(sample->a, sample->b);
    SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    return EvaluateLinks(r->links, sample->truth).f1;
  };

  std::printf("\n--- (a) F1 vs spatial level (window = 15 min) ---\n");
  {
    TablePrinter table({"variant", "L8", "L10", "L12", "L14", "L16", "L20",
                        "L24"});
    for (const Variant& v : kVariants) {
      std::vector<std::string> row = {v.name};
      for (int level : {8, 10, 12, 14, 16, 20, 24}) {
        row.push_back(Fmt(run_one(v, level, 15), 3));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  std::printf("\n--- (b) F1 vs window width in minutes (level = 12) ---\n");
  {
    TablePrinter table({"variant", "W5", "W15", "W60", "W120", "W240",
                        "W480", "W720"});
    for (const Variant& v : kVariants) {
      std::vector<std::string> row = {v.name};
      for (int64_t w : {5, 15, 60, 120, 240, 480, 720}) {
        row.push_back(Fmt(run_one(v, 12, w), 3));
      }
      table.AddRow(row);
    }
    table.Print();
  }

  // Sec. 5.4's MFN observation: the optional MFN pass lowers the scores of
  // false-positive pairs. We report the positive-score edges between
  // NON-matching entities in the candidate graph — with the alibi pass on,
  // fewer wrong pairs survive with a positive score and their mean drops.
  std::printf("\n--- MFN effect on false-positive pair scores "
              "(level 12, window 15 min) ---\n");
  for (bool use_mfn : {true, false}) {
    SlimConfig cfg = bench::DefaultSlimConfig();
    cfg.history.spatial_level = 12;
    cfg.history.window_seconds = 900;
    cfg.similarity.use_mfn = use_mfn;
    auto r = SlimLinker(cfg).Link(sample->a, sample->b);
    SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    double fp_sum = 0.0;
    size_t fp_n = 0;
    for (const auto& e : r->graph.edges()) {
      if (!sample->truth.AreLinked(e.u, e.v)) {
        fp_sum += e.weight;
        ++fp_n;
      }
    }
    std::printf("use_mfn=%d  positive-score FP edges: %zu, mean score %.2f\n",
                use_mfn, fp_n,
                fp_n > 0 ? fp_sum / static_cast<double>(fp_n) : 0.0);
  }
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
