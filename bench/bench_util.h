// Shared helpers for the benches: the standard figure header, per-scale
// sampling options, and the machine-readable JSON side of the benchmark
// book (emitter + the minimal reader the regression gate uses). See
// docs/BENCHMARKS.md for how the pieces fit together.
#ifndef SLIM_BENCH_BENCH_UTIL_H_
#define SLIM_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "slim.h"

namespace slim::bench {

/// Parses the number starting at `pos` in a bench JSON blob (skipping any
/// leading spaces and one ':'), returning `fallback` when none is there.
/// std::from_chars keeps this locale-independent: the records are written
/// with to_chars, and a comma-decimal global locale must not change how
/// they read back (strtod would, SLIM-DET-004).
inline double ParseNumberAt(const std::string& json, size_t pos,
                            double fallback = -1.0) {
  while (pos < json.size() &&
         (std::isspace(static_cast<unsigned char>(json[pos])) != 0 ||
          json[pos] == ':')) {
    ++pos;
  }
  double value = fallback;
  if (pos < json.size()) {
    std::from_chars(json.data() + pos, json.data() + json.size(), value);
  }
  return value;
}

/// Prints the standard figure header with the bench scale.
inline void PrintHeader(const char* figure, const char* what,
                        const char* expectation) {
  const char* scale =
      BenchScaleFromEnv() == BenchScale::kFull ? "full" : "small";
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("scale: %s (set SLIM_BENCH_SCALE=full for paper-scale runs)\n",
              scale);
  std::printf("paper shape to reproduce: %s\n", expectation);
  std::printf("==================================================\n");
}

/// Default sampling options for the Cab-style experiments.
inline PairSampleOptions CabSampleOptions(BenchScale scale) {
  PairSampleOptions opt;
  opt.entities_per_side = scale == BenchScale::kFull ? 265 : 60;
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 0.5;
  opt.seed = 11;
  return opt;
}

/// Default sampling options for the SM-style experiments.
inline PairSampleOptions SmSampleOptions(BenchScale scale) {
  PairSampleOptions opt;
  opt.entities_per_side = scale == BenchScale::kFull ? 30000 : 800;
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 0.5;
  opt.seed = 12;
  return opt;
}

/// SLIM defaults used across the benches (paper defaults).
inline SlimConfig DefaultSlimConfig() {
  SlimConfig cfg;
  cfg.history.spatial_level = 12;
  cfg.history.window_seconds = 900;
  cfg.similarity.b = 0.5;
  // Figures opt into LSH explicitly.
  cfg.candidates = CandidateKind::kBruteForce;
  return cfg;
}

/// Minimal streaming JSON emitter for the BENCH_*.json records. Handles
/// separators and nesting; the caller is responsible for emitting keys only
/// inside objects. Numbers use enough precision for wall-clock seconds.
class JsonWriter {
 public:
  JsonWriter& BeginObject() { return Open('{'); }
  JsonWriter& EndObject() { return Close('}'); }
  JsonWriter& BeginArray() { return Open('['); }
  JsonWriter& EndArray() { return Close(']'); }

  JsonWriter& Key(const std::string& k) {
    Separate();
    out_ += '"';
    out_ += k;
    out_ += "\": ";
    pending_value_ = true;
    return *this;
  }

  JsonWriter& Value(const std::string& v) {
    Separate();
    out_ += '"';
    out_ += v;  // bench strings are identifiers/paths; no escaping needed
    out_ += '"';
    return *this;
  }
  JsonWriter& Value(const char* v) { return Value(std::string(v)); }
  JsonWriter& Value(double v) {
    Separate();
    out_ += StrFormat("%.6f", v);
    return *this;
  }
  JsonWriter& Value(uint64_t v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(int v) {
    Separate();
    out_ += std::to_string(v);
    return *this;
  }
  JsonWriter& Value(bool v) {
    Separate();
    out_ += v ? "true" : "false";
    return *this;
  }

  /// The document so far, with a trailing newline.
  std::string str() const { return out_ + "\n"; }

 private:
  JsonWriter& Open(char c) {
    Separate();
    out_ += c;
    out_ += '\n';
    depth_ += 1;
    fresh_ = true;
    return *this;
  }
  JsonWriter& Close(char c) {
    depth_ -= 1;
    out_ += '\n';
    Indent();
    out_ += c;
    fresh_ = false;
    return *this;
  }
  void Separate() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // value following its key: no comma, no indent
    }
    if (!fresh_ && depth_ > 0) out_ += ",\n";
    if (depth_ > 0) Indent();
    fresh_ = false;
  }
  void Indent() { out_.append(static_cast<size_t>(depth_) * 2, ' '); }

  std::string out_;
  int depth_ = 0;
  bool fresh_ = true;
  bool pending_value_ = false;
};

/// One (entities, threads) run of the pipeline bench, as read back from a
/// BENCH_pipeline.json or BENCH_sharded.json; see bench_pipeline.cc /
/// bench_sharded.cc for the writing sides.
struct PipelineRunRecord {
  uint64_t entities = 0;
  int threads = 0;
  // Right-side shard count of the run; 0 for pre-v3 records (monolithic
  // pipeline documents carry no "shards" key).
  int shards = 0;
  // Left-side shard count (slim-bench-scale-v1 two-sided runs); 0 for
  // records that predate two-sided sharding.
  int left_shards = 0;
  // External-sort provenance (slim-bench-scale-v1): bytes written to the
  // spill file including the resort pass, and k-way merge passes run.
  // Both 0 for older records and for in-memory runs.
  uint64_t spill_bytes_written = 0;
  int merge_passes = 0;
  // Stage name -> wall seconds ("histories", "lsh", "scoring", "matching",
  // "total").
  std::vector<std::pair<std::string, double>> seconds;
  // Stage name -> peak process RSS in bytes at the end of that stage.
  // Empty for schema-v1 documents (pre-RSS); the regression gate only uses
  // `seconds`, so v1 baselines keep working.
  std::vector<std::pair<std::string, double>> peak_rss_bytes;

  double StageSeconds(const std::string& stage) const {
    for (const auto& [name, secs] : seconds) {
      if (name == stage) return secs;
    }
    return -1.0;
  }
};

/// The key vocabulary of every bench-record schema the repo has shipped
/// (v1 pipeline seconds, v2 + RSS/distance-cache, v3 + sharding, the
/// kernel-bench v1 family, the scale-bench v1 family). Keys a reader meets
/// outside this list signal baseline/schema drift.
inline bool IsKnownBenchKey(const std::string& key) {
  static const char* const kKnown[] = {
      // Document level.
      "schema", "build", "workload", "quick", "hardware_threads",
      "deterministic",
      "runs", "monolithic_probes", "extrapolated_monolithic",
      "rss_reduction_vs_extrapolated", "target_entities", "exponent",
      // Scale-bench document level (slim-bench-scale-v1, bench_scale.cc).
      "memory_budget_bytes", "sctx_bytes", "monolithic_reference",
      // Run level.
      "entities", "threads", "shards", "links", "links_hash",
      "candidate_pairs", "possible_pairs", "seconds", "speedup_vs_first",
      "peak_rss_bytes", "block_bytes", "distance_cache", "hits", "misses",
      "spilled_edges", "spill_on_disk",
      // Scale-bench run level (two-sided sharding + external sort).
      "left_shards", "spill_bytes_written", "merge_passes",
      // Stage names (inside seconds / speedup / RSS objects).
      "histories", "lsh", "scoring", "matching", "total",
      // Kernel-bench run level (slim-bench-kernel-v1, bench_kernel.cc).
      "op", "shape", "kernel", "reps", "ns_per_element"};
  for (const char* known : kKnown) {
    if (key == known) return true;
  }
  return false;
}

/// A parsed "schema" document value: "<family>-v<N>" -> {family, N}.
struct BenchSchema {
  std::string family;
  int version = 0;
};

/// Extracts the document's "schema" value. Returns false when the key is
/// absent (hand-written pre-schema documents) or the value does not end in
/// "-v<digits>".
inline bool ParseBenchSchema(const std::string& json, BenchSchema* out) {
  const size_t key = json.find("\"schema\"");
  if (key == std::string::npos) return false;
  const size_t open = json.find('"', key + sizeof("\"schema\"") - 1);
  if (open == std::string::npos) return false;
  const size_t close = json.find('"', open + 1);
  if (close == std::string::npos) return false;
  const std::string value = json.substr(open + 1, close - open - 1);
  const size_t dash = value.rfind("-v");
  if (dash == std::string::npos || dash + 2 >= value.size()) return false;
  for (size_t k = dash + 2; k < value.size(); ++k) {
    if (std::isdigit(static_cast<unsigned char>(value[k])) == 0) return false;
  }
  out->family = value.substr(0, dash);
  int version = 0;
  std::from_chars(value.data() + dash + 2, value.data() + value.size(),
                  version);
  out->version = version;
  return true;
}

/// One (family, newest-readable-version) pair a gated reader declares.
struct BenchSchemaLimit {
  const char* family;
  int max_version;
};

/// Guard for gated baseline comparisons. The scanning readers above skip
/// unknown keys, which is safe for *older* baselines but silently wrong for
/// *newer* ones: a future schema may rename or re-scope the very numbers
/// the gate compares, and a half-parsed baseline would then gate against
/// garbage. So a baseline whose schema family is foreign, or whose version
/// is newer than the reader, is rejected outright. Documents without a
/// schema key predate the vocabulary and are accepted as version 0.
/// Returns true when the baseline is safe to compare; logs the reason to
/// stderr otherwise.
inline bool BaselineSchemaReadable(
    const std::string& json, const char* path,
    std::initializer_list<BenchSchemaLimit> readable) {
  BenchSchema schema;
  if (!ParseBenchSchema(json, &schema)) return true;  // pre-schema document
  for (const BenchSchemaLimit& limit : readable) {
    if (schema.family != limit.family) continue;
    if (schema.version <= limit.max_version) return true;
    std::fprintf(stderr,
                 "baseline %s has schema %s-v%d but this reader only "
                 "understands %s up to v%d; regenerate the baseline or "
                 "rebuild a newer bench binary\n",
                 path, schema.family.c_str(), schema.version, limit.family,
                 limit.max_version);
    return false;
  }
  std::fprintf(stderr,
               "baseline %s has schema family \"%s\", which this gate does "
               "not read\n",
               path, schema.family.c_str());
  return false;
}

/// Scans a bench-record document for JSON keys outside the known schema
/// vocabulary and logs each distinct one to stderr — once per process — so
/// v1/v2/v3 baseline drift shows up in CI output instead of being
/// silently skipped by the scanning readers below.
inline void WarnUnknownBenchKeys(const std::string& json) {
  static std::vector<std::string>* warned = new std::vector<std::string>();
  size_t pos = 0;
  while ((pos = json.find('"', pos)) != std::string::npos) {
    const size_t key_end = json.find('"', pos + 1);
    if (key_end == std::string::npos) break;
    size_t after = key_end + 1;
    while (after < json.size() &&
           std::isspace(static_cast<unsigned char>(json[after])) != 0) {
      ++after;
    }
    // A quoted token followed by ':' is a key; anything else is a value.
    if (after < json.size() && json[after] == ':') {
      const std::string key = json.substr(pos + 1, key_end - pos - 1);
      if (!IsKnownBenchKey(key) &&
          std::find(warned->begin(), warned->end(), key) == warned->end()) {
        warned->push_back(key);
        std::fprintf(stderr,
                     "bench_util: skipping unknown bench-record key \"%s\" "
                     "(schema drift? see docs/BENCHMARKS.md)\n",
                     key.c_str());
      }
    }
    pos = key_end + 1;
  }
}

/// Extracts the runs of a BENCH_pipeline.json / BENCH_sharded.json document
/// (schema v1, v2, or v3). Not a general JSON parser: it scans for the
/// known keys in the order the benches emit them ("entities", then
/// "threads", then — v3 only — "shards", then the "seconds" object,
/// then — v2+ — the "peak_rss_bytes" object), which is also resilient to
/// hand-edited whitespace. Unknown keys are skipped (and logged once, see
/// WarnUnknownBenchKeys).
inline std::vector<PipelineRunRecord> ParsePipelineRuns(
    const std::string& json) {
  WarnUnknownBenchKeys(json);
  std::vector<PipelineRunRecord> runs;
  auto number_after = [&](size_t pos) { return ParseNumberAt(json, pos); };
  // Parses the flat { "name": number, ... } object whose key starts at
  // `object_key_pos` into `out`; returns the position of its '}'.
  auto parse_stage_object =
      [&](size_t object_key_pos,
          std::vector<std::pair<std::string, double>>* out) -> size_t {
    const size_t open = json.find('{', object_key_pos);
    const size_t close = json.find('}', object_key_pos);
    if (open == std::string::npos || close == std::string::npos) return close;
    size_t key = open;
    while ((key = json.find('"', key + 1)) != std::string::npos &&
           key < close) {
      const size_t key_end = json.find('"', key + 1);
      if (key_end == std::string::npos || key_end > close) break;
      const std::string name = json.substr(key + 1, key_end - key - 1);
      out->emplace_back(name, number_after(key_end + 1));
      key = json.find(',', key_end);
      if (key == std::string::npos || key > close) break;
    }
    return close;
  };
  size_t pos = 0;
  while ((pos = json.find("\"entities\"", pos)) != std::string::npos) {
    PipelineRunRecord run;
    run.entities =
        static_cast<uint64_t>(number_after(pos + sizeof("\"entities\"") - 1));
    const size_t threads_pos = json.find("\"threads\"", pos);
    if (threads_pos == std::string::npos) break;
    run.threads =
        static_cast<int>(number_after(threads_pos + sizeof("\"threads\"") - 1));
    const size_t seconds_pos = json.find("\"seconds\"", threads_pos);
    if (seconds_pos == std::string::npos) break;
    // v3: an optional per-run shard count between "threads" and "seconds".
    const size_t shards_pos = json.find("\"shards\"", threads_pos);
    if (shards_pos != std::string::npos && shards_pos < seconds_pos) {
      run.shards =
          static_cast<int>(number_after(shards_pos + sizeof("\"shards\"") - 1));
    }
    // scale-v1: optional two-sided-sharding and external-sort fields, also
    // between "threads" and "seconds". ("left_shards" cannot false-match
    // the "shards" probe above: that needle includes the opening quote.)
    const auto optional_field = [&](const char* needle, size_t needle_size) {
      const size_t field = json.find(needle, threads_pos);
      return field != std::string::npos && field < seconds_pos
                 ? number_after(field + needle_size - 1)
                 : -1.0;
    };
    const double left =
        optional_field("\"left_shards\"", sizeof("\"left_shards\""));
    if (left >= 0.0) run.left_shards = static_cast<int>(left);
    const double spill_bytes = optional_field("\"spill_bytes_written\"",
                                              sizeof("\"spill_bytes_written\""));
    if (spill_bytes >= 0.0) {
      run.spill_bytes_written = static_cast<uint64_t>(spill_bytes);
    }
    const double merges =
        optional_field("\"merge_passes\"", sizeof("\"merge_passes\""));
    if (merges >= 0.0) run.merge_passes = static_cast<int>(merges);
    const size_t close = parse_stage_object(seconds_pos, &run.seconds);
    if (close == std::string::npos) break;
    // v2: an optional peak_rss_bytes object belonging to this run (it must
    // appear before the next run's "entities" key to be this run's).
    const size_t rss_pos = json.find("\"peak_rss_bytes\"", close);
    const size_t next_run = json.find("\"entities\"", close);
    if (rss_pos != std::string::npos &&
        (next_run == std::string::npos || rss_pos < next_run)) {
      parse_stage_object(rss_pos, &run.peak_rss_bytes);
    }
    runs.push_back(std::move(run));
    pos = close;
  }
  return runs;
}

}  // namespace slim::bench

#endif  // SLIM_BENCH_BENCH_UTIL_H_
