// Shared helpers for the figure-reproduction benches.
#ifndef SLIM_BENCH_BENCH_UTIL_H_
#define SLIM_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>

#include "slim.h"

namespace slim::bench {

/// Prints the standard figure header with the bench scale.
inline void PrintHeader(const char* figure, const char* what,
                        const char* expectation) {
  const char* scale =
      BenchScaleFromEnv() == BenchScale::kFull ? "full" : "small";
  std::printf("==================================================\n");
  std::printf("%s — %s\n", figure, what);
  std::printf("scale: %s (set SLIM_BENCH_SCALE=full for paper-scale runs)\n",
              scale);
  std::printf("paper shape to reproduce: %s\n", expectation);
  std::printf("==================================================\n");
}

/// Default sampling options for the Cab-style experiments.
inline PairSampleOptions CabSampleOptions(BenchScale scale) {
  PairSampleOptions opt;
  opt.entities_per_side = scale == BenchScale::kFull ? 265 : 60;
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 0.5;
  opt.seed = 11;
  return opt;
}

/// Default sampling options for the SM-style experiments.
inline PairSampleOptions SmSampleOptions(BenchScale scale) {
  PairSampleOptions opt;
  opt.entities_per_side = scale == BenchScale::kFull ? 30000 : 800;
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 0.5;
  opt.seed = 12;
  return opt;
}

/// SLIM defaults used across the benches (paper defaults).
inline SlimConfig DefaultSlimConfig() {
  SlimConfig cfg;
  cfg.history.spatial_level = 12;
  cfg.history.window_seconds = 900;
  cfg.similarity.b = 0.5;
  cfg.use_lsh = false;  // figures enable/parameterise LSH explicitly
  return cfg;
}

}  // namespace slim::bench

#endif  // SLIM_BENCH_BENCH_UTIL_H_
