// Figures 2 and 6: GMM fit over the matched-edge similarity scores and the
// automatically detected stop threshold.
//
// For spatial levels 4, 8, 12 and 16 (window width 90 min, as in Fig. 6)
// this bench prints the two fitted components, the detected threshold, and
// the score histogram split into true-positive and false-positive links
// (ground truth is used for illustration only, exactly as in the paper).
#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "eval/table.h"
#include "stats/histogram.h"

namespace slim {
namespace {

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 6 (and Figure 2)", "GMM fit + stop threshold vs spatial level "
      "(window = 90 min) — Cab",
      "with growing spatial detail the TP/FP weight clusters separate and "
      "the detected threshold tightens; below level 12 the components "
      "overlap and threshold detection is subpar");

  const LocationDataset& master = CachedCabMaster(scale);
  auto sample = SampleLinkedPair(master, bench::CabSampleOptions(scale));
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  for (int level : {4, 8, 12, 16}) {
    SlimConfig cfg = bench::DefaultSlimConfig();
    cfg.history.spatial_level = level;
    cfg.history.window_seconds = 90 * 60;
    cfg.apply_stop_threshold = true;
    const SlimLinker linker(cfg);
    auto r = linker.Link(sample->a, sample->b);
    SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());

    std::printf("\n--- spatial level %d ---\n", level);
    if (!r->threshold_valid) {
      std::printf("threshold detection failed (degenerate weights)\n");
      continue;
    }
    const auto& gmm = r->threshold.gmm;
    std::printf(
        "component m1 (false positives): weight=%.3f mean=%.1f sd=%.1f\n",
        gmm.components[0].weight, gmm.components[0].mean,
        std::sqrt(gmm.components[0].variance));
    std::printf(
        "component m2 (true positives):  weight=%.3f mean=%.1f sd=%.1f\n",
        gmm.components[1].weight, gmm.components[1].mean,
        std::sqrt(gmm.components[1].variance));
    std::printf("detected stop threshold s* = %.2f  "
                "(expected P=%.3f R=%.3f F1=%.3f)\n",
                r->threshold.threshold, r->threshold.expected_precision,
                r->threshold.expected_recall, r->threshold.expected_f1);

    // Separation quality: distance between means in pooled-sd units.
    const double pooled_sd = std::sqrt(0.5 * (gmm.components[0].variance +
                                              gmm.components[1].variance));
    std::printf("component separation: %.2f pooled sds\n",
                (gmm.components[1].mean - gmm.components[0].mean) /
                    pooled_sd);

    // TP/FP histograms over the matched edge weights (illustrative only).
    std::vector<double> tp_w, fp_w, all_w;
    for (const auto& e : r->matching.pairs) {
      all_w.push_back(e.weight);
      (sample->truth.AreLinked(e.u, e.v) ? tp_w : fp_w).push_back(e.weight);
    }
    if (all_w.size() < 2) continue;
    const auto [mn, mx] = std::minmax_element(all_w.begin(), all_w.end());
    const double span = *mx > *mn ? *mx - *mn : 1.0;
    Histogram tp_h(*mn, *mn + span, 20), fp_h(*mn, *mn + span, 20);
    for (double w : tp_w) tp_h.Add(w);
    for (double w : fp_w) fp_h.Add(w);
    std::printf("%12s  %6s  %6s\n", "score_bin", "TP", "FP");
    for (int b = 0; b < 20; ++b) {
      std::printf("%12.1f  %6llu  %6llu%s\n", tp_h.BinLow(b),
                  static_cast<unsigned long long>(tp_h.count(b)),
                  static_cast<unsigned long long>(fp_h.count(b)),
                  (tp_h.BinLow(b) <= r->threshold.threshold &&
                   r->threshold.threshold < tp_h.BinLow(b) + span / 20)
                      ? "   <-- s*"
                      : "");
    }
    const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
    std::printf("realised quality after threshold: P=%.3f R=%.3f F1=%.3f\n",
                q.precision, q.recall, q.f1);
  }
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
