// google-benchmark micro suites for the performance-critical primitives:
// spatial cells, window-tree queries, bin pairing, the SIMD score kernels,
// similarity scoring, LSH index construction, matching, and the GMM fit.
#include <benchmark/benchmark.h>

#include <random>

#include "slim.h"

namespace slim {
namespace {

// ---------------------------------------------------------------- geo ----

void BM_CellFromLatLng(benchmark::State& state) {
  Rng rng(1);
  std::vector<LatLng> pts;
  for (int i = 0; i < 1024; ++i) {
    pts.push_back({rng.NextDouble(-80, 80), rng.NextDouble(-180, 179)});
  }
  const int level = static_cast<int>(state.range(0));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CellId::FromLatLng(pts[i++ & 1023], level));
  }
}
BENCHMARK(BM_CellFromLatLng)->Arg(8)->Arg(16)->Arg(24);

void BM_CellMinDistance(benchmark::State& state) {
  Rng rng(2);
  std::vector<CellId> cells;
  for (int i = 0; i < 1024; ++i) {
    cells.push_back(CellId::FromLatLng(
        {rng.NextDouble(30, 45), rng.NextDouble(-125, -110)}, 12));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MinDistanceMeters(cells[i & 1023], cells[(i + 7) & 1023]));
    ++i;
  }
}
BENCHMARK(BM_CellMinDistance);

// ----------------------------------------------------------- temporal ----

WindowSegmentTree MakeTree(int windows, int cells_per_window, uint64_t seed) {
  Rng rng(seed);
  std::vector<WindowedCellCount> entries;
  for (int w = 0; w < windows; ++w) {
    for (int c = 0; c < cells_per_window; ++c) {
      entries.push_back({w,
                         CellId::FromIndices(14, 8000 + rng.NextUint64(64),
                                             8000 + rng.NextUint64(64)),
                         static_cast<uint32_t>(1 + rng.NextUint64(4))});
    }
  }
  return WindowSegmentTree::Build(std::move(entries));
}

void BM_WindowTreeBuild(benchmark::State& state) {
  const int windows = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeTree(windows, 3, 3));
  }
  state.SetItemsProcessed(state.iterations() * windows * 3);
}
BENCHMARK(BM_WindowTreeBuild)->Arg(64)->Arg(512)->Arg(4096);

void BM_DominatingCellQuery(benchmark::State& state) {
  const WindowSegmentTree tree = MakeTree(2048, 3, 4);
  Rng rng(5);
  for (auto _ : state) {
    const int64_t lo = rng.NextInt64(0, 2000);
    benchmark::DoNotOptimize(tree.DominatingCell(lo, lo + 48, 10));
  }
}
BENCHMARK(BM_DominatingCellQuery);

// ------------------------------------------------------- score kernel ----

// Args: {span length, kernel ordinal}. Skips (not fails) variants the CPU
// cannot run, so the suite stays portable.
constexpr ScoreKernel kKernelByOrdinal[] = {
    ScoreKernel::kScalar, ScoreKernel::kSse42, ScoreKernel::kAvx2};

// Two strictly ascending bursty spans of length n — runs of consecutive
// windows separated by idle gaps, each run shared or private to one side —
// the scoring loop's typical shape (see bench_kernel.cc).
template <typename T>
std::pair<std::vector<T>, std::vector<T>> KernelBenchSpans(size_t n,
                                                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> run_len(8, 48);
  std::uniform_int_distribution<int> gap(16, 256);
  std::uniform_int_distribution<int> owner(0, 2);
  std::vector<T> a, b;
  T value = 0;
  while (a.size() < n || b.size() < n) {
    value = static_cast<T>(value + static_cast<T>(gap(rng)));
    const int len = run_len(rng);
    const int who = owner(rng);
    const bool to_a = who != 2 && a.size() < n;
    const bool to_b = who != 1 && b.size() < n;
    for (int k = 0; k < len; ++k) {
      value = static_cast<T>(value + 1);
      if (to_a) a.push_back(value);
      if (to_b) b.push_back(value);
    }
  }
  return {std::move(a), std::move(b)};
}

void BM_KernelIntersectI64(benchmark::State& state) {
  const ScoreKernel kernel = kKernelByOrdinal[state.range(1)];
  if (!ScoreKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this CPU");
    return;
  }
  const ScoreKernelOps& ops = GetScoreKernelOps(kernel);
  const size_t n = static_cast<size_t>(state.range(0));
  const auto [a, b] = KernelBenchSpans<int64_t>(n, 12);
  std::vector<uint32_t> oa(n), ob(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.intersect_i64(a.data(), a.size(), b.data(),
                                               b.size(), oa.data(),
                                               ob.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
  state.SetLabel(ScoreKernelName(kernel));
}
BENCHMARK(BM_KernelIntersectI64)
    ->ArgsProduct({{64, 1024, 16384}, {0, 1, 2}});

void BM_KernelIntersectU32(benchmark::State& state) {
  const ScoreKernel kernel = kKernelByOrdinal[state.range(1)];
  if (!ScoreKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this CPU");
    return;
  }
  const ScoreKernelOps& ops = GetScoreKernelOps(kernel);
  const size_t n = static_cast<size_t>(state.range(0));
  const auto [a, b] = KernelBenchSpans<uint32_t>(n, 13);
  std::vector<uint32_t> oa(n), ob(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ops.intersect_u32(a.data(), a.size(), b.data(),
                                               b.size(), oa.data(),
                                               ob.data()));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(2 * n));
  state.SetLabel(ScoreKernelName(kernel));
}
BENCHMARK(BM_KernelIntersectU32)
    ->ArgsProduct({{64, 1024, 16384}, {0, 1, 2}});

void BM_KernelIdfContributions(benchmark::State& state) {
  const ScoreKernel kernel = kKernelByOrdinal[state.range(1)];
  if (!ScoreKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this CPU");
    return;
  }
  const ScoreKernelOps& ops = GetScoreKernelOps(kernel);
  const size_t n = static_cast<size_t>(state.range(0));
  std::mt19937_64 rng(14);
  std::uniform_real_distribution<double> idf(0.1, 14.0);
  std::uniform_int_distribution<uint32_t> bin(0, 4095);
  std::vector<double> idf_a(4096), idf_b(4096), out(n);
  for (auto& v : idf_a) v = idf(rng);
  for (auto& v : idf_b) v = idf(rng);
  std::vector<uint32_t> bins_a(n), bins_b(n);
  for (size_t k = 0; k < n; ++k) {
    bins_a[k] = bin(rng);
    bins_b[k] = bin(rng);
  }
  for (auto _ : state) {
    ops.idf_contributions(bins_a.data(), bins_b.data(), n, idf_a.data(),
                          idf_b.data(), 1.37, out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
  state.SetLabel(ScoreKernelName(kernel));
}
BENCHMARK(BM_KernelIdfContributions)
    ->ArgsProduct({{16, 256, 4096}, {0, 1, 2}});

void BM_KernelIntersectSkewedGallop(benchmark::State& state) {
  const ScoreKernel kernel = kKernelByOrdinal[state.range(0)];
  if (!ScoreKernelSupported(kernel)) {
    state.SkipWithError("kernel unsupported on this CPU");
    return;
  }
  const ScoreKernelOps& ops = GetScoreKernelOps(kernel);
  // 128:1 skew — IntersectSortedI64 takes the galloping path.
  const auto [big, _unused] = KernelBenchSpans<int64_t>(16384, 15);
  std::mt19937_64 rng(16);
  std::bernoulli_distribution keep(128.0 / 16384.0);
  std::vector<int64_t> small;
  for (const int64_t v : big) {
    if (keep(rng)) small.push_back(v);
  }
  std::vector<uint32_t> oa(small.size()), ob(small.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        IntersectSortedI64(ops, small.data(), small.size(), big.data(),
                           big.size(), oa.data(), ob.data()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(small.size() + big.size()));
  state.SetLabel(ScoreKernelName(kernel));
}
BENCHMARK(BM_KernelIntersectSkewedGallop)->Arg(0)->Arg(1)->Arg(2);

// --------------------------------------------------------- similarity ----

LocationDataset BenchCab(int taxis) {
  CabGeneratorOptions opt;
  opt.num_taxis = taxis;
  opt.duration_days = 1.0;
  opt.record_interval_seconds = 240.0;
  return GenerateCabDataset(opt);
}

void BM_HistoryBuild(benchmark::State& state) {
  const LocationDataset ds = BenchCab(static_cast<int>(state.range(0)));
  HistoryConfig hc;
  for (auto _ : state) {
    benchmark::DoNotOptimize(HistorySet::Build(ds, hc));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.num_records()));
}
BENCHMARK(BM_HistoryBuild)->Arg(8)->Arg(32);

void BM_SimilarityScorePair(benchmark::State& state) {
  const LocationDataset ds = BenchCab(16);
  HistoryConfig hc;
  const LinkageContext ctx = LinkageContext::Build(ds, ds, hc);
  const SimilarityEngine engine(ctx, SimilarityConfig{});
  SimilarityStats stats;
  size_t i = 0;
  const size_t n = ctx.store_e.size();
  for (auto _ : state) {
    const auto u = static_cast<EntityIdx>(i % n);
    const auto v = static_cast<EntityIdx>((i + 1) % n);
    benchmark::DoNotOptimize(engine.ScoreIndexed(u, v, &stats));
    ++i;
  }
}
BENCHMARK(BM_SimilarityScorePair);

void BM_MnnPairing(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(6);
  std::vector<double> dist(n * n);
  for (auto& d : dist) d = rng.NextDouble(0, 1e5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(MutuallyNearestPairs(dist, n, n));
  }
}
BENCHMARK(BM_MnnPairing)->Arg(4)->Arg(16)->Arg(64);

// ----------------------------------------------------------------- lsh ----

void BM_LshIndexBuild(benchmark::State& state) {
  const LocationDataset ds = BenchCab(static_cast<int>(state.range(0)));
  HistoryConfig hc;
  hc.spatial_level = 16;
  const HistorySet set = HistorySet::Build(ds, hc);
  std::vector<LshIndex::Entry> entries;
  for (const auto& h : set.histories()) {
    entries.push_back({h.entity(), &h.tree()});
  }
  LshConfig lc;
  lc.signature_spatial_level = 12;
  lc.temporal_step_windows = 8;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LshIndex::Build(entries, entries, lc));
  }
}
BENCHMARK(BM_LshIndexBuild)->Arg(16)->Arg(64);

void BM_SignatureBuild(benchmark::State& state) {
  const WindowSegmentTree tree = MakeTree(2048, 3, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BuildSignature(tree, 0, 2048, 48, 10));
  }
}
BENCHMARK(BM_SignatureBuild);

// ------------------------------------------------------------- match ----

BipartiteGraph RandomGraph(size_t n, double density, uint64_t seed) {
  Rng rng(seed);
  BipartiteGraph g;
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (rng.NextBernoulli(density)) {
        g.AddEdge(static_cast<EntityId>(u), static_cast<EntityId>(1000 + v),
                  rng.NextDouble(0.1, 100.0));
      }
    }
  }
  return g;
}

void BM_GreedyMatching(benchmark::State& state) {
  const BipartiteGraph g =
      RandomGraph(static_cast<size_t>(state.range(0)), 0.3, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMaxWeightMatching(g));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.num_edges()));
}
BENCHMARK(BM_GreedyMatching)->Arg(64)->Arg(256)->Arg(1024);

void BM_HungarianMatching(benchmark::State& state) {
  const BipartiteGraph g =
      RandomGraph(static_cast<size_t>(state.range(0)), 0.3, 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianMaxWeightMatching(g));
  }
}
BENCHMARK(BM_HungarianMatching)->Arg(16)->Arg(64)->Arg(128);

// ------------------------------------------------------------- stats ----

void BM_GmmFit(benchmark::State& state) {
  Rng rng(10);
  std::vector<double> values;
  const int n = static_cast<int>(state.range(0));
  for (int i = 0; i < n / 2; ++i) values.push_back(rng.NextGaussian());
  for (int i = 0; i < n / 2; ++i) {
    values.push_back(50.0 + 5.0 * rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitGmm1D(values));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_GmmFit)->Arg(256)->Arg(4096);

void BM_StopThresholdDetection(benchmark::State& state) {
  Rng rng(11);
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) values.push_back(100 + 20 * rng.NextGaussian());
  for (int i = 0; i < 500; ++i) {
    values.push_back(3000 + 400 * rng.NextGaussian());
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DetectStopThreshold(values));
  }
}
BENCHMARK(BM_StopThresholdDetection);

// ------------------------------------------------------------ end-to-end --

void BM_SlimLinkEndToEnd(benchmark::State& state) {
  const LocationDataset master = BenchCab(24);
  PairSampleOptions opt;
  opt.entities_per_side = 12;
  auto sample = SampleLinkedPair(master, opt);
  SLIM_CHECK(sample.ok());
  SlimConfig cfg;
  cfg.threads = 1;
  const SlimLinker linker(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linker.Link(sample->a, sample->b));
  }
}
BENCHMARK(BM_SlimLinkEndToEnd)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace slim

BENCHMARK_MAIN();
