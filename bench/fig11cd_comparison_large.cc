// Figure 11 (c, d): comparison with ST-Link at high record densities —
// F1, runtime and pairwise record comparisons vs average records per
// entity, for entity intersection ratios 0.3 and 0.7. (GM and SLIM-noLSH
// are excluded, as in the paper, after Fig. 11a/b showed them orders of
// magnitude slower.)
//
// Paper shape: SLIM beats ST-Link on F1 at almost every density and makes
// ~3 orders of magnitude fewer record comparisons thanks to LSH; ST-Link's
// accuracy decays as density grows (alibi handling breaks down).
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 11 (c, d)", "F1 / runtime / record comparisons vs avg "
      "records, intersection 0.3 and 0.7 — SLIM (LSH) vs ST-Link on Cab",
      "SLIM wins F1 nearly everywhere and performs orders of magnitude "
      "fewer record comparisons");

  const LocationDataset& master = CachedCabMaster(scale);
  const size_t side = scale == BenchScale::kFull ? 265 : 55;
  std::printf("master density: %.0f records/entity\n",
              master.AvgRecordsPerEntity());

  // Density targets scale with the master's density; at full scale these
  // correspond to the paper's 2,100 .. 18,900 records per entity.
  const double fractions[] = {0.2, 0.4, 0.6, 0.8, 1.0};

  TablePrinter table({"intersection", "avg_records", "algorithm", "f1",
                      "runtime_sec", "record_comparisons"});
  for (double rho : {0.3, 0.7}) {
    for (double frac : fractions) {
      PairSampleOptions opt;
      opt.entities_per_side = side;
      opt.intersection_ratio = rho;
      opt.inclusion_probability = frac;
      opt.seed = 41;
      auto sample = SampleLinkedPair(master, opt);
      SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
      const double avg = 0.5 * (sample->a.AvgRecordsPerEntity() +
                                sample->b.AvgRecordsPerEntity());

      {
        SlimConfig cfg = bench::DefaultSlimConfig();
        // Library-default conservative LSH operating point.
        cfg.candidates = CandidateKind::kLsh;
        auto r = SlimLinker(cfg).Link(sample->a, sample->b);
        SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
        table.AddRow(
            {Fmt(rho, 1), Fmt(avg, 0), "SLIM",
             Fmt(EvaluateLinks(r->links, sample->truth).f1),
             Fmt(r->seconds_total, 3),
             FormatWithCommas(
                 static_cast<int64_t>(r->stats.record_comparisons))});
      }
      {
        StLinkConfig cfg;
        cfg.alibi_tolerance = 3;
        auto r = StLinkLinker(cfg).Link(sample->a, sample->b);
        SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
        table.AddRow(
            {Fmt(rho, 1), Fmt(avg, 0), "ST-Link",
             Fmt(EvaluateLinks(r->links, sample->truth).f1),
             Fmt(r->seconds_total, 3),
             FormatWithCommas(
                 static_cast<int64_t>(r->record_comparisons))});
      }
    }
  }
  table.Print();
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
