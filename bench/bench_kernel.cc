// Scoring-kernel micro bench — the machine-readable perf record for the
// SIMD intersection / IDF-contribution primitives (core/score_kernel.h).
//
// Times every CPU-supported kernel variant over a fixed grid of span
// shapes (balanced dense-overlap spans at two sizes plus a skewed
// galloping shape) for the i64 window intersection, the u32 bin
// intersection, and the batched IDF contributions, and writes
// BENCH_kernel.json (schema slim-bench-kernel-v1): reps, wall seconds and
// ns per processed element per (op, shape, kernel) cell. Three gates ride
// along:
//
//   * Determinism: before any timing, every variant's full output on every
//     shape is compared against the scalar reference — any mismatch (match
//     positions or contribution bits) aborts with exit code 1.
//   * SIMD speedup: the AVX2 intersection must beat the scalar one by
//     >= 1.5x (geometric mean over the intersect cells, computed from this
//     same run). Printed as SKIPPED — not failed — on CPUs without AVX2.
//   * Scalar regression (--baseline FILE): the scalar ns/element of any
//     cell more than 2x its committed baseline fails with exit code 1,
//     so a "faster SIMD" change can never quietly pessimise the portable
//     reference path everyone else falls back to.
//
// Flags: --quick (shorter calibration target), --out FILE (default
// BENCH_kernel.json), --baseline FILE. See docs/BENCHMARKS.md.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

constexpr double kRegressionFactor = 2.0;
constexpr double kSpeedupGate = 1.5;

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// One timed cell of the grid.
struct KernelRun {
  std::string op;      // "intersect_i64", "intersect_u32", "idf"
  std::string shape;   // "<len_a>x<len_b>"
  ScoreKernel kernel = ScoreKernel::kScalar;
  uint64_t reps = 0;
  double seconds = 0.0;
  double ns_per_element = 0.0;  // seconds / (reps * (len_a + len_b))
};

// The same cell as read back from a baseline document.
struct KernelRunRecord {
  std::string op;
  std::string shape;
  std::string kernel;
  double ns_per_element = -1.0;
};

// A bursty span pair modelling mobility window lists: runs of consecutive
// windows (active periods) separated by long idle gaps. A run is shared by
// both sides (a co-visited period), or private to one side, with equal
// probability — so most block pairs are range-disjoint, which is the shape
// the kernels' skip path is built for, with dense match regions inside the
// shared runs.
template <typename T>
struct SpanPair {
  std::vector<T> a, b;
};

template <typename T>
SpanPair<T> MakeSpanPair(std::mt19937_64& rng, size_t len_a, size_t len_b) {
  std::uniform_int_distribution<int> run_len(8, 48);
  std::uniform_int_distribution<int> gap(16, 256);
  std::uniform_int_distribution<int> owner(0, 2);  // shared / a-only / b-only
  SpanPair<T> pair;
  T value = 0;
  while (pair.a.size() < len_a || pair.b.size() < len_b) {
    value = static_cast<T>(value + static_cast<T>(gap(rng)));
    const int len = run_len(rng);
    const int who = owner(rng);
    const bool to_a = who != 2 && pair.a.size() < len_a;
    const bool to_b = who != 1 && pair.b.size() < len_b;
    for (int k = 0; k < len; ++k) {
      value = static_cast<T>(value + 1);
      if (to_a) pair.a.push_back(value);
      if (to_b) pair.b.push_back(value);
    }
  }
  return pair;
}

// Keeps the optimizer honest across reps.
volatile uint64_t g_sink = 0;

struct Workload {
  SpanPair<int64_t> i64;
  SpanPair<uint32_t> u32;
  // IDF batch: positions into the idf tables plus the tables themselves.
  std::vector<uint32_t> bins_a, bins_b;
  std::vector<double> idf_a, idf_b;
  std::string shape;
  size_t len_a = 0, len_b = 0;
};

Workload MakeWorkload(std::mt19937_64& rng, size_t len_a, size_t len_b) {
  Workload w;
  w.len_a = len_a;
  w.len_b = len_b;
  w.shape = std::to_string(len_a) + "x" + std::to_string(len_b);
  w.i64 = MakeSpanPair<int64_t>(rng, len_a, len_b);
  w.u32 = MakeSpanPair<uint32_t>(rng, len_a, len_b);
  const size_t vocab = 4096;
  w.idf_a.resize(vocab);
  w.idf_b.resize(vocab);
  std::uniform_real_distribution<double> idf(0.1, 14.0);
  for (size_t k = 0; k < vocab; ++k) {
    w.idf_a[k] = idf(rng);
    w.idf_b[k] = idf(rng);
  }
  const size_t batch = std::min(len_a, len_b);
  std::uniform_int_distribution<uint32_t> bin(0, vocab - 1);
  w.bins_a.resize(batch);
  w.bins_b.resize(batch);
  for (size_t k = 0; k < batch; ++k) {
    w.bins_a[k] = bin(rng);
    w.bins_b[k] = bin(rng);
  }
  return w;
}

// Runs `body` (which returns a checksum) in growing batches until the
// elapsed wall time reaches `target_seconds`; fills reps/seconds.
template <typename Body>
void Calibrate(double target_seconds, KernelRun* run, Body body) {
  uint64_t reps = 0;
  uint64_t batch = 1;
  const auto t0 = std::chrono::steady_clock::now();
  double elapsed = 0.0;
  while (elapsed < target_seconds) {
    for (uint64_t r = 0; r < batch; ++r) g_sink = g_sink + body();
    reps += batch;
    elapsed = Seconds(t0);
    batch *= 2;
  }
  run->reps = reps;
  run->seconds = elapsed;
}

// Exact-output cross-check of one variant against scalar on one workload.
bool VariantMatchesScalar(const ScoreKernelOps& ops,
                          const ScoreKernelOps& scalar, const Workload& w) {
  const size_t cap = std::min(w.len_a, w.len_b);
  std::vector<uint32_t> oa(cap), ob(cap), ra(cap), rb(cap);
  const size_t n64 =
      ops.intersect_i64(w.i64.a.data(), w.i64.a.size(), w.i64.b.data(),
                        w.i64.b.size(), oa.data(), ob.data());
  const size_t r64 =
      scalar.intersect_i64(w.i64.a.data(), w.i64.a.size(), w.i64.b.data(),
                           w.i64.b.size(), ra.data(), rb.data());
  if (n64 != r64 || !std::equal(oa.begin(), oa.begin() + n64, ra.begin()) ||
      !std::equal(ob.begin(), ob.begin() + n64, rb.begin())) {
    return false;
  }
  const size_t n32 =
      ops.intersect_u32(w.u32.a.data(), w.u32.a.size(), w.u32.b.data(),
                        w.u32.b.size(), oa.data(), ob.data());
  const size_t r32 =
      scalar.intersect_u32(w.u32.a.data(), w.u32.a.size(), w.u32.b.data(),
                           w.u32.b.size(), ra.data(), rb.data());
  if (n32 != r32 || !std::equal(oa.begin(), oa.begin() + n32, ra.begin()) ||
      !std::equal(ob.begin(), ob.begin() + n32, rb.begin())) {
    return false;
  }
  std::vector<double> got(w.bins_a.size()), want(w.bins_a.size());
  ops.idf_contributions(w.bins_a.data(), w.bins_b.data(), w.bins_a.size(),
                        w.idf_a.data(), w.idf_b.data(), 1.37, got.data());
  scalar.idf_contributions(w.bins_a.data(), w.bins_b.data(), w.bins_a.size(),
                           w.idf_a.data(), w.idf_b.data(), 1.37, want.data());
  return got == want;  // exact double equality — the kernel contract
}

// Minimal reader for committed slim-bench-kernel-v1 baselines: scans for
// the emit-ordered keys of each run ("op", "shape", "kernel",
// "ns_per_element").
std::vector<KernelRunRecord> ParseKernelRuns(const std::string& json) {
  bench::WarnUnknownBenchKeys(json);
  std::vector<KernelRunRecord> runs;
  auto string_after = [&](size_t pos) -> std::string {
    const size_t open = json.find('"', json.find(':', pos));
    if (open == std::string::npos) return "";
    const size_t close = json.find('"', open + 1);
    if (close == std::string::npos) return "";
    return json.substr(open + 1, close - open - 1);
  };
  auto number_after = [&](size_t pos) -> double {
    pos = json.find(':', pos);
    return pos == std::string::npos ? -1.0
                                    : bench::ParseNumberAt(json, pos + 1);
  };
  size_t pos = 0;
  while ((pos = json.find("\"op\"", pos)) != std::string::npos) {
    KernelRunRecord run;
    run.op = string_after(pos);
    const size_t shape_pos = json.find("\"shape\"", pos);
    const size_t kernel_pos = json.find("\"kernel\"", pos);
    const size_t nspe_pos = json.find("\"ns_per_element\"", pos);
    if (shape_pos == std::string::npos || kernel_pos == std::string::npos ||
        nspe_pos == std::string::npos) {
      break;
    }
    run.shape = string_after(shape_pos);
    run.kernel = string_after(kernel_pos);
    run.ns_per_element = number_after(nspe_pos);
    runs.push_back(std::move(run));
    pos = nspe_pos + 1;
  }
  return runs;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_kernel.json";
  std::string baseline_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      SLIM_CHECK_MSG(i + 1 < argc, "flag needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      out_path = value("--out");
    } else if (arg == "--baseline" || arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline");
    } else {
      std::fprintf(stderr,
                   "usage: bench_kernel [--quick] [--out FILE] "
                   "[--baseline FILE]\n");
      return 2;
    }
  }
  const double target_seconds = quick ? 0.08 : 0.4;

  std::vector<ScoreKernel> kernels = {ScoreKernel::kScalar};
  if (ScoreKernelSupported(ScoreKernel::kSse42)) {
    kernels.push_back(ScoreKernel::kSse42);
  }
  if (ScoreKernelSupported(ScoreKernel::kAvx2)) {
    kernels.push_back(ScoreKernel::kAvx2);
  }

  std::printf("==================================================\n");
  std::printf("scoring-kernel micro bench — sorted-span intersection + IDF "
              "batches\n");
  std::printf("variants:");
  for (const ScoreKernel k : kernels) std::printf(" %s", ScoreKernelName(k));
  std::printf("; auto resolves to %s\n",
              ScoreKernelName(ResolveScoreKernel(ScoreKernel::kAuto)));
  std::printf("==================================================\n");

  // Balanced dense-overlap spans at two sizes, plus a 128:1 skew that
  // drives IntersectSorted* onto the galloping path.
  std::mt19937_64 rng(20260807);
  std::vector<Workload> workloads;
  workloads.push_back(MakeWorkload(rng, 256, 256));
  workloads.push_back(MakeWorkload(rng, 4096, 4096));
  workloads.push_back(MakeWorkload(rng, 128, 16384));

  // Gate 1: exactness before speed.
  const ScoreKernelOps& scalar_ops = GetScoreKernelOps(ScoreKernel::kScalar);
  for (const ScoreKernel kernel : kernels) {
    for (const Workload& w : workloads) {
      if (!VariantMatchesScalar(GetScoreKernelOps(kernel), scalar_ops, w)) {
        std::fprintf(stderr,
                     "DETERMINISM FAILURE: kernel %s diverges from scalar on "
                     "shape %s\n",
                     ScoreKernelName(kernel), w.shape.c_str());
        return 1;
      }
    }
  }

  TablePrinter table({"op", "shape", "kernel", "reps", "seconds",
                      "ns_per_element"});
  std::vector<KernelRun> runs;
  for (const Workload& w : workloads) {
    for (const ScoreKernel kernel : kernels) {
      const ScoreKernelOps& ops = GetScoreKernelOps(kernel);
      const size_t cap = std::min(w.len_a, w.len_b);
      std::vector<uint32_t> oa(cap), ob(cap);
      std::vector<double> contrib(w.bins_a.size());

      KernelRun i64_run{"intersect_i64", w.shape, kernel};
      Calibrate(target_seconds, &i64_run, [&] {
        return ops.intersect_i64(w.i64.a.data(), w.i64.a.size(),
                                 w.i64.b.data(), w.i64.b.size(), oa.data(),
                                 ob.data());
      });
      KernelRun u32_run{"intersect_u32", w.shape, kernel};
      Calibrate(target_seconds, &u32_run, [&] {
        return ops.intersect_u32(w.u32.a.data(), w.u32.a.size(),
                                 w.u32.b.data(), w.u32.b.size(), oa.data(),
                                 ob.data());
      });
      KernelRun idf_run{"idf", w.shape, kernel};
      Calibrate(target_seconds, &idf_run, [&] {
        ops.idf_contributions(w.bins_a.data(), w.bins_b.data(),
                              w.bins_a.size(), w.idf_a.data(), w.idf_b.data(),
                              1.37, contrib.data());
        return static_cast<uint64_t>(contrib[0]);
      });

      for (KernelRun* run : {&i64_run, &u32_run, &idf_run}) {
        const double elements =
            run->op == "idf"
                ? static_cast<double>(w.bins_a.size())
                : static_cast<double>(w.len_a + w.len_b);
        run->ns_per_element =
            run->seconds * 1e9 / (static_cast<double>(run->reps) * elements);
        table.AddRow({run->op, run->shape, ScoreKernelName(run->kernel),
                      std::to_string(run->reps), Fmt(run->seconds, 3),
                      Fmt(run->ns_per_element, 3)});
        runs.push_back(*run);
      }
    }
  }
  table.Print();

  // The machine-readable record.
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value("slim-bench-kernel-v1");
  json.Key("quick").Value(quick);
  json.Key("hardware_threads")
      .Value(static_cast<int>(std::thread::hardware_concurrency()));
  json.Key("runs").BeginArray();
  for (const KernelRun& run : runs) {
    json.BeginObject();
    json.Key("op").Value(run.op);
    json.Key("shape").Value(run.shape);
    json.Key("kernel").Value(ScoreKernelName(run.kernel));
    json.Key("reps").Value(run.reps);
    json.Key("seconds").Value(run.seconds);
    json.Key("ns_per_element").Value(run.ns_per_element);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  out.close();
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), runs.size());

  auto find_run = [&](const std::string& op, const std::string& shape,
                      ScoreKernel kernel) -> const KernelRun* {
    for (const KernelRun& run : runs) {
      if (run.op == op && run.shape == shape && run.kernel == kernel) {
        return &run;
      }
    }
    return nullptr;
  };

  // Gate 2: AVX2 must actually pay for itself on the intersections,
  // measured against the scalar cells of this same run (baseline-free, so
  // the gate also works on a fresh machine).
  if (ScoreKernelSupported(ScoreKernel::kAvx2)) {
    double log_sum = 0.0;
    int cells = 0;
    for (const Workload& w : workloads) {
      for (const char* op : {"intersect_i64", "intersect_u32"}) {
        const KernelRun* s = find_run(op, w.shape, ScoreKernel::kScalar);
        const KernelRun* v = find_run(op, w.shape, ScoreKernel::kAvx2);
        if (s == nullptr || v == nullptr || v->ns_per_element <= 0.0) continue;
        log_sum += std::log(s->ns_per_element / v->ns_per_element);
        ++cells;
      }
    }
    const double geomean = cells > 0 ? std::exp(log_sum / cells) : 0.0;
    std::printf("simd gate: avx2 intersect speedup %.2fx (geomean over %d "
                "cells, gate %.1fx)\n",
                geomean, cells, kSpeedupGate);
    if (geomean < kSpeedupGate) {
      std::fprintf(stderr,
                   "SIMD GATE FAILURE: avx2 intersect speedup %.2fx < %.1fx\n",
                   geomean, kSpeedupGate);
      return 1;
    }
  } else {
    std::printf("simd gate: SKIPPED (no AVX2 on this CPU)\n");
  }

  // Gate 3: scalar no-regression against the committed baseline.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!bench::BaselineSchemaReadable(buffer.str(), baseline_path.c_str(),
                                       {{"slim-bench-kernel", 1}})) {
      return 2;
    }
    const std::vector<KernelRunRecord> baseline =
        ParseKernelRuns(buffer.str());
    SLIM_CHECK_MSG(!baseline.empty(), "baseline has no runs");
    int regressions = 0, compared = 0;
    for (const KernelRunRecord& b : baseline) {
      if (b.kernel != "scalar" || b.ns_per_element <= 0.0) continue;
      const KernelRun* cur = find_run(b.op, b.shape, ScoreKernel::kScalar);
      if (cur == nullptr) continue;
      ++compared;
      if (cur->ns_per_element > kRegressionFactor * b.ns_per_element) {
        std::fprintf(stderr,
                     "REGRESSION at op %s, shape %s: scalar %.3f ns/elem vs "
                     "baseline %.3f (> %.1fx)\n",
                     b.op.c_str(), b.shape.c_str(), cur->ns_per_element,
                     b.ns_per_element, kRegressionFactor);
        ++regressions;
      }
    }
    std::printf("baseline gate: %d scalar comparisons vs %s, %d regressions\n",
                compared, baseline_path.c_str(), regressions);
    if (regressions > 0) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slim

int main(int argc, char** argv) { return slim::Main(argc, argv); }
