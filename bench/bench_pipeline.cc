// End-to-end pipeline scaling bench — the machine-readable perf record.
//
// Runs generate -> sample -> link on the SM-style check-in workload at
// several entity counts and thread counts, prints a per-stage timing table,
// and writes BENCH_pipeline.json (schema slim-bench-pipeline-v2): wall
// seconds per stage, peak process RSS at the end of each stage, speedup vs
// 1 thread, link counts. The v2 reader (bench_util.h) still accepts v1
// documents, so pre-RSS baselines keep gating. Two gates ride along:
//
//   * Determinism: every thread count must produce bit-identical links,
//     matching, graph, and stats — a mismatch aborts with exit code 1.
//   * Regression (--baseline FILE): any stage slower than 2x its committed
//     baseline time (for the same entities x threads cell) fails with exit
//     code 1. Stages under 50 ms in the baseline are ignored as noise.
//
// Flags: --quick (CI-sized workload), --out FILE (default
// BENCH_pipeline.json), --baseline FILE, --entities a,b,..., --threads
// a,b,...  See docs/BENCHMARKS.md.
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_util.h"
#include "common/build_info.h"
#include "eval/table.h"

namespace slim {
namespace {

constexpr double kRegressionFactor = 2.0;
constexpr double kRegressionFloorSeconds = 0.05;

struct PipelineRun {
  size_t entities = 0;
  int threads = 0;
  LinkageResult result;
};

const char* const kStageNames[] = {"histories", "lsh", "scoring", "matching",
                                   "total"};

double StageOf(const LinkageResult& r, const std::string& stage) {
  if (stage == "histories") return r.seconds_histories;
  if (stage == "lsh") return r.seconds_lsh;
  if (stage == "scoring") return r.seconds_scoring;
  if (stage == "matching") return r.seconds_matching;
  return r.seconds_total;
}

uint64_t RssOf(const LinkageResult& r, const std::string& stage) {
  if (stage == "histories") return r.rss_peak_histories;
  if (stage == "lsh") return r.rss_peak_lsh;
  if (stage == "scoring") return r.rss_peak_scoring;
  if (stage == "matching") return r.rss_peak_matching;
  return r.rss_peak_total;
}

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    SLIM_CHECK_MSG(v > 0, "list entries must be positive integers");
    out.push_back(static_cast<size_t>(v));
  }
  SLIM_CHECK_MSG(!out.empty(), "empty list flag");
  return out;
}

// Identical-output gate between two runs of the same workload.
bool SameLinkage(const LinkageResult& a, const LinkageResult& b,
                 std::string* why) {
  if (a.links != b.links) {
    *why = "links differ";
  } else if (a.matching.pairs != b.matching.pairs) {
    *why = "matching differs";
  } else if (a.graph.edges() != b.graph.edges()) {
    *why = "score graph differs";
  } else if (a.candidate_pairs != b.candidate_pairs) {
    *why = "candidate pair count differs";
  } else if (a.stats.record_comparisons != b.stats.record_comparisons ||
             a.stats.alibi_pairs != b.stats.alibi_pairs ||
             a.stats.entity_pairs != b.stats.entity_pairs) {
    *why = "similarity stats differ";
  } else {
    return true;
  }
  return false;
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_pipeline.json";
  std::string baseline_path;
  std::string entities_csv, threads_csv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      SLIM_CHECK_MSG(i + 1 < argc, "flag needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      out_path = value("--out");
    } else if (arg == "--baseline" || arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline");
    } else if (arg == "--entities" || arg.rfind("--entities=", 0) == 0) {
      entities_csv = value("--entities");
    } else if (arg == "--threads" || arg.rfind("--threads=", 0) == 0) {
      threads_csv = value("--threads");
    } else {
      std::fprintf(stderr,
                   "usage: bench_pipeline [--quick] [--out FILE] "
                   "[--baseline FILE] [--entities a,b,...] "
                   "[--threads a,b,...]\n");
      return 2;
    }
  }

  // Quick mode is sized so the big stages sit comfortably above the
  // regression gate's noise floor while the sweep stays CI-cheap (~2 s on
  // one core).
  std::vector<size_t> entity_counts =
      quick ? std::vector<size_t>{4000} : std::vector<size_t>{2500, 10000};
  std::vector<size_t> thread_list =
      quick ? std::vector<size_t>{1, 2, 4} : std::vector<size_t>{1, 2, 4, 8};
  if (!entities_csv.empty()) entity_counts = ParseSizeList(entities_csv);
  if (!threads_csv.empty()) thread_list = ParseSizeList(threads_csv);

  std::printf("==================================================\n");
  std::printf("pipeline scaling bench — generate -> link, per-stage wall "
              "time\n");
  std::printf("workload: SM-style check-ins; entities per side:");
  for (size_t e : entity_counts) std::printf(" %zu", e);
  std::printf("; threads:");
  for (size_t t : thread_list) std::printf(" %zu", t);
  std::printf("\nhardware threads: %u%s\n",
              std::thread::hardware_concurrency(),
              quick ? " (quick mode)" : "");
  std::printf("==================================================\n");

  TablePrinter table({"entities", "threads", "histories_s", "lsh_s",
                      "scoring_s", "matching_s", "total_s", "speedup",
                      "peak_rss_mb", "links"});
  std::vector<PipelineRun> runs;
  bool deterministic = true;

  // One small untimed link first: pays the allocator / code-path warmup so
  // the 1-thread reference run is not systematically penalised.
  {
    CheckinGeneratorOptions gen;
    gen.num_users = 200;
    gen.seed = 1299;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 100;
    sampling.seed = 1299;
    auto sample = SampleLinkedPair(master, sampling);
    SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
    const SlimLinker warmup((SlimConfig()));
    (void)warmup.Link(sample->a, sample->b);
  }

  for (const size_t entities : entity_counts) {
    CheckinGeneratorOptions gen;
    gen.num_users = static_cast<int>(entities * 2);
    gen.seed = 1301;
    const LocationDataset master = GenerateCheckinDataset(gen);

    PairSampleOptions sampling;
    sampling.entities_per_side = entities;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 1302;
    auto sample = SampleLinkedPair(master, sampling);
    SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

    size_t base_idx = runs.size();  // the first thread count's run
    for (const size_t threads : thread_list) {
      SlimConfig config;  // stock pipeline defaults, LSH on
      config.threads = static_cast<int>(threads);
      const SlimLinker linker(config);
      auto linked = linker.Link(sample->a, sample->b);
      SLIM_CHECK_MSG(linked.ok(), linked.status().ToString().c_str());

      PipelineRun run;
      run.entities = entities;
      run.threads = static_cast<int>(threads);
      run.result = std::move(linked.value());
      runs.push_back(std::move(run));
      const LinkageResult& r = runs.back().result;
      const LinkageResult& base = runs[base_idx].result;

      if (threads != thread_list.front()) {
        std::string why;
        if (!SameLinkage(base, r, &why)) {
          std::fprintf(stderr,
                       "DETERMINISM FAILURE at %zu entities, %zu threads: "
                       "%s vs the %zu-thread run\n",
                       entities, threads, why.c_str(), thread_list.front());
          deterministic = false;
        }
      }

      const double speedup =
          r.seconds_total > 0.0 ? base.seconds_total / r.seconds_total : 1.0;
      table.AddRow({std::to_string(entities), std::to_string(threads),
                    Fmt(r.seconds_histories, 3), Fmt(r.seconds_lsh, 3),
                    Fmt(r.seconds_scoring, 3), Fmt(r.seconds_matching, 3),
                    Fmt(r.seconds_total, 3), Fmt(speedup, 2),
                    Fmt(static_cast<double>(r.rss_peak_total) / (1 << 20), 1),
                    std::to_string(r.links.size())});
    }
  }
  table.Print();

  // The machine-readable record.
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value("slim-bench-pipeline-v2");
  json.Key("build").Value(slim::BuildGitDescribe());
  json.Key("workload").Value("checkin");
  json.Key("quick").Value(quick);
  json.Key("hardware_threads")
      .Value(static_cast<int>(std::thread::hardware_concurrency()));
  json.Key("deterministic").Value(deterministic);
  json.Key("runs").BeginArray();
  for (const PipelineRun& run : runs) {
    const LinkageResult& r = run.result;
    // Reference run for the speedup columns: same entities, first thread
    // count of the sweep.
    const PipelineRun* base = nullptr;
    for (const PipelineRun& b : runs) {
      if (b.entities == run.entities) {
        base = &b;
        break;
      }
    }
    json.BeginObject();
    json.Key("entities").Value(run.entities);
    json.Key("threads").Value(run.threads);
    json.Key("links").Value(static_cast<uint64_t>(r.links.size()));
    json.Key("candidate_pairs").Value(r.candidate_pairs);
    json.Key("possible_pairs").Value(r.possible_pairs);
    json.Key("seconds").BeginObject();
    for (const char* stage : kStageNames) {
      json.Key(stage).Value(StageOf(r, stage));
    }
    json.EndObject();
    json.Key("speedup_vs_first").BeginObject();
    for (const char* stage : kStageNames) {
      const double cur = StageOf(r, stage);
      const double ref = base != nullptr ? StageOf(base->result, stage) : cur;
      json.Key(stage).Value(cur > 0.0 ? ref / cur : 1.0);
    }
    json.EndObject();
    // v2: peak process RSS at the end of each stage (monotone; the first
    // stage's value includes generator/sampler memory from the harness).
    json.Key("peak_rss_bytes").BeginObject();
    for (const char* stage : kStageNames) {
      json.Key(stage).Value(RssOf(r, stage));
    }
    json.EndObject();
    json.Key("distance_cache").BeginObject();
    json.Key("hits").Value(r.stats.cache_hits);
    json.Key("misses").Value(r.stats.cache_misses);
    json.EndObject();
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  out.close();
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), runs.size());

  if (!deterministic) return 1;

  // Regression gate against a committed baseline.
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!bench::BaselineSchemaReadable(buffer.str(), baseline_path.c_str(),
                                       {{"slim-bench-pipeline", 2},
                                        {"slim-bench-sharded", 3}})) {
      return 2;
    }
    const std::vector<bench::PipelineRunRecord> baseline =
        bench::ParsePipelineRuns(buffer.str());
    SLIM_CHECK_MSG(!baseline.empty(), "baseline has no runs");
    int regressions = 0, compared = 0;
    for (const PipelineRun& run : runs) {
      for (const bench::PipelineRunRecord& b : baseline) {
        if (b.entities != run.entities ||
            b.threads != run.threads) {
          continue;
        }
        for (const char* stage : kStageNames) {
          const double base_s = b.StageSeconds(stage);
          if (base_s < kRegressionFloorSeconds) continue;  // noise floor
          ++compared;
          const double cur_s = StageOf(run.result, stage);
          if (cur_s > kRegressionFactor * base_s) {
            std::fprintf(stderr,
                         "REGRESSION at %zu entities, %d threads, stage "
                         "%s: %.3fs vs baseline %.3fs (> %.1fx)\n",
                         run.entities, run.threads, stage, cur_s, base_s,
                         kRegressionFactor);
            ++regressions;
          }
        }
      }
    }
    std::printf("baseline gate: %d stage comparisons vs %s, %d regressions\n",
                compared, baseline_path.c_str(), regressions);
    if (regressions > 0) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slim

int main(int argc, char** argv) { return slim::Main(argc, argv); }
