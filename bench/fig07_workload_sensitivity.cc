// Figure 7: F1-score and runtime as a function of the record inclusion
// probability, for different entity intersection ratios — Cab and SM.
//
// Paper shape: Cab F1 stays near 1 across all inclusion probabilities
// (dense traces survive downsampling); SM F1 drops sharply at low
// probabilities (sparse check-ins stop carrying evidence) and recovers
// above ~15 records/entity; runtime grows roughly linearly with the number
// of records.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void RunDataset(const char* name, const LocationDataset& master,
                PairSampleOptions base, int64_t window_seconds) {
  std::printf("\n--- %s ---\n", name);
  TablePrinter table({"intersection", "inclusion_p", "avg_records", "f1",
                      "precision", "recall", "runtime_sec"});
  for (double rho : {0.3, 0.5, 0.7, 0.9}) {
    for (double p : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      PairSampleOptions opt = base;
      opt.intersection_ratio = rho;
      opt.inclusion_probability = p;
      auto sample = SampleLinkedPair(master, opt);
      SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
      if (sample->a.num_entities() == 0 || sample->b.num_entities() == 0 ||
          sample->truth.size() == 0) {
        table.AddRow({Fmt(rho, 1), Fmt(p, 1), "-", "-", "-", "-", "-"});
        continue;
      }
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.history.window_seconds = window_seconds;
      const SlimLinker linker(cfg);
      auto r = linker.Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
      const double avg_records =
          0.5 * (sample->a.AvgRecordsPerEntity() +
                 sample->b.AvgRecordsPerEntity());
      table.AddRow({Fmt(rho, 1), Fmt(p, 1), Fmt(avg_records, 1), Fmt(q.f1),
                    Fmt(q.precision), Fmt(q.recall),
                    Fmt(r->seconds_total, 3)});
    }
  }
  table.Print();
}

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 7", "F1 and runtime vs record inclusion probability, per "
      "entity intersection ratio — Cab and SM",
      "Cab: F1 ~1 at every inclusion probability; SM: F1 poor below ~15 "
      "records/entity, > 0.9 above; runtime roughly linear in record count");

  RunDataset("Cab", CachedCabMaster(scale), bench::CabSampleOptions(scale),
             /*window_seconds=*/900);
  RunDataset("SM", CachedCheckinMaster(scale), bench::SmSampleOptions(scale),
             /*window_seconds=*/900);
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
