// Sharded-driver scaling bench — peak RSS vs shard count, and the memory
// methodology behind SlimConfig::shard_memory_budget_bytes.
//
// Peak process RSS is a monotone high-water mark (common/resource.h), so
// runs sharing one process mask each other. This bench therefore re-execs
// itself: every measured configuration runs in a fresh child process that
// loads the datasets from SBIN, links once, and reports its stage seconds
// and RSS peaks as a run-shaped JSON the parent reads back with the
// bench_util v3 parser. The parent:
//
//   1. generates the SM-style workload at the target scale (100k entities
//      per side by default; --quick is CI-sized) and two smaller probe
//      scales, writing each side to SBIN in a temp directory;
//   2. runs the MONOLITHIC driver on the probe scales and fits a power law
//      to their candidate+scoring footprint (rss_scoring - rss_histories)
//      to extrapolate the monolithic footprint at the target scale —
//      extrapolated, because the point of sharding is that the monolithic
//      block at full scale is the thing we refuse to materialise;
//   3. runs the SHARDED driver at the target scale across shard counts,
//      checks every run produced identical links (hash + count), and
//      writes BENCH_sharded.json (schema slim-bench-sharded-v3).
//
// Gates: determinism always; in full (non-quick) mode the best sharded
// footprint must undercut the extrapolated monolithic footprint by at
// least 2x (kRssReductionGate), the scalability claim ISSUE/BENCHMARKS
// record. See docs/BENCHMARKS.md, "Sharded linkage and the memory budget".
//
// Flags: --quick, --out FILE (default BENCH_sharded.json), --entities N,
// --probes a,b, --shards a,b,..., --threads N. Internal: --child ... (one
// measured run; not for direct use).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/build_info.h"
#include "eval/table.h"

namespace slim {
namespace {

constexpr double kRssReductionGate = 2.0;

const char* const kStageNames[] = {"histories", "lsh", "scoring", "matching",
                                   "total"};

double StageOf(const LinkageResult& r, const std::string& stage) {
  if (stage == "histories") return r.seconds_histories;
  if (stage == "lsh") return r.seconds_lsh;
  if (stage == "scoring") return r.seconds_scoring;
  if (stage == "matching") return r.seconds_matching;
  return r.seconds_total;
}

uint64_t RssOf(const LinkageResult& r, const std::string& stage) {
  if (stage == "histories") return r.rss_peak_histories;
  if (stage == "lsh") return r.rss_peak_lsh;
  if (stage == "scoring") return r.rss_peak_scoring;
  if (stage == "matching") return r.rss_peak_matching;
  return r.rss_peak_total;
}

// FNV-1a over the canonical link lines: equal hashes across processes mean
// equal links at 17-decimal (bit-level) precision.
uint64_t HashLinks(const std::vector<LinkedEntityPair>& links) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
  };
  for (const auto& link : links) {
    mix(std::to_string(link.u) + "," + std::to_string(link.v) + "," +
        FormatFixed(link.score, 17) + "\n");
  }
  return h;
}

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    SLIM_CHECK_MSG(v > 0, "list entries must be positive integers");
    out.push_back(static_cast<size_t>(v));
  }
  SLIM_CHECK_MSG(!out.empty(), "empty list flag");
  return out;
}

// The candidate+scoring footprint of a run: RSS growth between the end of
// the context build and the end of scoring. The context (and the loaded
// datasets under it) is common to the monolithic and sharded paths; this
// delta is the part sharding bounds.
uint64_t BlockBytes(const bench::PipelineRunRecord& run) {
  double histories = 0.0, scoring = 0.0;
  for (const auto& [name, v] : run.peak_rss_bytes) {
    if (name == "histories") histories = v;
    if (name == "scoring") scoring = v;
  }
  const double delta = scoring - histories;
  return delta > 1.0 ? static_cast<uint64_t>(delta) : 1;
}

// Scans `json` for `"key": <unsigned integer>` and returns the exact
// value; 0 when absent. Full 64-bit precision (strtoull, not a double
// round-trip) — the links_hash comparison below is a bit-identity gate.
uint64_t FindUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  pos += needle.size();
  while (pos < json.size() &&
         (std::isspace(static_cast<unsigned char>(json[pos])) != 0 ||
          json[pos] == ':')) {
    ++pos;
  }
  return pos < json.size() ? std::strtoull(json.c_str() + pos, nullptr, 10)
                           : 0;
}

// ---- Child mode: one measured linkage in a fresh process. ----

int ChildMain(const std::string& path_a, const std::string& path_b,
              int threads, int shards, const std::string& out_json) {
  auto a = ReadDataset(path_a, "A");
  SLIM_CHECK_MSG(a.ok(), a.status().ToString().c_str());
  auto b = ReadDataset(path_b, "B");
  SLIM_CHECK_MSG(b.ok(), b.status().ToString().c_str());

  SlimConfig config;  // stock pipeline defaults, LSH on
  config.threads = threads;
  config.shards = shards;
  const SlimLinker linker(config);
  // shards == 0 measures the monolithic driver; >= 1 the sharded one.
  auto result =
      shards > 0 ? linker.LinkSharded(*a, *b) : linker.Link(*a, *b);
  SLIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  const LinkageResult& r = *result;

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("entities").Value(static_cast<uint64_t>(a->num_entities()));
  json.Key("threads")
      .Value(threads > 0 ? threads : DefaultThreadCount());
  json.Key("shards").Value(shards > 0 ? r.shards_used : 0);
  json.Key("links").Value(static_cast<uint64_t>(r.links.size()));
  json.Key("links_hash").Value(HashLinks(r.links));
  json.Key("candidate_pairs").Value(r.candidate_pairs);
  json.Key("spilled_edges").Value(r.spilled_edges);
  json.Key("spill_on_disk").Value(r.spill_on_disk);
  json.Key("seconds").BeginObject();
  for (const char* stage : kStageNames) {
    json.Key(stage).Value(StageOf(r, stage));
  }
  json.EndObject();
  json.Key("peak_rss_bytes").BeginObject();
  for (const char* stage : kStageNames) {
    json.Key(stage).Value(RssOf(r, stage));
  }
  json.EndObject();
  json.EndObject();

  std::ofstream out(out_json);
  SLIM_CHECK_MSG(out.good(), "cannot write child record");
  out << json.str();
  return 0;
}

// ---- Parent mode. ----

struct MeasuredRun {
  bench::PipelineRunRecord record;
  uint64_t links = 0;
  uint64_t links_hash = 0;
  uint64_t candidate_pairs = 0;
  uint64_t spilled_edges = 0;
  bool spill_on_disk = false;
  uint64_t block_bytes = 0;
};

// Runs one child configuration and reads its record back. `self` is this
// binary (argv[0]); children inherit stdout/stderr.
MeasuredRun RunChild(const std::string& self, const std::string& path_a,
                     const std::string& path_b, int threads, int shards,
                     const std::filesystem::path& tmp_dir, int ordinal) {
  const std::filesystem::path out =
      tmp_dir / ("child_" + std::to_string(ordinal) + ".json");
  const std::string cmd = "\"" + self + "\" --child --a \"" + path_a +
                          "\" --b \"" + path_b + "\" --threads " +
                          std::to_string(threads) + " --shards " +
                          std::to_string(shards) + " --out \"" +
                          out.string() + "\"";
  const int rc = std::system(cmd.c_str());
  SLIM_CHECK_MSG(rc == 0, "child run failed");

  std::ifstream in(out);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  const std::vector<bench::PipelineRunRecord> parsed =
      bench::ParsePipelineRuns(doc);
  SLIM_CHECK_MSG(parsed.size() == 1, "child record did not parse");

  MeasuredRun run;
  run.record = parsed.front();
  run.links = FindUint(doc, "links");
  run.links_hash = FindUint(doc, "links_hash");
  run.candidate_pairs = FindUint(doc, "candidate_pairs");
  run.spilled_edges = FindUint(doc, "spilled_edges");
  run.spill_on_disk = doc.find("\"spill_on_disk\": true") != std::string::npos;
  run.block_bytes = BlockBytes(run.record);
  return run;
}

void EmitRun(bench::JsonWriter* json, const MeasuredRun& run) {
  json->BeginObject();
  json->Key("entities").Value(run.record.entities);
  json->Key("threads").Value(run.record.threads);
  json->Key("shards").Value(run.record.shards);
  json->Key("links").Value(run.links);
  json->Key("links_hash").Value(run.links_hash);
  json->Key("candidate_pairs").Value(run.candidate_pairs);
  json->Key("spilled_edges").Value(run.spilled_edges);
  json->Key("spill_on_disk").Value(run.spill_on_disk);
  json->Key("block_bytes").Value(run.block_bytes);
  json->Key("seconds").BeginObject();
  for (const auto& [name, v] : run.record.seconds) {
    json->Key(name).Value(v);
  }
  json->EndObject();
  json->Key("peak_rss_bytes").BeginObject();
  for (const auto& [name, v] : run.record.peak_rss_bytes) {
    json->Key(name).Value(static_cast<uint64_t>(v));
  }
  json->EndObject();
  json->EndObject();
}

// Writes the two sides of one sampled scale as SBIN and returns their
// paths.
std::pair<std::string, std::string> WriteSides(
    const LocationDataset& master, size_t entities, uint64_t seed,
    const std::filesystem::path& tmp_dir, const char* tag) {
  PairSampleOptions sampling;
  sampling.entities_per_side = entities;
  sampling.intersection_ratio = 0.5;
  sampling.inclusion_probability = 0.5;
  sampling.seed = seed;
  auto sample = SampleLinkedPair(master, sampling);
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
  const std::string a =
      (tmp_dir / (std::string(tag) + "_a.sbin")).string();
  const std::string b =
      (tmp_dir / (std::string(tag) + "_b.sbin")).string();
  SLIM_CHECK(WriteDataset(sample->a, a, DatasetFormat::kSbin).ok());
  SLIM_CHECK(WriteDataset(sample->b, b, DatasetFormat::kSbin).ok());
  return {a, b};
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_sharded.json";
  std::string entities_flag, probes_flag, shards_flag;
  int threads = 0;
  // Child-mode flags.
  bool child = false;
  std::string child_a, child_b, child_out;
  int child_shards = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      SLIM_CHECK_MSG(i + 1 < argc, "flag needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--child") {
      child = true;
    } else if (arg == "--a" || arg.rfind("--a=", 0) == 0) {
      child_a = value("--a");
    } else if (arg == "--b" || arg.rfind("--b=", 0) == 0) {
      child_b = value("--b");
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      out_path = child_out = value("--out");
    } else if (arg == "--entities" || arg.rfind("--entities=", 0) == 0) {
      entities_flag = value("--entities");
    } else if (arg == "--probes" || arg.rfind("--probes=", 0) == 0) {
      probes_flag = value("--probes");
    } else if (arg == "--shards" || arg.rfind("--shards=", 0) == 0) {
      shards_flag = value("--shards");
      child_shards = static_cast<int>(std::strtol(
          shards_flag.c_str(), nullptr, 10));
    } else if (arg == "--threads" || arg.rfind("--threads=", 0) == 0) {
      threads = static_cast<int>(std::strtol(value("--threads").c_str(),
                                             nullptr, 10));
    } else {
      std::fprintf(stderr,
                   "usage: bench_sharded [--quick] [--out FILE] "
                   "[--entities N] [--probes a,b] [--shards a,b,...] "
                   "[--threads N]\n");
      return 2;
    }
  }
  if (child) return ChildMain(child_a, child_b, threads, child_shards,
                              child_out);

  // Full mode targets the 100k-per-side scenario (slim_generate --preset
  // sm100k); quick mode is CI-sized. Shard counts run most-sharded first —
  // informative, and each child is a fresh process anyway.
  size_t target = quick ? 2000 : 100000;
  std::vector<size_t> probes =
      quick ? std::vector<size_t>{500, 1000}
            : std::vector<size_t>{12500, 25000};
  std::vector<size_t> shard_counts =
      quick ? std::vector<size_t>{7, 2, 1} : std::vector<size_t>{16, 8, 4};
  if (!entities_flag.empty()) target = ParseSizeList(entities_flag).front();
  if (!probes_flag.empty()) probes = ParseSizeList(probes_flag);
  if (!shards_flag.empty()) shard_counts = ParseSizeList(shards_flag);

  std::printf("==================================================\n");
  std::printf("sharded linkage bench — peak RSS vs shard count\n");
  std::printf("workload: SM-style check-ins; target %zu entities/side; "
              "probes:", target);
  for (size_t p : probes) std::printf(" %zu", p);
  std::printf("; shard counts:");
  for (size_t s : shard_counts) std::printf(" %zu", s);
  std::printf("\nhardware threads: %u%s; every run is a fresh process "
              "(RSS peaks are per-configuration)\n",
              std::thread::hardware_concurrency(), quick ? " (quick)" : "");
  std::printf("==================================================\n");

  std::error_code ec;
  const std::filesystem::path tmp_dir =
      std::filesystem::temp_directory_path() /
      ("slim_bench_sharded_" + std::to_string(
                                   static_cast<long>(::getpid())));
  std::filesystem::create_directories(tmp_dir, ec);
  SLIM_CHECK_MSG(!ec, "cannot create bench temp dir");

  // One master, every scale sampled from it (the probe workload must be
  // the target workload, only smaller).
  CheckinGeneratorOptions gen;
  gen.num_users = static_cast<int>(target * 2);
  gen.seed = 1301;
  std::printf("generating %d-user master...\n", gen.num_users);
  const LocationDataset master = GenerateCheckinDataset(gen);
  std::printf("master: %zu entities / %zu records\n", master.num_entities(),
              master.num_records());

  const std::string self = argv[0];
  int ordinal = 0;
  TablePrinter table({"run", "entities", "shards", "lsh_s", "scoring_s",
                      "total_s", "block_mb", "peak_mb", "links"});
  auto add_row = [&](const char* kind, const MeasuredRun& run) {
    double peak = 0.0;
    for (const auto& [name, v] : run.record.peak_rss_bytes) {
      if (name == "total") peak = v;
    }
    table.AddRow({kind, std::to_string(run.record.entities),
                  std::to_string(run.record.shards),
                  Fmt(run.record.StageSeconds("lsh"), 3),
                  Fmt(run.record.StageSeconds("scoring"), 3),
                  Fmt(run.record.StageSeconds("total"), 3),
                  Fmt(static_cast<double>(run.block_bytes) / (1 << 20), 1),
                  Fmt(peak / (1 << 20), 1), std::to_string(run.links)});
  };

  // 1. Monolithic probes.
  std::vector<MeasuredRun> probe_runs;
  for (const size_t p : probes) {
    const auto [a, b] =
        WriteSides(master, p, 1302, tmp_dir, ("probe" + std::to_string(p))
                                                 .c_str());
    std::printf("probe: monolithic at %zu entities/side...\n", p);
    probe_runs.push_back(RunChild(self, a, b, threads, 0, tmp_dir,
                                  ordinal++));
    add_row("mono", probe_runs.back());
  }

  // 2. Power-law extrapolation of the monolithic block footprint to the
  //    target scale: block(n) = a * n^e fitted through the two largest
  //    probes, exponent clamped to [1, 3] (the footprint cannot grow
  //    sublinearly in the right store, and nothing in the pipeline is
  //    worse than the quadratic cross product).
  SLIM_CHECK_MSG(probe_runs.size() >= 2, "need at least two probes");
  const MeasuredRun& p1 = probe_runs[probe_runs.size() - 2];
  const MeasuredRun& p2 = probe_runs.back();
  double exponent = 1.0;
  if (p1.block_bytes > 0 && p2.block_bytes > p1.block_bytes &&
      p2.record.entities > p1.record.entities) {
    exponent = std::log(static_cast<double>(p2.block_bytes) /
                        static_cast<double>(p1.block_bytes)) /
               std::log(static_cast<double>(p2.record.entities) /
                        static_cast<double>(p1.record.entities));
  }
  exponent = std::min(3.0, std::max(1.0, exponent));
  const double extrapolated_block =
      static_cast<double>(p2.block_bytes) *
      std::pow(static_cast<double>(target) /
                   static_cast<double>(p2.record.entities),
               exponent);
  std::printf("extrapolated monolithic block at %zu entities: %.1f MB "
              "(exponent %.2f)\n",
              target, extrapolated_block / (1 << 20), exponent);

  // 3. Sharded runs at the target scale (+ a monolithic reference run in
  //    quick mode, where the target is small enough to afford one).
  const auto [target_a, target_b] =
      WriteSides(master, target, 1302, tmp_dir, "target");
  std::vector<MeasuredRun> sharded_runs;
  for (const size_t k : shard_counts) {
    std::printf("sharded: K=%zu at %zu entities/side...\n", k, target);
    sharded_runs.push_back(RunChild(self, target_a, target_b, threads,
                                    static_cast<int>(k), tmp_dir,
                                    ordinal++));
    add_row("sharded", sharded_runs.back());
  }
  bool deterministic = true;
  for (const MeasuredRun& run : sharded_runs) {
    if (run.links_hash != sharded_runs.front().links_hash ||
        run.links != sharded_runs.front().links) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: K=%d links differ from K=%d\n",
                   run.record.shards, sharded_runs.front().record.shards);
      deterministic = false;
    }
  }
  if (quick) {
    const MeasuredRun mono =
        RunChild(self, target_a, target_b, threads, 0, tmp_dir, ordinal++);
    add_row("mono", mono);
    if (mono.links_hash != sharded_runs.front().links_hash) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: sharded links differ from the "
                   "monolithic driver\n");
      deterministic = false;
    }
  }
  table.Print();

  uint64_t best_block = sharded_runs.front().block_bytes;
  for (const MeasuredRun& run : sharded_runs) {
    best_block = std::min(best_block, run.block_bytes);
  }
  const double reduction =
      extrapolated_block / static_cast<double>(std::max<uint64_t>(
                               best_block, 1));
  std::printf("best sharded block: %.1f MB -> %.2fx below the "
              "extrapolated monolithic block\n",
              static_cast<double>(best_block) / (1 << 20), reduction);

  // 4. The machine-readable record.
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value("slim-bench-sharded-v3");
  json.Key("build").Value(slim::BuildGitDescribe());
  json.Key("workload").Value("checkin");
  json.Key("quick").Value(quick);
  json.Key("hardware_threads")
      .Value(static_cast<int>(std::thread::hardware_concurrency()));
  json.Key("target_entities").Value(static_cast<uint64_t>(target));
  json.Key("deterministic").Value(deterministic);
  json.Key("monolithic_probes").BeginArray();
  for (const MeasuredRun& run : probe_runs) EmitRun(&json, run);
  json.EndArray();
  json.Key("extrapolated_monolithic").BeginObject();
  json.Key("entities").Value(static_cast<uint64_t>(target));
  json.Key("exponent").Value(exponent);
  json.Key("block_bytes").Value(static_cast<uint64_t>(extrapolated_block));
  json.EndObject();
  json.Key("runs").BeginArray();
  for (const MeasuredRun& run : sharded_runs) EmitRun(&json, run);
  json.EndArray();
  json.Key("rss_reduction_vs_extrapolated").Value(reduction);
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  out.close();
  std::printf("wrote %s (%zu sharded runs)\n", out_path.c_str(),
              sharded_runs.size());

  std::filesystem::remove_all(tmp_dir, ec);

  if (!deterministic) return 1;
  // The scalability gate: only meaningful at full scale, where the
  // extrapolation spans a real gap.
  if (!quick && reduction < kRssReductionGate) {
    std::fprintf(stderr,
                 "RSS GATE FAILURE: %.2fx < %.1fx required reduction vs "
                 "the extrapolated monolithic block\n",
                 reduction, kRssReductionGate);
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slim

int main(int argc, char** argv) { return slim::Main(argc, argv); }
