// Figure 5: effect of the spatio-temporal level — SM (check-in) dataset.
//
// Same four surfaces as Fig. 4 on the sparse, globally distributed social
// media workload. The paper's extra observations: best recall needs wider
// windows than on Cab (15 min, vs 5 min) because check-ins are sparse, and
// alibi detection needs larger windows because spatio-temporal skew is low.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 5", "precision / recall / alibis / comparisons vs "
      "(spatial level x window width) — SM",
      "same trends as Fig. 4 with a milder precision collapse; best recall "
      "at moderate (not minimal) window widths");

  const LocationDataset& master = CachedCheckinMaster(scale);
  auto sample = SampleLinkedPair(master, bench::SmSampleOptions(scale));
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
  std::printf("side A: %zu entities (%s records), side B: %zu entities, "
              "truth pairs: %zu\n",
              sample->a.num_entities(),
              FormatWithCommas(static_cast<int64_t>(sample->a.num_records()))
                  .c_str(),
              sample->b.num_entities(), sample->truth.size());

  TablePrinter table({"spatial_level", "window_min", "precision", "recall",
                      "f1", "alibi_pairs", "record_comparisons"});
  for (int level : {4, 8, 12, 16, 20}) {
    for (int64_t window_min : {15, 60, 120, 240, 360}) {
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.history.spatial_level = level;
      cfg.history.window_seconds = window_min * 60;
      const SlimLinker linker(cfg);
      auto r = linker.Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
      table.AddRow({std::to_string(level), std::to_string(window_min),
                    Fmt(q.precision), Fmt(q.recall), Fmt(q.f1),
                    FormatWithCommas(static_cast<int64_t>(
                        r->stats.alibi_pairs)),
                    FormatWithCommas(static_cast<int64_t>(
                        r->stats.record_comparisons))});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
