// Figure 4: effect of the spatio-temporal level — Cab dataset.
//
// Reproduces the four surfaces of the paper's Fig. 4: precision (a), recall
// (b), number of alibi pairs (c) and number of record comparisons (d) as a
// function of the spatial detail (grid level) and the temporal window width.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 4", "precision / recall / alibis / comparisons vs "
      "(spatial level x window width) — Cab",
      "precision & recall rise with spatial detail and plateau at level "
      ">= 12; precision collapses for windows beyond ~90 min at high "
      "detail; comparisons grow with both axes");

  const LocationDataset& master = CachedCabMaster(scale);
  auto sample = SampleLinkedPair(master, bench::CabSampleOptions(scale));
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  TablePrinter table({"spatial_level", "window_min", "precision", "recall",
                      "f1", "alibi_pairs", "record_comparisons"});
  for (int level : {4, 8, 12, 16, 20}) {
    for (int64_t window_min : {15, 60, 120, 240, 360}) {
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.history.spatial_level = level;
      cfg.history.window_seconds = window_min * 60;
      const SlimLinker linker(cfg);
      auto r = linker.Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
      table.AddRow({std::to_string(level), std::to_string(window_min),
                    Fmt(q.precision), Fmt(q.recall), Fmt(q.f1),
                    FormatWithCommas(static_cast<int64_t>(
                        r->stats.alibi_pairs)),
                    FormatWithCommas(static_cast<int64_t>(
                        r->stats.record_comparisons))});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
