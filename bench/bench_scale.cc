// Scale bench — the 1M-entities-per-side milestone: mmap-backed SCTX
// context, two-sided (L x K) sharding, and the streaming external matcher,
// all under one stated memory budget.
//
// Like bench_sharded, every measured configuration runs in a fresh child
// process (peak RSS is a process-monotone high-water mark), but the
// context build is hoisted OUT of the measured runs: a builder child
// interns the datasets once and serializes the context to an SCTX file
// (core/sctx.h); each measured child then maps that file read-only and
// runs LinkShardedContext with the graph stage disabled (keep_graph =
// false), so its peak RSS is the thing the tentpole bounds — one L x K
// block of candidates + scoring, the external sort's run buffers, and the
// matching — not the context build or the full edge graph.
//
// The parent:
//   1. generates the SM-style workload (sm1m-shaped; --quick is CI-sized),
//      writes both sides as SBIN, and runs the builder child;
//   2. runs the measured plan matrix — quick mode fixes it to
//      {(1,1), (2,4), (4,16)} x threads {1,8}, the ISSUE-9 acceptance
//      matrix — with a run-buffer budget small enough (quick) that the
//      multi-block plans actually spill to disk and k-way merge;
//   3. in quick mode also runs the MONOLITHIC driver on the same sides and
//      requires every measured run's links hash to equal it (bit-identity
//      gate); at any scale all measured runs must agree with each other;
//   4. gates every measured run's peak RSS against the stated budget and
//      writes BENCH_scale.json (schema slim-bench-scale-v1).
//
// Budgets (docs/BENCHMARKS.md, "Scaling to 1M entities per side", derives
// them): quick 2 GiB, full 12 GiB. Registered with ctest as
// bench_scale_quick — the determinism matrix is an acceptance gate, not
// just a report.
//
// Flags: --quick, --out FILE (default BENCH_scale.json), --entities N,
// --threads a,b,..., --plans LxK,LxK,..., --budget_mb M,
// --spill_run_bytes B. Internal: --child_sctx / --child ... (one builder /
// measured run; not for direct use).
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/build_info.h"
#include "eval/table.h"

namespace slim {
namespace {

// The stated peak-RSS budgets for a measured run (not the one-time
// context build, which the SCTX file exists to amortise away).
constexpr uint64_t kQuickBudgetBytes = uint64_t{2} << 30;
constexpr uint64_t kFullBudgetBytes = uint64_t{12} << 30;

const char* const kStageNames[] = {"histories", "lsh", "scoring", "matching",
                                   "total"};

double StageOf(const LinkageResult& r, const std::string& stage) {
  if (stage == "histories") return r.seconds_histories;
  if (stage == "lsh") return r.seconds_lsh;
  if (stage == "scoring") return r.seconds_scoring;
  if (stage == "matching") return r.seconds_matching;
  return r.seconds_total;
}

uint64_t RssOf(const LinkageResult& r, const std::string& stage) {
  if (stage == "histories") return r.rss_peak_histories;
  if (stage == "lsh") return r.rss_peak_lsh;
  if (stage == "scoring") return r.rss_peak_scoring;
  if (stage == "matching") return r.rss_peak_matching;
  return r.rss_peak_total;
}

// FNV-1a over the canonical link lines, same convention as bench_sharded:
// equal hashes across processes mean equal links at bit-level precision.
uint64_t HashLinks(const std::vector<LinkedEntityPair>& links) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](const std::string& s) {
    for (const char c : s) {
      h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    }
  };
  for (const auto& link : links) {
    mix(std::to_string(link.u) + "," + std::to_string(link.v) + "," +
        FormatFixed(link.score, 17) + "\n");
  }
  return h;
}

std::vector<size_t> ParseSizeList(const std::string& csv) {
  std::vector<size_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const long v = std::strtol(item.c_str(), nullptr, 10);
    SLIM_CHECK_MSG(v > 0, "list entries must be positive integers");
    out.push_back(static_cast<size_t>(v));
  }
  SLIM_CHECK_MSG(!out.empty(), "empty list flag");
  return out;
}

// "LxK,LxK,..." -> per-plan (left_shards, shards) pairs.
std::vector<std::pair<int, int>> ParsePlanList(const std::string& csv) {
  std::vector<std::pair<int, int>> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const size_t x = item.find('x');
    SLIM_CHECK_MSG(x != std::string::npos, "plans are LxK pairs");
    const long l = std::strtol(item.c_str(), nullptr, 10);
    const long k = std::strtol(item.c_str() + x + 1, nullptr, 10);
    SLIM_CHECK_MSG(l > 0 && k > 0, "plan sides must be positive");
    out.push_back({static_cast<int>(l), static_cast<int>(k)});
  }
  SLIM_CHECK_MSG(!out.empty(), "empty plan list");
  return out;
}

// Scans `json` for `"key": <unsigned integer>` with full 64-bit precision
// (the links_hash comparison is a bit-identity gate); 0 when absent.
uint64_t FindUint(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\"";
  size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  pos += needle.size();
  while (pos < json.size() &&
         (std::isspace(static_cast<unsigned char>(json[pos])) != 0 ||
          json[pos] == ':')) {
    ++pos;
  }
  return pos < json.size() ? std::strtoull(json.c_str() + pos, nullptr, 10)
                           : 0;
}

void WriteRunRecord(const LinkageResult& r, uint64_t entities, int threads,
                    const std::string& out_json) {
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("entities").Value(entities);
  json.Key("threads").Value(threads > 0 ? threads : DefaultThreadCount());
  json.Key("shards").Value(r.shards_used);
  json.Key("left_shards").Value(r.left_shards_used);
  json.Key("links").Value(static_cast<uint64_t>(r.links.size()));
  json.Key("links_hash").Value(HashLinks(r.links));
  json.Key("candidate_pairs").Value(r.candidate_pairs);
  json.Key("spilled_edges").Value(r.spilled_edges);
  json.Key("spill_on_disk").Value(r.spill_on_disk);
  json.Key("spill_bytes_written").Value(r.spill_bytes_written);
  json.Key("merge_passes").Value(r.merge_passes);
  json.Key("seconds").BeginObject();
  for (const char* stage : kStageNames) {
    json.Key(stage).Value(StageOf(r, stage));
  }
  json.EndObject();
  json.Key("peak_rss_bytes").BeginObject();
  for (const char* stage : kStageNames) {
    json.Key(stage).Value(RssOf(r, stage));
  }
  json.EndObject();
  json.EndObject();

  std::ofstream out(out_json);
  SLIM_CHECK_MSG(out.good(), "cannot write child record");
  out << json.str();
}

// ---- Builder child: intern once, serialize the SCTX file. ----

int SctxChildMain(const std::string& path_a, const std::string& path_b,
                  int threads, const std::string& sctx_path) {
  auto a = ReadDataset(path_a, "A");
  SLIM_CHECK_MSG(a.ok(), a.status().ToString().c_str());
  auto b = ReadDataset(path_b, "B");
  SLIM_CHECK_MSG(b.ok(), b.status().ToString().c_str());
  const SlimConfig config;  // stock history parameters
  const LinkageContext context =
      LinkageContext::Build(*a, *b, config.history, threads);
  const Status st = WriteSctx(context, sctx_path);
  SLIM_CHECK_MSG(st.ok(), st.ToString().c_str());
  return 0;
}

// ---- Measured child: map the SCTX file, run one (L, K, threads) plan
// with the streaming matcher, report the run record. ----

int ChildMain(const std::string& sctx_path, int threads, int left_shards,
              int shards, uint64_t spill_run_bytes,
              const std::string& out_json) {
  SlimConfig config;  // stock pipeline defaults, LSH on
  config.threads = threads;
  config.left_shards = left_shards;
  config.shards = shards;
  config.keep_graph = false;  // the streaming external matcher is the point
  if (spill_run_bytes > 0) config.spill_run_bytes = spill_run_bytes;

  SctxReadOptions read_options;
  read_options.build_trees = true;  // LSH candidates query the window trees
  read_options.threads = threads;
  auto context = ReadSctx(sctx_path, read_options);
  SLIM_CHECK_MSG(context.ok(), context.status().ToString().c_str());

  const SlimLinker linker(config);
  auto result = linker.LinkShardedContext(*context);
  SLIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  WriteRunRecord(*result, static_cast<uint64_t>(context->store_e.size()),
                 threads, out_json);
  return 0;
}

// ---- Monolithic reference child (quick mode's bit-identity anchor). ----

int MonoChildMain(const std::string& path_a, const std::string& path_b,
                  int threads, const std::string& out_json) {
  auto a = ReadDataset(path_a, "A");
  SLIM_CHECK_MSG(a.ok(), a.status().ToString().c_str());
  auto b = ReadDataset(path_b, "B");
  SLIM_CHECK_MSG(b.ok(), b.status().ToString().c_str());
  SlimConfig config;
  config.threads = threads;
  const SlimLinker linker(config);
  auto result = linker.Link(*a, *b);
  SLIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  WriteRunRecord(*result, static_cast<uint64_t>(a->num_entities()), threads,
                 out_json);
  return 0;
}

// ---- Parent mode. ----

struct MeasuredRun {
  bench::PipelineRunRecord record;
  uint64_t links = 0;
  uint64_t links_hash = 0;
  uint64_t candidate_pairs = 0;
  uint64_t spilled_edges = 0;
  bool spill_on_disk = false;
  uint64_t peak_rss = 0;
};

MeasuredRun ReadRunRecord(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string doc = buffer.str();
  const std::vector<bench::PipelineRunRecord> parsed =
      bench::ParsePipelineRuns(doc);
  SLIM_CHECK_MSG(parsed.size() == 1, "child record did not parse");
  MeasuredRun run;
  run.record = parsed.front();
  run.links = FindUint(doc, "links");
  run.links_hash = FindUint(doc, "links_hash");
  run.candidate_pairs = FindUint(doc, "candidate_pairs");
  run.spilled_edges = FindUint(doc, "spilled_edges");
  run.spill_on_disk = doc.find("\"spill_on_disk\": true") != std::string::npos;
  for (const auto& [name, v] : run.record.peak_rss_bytes) {
    if (name == "total") run.peak_rss = static_cast<uint64_t>(v);
  }
  return run;
}

int RunCommand(const std::string& cmd) {
  const int rc = std::system(cmd.c_str());
  SLIM_CHECK_MSG(rc == 0, "child run failed");
  return rc;
}

void EmitRun(bench::JsonWriter* json, const MeasuredRun& run) {
  json->BeginObject();
  json->Key("entities").Value(run.record.entities);
  json->Key("threads").Value(run.record.threads);
  json->Key("shards").Value(run.record.shards);
  json->Key("left_shards").Value(run.record.left_shards);
  json->Key("links").Value(run.links);
  json->Key("links_hash").Value(run.links_hash);
  json->Key("candidate_pairs").Value(run.candidate_pairs);
  json->Key("spilled_edges").Value(run.spilled_edges);
  json->Key("spill_on_disk").Value(run.spill_on_disk);
  json->Key("spill_bytes_written").Value(run.record.spill_bytes_written);
  json->Key("merge_passes").Value(run.record.merge_passes);
  json->Key("seconds").BeginObject();
  for (const auto& [name, v] : run.record.seconds) {
    json->Key(name).Value(v);
  }
  json->EndObject();
  json->Key("peak_rss_bytes").BeginObject();
  for (const auto& [name, v] : run.record.peak_rss_bytes) {
    json->Key(name).Value(static_cast<uint64_t>(v));
  }
  json->EndObject();
  json->EndObject();
}

int Main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_scale.json";
  std::string entities_flag, threads_flag, plans_flag;
  uint64_t budget_bytes = 0;
  uint64_t spill_run_bytes = 0;
  // Child-mode flags.
  bool child = false, child_sctx = false, child_mono = false;
  std::string child_a, child_b, child_out, sctx_path;
  int child_threads = 0, child_left = 0, child_shards = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      SLIM_CHECK_MSG(i + 1 < argc, "flag needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--child") {
      child = true;
    } else if (arg == "--child_sctx") {
      child_sctx = true;
    } else if (arg == "--mono") {
      child_mono = true;
    } else if (arg == "--a" || arg.rfind("--a=", 0) == 0) {
      child_a = value("--a");
    } else if (arg == "--b" || arg.rfind("--b=", 0) == 0) {
      child_b = value("--b");
    } else if (arg == "--sctx" || arg.rfind("--sctx=", 0) == 0) {
      sctx_path = value("--sctx");
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      out_path = child_out = value("--out");
    } else if (arg == "--entities" || arg.rfind("--entities=", 0) == 0) {
      entities_flag = value("--entities");
    } else if (arg == "--threads" || arg.rfind("--threads=", 0) == 0) {
      threads_flag = value("--threads");
      child_threads = static_cast<int>(
          std::strtol(threads_flag.c_str(), nullptr, 10));
    } else if (arg == "--left_shards" ||
               arg.rfind("--left_shards=", 0) == 0) {
      child_left = static_cast<int>(
          std::strtol(value("--left_shards").c_str(), nullptr, 10));
    } else if (arg == "--shards" || arg.rfind("--shards=", 0) == 0) {
      child_shards = static_cast<int>(
          std::strtol(value("--shards").c_str(), nullptr, 10));
    } else if (arg == "--plans" || arg.rfind("--plans=", 0) == 0) {
      plans_flag = value("--plans");
    } else if (arg == "--budget_mb" || arg.rfind("--budget_mb=", 0) == 0) {
      budget_bytes = static_cast<uint64_t>(std::strtoull(
                         value("--budget_mb").c_str(), nullptr, 10))
                     << 20;
    } else if (arg == "--spill_run_bytes" ||
               arg.rfind("--spill_run_bytes=", 0) == 0) {
      spill_run_bytes = std::strtoull(
          value("--spill_run_bytes").c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: bench_scale [--quick] [--out FILE] "
                   "[--entities N] [--threads a,b,...] "
                   "[--plans LxK,LxK,...] [--budget_mb M] "
                   "[--spill_run_bytes B]\n");
      return 2;
    }
  }
  if (child_sctx) {
    return SctxChildMain(child_a, child_b, child_threads, sctx_path);
  }
  if (child) {
    return child_mono
               ? MonoChildMain(child_a, child_b, child_threads, child_out)
               : ChildMain(sctx_path, child_threads, child_left, child_shards,
                           spill_run_bytes, child_out);
  }

  // Full mode targets the sm1m scenario; quick mode is the CI-sized
  // acceptance matrix. The quick run-buffer budget is tiny on purpose: the
  // multi-block plans must actually spill to disk and k-way merge, or the
  // determinism gate would only exercise the in-memory path.
  size_t target = quick ? 2000 : 1000000;
  std::vector<size_t> thread_counts =
      quick ? std::vector<size_t>{1, 8}
            : std::vector<size_t>{std::max(
                  1u, std::thread::hardware_concurrency())};
  std::vector<std::pair<int, int>> plans =
      quick ? std::vector<std::pair<int, int>>{{1, 1}, {2, 4}, {4, 16}}
            : std::vector<std::pair<int, int>>{{4, 16}};
  if (!plans_flag.empty()) plans = ParsePlanList(plans_flag);
  if (budget_bytes == 0) {
    budget_bytes = quick ? kQuickBudgetBytes : kFullBudgetBytes;
  }
  if (spill_run_bytes == 0) {
    spill_run_bytes = quick ? uint64_t{64} << 10 : uint64_t{64} << 20;
  }
  if (!entities_flag.empty()) target = ParseSizeList(entities_flag).front();
  if (!threads_flag.empty()) thread_counts = ParseSizeList(threads_flag);

  std::printf("==================================================\n");
  std::printf("scale bench — mmap SCTX + L x K sharding + external matcher\n");
  std::printf("workload: SM-style check-ins; target %zu entities/side; "
              "plans:", target);
  for (const auto& [l, k] : plans) std::printf(" %dx%d", l, k);
  std::printf("; threads:");
  for (size_t t : thread_counts) std::printf(" %zu", t);
  std::printf("\nmemory budget: %llu MB per measured run; spill run "
              "buffer: %llu bytes%s\n",
              static_cast<unsigned long long>(budget_bytes >> 20),
              static_cast<unsigned long long>(spill_run_bytes),
              quick ? " (quick)" : "");
  std::printf("==================================================\n");

  std::error_code ec;
  const std::filesystem::path tmp_dir =
      std::filesystem::temp_directory_path() /
      ("slim_bench_scale_" +
       std::to_string(static_cast<long>(::getpid())));
  std::filesystem::create_directories(tmp_dir, ec);
  SLIM_CHECK_MSG(!ec, "cannot create bench temp dir");

  // Workload: the sm1m preset shape (2x-target master, both sides sampled
  // from it) at whatever scale was requested.
  CheckinGeneratorOptions gen;
  gen.num_users = static_cast<int>(target * 2);
  gen.seed = 2301;
  std::printf("generating %d-user master...\n", gen.num_users);
  const LocationDataset master = GenerateCheckinDataset(gen);
  PairSampleOptions sampling;
  sampling.entities_per_side = target;
  sampling.intersection_ratio = 0.5;
  sampling.inclusion_probability = 0.5;
  sampling.seed = 2302;
  auto sample = SampleLinkedPair(master, sampling);
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
  const std::string path_a = (tmp_dir / "a.sbin").string();
  const std::string path_b = (tmp_dir / "b.sbin").string();
  SLIM_CHECK(WriteDataset(sample->a, path_a, DatasetFormat::kSbin).ok());
  SLIM_CHECK(WriteDataset(sample->b, path_b, DatasetFormat::kSbin).ok());

  // Builder child: one intern + serialize, outside every measured run.
  const std::string self = argv[0];
  const std::string sctx_file = (tmp_dir / "context.sctx").string();
  std::printf("building + serializing the SCTX context...\n");
  RunCommand("\"" + self + "\" --child_sctx --a \"" + path_a + "\" --b \"" +
             path_b + "\" --sctx \"" + sctx_file + "\"");
  const uint64_t sctx_bytes =
      static_cast<uint64_t>(std::filesystem::file_size(sctx_file, ec));
  std::printf("SCTX file: %.1f MB\n",
              static_cast<double>(sctx_bytes) / (1 << 20));

  // Measured plan matrix.
  int ordinal = 0;
  TablePrinter table({"plan", "threads", "scoring_s", "matching_s",
                      "total_s", "merges", "spill_mb", "peak_mb", "links"});
  auto add_row = [&](const std::string& plan, const MeasuredRun& run) {
    table.AddRow(
        {plan, std::to_string(run.record.threads),
         Fmt(run.record.StageSeconds("scoring"), 3),
         Fmt(run.record.StageSeconds("matching"), 3),
         Fmt(run.record.StageSeconds("total"), 3),
         std::to_string(run.record.merge_passes),
         Fmt(static_cast<double>(run.record.spill_bytes_written) / (1 << 20),
             1),
         Fmt(static_cast<double>(run.peak_rss) / (1 << 20), 1),
         std::to_string(run.links)});
  };
  std::vector<MeasuredRun> runs;
  for (const auto& [l, k] : plans) {
    for (const size_t t : thread_counts) {
      std::printf("measured: plan %dx%d, %zu thread(s)...\n", l, k, t);
      const std::filesystem::path out =
          tmp_dir / ("child_" + std::to_string(ordinal++) + ".json");
      RunCommand("\"" + self + "\" --child --sctx \"" + sctx_file +
                 "\" --threads " + std::to_string(t) + " --left_shards " +
                 std::to_string(l) + " --shards " + std::to_string(k) +
                 " --spill_run_bytes " + std::to_string(spill_run_bytes) +
                 " --out \"" + out.string() + "\"");
      runs.push_back(ReadRunRecord(out));
      add_row(std::to_string(l) + "x" + std::to_string(k), runs.back());
    }
  }

  // Determinism: all measured runs agree; in quick mode they must also
  // match the monolithic driver bit for bit.
  bool deterministic = true;
  for (const MeasuredRun& run : runs) {
    if (run.links_hash != runs.front().links_hash ||
        run.links != runs.front().links) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: plan %dx%d links differ\n",
                   run.record.left_shards, run.record.shards);
      deterministic = false;
    }
  }
  bool have_mono = false;
  MeasuredRun mono;
  if (quick) {
    std::printf("reference: monolithic driver...\n");
    const std::filesystem::path out =
        tmp_dir / ("child_" + std::to_string(ordinal++) + ".json");
    RunCommand("\"" + self + "\" --child --mono --a \"" + path_a +
               "\" --b \"" + path_b + "\" --threads 1 --out \"" +
               out.string() + "\"");
    mono = ReadRunRecord(out);
    have_mono = true;
    add_row("mono", mono);
    if (mono.links_hash != runs.front().links_hash ||
        mono.links != runs.front().links) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: sharded links differ from the "
                   "monolithic driver\n");
      deterministic = false;
    }
  }
  table.Print();

  // The memory gate.
  bool under_budget = true;
  for (const MeasuredRun& run : runs) {
    if (run.peak_rss > budget_bytes) {
      std::fprintf(stderr,
                   "MEMORY GATE FAILURE: plan %dx%d threads %d peaked at "
                   "%.1f MB > %llu MB budget\n",
                   run.record.left_shards, run.record.shards,
                   run.record.threads,
                   static_cast<double>(run.peak_rss) / (1 << 20),
                   static_cast<unsigned long long>(budget_bytes >> 20));
      under_budget = false;
    }
  }

  // The machine-readable record.
  bench::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value("slim-bench-scale-v1");
  json.Key("build").Value(slim::BuildGitDescribe());
  json.Key("workload").Value("checkin");
  json.Key("quick").Value(quick);
  json.Key("hardware_threads")
      .Value(static_cast<int>(std::thread::hardware_concurrency()));
  json.Key("target_entities").Value(static_cast<uint64_t>(target));
  json.Key("memory_budget_bytes").Value(budget_bytes);
  json.Key("sctx_bytes").Value(sctx_bytes);
  json.Key("deterministic").Value(deterministic);
  json.Key("runs").BeginArray();
  for (const MeasuredRun& run : runs) EmitRun(&json, run);
  json.EndArray();
  if (have_mono) {
    json.Key("monolithic_reference");
    EmitRun(&json, mono);
  }
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 2;
  }
  out << json.str();
  out.close();
  std::printf("wrote %s (%zu measured runs)\n", out_path.c_str(),
              runs.size());

  std::filesystem::remove_all(tmp_dir, ec);
  return deterministic && under_budget ? 0 : 1;
}

}  // namespace
}  // namespace slim

int main(int argc, char** argv) { return slim::Main(argc, argv); }
