// Figure 8: LSH accuracy (relative F1) and speed-up as a function of the
// signature spatial level and the temporal step size — Cab and SM.
//
// Relative F1 = F1(with LSH) / F1(brute force); speed-up = record
// comparisons without LSH / with LSH (the paper's metric). Paper shape:
// coarse signature levels give no speed-up (everyone shares one dominating
// cell) and full relative F1; finer levels buy orders of magnitude while
// keeping ~90+% of F1, with SM speed-ups far larger than Cab because the
// entity count is larger.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void RunDataset(const char* name, const LocationDataset& master,
                PairSampleOptions sample_opt, int history_level) {
  std::printf("\n--- %s ---\n", name);
  auto sample = SampleLinkedPair(master, sample_opt);
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  // Brute-force reference (the shared denominator).
  SlimConfig bf = bench::DefaultSlimConfig();
  bf.history.spatial_level = history_level;
  auto r_bf = SlimLinker(bf).Link(sample->a, sample->b);
  SLIM_CHECK_MSG(r_bf.ok(), r_bf.status().ToString().c_str());
  const double f1_bf = EvaluateLinks(r_bf->links, sample->truth).f1;
  const uint64_t cmp_bf = r_bf->stats.record_comparisons;
  std::printf("brute force: F1=%.4f comparisons=%s\n", f1_bf,
              FormatWithCommas(static_cast<int64_t>(cmp_bf)).c_str());

  TablePrinter table({"sig_level", "step_windows", "relative_f1", "speedup",
                      "candidate_pairs"});
  // Level 10 is added to the paper's {4,8,12,16,20} axis: on the scaled-
  // down workloads the recall/speed-up sweet spot sits between 8 and 12.
  for (int sig_level : {4, 8, 10, 12, 16, 20}) {
    if (sig_level > history_level) continue;
    for (int step : {1, 12, 48, 96, 192}) {
      SlimConfig cfg = bf;
      cfg.candidates = CandidateKind::kLsh;
      cfg.lsh.signature_spatial_level = sig_level;
      cfg.lsh.temporal_step_windows = step;
      cfg.lsh.similarity_threshold = 0.6;
      cfg.lsh.num_buckets = 4096;
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const double f1 = EvaluateLinks(r->links, sample->truth).f1;
      const double rel = f1_bf > 0.0 ? f1 / f1_bf : 0.0;
      const double speedup =
          r->stats.record_comparisons > 0
              ? static_cast<double>(cmp_bf) /
                    static_cast<double>(r->stats.record_comparisons)
              : static_cast<double>(cmp_bf);
      table.AddRow({std::to_string(sig_level), std::to_string(step),
                    Fmt(rel, 3), Fmt(speedup, 1),
                    FormatWithCommas(
                        static_cast<int64_t>(r->candidate_pairs))});
    }
  }
  table.Print();
}

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 8", "LSH relative F1 and speed-up vs (signature spatial level "
      "x temporal step) — Cab and SM",
      "no speed-up at coarse signature levels; 1-3 orders of magnitude at "
      "finer levels while preserving most of the F1; SM speed-ups exceed "
      "Cab's");

  // Histories are built at a fine leaf level so signature levels up to 20
  // can be derived by aggregation.
  RunDataset("Cab", CachedCabMaster(scale), bench::CabSampleOptions(scale),
             /*history_level=*/20);
  RunDataset("SM", CachedCheckinMaster(scale), bench::SmSampleOptions(scale),
             /*history_level=*/20);
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
