// Sec. 3.3 claim: the spatial-level auto-tuner picks the accuracy/cost knee.
//
// Prints the pair-vs-self similarity ratio curve per candidate level for
// both workloads and the selected level (paper: level 12 for 15-minute
// windows), then cross-checks against the F1 plateau of Fig. 4.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void RunDataset(const char* name, const LocationDataset& master,
                PairSampleOptions sample_opt) {
  std::printf("\n--- %s ---\n", name);
  auto sample = SampleLinkedPair(master, sample_opt);
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  TuningOptions opt;
  opt.candidate_levels = {4, 6, 8, 10, 12, 14, 16, 18, 20};
  opt.window_seconds = 900;
  auto ra = AutoTuneSpatialLevel(sample->a, opt);
  auto rb = AutoTuneSpatialLevel(sample->b, opt);
  SLIM_CHECK_MSG(ra.ok(), ra.status().ToString().c_str());
  SLIM_CHECK_MSG(rb.ok(), rb.status().ToString().c_str());

  TablePrinter table({"level", "ratio_A", "ratio_B"});
  for (size_t k = 0; k < ra->curve.size(); ++k) {
    table.AddRow({std::to_string(ra->curve[k].level),
                  Fmt(ra->curve[k].avg_ratio), Fmt(rb->curve[k].avg_ratio)});
  }
  table.Print();
  auto pair_level = AutoTuneSpatialLevelForPair(sample->a, sample->b, opt);
  SLIM_CHECK_MSG(pair_level.ok(), pair_level.status().ToString().c_str());
  std::printf("selected level: A=%d (elbow %s), B=%d (elbow %s), "
              "linkage uses max = %d\n",
              ra->selected_level, ra->elbow_found ? "yes" : "fallback",
              rb->selected_level, rb->elbow_found ? "yes" : "fallback",
              *pair_level);

  // Cross-check: F1 at the selected level should be within a whisker of
  // the best F1 across all levels, at a fraction of the comparisons.
  double best_f1 = 0.0;
  uint64_t best_cmp = 0;
  double sel_f1 = 0.0;
  uint64_t sel_cmp = 0;
  for (int level : opt.candidate_levels) {
    SlimConfig cfg = bench::DefaultSlimConfig();
    cfg.history.spatial_level = level;
    auto r = SlimLinker(cfg).Link(sample->a, sample->b);
    SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
    const double f1 = EvaluateLinks(r->links, sample->truth).f1;
    if (f1 > best_f1) {
      best_f1 = f1;
      best_cmp = r->stats.record_comparisons;
    }
    if (level == *pair_level) {
      sel_f1 = f1;
      sel_cmp = r->stats.record_comparisons;
    }
  }
  std::printf("F1 at selected level: %.4f (best across levels: %.4f); "
              "comparisons at selected: %s (at best level: %s)\n",
              sel_f1, best_f1,
              FormatWithCommas(static_cast<int64_t>(sel_cmp)).c_str(),
              FormatWithCommas(static_cast<int64_t>(best_cmp)).c_str());
}

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Sec. 3.3 auto-tuning", "pair/self similarity ratio curve and the "
      "selected spatial level — Cab and SM",
      "curve falls then flattens; the elbow lands at the F1 plateau "
      "(level ~12 for 15-min windows) without paying for finer levels");

  RunDataset("Cab", CachedCabMaster(scale), bench::CabSampleOptions(scale));
  RunDataset("SM", CachedCheckinMaster(scale), bench::SmSampleOptions(scale));
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
