// Figure 11 (a, b): comparison with existing work at low record densities —
// Hit-Precision@40, F1 and runtime vs average records per entity, for
// SLIM (with LSH), SLIM without LSH, ST-Link and GM.
//
// Setup mirrors the paper: a 1-week Cab pivot; the opposite side is
// resampled at decreasing record densities; intersection 0.5 so the best
// achievable hit precision is 0.5. Paper shape: ST-Link reaches max hit
// precision with very few records; SLIM dominates GM everywhere and leads
// on F1 at every density (0.3 vs ~0.05 at the sparsest point); GM is two
// orders of magnitude slower.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 11 (a, b)", "HitPrecision@40 / F1 / runtime vs avg records — "
      "SLIM, SLIM-noLSH, ST-Link, GM on a 1-week Cab subset",
      "all reach high hit precision; SLIM leads F1 at every density; GM is "
      "~2 orders of magnitude slower");

  // Dedicated 1-week master so record densities can be swept widely.
  CabGeneratorOptions gopt;
  gopt.num_taxis = scale == BenchScale::kFull ? 530 : 60;
  gopt.duration_days = 7.0;
  gopt.record_interval_seconds = scale == BenchScale::kFull ? 100.0 : 450.0;
  gopt.seed = 21;
  const LocationDataset master = GenerateCabDataset(gopt);
  const double master_records_per_taxi = master.AvgRecordsPerEntity();

  const size_t side =
      scale == BenchScale::kFull ? 265 : 30;
  TablePrinter table({"avg_records", "algorithm", "hit_precision@40", "f1",
                      "runtime_sec"});

  for (double target : {20.0, 40.0, 80.0, 165.0, 330.0, 660.0}) {
    PairSampleOptions opt;
    opt.entities_per_side = side;
    opt.intersection_ratio = 0.5;
    opt.inclusion_probability =
        std::min(1.0, target / master_records_per_taxi);
    opt.seed = 31;
    auto sample = SampleLinkedPair(master, opt);
    SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());
    const double avg = 0.5 * (sample->a.AvgRecordsPerEntity() +
                              sample->b.AvgRecordsPerEntity());
    const auto& lefts = sample->a.entity_ids();

    // SLIM with LSH.
    {
      SlimConfig cfg = bench::DefaultSlimConfig();
      // Library-default conservative LSH operating point.
      cfg.candidates = CandidateKind::kLsh;
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      table.AddRow({Fmt(avg, 0), "SLIM",
                    Fmt(HitPrecisionAtK(r->graph, lefts, sample->truth, 40)),
                    Fmt(EvaluateLinks(r->links, sample->truth).f1),
                    Fmt(r->seconds_total, 3)});
    }
    // SLIM without LSH.
    {
      SlimConfig cfg = bench::DefaultSlimConfig();
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      table.AddRow({Fmt(avg, 0), "SLIM-noLSH",
                    Fmt(HitPrecisionAtK(r->graph, lefts, sample->truth, 40)),
                    Fmt(EvaluateLinks(r->links, sample->truth).f1),
                    Fmt(r->seconds_total, 3)});
    }
    // ST-Link.
    {
      StLinkConfig cfg;
      cfg.alibi_tolerance = 3;
      auto r = StLinkLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      table.AddRow({Fmt(avg, 0), "ST-Link",
                    Fmt(HitPrecisionAtK(r->graph, lefts, sample->truth, 40)),
                    Fmt(EvaluateLinks(r->links, sample->truth).f1),
                    Fmt(r->seconds_total, 3)});
    }
    // GM.
    {
      GmConfig cfg;
      auto r = GmLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      table.AddRow({Fmt(avg, 0), "GM",
                    Fmt(HitPrecisionAtK(r->graph, lefts, sample->truth, 40)),
                    Fmt(EvaluateLinks(r->links, sample->truth).f1),
                    Fmt(r->seconds_total, 3)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
