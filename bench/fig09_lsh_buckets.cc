// Figure 9: LSH speed-up as a function of the number of hash buckets, for
// different LSH similarity thresholds — Cab and SM.
//
// Paper shape: more buckets -> fewer accidental hash collisions -> larger
// speed-up, saturating once collisions vanish; higher similarity
// thresholds t also increase the speed-up (fewer candidates); relative F1
// is unaffected by the bucket count itself.
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void RunDataset(const char* name, const LocationDataset& master,
                PairSampleOptions sample_opt) {
  std::printf("\n--- %s ---\n", name);
  auto sample = SampleLinkedPair(master, sample_opt);
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  const int history_level = 16;
  SlimConfig bf = bench::DefaultSlimConfig();
  bf.history.spatial_level = history_level;
  auto r_bf = SlimLinker(bf).Link(sample->a, sample->b);
  SLIM_CHECK_MSG(r_bf.ok(), r_bf.status().ToString().c_str());
  const uint64_t cmp_bf = r_bf->stats.record_comparisons;
  const double f1_bf = EvaluateLinks(r_bf->links, sample->truth).f1;

  TablePrinter table(
      {"threshold_t", "buckets", "speedup", "relative_f1"});
  for (double t : {0.4, 0.5, 0.6, 0.7, 0.8}) {
    for (size_t buckets : {size_t{1} << 8, size_t{1} << 12, size_t{1} << 16,
                           size_t{1} << 20}) {
      SlimConfig cfg = bf;
      cfg.candidates = CandidateKind::kLsh;
      cfg.lsh.signature_spatial_level = 16;
      cfg.lsh.temporal_step_windows = 48;
      cfg.lsh.similarity_threshold = t;
      cfg.lsh.num_buckets = buckets;
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const double speedup =
          r->stats.record_comparisons > 0
              ? static_cast<double>(cmp_bf) /
                    static_cast<double>(r->stats.record_comparisons)
              : static_cast<double>(cmp_bf);
      const double f1 = EvaluateLinks(r->links, sample->truth).f1;
      table.AddRow({Fmt(t, 1), FormatWithCommas(static_cast<int64_t>(buckets)),
                    Fmt(speedup, 1), Fmt(f1_bf > 0 ? f1 / f1_bf : 0.0, 3)});
    }
  }
  table.Print();
}

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Figure 9", "LSH speed-up vs number of hash buckets, per similarity "
      "threshold t — Cab and SM",
      "speed-up grows with the bucket count then saturates; larger t gives "
      "larger speed-up; SM speed-ups are much larger than Cab's");

  RunDataset("Cab", CachedCabMaster(scale), bench::CabSampleOptions(scale));
  RunDataset("SM", CachedCheckinMaster(scale), bench::SmSampleOptions(scale));
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
