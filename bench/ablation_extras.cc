// Extra ablations beyond the paper's Fig. 10, covering the remaining design
// choices called out in DESIGN.md §4:
//   (a) the BM25-style length-normalisation parameter b of Eq. 2,
//   (b) the stop-threshold detector backend (GMM-expected-F1 vs Otsu vs
//       2-means — the paper reports "similar results", Sec. 5.2.1),
//   (c) the matcher: the paper's greedy heuristic vs the exact Hungarian
//       solver (quality and cost of the assignment step).
#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

void Run() {
  const BenchScale scale = BenchScaleFromEnv();
  bench::PrintHeader(
      "Extra ablations", "b parameter, threshold detector backend, matcher "
      "choice — Cab",
      "b near 0.5 is a broad optimum; all three detectors land similar "
      "thresholds; greedy matches Hungarian's linkage quality at a "
      "fraction of the cost");

  const LocationDataset& master = CachedCabMaster(scale);
  auto sample = SampleLinkedPair(master, bench::CabSampleOptions(scale));
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  std::printf("\n--- (a) length-normalisation parameter b (Eq. 2) ---\n");
  {
    TablePrinter table({"b", "precision", "recall", "f1"});
    for (double b : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.similarity.b = b;
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
      table.AddRow({Fmt(b, 2), Fmt(q.precision), Fmt(q.recall), Fmt(q.f1)});
    }
    table.Print();
  }

  std::printf("\n--- (b) stop-threshold detector backend ---\n");
  {
    TablePrinter table(
        {"detector", "threshold", "precision", "recall", "f1"});
    struct Entry {
      const char* name;
      ThresholdMethod method;
    };
    for (const Entry& e :
         {Entry{"gmm_expected_f1", ThresholdMethod::kGmmExpectedF1},
          Entry{"otsu", ThresholdMethod::kOtsu},
          Entry{"two_means", ThresholdMethod::kTwoMeans}}) {
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.threshold_method = e.method;
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
      table.AddRow({e.name,
                    r->threshold_valid ? Fmt(r->threshold.threshold, 1)
                                       : "n/a",
                    Fmt(q.precision), Fmt(q.recall), Fmt(q.f1)});
    }
    table.Print();
  }

  std::printf("\n--- (c) matcher: greedy heuristic vs exact Hungarian ---\n");
  {
    TablePrinter table({"matcher", "total_weight", "f1", "matching_sec"});
    for (bool hungarian : {false, true}) {
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.matcher =
          hungarian ? MatcherKind::kHungarian : MatcherKind::kGreedy;
      auto r = SlimLinker(cfg).Link(sample->a, sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, sample->truth);
      table.AddRow({hungarian ? "hungarian" : "greedy",
                    Fmt(r->matching.total_weight, 1), Fmt(q.f1),
                    Fmt(r->seconds_matching, 4)});
    }
    table.Print();
  }

  std::printf("\n--- (d) region records (Sec. 2.1 extension) under "
              "location noise ---\n");
  {
    // Re-sample with strong per-side location noise: region records absorb
    // cell-boundary jitter that point records cannot.
    PairSampleOptions noisy = bench::CabSampleOptions(scale);
    noisy.location_noise_meters = 1500.0;
    auto noisy_sample = SampleLinkedPair(master, noisy);
    SLIM_CHECK_MSG(noisy_sample.ok(),
                   noisy_sample.status().ToString().c_str());
    TablePrinter table({"record_semantics", "precision", "recall", "f1"});
    for (double radius : {0.0, 2000.0}) {
      SlimConfig cfg = bench::DefaultSlimConfig();
      cfg.history.spatial_level = 14;
      cfg.history.region_radius_meters = radius;
      auto r = SlimLinker(cfg).Link(noisy_sample->a, noisy_sample->b);
      SLIM_CHECK_MSG(r.ok(), r.status().ToString().c_str());
      const LinkageQuality q = EvaluateLinks(r->links, noisy_sample->truth);
      table.AddRow({radius > 0 ? "regions(2km)" : "points", Fmt(q.precision),
                    Fmt(q.recall), Fmt(q.f1)});
    }
    table.Print();
  }
}

}  // namespace
}  // namespace slim

int main() { slim::Run(); }
