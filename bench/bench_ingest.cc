// Ingest/egress throughput bench — the data-layer perf record.
//
// Synthesizes a mobility dataset, writes it as CSV and SBIN, then times
// every ingest path: CSV write, CSV read serial (1 thread), CSV read
// parallel (each entry of --threads), SBIN write, SBIN read. Prints a
// rows/sec table and writes BENCH_ingest.json (schema
// slim-bench-ingest-v1). Two gates ride along, mirroring bench_pipeline:
//
//   * Determinism: every parallel CSV read must be bit-identical to the
//     serial read — a mismatch aborts with exit code 1.
//   * Regression (--baseline FILE): any op slower than 2x its committed
//     baseline time (same op x threads cell) fails with exit code 1.
//     Baseline cells under 50 ms are ignored as noise.
//
// Flags: --quick (CI-sized row count), --rows N, --threads a,b,...,
// --out FILE (default BENCH_ingest.json), --baseline FILE.
// See docs/BENCHMARKS.md.
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "bench_util.h"
#include "eval/table.h"

namespace slim {
namespace {

constexpr double kRegressionFactor = 2.0;
constexpr double kRegressionFloorSeconds = 0.05;

struct IngestRun {
  std::string op;  // "csv_write", "csv_read", "sbin_write", "sbin_read"
  int threads = 1;
  double seconds = 0.0;
  uint64_t rows = 0;
  uint64_t bytes = 0;
};

// One (op, threads, seconds) cell read back from a BENCH_ingest.json.
// Scans for the known keys in emission order, like bench_util's
// ParsePipelineRuns.
struct IngestRunRecord {
  std::string op;
  int threads = 0;
  double seconds = -1.0;
};

std::vector<IngestRunRecord> ParseIngestRuns(const std::string& json) {
  std::vector<IngestRunRecord> runs;
  auto number_after = [&](size_t pos) {
    return bench::ParseNumberAt(json, pos);
  };
  size_t pos = 0;
  while ((pos = json.find("\"op\"", pos)) != std::string::npos) {
    IngestRunRecord run;
    const size_t q1 = json.find('"', pos + sizeof("\"op\"") - 1);
    const size_t q2 = q1 == std::string::npos ? q1 : json.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    run.op = json.substr(q1 + 1, q2 - q1 - 1);
    const size_t threads_pos = json.find("\"threads\"", q2);
    const size_t seconds_pos = json.find("\"seconds\"", q2);
    if (threads_pos == std::string::npos || seconds_pos == std::string::npos) {
      break;
    }
    run.threads = static_cast<int>(
        number_after(threads_pos + sizeof("\"threads\"") - 1));
    run.seconds = number_after(seconds_pos + sizeof("\"seconds\"") - 1);
    runs.push_back(std::move(run));
    pos = seconds_pos;
  }
  return runs;
}

// Synthetic rows for the ingest bench: ingest cost does not care about
// mobility realism, only about row count and field width, so uniform
// coordinates are enough and orders of magnitude cheaper to generate than
// the check-in workload.
LocationDataset SynthesizeRows(uint64_t rows) {
  Rng rng(20260730);
  constexpr uint64_t kRecordsPerEntity = 50;
  std::vector<Record> records;
  records.reserve(rows);
  // Quantize to 1e-7 degrees so the CSV representation (7 decimals) is
  // exact and every read path must agree bit-for-bit.
  auto quantize = [](double v) { return std::round(v * 1e7) / 1e7; };
  for (uint64_t i = 0; i < rows; ++i) {
    Record r;
    r.entity = static_cast<EntityId>(i / kRecordsPerEntity);
    r.location.lat_deg = quantize(rng.NextDouble(-90.0, 90.0));
    r.location.lng_deg = quantize(rng.NextDouble(-180.0, 180.0));
    r.timestamp = 1500000000 + static_cast<int64_t>(i % kRecordsPerEntity) *
                                   600;
    records.push_back(r);
  }
  return LocationDataset::FromRecords("ingest", std::move(records));
}

double Seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Best wall time of `repeats` calls (reads are cheap to repeat; the best
// run is the least noisy estimate of the achievable throughput).
template <typename Fn>
double BestOf(int repeats, const Fn& fn) {
  double best = -1.0;
  for (int i = 0; i < repeats; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const double s = Seconds(t0);
    if (best < 0.0 || s < best) best = s;
  }
  return best;
}

int Main(int argc, char** argv) {
  bool quick = false;
  uint64_t rows = 0;
  std::string out_path = "BENCH_ingest.json";
  std::string baseline_path;
  std::string threads_csv;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      const std::string prefix = std::string(flag) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      SLIM_CHECK_MSG(i + 1 < argc, "flag needs a value");
      return argv[++i];
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--out" || arg.rfind("--out=", 0) == 0) {
      out_path = value("--out");
    } else if (arg == "--baseline" || arg.rfind("--baseline=", 0) == 0) {
      baseline_path = value("--baseline");
    } else if (arg == "--rows" || arg.rfind("--rows=", 0) == 0) {
      const auto parsed = ParseInt64(value("--rows"));
      SLIM_CHECK_MSG(parsed.ok() && *parsed > 0,
                     "--rows expects a positive integer");
      rows = static_cast<uint64_t>(*parsed);
    } else if (arg == "--threads" || arg.rfind("--threads=", 0) == 0) {
      threads_csv = value("--threads");
    } else {
      std::fprintf(stderr,
                   "usage: bench_ingest [--quick] [--rows N] "
                   "[--threads a,b,...] [--out FILE] [--baseline FILE]\n");
      return 2;
    }
  }
  if (rows == 0) rows = quick ? 400000 : 2000000;
  std::vector<int> thread_list;
  if (threads_csv.empty()) {
    thread_list = {1, DefaultThreadCount()};
    if (thread_list[1] == 1) thread_list.pop_back();
  } else {
    std::stringstream ss(threads_csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
      const long v = std::strtol(item.c_str(), nullptr, 10);
      SLIM_CHECK_MSG(v > 0, "--threads entries must be positive");
      thread_list.push_back(static_cast<int>(v));
    }
    SLIM_CHECK_MSG(!thread_list.empty(), "empty --threads list");
    // The serial run is the determinism reference and the baseline's
    // csv_read@1 cell — always measure it, whatever the user listed.
    if (std::find(thread_list.begin(), thread_list.end(), 1) ==
        thread_list.end()) {
      thread_list.insert(thread_list.begin(), 1);
    } else if (thread_list.front() != 1) {
      thread_list.erase(
          std::find(thread_list.begin(), thread_list.end(), 1));
      thread_list.insert(thread_list.begin(), 1);
    }
  }
  const int read_repeats = 3;

  std::printf("==================================================\n");
  std::printf("ingest bench — CSV serial vs parallel vs SBIN, rows/sec\n");
  std::printf("rows: %llu%s; hardware threads: %u\n",
              static_cast<unsigned long long>(rows),
              quick ? " (quick mode)" : "",
              std::thread::hardware_concurrency());
  std::printf("==================================================\n");

  const auto dir = std::filesystem::temp_directory_path() /
                   ("slim_bench_ingest_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string csv_path = (dir / "ingest.csv").string();
  const std::string sbin_path = (dir / "ingest.sbin").string();

  const LocationDataset master = SynthesizeRows(rows);
  std::vector<IngestRun> runs;
  bool deterministic = true;

  // Writes (the second call overwrites; timing the steady state).
  {
    IngestRun run{"csv_write", 1, 0.0, rows, 0};
    run.seconds = BestOf(2, [&] {
      const Status st = WriteCsv(master, csv_path);
      SLIM_CHECK_MSG(st.ok(), st.ToString().c_str());
    });
    run.bytes = std::filesystem::file_size(csv_path);
    runs.push_back(run);
  }
  {
    IngestRun run{"sbin_write", 1, 0.0, rows, 0};
    run.seconds = BestOf(2, [&] {
      const Status st = WriteSbin(master, sbin_path);
      SLIM_CHECK_MSG(st.ok(), st.ToString().c_str());
    });
    run.bytes = std::filesystem::file_size(sbin_path);
    runs.push_back(run);
  }
  const uint64_t csv_bytes = runs[0].bytes;
  const uint64_t sbin_bytes = runs[1].bytes;

  // CSV reads: serial reference first, then the parallel settings; each
  // must reproduce the serial result exactly.
  LocationDataset serial_read;
  for (const int threads : thread_list) {
    CsvReadOptions opt;
    opt.io_threads = threads;
    LocationDataset last;
    IngestRun run{"csv_read", threads, 0.0, rows, csv_bytes};
    run.seconds = BestOf(read_repeats, [&] {
      auto ds = ReadCsv(csv_path, "ingest", opt);
      SLIM_CHECK_MSG(ds.ok(), ds.status().ToString().c_str());
      last = std::move(ds.value());
    });
    if (threads == thread_list.front()) {
      serial_read = std::move(last);
    } else if (last.records() != serial_read.records()) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: csv_read at %d threads differs "
                   "from the %d-thread read\n",
                   threads, thread_list.front());
      deterministic = false;
    }
    runs.push_back(run);
  }
  {
    LocationDataset last;
    IngestRun run{"sbin_read", 1, 0.0, rows, sbin_bytes};
    run.seconds = BestOf(read_repeats, [&] {
      auto ds = ReadSbin(sbin_path, "ingest");
      SLIM_CHECK_MSG(ds.ok(), ds.status().ToString().c_str());
      last = std::move(ds.value());
    });
    if (last.records() != serial_read.records()) {
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: sbin_read differs from csv_read "
                   "(lossy round-trip?)\n");
      deterministic = false;
    }
    runs.push_back(run);
  }

  TablePrinter table({"op", "threads", "MB", "seconds", "rows_per_sec"});
  for (const IngestRun& run : runs) {
    table.AddRow({run.op, std::to_string(run.threads),
                  Fmt(static_cast<double>(run.bytes) / (1024.0 * 1024.0), 1),
                  Fmt(run.seconds, 3),
                  FormatWithCommas(static_cast<int64_t>(
                      run.seconds > 0.0 ? static_cast<double>(run.rows) /
                                              run.seconds
                                        : 0.0))});
  }
  table.Print();

  double csv_serial_read = 0.0, sbin_read = 0.0;
  for (const IngestRun& run : runs) {
    if (run.op == "csv_read" && run.threads == thread_list.front()) {
      csv_serial_read = run.seconds;
    }
    if (run.op == "sbin_read") sbin_read = run.seconds;
  }
  if (sbin_read > 0.0) {
    std::printf("sbin_read is %.1fx the speed of serial csv_read "
                "(%.0f%% of the bytes)\n",
                csv_serial_read / sbin_read,
                100.0 * static_cast<double>(sbin_bytes) /
                    static_cast<double>(csv_bytes));
  }

  bench::JsonWriter json;
  json.BeginObject();
  json.Key("schema").Value("slim-bench-ingest-v1");
  json.Key("quick").Value(quick);
  json.Key("rows").Value(rows);
  json.Key("csv_bytes").Value(csv_bytes);
  json.Key("sbin_bytes").Value(sbin_bytes);
  json.Key("hardware_threads")
      .Value(static_cast<int>(std::thread::hardware_concurrency()));
  json.Key("deterministic").Value(deterministic);
  json.Key("runs").BeginArray();
  for (const IngestRun& run : runs) {
    json.BeginObject();
    json.Key("op").Value(run.op);
    json.Key("threads").Value(run.threads);
    json.Key("seconds").Value(run.seconds);
    json.Key("rows_per_sec")
        .Value(run.seconds > 0.0
                   ? static_cast<double>(run.rows) / run.seconds
                   : 0.0);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();

  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    std::filesystem::remove_all(dir);
    return 2;
  }
  out << json.str();
  out.close();
  std::printf("wrote %s (%zu runs)\n", out_path.c_str(), runs.size());
  std::filesystem::remove_all(dir);

  if (!deterministic) return 1;

  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline %s\n", baseline_path.c_str());
      return 2;
    }
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!bench::BaselineSchemaReadable(buffer.str(), baseline_path.c_str(),
                                       {{"slim-bench-ingest", 1}})) {
      return 2;
    }
    const std::vector<IngestRunRecord> baseline =
        ParseIngestRuns(buffer.str());
    SLIM_CHECK_MSG(!baseline.empty(), "baseline has no runs");
    int regressions = 0, compared = 0;
    for (const IngestRun& run : runs) {
      for (const IngestRunRecord& b : baseline) {
        if (b.op != run.op || b.threads != run.threads) continue;
        if (b.seconds < kRegressionFloorSeconds) continue;  // noise floor
        ++compared;
        if (run.seconds > kRegressionFactor * b.seconds) {
          std::fprintf(stderr,
                       "REGRESSION at op %s, %d threads: %.3fs vs baseline "
                       "%.3fs (> %.1fx)\n",
                       run.op.c_str(), run.threads, run.seconds, b.seconds,
                       kRegressionFactor);
          ++regressions;
        }
      }
    }
    std::printf("baseline gate: %d op comparisons vs %s, %d regressions\n",
                compared, baseline_path.c_str(), regressions);
    if (regressions > 0) return 1;
  }
  return 0;
}

}  // namespace
}  // namespace slim

int main(int argc, char** argv) { return slim::Main(argc, argv); }
