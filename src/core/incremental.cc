#include "core/incremental.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <string_view>

#include "common/check.h"
#include "common/parallel.h"
#include "common/resource.h"
#include "core/candidates.h"
#include "core/similarity.h"

namespace slim {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// CandidateGenerator facade over an externally owned LshIndex. The index
// was built over the full stores in store order, so its positions ARE
// EntityIdx values — the same lists MakeCandidateGenerator's LSH path
// serves, minus the rebuild.
class LshIndexCandidates final : public CandidateGenerator {
 public:
  explicit LshIndexCandidates(const LshIndex& index) : index_(index) {}
  std::string_view name() const override { return "lsh"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx u) const override {
    const std::vector<uint32_t>& list = index_.CandidatePositionsAt(u);
    return {list.data(), list.size()};
  }
  uint64_t total_candidate_pairs() const override {
    return index_.total_candidate_pairs();
  }

 private:
  const LshIndex& index_;
};

// Sorted-set membership flags over a store's current entity order.
std::vector<uint8_t> DirtyFlags(const HistoryStore& store,
                                const std::set<EntityId>& dirty) {
  std::vector<uint8_t> flags(store.size(), 0);
  for (const EntityId id : dirty) {
    if (const auto idx = store.IndexOf(id); idx.has_value()) {
      flags[*idx] = 1;
    }
  }
  return flags;
}

std::vector<LshIndex::Entry> IndexEntries(const HistoryStore& store) {
  std::vector<LshIndex::Entry> entries;
  entries.reserve(store.size());
  for (EntityIdx k = 0; k < store.size(); ++k) {
    entries.push_back({store.entity_id(k), &store.tree(k)});
  }
  return entries;
}

}  // namespace

IncrementalLinker::IncrementalLinker(SlimConfig config)
    : config_(std::move(config)) {
  SLIM_CHECK_MSG(config_.history.window_seconds > 0,
                 "window width must be positive");
  SLIM_CHECK_MSG(config_.history.spatial_level >= 0 &&
                     config_.history.spatial_level <= CellId::kMaxLevel,
                 "invalid spatial level");
  SLIM_CHECK_MSG(config_.candidates != CandidateKind::kLsh ||
                     config_.lsh.signature_spatial_level <=
                         config_.history.spatial_level,
                 "LSH signature level must not exceed the history leaf level");
  ctx_.config = config_.history;
}

void IncrementalLinker::Ingest(LinkageSide side,
                               std::span<const Record> records) {
  if (records.empty()) return;
  std::set<EntityId>& dirty = side == LinkageSide::kE ? dirty_e_ : dirty_i_;
  for (const Record& r : records) dirty.insert(r.entity);
  const LinkageContext::AppendSummary summary =
      ctx_.AppendRecords(side, records);
  structural_pending_ |= summary.new_entities || summary.new_bins;
  (side == LinkageSide::kE ? pending_records_e_ : pending_records_i_) +=
      summary.records;
  (side == LinkageSide::kE ? total_records_e_ : total_records_i_) +=
      summary.records;
}

Result<EpochResult> IncrementalLinker::LinkEpoch() {
  const auto t_start = std::chrono::steady_clock::now();
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();

  EpochResult out;
  out.incremental.appended_records = pending_records_e_ + pending_records_i_;
  // Epoch 1 and any epoch after structural growth re-score everything;
  // pure count-increment epochs reuse every pair not touching an
  // appended entity (see the invalidation contract in the header).
  const bool all_dirty = structural_pending_ || epoch_ == 0;
  out.incremental.rescored_all = all_dirty;

  LinkageResult& result = out.linkage;
  result.candidates_used = config_.candidates;

  // 1. Fold buffered appends into the dense context.
  auto t0 = std::chrono::steady_clock::now();
  ctx_.Compact(threads);
  result.seconds_histories = SecondsSince(t0);
  result.rss_peak_histories = CurrentPeakRssBytes();
  result.possible_pairs = static_cast<uint64_t>(ctx_.store_e.size()) *
                          static_cast<uint64_t>(ctx_.store_i.size());

  const auto seal_bookkeeping = [&] {
    ++epoch_;
    out.epoch = epoch_;
    dirty_e_.clear();
    dirty_i_.clear();
    structural_pending_ = false;
    pending_records_e_ = pending_records_i_ = 0;
    // Link delta versus the previous epoch, by full (u, v, score) triple
    // (both lists are (u, v)-sorted and pair-unique).
    auto before = links_.begin();
    auto after = result.links.begin();
    while (before != links_.end() || after != result.links.end()) {
      const bool take_after =
          before == links_.end() ||
          (after != result.links.end() &&
           (after->u < before->u ||
            (after->u == before->u && after->v < before->v)));
      const bool take_before =
          after == result.links.end() ||
          (before != links_.end() &&
           (before->u < after->u ||
            (before->u == after->u && before->v < after->v)));
      if (take_after) {
        out.added_links.push_back(*after++);
      } else if (take_before) {
        out.removed_links.push_back(*before++);
      } else if (before->score != after->score) {
        out.removed_links.push_back(*before++);
        out.added_links.push_back(*after++);
      } else {
        ++before;
        ++after;
      }
    }
    links_ = result.links;
    result.seconds_total = SecondsSince(t_start);
    result.rss_peak_total = CurrentPeakRssBytes();
  };

  if (ctx_.store_e.size() == 0 || ctx_.store_i.size() == 0) {
    // Mirrors the batch early return: no candidates, no links.
    rows_.clear();
    lsh_.reset();
    seal_bookkeeping();
    return out;
  }

  // 2. Candidates. For LSH the index is owned here so signatures of
  //    un-appended entities carry over between epochs; brute/grid rebuild
  //    their (cheap) structures via the standard factory.
  t0 = std::chrono::steady_clock::now();
  std::unique_ptr<CandidateGenerator> generator;
  if (config_.candidates == CandidateKind::kLsh) {
    const LshWindowSpan span = GlobalWindowSpan(ctx_);
    const std::vector<LshIndex::Entry> entries_e = IndexEntries(ctx_.store_e);
    const std::vector<LshIndex::Entry> entries_i = IndexEntries(ctx_.store_i);
    const bool span_unchanged = lsh_.has_value() &&
                                lsh_->span().lo == span.lo &&
                                lsh_->span().end == span.end;
    if (span_unchanged) {
      const std::vector<uint8_t> fresh_e = DirtyFlags(ctx_.store_e, dirty_e_);
      const std::vector<uint8_t> fresh_i = DirtyFlags(ctx_.store_i, dirty_i_);
      for (const uint8_t f : fresh_e) {
        out.incremental.signatures_reused += f == 0 ? 1 : 0;
      }
      for (const uint8_t f : fresh_i) {
        out.incremental.signatures_reused += f == 0 ? 1 : 0;
      }
      lsh_ = LshIndex::BuildReusing(*lsh_, entries_e, entries_i, fresh_e,
                                    fresh_i, config_.lsh, threads, &span);
    } else {
      lsh_ = LshIndex::Build(entries_e, entries_i, config_.lsh, threads,
                             &span);
    }
    generator = std::make_unique<LshIndexCandidates>(*lsh_);
  } else {
    generator = MakeCandidateGenerator(config_.candidates, ctx_, config_.lsh,
                                       config_.grid, threads);
  }
  result.candidate_pairs = generator->total_candidate_pairs();
  result.seconds_lsh = SecondsSince(t0);
  result.rss_peak_lsh = CurrentPeakRssBytes();

  // 3. Scoring with pair-score reuse. New rows are built per left entity
  //    (deterministic: each entity's row depends only on its own
  //    candidates), reading the previous epoch's rows for clean pairs.
  t0 = std::chrono::steady_clock::now();
  const SimilarityEngine engine(ctx_, config_.similarity);
  const size_t lefts = ctx_.store_e.size();
  const std::vector<uint8_t> dirty_e_flags = DirtyFlags(ctx_.store_e, dirty_e_);
  const std::vector<uint8_t> dirty_i_flags = DirtyFlags(ctx_.store_i, dirty_i_);
  std::vector<ScoreRow> new_rows(lefts);
  std::vector<SimilarityStats> shard_stats(static_cast<size_t>(threads));
  std::vector<uint64_t> shard_scored(static_cast<size_t>(threads), 0);
  std::vector<uint64_t> shard_reused(static_cast<size_t>(threads), 0);

  ParallelFor(
      lefts,
      [&](size_t begin, size_t end, int shard) {
        auto& stats = shard_stats[static_cast<size_t>(shard)];
        uint64_t scored = 0, reused = 0;
        CellDistanceCache cache;
        ScoreScratch scratch;
        for (size_t k = begin; k < end; ++k) {
          const EntityIdx u_idx = static_cast<EntityIdx>(k);
          const EntityId u = ctx_.store_e.entity_id(u_idx);
          const ScoreRow* prev = nullptr;
          if (!all_dirty && dirty_e_flags[u_idx] == 0) {
            const auto it = std::lower_bound(
                rows_.begin(), rows_.end(), u,
                [](const auto& row, EntityId id) { return row.first < id; });
            if (it != rows_.end() && it->first == u) prev = &it->second;
          }
          ScoreRow& row = new_rows[u_idx];
          const auto cands = generator->CandidatesFor(u_idx);
          row.reserve(cands.size());
          size_t j = 0;  // cursor into prev (both ascend by right id)
          for (const EntityIdx v_idx : cands) {
            const EntityId v = ctx_.store_i.entity_id(v_idx);
            if (prev != nullptr && dirty_i_flags[v_idx] == 0) {
              while (j < prev->size() && (*prev)[j].first < v) ++j;
              if (j < prev->size() && (*prev)[j].first == v) {
                row.emplace_back(v, (*prev)[j].second);
                ++reused;
                continue;
              }
            }
            const double s =
                engine.ScoreIndexed(u_idx, v_idx, &stats, &cache, &scratch);
            row.emplace_back(v, s);
            ++scored;
          }
        }
        stats.cache_hits += cache.hits();
        stats.cache_misses += cache.misses();
        shard_scored[static_cast<size_t>(shard)] += scored;
        shard_reused[static_cast<size_t>(shard)] += reused;
      },
      threads);

  std::vector<WeightedEdge> edges;
  for (int shard = 0; shard < threads; ++shard) {
    result.stats += shard_stats[static_cast<size_t>(shard)];
    out.incremental.pairs_scored += shard_scored[static_cast<size_t>(shard)];
    out.incremental.pairs_reused += shard_reused[static_cast<size_t>(shard)];
  }
  for (size_t k = 0; k < lefts; ++k) {
    const EntityId u = ctx_.store_e.entity_id(static_cast<EntityIdx>(k));
    for (const auto& [v, s] : new_rows[k]) {
      if (s > 0.0) edges.push_back({u, v, s});
    }
  }
  result.seconds_scoring = SecondsSince(t0);
  result.rss_peak_scoring = CurrentPeakRssBytes();

  // 4/5. Matching + stop threshold — the exact batch tail, so links,
  // matching, graph, and threshold come out bit-identical to
  // SlimLinker::Link over the union dataset.
  internal::SealLinkage(config_, std::move(edges), &result);

  // Persist this epoch's rows as the next epoch's cache (left ids ascend
  // with EntityIdx, so the row list is sorted by construction).
  rows_.clear();
  rows_.reserve(lefts);
  for (size_t k = 0; k < lefts; ++k) {
    rows_.emplace_back(ctx_.store_e.entity_id(static_cast<EntityIdx>(k)),
                       std::move(new_rows[k]));
  }

  seal_bookkeeping();
  return out;
}

std::vector<LinkedEntityPair> IncrementalLinker::TopK(EntityId u,
                                                      size_t k) const {
  const auto it = std::lower_bound(
      rows_.begin(), rows_.end(), u,
      [](const auto& row, EntityId id) { return row.first < id; });
  if (it == rows_.end() || it->first != u) return {};
  std::vector<LinkedEntityPair> top;
  top.reserve(it->second.size());
  for (const auto& [v, s] : it->second) {
    if (s > 0.0) top.push_back({u, v, s});
  }
  std::sort(top.begin(), top.end(),
            [](const LinkedEntityPair& a, const LinkedEntityPair& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.v < b.v;
            });
  if (top.size() > k) top.resize(k);
  return top;
}

}  // namespace slim
