// Pluggable candidate generation — the blocking stage of the pipeline.
//
// Alg. 1 scores only the pairs a filtering stage proposes. Following the
// companion ST-Link work, which frames filtering as a replaceable blocking
// component, candidate generation is a first-class interface with three
// implementations:
//
//   BruteForceCandidates — every cross-dataset pair (the "no-LSH SLIM"
//                          reference; exact, quadratic).
//   LshCandidates        — banded LSH over history signatures (paper
//                          Sec. 4; the production default).
//   GridBlockingCandidates — ST-Link-style co-visit blocking: a pair is a
//                          candidate iff the two entities share at least
//                          one (window, leaf cell) time-location bin.
//                          Exact on pairs with any exact co-visit; prunes
//                          everything else.
//
// All generators speak dense EntityIdx (core/linkage_context.h) and return
// ascending, de-duplicated right-side index spans, so the scoring loop is
// generator-agnostic and its output order (and therefore the linkage
// result) never depends on which generator produced the candidates.
#ifndef SLIM_CORE_CANDIDATES_H_
#define SLIM_CORE_CANDIDATES_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "common/status.h"
#include "core/linkage_context.h"
#include "lsh/lsh_index.h"

namespace slim {

/// Which candidate generator the pipeline runs.
enum class CandidateKind {
  kLsh,         // banded LSH over signatures (default)
  kBruteForce,  // full cross product
  kGrid,        // co-visited leaf-cell blocking
};

/// "lsh" / "brute" / "grid" (the --candidates flag vocabulary).
std::string_view CandidateKindName(CandidateKind kind);

/// Parses the --candidates flag vocabulary; InvalidArgument on garbage.
Result<CandidateKind> ParseCandidateKind(std::string_view name);

/// Configuration of GridBlockingCandidates.
struct GridBlockingConfig {
  /// Bins held by more than this many right-side entities are skipped as
  /// blocking keys (the classic stop-word guard against hotspot cells
  /// degenerating to the cross product). 0 disables the cap.
  uint32_t max_bin_entities = 0;

  /// Drops candidate pairs whose quantized co-visit mass — sum over shared
  /// bins of min(saturated u16 record counts, see
  /// HistoryStore::quantized_counts) — is below this value. Integer-exact,
  /// so the filter is kernel- and shard-invariant. 0 (the default) keeps
  /// every co-visiting pair: any shared bin has mass >= 1.
  uint32_t min_overlap_records = 0;
};

/// A built candidate index: ascending right-side EntityIdx spans per left
/// entity. Implementations are immutable after construction and safe to
/// probe from any thread.
class CandidateGenerator {
 public:
  virtual ~CandidateGenerator() = default;

  /// Generator name for logs / bench records ("lsh", "brute", "grid").
  virtual std::string_view name() const = 0;
  /// Sorted, de-duplicated right-side indices for left entity `u`.
  virtual std::span<const EntityIdx> CandidatesFor(EntityIdx u) const = 0;
  /// Sum over left entities of their candidate count.
  virtual uint64_t total_candidate_pairs() const = 0;
};

/// The query-grid span of the FULL problem (union of both stores'
/// occupied windows; [0, 0) when nothing is occupied). Every LSH build —
/// monolithic, shard, or incremental epoch — pins its grid to this span,
/// so signatures never depend on which subset was indexed; the
/// incremental linker (core/incremental.h) compares it across epochs to
/// decide whether cached LSH signatures are still valid.
LshWindowSpan GlobalWindowSpan(const LinkageContext& ctx);

/// Builds the candidate index of `kind` over the context. `lsh_config` is
/// consulted only by kLsh, `grid_config` only by kGrid. Construction is
/// data-parallel over `threads` workers and identical at every thread
/// count.
std::unique_ptr<CandidateGenerator> MakeCandidateGenerator(
    CandidateKind kind, const LinkageContext& context,
    const LshConfig& lsh_config, const GridBlockingConfig& grid_config,
    int threads = 0);

/// Builds a candidate index restricted to one L×K block: left entities
/// [left_begin, left_end) against right entities [right_begin, right_end).
/// CandidatesFor(u) — valid exactly for u in the left range — returns the
/// full generator's list for u intersected with the right range, as
/// ascending *global* right EntityIdx values. Every dataset-level
/// statistic a generator consults (the LSH query grid, the grid-blocking
/// hotspot cap) is taken from the full context, and candidacy is a
/// pairwise predicate on both sides (an LSH collision involves only the
/// two signatures; a co-visit involves only the two histories), so the
/// union over any L×K block partition of these indices reproduces the
/// monolithic candidate set bit for bit — the contract the sharded driver
/// (core/sharded.h) and its goldens pin. Peak memory scales with the
/// block size, not the stores.
std::unique_ptr<CandidateGenerator> MakeShardCandidateGenerator(
    CandidateKind kind, const LinkageContext& context,
    const LshConfig& lsh_config, const GridBlockingConfig& grid_config,
    EntityIdx left_begin, EntityIdx left_end, EntityIdx right_begin,
    EntityIdx right_end, int threads = 0);

}  // namespace slim

#endif  // SLIM_CORE_CANDIDATES_H_
