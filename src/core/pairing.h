// Pairing functions over the bins of one shared temporal window
// (paper Sec. 3.1.2 and Alg. 1).
//
// N_w(u, v)  — mutually-nearest pairing: repeatedly select the bin pair with
//              the smallest cell distance, remove both bins, until the
//              smaller side is exhausted. This blocks over-counting that a
//              Cartesian product would cause.
// N'_w(u, v) — mutually-furthest pairing: same procedure with the largest
//              distance; used only to catch alibi pairs the nearest pairing
//              misses (Alg. 1's optional inner loop).
// All-pairs  — the Cartesian product, kept as the ablation alternative the
//              evaluation compares against (Fig. 10).
//
// All functions consume a precomputed row-major distance matrix so the
// similarity engine computes each cell distance exactly once per window.
#ifndef SLIM_CORE_PAIRING_H_
#define SLIM_CORE_PAIRING_H_

#include <cstddef>
#include <utility>
#include <vector>

namespace slim {

/// An index pair (row e in u's bins, column i in v's bins).
using BinPair = std::pair<size_t, size_t>;

/// Mutually-nearest-neighbor pairing over an m x n distance matrix
/// (row-major). Returns min(m, n) disjoint pairs, deterministically
/// (distance ties break on (row, col)).
std::vector<BinPair> MutuallyNearestPairs(const std::vector<double>& dist,
                                          size_t m, size_t n);

/// Mutually-furthest-neighbor pairing: as above with maximal distances.
std::vector<BinPair> MutuallyFurthestPairs(const std::vector<double>& dist,
                                           size_t m, size_t n);

/// The full Cartesian product (ablation baseline).
std::vector<BinPair> AllPairs(size_t m, size_t n);

/// Both pairings from one shared sort of the distance matrix — the scoring
/// hot path (Alg. 1 needs N and N' for every common window). Fast paths
/// handle the ubiquitous 1x1 and 1xN windows without sorting. Tie-breaking
/// of `furthest` may differ from MutuallyFurthestPairs() between
/// equal-distance pairs; contributions are identical either way.
struct MutualPairing {
  std::vector<BinPair> nearest;
  std::vector<BinPair> furthest;
};
MutualPairing MutualNearestAndFurthestPairs(const std::vector<double>& dist,
                                            size_t m, size_t n,
                                            bool need_furthest);

}  // namespace slim

#endif  // SLIM_CORE_PAIRING_H_
