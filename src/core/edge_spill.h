// Bounded-memory edge accumulation + external sort for the sharded driver
// (core/sharded.h).
//
// Scoring a sharded linkage produces the edge set one (left, right) block
// at a time; matching needs it twice, in two global orders — the canonical
// (u, v) order that seals the graph, and the (weight desc, u, v) order the
// greedy matcher consumes. At 1M entities/side the edge set no longer fits
// the memory budget, so EdgeSpill implements the classic external-sort
// shape instead of the old read-everything-back:
//
//   append    — blocks accumulate in a bounded run buffer; a full buffer
//               is sorted (by the configured run order) and appended to a
//               temporary spill file as one sorted run.
//   seal      — the final partial run flushes; the spill becomes
//               read-only.
//   scan      — a loser-tree k-way merge streams the runs back in global
//               order through fixed-size per-run read buffers. Scanning
//               the order the runs are NOT sorted in first rewrites each
//               run in the requested order (one extra sequential pass,
//               counted in merge_passes) and merges that.
//
// Both scan orders are total (each (u, v) pair is scored once; score ties
// break on (u, v)), so the merged sequence is independent of run
// boundaries, thread count, and shard plan — the bit-identity argument the
// external matcher inherits from the monolithic driver.
//
// Error handling: failure to create the spill file degrades to an
// in-memory buffer with a one-time stderr note (correctness over the
// memory bound; on_disk() reports which mode ran). Short reads or a
// truncated/corrupt spill surface as IoError from Scan() — never a crash.
#ifndef SLIM_CORE_EDGE_SPILL_H_
#define SLIM_CORE_EDGE_SPILL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "match/bipartite.h"

namespace slim {

/// A global edge order a spill scan can produce.
enum class EdgeOrder {
  kPair,   // (u, v) ascending — the canonical sealed-graph order
  kScore,  // (weight desc, u, v) — the greedy matcher's selection order
};

struct EdgeSpillOptions {
  /// Spill runs to a temporary file; false keeps every edge in memory
  /// (single-block plans, where a spill would buy nothing).
  bool to_disk = false;
  /// Run-buffer budget in bytes: edges accumulate in memory up to this
  /// bound before sorting + spilling one run. Also bounds the merge's
  /// total read-buffer bytes.
  size_t run_bytes = size_t{64} << 20;
  /// The order runs are sorted in at spill time. Scanning this order is a
  /// single merge pass; scanning the other order costs one extra rewrite
  /// pass. Pick the order the driver scans first/most.
  EdgeOrder run_order = EdgeOrder::kPair;
  /// When non-empty, spill to this exact path instead of an anonymous
  /// std::tmpfile (the file is removed on destruction). Tests use this to
  /// provoke creation failures and to corrupt a live spill.
  std::string spill_path;
};

/// Bounded-memory edge accumulation across scoring blocks. Blocks append
/// from the driver thread in deterministic block order; Seal() freezes the
/// spill; Scan() streams the edges back in a requested global order.
class EdgeSpill {
 public:
  explicit EdgeSpill(EdgeSpillOptions options);
  ~EdgeSpill();

  EdgeSpill(const EdgeSpill&) = delete;
  EdgeSpill& operator=(const EdgeSpill&) = delete;

  /// Appends one block's edges (consumed). Not thread-safe — blocks
  /// append from the driver thread in block order.
  void Append(std::vector<WeightedEdge> edges);

  /// Flushes the final run and freezes the spill for scanning.
  /// Idempotent; Append after Seal is a programming error.
  Status Seal();

  /// Edges appended so far.
  uint64_t size() const { return count_; }
  /// Whether edges actually reside in a temporary file.
  bool on_disk() const { return file_ != nullptr; }
  /// Sorted runs written so far (0 in memory mode).
  size_t run_count() const { return runs_.size(); }
  /// Bytes written to spill storage, including rewrite passes.
  uint64_t spill_bytes_written() const { return spill_bytes_written_; }
  /// k-way merge passes executed by Scan() calls so far.
  int merge_passes() const { return merge_passes_; }

  /// Streams every edge, exactly once, in the requested global order.
  /// Requires Seal(). Repeatable (each call re-merges); the callback must
  /// not re-enter the spill. IoError on short reads / corrupt spill.
  Status Scan(EdgeOrder order,
              const std::function<void(const WeightedEdge&)>& fn);

 private:
  struct Run {
    uint64_t begin = 0;  // first edge's index in the spill file
    uint64_t count = 0;  // edges in this run
  };

  // Sorts the open run buffer by run_order and appends it to file_ as one
  // run. On a write failure the spill reads every prior run back and
  // degrades to memory mode.
  void SpillRun();
  // Rewrites the runs of `file_` into `order` (one sequential pass) in a
  // fresh temporary file; fills resorted_* members.
  Status ResortRuns(EdgeOrder order);
  // Loser-tree k-way merge of `runs` inside `file` (each sorted by
  // `order`) into `fn`.
  Status MergeRuns(std::FILE* file, const std::vector<Run>& runs,
                   EdgeOrder order,
                   const std::function<void(const WeightedEdge&)>& fn);

  EdgeSpillOptions options_;
  std::FILE* file_ = nullptr;  // nullptr -> in-memory mode
  std::vector<Run> runs_;
  // Lazily created copy of the spill re-sorted into the other order
  // (kept for repeat scans).
  std::FILE* resorted_file_ = nullptr;
  std::vector<Run> resorted_runs_;
  bool resorted_valid_ = false;
  std::vector<WeightedEdge> buffer_;  // open run (disk) / everything (mem)
  uint64_t count_ = 0;
  bool sealed_ = false;
  uint64_t spill_bytes_written_ = 0;
  int merge_passes_ = 0;
};

}  // namespace slim

#endif  // SLIM_CORE_EDGE_SPILL_H_
