#include "core/sharded.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/parallel.h"
#include "common/resource.h"
#include "core/candidates.h"
#include "core/similarity.h"

namespace slim {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// How much bigger than the shard's resident store bytes the block working
// set (candidate CSR, postings/buckets, per-block edges) is assumed to be.
// Chosen from the measured bench_sharded curves; deliberately conservative
// so a budget is an upper bound, not a target.
constexpr uint64_t kBlockExpansionFactor = 4;

// Structural floor below which no per-entity estimate may fall: one
// candidate-list entry plus one edge per entity is the bare minimum any
// block holds.
constexpr uint64_t kPerEntityFloorBytes = 64;

}  // namespace

ShardPlan ShardPlan::Fixed(size_t rights, int shards) {
  ShardPlan plan;
  plan.shards = std::max(1, shards);
  if (rights > 0) {
    plan.shards = static_cast<int>(
        std::min<size_t>(static_cast<size_t>(plan.shards), rights));
  } else {
    plan.shards = 1;
  }
  // Balanced contiguous ranges: the first (rights % K) shards take one
  // extra entity, so sizes differ by at most one.
  const size_t k = static_cast<size_t>(plan.shards);
  const size_t base = rights / k;
  const size_t extra = rights % k;
  EntityIdx begin = 0;
  for (size_t s = 0; s < k; ++s) {
    const EntityIdx end =
        begin + static_cast<EntityIdx>(base + (s < extra ? 1 : 0));
    plan.ranges.emplace_back(begin, end);
    begin = end;
  }
  SLIM_CHECK(plan.ranges.back().second == rights);
  return plan;
}

uint64_t EstimateBlockBytesPerEntity(const LinkageContext& context,
                                     uint64_t rss_before_context) {
  const HistoryStore& si = context.store_i;
  const size_t rights = si.size();
  if (rights == 0) return kPerEntityFloorBytes;

  // Structural floor: the right store's own CSR bytes per entity — bin ids,
  // counts, windows, window->bin map — which the block's postings and
  // candidate lists mirror at least once.
  const uint64_t store_bytes =
      si.bin_ids().size() * (sizeof(BinId) + sizeof(uint32_t) * 2) +
      si.entity_ids().size() *
          (sizeof(EntityId) + sizeof(uint32_t) * 2 + sizeof(uint64_t));
  uint64_t per_entity = store_bytes / rights;

  // RSS calibration: the context build's measured growth per entity (both
  // sides) captures allocator overhead and the tree structures the
  // structural count misses. Peak RSS is monotone, so the difference is a
  // true lower bound on what the build added.
  const uint64_t rss_now = CurrentPeakRssBytes();
  const size_t entities = context.store_e.size() + rights;
  if (rss_now > rss_before_context && entities > 0) {
    per_entity = std::max(per_entity,
                          (rss_now - rss_before_context) / entities);
  }
  return std::max(per_entity * kBlockExpansionFactor, kPerEntityFloorBytes);
}

ShardPlan EstimateShardPlan(const LinkageContext& context,
                            const SlimConfig& config,
                            uint64_t rss_before_context) {
  const size_t rights = context.store_i.size();
  if (config.shards > 0) return ShardPlan::Fixed(rights, config.shards);
  if (config.shard_memory_budget_bytes == 0 || rights == 0) {
    return ShardPlan::Fixed(rights, 1);
  }
  const uint64_t per_entity =
      EstimateBlockBytesPerEntity(context, rss_before_context);
  const uint64_t budget = config.shard_memory_budget_bytes;
  // Smallest K with ceil(rights / K) * per_entity <= budget: at most
  // floor(budget / per_entity) entities fit one shard, so K must cover
  // `rights` in chunks of that size (one entity per shard when even a
  // single entity exceeds the budget — sharding cannot go finer).
  const uint64_t entities_per_shard = budget / per_entity;
  const uint64_t shards =
      entities_per_shard == 0
          ? rights
          : (rights + entities_per_shard - 1) / entities_per_shard;
  ShardPlan plan = ShardPlan::Fixed(
      rights, static_cast<int>(std::min<uint64_t>(
                  shards == 0 ? 1 : shards,
                  static_cast<uint64_t>(std::numeric_limits<int>::max()))));
  plan.per_entity_bytes = per_entity;
  return plan;
}

EdgeSpill::EdgeSpill(bool to_disk) {
  if (to_disk) file_ = std::tmpfile();  // nullptr -> in-memory fallback
}

EdgeSpill::~EdgeSpill() {
  if (file_ != nullptr) std::fclose(file_);
}

void EdgeSpill::Append(std::vector<WeightedEdge> edges) {
  count_ += edges.size();
  if (file_ != nullptr) {
    if (!edges.empty() &&
        std::fwrite(edges.data(), sizeof(WeightedEdge), edges.size(),
                    file_) != edges.size()) {
      // Spill device full: fall back to memory for everything written so
      // far plus this block — correctness over the memory bound.
      std::rewind(file_);
      const uint64_t written = count_ - edges.size();
      memory_.resize(static_cast<size_t>(written));
      SLIM_CHECK_MSG(written == 0 ||
                         std::fread(memory_.data(), sizeof(WeightedEdge),
                                    memory_.size(),
                                    file_) == memory_.size(),
                     "edge spill readback failed");
      std::fclose(file_);
      file_ = nullptr;
      memory_.insert(memory_.end(), edges.begin(), edges.end());
    }
    return;
  }
  memory_.insert(memory_.end(), edges.begin(), edges.end());
}

std::vector<WeightedEdge> EdgeSpill::TakeAll() {
  std::vector<WeightedEdge> all;
  if (file_ != nullptr) {
    std::rewind(file_);
    all.resize(static_cast<size_t>(count_));
    SLIM_CHECK_MSG(count_ == 0 ||
                       std::fread(all.data(), sizeof(WeightedEdge),
                                  all.size(), file_) == all.size(),
                   "edge spill readback failed");
    std::fclose(file_);
    file_ = nullptr;
  } else {
    all = std::move(memory_);
    memory_.clear();
  }
  count_ = 0;
  return all;
}

Result<LinkageResult> SlimLinker::LinkSharded(
    const LocationDataset& dataset_e, const LocationDataset& dataset_i) const {
  if (!dataset_e.finalized() || !dataset_i.finalized()) {
    return Status::FailedPrecondition("datasets must be finalized");
  }
  const auto t_start = std::chrono::steady_clock::now();
  LinkageResult result;
  result.candidates_used = config_.candidates;
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();
  const uint64_t rss_before_context = CurrentPeakRssBytes();

  // 1. The global context — identical to the monolithic path: IDF, length
  //    norms, the bin vocabulary, and the LSH query grid are dataset-level
  //    statistics, so they must see both full datasets whatever K is.
  auto t0 = std::chrono::steady_clock::now();
  const LinkageContext ctx =
      LinkageContext::Build(dataset_e, dataset_i, config_.history, threads);
  result.seconds_histories = SecondsSince(t0);
  result.rss_peak_histories = CurrentPeakRssBytes();
  result.possible_pairs = static_cast<uint64_t>(ctx.store_e.size()) *
                          static_cast<uint64_t>(ctx.store_i.size());
  if (ctx.store_e.size() == 0 || ctx.store_i.size() == 0) {
    result.seconds_total = SecondsSince(t_start);
    result.rss_peak_total = CurrentPeakRssBytes();
    return result;
  }

  const ShardPlan plan = EstimateShardPlan(ctx, config_, rss_before_context);
  result.shards_used = plan.shards;

  // 2/3. Candidates + scoring, one right shard at a time. The shard's
  //      candidate index lives only for its own block; edges leave through
  //      the spill so at any instant the process holds one shard's index
  //      plus one scoring pass's edges. Spilling is pointless at K == 1
  //      (the merge would reload everything immediately).
  const SimilarityEngine engine(ctx, config_.similarity);
  const size_t lefts = ctx.store_e.size();
  EdgeSpill spill(/*to_disk=*/plan.shards > 1);

  for (const auto& [right_begin, right_end] : plan.ranges) {
    t0 = std::chrono::steady_clock::now();
    const std::unique_ptr<CandidateGenerator> generator =
        MakeShardCandidateGenerator(config_.candidates, ctx, config_.lsh,
                                    config_.grid, right_begin, right_end,
                                    threads);
    result.candidate_pairs += generator->total_candidate_pairs();
    result.seconds_lsh += SecondsSince(t0);
    result.rss_peak_lsh = CurrentPeakRssBytes();

    t0 = std::chrono::steady_clock::now();
    std::vector<std::vector<WeightedEdge>> block_edges(
        static_cast<size_t>(threads));
    std::vector<SimilarityStats> block_stats(static_cast<size_t>(threads));
    ParallelFor(
        lefts,
        [&](size_t begin, size_t end, int shard) {
          auto& edges = block_edges[static_cast<size_t>(shard)];
          auto& stats = block_stats[static_cast<size_t>(shard)];
          CellDistanceCache cache;
          ScoreScratch scratch;
          for (size_t k = begin; k < end; ++k) {
            const EntityIdx u_idx = static_cast<EntityIdx>(k);
            const EntityId u = ctx.store_e.entity_id(u_idx);
            for (const EntityIdx v_idx : generator->CandidatesFor(u_idx)) {
              const double s = engine.ScoreIndexed(u_idx, v_idx, &stats,
                                                   &cache, &scratch);
              if (s > 0.0) {
                edges.push_back({u, ctx.store_i.entity_id(v_idx), s});
              }
            }
          }
          stats.cache_hits += cache.hits();
          stats.cache_misses += cache.misses();
        },
        threads);
    // Blocks leave in (shard, thread-shard) order — any order works, the
    // merge re-sorts — and their scratch dies here.
    for (int shard = 0; shard < threads; ++shard) {
      result.stats += block_stats[static_cast<size_t>(shard)];
      spill.Append(std::move(block_edges[static_cast<size_t>(shard)]));
    }
    result.seconds_scoring += SecondsSince(t0);
    result.rss_peak_scoring = CurrentPeakRssBytes();
  }

  result.spilled_edges = spill.size();
  result.spill_on_disk = spill.on_disk();

  // 4/5. Deterministic merge into the shared matching + threshold tail:
  // SealLinkage fixes the canonical (u, v) order, so the shard partition
  // leaves no trace in the output.
  internal::SealLinkage(config_, spill.TakeAll(), &result);

  result.seconds_total = SecondsSince(t_start);
  result.rss_peak_total = CurrentPeakRssBytes();
  return result;
}

}  // namespace slim
