#include "core/sharded.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <memory>

#include "common/check.h"
#include "common/parallel.h"
#include "common/resource.h"
#include "core/candidates.h"
#include "core/sctx.h"
#include "core/similarity.h"

namespace slim {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// How much bigger than the shard's resident store bytes the block working
// set (candidate CSR, postings/buckets, per-block edges) is assumed to be.
// Chosen from the measured bench_sharded curves; deliberately conservative
// so a budget is an upper bound, not a target.
constexpr uint64_t kBlockExpansionFactor = 4;

// Structural floor below which no per-entity estimate may fall: one
// candidate-list entry plus one edge per entity is the bare minimum any
// block holds.
constexpr uint64_t kPerEntityFloorBytes = 64;

bool PathExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

// The block + merge stages shared by LinkSharded and LinkShardedContext:
// everything after the context exists. `result` arrives with the context
// phase's timings filled in; `t_start` anchors seconds_total.
Result<LinkageResult> RunShardedBlocks(
    const SlimConfig& config, int threads, const LinkageContext& ctx,
    uint64_t rss_before_context, std::chrono::steady_clock::time_point t_start,
    LinkageResult result) {
  result.possible_pairs = static_cast<uint64_t>(ctx.store_e.size()) *
                          static_cast<uint64_t>(ctx.store_i.size());
  if (ctx.store_e.size() == 0 || ctx.store_i.size() == 0) {
    result.seconds_total = SecondsSince(t_start);
    result.rss_peak_total = CurrentPeakRssBytes();
    return result;
  }

  const ShardPlan plan = EstimateShardPlan(ctx, config, rss_before_context);
  result.shards_used = plan.shards;
  result.left_shards_used = plan.left_shards;

  // 2/3. Candidates + scoring, one L x K block at a time in (left, right)
  //      order. A block's candidate index lives only for its own scoring
  //      pass; edges leave through the external sort, so at any instant
  //      the process holds one block's index plus one run buffer.
  //      Spilling is pointless for a single block (the merge would reload
  //      everything immediately).
  const SimilarityEngine engine(ctx, config.similarity);
  const bool need_graph =
      config.keep_graph || config.matcher == MatcherKind::kHungarian;
  EdgeSpillOptions spill_options;
  spill_options.to_disk = plan.left_shards * plan.shards > 1;
  spill_options.run_bytes = static_cast<size_t>(config.spill_run_bytes);
  // Runs sort into the order the seal scans first (its only scan, when the
  // graph is skipped), so the common path is a single merge pass.
  spill_options.run_order =
      need_graph ? EdgeOrder::kPair : EdgeOrder::kScore;
  EdgeSpill spill(spill_options);

  for (const auto& [left_begin, left_end] : plan.left_ranges) {
    for (const auto& [right_begin, right_end] : plan.ranges) {
      auto t0 = std::chrono::steady_clock::now();
      const std::unique_ptr<CandidateGenerator> generator =
          MakeShardCandidateGenerator(config.candidates, ctx, config.lsh,
                                      config.grid, left_begin, left_end,
                                      right_begin, right_end, threads);
      result.candidate_pairs += generator->total_candidate_pairs();
      result.seconds_lsh += SecondsSince(t0);
      result.rss_peak_lsh = CurrentPeakRssBytes();

      t0 = std::chrono::steady_clock::now();
      std::vector<std::vector<WeightedEdge>> block_edges(
          static_cast<size_t>(threads));
      std::vector<SimilarityStats> block_stats(static_cast<size_t>(threads));
      ParallelFor(
          static_cast<size_t>(left_end - left_begin),
          [&](size_t begin, size_t end, int shard) {
            auto& edges = block_edges[static_cast<size_t>(shard)];
            auto& stats = block_stats[static_cast<size_t>(shard)];
            CellDistanceCache cache;
            ScoreScratch scratch;
            for (size_t k = begin; k < end; ++k) {
              const EntityIdx u_idx =
                  left_begin + static_cast<EntityIdx>(k);
              const EntityId u = ctx.store_e.entity_id(u_idx);
              for (const EntityIdx v_idx :
                   generator->CandidatesFor(u_idx)) {
                const double s = engine.ScoreIndexed(u_idx, v_idx, &stats,
                                                     &cache, &scratch);
                if (s > 0.0) {
                  edges.push_back({u, ctx.store_i.entity_id(v_idx), s});
                }
              }
            }
            stats.cache_hits += cache.hits();
            stats.cache_misses += cache.misses();
          },
          threads);
      // Blocks leave in (left, right, thread-shard) order — any order
      // works, the merge re-sorts — and their scratch dies here.
      for (int shard = 0; shard < threads; ++shard) {
        result.stats += block_stats[static_cast<size_t>(shard)];
        spill.Append(std::move(block_edges[static_cast<size_t>(shard)]));
      }
      result.seconds_scoring += SecondsSince(t0);
      result.rss_peak_scoring = CurrentPeakRssBytes();
    }
  }

  result.spilled_edges = spill.size();
  result.spill_on_disk = spill.on_disk();

  // 4/5. Deterministic merge into the shared matching + threshold tail:
  // the seal fixes the canonical edge orders, so the block partition
  // leaves no trace in the output.
  if (Status s = internal::SealLinkageStreamed(config, &spill, &result);
      !s.ok()) {
    return s;
  }
  result.spill_bytes_written = spill.spill_bytes_written();
  result.merge_passes = spill.merge_passes();

  result.seconds_total = SecondsSince(t_start);
  result.rss_peak_total = CurrentPeakRssBytes();
  return result;
}

}  // namespace

std::vector<std::pair<EntityIdx, EntityIdx>> BalancedEntityRanges(
    size_t count, int parts) {
  size_t k = static_cast<size_t>(std::max(1, parts));
  if (count > 0) k = std::min(k, count);
  if (count == 0) k = 1;
  // Balanced contiguous ranges: the first (count % k) parts take one extra
  // entity, so sizes differ by at most one.
  const size_t base = count / k;
  const size_t extra = count % k;
  std::vector<std::pair<EntityIdx, EntityIdx>> ranges;
  ranges.reserve(k);
  EntityIdx begin = 0;
  for (size_t s = 0; s < k; ++s) {
    const EntityIdx end =
        begin + static_cast<EntityIdx>(base + (s < extra ? 1 : 0));
    ranges.emplace_back(begin, end);
    begin = end;
  }
  SLIM_CHECK(ranges.back().second == count);
  return ranges;
}

ShardPlan ShardPlan::Fixed(size_t rights, int shards) {
  ShardPlan plan;
  plan.ranges = BalancedEntityRanges(rights, shards);
  plan.shards = static_cast<int>(plan.ranges.size());
  // Fixed() cannot know the left extent; EstimateShardPlan balances
  // left_ranges over the actual left store.
  return plan;
}

uint64_t EstimateBlockBytesPerEntity(const LinkageContext& context,
                                     uint64_t rss_before_context) {
  const HistoryStore& si = context.store_i;
  const size_t rights = si.size();
  if (rights == 0) return kPerEntityFloorBytes;

  // Structural floor: the right store's own CSR bytes per entity — bin ids,
  // counts, windows, window->bin map — which the block's postings and
  // candidate lists mirror at least once.
  const uint64_t store_bytes =
      si.bin_ids().size() * (sizeof(BinId) + sizeof(uint32_t) * 2) +
      si.entity_ids().size() *
          (sizeof(EntityId) + sizeof(uint32_t) * 2 + sizeof(uint64_t));
  uint64_t per_entity = store_bytes / rights;

  // RSS calibration: the context build's measured growth per entity (both
  // sides) captures allocator overhead and the tree structures the
  // structural count misses. Peak RSS is monotone, so the difference is a
  // true lower bound on what the build added.
  const uint64_t rss_now = CurrentPeakRssBytes();
  const size_t entities = context.store_e.size() + rights;
  if (rss_now > rss_before_context && entities > 0) {
    per_entity = std::max(per_entity,
                          (rss_now - rss_before_context) / entities);
  }
  return std::max(per_entity * kBlockExpansionFactor, kPerEntityFloorBytes);
}

ShardPlan EstimateShardPlan(const LinkageContext& context,
                            const SlimConfig& config,
                            uint64_t rss_before_context) {
  const size_t rights = context.store_i.size();
  ShardPlan plan;
  if (config.shards > 0) {
    plan = ShardPlan::Fixed(rights, config.shards);
  } else if (config.shard_memory_budget_bytes == 0 || rights == 0) {
    plan = ShardPlan::Fixed(rights, 1);
  } else {
    const uint64_t per_entity =
        EstimateBlockBytesPerEntity(context, rss_before_context);
    const uint64_t budget = config.shard_memory_budget_bytes;
    // Smallest K with ceil(rights / K) * per_entity <= budget: at most
    // floor(budget / per_entity) entities fit one shard, so K must cover
    // `rights` in chunks of that size (one entity per shard when even a
    // single entity exceeds the budget — sharding cannot go finer).
    const uint64_t entities_per_shard = budget / per_entity;
    const uint64_t shards =
        entities_per_shard == 0
            ? rights
            : (rights + entities_per_shard - 1) / entities_per_shard;
    plan = ShardPlan::Fixed(
        rights, static_cast<int>(std::min<uint64_t>(
                    shards == 0 ? 1 : shards,
                    static_cast<uint64_t>(std::numeric_limits<int>::max()))));
    plan.per_entity_bytes = per_entity;
  }
  plan.left_ranges =
      BalancedEntityRanges(context.store_e.size(), config.left_shards);
  plan.left_shards = static_cast<int>(plan.left_ranges.size());
  return plan;
}

Result<LinkageResult> SlimLinker::LinkSharded(
    const LocationDataset& dataset_e, const LocationDataset& dataset_i) const {
  if (!dataset_e.finalized() || !dataset_i.finalized()) {
    return Status::FailedPrecondition("datasets must be finalized");
  }
  const auto t_start = std::chrono::steady_clock::now();
  LinkageResult result;
  result.candidates_used = config_.candidates;
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();
  const uint64_t rss_before_context = CurrentPeakRssBytes();

  // 1. The global context — identical to the monolithic path: IDF, length
  //    norms, the bin vocabulary, and the LSH query grid are dataset-level
  //    statistics, so they must see both full datasets whatever the plan
  //    is. With sctx_path set the heap build happens at most once (to
  //    create the file) and the run proceeds over the mapped image, so the
  //    steady-state context cost is page cache instead of RSS.
  auto t0 = std::chrono::steady_clock::now();
  LinkageContext ctx;
  if (config_.sctx_path.empty()) {
    ctx = LinkageContext::Build(dataset_e, dataset_i, config_.history,
                                threads);
  } else {
    if (!PathExists(config_.sctx_path)) {
      // Scoped so the heap context dies before the mapped one loads: the
      // whole point is not paying for both at once.
      const LinkageContext built = LinkageContext::Build(
          dataset_e, dataset_i, config_.history, threads);
      if (Status s = WriteSctx(built, config_.sctx_path); !s.ok()) return s;
    }
    SctxReadOptions read_options;
    // Only the LSH generator probes window trees; brute/grid runs skip the
    // rebuild and keep the context fully mapped.
    read_options.build_trees = config_.candidates == CandidateKind::kLsh;
    read_options.threads = threads;
    Result<LinkageContext> loaded = ReadSctx(config_.sctx_path, read_options);
    if (!loaded.ok()) return loaded.status();
    ctx = std::move(loaded.value());
  }
  result.seconds_histories = SecondsSince(t0);
  result.rss_peak_histories = CurrentPeakRssBytes();

  return RunShardedBlocks(config_, threads, ctx, rss_before_context, t_start,
                          std::move(result));
}

Result<LinkageResult> SlimLinker::LinkShardedContext(
    const LinkageContext& context) const {
  const auto t_start = std::chrono::steady_clock::now();
  LinkageResult result;
  result.candidates_used = config_.candidates;
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();
  result.rss_peak_histories = CurrentPeakRssBytes();
  return RunShardedBlocks(config_, threads, context, CurrentPeakRssBytes(),
                          t_start, std::move(result));
}

}  // namespace slim
