// Time-location bin proximity (paper Eq. 1).
//
//   P(e, i) = T(e, i) * log2(2 - min(d(e.c, i.c) / R, 2))
//
// where T is 1 only for bins of the same temporal window, d is the minimum
// geographic distance between the bins' cells, and R = |w| * alpha is the
// runaway distance (the farthest an entity can travel within one window at
// the dataset's maximum speed alpha). Same cell -> 1; distance R -> 0;
// beyond R the value turns negative with increasing slope — the *alibi*
// penalty — approaching -inf at 2R. A configurable clamp keeps the value
// finite (the paper notes location inaccuracy motivates a steep-but-
// continuous penalty rather than a hard cutoff).
#ifndef SLIM_CORE_PROXIMITY_H_
#define SLIM_CORE_PROXIMITY_H_

#include "core/history.h"

namespace slim {

/// Parameters of the proximity function.
struct ProximityConfig {
  /// Maximum entity speed alpha, meters/second. Paper default: 2 km/min
  /// (US-highway-derived) = 33.33 m/s.
  double max_speed_mps = 2000.0 / 60.0;

  /// The distance ratio d/R is clamped to 2 - clamp_epsilon, bounding the
  /// penalty at log2(clamp_epsilon) instead of -inf.
  double clamp_epsilon = 1e-6;
};

/// Runaway distance R for a leaf window of `window_seconds`.
double RunawayMeters(const ProximityConfig& config, int64_t window_seconds);

/// Spatial part of Eq. 1 given a precomputed cell distance and R:
/// log2(2 - min(d/R, 2 - eps)). Requires runaway_m > 0.
double SpatialProximity(double distance_m, double runaway_m,
                        double clamp_epsilon);

/// Full Eq. 1 on two bins: 0 for different windows, otherwise
/// SpatialProximity over MinDistanceMeters of the cells.
double BinProximity(const TimeLocationBin& e, const TimeLocationBin& i,
                    const ProximityConfig& config, int64_t window_seconds);

/// True when a same-window bin pair is an alibi: farther apart than the
/// runaway distance (negative proximity).
bool IsAlibi(double distance_m, double runaway_m);

}  // namespace slim

#endif  // SLIM_CORE_PROXIMITY_H_
