#include "core/candidates.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"

namespace slim {
namespace {

// Flat CSR candidate storage shared by the LSH and grid generators.
struct CandidateCsr {
  std::vector<uint64_t> offsets;  // size lefts + 1
  std::vector<EntityIdx> flat;    // ascending within each left span

  std::span<const EntityIdx> SpanOf(EntityIdx u) const {
    return {flat.data() + offsets[u], flat.data() + offsets[u + 1]};
  }

  // Builds the CSR from per-left lists (consumed) in left order.
  static CandidateCsr FromLists(std::vector<std::vector<EntityIdx>> lists) {
    CandidateCsr csr;
    csr.offsets.assign(lists.size() + 1, 0);
    for (size_t k = 0; k < lists.size(); ++k) {
      csr.offsets[k + 1] = csr.offsets[k] + lists[k].size();
    }
    csr.flat.resize(csr.offsets.back());
    for (size_t k = 0; k < lists.size(); ++k) {
      std::copy(lists[k].begin(), lists[k].end(),
                csr.flat.begin() + static_cast<ptrdiff_t>(csr.offsets[k]));
    }
    return csr;
  }
};

class BruteForceCandidates final : public CandidateGenerator {
 public:
  explicit BruteForceCandidates(const LinkageContext& ctx)
      : lefts_(ctx.store_e.size()), all_right_(ctx.store_i.size()) {
    std::iota(all_right_.begin(), all_right_.end(), EntityIdx{0});
  }

  std::string_view name() const override { return "brute"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx) const override {
    return all_right_;
  }
  uint64_t total_candidate_pairs() const override {
    return static_cast<uint64_t>(lefts_) * all_right_.size();
  }

 private:
  size_t lefts_;
  std::vector<EntityIdx> all_right_;
};

class LshCandidates final : public CandidateGenerator {
 public:
  LshCandidates(const LinkageContext& ctx, const LshConfig& config,
                int threads) {
    std::vector<LshIndex::Entry> left, right;
    left.reserve(ctx.store_e.size());
    right.reserve(ctx.store_i.size());
    for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
      left.push_back({ctx.store_e.entity_id(u), &ctx.store_e.tree(u)});
    }
    for (EntityIdx v = 0; v < ctx.store_i.size(); ++v) {
      right.push_back({ctx.store_i.entity_id(v), &ctx.store_i.tree(v)});
    }
    index_ = LshIndex::Build(left, right, config, threads);
  }

  std::string_view name() const override { return "lsh"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx u) const override {
    // The index was built in store order, so its right-side positions ARE
    // the dense EntityIdx values — no re-keying.
    static_assert(std::is_same_v<EntityIdx, uint32_t>);
    return index_.CandidatePositionsAt(u);
  }
  uint64_t total_candidate_pairs() const override {
    return index_.total_candidate_pairs();
  }
  /// The underlying index (signature diagnostics, tests).
  const LshIndex& index() const { return index_; }

 private:
  LshIndex index_;
};

class GridBlockingCandidates final : public CandidateGenerator {
 public:
  GridBlockingCandidates(const LinkageContext& ctx,
                         const GridBlockingConfig& config, int threads) {
    const HistoryStore& se = ctx.store_e;
    const HistoryStore& si = ctx.store_i;

    // Inverted index bin -> right entities, CSR over the shared
    // vocabulary. Right entities are visited in index order, so every
    // posting list is ascending.
    std::vector<uint64_t> bin_offsets(ctx.vocab.size() + 1, 0);
    for (const BinId b : si.bin_ids()) ++bin_offsets[b + 1];
    for (size_t b = 1; b < bin_offsets.size(); ++b) {
      bin_offsets[b] += bin_offsets[b - 1];
    }
    std::vector<EntityIdx> postings(si.bin_ids().size());
    {
      std::vector<uint64_t> cursor = bin_offsets;
      for (EntityIdx v = 0; v < si.size(); ++v) {
        for (const BinId b : si.bins(v)) postings[cursor[b]++] = v;
      }
    }

    const uint32_t cap = config.max_bin_entities;
    std::vector<std::vector<EntityIdx>> lists(se.size());
    ParallelFor(
        se.size(),
        [&](size_t begin, size_t end, int) {
          for (size_t k = begin; k < end; ++k) {
            auto& list = lists[k];
            for (const BinId b : se.bins(static_cast<EntityIdx>(k))) {
              const uint64_t lo = bin_offsets[b], hi = bin_offsets[b + 1];
              if (cap > 0 && hi - lo > cap) continue;  // hotspot stop-word
              list.insert(list.end(), postings.begin() + lo,
                          postings.begin() + hi);
            }
            std::sort(list.begin(), list.end());
            list.erase(std::unique(list.begin(), list.end()), list.end());
          }
        },
        threads);
    csr_ = CandidateCsr::FromLists(std::move(lists));
  }

  std::string_view name() const override { return "grid"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx u) const override {
    return csr_.SpanOf(u);
  }
  uint64_t total_candidate_pairs() const override { return csr_.flat.size(); }

 private:
  CandidateCsr csr_;
};

}  // namespace

std::string_view CandidateKindName(CandidateKind kind) {
  switch (kind) {
    case CandidateKind::kLsh:
      return "lsh";
    case CandidateKind::kBruteForce:
      return "brute";
    case CandidateKind::kGrid:
      return "grid";
  }
  return "unknown";
}

Result<CandidateKind> ParseCandidateKind(std::string_view name) {
  if (name == "lsh") return CandidateKind::kLsh;
  if (name == "brute") return CandidateKind::kBruteForce;
  if (name == "grid") return CandidateKind::kGrid;
  return Status::InvalidArgument("unknown candidate generator: " +
                                 std::string(name));
}

std::unique_ptr<CandidateGenerator> MakeCandidateGenerator(
    CandidateKind kind, const LinkageContext& context,
    const LshConfig& lsh_config, const GridBlockingConfig& grid_config,
    int threads) {
  switch (kind) {
    case CandidateKind::kLsh:
      return std::make_unique<LshCandidates>(context, lsh_config, threads);
    case CandidateKind::kBruteForce:
      return std::make_unique<BruteForceCandidates>(context);
    case CandidateKind::kGrid:
      return std::make_unique<GridBlockingCandidates>(context, grid_config,
                                                      threads);
  }
  SLIM_CHECK_MSG(false, "unreachable candidate kind");
  return nullptr;
}

}  // namespace slim
