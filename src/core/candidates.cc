#include "core/candidates.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/parallel.h"
#include "core/score_kernel.h"

namespace slim {
namespace {

// Flat CSR candidate storage shared by the LSH and grid generators.
struct CandidateCsr {
  std::vector<uint64_t> offsets;  // size lefts + 1
  std::vector<EntityIdx> flat;    // ascending within each left span

  std::span<const EntityIdx> SpanOf(EntityIdx u) const {
    return {flat.data() + offsets[u], flat.data() + offsets[u + 1]};
  }

  // Builds the CSR from per-left lists (consumed) in left order.
  static CandidateCsr FromLists(std::vector<std::vector<EntityIdx>> lists) {
    CandidateCsr csr;
    csr.offsets.assign(lists.size() + 1, 0);
    for (size_t k = 0; k < lists.size(); ++k) {
      csr.offsets[k + 1] = csr.offsets[k] + lists[k].size();
    }
    csr.flat.resize(csr.offsets.back());
    for (size_t k = 0; k < lists.size(); ++k) {
      std::copy(lists[k].begin(), lists[k].end(),
                csr.flat.begin() + static_cast<ptrdiff_t>(csr.offsets[k]));
    }
    return csr;
  }
};

// Every cross pair of the block: [left_begin, left_end) x [begin, end).
class BruteForceCandidates final : public CandidateGenerator {
 public:
  BruteForceCandidates(EntityIdx left_begin, EntityIdx left_end,
                       EntityIdx begin, EntityIdx end)
      : lefts_(left_end - left_begin), shard_right_(end - begin) {
    std::iota(shard_right_.begin(), shard_right_.end(), begin);
  }

  std::string_view name() const override { return "brute"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx) const override {
    return shard_right_;
  }
  uint64_t total_candidate_pairs() const override {
    return static_cast<uint64_t>(lefts_) * shard_right_.size();
  }

 private:
  size_t lefts_;
  std::vector<EntityIdx> shard_right_;
};

class LshCandidates final : public CandidateGenerator {
 public:
  LshCandidates(const LinkageContext& ctx, const LshConfig& config,
                EntityIdx left_begin, EntityIdx left_end,
                EntityIdx right_begin, EntityIdx right_end, int threads)
      : left_begin_(left_begin) {
    std::vector<LshIndex::Entry> left, right;
    left.reserve(left_end - left_begin);
    right.reserve(right_end - right_begin);
    for (EntityIdx u = left_begin; u < left_end; ++u) {
      left.push_back({ctx.store_e.entity_id(u), &ctx.store_e.tree(u)});
    }
    for (EntityIdx v = right_begin; v < right_end; ++v) {
      right.push_back({ctx.store_i.entity_id(v), &ctx.store_i.tree(v)});
    }
    // The grid is pinned to the full problem's span, so a block build's
    // band hashes — and therefore its collisions — are exactly the full
    // build's restricted to the block: a collision is a pairwise predicate
    // over one left and one right signature, and neither signature depends
    // on which other entities were indexed alongside it.
    const LshWindowSpan span = GlobalWindowSpan(ctx);
    const LshIndex index = LshIndex::Build(left, right, config, threads, &span);
    total_candidate_pairs_ = index.total_candidate_pairs();

    // Re-key subset positions to global right EntityIdx and drop the index:
    // signatures and bucket tables are construction scaffolding here, and
    // freeing them keeps only the candidate lists resident.
    static_assert(std::is_same_v<EntityIdx, uint32_t>);
    csr_.offsets.assign(left.size() + 1, 0);
    for (size_t k = 0; k < left.size(); ++k) {
      csr_.offsets[k + 1] =
          csr_.offsets[k] + index.CandidatePositionsAt(k).size();
    }
    csr_.flat.resize(csr_.offsets.back());
    size_t pos = 0;
    for (size_t k = 0; k < left.size(); ++k) {
      for (const uint32_t p : index.CandidatePositionsAt(k)) {
        csr_.flat[pos++] = p + right_begin;
      }
    }
  }

  std::string_view name() const override { return "lsh"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx u) const override {
    return csr_.SpanOf(u - left_begin_);
  }
  uint64_t total_candidate_pairs() const override {
    return total_candidate_pairs_;
  }

 private:
  EntityIdx left_begin_;
  CandidateCsr csr_;
  uint64_t total_candidate_pairs_ = 0;
};

class GridBlockingCandidates final : public CandidateGenerator {
 public:
  GridBlockingCandidates(const LinkageContext& ctx,
                         const GridBlockingConfig& config,
                         EntityIdx left_begin, EntityIdx left_end,
                         EntityIdx right_begin, EntityIdx right_end,
                         int threads)
      : left_begin_(left_begin) {
    const HistoryStore& se = ctx.store_e;
    const HistoryStore& si = ctx.store_i;

    // Inverted index bin -> shard right entities, CSR over the shared
    // vocabulary. Right entities are visited in index order, so every
    // posting list is ascending.
    std::vector<uint64_t> bin_offsets(ctx.vocab.size() + 1, 0);
    for (EntityIdx v = right_begin; v < right_end; ++v) {
      for (const BinId b : si.bins(v)) ++bin_offsets[b + 1];
    }
    for (size_t b = 1; b < bin_offsets.size(); ++b) {
      bin_offsets[b] += bin_offsets[b - 1];
    }
    std::vector<EntityIdx> postings(bin_offsets.back());
    {
      std::vector<uint64_t> cursor = bin_offsets;
      for (EntityIdx v = right_begin; v < right_end; ++v) {
        for (const BinId b : si.bins(v)) postings[cursor[b]++] = v;
      }
    }

    const uint32_t cap = config.max_bin_entities;
    const uint32_t min_overlap = config.min_overlap_records;
    // The quantized-overlap prefilter runs on whatever kernel the CPU
    // resolves to — it is integer-exact, so the surviving pairs are the
    // same on every kernel and shard layout.
    const ScoreKernelOps& ops =
        GetScoreKernelOps(ResolveScoreKernel(ScoreKernel::kAuto));
    // Per-left co-visit gathering touches only that left's own bins, so
    // restricting the loop to the block's left range changes nothing about
    // the lists it does build.
    std::vector<std::vector<EntityIdx>> lists(left_end - left_begin);
    ParallelFor(
        lists.size(),
        [&](size_t begin, size_t end, int) {
          std::vector<uint32_t> match_a, match_b;  // per-worker scratch
          for (size_t k = begin; k < end; ++k) {
            const EntityIdx u = left_begin + static_cast<EntityIdx>(k);
            auto& list = lists[k];
            for (const BinId b : se.bins(u)) {
              // The hotspot stop-word counts holders in the FULL right
              // store, so shard builds skip exactly the bins the
              // monolithic build skips.
              if (cap > 0 && si.bin_entity_count(b) > cap) continue;
              const uint64_t lo = bin_offsets[b], hi = bin_offsets[b + 1];
              list.insert(list.end(), postings.begin() + lo,
                          postings.begin() + hi);
            }
            std::sort(list.begin(), list.end());
            list.erase(std::unique(list.begin(), list.end()), list.end());
            if (min_overlap > 1) {
              std::erase_if(list, [&](EntityIdx v) {
                return QuantizedOverlap(ops, se.bins(u), se.quantized_counts(u),
                                        si.bins(v), si.quantized_counts(v),
                                        &match_a, &match_b) < min_overlap;
              });
            }
          }
        },
        threads);
    csr_ = CandidateCsr::FromLists(std::move(lists));
  }

  std::string_view name() const override { return "grid"; }
  std::span<const EntityIdx> CandidatesFor(EntityIdx u) const override {
    return csr_.SpanOf(u - left_begin_);
  }
  uint64_t total_candidate_pairs() const override { return csr_.flat.size(); }

 private:
  EntityIdx left_begin_;
  CandidateCsr csr_;
};

}  // namespace

LshWindowSpan GlobalWindowSpan(const LinkageContext& ctx) {
  int64_t lo = std::numeric_limits<int64_t>::max();
  int64_t hi = std::numeric_limits<int64_t>::min();
  // Each entity's sorted window list bounds its occupancy exactly as its
  // tree's min/max do — reading the CSR keeps this usable on SCTX-loaded
  // contexts that skipped the tree rebuild.
  auto widen = [&](const HistoryStore& store) {
    for (EntityIdx k = 0; k < store.size(); ++k) {
      const std::span<const int64_t> windows = store.windows(k);
      if (windows.empty()) continue;
      lo = std::min(lo, windows.front());
      hi = std::max(hi, windows.back());
    }
  };
  widen(ctx.store_e);
  widen(ctx.store_i);
  if (lo > hi) return {0, 0};
  return {lo, hi + 1};
}

std::string_view CandidateKindName(CandidateKind kind) {
  switch (kind) {
    case CandidateKind::kLsh:
      return "lsh";
    case CandidateKind::kBruteForce:
      return "brute";
    case CandidateKind::kGrid:
      return "grid";
  }
  return "unknown";
}

Result<CandidateKind> ParseCandidateKind(std::string_view name) {
  if (name == "lsh") return CandidateKind::kLsh;
  if (name == "brute") return CandidateKind::kBruteForce;
  if (name == "grid") return CandidateKind::kGrid;
  return Status::InvalidArgument("unknown candidate generator: " +
                                 std::string(name));
}

std::unique_ptr<CandidateGenerator> MakeCandidateGenerator(
    CandidateKind kind, const LinkageContext& context,
    const LshConfig& lsh_config, const GridBlockingConfig& grid_config,
    int threads) {
  // A monolithic build IS the one-block build over both full stores.
  return MakeShardCandidateGenerator(
      kind, context, lsh_config, grid_config, 0,
      static_cast<EntityIdx>(context.store_e.size()), 0,
      static_cast<EntityIdx>(context.store_i.size()), threads);
}

std::unique_ptr<CandidateGenerator> MakeShardCandidateGenerator(
    CandidateKind kind, const LinkageContext& context,
    const LshConfig& lsh_config, const GridBlockingConfig& grid_config,
    EntityIdx left_begin, EntityIdx left_end, EntityIdx right_begin,
    EntityIdx right_end, int threads) {
  SLIM_CHECK_MSG(left_begin <= left_end &&
                     left_end <= context.store_e.size(),
                 "left shard range out of bounds");
  SLIM_CHECK_MSG(right_begin <= right_end &&
                     right_end <= context.store_i.size(),
                 "right shard range out of bounds");
  switch (kind) {
    case CandidateKind::kLsh:
      return std::make_unique<LshCandidates>(context, lsh_config, left_begin,
                                             left_end, right_begin, right_end,
                                             threads);
    case CandidateKind::kBruteForce:
      return std::make_unique<BruteForceCandidates>(left_begin, left_end,
                                                    right_begin, right_end);
    case CandidateKind::kGrid:
      return std::make_unique<GridBlockingCandidates>(
          context, grid_config, left_begin, left_end, right_begin, right_end,
          threads);
  }
  SLIM_CHECK_MSG(false, "unreachable candidate kind");
  return nullptr;
}

}  // namespace slim
