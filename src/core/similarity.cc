#include "core/similarity.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/check.h"
#include "core/pairing.h"

namespace slim {

SimilarityEngine::SimilarityEngine(const HistorySet& set_e,
                                   const HistorySet& set_i,
                                   const SimilarityConfig& config)
    : set_e_(set_e), set_i_(set_i), config_(config) {
  SLIM_CHECK_MSG(set_e.config().spatial_level == set_i.config().spatial_level &&
                     set_e.config().window_seconds ==
                         set_i.config().window_seconds,
                 "HistorySets must share one HistoryConfig");
  SLIM_CHECK_MSG(config_.b >= 0.0 && config_.b <= 1.0, "b must be in [0,1]");
  runaway_m_ =
      RunawayMeters(config_.proximity, set_e.config().window_seconds);
}

double SimilarityEngine::Score(EntityId u, EntityId v, SimilarityStats* stats,
                               CellDistanceCache* cache) const {
  const MobilityHistory* hu = set_e_.Find(u);
  const MobilityHistory* hv = set_i_.Find(v);
  if (hu == nullptr || hv == nullptr) return 0.0;
  return ScoreHistories(*hu, set_e_, *hv, set_i_, stats, cache);
}

double SimilarityEngine::ScoreHistories(const MobilityHistory& hu,
                                        const HistorySet& set_u,
                                        const MobilityHistory& hv,
                                        const HistorySet& set_v,
                                        SimilarityStats* stats,
                                        CellDistanceCache* cache) const {
  SLIM_CHECK(stats != nullptr);
  ++stats->entity_pairs;
  if (hu.num_bins() == 0 || hv.num_bins() == 0) return 0.0;

  // Normalisation divisor (Eq. 2); 1 when disabled.
  double norm = 1.0;
  if (config_.use_normalization) {
    norm = set_u.LengthNorm(hu, config_.b) * set_v.LengthNorm(hv, config_.b);
  }

  // Intersect the two sorted window lists.
  const auto& wu = hu.windows();
  const auto& wv = hv.windows();
  double score = 0.0;
  size_t iu = 0, iv = 0;
  std::vector<double> dist;   // reused per-window distance matrix
  std::vector<char> in_mnn;   // reused MNN membership mask

  while (iu < wu.size() && iv < wv.size()) {
    if (wu[iu] < wv[iv]) {
      ++iu;
      continue;
    }
    if (wv[iv] < wu[iu]) {
      ++iv;
      continue;
    }
    const int64_t w = wu[iu];
    ++iu;
    ++iv;

    const auto bins_u = hu.BinsInWindow(w);
    const auto bins_v = hv.BinsInWindow(w);
    const size_t m = bins_u.size();
    const size_t n = bins_v.size();

    // Distance matrix, computed once and shared by the N and N' passes.
    dist.resize(m * n);
    for (size_t r = 0; r < m; ++r) {
      for (size_t c = 0; c < n; ++c) {
        dist[r * n + c] =
            cache != nullptr
                ? cache->Get(bins_u[r].cell, bins_v[c].cell)
                : MinDistanceMeters(bins_u[r].cell, bins_v[c].cell);
      }
    }
    stats->record_comparisons += static_cast<uint64_t>(m) * n;

    // Contribution of one bin pair, per Eq. 2.
    auto contribution = [&](size_t r, size_t c) {
      const double d = dist[r * n + c];
      const double p =
          SpatialProximity(d, runaway_m_, config_.proximity.clamp_epsilon);
      if (IsAlibi(d, runaway_m_)) ++stats->alibi_pairs;
      double idf = 1.0;
      if (config_.use_idf) {
        idf = std::min(set_u.Idf(w, bins_u[r].cell),
                       set_v.Idf(w, bins_v[c].cell));
      }
      return p * idf / norm;
    };

    if (config_.pairing == PairingKind::kAllPairs) {
      for (const auto& [r, c] : AllPairs(m, n)) score += contribution(r, c);
    } else {
      const bool run_mfn = config_.use_mfn;
      const MutualPairing pairing =
          MutualNearestAndFurthestPairs(dist, m, n, run_mfn);
      in_mnn.assign(m * n, 0);
      for (const auto& [r, c] : pairing.nearest) {
        in_mnn[r * n + c] = 1;
        score += contribution(r, c);
      }
      // Alg. 1: add mutually-furthest pairs only when they are alibis
      // (negative delta) and not already counted by N.
      for (const auto& [r, c] : pairing.furthest) {
        if (in_mnn[r * n + c]) continue;
        const double delta = contribution(r, c);
        if (delta < 0.0) score += delta;
      }
    }
  }
  return score;
}

double SimilarityEngine::SelfScore(const MobilityHistory& hu,
                                   const HistorySet& set_u,
                                   SimilarityStats* stats,
                                   CellDistanceCache* cache) const {
  return ScoreHistories(hu, set_u, hu, set_u, stats, cache);
}

}  // namespace slim
