#include "core/similarity.h"

#include <algorithm>

#include "common/check.h"
#include "core/pairing.h"

namespace slim {

SimilarityEngine::SimilarityEngine(const LinkageContext& context,
                                   const SimilarityConfig& config)
    : ctx_(context), config_(config) {
  SLIM_CHECK_MSG(config_.b >= 0.0 && config_.b <= 1.0, "b must be in [0,1]");
  runaway_m_ = RunawayMeters(config_.proximity, ctx_.config.window_seconds);
  if (config_.use_normalization) {
    norm_e_.resize(ctx_.store_e.size());
    for (EntityIdx u = 0; u < norm_e_.size(); ++u) {
      norm_e_[u] = ctx_.store_e.LengthNorm(u, config_.b);
    }
    norm_i_.resize(ctx_.store_i.size());
    for (EntityIdx v = 0; v < norm_i_.size(); ++v) {
      norm_i_[v] = ctx_.store_i.LengthNorm(v, config_.b);
    }
  }
}

double SimilarityEngine::Score(EntityId u, EntityId v, SimilarityStats* stats,
                               CellDistanceCache* cache) const {
  const auto iu = ctx_.store_e.IndexOf(u);
  const auto iv = ctx_.store_i.IndexOf(v);
  if (!iu.has_value() || !iv.has_value()) return 0.0;
  return ScoreIndexed(*iu, *iv, stats, cache);
}

double SimilarityEngine::ScoreIndexed(EntityIdx u, EntityIdx v,
                                      SimilarityStats* stats,
                                      CellDistanceCache* cache) const {
  SLIM_CHECK(stats != nullptr);
  ++stats->entity_pairs;
  const HistoryStore& se = ctx_.store_e;
  const HistoryStore& si = ctx_.store_i;
  if (se.num_bins(u) == 0 || si.num_bins(v) == 0) return 0.0;

  // Normalisation divisor (Eq. 2); 1 when disabled.
  const double norm =
      config_.use_normalization ? norm_e_[u] * norm_i_[v] : 1.0;

  const BinVocabulary& vocab = ctx_.vocab;
  const BinId* bins_e = se.bin_ids().data();
  const BinId* bins_i = si.bin_ids().data();
  const double* idf_e = config_.use_idf ? se.idf_values().data() : nullptr;
  const double* idf_i = config_.use_idf ? si.idf_values().data() : nullptr;

  // Intersect the two sorted window lists.
  const auto wu = se.windows(u);
  const auto wv = si.windows(v);
  double score = 0.0;
  size_t iu = 0, iv = 0;
  std::vector<double> dist;   // reused per-window distance matrix
  std::vector<char> in_mnn;   // reused MNN membership mask

  while (iu < wu.size() && iv < wv.size()) {
    if (wu[iu] < wv[iv]) {
      ++iu;
      continue;
    }
    if (wv[iv] < wu[iu]) {
      ++iv;
      continue;
    }
    const auto [ub, ue] = se.WindowBinRange(u, iu);
    const auto [vb, ve] = si.WindowBinRange(v, iv);
    ++iu;
    ++iv;
    const size_t m = ue - ub;
    const size_t n = ve - vb;

    // Distance matrix, computed once and shared by the N and N' passes.
    dist.resize(m * n);
    for (size_t r = 0; r < m; ++r) {
      const CellId cell_u = vocab.cell(bins_e[ub + r]);
      for (size_t c = 0; c < n; ++c) {
        const CellId cell_v = vocab.cell(bins_i[vb + c]);
        dist[r * n + c] = cache != nullptr ? cache->Get(cell_u, cell_v)
                                           : MinDistanceMeters(cell_u, cell_v);
      }
    }
    stats->record_comparisons += static_cast<uint64_t>(m) * n;

    // Contribution of one bin pair, per Eq. 2.
    auto contribution = [&](size_t r, size_t c) {
      const double d = dist[r * n + c];
      const double p =
          SpatialProximity(d, runaway_m_, config_.proximity.clamp_epsilon);
      if (IsAlibi(d, runaway_m_)) ++stats->alibi_pairs;
      double idf = 1.0;
      if (config_.use_idf) {
        idf = std::min(idf_e[bins_e[ub + r]], idf_i[bins_i[vb + c]]);
      }
      return p * idf / norm;
    };

    if (config_.pairing == PairingKind::kAllPairs) {
      for (const auto& [r, c] : AllPairs(m, n)) score += contribution(r, c);
    } else {
      const bool run_mfn = config_.use_mfn;
      const MutualPairing pairing =
          MutualNearestAndFurthestPairs(dist, m, n, run_mfn);
      in_mnn.assign(m * n, 0);
      for (const auto& [r, c] : pairing.nearest) {
        in_mnn[r * n + c] = 1;
        score += contribution(r, c);
      }
      // Alg. 1: add mutually-furthest pairs only when they are alibis
      // (negative delta) and not already counted by N.
      for (const auto& [r, c] : pairing.furthest) {
        if (in_mnn[r * n + c]) continue;
        const double delta = contribution(r, c);
        if (delta < 0.0) score += delta;
      }
    }
  }
  return score;
}

}  // namespace slim
