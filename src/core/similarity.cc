#include "core/similarity.h"

#include <algorithm>

#include "common/check.h"
#include "core/pairing.h"

namespace slim {

SimilarityEngine::SimilarityEngine(const LinkageContext& context,
                                   const SimilarityConfig& config)
    : ctx_(context), config_(config) {
  SLIM_CHECK_MSG(config_.b >= 0.0 && config_.b <= 1.0, "b must be in [0,1]");
  kernel_ = ResolveScoreKernel(config_.kernel);
  ops_ = &GetScoreKernelOps(kernel_);
  runaway_m_ = RunawayMeters(config_.proximity, ctx_.config.window_seconds);
  if (config_.use_normalization) {
    norm_e_.resize(ctx_.store_e.size());
    for (EntityIdx u = 0; u < norm_e_.size(); ++u) {
      norm_e_[u] = ctx_.store_e.LengthNorm(u, config_.b);
    }
    norm_i_.resize(ctx_.store_i.size());
    for (EntityIdx v = 0; v < norm_i_.size(); ++v) {
      norm_i_[v] = ctx_.store_i.LengthNorm(v, config_.b);
    }
  }
}

double SimilarityEngine::Score(EntityId u, EntityId v, SimilarityStats* stats,
                               CellDistanceCache* cache,
                               ScoreScratch* scratch) const {
  const auto iu = ctx_.store_e.IndexOf(u);
  const auto iv = ctx_.store_i.IndexOf(v);
  if (!iu.has_value() || !iv.has_value()) return 0.0;
  return ScoreIndexed(*iu, *iv, stats, cache, scratch);
}

double SimilarityEngine::ScoreIndexed(EntityIdx u, EntityIdx v,
                                      SimilarityStats* stats,
                                      CellDistanceCache* cache,
                                      ScoreScratch* scratch) const {
  SLIM_CHECK(stats != nullptr);
  ++stats->entity_pairs;
  const HistoryStore& se = ctx_.store_e;
  const HistoryStore& si = ctx_.store_i;

  // Most candidate pairs share no window at all, so the zero-score path is
  // the hot one and runs on as little memory as possible. First gate: the
  // 512-bit window fingerprints — disjoint fingerprints prove an empty
  // intersection for the cost of one v-side cache line (the v side is a
  // fresh random entity each call, so every distinct structure it touches
  // is a likely miss). This also covers empty histories (empty mask).
  const uint64_t* mu = se.window_mask(u);
  const uint64_t* mv = si.window_mask(v);
  uint64_t overlap = 0;
  for (size_t w = 0; w < HistoryStore::kWindowMaskWords; ++w) {
    overlap |= mu[w] & mv[w];
  }
  if (overlap == 0) return 0.0;

  // Second gate: the real sorted-window intersection, kernel-dispatched
  // (galloping when the lengths are badly skewed). Everything a zero-match
  // pair does not need — norm factors, bin/idf pointers — loads only after
  // the match count survives the early-out.
  const auto wu = se.windows(u);
  const auto wv = si.windows(v);
  if (wu.empty() || wv.empty()) return 0.0;

  ScoreScratch local;
  ScoreScratch& s = scratch != nullptr ? *scratch : local;

  const size_t cap = std::min(wu.size(), wv.size());
  if (s.match_a.size() < cap) {
    s.match_a.resize(cap);
    s.match_b.resize(cap);
  }
  const size_t matched =
      IntersectSortedI64(*ops_, wu.data(), wu.size(), wv.data(), wv.size(),
                         s.match_a.data(), s.match_b.data());
  if (matched == 0) return 0.0;

  // Normalisation divisor (Eq. 2); 1 when disabled.
  const double norm =
      config_.use_normalization ? norm_e_[u] * norm_i_[v] : 1.0;

  const BinVocabulary& vocab = ctx_.vocab;
  const BinId* bins_e = se.bin_ids().data();
  const BinId* bins_i = si.bin_ids().data();
  const double* idf_e = config_.use_idf ? se.idf_values().data() : nullptr;
  const double* idf_i = config_.use_idf ? si.idf_values().data() : nullptr;

  double score = 0.0;
  s.run_bins.clear();

  // Flushes the pending run of trivial windows — 1x1 with the same bin,
  // where the distance is 0 and the proximity exactly 1 — as one batched
  // min(idf)/norm pass. The batch is summed in window order, so the
  // accumulation order (and thus every rounding) matches the scalar
  // reference bit-for-bit.
  const auto flush_run = [&] {
    const size_t run = s.run_bins.size();
    if (run == 0) return;
    stats->record_comparisons += run;
    if (config_.use_idf) {
      if (run < 4) {
        // Too short for the batched kernel to pay for its indirect call.
        // min and the divide are exactly-rounded elementwise ops, so this
        // matches the kernel lane (and thus every variant) bit-for-bit.
        for (size_t k = 0; k < run; ++k) {
          const BinId bb = s.run_bins[k];
          score += std::min(idf_e[bb], idf_i[bb]) / norm;
        }
        s.run_bins.clear();
        return;
      }
      if (s.contrib.size() < run) s.contrib.resize(run);
      ops_->idf_contributions(s.run_bins.data(), s.run_bins.data(), run,
                              idf_e, idf_i, norm, s.contrib.data());
      for (size_t k = 0; k < run; ++k) score += s.contrib[k];
    } else {
      const double c = 1.0 / norm;
      for (size_t k = 0; k < run; ++k) score += c;
    }
    s.run_bins.clear();
  };

  for (size_t t = 0; t < matched; ++t) {
    const auto [ub, ue] = se.WindowBinRange(u, s.match_a[t]);
    const auto [vb, ve] = si.WindowBinRange(v, s.match_b[t]);
    const size_t m = ue - ub;
    const size_t n = ve - vb;

    if (m == 1 && n == 1) {
      const BinId bu = bins_e[ub];
      const BinId bv = bins_i[vb];
      if (bu == bv) {
        // Same (window, cell) bin on both sides: the vocabulary is shared,
        // so equal BinIds mean equal cells — d = 0 and P = 1 exactly, no
        // cache lookup needed. Defer to the batched flush.
        s.run_bins.push_back(bu);
        continue;
      }
      flush_run();
      // A single cross-cell bin pair: the pairing is forced (it is both
      // the mutual-nearest and the all-pairs set), so skip the matrix and
      // pairing machinery.
      const CellId cell_u = vocab.cell(bu);
      const CellId cell_v = vocab.cell(bv);
      const double d = cache != nullptr ? cache->Get(cell_u, cell_v)
                                        : MinDistanceMeters(cell_u, cell_v);
      ++stats->record_comparisons;
      const double p =
          SpatialProximity(d, runaway_m_, config_.proximity.clamp_epsilon);
      if (IsAlibi(d, runaway_m_)) ++stats->alibi_pairs;
      const double idf =
          config_.use_idf ? std::min(idf_e[bu], idf_i[bv]) : 1.0;
      score += p * idf / norm;
      continue;
    }
    flush_run();

    // General m x n window: distance matrix computed once and shared by
    // the N and N' passes.
    s.dist.resize(m * n);
    double* dist = s.dist.data();
    for (size_t r = 0; r < m; ++r) {
      const CellId cell_u = vocab.cell(bins_e[ub + r]);
      for (size_t c = 0; c < n; ++c) {
        const CellId cell_v = vocab.cell(bins_i[vb + c]);
        dist[r * n + c] = cache != nullptr ? cache->Get(cell_u, cell_v)
                                           : MinDistanceMeters(cell_u, cell_v);
      }
    }
    stats->record_comparisons += static_cast<uint64_t>(m) * n;

    // Contribution of one bin pair, per Eq. 2.
    auto contribution = [&](size_t r, size_t c) {
      const double d = dist[r * n + c];
      const double p =
          SpatialProximity(d, runaway_m_, config_.proximity.clamp_epsilon);
      if (IsAlibi(d, runaway_m_)) ++stats->alibi_pairs;
      double idf = 1.0;
      if (config_.use_idf) {
        idf = std::min(idf_e[bins_e[ub + r]], idf_i[bins_i[vb + c]]);
      }
      return p * idf / norm;
    };

    if (config_.pairing == PairingKind::kAllPairs) {
      for (const auto& [r, c] : AllPairs(m, n)) score += contribution(r, c);
    } else {
      const bool run_mfn = config_.use_mfn;
      const MutualPairing pairing =
          MutualNearestAndFurthestPairs(s.dist, m, n, run_mfn);
      s.in_mnn.assign(m * n, 0);
      for (const auto& [r, c] : pairing.nearest) {
        s.in_mnn[r * n + c] = 1;
        score += contribution(r, c);
      }
      // Alg. 1: add mutually-furthest pairs only when they are alibis
      // (negative delta) and not already counted by N.
      for (const auto& [r, c] : pairing.furthest) {
        if (s.in_mnn[r * n + c]) continue;
        const double delta = contribution(r, c);
        if (delta < 0.0) score += delta;
      }
    }
  }
  flush_run();
  return score;
}

}  // namespace slim
