#include "core/slim.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/parallel.h"

namespace slim {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SlimLinker::SlimLinker(SlimConfig config) : config_(std::move(config)) {
  SLIM_CHECK_MSG(config_.history.window_seconds > 0,
                 "window width must be positive");
  SLIM_CHECK_MSG(config_.history.spatial_level >= 0 &&
                     config_.history.spatial_level <= CellId::kMaxLevel,
                 "invalid spatial level");
  SLIM_CHECK_MSG(!config_.use_lsh ||
                     config_.lsh.signature_spatial_level <=
                         config_.history.spatial_level,
                 "LSH signature level must not exceed the history leaf level");
}

Result<LinkageResult> SlimLinker::Link(const LocationDataset& dataset_e,
                                       const LocationDataset& dataset_i) const {
  if (!dataset_e.finalized() || !dataset_i.finalized()) {
    return Status::FailedPrecondition("datasets must be finalized");
  }
  const auto t_start = std::chrono::steady_clock::now();
  LinkageResult result;
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();

  // 1. Mobility histories (CreateHistories of Alg. 1).
  auto t0 = std::chrono::steady_clock::now();
  const HistorySet set_e =
      HistorySet::Build(dataset_e, config_.history, threads);
  const HistorySet set_i =
      HistorySet::Build(dataset_i, config_.history, threads);
  result.seconds_histories = SecondsSince(t0);
  result.possible_pairs =
      static_cast<uint64_t>(set_e.size()) * static_cast<uint64_t>(set_i.size());
  if (set_e.size() == 0 || set_i.size() == 0) {
    result.seconds_total = SecondsSince(t_start);
    return result;
  }

  // 2. Candidate filtering (LSHFilterPairs of Alg. 1).
  t0 = std::chrono::steady_clock::now();
  LshIndex lsh_index;
  std::vector<EntityId> all_right;
  if (config_.use_lsh) {
    std::vector<LshIndex::Entry> left, right;
    left.reserve(set_e.size());
    right.reserve(set_i.size());
    for (const auto& h : set_e.histories()) left.push_back({h.entity(), &h.tree()});
    for (const auto& h : set_i.histories()) right.push_back({h.entity(), &h.tree()});
    lsh_index = LshIndex::Build(left, right, config_.lsh, threads);
    result.candidate_pairs = lsh_index.total_candidate_pairs();
  } else {
    all_right.reserve(set_i.size());
    for (const auto& h : set_i.histories()) all_right.push_back(h.entity());
    result.candidate_pairs = result.possible_pairs;
  }
  result.seconds_lsh = SecondsSince(t0);

  // 3. Pairwise similarity scores -> positive-score edges.
  t0 = std::chrono::steady_clock::now();
  const SimilarityEngine engine(set_e, set_i, config_.similarity);
  const auto& lefts = set_e.histories();
  std::vector<std::vector<WeightedEdge>> shard_edges(
      static_cast<size_t>(threads));
  std::vector<SimilarityStats> shard_stats(static_cast<size_t>(threads));

  ParallelFor(
      lefts.size(),
      [&](size_t begin, size_t end, int shard) {
        auto& edges = shard_edges[static_cast<size_t>(shard)];
        auto& stats = shard_stats[static_cast<size_t>(shard)];
        CellDistanceCache cache;
        for (size_t k = begin; k < end; ++k) {
          const EntityId u = lefts[k].entity();
          const std::vector<EntityId>& cands =
              config_.use_lsh ? lsh_index.CandidatesFor(u) : all_right;
          for (EntityId v : cands) {
            const double s = engine.Score(u, v, &stats, &cache);
            if (s > 0.0) edges.push_back({u, v, s});
          }
        }
      },
      threads);

  // Sharded edge lists merge in shard order; the sort below then fixes one
  // canonical edge order whatever the thread count was.
  size_t total_edges = 0;
  for (const auto& edges : shard_edges) total_edges += edges.size();
  result.graph.Reserve(total_edges);
  for (int shard = 0; shard < threads; ++shard) {
    result.stats += shard_stats[static_cast<size_t>(shard)];
    for (const auto& e : shard_edges[static_cast<size_t>(shard)]) {
      result.graph.AddEdge(e.u, e.v, e.weight);
    }
  }
  // Deterministic edge order regardless of thread count.
  {
    std::vector<WeightedEdge> edges = result.graph.edges();
    std::sort(edges.begin(), edges.end(),
              [](const WeightedEdge& a, const WeightedEdge& b) {
                if (a.u != b.u) return a.u < b.u;
                return a.v < b.v;
              });
    result.graph = BipartiteGraph(std::move(edges));
  }
  result.seconds_scoring = SecondsSince(t0);

  // 4. Maximum-sum bipartite matching (LinkPairs of Alg. 1).
  t0 = std::chrono::steady_clock::now();
  result.matching = config_.matcher == MatcherKind::kHungarian
                        ? HungarianMaxWeightMatching(result.graph)
                        : GreedyMaxWeightMatching(result.graph);
  result.seconds_matching = SecondsSince(t0);

  // 5. Automated stop threshold over the matched edge weights.
  std::vector<double> weights;
  weights.reserve(result.matching.pairs.size());
  for (const auto& e : result.matching.pairs) weights.push_back(e.weight);

  double cutoff = -std::numeric_limits<double>::infinity();
  if (config_.apply_stop_threshold) {
    auto decision =
        DetectStopThreshold(weights, config_.threshold_method);
    if (decision.ok()) {
      result.threshold = std::move(decision.value());
      result.threshold_valid = true;
      cutoff = result.threshold.threshold;
    }
    // On detector failure (too few / degenerate weights) every matched pair
    // is kept — the caller can inspect threshold_valid.
  }

  for (const auto& e : result.matching.pairs) {
    if (e.weight > cutoff) result.links.push_back({e.u, e.v, e.weight});
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedEntityPair& a, const LinkedEntityPair& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });

  result.seconds_total = SecondsSince(t_start);
  return result;
}

}  // namespace slim
