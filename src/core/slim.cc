#include "core/slim.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "common/resource.h"
#include "core/edge_spill.h"

namespace slim {
namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

SlimLinker::SlimLinker(SlimConfig config) : config_(std::move(config)) {
  SLIM_CHECK_MSG(config_.history.window_seconds > 0,
                 "window width must be positive");
  SLIM_CHECK_MSG(config_.history.spatial_level >= 0 &&
                     config_.history.spatial_level <= CellId::kMaxLevel,
                 "invalid spatial level");
  SLIM_CHECK_MSG(config_.candidates != CandidateKind::kLsh ||
                     config_.lsh.signature_spatial_level <=
                         config_.history.spatial_level,
                 "LSH signature level must not exceed the history leaf level");
}

Result<LinkageResult> SlimLinker::Link(const LocationDataset& dataset_e,
                                       const LocationDataset& dataset_i) const {
  if (!dataset_e.finalized() || !dataset_i.finalized()) {
    return Status::FailedPrecondition("datasets must be finalized");
  }
  const auto t_start = std::chrono::steady_clock::now();
  LinkageResult result;
  result.candidates_used = config_.candidates;
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();

  // 1. Dense linkage context: bin vocabulary + the two CSR history stores
  //    (CreateHistories of Alg. 1).
  auto t0 = std::chrono::steady_clock::now();
  const LinkageContext ctx =
      LinkageContext::Build(dataset_e, dataset_i, config_.history, threads);
  result.seconds_histories = SecondsSince(t0);
  result.rss_peak_histories = CurrentPeakRssBytes();
  result.possible_pairs = static_cast<uint64_t>(ctx.store_e.size()) *
                          static_cast<uint64_t>(ctx.store_i.size());
  if (ctx.store_e.size() == 0 || ctx.store_i.size() == 0) {
    result.seconds_total = SecondsSince(t_start);
    result.rss_peak_total = CurrentPeakRssBytes();
    return result;
  }

  // 2. Candidate generation (LSHFilterPairs of Alg. 1, generalised to the
  //    configured blocking stage).
  t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<CandidateGenerator> generator = MakeCandidateGenerator(
      config_.candidates, ctx, config_.lsh, config_.grid, threads);
  result.candidate_pairs = generator->total_candidate_pairs();
  result.seconds_lsh = SecondsSince(t0);
  result.rss_peak_lsh = CurrentPeakRssBytes();

  // 3. Pairwise similarity scores -> positive-score edges.
  t0 = std::chrono::steady_clock::now();
  const SimilarityEngine engine(ctx, config_.similarity);
  const size_t lefts = ctx.store_e.size();
  std::vector<std::vector<WeightedEdge>> shard_edges(
      static_cast<size_t>(threads));
  std::vector<SimilarityStats> shard_stats(static_cast<size_t>(threads));

  ParallelFor(
      lefts,
      [&](size_t begin, size_t end, int shard) {
        auto& edges = shard_edges[static_cast<size_t>(shard)];
        auto& stats = shard_stats[static_cast<size_t>(shard)];
        CellDistanceCache cache;
        ScoreScratch scratch;
        for (size_t k = begin; k < end; ++k) {
          const EntityIdx u_idx = static_cast<EntityIdx>(k);
          const EntityId u = ctx.store_e.entity_id(u_idx);
          for (const EntityIdx v_idx : generator->CandidatesFor(u_idx)) {
            const double s =
                engine.ScoreIndexed(u_idx, v_idx, &stats, &cache, &scratch);
            if (s > 0.0) {
              edges.push_back({u, ctx.store_i.entity_id(v_idx), s});
            }
          }
        }
        stats.cache_hits += cache.hits();
        stats.cache_misses += cache.misses();
      },
      threads);

  // Sharded edge lists merge in shard order; SealLinkage then fixes one
  // canonical edge order whatever the thread count was.
  size_t total_edges = 0;
  for (const auto& edges : shard_edges) total_edges += edges.size();
  std::vector<WeightedEdge> edges;
  edges.reserve(total_edges);
  for (int shard = 0; shard < threads; ++shard) {
    result.stats += shard_stats[static_cast<size_t>(shard)];
    const auto& shard_list = shard_edges[static_cast<size_t>(shard)];
    edges.insert(edges.end(), shard_list.begin(), shard_list.end());
  }
  result.seconds_scoring = SecondsSince(t0);
  result.rss_peak_scoring = CurrentPeakRssBytes();

  // 4/5. Matching + stop threshold — shared with the sharded driver.
  internal::SealLinkage(config_, std::move(edges), &result);

  result.seconds_total = SecondsSince(t_start);
  result.rss_peak_total = CurrentPeakRssBytes();
  return result;
}

namespace internal {
namespace {

// The stop-threshold + final-links tail shared by the materialised and
// streamed seals: result->matching must already be filled.
void ApplyStopThreshold(const SlimConfig& config, LinkageResult* result) {
  // Automated stop threshold over the matched edge weights.
  std::vector<double> weights;
  weights.reserve(result->matching.pairs.size());
  for (const auto& e : result->matching.pairs) weights.push_back(e.weight);

  double cutoff = -std::numeric_limits<double>::infinity();
  if (config.apply_stop_threshold) {
    auto decision = DetectStopThreshold(weights, config.threshold_method);
    if (decision.ok()) {
      result->threshold = std::move(decision.value());
      result->threshold_valid = true;
      cutoff = result->threshold.threshold;
    }
    // On detector failure (too few / degenerate weights) every matched pair
    // is kept — the caller can inspect threshold_valid.
  }

  for (const auto& e : result->matching.pairs) {
    if (e.weight > cutoff) result->links.push_back({e.u, e.v, e.weight});
  }
  std::sort(result->links.begin(), result->links.end(),
            [](const LinkedEntityPair& a, const LinkedEntityPair& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
}

}  // namespace

void SealLinkage(const SlimConfig& config, std::vector<WeightedEdge> edges,
                 LinkageResult* result) {
  // Deterministic edge order regardless of thread/shard count. Each (u, v)
  // pair is scored exactly once, so PairEdgeOrder is a total order over
  // the edges.
  std::sort(edges.begin(), edges.end(), PairEdgeOrder);
  result->graph = BipartiteGraph(std::move(edges));

  // Maximum-sum bipartite matching (LinkPairs of Alg. 1).
  const auto t0 = std::chrono::steady_clock::now();
  result->matching = config.matcher == MatcherKind::kHungarian
                         ? HungarianMaxWeightMatching(result->graph)
                         : GreedyMaxWeightMatching(result->graph);
  result->seconds_matching = SecondsSince(t0);
  result->rss_peak_matching = CurrentPeakRssBytes();

  ApplyStopThreshold(config, result);
}

Status SealLinkageStreamed(const SlimConfig& config, EdgeSpill* spill,
                           LinkageResult* result) {
  if (Status s = spill->Seal(); !s.ok()) return s;

  if (config.keep_graph || config.matcher == MatcherKind::kHungarian) {
    // Materialised path: the (u, v)-ordered stream IS the sealed graph's
    // edge vector; SealLinkage's sort then finds it already in order, so
    // this is byte-for-byte the monolithic tail.
    std::vector<WeightedEdge> edges;
    edges.reserve(static_cast<size_t>(spill->size()));
    if (Status s = spill->Scan(
            EdgeOrder::kPair,
            [&edges](const WeightedEdge& e) { edges.push_back(e); });
        !s.ok()) {
      return s;
    }
    SealLinkage(config, std::move(edges), result);
    return Status::Ok();
  }

  // Streaming path: the score-ordered merge is exactly the sequence
  // GreedyMaxWeightMatching sorts into, so offering it incrementally
  // produces the identical matching while only the matching itself (plus
  // the used-vertex sets) is resident. The graph stays empty by request.
  const auto t0 = std::chrono::steady_clock::now();
  StreamingGreedyMatcher matcher;
  if (Status s = spill->Scan(
          EdgeOrder::kScore,
          [&matcher](const WeightedEdge& e) { matcher.Offer(e); });
      !s.ok()) {
    return s;
  }
  result->matching = matcher.Take();
  result->seconds_matching = SecondsSince(t0);
  result->rss_peak_matching = CurrentPeakRssBytes();

  ApplyStopThreshold(config, result);
  return Status::Ok();
}

}  // namespace internal

}  // namespace slim
