// Epoch-based incremental linkage over a build-and-extend context.
//
// The batch pipeline (core/slim.h) links two frozen datasets from
// scratch. IncrementalLinker keeps one LinkageContext alive across
// *epochs*: Ingest() buffers record appends (new events for existing
// entities, or entirely new entities, on either side) and LinkEpoch()
// folds them in — vocabulary intern + store compaction
// (core/linkage_context.h) — then re-runs candidates, scoring, matching,
// and the GMM stop threshold over the merged problem.
//
// The contract, pinned by tests/test_incremental.cc and the CI
// serve-smoke byte-comparison: after any sequence of Ingest/LinkEpoch
// calls, the epoch's links/matching/threshold/graph are BIT-IDENTICAL to
// a from-scratch SlimLinker::Link over the union of every record ever
// ingested, at every thread count. Incrementality changes how much work
// an epoch does, never what it returns:
//
//   * Pair-score reuse. All candidate-pair scores of an epoch are kept
//     (keyed by EntityId, which is stable; EntityIdx is not). A cached
//     score is reused only when nothing that enters Eq. 2 changed for
//     the pair: appends since the last epoch were pure count increments
//     on existing (entity, bin) pairs (no new entities — |U| and thus
//     every IDF value would shift; no new bins — avg|H| and thus every
//     length norm would shift), and neither endpoint was appended to.
//     Any structural growth marks the whole cache stale
//     (LinkageContext::AppendSummary).
//   * LSH signature reuse. A signature is a pure function of the
//     entity's window tree and the query grid, so signatures of
//     un-appended entities carry over even through epochs that re-score
//     everything — unless the global window span moved, which rebuilds
//     the index from scratch. Banding and candidate gathering always
//     re-run; they are cheap and deterministic.
//
// One asterisk: LinkageResult::stats covers only the pairs actually
// re-scored in the epoch (EpochStats says how many were reused), and the
// stage timings are epoch-local. Links, matching, graph, and threshold
// are the bit-identical surfaces.
//
// Not thread-safe: one linker, one caller (the slim_serve daemon's
// single-threaded command loop). Internally LinkEpoch parallelises over
// config.threads like the batch path. Sharding/SCTX knobs of SlimConfig
// are ignored — the incremental engine is the monolithic path.
#ifndef SLIM_CORE_INCREMENTAL_H_
#define SLIM_CORE_INCREMENTAL_H_

#include <cstdint>
#include <optional>
#include <set>
#include <span>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/linkage_context.h"
#include "core/slim.h"
#include "lsh/lsh_index.h"

namespace slim {

/// What one LinkEpoch spent versus saved (diagnostics; STATS command).
struct EpochStats {
  uint64_t appended_records = 0;  // records folded in by this epoch
  uint64_t pairs_scored = 0;      // candidate pairs scored fresh
  uint64_t pairs_reused = 0;      // candidate pairs served from cache
  uint64_t signatures_reused = 0; // LSH signatures carried over
  bool rescored_all = false;      // structural growth staled the cache
};

/// One epoch's outcome: the batch-identical linkage plus the delta
/// against the previous epoch (the SUBSCRIBE feed).
struct EpochResult {
  int epoch = 0;  // 1-based epoch number this result sealed
  LinkageResult linkage;
  EpochStats incremental;
  /// Links present now but not in the previous epoch, and vice versa.
  /// Compared by the full (u, v, score) triple: a score change surfaces
  /// as remove-then-add. Both sorted by (u, v).
  std::vector<LinkedEntityPair> added_links;
  std::vector<LinkedEntityPair> removed_links;
};

class IncrementalLinker {
 public:
  /// Validates the config like SlimLinker does (CHECK on invalid
  /// geometry). Starts at epoch 0 with an empty context.
  explicit IncrementalLinker(SlimConfig config);

  /// Buffers `records` (any order; new or existing entities) for the
  /// given side. Visible to queries only after the next LinkEpoch().
  void Ingest(LinkageSide side, std::span<const Record> records);

  /// Records buffered since the last LinkEpoch, per side.
  uint64_t pending_records(LinkageSide side) const {
    return side == LinkageSide::kE ? pending_records_e_ : pending_records_i_;
  }

  /// Folds buffered appends into the context and re-links. Calling with
  /// nothing buffered re-seals the current state (every pair served from
  /// cache). Never fails today; the Result slot reports future I/O-backed
  /// epochs.
  Result<EpochResult> LinkEpoch();

  /// Epochs sealed so far.
  int epoch() const { return epoch_; }
  /// The last sealed epoch's links, sorted by (u, v). Empty before the
  /// first LinkEpoch.
  const std::vector<LinkedEntityPair>& links() const { return links_; }
  /// Top-k positive-score candidates of left entity `u` from the last
  /// sealed epoch, sorted by (score desc, v asc). Candidates, not links:
  /// this ranks every scored pair of u, whether or not matching kept it.
  /// Empty when u is unknown or scored no positive pair.
  std::vector<LinkedEntityPair> TopK(EntityId u, size_t k) const;
  /// The live context (post-compaction view of everything ingested).
  const LinkageContext& context() const { return ctx_; }
  const SlimConfig& config() const { return config_; }
  /// Total records ingested (and folded in) per side since construction.
  uint64_t total_records(LinkageSide side) const {
    return side == LinkageSide::kE ? total_records_e_ : total_records_i_;
  }

 private:
  // One left entity's scored candidates: (right EntityId, score)
  // ascending by id, including non-positive scores (a cached negative is
  // as reusable as a cached positive).
  using ScoreRow = std::vector<std::pair<EntityId, double>>;

  SlimConfig config_;
  LinkageContext ctx_;
  int epoch_ = 0;

  // Dirty state accumulated by Ingest, consumed by LinkEpoch.
  bool structural_pending_ = false;
  std::set<EntityId> dirty_e_, dirty_i_;
  uint64_t pending_records_e_ = 0, pending_records_i_ = 0;
  uint64_t total_records_e_ = 0, total_records_i_ = 0;

  // Carried across epochs: the LSH index (signature donor), the score
  // rows sorted by left EntityId, and the last epoch's links.
  std::optional<LshIndex> lsh_;
  std::vector<std::pair<EntityId, ScoreRow>> rows_;
  std::vector<LinkedEntityPair> links_;
};

}  // namespace slim

#endif  // SLIM_CORE_INCREMENTAL_H_
