// Mobility-history similarity score (paper Eq. 2 and Alg. 1's inner loops).
//
//   S(u, v) = sum over {e, i} in N(u, v) of
//             P(e, i) * min(idf(e, E), idf(i, I)) / (L(u, E) * L(v, I))
//
// plus the optional mutually-furthest-neighbor pass that adds the *negative*
// contributions (alibis) the nearest pairing missed. The engine runs on the
// dense interned representation (core/linkage_context.h): per-entity CSR
// bin spans, flat IDF arrays indexed by BinId, and precomputed length
// normalisations — no hash-map lookup anywhere on the scoring path. It also
// keeps the instrumentation the evaluation reports: number of bin-pair
// distance computations ("record comparisons") and number of alibi pairs
// detected.
#ifndef SLIM_CORE_SIMILARITY_H_
#define SLIM_CORE_SIMILARITY_H_

#include <cstdint>
#include <vector>

#include "core/linkage_context.h"
#include "core/proximity.h"
#include "core/score_kernel.h"
#include "geo/distance_cache.h"

namespace slim {

/// Which pairing function N uses (Fig. 10 ablation).
enum class PairingKind {
  kMutuallyNearest,  // the paper's N (default)
  kAllPairs,         // Cartesian product ablation
};

/// Similarity score configuration. The boolean toggles exist for the
/// ablation study (Fig. 10); production use keeps them all on.
struct SimilarityConfig {
  /// BM25-style length-normalisation strength b in [0, 1] (Eq. 2;
  /// paper default 0.5).
  double b = 0.5;

  /// Proximity / alibi parameters (Eq. 1).
  ProximityConfig proximity;

  PairingKind pairing = PairingKind::kMutuallyNearest;
  /// Enables the mutually-furthest-neighbor alibi pass of Alg. 1.
  bool use_mfn = true;
  /// Enables the idf multiplier (off -> multiplier 1).
  bool use_idf = true;
  /// Enables the L(u,E)*L(v,I) normalisation (off -> divisor 1).
  bool use_normalization = true;

  /// Which SIMD kernel variant scores with (core/score_kernel.h). All
  /// variants produce bit-identical scores; kAuto picks the fastest the CPU
  /// supports (overridable via the SLIM_KERNEL environment variable).
  ScoreKernel kernel = ScoreKernel::kAuto;
};

/// Instrumentation accumulated while scoring; all counters are additive so
/// per-shard instances can be merged.
struct SimilarityStats {
  /// Bin-pair distance computations (the evaluation's "record
  /// comparisons" axis).
  uint64_t record_comparisons = 0;
  /// Same-window bin pairs found beyond the runaway distance.
  uint64_t alibi_pairs = 0;
  /// Entity pairs scored.
  uint64_t entity_pairs = 0;
  /// CellDistanceCache hits/misses over the scoring loop. NOTE: the split
  /// between hits and misses depends on how entities shard over worker
  /// threads (each shard warms its own cache), so unlike every other
  /// counter these are NOT invariant across thread counts — only
  /// hits + misses is. (Same-bin pairs are scored without a cache lookup —
  /// their distance is 0 by construction — so hits + misses counts the
  /// distance-computed bin pairs, a subset of record_comparisons.)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;

  SimilarityStats& operator+=(const SimilarityStats& other) {
    record_comparisons += other.record_comparisons;
    alibi_pairs += other.alibi_pairs;
    entity_pairs += other.entity_pairs;
    cache_hits += other.cache_hits;
    cache_misses += other.cache_misses;
    return *this;
  }
};

/// Reusable per-thread scoring buffers. ScoreIndexed fills and reuses these
/// instead of allocating per call; pass one instance per worker thread
/// alongside its CellDistanceCache (nullptr falls back to a call-local
/// instance). Contents between calls are scratch — never read them.
struct ScoreScratch {
  std::vector<uint32_t> match_a;  // window-intersection positions, left
  std::vector<uint32_t> match_b;  // window-intersection positions, right
  std::vector<uint32_t> run_bins;  // pending batched same-bin windows
  std::vector<double> contrib;     // batched IDF contributions
  std::vector<double> dist;        // per-window distance matrix
  std::vector<char> in_mnn;        // MNN membership mask
};

/// Scores pairs of entities across the two stores of a LinkageContext
/// (dataset E on the left, dataset I on the right). Thread-safe: scoring is
/// const and all mutable state lives in the caller-provided
/// stats/cache/scratch.
class SimilarityEngine {
 public:
  /// The context must outlive the engine. Resolves config.kernel against
  /// the CPU (fatal if a forced variant is unsupported).
  SimilarityEngine(const LinkageContext& context,
                   const SimilarityConfig& config);

  const SimilarityConfig& config() const { return config_; }

  /// The concrete kernel variant scoring runs on (never kAuto).
  ScoreKernel kernel() const { return kernel_; }

  /// S(u, v) per Eq. 2 over dense indices (u into store_e, v into store_i).
  /// `cache` memoises cell distances across calls (pass one per worker
  /// thread); nullptr computes distances directly. `scratch` provides the
  /// reusable buffers (one per worker thread); nullptr allocates locally.
  double ScoreIndexed(EntityIdx u, EntityIdx v, SimilarityStats* stats,
                      CellDistanceCache* cache = nullptr,
                      ScoreScratch* scratch = nullptr) const;

  /// Convenience entity-id overload; unknown entities score 0.
  double Score(EntityId u, EntityId v, SimilarityStats* stats,
               CellDistanceCache* cache = nullptr,
               ScoreScratch* scratch = nullptr) const;

 private:
  const LinkageContext& ctx_;
  SimilarityConfig config_;
  ScoreKernel kernel_;
  const ScoreKernelOps* ops_;
  double runaway_m_;
  // Precomputed L(u, E) / L(v, I) per entity (empty when normalisation is
  // disabled or a side is empty).
  std::vector<double> norm_e_;
  std::vector<double> norm_i_;
};

}  // namespace slim

#endif  // SLIM_CORE_SIMILARITY_H_
