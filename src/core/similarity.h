// Mobility-history similarity score (paper Eq. 2 and Alg. 1's inner loops).
//
//   S(u, v) = sum over {e, i} in N(u, v) of
//             P(e, i) * min(idf(e, E), idf(i, I)) / (L(u, E) * L(v, I))
//
// plus the optional mutually-furthest-neighbor pass that adds the *negative*
// contributions (alibis) the nearest pairing missed. The engine also keeps
// the instrumentation the evaluation reports: number of bin-pair distance
// computations ("record comparisons") and number of alibi pairs detected.
#ifndef SLIM_CORE_SIMILARITY_H_
#define SLIM_CORE_SIMILARITY_H_

#include <cstdint>

#include "core/history.h"
#include "core/proximity.h"
#include "geo/distance_cache.h"

namespace slim {

/// Which pairing function N uses (Fig. 10 ablation).
enum class PairingKind {
  kMutuallyNearest,  // the paper's N (default)
  kAllPairs,         // Cartesian product ablation
};

/// Similarity score configuration. The boolean toggles exist for the
/// ablation study (Fig. 10); production use keeps them all on.
struct SimilarityConfig {
  /// BM25-style length-normalisation strength b in [0, 1] (Eq. 2;
  /// paper default 0.5).
  double b = 0.5;

  /// Proximity / alibi parameters (Eq. 1).
  ProximityConfig proximity;

  PairingKind pairing = PairingKind::kMutuallyNearest;
  /// Enables the mutually-furthest-neighbor alibi pass of Alg. 1.
  bool use_mfn = true;
  /// Enables the idf multiplier (off -> multiplier 1).
  bool use_idf = true;
  /// Enables the L(u,E)*L(v,I) normalisation (off -> divisor 1).
  bool use_normalization = true;
};

/// Instrumentation accumulated while scoring; all counters are additive so
/// per-shard instances can be merged.
struct SimilarityStats {
  /// Bin-pair distance computations (the evaluation's "record
  /// comparisons" axis).
  uint64_t record_comparisons = 0;
  /// Same-window bin pairs found beyond the runaway distance.
  uint64_t alibi_pairs = 0;
  /// Entity pairs scored.
  uint64_t entity_pairs = 0;

  SimilarityStats& operator+=(const SimilarityStats& other) {
    record_comparisons += other.record_comparisons;
    alibi_pairs += other.alibi_pairs;
    entity_pairs += other.entity_pairs;
    return *this;
  }
};

/// Scores pairs of histories across two HistorySets (dataset E on the left,
/// dataset I on the right). Thread-safe: Score() is const and all mutable
/// state lives in the caller-provided stats.
class SimilarityEngine {
 public:
  /// Both sets must be built with the same HistoryConfig.
  SimilarityEngine(const HistorySet& set_e, const HistorySet& set_i,
                   const SimilarityConfig& config);

  const SimilarityConfig& config() const { return config_; }

  /// S(u, v) per Eq. 2. Unknown entities score 0. `cache` memoises cell
  /// distances across calls (pass one per worker thread); nullptr computes
  /// distances directly.
  double Score(EntityId u, EntityId v, SimilarityStats* stats,
               CellDistanceCache* cache = nullptr) const;

  /// Score of two explicit histories, with hu treated as from E and hv from
  /// I (exposed for the tuner, which scores within one dataset).
  double ScoreHistories(const MobilityHistory& hu, const HistorySet& set_u,
                        const MobilityHistory& hv, const HistorySet& set_v,
                        SimilarityStats* stats,
                        CellDistanceCache* cache = nullptr) const;

  /// Self-similarity S(u, u) within set_u — both sides of Eq. 2 use the same
  /// dataset statistics. Used by the spatial-level auto-tuner (Sec. 3.3).
  double SelfScore(const MobilityHistory& hu, const HistorySet& set_u,
                   SimilarityStats* stats,
                   CellDistanceCache* cache = nullptr) const;

 private:
  const HistorySet& set_e_;
  const HistorySet& set_i_;
  SimilarityConfig config_;
  double runaway_m_;
};

}  // namespace slim

#endif  // SLIM_CORE_SIMILARITY_H_
