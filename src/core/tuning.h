// Spatial-level auto-tuning (paper Sec. 3.3).
//
// For a given temporal window width, the tuner chooses the coarsest spatial
// level beyond which finer detail stops improving the linkage while still
// inflating its cost. It tests how distinguishable entities are *within* a
// single dataset: for a sample of entities it computes the average ratio
// S(u, v) / S(u, u) of pair similarity to self-similarity at each candidate
// level. The ratio falls as detail grows and flattens once entities are
// fully separable; the Kneedle elbow of that curve is the selected level.
// For a linkage, the procedure runs on both datasets independently and the
// higher elbow wins.
#ifndef SLIM_CORE_TUNING_H_
#define SLIM_CORE_TUNING_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/similarity.h"
#include "data/dataset.h"

namespace slim {

/// Auto-tuner configuration.
struct TuningOptions {
  /// Candidate spatial levels, strictly increasing.
  std::vector<int> candidate_levels = {4, 6, 8, 10, 12, 14, 16, 18, 20};
  /// Temporal window width the linkage will use.
  int64_t window_seconds = 900;
  /// Sampled entity count (the paper's "subset of entities").
  size_t sample_entities = 16;
  /// Cross partners drawn per sampled entity.
  size_t partners_per_entity = 8;
  /// Similarity parameters used for the probe scores.
  SimilarityConfig similarity;
  /// Kneedle sensitivity.
  double sensitivity = 1.0;
  uint64_t seed = 1234;
};

/// One point of the probe curve.
struct TuningCurvePoint {
  int level = 0;
  /// Mean of S(u, v) / S(u, u) over the sampled pairs at this level.
  double avg_ratio = 0.0;
};

/// Tuner output: the chosen level plus the curve behind the choice.
struct TuningResult {
  int selected_level = 0;
  std::vector<TuningCurvePoint> curve;
  /// False when no elbow was found and the fallback (the level where the
  /// curve first gets within 5% of its final value) was used.
  bool elbow_found = false;
};

/// Tunes the spatial level for one dataset. Fails when the dataset has
/// fewer than 2 entities or candidate levels are invalid.
Result<TuningResult> AutoTuneSpatialLevel(const LocationDataset& dataset,
                                          const TuningOptions& options);

/// Tunes both datasets independently and returns the higher selected level
/// (paper: "we use the higher elbow point as the spatial detail level").
Result<int> AutoTuneSpatialLevelForPair(const LocationDataset& dataset_e,
                                        const LocationDataset& dataset_i,
                                        const TuningOptions& options);

}  // namespace slim

#endif  // SLIM_CORE_TUNING_H_
