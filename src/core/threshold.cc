#include "core/threshold.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/kmeans.h"
#include "stats/otsu.h"

namespace slim {

void ExpectedQualityAt(const GaussianMixture1D& gmm, double s,
                       double* precision, double* recall, double* f1) {
  SLIM_CHECK_MSG(gmm.components.size() == 2,
                 "expected-quality needs a 2-component mixture");
  const Gaussian1D& m1 = gmm.components[0];  // false positives (lower mean)
  const Gaussian1D& m2 = gmm.components[1];  // true positives
  const double r = m2.weight * (1.0 - m2.Cdf(s));
  const double fp = m1.weight * (1.0 - m1.Cdf(s));
  const double p = (r + fp) > 0.0 ? r / (r + fp) : 0.0;
  // Recall is normalised by the total true-positive mass c2 so that
  // R(-inf) = 1.
  const double rec = m2.weight > 0.0 ? r / m2.weight : 0.0;
  *precision = p;
  *recall = rec;
  *f1 = (p + rec) > 0.0 ? 2.0 * p * rec / (p + rec) : 0.0;
}

Result<ThresholdDecision> DetectStopThreshold(
    const std::vector<double>& matched_weights, ThresholdMethod method,
    int search_steps, double min_component_support) {
  if (matched_weights.size() < 2) {
    return Status::FailedPrecondition(
        "stop-threshold detection needs at least 2 matched edges");
  }
  const auto [mn_it, mx_it] =
      std::minmax_element(matched_weights.begin(), matched_weights.end());
  if (*mx_it <= *mn_it) {
    return Status::FailedPrecondition(
        "stop-threshold detection needs distinct edge weights");
  }

  ThresholdDecision out;
  switch (method) {
    case ThresholdMethod::kOtsu:
      out.threshold = OtsuThreshold(matched_weights);
      return out;
    case ThresholdMethod::kTwoMeans:
      out.threshold = TwoMeansThreshold(matched_weights);
      return out;
    case ThresholdMethod::kGmmExpectedF1:
      break;
  }

  GmmFitOptions fit;
  fit.num_components = 2;
  auto gmm = FitGmm1D(matched_weights, fit);
  if (!gmm.ok()) return gmm.status();
  out.gmm = std::move(gmm.value());
  if (out.gmm.components.size() < 2) {
    return Status::FailedPrecondition("mixture degenerated to one component");
  }
  // Support guard (see header): both populations must actually be present.
  const double n = static_cast<double>(matched_weights.size());
  for (const auto& comp : out.gmm.components) {
    if (comp.weight * n < min_component_support) {
      return Status::FailedPrecondition(
          "a mixture component is supported by fewer than the required "
          "points; matched weights look unimodal — keeping all links");
    }
  }

  // Grid search for argmax_s F1(s) across the observed weight span.
  SLIM_CHECK_MSG(search_steps >= 2, "search_steps must be >= 2");
  const double lo = *mn_it;
  const double hi = *mx_it;
  double best_f1 = -1.0;
  for (int k = 0; k < search_steps; ++k) {
    const double s = lo + (hi - lo) * static_cast<double>(k) /
                              static_cast<double>(search_steps - 1);
    double p, r, f1;
    ExpectedQualityAt(out.gmm, s, &p, &r, &f1);
    if (f1 > best_f1) {
      best_f1 = f1;
      out.threshold = s;
      out.expected_precision = p;
      out.expected_recall = r;
      out.expected_f1 = f1;
    }
  }
  return out;
}

}  // namespace slim
