#include "core/score_kernel.h"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <string>

#include "common/check.h"
#include "common/cpu.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SLIM_X86_KERNELS 1
#include <immintrin.h>
#else
#define SLIM_X86_KERNELS 0
#endif

namespace slim {
namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels. Every other variant must reproduce these
// bit-for-bit; the differential tests in tests/test_score_kernel.cc hold
// them to that.
// ---------------------------------------------------------------------------

// Branchless two-pointer merge. Candidate-pair window lists interleave
// finely (two users active over the same days), which makes the classic
// branchy merge mispredict on nearly every step. Writing the candidate
// indices unconditionally and advancing n only on equality turns the whole
// step into setcc/add data flow with no data-dependent branches. The
// unconditional store is safe: n < min(na, nb) whenever the loop body runs
// (every emitted match advances both cursors, so n matches would already
// have exhausted the shorter side), and callers size the output to that
// minimum. Visits the exact positions the branchy merge visits, in the
// same order, so the emitted pairs are identical.
template <typename T>
size_t IntersectLinearScalar(const T* a, size_t na, const T* b, size_t nb,
                             uint32_t* out_a, uint32_t* out_b) {
  size_t i = 0, j = 0, n = 0;
  while (i < na && j < nb) {
    const T ai = a[i];
    const T bj = b[j];
    out_a[n] = static_cast<uint32_t>(i);
    out_b[n] = static_cast<uint32_t>(j);
    n += static_cast<size_t>(ai == bj);
    i += static_cast<size_t>(ai <= bj);
    j += static_cast<size_t>(bj <= ai);
  }
  return n;
}

size_t IntersectI64Scalar(const int64_t* a, size_t na, const int64_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b) {
  return IntersectLinearScalar(a, na, b, nb, out_a, out_b);
}

size_t IntersectU32Scalar(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b) {
  return IntersectLinearScalar(a, na, b, nb, out_a, out_b);
}

void IdfContributionsScalar(const uint32_t* bins_a, const uint32_t* bins_b,
                            size_t n, const double* idf_a, const double* idf_b,
                            double norm, double* out) {
  for (size_t k = 0; k < n; ++k) {
    out[k] = std::min(idf_a[bins_a[k]], idf_b[bins_b[k]]) / norm;
  }
}

#if SLIM_X86_KERNELS

// ---------------------------------------------------------------------------
// SIMD skip-merge intersection.
//
// Mobility window lists are bursty: runs of consecutive windows (active /
// co-visited periods) separated by long idle stretches, so a span pair is
// mostly long disjoint regions punctuated by runs of equal values. The
// merge exploits that structure without taxing the interleaved case (same
// loop at every width W):
//
//   1. Element-first compare: the hot path is the plain two-pointer merge
//      step — one compare per advanced element when the lists interleave
//      finely, so tightly-interleaved span pairs (the common candidate-
//      pair shape in the linkage engine) cost the same as the scalar
//      kernel plus a single failed block probe.
//   2. Nested block skip: only after a[i] < b[j] already holds is the
//      block probe a[i + W - 1] < b[j] tried; when it hits, W provably
//      matchless elements go on one compare, and a greedy 4W-stride loop
//      keeps skipping through long disjoint gaps. Symmetric on b.
//   3. Vector run path: at an equal pair that starts a run (next lanes
//      also equal), load a W-lane block from each side; the contiguous
//      equal-lane prefix is all genuine matches at aligned positions,
//      emitted as two index-vector stores. Isolated equal pairs stay
//      scalar.
//
// Every skip discards provably matchless elements (b is ascending, so
// a[i + k] < b[j] for all k in the block means none of them can equal any
// remaining b), and emissions happen only at positions where the scalar
// merge would emit, in the same ascending order — so the output is
// bit-identical to the scalar kernel on any input (the differential suite
// in tests/test_score_kernel.cc holds every variant to that). A scalar
// tail finishes the sub-W remainders.
// ---------------------------------------------------------------------------

__attribute__((target("sse4.2"))) size_t IntersectI64Sse42(
    const int64_t* a, size_t na, const int64_t* b, size_t nb, uint32_t* out_a,
    uint32_t* out_b) {
  size_t i = 0, j = 0, n = 0;
  while (i + 2 <= na && j + 2 <= nb) {
    if (a[i] < b[j]) {
      if (a[i + 1] < b[j]) {
        i += 2;
        while (i + 8 <= na && a[i + 7] < b[j]) i += 8;
      } else {
        ++i;
      }
      continue;
    }
    if (b[j] < a[i]) {
      if (b[j + 1] < a[i]) {
        j += 2;
        while (j + 8 <= nb && b[j + 7] < a[i]) j += 8;
      } else {
        ++j;
      }
      continue;
    }
    if (a[i + 1] != b[j + 1]) {  // isolated match: no vector win at W == 2
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
      continue;
    }
    // Two aligned equal lanes (checked directly; W == 2 needs no load).
    out_a[n] = static_cast<uint32_t>(i);
    out_b[n] = static_cast<uint32_t>(j);
    out_a[n + 1] = static_cast<uint32_t>(i + 1);
    out_b[n + 1] = static_cast<uint32_t>(j + 1);
    n += 2;
    i += 2;
    j += 2;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

__attribute__((target("sse4.2"))) size_t IntersectU32Sse42(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb, uint32_t* out_a,
    uint32_t* out_b) {
  size_t i = 0, j = 0, n = 0;
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  while (i + 4 <= na && j + 4 <= nb) {
    if (a[i] < b[j]) {
      if (a[i + 3] < b[j]) {
        i += 4;
        while (i + 16 <= na && a[i + 15] < b[j]) i += 16;
      } else {
        ++i;
      }
      continue;
    }
    if (b[j] < a[i]) {
      if (b[j + 3] < a[i]) {
        j += 4;
        while (j + 16 <= nb && b[j + 15] < a[i]) j += 16;
      } else {
        ++j;
      }
      continue;
    }
    if (a[i + 1] != b[j + 1]) {  // isolated match: stay scalar
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
      continue;
    }
    const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + i));
    const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + j));
    const unsigned eq = static_cast<unsigned>(
        _mm_movemask_ps(_mm_castsi128_ps(_mm_cmpeq_epi32(va, vb))));
    const unsigned t = std::countr_one(eq);  // >= 2: lanes 0 and 1 matched
    if (t == 4) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out_a + n),
          _mm_add_epi32(iota, _mm_set1_epi32(static_cast<int>(i))));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out_b + n),
          _mm_add_epi32(iota, _mm_set1_epi32(static_cast<int>(j))));
    } else {
      for (unsigned k = 0; k < t; ++k) {
        out_a[n + k] = static_cast<uint32_t>(i + k);
        out_b[n + k] = static_cast<uint32_t>(j + k);
      }
    }
    n += t;
    i += t;
    j += t;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

__attribute__((target("avx2"))) size_t IntersectI64Avx2(
    const int64_t* a, size_t na, const int64_t* b, size_t nb, uint32_t* out_a,
    uint32_t* out_b) {
  size_t i = 0, j = 0, n = 0;
  const __m128i iota = _mm_setr_epi32(0, 1, 2, 3);
  while (i + 4 <= na && j + 4 <= nb) {
    if (a[i] < b[j]) {
      if (a[i + 3] < b[j]) {
        i += 4;
        while (i + 16 <= na && a[i + 15] < b[j]) i += 16;
      } else {
        ++i;
      }
      continue;
    }
    if (b[j] < a[i]) {
      if (b[j + 3] < a[i]) {
        j += 4;
        while (j + 16 <= nb && b[j + 15] < a[i]) j += 16;
      } else {
        ++j;
      }
      continue;
    }
    if (a[i + 1] != b[j + 1]) {  // isolated match: stay scalar
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const unsigned eq = static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpeq_epi64(va, vb))));
    const unsigned t = std::countr_one(eq);  // >= 2: lanes 0 and 1 matched
    if (t == 4) {
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out_a + n),
          _mm_add_epi32(iota, _mm_set1_epi32(static_cast<int>(i))));
      _mm_storeu_si128(
          reinterpret_cast<__m128i*>(out_b + n),
          _mm_add_epi32(iota, _mm_set1_epi32(static_cast<int>(j))));
    } else {
      for (unsigned k = 0; k < t; ++k) {
        out_a[n + k] = static_cast<uint32_t>(i + k);
        out_b[n + k] = static_cast<uint32_t>(j + k);
      }
    }
    n += t;
    i += t;
    j += t;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

__attribute__((target("avx2"))) size_t IntersectU32Avx2(
    const uint32_t* a, size_t na, const uint32_t* b, size_t nb, uint32_t* out_a,
    uint32_t* out_b) {
  size_t i = 0, j = 0, n = 0;
  const __m256i iota = _mm256_setr_epi32(0, 1, 2, 3, 4, 5, 6, 7);
  while (i + 8 <= na && j + 8 <= nb) {
    if (a[i] < b[j]) {
      if (a[i + 7] < b[j]) {
        i += 8;
        while (i + 32 <= na && a[i + 31] < b[j]) i += 32;
      } else {
        ++i;
      }
      continue;
    }
    if (b[j] < a[i]) {
      if (b[j + 7] < a[i]) {
        j += 8;
        while (j + 32 <= nb && b[j + 31] < a[i]) j += 32;
      } else {
        ++j;
      }
      continue;
    }
    if (a[i + 1] != b[j + 1]) {  // isolated match: stay scalar
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
      continue;
    }
    const __m256i va =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a + i));
    const __m256i vb =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b + j));
    const unsigned eq = static_cast<unsigned>(
        _mm256_movemask_ps(_mm256_castsi256_ps(_mm256_cmpeq_epi32(va, vb))));
    const unsigned t = std::countr_one(eq);  // >= 2: lanes 0 and 1 matched
    if (t == 8) {
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out_a + n),
          _mm256_add_epi32(iota, _mm256_set1_epi32(static_cast<int>(i))));
      _mm256_storeu_si256(
          reinterpret_cast<__m256i*>(out_b + n),
          _mm256_add_epi32(iota, _mm256_set1_epi32(static_cast<int>(j))));
    } else {
      for (unsigned k = 0; k < t; ++k) {
        out_a[n + k] = static_cast<uint32_t>(i + k);
        out_b[n + k] = static_cast<uint32_t>(j + k);
      }
    }
    n += t;
    i += t;
    j += t;
  }
  while (i < na && j < nb) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      out_a[n] = static_cast<uint32_t>(i);
      out_b[n] = static_cast<uint32_t>(j);
      ++n;
      ++i;
      ++j;
    }
  }
  return n;
}

// Gathered min/div. IEEE min and division are exactly rounded elementwise
// ops, so each lane equals the scalar expression bit-for-bit (idf values
// are finite and non-negative — no NaN and no -0.0 to order differently).
__attribute__((target("avx2"))) void IdfContributionsAvx2(
    const uint32_t* bins_a, const uint32_t* bins_b, size_t n,
    const double* idf_a, const double* idf_b, double norm, double* out) {
  const __m256d vnorm = _mm256_set1_pd(norm);
  // The masked gather form with a zeroed source avoids GCC's spurious
  // "may be used uninitialized" on the plain gather's undefined source.
  const __m256d zero = _mm256_setzero_pd();
  const __m256d all = _mm256_castsi256_pd(_mm256_set1_epi64x(-1));
  size_t k = 0;
  for (; k + 4 <= n; k += 4) {
    const __m128i ia =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bins_a + k));
    const __m128i ib =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(bins_b + k));
    const __m256d ga = _mm256_mask_i32gather_pd(zero, idf_a, ia, all, 8);
    const __m256d gb = _mm256_mask_i32gather_pd(zero, idf_b, ib, all, 8);
    _mm256_storeu_pd(out + k, _mm256_div_pd(_mm256_min_pd(ga, gb), vnorm));
  }
  for (; k < n; ++k) {
    out[k] = std::min(idf_a[bins_a[k]], idf_b[bins_b[k]]) / norm;
  }
}

#endif  // SLIM_X86_KERNELS

// ---------------------------------------------------------------------------
// Galloping merge: drive the shorter span, exponential-probe + binary-search
// the longer one. Purely scalar and shared by every variant, so the
// length-ratio heuristic never changes results across kernels.
// ---------------------------------------------------------------------------

template <typename T>
size_t GallopSmallIntoLarge(const T* s, size_t ns, const T* l, size_t nl,
                            uint32_t* out_s, uint32_t* out_l) {
  size_t j = 0, n = 0;
  for (size_t i = 0; i < ns && j < nl; ++i) {
    const T key = s[i];
    size_t lo = j, step = 1;
    while (lo + step < nl && l[lo + step] < key) {
      lo += step;
      step <<= 1;
    }
    const size_t hi = std::min(lo + step + 1, nl);
    j = static_cast<size_t>(std::lower_bound(l + lo, l + hi, key) - l);
    if (j < nl && l[j] == key) {
      out_s[n] = static_cast<uint32_t>(i);
      out_l[n] = static_cast<uint32_t>(j);
      ++n;
      ++j;  // strictly ascending: the next key is > this one
    }
  }
  return n;
}

template <typename T>
size_t IntersectGallopImpl(const T* a, size_t na, const T* b, size_t nb,
                           uint32_t* out_a, uint32_t* out_b) {
  if (na <= nb) return GallopSmallIntoLarge(a, na, b, nb, out_a, out_b);
  return GallopSmallIntoLarge(b, nb, a, na, out_b, out_a);
}

template <typename T>
size_t IntersectSortedImpl(size_t (*linear)(const T*, size_t, const T*, size_t,
                                            uint32_t*, uint32_t*),
                           const T* a, size_t na, const T* b, size_t nb,
                           uint32_t* out_a, uint32_t* out_b) {
  if (na == 0 || nb == 0) return 0;
  const size_t lo = std::min(na, nb);
  const size_t hi = std::max(na, nb);
  if (hi > lo * kGallopSpanRatio) {
    return IntersectGallopImpl(a, na, b, nb, out_a, out_b);
  }
  if (lo < kSmallSpanMinElements) {
    // A dozen-element merge finishes before an indirect kernel call has
    // paid for itself; candidate-pair window lists average ~12 windows a
    // side, so this is the engine's hot shape. Same branchless merge as
    // the scalar kernel — identical output by construction.
    return IntersectLinearScalar(a, na, b, nb, out_a, out_b);
  }
  return linear(a, na, b, nb, out_a, out_b);
}

}  // namespace

const char* ScoreKernelName(ScoreKernel kernel) {
  switch (kernel) {
    case ScoreKernel::kAuto:
      return "auto";
    case ScoreKernel::kScalar:
      return "scalar";
    case ScoreKernel::kSse42:
      return "sse42";
    case ScoreKernel::kAvx2:
      return "avx2";
  }
  return "unknown";
}

std::optional<ScoreKernel> ParseScoreKernel(std::string_view name) {
  if (name == "auto") return ScoreKernel::kAuto;
  if (name == "scalar") return ScoreKernel::kScalar;
  if (name == "sse42") return ScoreKernel::kSse42;
  if (name == "avx2") return ScoreKernel::kAvx2;
  return std::nullopt;
}

bool ScoreKernelSupported(ScoreKernel kernel) {
  switch (kernel) {
    case ScoreKernel::kAuto:
    case ScoreKernel::kScalar:
      return true;
    case ScoreKernel::kSse42:
#if SLIM_X86_KERNELS
      return CpuHasSse42();
#else
      return false;
#endif
    case ScoreKernel::kAvx2:
#if SLIM_X86_KERNELS
      return CpuHasAvx2();
#else
      return false;
#endif
  }
  return false;
}

ScoreKernel ResolveScoreKernel(ScoreKernel requested) {
  if (requested != ScoreKernel::kAuto) {
    SLIM_CHECK_MSG(ScoreKernelSupported(requested),
                   "requested score kernel is not supported by this CPU");
    return requested;
  }
  if (const char* env = std::getenv("SLIM_KERNEL");
      env != nullptr && env[0] != '\0') {
    const auto parsed = ParseScoreKernel(env);
    SLIM_CHECK_MSG(parsed.has_value(),
                   "SLIM_KERNEL must be one of auto|scalar|sse42|avx2");
    if (*parsed != ScoreKernel::kAuto) {
      SLIM_CHECK_MSG(ScoreKernelSupported(*parsed),
                     "SLIM_KERNEL names a kernel this CPU does not support");
      return *parsed;
    }
  }
  if (ScoreKernelSupported(ScoreKernel::kAvx2)) return ScoreKernel::kAvx2;
  if (ScoreKernelSupported(ScoreKernel::kSse42)) return ScoreKernel::kSse42;
  return ScoreKernel::kScalar;
}

const ScoreKernelOps& GetScoreKernelOps(ScoreKernel kernel) {
  static const ScoreKernelOps scalar_ops = {
      ScoreKernel::kScalar, &IntersectI64Scalar, &IntersectU32Scalar,
      &IdfContributionsScalar};
#if SLIM_X86_KERNELS
  static const ScoreKernelOps sse42_ops = {
      ScoreKernel::kSse42, &IntersectI64Sse42, &IntersectU32Sse42,
      // No gather before AVX2; the scalar loop is already elementwise exact.
      &IdfContributionsScalar};
  static const ScoreKernelOps avx2_ops = {ScoreKernel::kAvx2,
                                          &IntersectI64Avx2, &IntersectU32Avx2,
                                          &IdfContributionsAvx2};
#endif
  SLIM_CHECK_MSG(kernel != ScoreKernel::kAuto,
                 "resolve kAuto via ResolveScoreKernel first");
  SLIM_CHECK_MSG(ScoreKernelSupported(kernel),
                 "score kernel is not supported by this CPU");
  switch (kernel) {
#if SLIM_X86_KERNELS
    case ScoreKernel::kSse42:
      return sse42_ops;
    case ScoreKernel::kAvx2:
      return avx2_ops;
#endif
    default:
      return scalar_ops;
  }
}

size_t IntersectGallopI64(const int64_t* a, size_t na, const int64_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b) {
  return IntersectGallopImpl(a, na, b, nb, out_a, out_b);
}

size_t IntersectGallopU32(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b) {
  return IntersectGallopImpl(a, na, b, nb, out_a, out_b);
}

size_t IntersectSortedI64(const ScoreKernelOps& ops, const int64_t* a,
                          size_t na, const int64_t* b, size_t nb,
                          uint32_t* out_a, uint32_t* out_b) {
  return IntersectSortedImpl(ops.intersect_i64, a, na, b, nb, out_a, out_b);
}

size_t IntersectSortedU32(const ScoreKernelOps& ops, const uint32_t* a,
                          size_t na, const uint32_t* b, size_t nb,
                          uint32_t* out_a, uint32_t* out_b) {
  return IntersectSortedImpl(ops.intersect_u32, a, na, b, nb, out_a, out_b);
}

void QuantizeCountsSaturating(std::span<const uint32_t> counts, uint16_t* out) {
  for (size_t k = 0; k < counts.size(); ++k) {
    out[k] = QuantizeCountSaturating(counts[k]);
  }
}

uint64_t QuantizedOverlap(const ScoreKernelOps& ops,
                          std::span<const uint32_t> bins_a,
                          std::span<const uint16_t> counts_a,
                          std::span<const uint32_t> bins_b,
                          std::span<const uint16_t> counts_b,
                          std::vector<uint32_t>* match_a,
                          std::vector<uint32_t>* match_b) {
  SLIM_CHECK(bins_a.size() == counts_a.size() &&
             bins_b.size() == counts_b.size());
  SLIM_CHECK(match_a != nullptr && match_b != nullptr);
  const size_t cap = std::min(bins_a.size(), bins_b.size());
  if (cap == 0) return 0;
  if (match_a->size() < cap) match_a->resize(cap);
  if (match_b->size() < cap) match_b->resize(cap);
  const size_t n =
      IntersectSortedU32(ops, bins_a.data(), bins_a.size(), bins_b.data(),
                         bins_b.size(), match_a->data(), match_b->data());
  uint64_t sum = 0;
  for (size_t k = 0; k < n; ++k) {
    sum += std::min(counts_a[(*match_a)[k]], counts_b[(*match_b)[k]]);
  }
  return sum;
}

}  // namespace slim
