#include "core/history.h"

#include <cmath>
#include <map>

#include "common/check.h"
#include "common/parallel.h"
#include "geo/covering.h"
#include "temporal/time_window.h"

namespace slim {

std::vector<TimeLocationBin> GroupRecordsIntoBins(
    std::span<const Record> records, const HistoryConfig& config) {
  SLIM_CHECK_MSG(config.spatial_level >= 0 &&
                     config.spatial_level <= CellId::kMaxLevel,
                 "invalid spatial level");
  SLIM_CHECK_MSG(config.window_seconds > 0, "invalid window width");

  std::map<std::pair<int64_t, CellId>, uint32_t> grouped;
  for (const Record& r : records) {
    const int64_t w = WindowIndexOf(r.timestamp, config.window_seconds);
    if (config.region_radius_meters > 0.0) {
      // Region record: copy into every intersecting leaf cell.
      for (const CellId c : CellsCoveringDisc(
               r.location, config.region_radius_meters,
               config.spatial_level)) {
        ++grouped[{w, c}];
      }
    } else {
      const CellId c = CellId::FromLatLng(r.location, config.spatial_level);
      ++grouped[{w, c}];
    }
  }

  std::vector<TimeLocationBin> bins;
  bins.reserve(grouped.size());
  for (const auto& [key, count] : grouped) {
    bins.push_back({key.first, key.second, count});
  }
  return bins;
}

MobilityHistory MobilityHistory::FromRecords(EntityId entity,
                                             std::span<const Record> records,
                                             const HistoryConfig& config) {
  MobilityHistory h;
  h.entity_ = entity;
  h.bins_ = GroupRecordsIntoBins(records, config);
  h.total_records_ = records.size();

  std::vector<WindowedCellCount> tree_entries;
  tree_entries.reserve(h.bins_.size());
  for (const TimeLocationBin& bin : h.bins_) {
    tree_entries.push_back({bin.window, bin.cell, bin.record_count});
  }

  // Window index over the (already (window, cell)-sorted) bins.
  size_t start = 0;
  for (size_t i = 0; i <= h.bins_.size(); ++i) {
    if (i == h.bins_.size() ||
        (i > 0 && h.bins_[i].window != h.bins_[i - 1].window)) {
      if (i > start) {
        h.windows_.push_back(h.bins_[start].window);
        h.window_index_[h.bins_[start].window] = {start, i};
      }
      start = i;
    }
  }

  h.tree_ = WindowSegmentTree::Build(std::move(tree_entries));
  return h;
}

std::span<const TimeLocationBin> MobilityHistory::BinsInWindow(
    int64_t window) const {
  const auto it = window_index_.find(window);
  if (it == window_index_.end()) return {};
  return std::span<const TimeLocationBin>(bins_.data() + it->second.first,
                                          it->second.second - it->second.first);
}

HistorySet HistorySet::Build(const LocationDataset& dataset,
                             const HistoryConfig& config, int threads) {
  HistorySet set;
  set.config_ = config;
  const std::vector<EntityId>& ids = dataset.entity_ids();

  // Each entity's history is independent — build them in parallel into a
  // pre-sized vector so entity order (and therefore every downstream
  // statistic) does not depend on scheduling.
  set.histories_.resize(ids.size());
  ParallelFor(
      ids.size(),
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          set.histories_[k] = MobilityHistory::FromRecords(
              ids[k], dataset.RecordsOf(ids[k]), config);
        }
      },
      threads);

  // Dataset-level statistics, merged sequentially in entity order.
  size_t total_bins = 0;
  set.by_entity_.reserve(ids.size());
  for (size_t k = 0; k < ids.size(); ++k) {
    const MobilityHistory& h = set.histories_[k];
    total_bins += h.num_bins();
    for (const TimeLocationBin& bin : h.bins()) {
      ++set.bin_entity_counts_[{bin.window, bin.cell.raw()}];
    }
    set.by_entity_[ids[k]] = k;
  }
  set.avg_bins_ = set.histories_.empty()
                      ? 0.0
                      : static_cast<double>(total_bins) /
                            static_cast<double>(set.histories_.size());
  return set;
}

const MobilityHistory* HistorySet::Find(EntityId entity) const {
  const auto it = by_entity_.find(entity);
  if (it == by_entity_.end()) return nullptr;
  return &histories_[it->second];
}

uint32_t HistorySet::BinEntityCount(int64_t window, CellId cell) const {
  const auto it = bin_entity_counts_.find({window, cell.raw()});
  return it == bin_entity_counts_.end() ? 0 : it->second;
}

double HistorySet::Idf(int64_t window, CellId cell) const {
  SLIM_CHECK_MSG(!histories_.empty(), "Idf on an empty HistorySet");
  const uint32_t holders = BinEntityCount(window, cell);
  const double n = static_cast<double>(histories_.size());
  if (holders == 0) return std::log(n);
  return std::log(n / static_cast<double>(holders));
}

double HistorySet::LengthNorm(const MobilityHistory& history, double b) const {
  SLIM_CHECK_MSG(b >= 0.0 && b <= 1.0, "length-norm b must be in [0,1]");
  SLIM_CHECK_MSG(avg_bins_ > 0.0, "LengthNorm on an empty HistorySet");
  const double rel =
      static_cast<double>(history.num_bins()) / avg_bins_;
  return (1.0 - b) + b * rel;
}

}  // namespace slim
