// SCTX v1: the serialized on-disk form of a dense LinkageContext.
//
// SBIN (data/sbin.h) makes *datasets* binary; SCTX does the same for the
// built context — the bin vocabulary plus both CSR history stores
// (offsets, bin ids, counts, quantized counts, window index, 512-bit
// window masks, per-bin holder counts, and the IDF array as raw IEEE-754
// bit patterns, so a loaded context scores bit-identically to the in-heap
// one). The file is written once after the context build (FileWriter,
// common/io.h) and then memory-mapped read-only: every flat array in the
// loaded context is a FlatArray view into the mapping, so K shard passes —
// or K cooperating processes — share page-cache pages instead of each
// holding a heap copy.
//
// Layout (little-endian, every array 8-byte aligned by zero padding):
//
//   [0]  magic "SCTX" | u32 version | u64 file_size
//        i32 spatial_level | pad | i64 window_seconds | f64 region_radius
//        u64 vocab_size
//        per store (E then I): u64 entities | u64 total_bins
//                              | u64 total_windows
//   then vocab windows[] cells[], then per store the flat arrays in a
//   fixed order (see sctx.cc). file_size self-checks truncation; every
//   array offset is derived from the header, so a corrupt header cannot
//   index outside the mapping.
//
// The one heap structure SCTX does not carry is the per-entity
// WindowSegmentTree (a pointered aggregation only the LSH signature layer
// queries). ReadSctx rebuilds the trees deterministically from the mapped
// CSR + vocabulary — or skips them (build_trees = false) when the run's
// candidate generator never needs them, which is the memory-lean choice
// for brute/grid runs.
#ifndef SLIM_CORE_SCTX_H_
#define SLIM_CORE_SCTX_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/linkage_context.h"

namespace slim {

/// The SCTX format version this build reads and writes.
inline constexpr uint32_t kSctxVersion = 1;

/// Serializes `context` to `path` (overwrites). The context may use any
/// backing (an owned build or a previously mapped file).
Status WriteSctx(const LinkageContext& context, const std::string& path);

struct SctxReadOptions {
  /// Rebuild the per-entity window trees (required by the LSH candidate
  /// generator; brute/grid runs can skip them — HistoryStore::has_trees()).
  bool build_trees = true;
  /// Worker threads for the tree rebuild; <= 0 means the library default.
  int threads = 0;
};

/// Maps `path` read-only and returns a context whose flat arrays view the
/// mapping (LinkageContext::backing keeps it alive across copies). Fails
/// with InvalidArgument on bad magic / version skew / structural
/// inconsistencies and IoError on unreadable or truncated files.
Result<LinkageContext> ReadSctx(const std::string& path,
                                const SctxReadOptions& options = {});

}  // namespace slim

#endif  // SLIM_CORE_SCTX_H_
