// Automated linkage stop-threshold detection (paper Sec. 3.2).
//
// After the full bipartite matching, the selected edge weights are a mixture
// of true-positive links (higher scores) and false-positive links (lower
// scores). SLIM fits a two-component 1-D Gaussian mixture over the weights;
// with c1/m1 the lower-mean (false positive) component and c2/m2 the higher,
// the expected quality at threshold s is
//   R(s)  = c2 * (1 - F_m2(s))
//   P(s)  = R(s) / (R(s) + c1 * (1 - F_m1(s)))
//   F1(s) = 2 P(s) R(s) / (P(s) + R(s))
// and the stop threshold s* maximises F1. Otsu's method and a 2-means split
// are alternative detectors (the paper reports they behave similarly).
#ifndef SLIM_CORE_THRESHOLD_H_
#define SLIM_CORE_THRESHOLD_H_

#include <vector>

#include "common/status.h"
#include "stats/gmm1d.h"

namespace slim {

/// Detector backend.
enum class ThresholdMethod {
  kGmmExpectedF1,  // the paper's method (default)
  kOtsu,
  kTwoMeans,
};

/// Detected stop threshold plus the model that produced it.
struct ThresholdDecision {
  double threshold = 0.0;
  /// Fitted mixture (components sorted by mean; only for kGmmExpectedF1).
  GaussianMixture1D gmm;
  /// Expected quality at `threshold` under the fitted model (only for
  /// kGmmExpectedF1).
  double expected_precision = 0.0;
  double expected_recall = 0.0;
  double expected_f1 = 0.0;
};

/// Expected precision/recall/F1 at threshold s under a 2-component fit.
/// Exposed for tests and for the Fig. 6 bench output.
void ExpectedQualityAt(const GaussianMixture1D& gmm, double s,
                       double* precision, double* recall, double* f1);

/// Detects the stop threshold over the matched-edge weights.
/// Needs at least 2 distinct weights (for kGmmExpectedF1, at least 2 values
/// and a non-degenerate spread); degenerate inputs produce an error and the
/// caller should keep all links.
///
/// Robustness extension over the paper: when a fitted component's effective
/// support (weight * n) falls below `min_component_support` points, the
/// two-population assumption is considered unmet and the detector fails
/// open (error -> caller keeps all links). This matters after aggressive
/// LSH filtering, which can prune away the entire false-positive
/// population and leave a unimodal true-positive weight distribution that
/// a 2-component fit would otherwise split arbitrarily.
Result<ThresholdDecision> DetectStopThreshold(
    const std::vector<double>& matched_weights,
    ThresholdMethod method = ThresholdMethod::kGmmExpectedF1,
    int search_steps = 512, double min_component_support = 4.0);

}  // namespace slim

#endif  // SLIM_CORE_THRESHOLD_H_
