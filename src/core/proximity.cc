#include "core/proximity.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "temporal/time_window.h"

namespace slim {

double RunawayMeters(const ProximityConfig& config, int64_t window_seconds) {
  return RunawayDistanceMeters(window_seconds, config.max_speed_mps);
}

double SpatialProximity(double distance_m, double runaway_m,
                        double clamp_epsilon) {
  SLIM_DCHECK(runaway_m > 0.0);
  SLIM_DCHECK(clamp_epsilon > 0.0 && clamp_epsilon < 1.0);
  const double ratio =
      std::min(distance_m / runaway_m, 2.0 - clamp_epsilon);
  return std::log2(2.0 - ratio);
}

double BinProximity(const TimeLocationBin& e, const TimeLocationBin& i,
                    const ProximityConfig& config, int64_t window_seconds) {
  if (e.window != i.window) return 0.0;  // T(e, i) = 0
  const double d = MinDistanceMeters(e.cell, i.cell);
  return SpatialProximity(d, RunawayMeters(config, window_seconds),
                          config.clamp_epsilon);
}

bool IsAlibi(double distance_m, double runaway_m) {
  return distance_m > runaway_m;
}

}  // namespace slim
