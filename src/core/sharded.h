// Sharded, memory-bounded linkage driver (SlimLinker::LinkSharded).
//
// The monolithic pipeline (core/slim.h) materialises one candidate index
// and the full edge set for the whole right store — fine at the 10k scale,
// but the candidate + scoring working set is what caps how far one run can
// go. This driver partitions the right side into K contiguous EntityIdx
// shards over the dense store and runs
//
//   context (global)  — vocabulary, CSR stores, IDF: built once over BOTH
//                       full datasets, exactly as the monolithic path does,
//                       because every score reads dataset-level statistics.
//   per shard         — a shard-restricted candidate index
//                       (MakeShardCandidateGenerator) and the scoring of
//                       every (left, shard) block on the shared ThreadPool;
//                       the block's positive edges are appended to an edge
//                       spill and the shard's index is dropped before the
//                       next shard builds.
//   merge (global)    — the spilled edges are read back, put into the
//                       canonical (u, v) order, and handed to the same
//                       matching + GMM-threshold tail the monolithic driver
//                       runs (internal::SealLinkage).
//
// Because shard candidate sets are exact restrictions of the monolithic
// candidate set (the LSH query grid and the grid-blocking hotspot cap are
// taken from the full context — see core/candidates.h) and the merge fixes
// the same canonical edge order, the links are bit-identical to Link() at
// every shard count and thread count; tests/test_sharded.cc pins this
// against the committed goldens. Peak RSS of the candidate + scoring stages
// scales with the largest shard, not the right store — bench_sharded
// measures the curve.
//
// K comes from SlimConfig::shards, or — when that is 0 — from
// SlimConfig::shard_memory_budget_bytes via EstimateShardPlan's
// CurrentPeakRssBytes-calibrated per-entity estimate.
#ifndef SLIM_CORE_SHARDED_H_
#define SLIM_CORE_SHARDED_H_

#include <cstdint>
#include <cstdio>
#include <utility>
#include <vector>

#include "core/slim.h"

namespace slim {

/// How the right side splits into contiguous EntityIdx shards.
struct ShardPlan {
  /// Number of shards K (>= 1; at most the right-store size when that is
  /// non-zero).
  int shards = 1;
  /// [begin, end) dense right EntityIdx range per shard, in order. Ranges
  /// are contiguous, disjoint, cover [0, rights), and differ in size by at
  /// most one entity.
  std::vector<std::pair<EntityIdx, EntityIdx>> ranges;
  /// The per-right-entity working-set estimate behind a budget-derived
  /// plan, in bytes (0 when the shard count was given explicitly).
  uint64_t per_entity_bytes = 0;

  /// Balanced plan with an explicit shard count (clamped to [1, rights];
  /// rights == 0 yields one empty shard).
  static ShardPlan Fixed(size_t rights, int shards);
};

/// Per-right-entity working-set estimate (bytes) for one shard's candidate
/// + scoring block, calibrated against the measured process footprint:
/// `rss_before_context` is CurrentPeakRssBytes() sampled before the context
/// build, so the growth since then — the resident cost of the dense stores
/// themselves — anchors the estimate, with a structural floor computed from
/// the actual CSR sizes. The candidate index, postings/buckets, and edge
/// output of a block are a small multiple of the shard's store bytes; the
/// multiplier is deliberately conservative (docs/BENCHMARKS.md, "Memory
/// budget methodology"). Only shard-count selection consumes this — links
/// never depend on it.
uint64_t EstimateBlockBytesPerEntity(const LinkageContext& context,
                                     uint64_t rss_before_context);

/// The plan LinkSharded executes: config.shards when positive, else the
/// smallest K whose estimated per-block working set
/// (per_entity_bytes * shard size) fits config.shard_memory_budget_bytes,
/// else one shard.
ShardPlan EstimateShardPlan(const LinkageContext& context,
                            const SlimConfig& config,
                            uint64_t rss_before_context);

/// Bounded-memory edge accumulation across (left, shard) blocks. Blocks
/// append in deterministic block order; TakeAll() returns every edge in
/// append order. When `to_disk` is set the edges stream through an
/// anonymous temporary file (std::tmpfile) so the scoring phase holds only
/// the current block's edges in memory; if no tmpfile can be created the
/// spill degrades to an in-memory buffer (on_disk() says which happened).
class EdgeSpill {
 public:
  explicit EdgeSpill(bool to_disk);
  ~EdgeSpill();

  EdgeSpill(const EdgeSpill&) = delete;
  EdgeSpill& operator=(const EdgeSpill&) = delete;

  /// Appends one block's edges (consumed). Not thread-safe — blocks
  /// append from the driver thread in block order.
  void Append(std::vector<WeightedEdge> edges);

  /// Edges appended so far.
  uint64_t size() const { return count_; }
  /// Whether edges actually reside in a temporary file.
  bool on_disk() const { return file_ != nullptr; }

  /// Reads every spilled edge back, in append order, and resets the spill.
  std::vector<WeightedEdge> TakeAll();

 private:
  std::FILE* file_ = nullptr;       // nullptr -> in-memory fallback
  std::vector<WeightedEdge> memory_;
  uint64_t count_ = 0;
};

}  // namespace slim

#endif  // SLIM_CORE_SHARDED_H_
