// Sharded, memory-bounded linkage driver (SlimLinker::LinkSharded).
//
// The monolithic pipeline (core/slim.h) materialises one candidate index
// and the full edge set for the whole problem — fine at the 10k scale, but
// the candidate + scoring working set is what caps how far one run can go.
// This driver partitions BOTH sides into contiguous EntityIdx ranges over
// the dense stores — L left shards x K right shards — and runs
//
//   context (global)  — vocabulary, CSR stores, IDF: built once over BOTH
//                       full datasets, exactly as the monolithic path does,
//                       because every score reads dataset-level statistics.
//                       With SlimConfig::sctx_path set the context is
//                       mmap-backed (core/sctx.h) instead of heap-resident,
//                       so this stage costs page cache, not RSS.
//   per block         — a block-restricted candidate index
//                       (MakeShardCandidateGenerator over one L x K block)
//                       and the scoring of that block on the shared
//                       ThreadPool; the block's positive edges stream into
//                       an external edge sort (core/edge_spill.h) and the
//                       block's index is dropped before the next block
//                       builds.
//   merge (global)    — the spilled runs k-way-merge back in the canonical
//                       edge orders and feed the same matching + GMM
//                       threshold tail the monolithic driver runs
//                       (internal::SealLinkageStreamed); with
//                       SlimConfig::keep_graph false the greedy matcher
//                       consumes the score-ordered stream directly and the
//                       full edge set never lives in memory at once.
//
// Because block candidate sets are exact restrictions of the monolithic
// candidate set (the LSH query grid and the grid-blocking hotspot cap are
// taken from the full context — see core/candidates.h) and the merge fixes
// the same canonical edge orders, the links are bit-identical to Link() at
// every (L, K, threads) combination; tests/test_sharded.cc pins this
// against the committed goldens. Peak RSS of the candidate + scoring
// stages scales with the largest block, not the stores — bench_sharded and
// bench_scale measure the curves.
//
// K comes from SlimConfig::shards, or — when that is 0 — from
// SlimConfig::shard_memory_budget_bytes via EstimateShardPlan's
// CurrentPeakRssBytes-calibrated per-entity estimate. L comes from
// SlimConfig::left_shards (no budget derivation: the left side splits only
// when explicitly asked, since a left split re-scans right postings).
#ifndef SLIM_CORE_SHARDED_H_
#define SLIM_CORE_SHARDED_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/edge_spill.h"
#include "core/slim.h"

namespace slim {

/// Contiguous [begin, end) ranges that partition [0, count) into `parts`
/// pieces differing in size by at most one entity (the first count % parts
/// ranges take the extra one). parts is clamped to [1, max(count, 1)];
/// count == 0 yields one empty range.
std::vector<std::pair<EntityIdx, EntityIdx>> BalancedEntityRanges(
    size_t count, int parts);

/// How the two sides split into contiguous EntityIdx shards. The driver
/// scores every left_ranges x ranges block, in (left, right) order.
struct ShardPlan {
  /// Number of right shards K (>= 1; at most the right-store size when
  /// that is non-zero).
  int shards = 1;
  /// [begin, end) dense right EntityIdx range per right shard, in order.
  std::vector<std::pair<EntityIdx, EntityIdx>> ranges;
  /// Number of left shards L (>= 1; at most the left-store size when that
  /// is non-zero).
  int left_shards = 1;
  /// [begin, end) dense left EntityIdx range per left shard, in order.
  std::vector<std::pair<EntityIdx, EntityIdx>> left_ranges;
  /// The per-right-entity working-set estimate behind a budget-derived
  /// plan, in bytes (0 when the shard count was given explicitly).
  uint64_t per_entity_bytes = 0;

  /// Balanced right-side plan with an explicit shard count. Fixed() does
  /// not know the left extent, so left_ranges stays empty (left_shards 1);
  /// EstimateShardPlan balances it over the actual left store.
  static ShardPlan Fixed(size_t rights, int shards);
};

/// Per-right-entity working-set estimate (bytes) for one shard's candidate
/// + scoring block, calibrated against the measured process footprint:
/// `rss_before_context` is CurrentPeakRssBytes() sampled before the context
/// build, so the growth since then — the resident cost of the dense stores
/// themselves — anchors the estimate, with a structural floor computed from
/// the actual CSR sizes. The candidate index, postings/buckets, and edge
/// output of a block are a small multiple of the shard's store bytes; the
/// multiplier is deliberately conservative (docs/BENCHMARKS.md, "Memory
/// budget methodology"). Only shard-count selection consumes this — links
/// never depend on it.
uint64_t EstimateBlockBytesPerEntity(const LinkageContext& context,
                                     uint64_t rss_before_context);

/// The plan LinkSharded executes. K: config.shards when positive, else the
/// smallest K whose estimated per-block working set
/// (per_entity_bytes * shard size) fits config.shard_memory_budget_bytes,
/// else one shard. L: config.left_shards clamped to [1, lefts].
ShardPlan EstimateShardPlan(const LinkageContext& context,
                            const SlimConfig& config,
                            uint64_t rss_before_context);

}  // namespace slim

#endif  // SLIM_CORE_SHARDED_H_
