#include "core/sctx.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "common/io.h"
#include "common/parallel.h"
#include "temporal/window_tree.h"

namespace slim {
namespace {

constexpr char kMagic[4] = {'S', 'C', 'T', 'X'};

// Fixed-size header preceding the flat arrays. Every array offset is a
// function of these counts, so reader and writer agree on the layout by
// construction.
struct SctxHeader {
  uint64_t file_size = 0;
  int32_t spatial_level = 0;
  int64_t window_seconds = 0;
  double region_radius_meters = 0.0;
  uint64_t vocab_size = 0;
  // Per store (E = 0, I = 1).
  uint64_t entities[2] = {0, 0};
  uint64_t total_bins[2] = {0, 0};
  uint64_t total_windows[2] = {0, 0};
};

constexpr size_t kHeaderBytes = 4 + 4 +  // magic, version
                                8 +      // file_size
                                4 + 4 +  // spatial_level, pad
                                8 + 8 +  // window_seconds, region_radius
                                8 +      // vocab_size
                                2 * (8 + 8 + 8);  // per-store counts

size_t Pad8(size_t bytes) { return (bytes + 7) & ~size_t{7}; }

// Appends raw bytes through the FileWriter's 1 MB buffer in bounded
// chunks, so serialising a multi-GB array never doubles it in heap.
void AppendBytes(FileWriter* w, const void* data, size_t bytes) {
  const char* p = static_cast<const char*>(data);
  while (bytes > 0) {
    const size_t chunk = std::min(bytes, size_t{1} << 20);
    w->buf().append(p, chunk);
    w->FlushIfFull();
    p += chunk;
    bytes -= chunk;
  }
}

template <typename T>
void AppendScalar(FileWriter* w, T value) {
  AppendBytes(w, &value, sizeof(T));
}

template <typename T>
void AppendArray(FileWriter* w, const T* data, size_t count) {
  const size_t bytes = count * sizeof(T);
  AppendBytes(w, data, bytes);
  static constexpr char kZeros[8] = {0};
  w->buf().append(kZeros, Pad8(bytes) - bytes);
  w->FlushIfFull();
}

// Bounds-checked sequential reader over the mapped bytes. Take<T>(count)
// returns the array pointer and advances past its 8-byte padding; any
// out-of-range take poisons the cursor instead of reading outside the
// mapping.
struct MapCursor {
  const char* base = nullptr;
  size_t size = 0;
  size_t pos = 0;
  bool ok = true;

  template <typename T>
  const T* Take(size_t count) {
    const size_t bytes = Pad8(count * sizeof(T));
    if (!ok || size - pos < bytes) {
      ok = false;
      return nullptr;
    }
    const T* p = reinterpret_cast<const T*>(base + pos);
    pos += bytes;
    return p;
  }

  template <typename T>
  T ReadScalar() {
    T value{};
    if (!ok || size - pos < sizeof(T)) {
      ok = false;
      return value;
    }
    std::memcpy(&value, base + pos, sizeof(T));
    pos += sizeof(T);
    return value;
  }
};

}  // namespace

// Friend of BinVocabulary / HistoryStore (core/linkage_context.h): the
// serialisation layer reads the private flat arrays for writing and
// installs mapped views on loading.
class SctxIo {
 public:
  static Status Write(const LinkageContext& ctx, const std::string& path) {
    const HistoryStore* stores[2] = {&ctx.store_e, &ctx.store_i};
    SctxHeader h;
    h.spatial_level = ctx.config.spatial_level;
    h.window_seconds = ctx.config.window_seconds;
    h.region_radius_meters = ctx.config.region_radius_meters;
    h.vocab_size = ctx.vocab.size();
    uint64_t size = kHeaderBytes;
    size += Pad8(h.vocab_size * sizeof(int64_t));   // vocab windows
    size += Pad8(h.vocab_size * sizeof(uint64_t));  // vocab cells
    for (int s = 0; s < 2; ++s) {
      const HistoryStore& store = *stores[s];
      h.entities[s] = store.entity_ids_.size();
      h.total_bins[s] = store.bin_ids_.size();
      h.total_windows[s] = store.windows_.size();
      size += Pad8(h.entities[s] * sizeof(EntityId));            // entity ids
      size += Pad8(h.entities[s] * sizeof(uint64_t));            // records
      size += Pad8(store.window_masks_.size() * sizeof(uint64_t));
      size += Pad8(h.vocab_size * sizeof(double));               // idf
      size += Pad8(h.total_windows[s] * sizeof(int64_t));        // windows
      size += Pad8((h.entities[s] + 1) * sizeof(uint32_t)) * 2;  // offsets
      size += Pad8((h.total_windows[s] + 1) * sizeof(uint32_t));
      size += Pad8(h.vocab_size * sizeof(uint32_t));  // holder counts
      size += Pad8(h.total_bins[s] * sizeof(uint32_t)) * 2;  // ids, counts
      size += Pad8(h.total_bins[s] * sizeof(uint16_t));      // quantized
    }
    h.file_size = size;

    FileWriter w(path);
    if (!w.ok()) return Status::IoError("cannot open for write: " + path);
    AppendBytes(&w, kMagic, sizeof(kMagic));
    AppendScalar(&w, kSctxVersion);
    AppendScalar(&w, h.file_size);
    AppendScalar(&w, h.spatial_level);
    AppendScalar(&w, uint32_t{0});  // pad
    AppendScalar(&w, h.window_seconds);
    AppendScalar(&w, h.region_radius_meters);
    AppendScalar(&w, h.vocab_size);
    for (int s = 0; s < 2; ++s) {
      AppendScalar(&w, h.entities[s]);
      AppendScalar(&w, h.total_bins[s]);
      AppendScalar(&w, h.total_windows[s]);
    }
    AppendArray(&w, ctx.vocab.windows_.data(), ctx.vocab.windows_.size());
    // Cells serialise as their raw 64-bit ids (CellId is a uint64 wrapper
    // with identical layout, but raw ids keep the format explicit).
    {
      std::vector<uint64_t> raw(ctx.vocab.size());
      for (size_t b = 0; b < raw.size(); ++b) {
        raw[b] = ctx.vocab.cells_[b].raw();
      }
      AppendArray(&w, raw.data(), raw.size());
    }
    for (int s = 0; s < 2; ++s) {
      const HistoryStore& store = *stores[s];
      AppendArray(&w, store.entity_ids_.data(), store.entity_ids_.size());
      AppendArray(&w, store.total_records_.data(),
                  store.total_records_.size());
      AppendArray(&w, store.window_masks_.data(), store.window_masks_.size());
      AppendArray(&w, store.idf_.data(), store.idf_.size());
      AppendArray(&w, store.windows_.data(), store.windows_.size());
      AppendArray(&w, store.bin_offsets_.data(), store.bin_offsets_.size());
      AppendArray(&w, store.window_offsets_.data(),
                  store.window_offsets_.size());
      AppendArray(&w, store.window_bin_begin_.data(),
                  store.window_bin_begin_.size());
      AppendArray(&w, store.bin_entity_counts_.data(),
                  store.bin_entity_counts_.size());
      AppendArray(&w, store.bin_ids_.data(), store.bin_ids_.size());
      AppendArray(&w, store.bin_counts_.data(), store.bin_counts_.size());
      AppendArray(&w, store.quantized_counts_.data(),
                  store.quantized_counts_.size());
    }
    return w.Finish(path);
  }

  static Result<LinkageContext> Read(const std::string& path,
                                     const SctxReadOptions& options) {
    auto contents = std::make_shared<FileContents>();
    if (Status s = contents->Open(path); !s.ok()) return s;
    const std::string_view view = contents->view();
    MapCursor c{view.data(), view.size()};
    if (view.size() < kHeaderBytes) {
      return Status::IoError("SCTX truncated header: " + path);
    }
    char magic[4];
    std::memcpy(magic, view.data(), 4);
    c.pos = 4;
    if (std::memcmp(magic, kMagic, 4) != 0) {
      return Status::InvalidArgument("not an SCTX file (bad magic): " + path);
    }
    const uint32_t version = c.ReadScalar<uint32_t>();
    if (version != kSctxVersion) {
      return Status::InvalidArgument(
          "unsupported SCTX version " + std::to_string(version) +
          " (this build reads v" + std::to_string(kSctxVersion) +
          "): " + path);
    }
    SctxHeader h;
    h.file_size = c.ReadScalar<uint64_t>();
    if (h.file_size != view.size()) {
      return Status::IoError(
          "SCTX size mismatch (header says " + std::to_string(h.file_size) +
          " bytes, file has " + std::to_string(view.size()) + "): " + path);
    }
    h.spatial_level = c.ReadScalar<int32_t>();
    (void)c.ReadScalar<uint32_t>();  // pad
    h.window_seconds = c.ReadScalar<int64_t>();
    h.region_radius_meters = c.ReadScalar<double>();
    h.vocab_size = c.ReadScalar<uint64_t>();
    for (int s = 0; s < 2; ++s) {
      h.entities[s] = c.ReadScalar<uint64_t>();
      h.total_bins[s] = c.ReadScalar<uint64_t>();
      h.total_windows[s] = c.ReadScalar<uint64_t>();
    }
    if (!c.ok || c.pos != kHeaderBytes) {
      return Status::Internal("SCTX header cursor mismatch: " + path);
    }
    // The CSR offsets are 32-bit; a header that exceeds them is either
    // corrupt or from a future format.
    if (h.vocab_size > UINT32_MAX) {
      return Status::InvalidArgument("SCTX vocabulary too large: " + path);
    }
    for (int s = 0; s < 2; ++s) {
      if (h.entities[s] >= UINT32_MAX || h.total_bins[s] > UINT32_MAX ||
          h.total_windows[s] > UINT32_MAX) {
        return Status::InvalidArgument("SCTX store counts corrupt: " + path);
      }
    }

    LinkageContext ctx;
    ctx.config.spatial_level = h.spatial_level;
    ctx.config.window_seconds = h.window_seconds;
    ctx.config.region_radius_meters = h.region_radius_meters;
    ctx.backing = contents;  // views below stay valid with the context

    const size_t vocab = static_cast<size_t>(h.vocab_size);
    const int64_t* vocab_windows = c.Take<int64_t>(vocab);
    const uint64_t* vocab_cells = c.Take<uint64_t>(vocab);
    if (!c.ok) return Status::IoError("SCTX truncated (vocabulary): " + path);
    ctx.vocab.windows_ = FlatArray<int64_t>::View(vocab_windows, vocab);
    static_assert(sizeof(CellId) == sizeof(uint64_t),
                  "CellId must be layout-identical to its raw id");
    ctx.vocab.cells_ =
        FlatArray<CellId>::View(reinterpret_cast<const CellId*>(vocab_cells),
                                vocab);

    HistoryStore* stores[2] = {&ctx.store_e, &ctx.store_i};
    for (int s = 0; s < 2; ++s) {
      HistoryStore& store = *stores[s];
      const size_t n = static_cast<size_t>(h.entities[s]);
      const size_t tb = static_cast<size_t>(h.total_bins[s]);
      const size_t tw = static_cast<size_t>(h.total_windows[s]);
      store.entity_ids_ = FlatArray<EntityId>::View(c.Take<EntityId>(n), n);
      store.total_records_ = FlatArray<uint64_t>::View(c.Take<uint64_t>(n), n);
      const size_t mask_words = n * HistoryStore::kWindowMaskWords;
      store.window_masks_ =
          FlatArray<uint64_t>::View(c.Take<uint64_t>(mask_words), mask_words);
      store.idf_ = FlatArray<double>::View(c.Take<double>(vocab), vocab);
      store.windows_ = FlatArray<int64_t>::View(c.Take<int64_t>(tw), tw);
      store.bin_offsets_ =
          FlatArray<uint32_t>::View(c.Take<uint32_t>(n + 1), n + 1);
      store.window_offsets_ =
          FlatArray<uint32_t>::View(c.Take<uint32_t>(n + 1), n + 1);
      store.window_bin_begin_ =
          FlatArray<uint32_t>::View(c.Take<uint32_t>(tw + 1), tw + 1);
      store.bin_entity_counts_ =
          FlatArray<uint32_t>::View(c.Take<uint32_t>(vocab), vocab);
      store.bin_ids_ = FlatArray<BinId>::View(c.Take<BinId>(tb), tb);
      store.bin_counts_ = FlatArray<uint32_t>::View(c.Take<uint32_t>(tb), tb);
      store.quantized_counts_ =
          FlatArray<uint16_t>::View(c.Take<uint16_t>(tb), tb);
      if (!c.ok) {
        return Status::IoError("SCTX truncated (store arrays): " + path);
      }
      // Structural consistency: the CSR sentinels must agree with the
      // header counts, or every span accessor would read out of range.
      if (store.bin_offsets_[n] != tb || store.window_offsets_[n] != tw ||
          store.window_bin_begin_[tw] != tb) {
        return Status::InvalidArgument("SCTX CSR offsets corrupt: " + path);
      }
      // Identical to the builder's division, so avg-dependent scores match
      // bit for bit.
      store.avg_bins_ =
          n == 0 ? 0.0 : static_cast<double>(tb) / static_cast<double>(n);
    }
    if (c.pos != view.size()) {
      return Status::InvalidArgument("SCTX trailing bytes: " + path);
    }
    if (options.build_trees) {
      for (HistoryStore* store : stores) {
        RebuildTrees(ctx.vocab, options.threads, store);
      }
    }
    return ctx;
  }

 private:
  // Rebuilds the per-entity window trees from the mapped CSR + vocabulary.
  // The entry sequence is exactly the (window, cell)-sorted bin order the
  // original build fed WindowSegmentTree::Build, so the rebuilt trees are
  // identical to the pre-serialisation ones.
  static void RebuildTrees(const BinVocabulary& vocab, int threads,
                           HistoryStore* store) {
    const size_t n = store->size();
    store->trees_.resize(n);
    ParallelFor(
        n,
        [&](size_t begin, size_t end, int) {
          for (size_t k = begin; k < end; ++k) {
            const EntityIdx u = static_cast<EntityIdx>(k);
            std::vector<WindowedCellCount> entries;
            entries.reserve(store->num_bins(u));
            const std::span<const int64_t> windows = store->windows(u);
            for (size_t w = 0; w < windows.size(); ++w) {
              const auto [b0, b1] = store->WindowBinRange(u, w);
              for (uint32_t p = b0; p < b1; ++p) {
                entries.push_back({windows[w],
                                   vocab.cell(store->bin_ids_[p]),
                                   store->bin_counts_[p]});
              }
            }
            store->trees_[k] = WindowSegmentTree::Build(std::move(entries));
          }
        },
        threads);
  }
};

Status WriteSctx(const LinkageContext& context, const std::string& path) {
  return SctxIo::Write(context, path);
}

Result<LinkageContext> ReadSctx(const std::string& path,
                                const SctxReadOptions& options) {
  return SctxIo::Read(path, options);
}

}  // namespace slim
