#include "core/linkage_context.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "core/score_kernel.h"

namespace slim {
namespace {

// One side's per-entity binning product, before interning.
struct SideBins {
  std::vector<std::vector<TimeLocationBin>> bins;  // per entity, sorted
  std::vector<WindowSegmentTree> trees;
  std::vector<uint64_t> total_records;
};

}  // namespace

// Fills HistoryStore's private CSR arrays; the only construction path.
class HistoryStoreBuilder {
 public:
  static void Fill(const LocationDataset& dataset, const BinVocabulary& vocab,
                   SideBins&& side, int threads, HistoryStore* store);
  // Shared CSR construction from per-entity ascending (BinId, count)
  // lists: fills every flat array of `store` except entity_ids_, trees_,
  // and total_records_ (the caller owns those). Both the batch build and
  // HistoryStore::Compact funnel through here, so an append-then-compact
  // store is field-for-field the batch store over the merged records.
  static void BuildCsr(
      const BinVocabulary& vocab,
      const std::vector<std::vector<std::pair<BinId, uint32_t>>>& entities,
      int threads, HistoryStore* store);
};

namespace {

SideBins BinSide(const LocationDataset& dataset, const HistoryConfig& config,
                 int threads) {
  const std::vector<EntityId>& ids = dataset.entity_ids();
  SideBins side;
  side.bins.resize(ids.size());
  side.trees.resize(ids.size());
  side.total_records.resize(ids.size());
  ParallelFor(
      ids.size(),
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto records = dataset.RecordsOf(ids[k]);
          side.bins[k] = GroupRecordsIntoBins(records, config);
          side.total_records[k] = records.size();
          std::vector<WindowedCellCount> entries;
          entries.reserve(side.bins[k].size());
          for (const TimeLocationBin& bin : side.bins[k]) {
            entries.push_back({bin.window, bin.cell, bin.record_count});
          }
          side.trees[k] = WindowSegmentTree::Build(std::move(entries));
        }
      },
      threads);
  return side;
}

}  // namespace

// Fills one store from its side's binning product. The vocabulary must
// already cover every bin of the side.
void HistoryStoreBuilder::Fill(const LocationDataset& dataset,
                               const BinVocabulary& vocab, SideBins&& side,
                               int threads, HistoryStore* store) {
  const size_t n = dataset.entity_ids().size();
  store->entity_ids_ = dataset.entity_ids();
  store->trees_ = std::move(side.trees);
  store->total_records_ = std::move(side.total_records);

  // Intern each entity's (window, cell)-sorted bins into an ascending
  // BinId list (vocabulary ids share that order); the shared CSR builder
  // does the rest.
  std::vector<std::vector<std::pair<BinId, uint32_t>>> entities(n);
  ParallelFor(
      n,
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto& bins = side.bins[k];
          auto& out = entities[k];
          out.reserve(bins.size());
          for (const TimeLocationBin& bin : bins) {
            const auto id = vocab.Find(bin.window, bin.cell);
            SLIM_CHECK_MSG(id.has_value(), "bin missing from vocabulary");
            out.emplace_back(*id, bin.record_count);
          }
        }
      },
      threads);
  BuildCsr(vocab, entities, threads, store);
}

void HistoryStoreBuilder::BuildCsr(
    const BinVocabulary& vocab,
    const std::vector<std::vector<std::pair<BinId, uint32_t>>>& entities,
    int threads, HistoryStore* store) {
  const size_t n = entities.size();
  // Built into locals and assigned at the end: compaction may be
  // rebuilding a store whose previous arrays are read-only SCTX views,
  // and those must stay readable while we merge out of them.
  std::vector<uint32_t> bin_offsets(n + 1, 0);
  std::vector<uint32_t> window_offsets(n + 1, 0);

  // CSR offsets from per-entity bin counts (exclusive prefix sums), then a
  // parallel fill into the pre-sized flat arrays. Offsets are 32-bit;
  // guard the total before summing into them (the vocabulary has the
  // matching guard on distinct bins).
  uint64_t total_bins64 = 0;
  for (const auto& bins : entities) total_bins64 += bins.size();
  SLIM_CHECK_MSG(total_bins64 <= UINT32_MAX,
                 "history store exceeds 2^32 bin occurrences");
  for (size_t k = 0; k < n; ++k) {
    const auto& bins = entities[k];
    bin_offsets[k + 1] = bin_offsets[k] + static_cast<uint32_t>(bins.size());
    uint32_t entity_windows = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
      if (i == 0 ||
          vocab.window(bins[i].first) != vocab.window(bins[i - 1].first)) {
        ++entity_windows;
      }
    }
    window_offsets[k + 1] = window_offsets[k] + entity_windows;
  }
  const size_t total_bins = bin_offsets[n];
  const size_t total_windows = window_offsets[n];
  std::vector<BinId> bin_ids(total_bins);
  std::vector<uint32_t> bin_counts(total_bins);
  std::vector<int64_t> windows(total_windows);
  std::vector<uint32_t> window_bin_begin(total_windows + 1);
  window_bin_begin[total_windows] = static_cast<uint32_t>(total_bins);
  std::vector<uint64_t> window_masks(n * HistoryStore::kWindowMaskWords, 0);

  ParallelFor(
      n,
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto& bins = entities[k];
          uint32_t bin_pos = bin_offsets[k];
          uint32_t win_pos = window_offsets[k];
          uint64_t* mask =
              window_masks.data() + k * HistoryStore::kWindowMaskWords;
          for (size_t i = 0; i < bins.size(); ++i) {
            const int64_t window = vocab.window(bins[i].first);
            bin_ids[bin_pos] = bins[i].first;
            bin_counts[bin_pos] = bins[i].second;
            if (i == 0 || window != vocab.window(bins[i - 1].first)) {
              windows[win_pos] = window;
              window_bin_begin[win_pos] = bin_pos;
              ++win_pos;
              // Fingerprint bit (window mod 512); the unsigned cast keeps
              // pre-epoch (negative) windows consistent on both stores.
              const uint64_t w = static_cast<uint64_t>(window);
              mask[(w >> 6) & (HistoryStore::kWindowMaskWords - 1)] |=
                  uint64_t{1} << (w & 63);
            }
            ++bin_pos;
          }
        }
      },
      threads);

  // Quantized (saturating u16) copy of the counts for the integer overlap
  // prefilters — built here so every store has it without a separate pass.
  std::vector<uint16_t> quantized(total_bins);
  QuantizeCountsSaturating({bin_counts.data(), bin_counts.size()},
                           quantized.data());

  // Dataset-level statistics: per-bin holder counts (each entity's bins are
  // distinct, so every occurrence is one holder) and the IDF array.
  std::vector<uint32_t> bin_entity_counts(vocab.size(), 0);
  std::vector<double> idf(vocab.size());
  for (const BinId b : bin_ids) ++bin_entity_counts[b];
  if (n > 0) {
    const double dn = static_cast<double>(n);
    const double max_idf = std::log(dn);
    for (size_t b = 0; b < vocab.size(); ++b) {
      const uint32_t holders = bin_entity_counts[b];
      idf[b] =
          holders == 0 ? max_idf : std::log(dn / static_cast<double>(holders));
    }
  }
  store->avg_bins_ =
      n == 0 ? 0.0
             : static_cast<double>(total_bins) / static_cast<double>(n);
  store->bin_offsets_ = std::move(bin_offsets);
  store->window_offsets_ = std::move(window_offsets);
  store->bin_ids_ = std::move(bin_ids);
  store->bin_counts_ = std::move(bin_counts);
  store->quantized_counts_ = std::move(quantized);
  store->windows_ = std::move(windows);
  store->window_bin_begin_ = std::move(window_bin_begin);
  store->window_masks_ = std::move(window_masks);
  store->bin_entity_counts_ = std::move(bin_entity_counts);
  store->idf_ = std::move(idf);
}


std::optional<BinId> BinVocabulary::Find(int64_t window, CellId cell) const {
  // Lower bound over the (window, cell-raw)-sorted parallel arrays.
  size_t lo = 0, hi = windows_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (windows_[mid] < window ||
        (windows_[mid] == window && cells_[mid] < cell)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < windows_.size() && windows_[lo] == window && cells_[lo] == cell) {
    return static_cast<BinId>(lo);
  }
  return std::nullopt;
}

BinVocabulary BinVocabulary::Build(
    const std::vector<std::vector<TimeLocationBin>>& side_e,
    const std::vector<std::vector<TimeLocationBin>>& side_i) {
  std::vector<std::pair<int64_t, CellId>> keys;
  size_t total = 0;
  for (const auto& bins : side_e) total += bins.size();
  for (const auto& bins : side_i) total += bins.size();
  keys.reserve(total);
  for (const auto* side : {&side_e, &side_i}) {
    for (const auto& bins : *side) {
      for (const TimeLocationBin& bin : bins) {
        keys.emplace_back(bin.window, bin.cell);
      }
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  SLIM_CHECK_MSG(keys.size() <= static_cast<size_t>(UINT32_MAX),
                 "bin vocabulary exceeds 2^32 entries");

  BinVocabulary vocab;
  std::vector<int64_t>& windows = vocab.windows_.owned();
  std::vector<CellId>& cells = vocab.cells_.owned();
  windows.reserve(keys.size());
  cells.reserve(keys.size());
  for (const auto& [window, cell] : keys) {
    windows.push_back(window);
    cells.push_back(cell);
  }
  return vocab;
}

BinId BinVocabulary::Intern(int64_t window, CellId cell, bool* created) {
  if (created != nullptr) *created = false;
  if (const auto found = Find(window, cell); found.has_value()) return *found;
  const auto key = std::make_pair(window, cell);
  if (const auto it = pending_.find(key); it != pending_.end()) {
    return it->second;
  }
  const size_t id = windows_.size() + pending_.size();
  SLIM_CHECK_MSG(id < static_cast<size_t>(UINT32_MAX),
                 "bin vocabulary exceeds 2^32 entries");
  pending_.emplace(key, static_cast<BinId>(id));
  if (created != nullptr) *created = true;
  return static_cast<BinId>(id);
}

std::vector<BinId> BinVocabulary::Compact() {
  const size_t base = windows_.size();
  std::vector<BinId> remap(base + pending_.size());
  if (pending_.empty()) {
    for (size_t b = 0; b < base; ++b) remap[b] = static_cast<BinId>(b);
    return remap;
  }
  // Linear merge of the sorted base arrays with the (key-sorted) pending
  // map. Base and pending keys are disjoint (Intern checks Find first),
  // and base ids keep their relative order, so the remap restricted to
  // base ids is strictly increasing.
  std::vector<int64_t> windows;
  std::vector<CellId> cells;
  windows.reserve(remap.size());
  cells.reserve(remap.size());
  size_t i = 0;
  auto it = pending_.begin();
  while (i < base || it != pending_.end()) {
    const bool take_base =
        it == pending_.end() ||
        (i < base && (windows_[i] < it->first.first ||
                      (windows_[i] == it->first.first &&
                       cells_[i] < it->first.second)));
    const BinId out = static_cast<BinId>(windows.size());
    if (take_base) {
      remap[i] = out;
      windows.push_back(windows_[i]);
      cells.push_back(cells_[i]);
      ++i;
    } else {
      remap[it->second] = out;
      windows.push_back(it->first.first);
      cells.push_back(it->first.second);
      ++it;
    }
  }
  windows_ = std::move(windows);
  cells_ = std::move(cells);
  pending_.clear();
  return remap;
}

std::optional<EntityIdx> HistoryStore::IndexOf(EntityId entity) const {
  const auto it =
      std::lower_bound(entity_ids_.begin(), entity_ids_.end(), entity);
  if (it == entity_ids_.end() || *it != entity) return std::nullopt;
  return static_cast<EntityIdx>(it - entity_ids_.begin());
}

double HistoryStore::LengthNorm(EntityIdx u, double b) const {
  SLIM_CHECK_MSG(b >= 0.0 && b <= 1.0, "length-norm b must be in [0,1]");
  SLIM_CHECK_MSG(avg_bins_ > 0.0, "LengthNorm on an empty HistoryStore");
  const double rel = static_cast<double>(num_bins(u)) / avg_bins_;
  return (1.0 - b) + b * rel;
}

void HistoryStore::Append(
    EntityId entity, std::span<const std::pair<BinId, uint32_t>> delta_bins,
    uint64_t record_count) {
  PendingAppend& pending = pending_[entity];
  pending.bins.insert(pending.bins.end(), delta_bins.begin(),
                      delta_bins.end());
  pending.records += record_count;
}

void HistoryStore::Compact(const BinVocabulary& vocab,
                           std::span<const BinId> remap, int threads) {
  // Merged sorted entity-id list (old ids are sorted; pending_ iterates
  // in id order).
  const size_t old_n = entity_ids_.size();
  std::vector<EntityId> merged_ids;
  merged_ids.reserve(old_n + pending_.size());
  {
    size_t i = 0;
    auto it = pending_.begin();
    while (i < old_n || it != pending_.end()) {
      if (it == pending_.end() ||
          (i < old_n && entity_ids_[i] < it->first)) {
        merged_ids.push_back(entity_ids_[i++]);
      } else {
        if (i < old_n && entity_ids_[i] == it->first) ++i;
        merged_ids.push_back(it->first);
        ++it;
      }
    }
  }
  const size_t n = merged_ids.size();

  // Per-entity merged ascending (BinId, count) lists in the new id space.
  // Renumber + sort + duplicate-sum each delta, then merge-sum it with
  // the renumbered base span: exactly the bins a batch
  // GroupRecordsIntoBins over the union of the entity's records produces
  // (per-(window, cell) record counting is a commutative fold).
  std::vector<std::vector<std::pair<BinId, uint32_t>>> entities(n);
  const bool build_trees = has_trees();
  std::vector<WindowSegmentTree> trees(build_trees ? n : 0);
  std::vector<uint64_t> total_records(n, 0);
  ParallelFor(
      n,
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const EntityId id = merged_ids[k];
          const auto old_idx = IndexOf(id);
          const auto pit = pending_.find(id);
          auto& out = entities[k];
          if (pit == pending_.end()) {
            // Untouched entity: renumber the existing span (stays
            // ascending — the base remap is strictly increasing) and move
            // its tree over.
            const auto base_bins = bins(*old_idx);
            const auto base_counts = counts(*old_idx);
            out.reserve(base_bins.size());
            for (size_t i = 0; i < base_bins.size(); ++i) {
              out.emplace_back(remap[base_bins[i]], base_counts[i]);
            }
            if (build_trees) trees[k] = std::move(trees_[*old_idx]);
            total_records[k] = total_records_[*old_idx];
            continue;
          }
          std::vector<std::pair<BinId, uint32_t>> delta;
          delta.reserve(pit->second.bins.size());
          for (const auto& [b, c] : pit->second.bins) {
            delta.emplace_back(remap[b], c);
          }
          std::sort(delta.begin(), delta.end(),
                    [](const auto& a, const auto& b) {
                      return a.first < b.first;
                    });
          size_t w = 0;
          for (size_t i = 0; i < delta.size(); ++i) {
            if (w > 0 && delta[w - 1].first == delta[i].first) {
              delta[w - 1].second += delta[i].second;
            } else {
              delta[w++] = delta[i];
            }
          }
          delta.resize(w);
          if (old_idx.has_value()) {
            const auto base_bins = bins(*old_idx);
            const auto base_counts = counts(*old_idx);
            out.reserve(base_bins.size() + delta.size());
            size_t i = 0, j = 0;
            while (i < base_bins.size() || j < delta.size()) {
              if (j == delta.size() ||
                  (i < base_bins.size() &&
                   remap[base_bins[i]] < delta[j].first)) {
                out.emplace_back(remap[base_bins[i]], base_counts[i]);
                ++i;
              } else if (i == base_bins.size() ||
                         delta[j].first < remap[base_bins[i]]) {
                out.push_back(delta[j]);
                ++j;
              } else {
                out.emplace_back(remap[base_bins[i]],
                                 base_counts[i] + delta[j].second);
                ++i;
                ++j;
              }
            }
            total_records[k] = total_records_[*old_idx] + pit->second.records;
          } else {
            out = std::move(delta);
            total_records[k] = pit->second.records;
          }
          if (build_trees) {
            std::vector<WindowedCellCount> entries;
            entries.reserve(out.size());
            for (const auto& [b, c] : out) {
              entries.push_back({vocab.window(b), vocab.cell(b), c});
            }
            trees[k] = WindowSegmentTree::Build(std::move(entries));
          }
        }
      },
      threads);

  entity_ids_ = std::move(merged_ids);
  trees_ = std::move(trees);
  total_records_ = std::move(total_records);
  pending_.clear();
  HistoryStoreBuilder::BuildCsr(vocab, entities, threads, this);
}

LinkageContext LinkageContext::Build(const LocationDataset& dataset_e,
                                     const LocationDataset& dataset_i,
                                     const HistoryConfig& config,
                                     int threads) {
  SLIM_CHECK_MSG(dataset_e.finalized() && dataset_i.finalized(),
                 "datasets must be finalized");
  LinkageContext ctx;
  ctx.config = config;
  if (&dataset_e == &dataset_i) {
    // Symmetric context (the auto-tuner's case): bin and intern once, copy
    // the finished store instead of rebuilding it.
    SideBins bins = BinSide(dataset_e, config, threads);
    ctx.vocab = BinVocabulary::Build(bins.bins, {});
    HistoryStoreBuilder::Fill(dataset_e, ctx.vocab, std::move(bins), threads,
                              &ctx.store_e);
    ctx.store_i = ctx.store_e;
    return ctx;
  }
  SideBins bins_e = BinSide(dataset_e, config, threads);
  SideBins bins_i = BinSide(dataset_i, config, threads);
  ctx.vocab = BinVocabulary::Build(bins_e.bins, bins_i.bins);
  HistoryStoreBuilder::Fill(dataset_e, ctx.vocab, std::move(bins_e), threads,
                            &ctx.store_e);
  HistoryStoreBuilder::Fill(dataset_i, ctx.vocab, std::move(bins_i), threads,
                            &ctx.store_i);
  return ctx;
}

LinkageContext::AppendSummary LinkageContext::AppendRecords(
    LinkageSide side, std::span<const Record> records) {
  AppendSummary summary;
  summary.records = records.size();
  HistoryStore& store = side == LinkageSide::kE ? store_e : store_i;
  // Deterministic per-entity grouping of the (arbitrarily ordered) batch.
  std::map<EntityId, std::vector<Record>> by_entity;
  for (const Record& r : records) by_entity[r.entity].push_back(r);
  summary.entities = by_entity.size();
  std::vector<std::pair<BinId, uint32_t>> delta;
  for (const auto& [entity, recs] : by_entity) {
    const std::vector<TimeLocationBin> bins =
        GroupRecordsIntoBins(recs, config);
    const auto idx = store.IndexOf(entity);
    if (!idx.has_value()) summary.new_entities = true;
    delta.clear();
    delta.reserve(bins.size());
    for (const TimeLocationBin& bin : bins) {
      bool created = false;
      const BinId id = vocab.Intern(bin.window, bin.cell, &created);
      if (created) {
        summary.new_bins = true;
      } else if (idx.has_value() && id < vocab.size()) {
        const auto span = store.bins(*idx);
        if (!std::binary_search(span.begin(), span.end(), id)) {
          summary.new_bins = true;
        }
      }
      delta.emplace_back(id, bin.record_count);
    }
    store.Append(entity, delta, recs.size());
  }
  return summary;
}

bool LinkageContext::has_pending() const {
  return vocab.has_pending() || store_e.has_pending() ||
         store_i.has_pending();
}

void LinkageContext::Compact(int threads) {
  if (!has_pending()) return;
  const bool vocab_changed = vocab.has_pending();
  const std::vector<BinId> remap = vocab.Compact();
  // A store with no buffered deltas still needs recompaction when the
  // vocabulary grew: its BinIds renumber and its per-bin statistic arrays
  // (IDF, holder counts) resize.
  if (vocab_changed || store_e.has_pending()) {
    store_e.Compact(vocab, remap, threads);
  }
  if (vocab_changed || store_i.has_pending()) {
    store_i.Compact(vocab, remap, threads);
  }
}

}  // namespace slim
