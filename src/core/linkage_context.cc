#include "core/linkage_context.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "core/score_kernel.h"

namespace slim {
namespace {

// One side's per-entity binning product, before interning.
struct SideBins {
  std::vector<std::vector<TimeLocationBin>> bins;  // per entity, sorted
  std::vector<WindowSegmentTree> trees;
  std::vector<uint64_t> total_records;
};

}  // namespace

// Fills HistoryStore's private CSR arrays; the only construction path.
class HistoryStoreBuilder {
 public:
  static void Fill(const LocationDataset& dataset, const BinVocabulary& vocab,
                   SideBins&& side, int threads, HistoryStore* store);
};

namespace {

SideBins BinSide(const LocationDataset& dataset, const HistoryConfig& config,
                 int threads) {
  const std::vector<EntityId>& ids = dataset.entity_ids();
  SideBins side;
  side.bins.resize(ids.size());
  side.trees.resize(ids.size());
  side.total_records.resize(ids.size());
  ParallelFor(
      ids.size(),
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto records = dataset.RecordsOf(ids[k]);
          side.bins[k] = GroupRecordsIntoBins(records, config);
          side.total_records[k] = records.size();
          std::vector<WindowedCellCount> entries;
          entries.reserve(side.bins[k].size());
          for (const TimeLocationBin& bin : side.bins[k]) {
            entries.push_back({bin.window, bin.cell, bin.record_count});
          }
          side.trees[k] = WindowSegmentTree::Build(std::move(entries));
        }
      },
      threads);
  return side;
}

}  // namespace

// Fills one store from its side's binning product. The vocabulary must
// already cover every bin of the side.
void HistoryStoreBuilder::Fill(const LocationDataset& dataset,
                               const BinVocabulary& vocab, SideBins&& side,
                               int threads, HistoryStore* store) {
  const size_t n = dataset.entity_ids().size();
  store->entity_ids_ = dataset.entity_ids();
  store->trees_ = std::move(side.trees);
  store->total_records_ = std::move(side.total_records);

  // The build path owns plain vectors behind every FlatArray; mapped
  // backings only ever come from the SCTX reader.
  std::vector<uint32_t>& bin_offsets = store->bin_offsets_.owned();
  std::vector<uint32_t>& window_offsets = store->window_offsets_.owned();
  std::vector<BinId>& bin_ids = store->bin_ids_.owned();
  std::vector<uint32_t>& bin_counts = store->bin_counts_.owned();
  std::vector<int64_t>& windows = store->windows_.owned();
  std::vector<uint32_t>& window_bin_begin = store->window_bin_begin_.owned();
  std::vector<uint64_t>& window_masks = store->window_masks_.owned();

  // CSR offsets from per-entity bin counts (exclusive prefix sums), then a
  // parallel interning fill into the pre-sized flat arrays. Offsets are
  // 32-bit; guard the total before summing into them (the vocabulary has
  // the matching guard on distinct bins).
  uint64_t total_bins64 = 0;
  for (const auto& bins : side.bins) total_bins64 += bins.size();
  SLIM_CHECK_MSG(total_bins64 <= UINT32_MAX,
                 "history store exceeds 2^32 bin occurrences");
  bin_offsets.assign(n + 1, 0);
  window_offsets.assign(n + 1, 0);
  for (size_t k = 0; k < n; ++k) {
    const auto& bins = side.bins[k];
    bin_offsets[k + 1] = bin_offsets[k] + static_cast<uint32_t>(bins.size());
    uint32_t entity_windows = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
      if (i == 0 || bins[i].window != bins[i - 1].window) ++entity_windows;
    }
    window_offsets[k + 1] = window_offsets[k] + entity_windows;
  }
  const size_t total_bins = bin_offsets[n];
  const size_t total_windows = window_offsets[n];
  bin_ids.resize(total_bins);
  bin_counts.resize(total_bins);
  windows.resize(total_windows);
  window_bin_begin.resize(total_windows + 1);
  window_bin_begin[total_windows] = static_cast<uint32_t>(total_bins);
  window_masks.assign(n * HistoryStore::kWindowMaskWords, 0);

  ParallelFor(
      n,
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto& bins = side.bins[k];
          uint32_t bin_pos = bin_offsets[k];
          uint32_t win_pos = window_offsets[k];
          uint64_t* mask =
              window_masks.data() + k * HistoryStore::kWindowMaskWords;
          for (size_t i = 0; i < bins.size(); ++i) {
            const auto id = vocab.Find(bins[i].window, bins[i].cell);
            SLIM_CHECK_MSG(id.has_value(), "bin missing from vocabulary");
            bin_ids[bin_pos] = *id;
            bin_counts[bin_pos] = bins[i].record_count;
            if (i == 0 || bins[i].window != bins[i - 1].window) {
              windows[win_pos] = bins[i].window;
              window_bin_begin[win_pos] = bin_pos;
              ++win_pos;
              // Fingerprint bit (window mod 512); the unsigned cast keeps
              // pre-epoch (negative) windows consistent on both stores.
              const uint64_t w = static_cast<uint64_t>(bins[i].window);
              mask[(w >> 6) & (HistoryStore::kWindowMaskWords - 1)] |=
                  uint64_t{1} << (w & 63);
            }
            ++bin_pos;
          }
        }
      },
      threads);

  // Quantized (saturating u16) copy of the counts for the integer overlap
  // prefilters — built here so every store has it without a separate pass.
  store->quantized_counts_.owned().resize(total_bins);
  QuantizeCountsSaturating(store->bin_counts_.span(),
                           store->quantized_counts_.owned().data());

  // Dataset-level statistics: per-bin holder counts (each entity's bins are
  // distinct, so every occurrence is one holder) and the IDF array.
  std::vector<uint32_t>& bin_entity_counts = store->bin_entity_counts_.owned();
  std::vector<double>& idf = store->idf_.owned();
  bin_entity_counts.assign(vocab.size(), 0);
  for (const BinId b : bin_ids) ++bin_entity_counts[b];
  idf.resize(vocab.size());
  if (n > 0) {
    const double dn = static_cast<double>(n);
    const double max_idf = std::log(dn);
    for (size_t b = 0; b < vocab.size(); ++b) {
      const uint32_t holders = bin_entity_counts[b];
      idf[b] =
          holders == 0 ? max_idf : std::log(dn / static_cast<double>(holders));
    }
  }
  store->avg_bins_ =
      n == 0 ? 0.0
             : static_cast<double>(total_bins) / static_cast<double>(n);
}


std::optional<BinId> BinVocabulary::Find(int64_t window, CellId cell) const {
  // Lower bound over the (window, cell-raw)-sorted parallel arrays.
  size_t lo = 0, hi = windows_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (windows_[mid] < window ||
        (windows_[mid] == window && cells_[mid] < cell)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < windows_.size() && windows_[lo] == window && cells_[lo] == cell) {
    return static_cast<BinId>(lo);
  }
  return std::nullopt;
}

BinVocabulary BinVocabulary::Build(
    const std::vector<std::vector<TimeLocationBin>>& side_e,
    const std::vector<std::vector<TimeLocationBin>>& side_i) {
  std::vector<std::pair<int64_t, CellId>> keys;
  size_t total = 0;
  for (const auto& bins : side_e) total += bins.size();
  for (const auto& bins : side_i) total += bins.size();
  keys.reserve(total);
  for (const auto* side : {&side_e, &side_i}) {
    for (const auto& bins : *side) {
      for (const TimeLocationBin& bin : bins) {
        keys.emplace_back(bin.window, bin.cell);
      }
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  SLIM_CHECK_MSG(keys.size() <= static_cast<size_t>(UINT32_MAX),
                 "bin vocabulary exceeds 2^32 entries");

  BinVocabulary vocab;
  std::vector<int64_t>& windows = vocab.windows_.owned();
  std::vector<CellId>& cells = vocab.cells_.owned();
  windows.reserve(keys.size());
  cells.reserve(keys.size());
  for (const auto& [window, cell] : keys) {
    windows.push_back(window);
    cells.push_back(cell);
  }
  return vocab;
}

std::optional<EntityIdx> HistoryStore::IndexOf(EntityId entity) const {
  const auto it =
      std::lower_bound(entity_ids_.begin(), entity_ids_.end(), entity);
  if (it == entity_ids_.end() || *it != entity) return std::nullopt;
  return static_cast<EntityIdx>(it - entity_ids_.begin());
}

double HistoryStore::LengthNorm(EntityIdx u, double b) const {
  SLIM_CHECK_MSG(b >= 0.0 && b <= 1.0, "length-norm b must be in [0,1]");
  SLIM_CHECK_MSG(avg_bins_ > 0.0, "LengthNorm on an empty HistoryStore");
  const double rel = static_cast<double>(num_bins(u)) / avg_bins_;
  return (1.0 - b) + b * rel;
}

LinkageContext LinkageContext::Build(const LocationDataset& dataset_e,
                                     const LocationDataset& dataset_i,
                                     const HistoryConfig& config,
                                     int threads) {
  SLIM_CHECK_MSG(dataset_e.finalized() && dataset_i.finalized(),
                 "datasets must be finalized");
  LinkageContext ctx;
  ctx.config = config;
  if (&dataset_e == &dataset_i) {
    // Symmetric context (the auto-tuner's case): bin and intern once, copy
    // the finished store instead of rebuilding it.
    SideBins bins = BinSide(dataset_e, config, threads);
    ctx.vocab = BinVocabulary::Build(bins.bins, {});
    HistoryStoreBuilder::Fill(dataset_e, ctx.vocab, std::move(bins), threads,
                              &ctx.store_e);
    ctx.store_i = ctx.store_e;
    return ctx;
  }
  SideBins bins_e = BinSide(dataset_e, config, threads);
  SideBins bins_i = BinSide(dataset_i, config, threads);
  ctx.vocab = BinVocabulary::Build(bins_e.bins, bins_i.bins);
  HistoryStoreBuilder::Fill(dataset_e, ctx.vocab, std::move(bins_e), threads,
                            &ctx.store_e);
  HistoryStoreBuilder::Fill(dataset_i, ctx.vocab, std::move(bins_i), threads,
                            &ctx.store_i);
  return ctx;
}

}  // namespace slim
