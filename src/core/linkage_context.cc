#include "core/linkage_context.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "common/parallel.h"
#include "core/score_kernel.h"

namespace slim {
namespace {

// One side's per-entity binning product, before interning.
struct SideBins {
  std::vector<std::vector<TimeLocationBin>> bins;  // per entity, sorted
  std::vector<WindowSegmentTree> trees;
  std::vector<uint64_t> total_records;
};

}  // namespace

// Fills HistoryStore's private CSR arrays; the only construction path.
class HistoryStoreBuilder {
 public:
  static void Fill(const LocationDataset& dataset, const BinVocabulary& vocab,
                   SideBins&& side, int threads, HistoryStore* store);
};

namespace {

SideBins BinSide(const LocationDataset& dataset, const HistoryConfig& config,
                 int threads) {
  const std::vector<EntityId>& ids = dataset.entity_ids();
  SideBins side;
  side.bins.resize(ids.size());
  side.trees.resize(ids.size());
  side.total_records.resize(ids.size());
  ParallelFor(
      ids.size(),
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto records = dataset.RecordsOf(ids[k]);
          side.bins[k] = GroupRecordsIntoBins(records, config);
          side.total_records[k] = records.size();
          std::vector<WindowedCellCount> entries;
          entries.reserve(side.bins[k].size());
          for (const TimeLocationBin& bin : side.bins[k]) {
            entries.push_back({bin.window, bin.cell, bin.record_count});
          }
          side.trees[k] = WindowSegmentTree::Build(std::move(entries));
        }
      },
      threads);
  return side;
}

}  // namespace

// Fills one store from its side's binning product. The vocabulary must
// already cover every bin of the side.
void HistoryStoreBuilder::Fill(const LocationDataset& dataset,
                               const BinVocabulary& vocab, SideBins&& side,
                               int threads, HistoryStore* store) {
  const size_t n = dataset.entity_ids().size();
  store->entity_ids_ = dataset.entity_ids();
  store->trees_ = std::move(side.trees);
  store->total_records_ = std::move(side.total_records);

  // CSR offsets from per-entity bin counts (exclusive prefix sums), then a
  // parallel interning fill into the pre-sized flat arrays. Offsets are
  // 32-bit; guard the total before summing into them (the vocabulary has
  // the matching guard on distinct bins).
  uint64_t total_bins64 = 0;
  for (const auto& bins : side.bins) total_bins64 += bins.size();
  SLIM_CHECK_MSG(total_bins64 <= UINT32_MAX,
                 "history store exceeds 2^32 bin occurrences");
  store->bin_offsets_.assign(n + 1, 0);
  store->window_offsets_.assign(n + 1, 0);
  for (size_t k = 0; k < n; ++k) {
    const auto& bins = side.bins[k];
    store->bin_offsets_[k + 1] =
        store->bin_offsets_[k] + static_cast<uint32_t>(bins.size());
    uint32_t windows = 0;
    for (size_t i = 0; i < bins.size(); ++i) {
      if (i == 0 || bins[i].window != bins[i - 1].window) ++windows;
    }
    store->window_offsets_[k + 1] = store->window_offsets_[k] + windows;
  }
  const size_t total_bins = store->bin_offsets_[n];
  const size_t total_windows = store->window_offsets_[n];
  store->bin_ids_.resize(total_bins);
  store->bin_counts_.resize(total_bins);
  store->windows_.resize(total_windows);
  store->window_bin_begin_.resize(total_windows + 1);
  store->window_bin_begin_[total_windows] = static_cast<uint32_t>(total_bins);
  store->window_masks_.assign(n * HistoryStore::kWindowMaskWords, 0);

  ParallelFor(
      n,
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          const auto& bins = side.bins[k];
          uint32_t bin_pos = store->bin_offsets_[k];
          uint32_t win_pos = store->window_offsets_[k];
          uint64_t* mask =
              store->window_masks_.data() + k * HistoryStore::kWindowMaskWords;
          for (size_t i = 0; i < bins.size(); ++i) {
            const auto id = vocab.Find(bins[i].window, bins[i].cell);
            SLIM_CHECK_MSG(id.has_value(), "bin missing from vocabulary");
            store->bin_ids_[bin_pos] = *id;
            store->bin_counts_[bin_pos] = bins[i].record_count;
            if (i == 0 || bins[i].window != bins[i - 1].window) {
              store->windows_[win_pos] = bins[i].window;
              store->window_bin_begin_[win_pos] = bin_pos;
              ++win_pos;
              // Fingerprint bit (window mod 512); the unsigned cast keeps
              // pre-epoch (negative) windows consistent on both stores.
              const uint64_t w = static_cast<uint64_t>(bins[i].window);
              mask[(w >> 6) & (HistoryStore::kWindowMaskWords - 1)] |=
                  uint64_t{1} << (w & 63);
            }
            ++bin_pos;
          }
        }
      },
      threads);

  // Quantized (saturating u16) copy of the counts for the integer overlap
  // prefilters — built here so every store has it without a separate pass.
  store->quantized_counts_.resize(total_bins);
  QuantizeCountsSaturating(store->bin_counts_,
                           store->quantized_counts_.data());

  // Dataset-level statistics: per-bin holder counts (each entity's bins are
  // distinct, so every occurrence is one holder) and the IDF array.
  store->bin_entity_counts_.assign(vocab.size(), 0);
  for (const BinId b : store->bin_ids_) ++store->bin_entity_counts_[b];
  store->idf_.resize(vocab.size());
  if (n > 0) {
    const double dn = static_cast<double>(n);
    const double max_idf = std::log(dn);
    for (size_t b = 0; b < vocab.size(); ++b) {
      const uint32_t holders = store->bin_entity_counts_[b];
      store->idf_[b] =
          holders == 0 ? max_idf : std::log(dn / static_cast<double>(holders));
    }
  }
  store->avg_bins_ =
      n == 0 ? 0.0
             : static_cast<double>(total_bins) / static_cast<double>(n);
}


std::optional<BinId> BinVocabulary::Find(int64_t window, CellId cell) const {
  // Lower bound over the (window, cell-raw)-sorted parallel arrays.
  size_t lo = 0, hi = windows_.size();
  while (lo < hi) {
    const size_t mid = lo + (hi - lo) / 2;
    if (windows_[mid] < window ||
        (windows_[mid] == window && cells_[mid] < cell)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < windows_.size() && windows_[lo] == window && cells_[lo] == cell) {
    return static_cast<BinId>(lo);
  }
  return std::nullopt;
}

BinVocabulary BinVocabulary::Build(
    const std::vector<std::vector<TimeLocationBin>>& side_e,
    const std::vector<std::vector<TimeLocationBin>>& side_i) {
  std::vector<std::pair<int64_t, CellId>> keys;
  size_t total = 0;
  for (const auto& bins : side_e) total += bins.size();
  for (const auto& bins : side_i) total += bins.size();
  keys.reserve(total);
  for (const auto* side : {&side_e, &side_i}) {
    for (const auto& bins : *side) {
      for (const TimeLocationBin& bin : bins) {
        keys.emplace_back(bin.window, bin.cell);
      }
    }
  }
  std::sort(keys.begin(), keys.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;
            });
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  SLIM_CHECK_MSG(keys.size() <= static_cast<size_t>(UINT32_MAX),
                 "bin vocabulary exceeds 2^32 entries");

  BinVocabulary vocab;
  vocab.windows_.reserve(keys.size());
  vocab.cells_.reserve(keys.size());
  for (const auto& [window, cell] : keys) {
    vocab.windows_.push_back(window);
    vocab.cells_.push_back(cell);
  }
  return vocab;
}

std::optional<EntityIdx> HistoryStore::IndexOf(EntityId entity) const {
  const auto it =
      std::lower_bound(entity_ids_.begin(), entity_ids_.end(), entity);
  if (it == entity_ids_.end() || *it != entity) return std::nullopt;
  return static_cast<EntityIdx>(it - entity_ids_.begin());
}

double HistoryStore::LengthNorm(EntityIdx u, double b) const {
  SLIM_CHECK_MSG(b >= 0.0 && b <= 1.0, "length-norm b must be in [0,1]");
  SLIM_CHECK_MSG(avg_bins_ > 0.0, "LengthNorm on an empty HistoryStore");
  const double rel = static_cast<double>(num_bins(u)) / avg_bins_;
  return (1.0 - b) + b * rel;
}

LinkageContext LinkageContext::Build(const LocationDataset& dataset_e,
                                     const LocationDataset& dataset_i,
                                     const HistoryConfig& config,
                                     int threads) {
  SLIM_CHECK_MSG(dataset_e.finalized() && dataset_i.finalized(),
                 "datasets must be finalized");
  LinkageContext ctx;
  ctx.config = config;
  if (&dataset_e == &dataset_i) {
    // Symmetric context (the auto-tuner's case): bin and intern once, copy
    // the finished store instead of rebuilding it.
    SideBins bins = BinSide(dataset_e, config, threads);
    ctx.vocab = BinVocabulary::Build(bins.bins, {});
    HistoryStoreBuilder::Fill(dataset_e, ctx.vocab, std::move(bins), threads,
                              &ctx.store_e);
    ctx.store_i = ctx.store_e;
    return ctx;
  }
  SideBins bins_e = BinSide(dataset_e, config, threads);
  SideBins bins_i = BinSide(dataset_i, config, threads);
  ctx.vocab = BinVocabulary::Build(bins_e.bins, bins_i.bins);
  HistoryStoreBuilder::Fill(dataset_e, ctx.vocab, std::move(bins_e), threads,
                            &ctx.store_e);
  HistoryStoreBuilder::Fill(dataset_i, ctx.vocab, std::move(bins_i), threads,
                            &ctx.store_i);
  return ctx;
}

}  // namespace slim
