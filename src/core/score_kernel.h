// SIMD scoring kernels for the sparse inner loops of SimilarityEngine.
//
// SLIM's score (Eq. 2) spends its time in two sparse primitives over the
// dense CSR layout of core/linkage_context.h:
//
//   1. sorted-span intersection — matching the occupied-window lists of an
//      entity pair (int64 window indices) and, inside a window, their BinId
//      spans (uint32);
//   2. IDF-weighted accumulation — min(idf_e, idf_i) / norm over the
//      matched bin pairs.
//
// This header exposes those primitives behind a kernel-variant table
// (ScoreKernelOps) with a scalar reference implementation plus SSE4.2 and
// AVX2 variants selected at runtime (common/cpu.h probes; per-function
// target attributes, so the build needs no global -mavx2). Every variant is
// exact, not approximate:
//
//   * intersections operate on integers, so matched positions are
//     bit-identical across variants by construction;
//   * the float path uses only elementwise exactly-rounded IEEE ops
//     (min, div) and leaves the final summation to the caller in a fixed
//     scalar order, so scores are bit-identical too.
//
// That is what lets tests/test_score_kernel.cc demand exact equality (0 ULP)
// between variants and lets the golden link files pin every kernel.
//
// Intersection inputs must be STRICTLY ascending (no duplicates inside one
// span). The CSR window lists and per-window BinId spans satisfy this by
// construction; it is what makes "each left element matches at most one
// right element" true and the SIMD block algorithm exact.
#ifndef SLIM_CORE_SCORE_KERNEL_H_
#define SLIM_CORE_SCORE_KERNEL_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

namespace slim {

/// Which scoring kernel variant to run. kAuto resolves at engine
/// construction to the best variant the CPU supports (or to the
/// SLIM_KERNEL environment override, see ResolveScoreKernel).
enum class ScoreKernel {
  kAuto,
  kScalar,
  kSse42,
  kAvx2,
};

/// Canonical lowercase name ("auto", "scalar", "sse42", "avx2").
const char* ScoreKernelName(ScoreKernel kernel);

/// Parses a canonical name; nullopt for anything else.
std::optional<ScoreKernel> ParseScoreKernel(std::string_view name);

/// True when this machine can execute the variant (kAuto and kScalar are
/// always supported).
bool ScoreKernelSupported(ScoreKernel kernel);

/// Resolves `requested` to a concrete runnable variant:
///   * an explicit variant is validated against the CPU (fatal when
///     unsupported — a forced kernel must never silently degrade);
///   * kAuto consults the SLIM_KERNEL environment variable (same names as
///     ParseScoreKernel; invalid or unsupported values are fatal), then
///     falls back to the best supported variant: avx2 > sse42 > scalar.
ScoreKernel ResolveScoreKernel(ScoreKernel requested);

/// The per-variant primitive table. All intersection entries share one
/// contract: inputs are strictly ascending spans, `out_a`/`out_b` have
/// capacity >= min(na, nb), the return value is the number of matches, and
/// matched positions are emitted in ascending order — bit-identical to the
/// scalar two-pointer merge.
struct ScoreKernelOps {
  ScoreKernel kind;

  /// Intersects two sorted int64 spans (occupied-window lists).
  size_t (*intersect_i64)(const int64_t* a, size_t na, const int64_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b);

  /// Intersects two sorted uint32 spans (BinId spans).
  size_t (*intersect_u32)(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b);

  /// out[k] = min(idf_a[bins_a[k]], idf_b[bins_b[k]]) / norm. Elementwise
  /// and exactly rounded, so identical bits at every variant; the caller
  /// sums `out` in order to keep the accumulation order fixed.
  void (*idf_contributions)(const uint32_t* bins_a, const uint32_t* bins_b,
                            size_t n, const double* idf_a, const double* idf_b,
                            double norm, double* out);
};

/// The primitive table of a concrete (already resolved) variant. Fatal on
/// kAuto or an unsupported variant.
const ScoreKernelOps& GetScoreKernelOps(ScoreKernel kernel);

/// Span-length ratio beyond which IntersectSorted* abandons the (possibly
/// SIMD) linear merge for the scalar galloping search: with one span this
/// much longer than the other, binary probing beats scanning.
inline constexpr size_t kGallopSpanRatio = 16;

/// Below this shorter-span length IntersectSorted* runs the scalar
/// branchless merge directly instead of dispatching through the kernel
/// table: the whole merge finishes before an indirect call has paid for
/// itself, and SIMD blocks cannot even fill a vector. Candidate-pair
/// window lists average roughly a dozen windows a side, so this is the
/// linkage engine's hot shape.
inline constexpr size_t kSmallSpanMinElements = 32;

/// Galloping intersection (exponential probe + binary search driven by the
/// shorter span). Same contract and identical output as the linear merge;
/// exposed for the differential tests.
size_t IntersectGallopI64(const int64_t* a, size_t na, const int64_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b);
size_t IntersectGallopU32(const uint32_t* a, size_t na, const uint32_t* b,
                          size_t nb, uint32_t* out_a, uint32_t* out_b);

/// Heuristic entry points the engine uses: galloping when the span lengths
/// differ by more than kGallopSpanRatio, the inlined branchless merge when
/// the shorter span is under kSmallSpanMinElements, the variant's linear
/// merge otherwise. The heuristic depends only on span lengths, never on
/// the variant, so the chosen path — and therefore the output — is the
/// same for every kernel.
size_t IntersectSortedI64(const ScoreKernelOps& ops, const int64_t* a,
                          size_t na, const int64_t* b, size_t nb,
                          uint32_t* out_a, uint32_t* out_b);
size_t IntersectSortedU32(const ScoreKernelOps& ops, const uint32_t* a,
                          size_t na, const uint32_t* b, size_t nb,
                          uint32_t* out_a, uint32_t* out_b);

/// Saturating u16 quantisation of a record count (the HistoryStore keeps a
/// quantized copy of bin_counts for overlap prefilters; 65535 is a
/// saturation guard, not a wrap).
inline uint16_t QuantizeCountSaturating(uint32_t count) {
  return count > 65535u ? uint16_t{65535} : static_cast<uint16_t>(count);
}

/// Quantizes a whole count span (out must hold counts.size() values).
void QuantizeCountsSaturating(std::span<const uint32_t> counts, uint16_t* out);

/// Integer overlap mass of two quantized histories:
///   sum over shared bins of min(counts_a, counts_b).
/// `bins_*` are ascending BinId spans with `counts_*` parallel to them;
/// `match_a`/`match_b` are caller scratch (resized as needed). Exact in
/// u64, so kernel- and shard-invariant.
uint64_t QuantizedOverlap(const ScoreKernelOps& ops,
                          std::span<const uint32_t> bins_a,
                          std::span<const uint16_t> counts_a,
                          std::span<const uint32_t> bins_b,
                          std::span<const uint16_t> counts_b,
                          std::vector<uint32_t>* match_a,
                          std::vector<uint32_t>* match_b);

}  // namespace slim

#endif  // SLIM_CORE_SCORE_KERNEL_H_
