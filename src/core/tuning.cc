#include "core/tuning.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/rng.h"
#include "stats/kneedle.h"

namespace slim {

Result<TuningResult> AutoTuneSpatialLevel(const LocationDataset& dataset,
                                          const TuningOptions& options) {
  if (options.candidate_levels.size() < 3) {
    return Status::InvalidArgument("need at least 3 candidate levels");
  }
  for (size_t k = 1; k < options.candidate_levels.size(); ++k) {
    if (options.candidate_levels[k] <= options.candidate_levels[k - 1]) {
      return Status::InvalidArgument("candidate levels must be increasing");
    }
  }
  if (dataset.num_entities() < 2) {
    return Status::FailedPrecondition(
        "auto-tuning needs at least 2 entities");
  }

  // Fixed probe pairs, shared across levels so the curve is comparable.
  Rng rng(options.seed);
  const auto& ids = dataset.entity_ids();
  std::vector<EntityId> sample;
  {
    std::vector<EntityId> pool = ids;
    for (size_t i = pool.size(); i > 1; --i) {
      std::swap(pool[i - 1], pool[rng.NextUint64(i)]);
    }
    const size_t n = std::min(options.sample_entities, pool.size());
    sample.assign(pool.begin(), pool.begin() + static_cast<long>(n));
  }
  std::vector<std::pair<EntityId, EntityId>> probes;
  for (EntityId u : sample) {
    for (size_t k = 0; k < options.partners_per_entity; ++k) {
      EntityId v = ids[rng.NextUint64(ids.size())];
      if (v == u) continue;
      probes.emplace_back(u, v);
    }
  }
  if (probes.empty()) {
    return Status::FailedPrecondition("no probe pairs could be formed");
  }

  TuningResult result;
  std::vector<double> xs, ys;
  // The probe scores entities against the SAME dataset: at coarse levels
  // every entity shares every bin, which drives idf (and with it both the
  // pair and the self score) to exactly 0 and makes the ratio undefined.
  // The probe therefore uses proximity-only similarity; the level choice is
  // about spatial distinguishability, not term weighting.
  SimilarityConfig probe_cfg = options.similarity;
  probe_cfg.use_idf = false;
  for (int level : options.candidate_levels) {
    HistoryConfig hc;
    hc.spatial_level = level;
    hc.window_seconds = options.window_seconds;
    // A symmetric context (the dataset on both sides) makes the self score
    // S(u, u) a plain diagonal lookup.
    const LinkageContext ctx = LinkageContext::Build(dataset, dataset, hc);
    const SimilarityEngine engine(ctx, probe_cfg);
    SimilarityStats stats;

    double ratio_sum = 0.0;
    size_t ratio_count = 0;
    for (const auto& [u, v] : probes) {
      const auto iu = ctx.store_e.IndexOf(u);
      const auto iv = ctx.store_i.IndexOf(v);
      if (!iu.has_value() || !iv.has_value()) continue;
      const double self = engine.ScoreIndexed(*iu, *iu, &stats);
      if (self <= 0.0) continue;
      const double pair = engine.ScoreIndexed(*iu, *iv, &stats);
      ratio_sum += pair / self;
      ++ratio_count;
    }
    const double avg = ratio_count > 0
                           ? ratio_sum / static_cast<double>(ratio_count)
                           : 0.0;
    result.curve.push_back({level, avg});
    xs.push_back(static_cast<double>(level));
    ys.push_back(avg);
  }

  KneedleOptions ko;
  ko.curve = KneedleCurve::kConvexDecreasing;
  ko.sensitivity = options.sensitivity;
  const auto elbow = FindKneedle(xs, ys, ko);
  if (elbow.has_value()) {
    result.elbow_found = true;
    result.selected_level = result.curve[*elbow].level;
    return result;
  }

  // Fallback: first level whose ratio is within 5% (of the curve's total
  // drop) of the final plateau value.
  const double y_final = ys.back();
  const auto [mn, mx] = std::minmax_element(ys.begin(), ys.end());
  const double span = *mx - *mn;
  result.selected_level = result.curve.back().level;
  if (span > 0.0) {
    for (size_t k = 0; k < ys.size(); ++k) {
      if (std::abs(ys[k] - y_final) <= 0.05 * span) {
        result.selected_level = result.curve[k].level;
        break;
      }
    }
  }
  return result;
}

Result<int> AutoTuneSpatialLevelForPair(const LocationDataset& dataset_e,
                                        const LocationDataset& dataset_i,
                                        const TuningOptions& options) {
  auto re = AutoTuneSpatialLevel(dataset_e, options);
  if (!re.ok()) return re.status();
  auto ri = AutoTuneSpatialLevel(dataset_i, options);
  if (!ri.ok()) return ri.status();
  return std::max(re->selected_level, ri->selected_level);
}

}  // namespace slim
