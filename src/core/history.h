// Mobility histories (paper Sec. 2.3).
//
// A mobility history distributes one entity's records over time-location
// bins: the leaf windows of a hierarchical temporal partitioning, each
// holding the set of spatial grid cells the entity visited in that window
// (with record counts). The hierarchical aggregation lives in
// WindowSegmentTree; this header adds the per-dataset structures the
// similarity score needs — bin IDF statistics (Eq. 3) and BM25-style history
// length normalisation (Eq. 2).
#ifndef SLIM_CORE_HISTORY_H_
#define SLIM_CORE_HISTORY_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "geo/cell_id.h"
#include "temporal/window_tree.h"

namespace slim {

/// One time-location bin of a history: the entity produced `record_count`
/// records inside spatial cell `cell` during leaf window `window`.
struct TimeLocationBin {
  int64_t window = 0;
  CellId cell;
  uint32_t record_count = 0;

  bool operator==(const TimeLocationBin&) const = default;
};

/// Spatio-temporal resolution of the history representation.
struct HistoryConfig {
  /// Spatial grid level of the leaf cells (paper default 12).
  int spatial_level = 12;
  /// Leaf temporal window width in seconds (paper default 15 minutes).
  int64_t window_seconds = 900;
  /// When > 0, each record is treated as a *region* — a disc of this
  /// radius around its location — and is copied into every leaf cell the
  /// disc intersects (the paper's Sec. 2.1 extension for datasets whose
  /// record locations are regions rather than points). 0 keeps point
  /// semantics.
  double region_radius_meters = 0.0;
};

/// Groups one entity's records into time-location bins, sorted by
/// (window, cell) with per-bin record counts. This is the shared binning
/// kernel behind both the sparse MobilityHistory and the dense HistoryStore
/// (core/linkage_context.h).
std::vector<TimeLocationBin> GroupRecordsIntoBins(
    std::span<const Record> records, const HistoryConfig& config);

/// The mobility history of a single entity.
class MobilityHistory {
 public:
  MobilityHistory() = default;

  /// Builds a history from one entity's records. Bins are sorted by
  /// (window, cell).
  static MobilityHistory FromRecords(EntityId entity,
                                     std::span<const Record> records,
                                     const HistoryConfig& config);

  EntityId entity() const { return entity_; }
  /// Total number of time-location bins |H_u| (the paper's history size).
  size_t num_bins() const { return bins_.size(); }
  /// All bins, sorted by (window, cell).
  const std::vector<TimeLocationBin>& bins() const { return bins_; }
  /// Sorted distinct leaf-window indices with at least one bin.
  const std::vector<int64_t>& windows() const { return windows_; }
  /// The bins of one window (empty span if the window is unoccupied).
  std::span<const TimeLocationBin> BinsInWindow(int64_t window) const;
  /// Hierarchical aggregation over the bins (dominating-cell queries for
  /// the LSH layer). Empty tree for an empty history.
  const WindowSegmentTree& tree() const { return tree_; }
  /// Total record count across bins.
  uint64_t total_records() const { return total_records_; }

 private:
  EntityId entity_ = 0;
  std::vector<TimeLocationBin> bins_;
  std::vector<int64_t> windows_;
  // window -> [first, last) span into bins_.
  std::unordered_map<int64_t, std::pair<size_t, size_t>> window_index_;
  WindowSegmentTree tree_;
  uint64_t total_records_ = 0;
};

/// All histories of one dataset plus the dataset-level statistics used by
/// the similarity score: per-bin entity counts (for IDF, Eq. 3) and the
/// average history size (for the normalisation L, Eq. 2).
class HistorySet {
 public:
  /// Builds the histories of every entity in `dataset`. Per-entity history
  /// construction is data-parallel over `threads` workers (<= 0 means the
  /// library default; see common/parallel.h); the dataset-level statistics
  /// are merged in entity order afterwards, so the result is identical at
  /// every thread count.
  static HistorySet Build(const LocationDataset& dataset,
                          const HistoryConfig& config, int threads = 0);

  const HistoryConfig& config() const { return config_; }
  size_t size() const { return histories_.size(); }
  /// Histories sorted by entity id.
  const std::vector<MobilityHistory>& histories() const { return histories_; }
  /// History of `entity`; nullptr when absent.
  const MobilityHistory* Find(EntityId entity) const;
  /// Mean |H_u| over the dataset (0 when empty).
  double avg_bins_per_history() const { return avg_bins_; }

  /// Number of histories containing bin (window, cell).
  uint32_t BinEntityCount(int64_t window, CellId cell) const;

  /// idf(e, E) = log(|U_E| / |{u : e in H_u}|), Eq. 3. Bins absent from the
  /// dataset get the maximal idf log(|U_E|) (they are maximally unique).
  double Idf(int64_t window, CellId cell) const;

  /// The normalisation L(u, E) = (1 - b) + b * |H_u| / avg|H| of Eq. 2.
  /// Requires 0 <= b <= 1 and a non-empty set.
  double LengthNorm(const MobilityHistory& history, double b) const;

 private:
  struct BinKeyHash {
    size_t operator()(const std::pair<int64_t, uint64_t>& k) const noexcept {
      uint64_t z = static_cast<uint64_t>(k.first) * 0x9e3779b97f4a7c15ULL ^
                   k.second;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  HistoryConfig config_;
  std::vector<MobilityHistory> histories_;
  std::unordered_map<EntityId, size_t> by_entity_;
  std::unordered_map<std::pair<int64_t, uint64_t>, uint32_t, BinKeyHash>
      bin_entity_counts_;
  double avg_bins_ = 0.0;
};

}  // namespace slim

#endif  // SLIM_CORE_HISTORY_H_
