// Dense interned representation of a linkage problem.
//
// The sparse per-entity structures (core/history.h) are convenient for
// construction and diagnostics, but the scoring and candidate-filtering hot
// paths should never pay hash-map costs per lookup. This header provides
// the dense core the pipeline runs on:
//
//   BinVocabulary  — interns every (window, cell) time-location bin that
//                    occurs in EITHER dataset into a contiguous BinId, so
//                    bin-level statistics become flat-array lookups shared
//                    across both sides.
//   HistoryStore   — one dataset's histories in a CSR-style flat layout:
//                    per-entity offset spans over BinId/count arrays, a
//                    parallel window index, IDF as a flat array indexed by
//                    BinId, and the per-entity window segment trees the LSH
//                    layer queries. Entities are addressed by dense
//                    EntityIdx (their rank in the sorted entity-id list).
//   LinkageContext — the vocabulary plus the two stores; the input to the
//                    similarity engine and every CandidateGenerator.
//
// Construction is data-parallel over entities and deterministic: BinIds
// are assigned in (window, cell) order, so a history's bin span is sorted
// by BinId exactly as the sparse MobilityHistory sorts its bins.
//
// Every flat array lives in a FlatArray<T> (common/flat_array.h): the
// build path owns plain vectors, while a context loaded from an SCTX file
// (core/sctx.h) views the mapped bytes read-only — the scoring and
// candidate layers read either backing transparently. The one structure a
// mapped context cannot view is the per-entity WindowSegmentTree heap; the
// SCTX reader rebuilds the trees deterministically from the CSR arrays (or
// skips them when the run's candidate generator never queries them — see
// has_trees()).
#ifndef SLIM_CORE_LINKAGE_CONTEXT_H_
#define SLIM_CORE_LINKAGE_CONTEXT_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/flat_array.h"
#include "core/history.h"
#include "data/dataset.h"
#include "geo/cell_id.h"
#include "temporal/window_tree.h"

namespace slim {

/// Contiguous id of an interned (window, cell) bin. Ids are dense in
/// [0, BinVocabulary::size()) and ordered by (window, cell).
using BinId = uint32_t;

/// Dense index of an entity inside one HistoryStore: its rank in the
/// store's sorted entity-id list.
using EntityIdx = uint32_t;

class HistoryStoreBuilder;
class SctxIo;

/// The shared (window, cell) -> BinId interning over both datasets.
class BinVocabulary {
 public:
  size_t size() const { return windows_.size(); }
  int64_t window(BinId b) const { return windows_[b]; }
  CellId cell(BinId b) const { return cells_[b]; }

  /// BinId of (window, cell); nullopt when the bin occurs in neither
  /// dataset. O(log size) binary search. Pending (un-compacted) bins are
  /// not found.
  std::optional<BinId> Find(int64_t window, CellId cell) const;

  /// BinId of (window, cell), interning a pending bin when absent.
  /// Pending bins carry provisional ids in [size(), size() +
  /// pending_size()), assigned in first-intern order; they are invisible
  /// to size()/window()/cell()/Find() until Compact() folds them into the
  /// (window, cell)-sorted id space. `created` (optional) reports whether
  /// this call interned a bin unseen by both the compacted vocabulary and
  /// the pending set.
  BinId Intern(int64_t window, CellId cell, bool* created = nullptr);
  bool has_pending() const { return !pending_.empty(); }
  size_t pending_size() const { return pending_.size(); }

  /// Merges pending bins into the sorted id space and returns the
  /// old-id -> new-id remap covering both compacted and provisional ids
  /// (an identity map when nothing is pending). The remap is strictly
  /// increasing over the old compacted ids, so any remapped ascending bin
  /// span stays ascending.
  std::vector<BinId> Compact();

  /// Builds the vocabulary from per-side bin lists (each inner vector is
  /// one entity's (window, cell)-sorted bins). Exposed for tests; the
  /// pipeline uses LinkageContext::Build.
  static BinVocabulary Build(
      const std::vector<std::vector<TimeLocationBin>>& side_e,
      const std::vector<std::vector<TimeLocationBin>>& side_i);

 private:
  friend class SctxIo;  // serialisation + mapped views (core/sctx.cc)

  // Parallel arrays indexed by BinId, sorted by (window, cell raw).
  FlatArray<int64_t> windows_;
  FlatArray<CellId> cells_;
  // Bins interned since the last Compact(), keyed by (window, cell) so
  // compaction order is deterministic; values are provisional ids.
  std::map<std::pair<int64_t, CellId>, BinId> pending_;
};

/// One dataset's histories in a flat CSR layout plus the dataset-level
/// statistics the similarity score needs, all addressable without hashing.
class HistoryStore {
 public:
  /// Number of entities.
  size_t size() const { return entity_ids_.size(); }
  /// Sorted entity ids; EntityIdx is a position in this vector.
  const FlatArray<EntityId>& entity_ids() const { return entity_ids_; }
  EntityId entity_id(EntityIdx u) const { return entity_ids_[u]; }
  /// Dense index of `entity`; nullopt when absent. O(log size).
  std::optional<EntityIdx> IndexOf(EntityId entity) const;

  /// |H_u|: number of bins of entity u.
  size_t num_bins(EntityIdx u) const {
    return bin_offsets_[u + 1] - bin_offsets_[u];
  }
  /// Entity u's bins as ascending BinIds ((window, cell)-sorted).
  std::span<const BinId> bins(EntityIdx u) const {
    return {bin_ids_.data() + bin_offsets_[u],
            bin_ids_.data() + bin_offsets_[u + 1]};
  }
  /// Record counts parallel to bins(u).
  std::span<const uint32_t> counts(EntityIdx u) const {
    return {bin_counts_.data() + bin_offsets_[u],
            bin_counts_.data() + bin_offsets_[u + 1]};
  }
  /// Saturating u16 quantisation of counts(u) (counts above 65535 clamp),
  /// precomputed for the integer overlap prefilters of
  /// core/score_kernel.h::QuantizedOverlap.
  std::span<const uint16_t> quantized_counts(EntityIdx u) const {
    return {quantized_counts_.data() + bin_offsets_[u],
            quantized_counts_.data() + bin_offsets_[u + 1]};
  }

  /// Sorted distinct occupied windows of entity u.
  std::span<const int64_t> windows(EntityIdx u) const {
    return {windows_.data() + window_offsets_[u],
            windows_.data() + window_offsets_[u + 1]};
  }
  /// 512-bit occupancy fingerprint of windows(u): bit (w mod 512) is set
  /// for every occupied window w. A superset summary — two entities whose
  /// fingerprints share no bit provably share no window, so the scoring
  /// path can reject most zero-overlap candidate pairs on one cache line
  /// instead of merging the window lists. Exactly kWindowMaskWords words.
  const uint64_t* window_mask(EntityIdx u) const {
    return window_masks_.data() + static_cast<size_t>(u) * kWindowMaskWords;
  }
  static constexpr size_t kWindowMaskWords = 8;
  /// The bins of entity u's k-th occupied window (k is a position in
  /// windows(u)), as a [begin, end) span of positions into bin_ids().
  std::pair<uint32_t, uint32_t> WindowBinRange(EntityIdx u, size_t k) const {
    const uint32_t w = window_offsets_[u] + static_cast<uint32_t>(k);
    return {window_bin_begin_[w], window_bin_begin_[w + 1]};
  }
  /// Flat bin-id / count arrays (for WindowBinRange-based iteration).
  const FlatArray<BinId>& bin_ids() const { return bin_ids_; }
  const FlatArray<uint32_t>& bin_counts() const { return bin_counts_; }

  /// Mean |H_u| over the store (0 when empty).
  double avg_bins() const { return avg_bins_; }
  /// Number of this store's histories containing bin b.
  uint32_t bin_entity_count(BinId b) const { return bin_entity_counts_[b]; }
  /// idf(b) = log(|U| / holders) with log(|U|) for absent bins (Eq. 3),
  /// as a flat lookup. Requires a non-empty store.
  double idf(BinId b) const { return idf_[b]; }
  /// The full IDF array (size = vocabulary size) for flat-pointer access on
  /// the scoring hot path.
  const FlatArray<double>& idf_values() const { return idf_; }
  /// The normalisation L(u) = (1 - b) + b * |H_u| / avg|H| of Eq. 2.
  double LengthNorm(EntityIdx u, double b) const;

  /// Whether the per-entity window trees exist. True for every built
  /// context; false only for an SCTX-loaded context that skipped the
  /// rebuild (ReadSctx with build_trees = false) — such a context serves
  /// every generator except LSH.
  bool has_trees() const { return trees_.size() == entity_ids_.size(); }
  /// Entity u's hierarchical window aggregation (LSH dominating-cell
  /// queries). Requires has_trees().
  const WindowSegmentTree& tree(EntityIdx u) const {
    SLIM_CHECK_MSG(u < trees_.size(),
                   "window trees unavailable (SCTX loaded without trees)");
    return trees_[u];
  }
  /// Total records of entity u.
  uint64_t total_records(EntityIdx u) const { return total_records_[u]; }

  /// Buffers an append for `entity`, which may be new to the store:
  /// `delta_bins` are (BinId, additional-record-count) pairs — the ids may
  /// be provisional ones from BinVocabulary::Intern — and `record_count`
  /// is how many raw records produced them. Repeat appends to one entity
  /// accumulate; duplicate bins within or across appends sum their counts
  /// at compaction. Nothing is visible to readers until Compact().
  void Append(EntityId entity,
              std::span<const std::pair<BinId, uint32_t>> delta_bins,
              uint64_t record_count);
  bool has_pending() const { return !pending_.empty(); }
  size_t pending_entities() const { return pending_.size(); }

  /// Applies buffered appends: renumbers every stored BinId through
  /// `remap` (from BinVocabulary::Compact of the same epoch) and rebuilds
  /// the CSR layout, window index, fingerprints, per-bin statistics, and
  /// IDF over the merged histories — the same shared CSR builder the
  /// batch path uses, so the result is field-for-field the store a batch
  /// build over the union of records produces. Window trees move over for
  /// untouched entities and are rebuilt for appended ones; a store loaded
  /// without trees (ReadSctx with build_trees = false) stays without
  /// them. A mapped (SCTX-backed) store migrates to owned heap arrays.
  /// Deterministic at every `threads`.
  void Compact(const BinVocabulary& vocab, std::span<const BinId> remap,
               int threads = 0);

 private:
  friend class HistoryStoreBuilder;  // construction (linkage_context.cc)
  friend class SctxIo;               // serialisation + mapped views

  FlatArray<EntityId> entity_ids_;
  // CSR over bins: entity u owns bin_ids_/bin_counts_ positions
  // [bin_offsets_[u], bin_offsets_[u+1]).
  FlatArray<uint32_t> bin_offsets_;
  FlatArray<BinId> bin_ids_;
  FlatArray<uint32_t> bin_counts_;
  FlatArray<uint16_t> quantized_counts_;  // bin_counts_ saturated to u16
  // CSR over occupied windows: entity u owns windows_ positions
  // [window_offsets_[u], window_offsets_[u+1]); window_bin_begin_ maps each
  // window (plus one global sentinel) to where its bins start in bin_ids_.
  FlatArray<uint32_t> window_offsets_;
  FlatArray<int64_t> windows_;
  FlatArray<uint32_t> window_bin_begin_;
  FlatArray<uint64_t> window_masks_;  // kWindowMaskWords per entity
  // Flat per-BinId statistics (size = vocabulary size).
  FlatArray<uint32_t> bin_entity_counts_;
  FlatArray<double> idf_;
  // Heap-only: rebuilt (not mapped) on SCTX load; empty when skipped.
  std::vector<WindowSegmentTree> trees_;
  FlatArray<uint64_t> total_records_;
  double avg_bins_ = 0.0;
  // Appends buffered since the last Compact(), keyed by entity id so
  // compaction order is deterministic. Transient: never serialised.
  struct PendingAppend {
    std::vector<std::pair<BinId, uint32_t>> bins;
    uint64_t records = 0;
  };
  std::map<EntityId, PendingAppend> pending_;
};

/// Which side of the linkage a record stream feeds: the left ("E") or
/// right ("I") dataset.
enum class LinkageSide { kE, kI };

/// The dense linkage problem: one shared vocabulary, two history stores.
struct LinkageContext {
  HistoryConfig config;
  BinVocabulary vocab;
  HistoryStore store_e;  // left dataset ("E")
  HistoryStore store_i;  // right dataset ("I")
  /// Keep-alive handle for mapped backings: when the stores view an
  /// SCTX mapping instead of owning heap vectors, this owns the mapping
  /// (an opaque FileContents). Copies of the context share it, so views
  /// stay valid for the lifetime of every copy. Null for built contexts.
  std::shared_ptr<const void> backing;

  /// Builds the context from two finalized datasets. Per-entity binning and
  /// tree construction are data-parallel over `threads` workers (<= 0 means
  /// the library default); vocabulary assignment and the dataset statistics
  /// are order-fixed merges, so the context is identical at every thread
  /// count.
  static LinkageContext Build(const LocationDataset& dataset_e,
                              const LocationDataset& dataset_i,
                              const HistoryConfig& config, int threads = 0);

  /// What one AppendRecords batch did, in terms the incremental linker's
  /// invalidation logic cares about (core/incremental.h): any structural
  /// growth — a new entity, a bin new to the vocabulary, or a known bin
  /// new to an existing entity's history — shifts dataset-level
  /// statistics (|U|, avg|H|, IDF), so every cached pair score goes
  /// stale; pure count increments on existing (entity, bin) pairs leave
  /// untouched pairs' scores bit-identical.
  struct AppendSummary {
    uint64_t records = 0;      // records buffered by this call
    size_t entities = 0;       // distinct entities they touch
    bool new_entities = false; // >= 1 entity absent from the store
    bool new_bins = false;     // >= 1 bin new to vocab or to its entity
  };

  /// Buffers `records` (any order; new or existing entities) for one
  /// side: bins them with the context's HistoryConfig, interns new
  /// (window, cell) bins into the vocabulary's pending set, and queues
  /// per-entity deltas on the side's store. Readers see nothing until
  /// Compact().
  AppendSummary AppendRecords(LinkageSide side,
                              std::span<const Record> records);
  bool has_pending() const;

  /// Applies every buffered append: compacts the vocabulary and rebuilds
  /// whichever stores the new bins or buffered deltas touch. After this,
  /// the context equals LinkageContext::Build over the union of all
  /// records ever ingested, field for field.
  void Compact(int threads = 0);
};

}  // namespace slim

#endif  // SLIM_CORE_LINKAGE_CONTEXT_H_
