#include "core/pairing.h"

#include <algorithm>
#include <cstdint>

#include "common/check.h"

namespace slim {
namespace {

// Shared greedy selection: order all (row, col) pairs by distance (ascending
// for nearest, descending for furthest; ties on (row, col)), then take pairs
// whose row and column are both unused until min(m, n) pairs are selected.
std::vector<BinPair> GreedyDisjointPairs(const std::vector<double>& dist,
                                         size_t m, size_t n, bool nearest) {
  SLIM_CHECK_MSG(dist.size() == m * n, "distance matrix shape mismatch");
  std::vector<BinPair> result;
  if (m == 0 || n == 0) return result;

  std::vector<size_t> order(m * n);
  for (size_t k = 0; k < order.size(); ++k) order[k] = k;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (dist[a] != dist[b]) {
      return nearest ? dist[a] < dist[b] : dist[a] > dist[b];
    }
    return a < b;
  });

  std::vector<char> row_used(m, 0), col_used(n, 0);
  const size_t want = std::min(m, n);
  result.reserve(want);
  for (size_t k : order) {
    const size_t r = k / n;
    const size_t c = k % n;
    if (row_used[r] || col_used[c]) continue;
    row_used[r] = 1;
    col_used[c] = 1;
    result.emplace_back(r, c);
    if (result.size() == want) break;
  }
  return result;
}

}  // namespace

std::vector<BinPair> MutuallyNearestPairs(const std::vector<double>& dist,
                                          size_t m, size_t n) {
  return GreedyDisjointPairs(dist, m, n, /*nearest=*/true);
}

std::vector<BinPair> MutuallyFurthestPairs(const std::vector<double>& dist,
                                           size_t m, size_t n) {
  return GreedyDisjointPairs(dist, m, n, /*nearest=*/false);
}

std::vector<BinPair> AllPairs(size_t m, size_t n) {
  std::vector<BinPair> result;
  result.reserve(m * n);
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < n; ++c) result.emplace_back(r, c);
  }
  return result;
}

MutualPairing MutualNearestAndFurthestPairs(const std::vector<double>& dist,
                                            size_t m, size_t n,
                                            bool need_furthest) {
  SLIM_CHECK_MSG(dist.size() == m * n, "distance matrix shape mismatch");
  MutualPairing out;
  if (m == 0 || n == 0) return out;

  // Fast path: one bin on either side — nearest is the argmin, furthest
  // the argmax; no sort.
  if (m == 1 || n == 1) {
    size_t arg_min = 0, arg_max = 0;
    for (size_t k = 1; k < dist.size(); ++k) {
      if (dist[k] < dist[arg_min]) arg_min = k;
      if (dist[k] > dist[arg_max]) arg_max = k;
    }
    out.nearest.emplace_back(arg_min / n, arg_min % n);
    if (need_furthest) out.furthest.emplace_back(arg_max / n, arg_max % n);
    return out;
  }

  // One shared ascending sort serves both pairings: nearest consumes it
  // front-to-back, furthest back-to-front.
  std::vector<uint32_t> order(m * n);
  for (size_t k = 0; k < order.size(); ++k) {
    order[k] = static_cast<uint32_t>(k);
  }
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (dist[a] != dist[b]) return dist[a] < dist[b];
    return a < b;
  });

  const size_t want = std::min(m, n);
  std::vector<char> row_used(m, 0), col_used(n, 0);
  out.nearest.reserve(want);
  for (uint32_t k : order) {
    const size_t r = k / n;
    const size_t c = k % n;
    if (row_used[r] || col_used[c]) continue;
    row_used[r] = 1;
    col_used[c] = 1;
    out.nearest.emplace_back(r, c);
    if (out.nearest.size() == want) break;
  }
  if (need_furthest) {
    std::fill(row_used.begin(), row_used.end(), 0);
    std::fill(col_used.begin(), col_used.end(), 0);
    out.furthest.reserve(want);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const size_t r = *it / n;
      const size_t c = *it % n;
      if (row_used[r] || col_used[c]) continue;
      row_used[r] = 1;
      col_used[c] = 1;
      out.furthest.emplace_back(r, c);
      if (out.furthest.size() == want) break;
    }
  }
  return out;
}

}  // namespace slim
