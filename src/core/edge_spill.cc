#include "core/edge_spill.h"

#include <algorithm>
#include <mutex>
#include <utility>

#include "common/check.h"
#include "match/matcher.h"

namespace slim {
namespace {

bool EdgeLess(EdgeOrder order, const WeightedEdge& a, const WeightedEdge& b) {
  return order == EdgeOrder::kPair ? PairEdgeOrder(a, b)
                                   : GreedyEdgeOrder(a, b);
}

void SortEdges(EdgeOrder order, std::vector<WeightedEdge>* edges) {
  if (order == EdgeOrder::kPair) {
    std::sort(edges->begin(), edges->end(), PairEdgeOrder);
  } else {
    std::sort(edges->begin(), edges->end(), GreedyEdgeOrder);
  }
}

// The in-memory fallback is an expected degradation (no tmpdir, spill
// device full), but it abandons the memory bound — say so once per
// process, on stderr, without failing the run.
void WarnSpillFallbackOnce(const char* why) {
  static std::once_flag flag;
  std::call_once(flag, [why] {
    std::fprintf(stderr,
                 "slim: edge spill unavailable (%s); "
                 "falling back to in-memory edge buffering\n",
                 why);
  });
}

// Buffered sequential reader over one sorted run. head() is valid after a
// successful Prime() whenever !exhausted().
class RunCursor {
 public:
  RunCursor(std::FILE* file, uint64_t begin_edge, uint64_t count,
            size_t buf_edges)
      : file_(file),
        next_(begin_edge),
        remaining_(count),
        buf_edges_(std::max<size_t>(1, buf_edges)) {}

  bool exhausted() const { return pos_ == buf_.size() && remaining_ == 0; }
  const WeightedEdge& head() const { return buf_[pos_]; }
  void Pop() { ++pos_; }

  /// Refills the buffer when drained. IoError on a short read — a
  /// truncated or corrupt spill must surface as a Status, not a crash.
  Status Prime() {
    if (pos_ < buf_.size() || remaining_ == 0) return Status::Ok();
    const size_t take =
        static_cast<size_t>(std::min<uint64_t>(remaining_, buf_edges_));
    buf_.resize(take);
    pos_ = 0;
    if (std::fseek(file_,
                   static_cast<long>(next_ * sizeof(WeightedEdge)),
                   SEEK_SET) != 0) {
      return Status::IoError("edge spill seek failed");
    }
    if (std::fread(buf_.data(), sizeof(WeightedEdge), take, file_) != take) {
      return Status::IoError(
          "edge spill short read (truncated or corrupt spill file)");
    }
    next_ += take;
    remaining_ -= take;
    return Status::Ok();
  }

 private:
  std::FILE* file_;
  uint64_t next_;       // file position of the next unread edge, in edges
  uint64_t remaining_;  // edges not yet read into the buffer
  size_t buf_edges_;
  std::vector<WeightedEdge> buf_;
  size_t pos_ = 0;
};

// Classic array loser tree over k run cursors: node_[0] holds the winner,
// node_[1..k-1] hold the losers of their subtrees, and exhausted cursors
// rank after every live one. O(log k) per emitted edge; the two edge
// orders are total, so no cross-cursor tie can make the tree's choice
// depend on run boundaries.
class LoserTree {
 public:
  LoserTree(std::vector<RunCursor>* cursors, EdgeOrder order)
      : cursors_(cursors),
        order_(order),
        k_(cursors->size()),
        node_(std::max<size_t>(1, k_), k_) {  // k_ = sentinel "empty"
    for (size_t s = 0; s < k_; ++s) Adjust(s);
  }

  size_t winner() const { return node_[0]; }

  /// Replays leaf `s` (whose head changed) up to the root.
  void Adjust(size_t s) {
    for (size_t t = (s + k_) / 2; t > 0; t /= 2) {
      if (Beats(node_[t], s)) std::swap(s, node_[t]);
    }
    node_[0] = s;
  }

 private:
  // Whether contender a's head precedes contender b's in the merge order.
  // The init sentinel (index k_) beats everything, so it parks each real
  // leaf at its first unplayed node during construction and is displaced
  // off the tree by the time all leaves are adjusted; exhausted cursors
  // rank after every live one, so drained runs sink out of the play.
  bool Beats(size_t a, size_t b) const {
    if (a >= k_) return true;
    if (b >= k_) return false;
    if ((*cursors_)[a].exhausted()) return false;
    if ((*cursors_)[b].exhausted()) return true;
    return EdgeLess(order_, (*cursors_)[a].head(), (*cursors_)[b].head());
  }

  std::vector<RunCursor>* cursors_;
  EdgeOrder order_;
  size_t k_;
  std::vector<size_t> node_;
};

}  // namespace

EdgeSpill::EdgeSpill(EdgeSpillOptions options) : options_(std::move(options)) {
  if (!options_.to_disk) return;
  file_ = options_.spill_path.empty()
              ? std::tmpfile()
              : std::fopen(options_.spill_path.c_str(), "wb+");
  if (file_ == nullptr) WarnSpillFallbackOnce("cannot create spill file");
}

EdgeSpill::~EdgeSpill() {
  if (file_ != nullptr) std::fclose(file_);
  if (resorted_file_ != nullptr) std::fclose(resorted_file_);
  if (!options_.spill_path.empty()) std::remove(options_.spill_path.c_str());
}

void EdgeSpill::Append(std::vector<WeightedEdge> edges) {
  SLIM_CHECK_MSG(!sealed_, "EdgeSpill::Append after Seal");
  count_ += edges.size();
  if (buffer_.empty()) {
    buffer_ = std::move(edges);
  } else {
    buffer_.insert(buffer_.end(), edges.begin(), edges.end());
  }
  if (file_ != nullptr &&
      buffer_.size() * sizeof(WeightedEdge) >= options_.run_bytes) {
    SpillRun();
  }
}

Status EdgeSpill::Seal() {
  if (sealed_) return Status::Ok();
  sealed_ = true;
  if (file_ != nullptr && !buffer_.empty()) SpillRun();
  return Status::Ok();
}

void EdgeSpill::SpillRun() {
  if (buffer_.empty()) return;
  SortEdges(options_.run_order, &buffer_);
  const size_t n = buffer_.size();
  const uint64_t begin =
      runs_.empty() ? 0 : runs_.back().begin + runs_.back().count;
  // Flush eagerly: the recorded run extents promise the bytes are in the
  // file (readers fseek+fread through a separate code path), and a full
  // stdio buffer silently deferring the write would break that.
  if (std::fwrite(buffer_.data(), sizeof(WeightedEdge), n, file_) != n ||
      std::fflush(file_) != 0) {
    // Spill device full: read the complete prior runs back and degrade to
    // memory — correctness over the memory bound. The failed (possibly
    // partial) write is past every recorded run extent, so the readback
    // only touches intact bytes.
    WarnSpillFallbackOnce("spill write failed");
    std::vector<WeightedEdge> all(static_cast<size_t>(begin));
    std::rewind(file_);
    SLIM_CHECK_MSG(begin == 0 ||
                       std::fread(all.data(), sizeof(WeightedEdge),
                                  all.size(), file_) == all.size(),
                   "edge spill readback failed");
    std::fclose(file_);
    file_ = nullptr;
    all.insert(all.end(), buffer_.begin(), buffer_.end());
    buffer_ = std::move(all);
    runs_.clear();
    return;
  }
  runs_.push_back({begin, n});
  spill_bytes_written_ += static_cast<uint64_t>(n) * sizeof(WeightedEdge);
  buffer_.clear();
  buffer_.shrink_to_fit();
}

Status EdgeSpill::ResortRuns(EdgeOrder order) {
  std::FILE* out = std::tmpfile();
  if (out == nullptr) {
    return Status::IoError("cannot create resort spill file");
  }
  std::vector<WeightedEdge> run_buf;
  for (const Run& run : runs_) {
    run_buf.resize(static_cast<size_t>(run.count));
    if (std::fseek(file_,
                   static_cast<long>(run.begin * sizeof(WeightedEdge)),
                   SEEK_SET) != 0 ||
        std::fread(run_buf.data(), sizeof(WeightedEdge), run_buf.size(),
                   file_) != run_buf.size()) {
      std::fclose(out);
      return Status::IoError(
          "edge spill short read (truncated or corrupt spill file)");
    }
    SortEdges(order, &run_buf);
    if (std::fwrite(run_buf.data(), sizeof(WeightedEdge), run_buf.size(),
                    out) != run_buf.size()) {
      std::fclose(out);
      return Status::IoError("edge spill resort write failed");
    }
    spill_bytes_written_ +=
        static_cast<uint64_t>(run.count) * sizeof(WeightedEdge);
  }
  resorted_file_ = out;
  resorted_runs_ = runs_;  // identical extents, rewritten sequentially
  resorted_valid_ = true;
  return Status::Ok();
}

Status EdgeSpill::MergeRuns(std::FILE* file, const std::vector<Run>& runs,
                            EdgeOrder order,
                            const std::function<void(const WeightedEdge&)>& fn) {
  ++merge_passes_;
  if (runs.empty()) return Status::Ok();
  const size_t k = runs.size();
  // The merge's read buffers share the run budget: k cursors plus slack.
  const size_t per_cursor = std::max<size_t>(
      4096, options_.run_bytes / sizeof(WeightedEdge) / (k + 1));
  std::vector<RunCursor> cursors;
  cursors.reserve(k);
  for (const Run& run : runs) {
    cursors.emplace_back(file, run.begin, run.count, per_cursor);
  }
  for (RunCursor& c : cursors) {
    if (Status s = c.Prime(); !s.ok()) return s;
  }
  LoserTree tree(&cursors, order);
  while (true) {
    const size_t w = tree.winner();
    if (w >= k || cursors[w].exhausted()) break;
    fn(cursors[w].head());
    cursors[w].Pop();
    if (Status s = cursors[w].Prime(); !s.ok()) return s;
    tree.Adjust(w);
  }
  return Status::Ok();
}

Status EdgeSpill::Scan(EdgeOrder order,
                       const std::function<void(const WeightedEdge&)>& fn) {
  SLIM_CHECK_MSG(sealed_, "EdgeSpill::Scan before Seal");
  if (file_ == nullptr) {
    // Memory mode: a full sort replaces the merge; same total orders, same
    // sequence.
    SortEdges(order, &buffer_);
    for (const WeightedEdge& e : buffer_) fn(e);
    return Status::Ok();
  }
  if (order == options_.run_order) return MergeRuns(file_, runs_, order, fn);
  if (!resorted_valid_) {
    if (Status s = ResortRuns(order); !s.ok()) return s;
  }
  return MergeRuns(resorted_file_, resorted_runs_, order, fn);
}

}  // namespace slim
