// SLIM: Scalable Linkage of Mobility Histories — Algorithm 1 of the paper.
//
// Pipeline (a staged run over the dense LinkageContext):
//   1. context  — intern both datasets into the shared bin vocabulary and
//                 two CSR history stores (core/linkage_context.h)
//   2. candidates — build the configured CandidateGenerator (LSH, brute
//                 force, or grid blocking; core/candidates.h)
//   3. scoring  — pairwise similarity over the proposed pairs -> weighted
//                 bipartite graph over positive scores
//   4. matching — maximum-sum matching
//   5. threshold — fit the 2-component GMM over matched edge weights and
//                 keep only links above the detected stop threshold.
#ifndef SLIM_CORE_SLIM_H_
#define SLIM_CORE_SLIM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidates.h"
#include "core/history.h"
#include "core/linkage_context.h"
#include "core/similarity.h"
#include "core/threshold.h"
#include "data/dataset.h"
#include "lsh/signature.h"
#include "match/matcher.h"

namespace slim {

/// Which assignment solver performs the final matching.
enum class MatcherKind {
  kGreedy,     // the paper's heuristic (default)
  kHungarian,  // exact; O(n^3), for small instances / ablation
};

/// Full SLIM configuration. Defaults follow the paper's Sec. 5 pipeline
/// defaults (spatial level 12, 15-minute windows, b = 0.5, alpha = 2
/// km/min, 4096 LSH buckets) — except the LSH operating point, which
/// deliberately deviates to t = 0.5 at signature level 10 (docs/TUNING.md
/// has the reasoning; tests/test_build_smoke.cc guards these values).
struct SlimConfig {
  HistoryConfig history;
  SimilarityConfig similarity;

  /// Which candidate generator proposes the pairs to score. kBruteForce is
  /// the paper's "no-LSH SLIM" reference (every cross-dataset pair); kGrid
  /// is ST-Link-style co-visit blocking. docs/TUNING.md discusses the
  /// trade-offs.
  CandidateKind candidates = CandidateKind::kLsh;
  /// LSH parameters (used when candidates == kLsh). Defaults to a
  /// deliberately coarse operating point (level 10, 2-hour steps, t = 0.5)
  /// rather than LshConfig's own Sec. 5.3.2 values — docs/TUNING.md
  /// explains the level/step/threshold trade-offs and when to deviate.
  LshConfig lsh{.similarity_threshold = 0.5,
                .signature_spatial_level = 10,
                .temporal_step_windows = 8};
  /// Grid-blocking parameters (used when candidates == kGrid).
  GridBlockingConfig grid;

  ThresholdMethod threshold_method = ThresholdMethod::kGmmExpectedF1;
  /// When false, the matching is emitted unfiltered (no stop threshold) —
  /// the "full matching" the paper argues against; kept for ablation.
  bool apply_stop_threshold = true;

  MatcherKind matcher = MatcherKind::kGreedy;

  /// Worker threads for every pipeline stage (context building, candidate
  /// generation, pairwise scoring, edge assembly); <= 0 means the library
  /// default (the SLIM_THREADS environment variable, else all hardware
  /// threads — see common/parallel.h). Results are identical at every
  /// thread count.
  int threads = 0;

  /// Right-side shard count K for LinkSharded (core/sharded.h). 0 derives
  /// the count from shard_memory_budget_bytes (1 when no budget is set
  /// either); K >= 1 forces K contiguous EntityIdx shards. Links are
  /// bit-identical at every shard count.
  int shards = 0;

  /// Left-side shard count L for LinkSharded. The driver scores L x K
  /// blocks, so the candidate index and scoring working set scale with one
  /// block of each side instead of the full left store. <= 1 keeps the left
  /// side whole. Links are bit-identical at every (L, K).
  int left_shards = 0;

  /// Approximate peak-memory budget for the candidate + scoring block of
  /// one shard, in bytes. Only consulted when shards == 0: the driver
  /// derives the smallest shard count whose estimated per-block working set
  /// fits the budget (see EstimateShardPlan in core/sharded.h for the
  /// CurrentPeakRssBytes-calibrated estimate). 0 means unbounded.
  uint64_t shard_memory_budget_bytes = 0;

  /// When non-empty, LinkSharded runs against an mmap-backed SCTX context
  /// (core/sctx.h) at this path instead of a heap-resident one: an existing
  /// file is mapped directly (the datasets are not re-interned); a missing
  /// file is built from the datasets, serialized, and the heap copy freed
  /// before mapping. Scores and links are bit-identical either way.
  std::string sctx_path;

  /// Run-buffer budget for the sharded driver's external edge sort
  /// (core/edge_spill.h): edges accumulate up to this many bytes before one
  /// sorted run spills; the k-way merge's read buffers share the same
  /// bound. Only a memory/IO trade-off — never affects links.
  uint64_t spill_run_bytes = uint64_t{64} << 20;

  /// When false, LinkSharded skips materialising LinkageResult::graph (the
  /// full positive-score edge set) and streams edges straight into the
  /// greedy matcher in score order — the O(edges) -> O(matching) memory
  /// step the 1M-scale preset needs. Links, matching, and threshold are
  /// bit-identical; only `graph` comes back empty. Ignored (treated as
  /// true) by the monolithic Link() and by the Hungarian matcher, which
  /// needs the whole graph resident anyway.
  bool keep_graph = true;
};

/// One linked entity pair (u from E, v from I) and its similarity score.
struct LinkedEntityPair {
  EntityId u = 0;
  EntityId v = 0;
  double score = 0.0;

  bool operator==(const LinkedEntityPair&) const = default;
};

/// Everything the linkage produced, including the intermediate artifacts
/// the evaluation reports on.
struct LinkageResult {
  /// Final links (above the stop threshold when enabled), sorted by u.
  std::vector<LinkedEntityPair> links;
  /// The full maximum-sum matching before thresholding.
  Matching matching;
  /// The scored bipartite graph (positive similarity scores only), sorted
  /// by (u, v). Used for Hit-Precision@k evaluation.
  BipartiteGraph graph;

  /// Stop-threshold decision; `threshold_valid` is false when the detector
  /// could not run (e.g. fewer than two matched edges) in which case all
  /// matched pairs are kept.
  ThresholdDecision threshold;
  bool threshold_valid = false;

  /// Scoring instrumentation (record comparisons, alibi pairs, distance-
  /// cache hits/misses, ...).
  SimilarityStats stats;
  /// Which candidate generator produced the scored pairs.
  CandidateKind candidates_used = CandidateKind::kLsh;
  /// Pairs considered after filtering vs the full cross product.
  uint64_t candidate_pairs = 0;
  uint64_t possible_pairs = 0;

  /// Wall-clock seconds per phase. seconds_lsh times the candidate stage
  /// whatever the generator (the name is kept for bench-record
  /// compatibility).
  double seconds_histories = 0.0;
  double seconds_lsh = 0.0;
  double seconds_scoring = 0.0;
  double seconds_matching = 0.0;
  double seconds_total = 0.0;

  /// Peak process RSS (bytes) sampled at the end of each phase, in phase
  /// order; monotone non-decreasing (see common/resource.h). 0 on
  /// platforms without getrusage.
  uint64_t rss_peak_histories = 0;
  uint64_t rss_peak_lsh = 0;
  uint64_t rss_peak_scoring = 0;
  uint64_t rss_peak_matching = 0;
  uint64_t rss_peak_total = 0;

  /// Sharded-driver provenance (LinkSharded; 1 / 0 / false on the
  /// monolithic path). spilled_edges counts edges that passed through the
  /// per-block spill before the merge; spill_on_disk says whether the spill
  /// actually reached a temporary file (it degrades to memory when no
  /// tmpfile is available). spill_bytes_written totals spill-file writes
  /// including the resort pass; merge_passes counts k-way merges the
  /// external sort ran (core/edge_spill.h).
  int shards_used = 1;
  int left_shards_used = 1;
  uint64_t spilled_edges = 0;
  bool spill_on_disk = false;
  uint64_t spill_bytes_written = 0;
  int merge_passes = 0;
};

/// The SLIM linkage algorithm (Alg. 1). Construct once per configuration and
/// call Link(); the linker is stateless across calls.
class SlimLinker {
 public:
  explicit SlimLinker(SlimConfig config);

  const SlimConfig& config() const { return config_; }

  /// Links dataset_e (left, "E") to dataset_i (right, "I"). Both datasets
  /// must be finalized. Returns the full LinkageResult; an empty result
  /// (no links) is success, not an error.
  Result<LinkageResult> Link(const LocationDataset& dataset_e,
                             const LocationDataset& dataset_i) const;

  /// The sharded, memory-bounded driver (core/sharded.h): candidates and
  /// scoring run per L x K block — config().left_shards x config().shards
  /// of them, or as many right shards as
  /// config().shard_memory_budget_bytes demands — with the block edges
  /// streaming through an external sort, then one global matching +
  /// threshold pass. Links, matching, graph (when kept), and stats sums
  /// are bit-identical to Link() at every (L, K, threads); peak memory of
  /// the candidate + scoring stages scales with the largest block instead
  /// of the full stores. With config().sctx_path set, the context is
  /// serialized/mapped via core/sctx.h instead of held on the heap.
  /// Implemented in core/sharded.cc.
  Result<LinkageResult> LinkSharded(const LocationDataset& dataset_e,
                                    const LocationDataset& dataset_i) const;

  /// LinkSharded's block + merge stages over an already-built context —
  /// e.g. one mapped from an SCTX file (core/sctx.h) so the datasets never
  /// re-intern. `context` must outlive the call; result timings report 0
  /// for the context-build phase. When config().candidates == kLsh the
  /// context must have its window trees (HistoryStore::has_trees).
  Result<LinkageResult> LinkShardedContext(const LinkageContext& context)
      const;

 private:
  SlimConfig config_;
};

class EdgeSpill;  // core/edge_spill.h

namespace internal {

/// Shared pipeline tail used by both drivers so they cannot drift: fixes
/// the canonical (u, v) edge order, builds the scored graph, runs the
/// matching, detects the stop threshold, and emits the final links into
/// `result` (also filling seconds_matching / rss_peak_matching). `edges`
/// may arrive in any order; equal results in, equal results out.
void SealLinkage(const SlimConfig& config, std::vector<WeightedEdge> edges,
                 LinkageResult* result);

/// The streaming form of SealLinkage over an external edge sort
/// (core/edge_spill.h): seals the spill, then either materialises the
/// (u, v)-ordered stream into the graph and delegates to SealLinkage
/// (keep_graph, or the Hungarian matcher, which needs the graph resident),
/// or feeds the (weight desc, u, v)-ordered stream straight into the
/// incremental greedy matcher so only the matching is ever held in memory.
/// Both paths produce bit-identical links/matching/threshold; the
/// streaming path leaves result->graph empty. IoError from a truncated or
/// corrupt spill propagates; `result` is unusable on error.
Status SealLinkageStreamed(const SlimConfig& config, EdgeSpill* spill,
                           LinkageResult* result);

}  // namespace internal

}  // namespace slim

#endif  // SLIM_CORE_SLIM_H_
