// Umbrella header: the full public API of the SLIM library.
//
// Quickstart:
//   #include "slim.h"
//   slim::SlimConfig config;                       // paper defaults
//   slim::SlimLinker linker(config);
//   auto result = linker.Link(dataset_e, dataset_i);
//   for (const auto& link : result->links) { ... }
#ifndef SLIM_SLIM_H_
#define SLIM_SLIM_H_

#include "common/cpu.h"         // IWYU pragma: export
#include "common/parallel.h"    // IWYU pragma: export
#include "common/rng.h"         // IWYU pragma: export
#include "common/status.h"      // IWYU pragma: export
#include "common/strings.h"     // IWYU pragma: export

#include "geo/cell_id.h"         // IWYU pragma: export
#include "geo/covering.h"        // IWYU pragma: export
#include "geo/distance_cache.h"  // IWYU pragma: export
#include "geo/latlng.h"          // IWYU pragma: export

#include "temporal/time_window.h"  // IWYU pragma: export
#include "temporal/window_tree.h"  // IWYU pragma: export

#include "data/cab_generator.h"     // IWYU pragma: export
#include "data/checkin_generator.h" // IWYU pragma: export
#include "data/commute_generator.h" // IWYU pragma: export
#include "data/csv.h"               // IWYU pragma: export
#include "data/dataset.h"           // IWYU pragma: export
#include "data/dataset_io.h"        // IWYU pragma: export
#include "data/record.h"            // IWYU pragma: export
#include "data/sampler.h"           // IWYU pragma: export
#include "data/sbin.h"              // IWYU pragma: export

#include "stats/gmm1d.h"      // IWYU pragma: export
#include "stats/gmm2d.h"      // IWYU pragma: export
#include "stats/histogram.h"  // IWYU pragma: export
#include "stats/kmeans.h"     // IWYU pragma: export
#include "stats/kneedle.h"    // IWYU pragma: export
#include "stats/lambert_w.h"  // IWYU pragma: export
#include "stats/otsu.h"       // IWYU pragma: export

#include "match/bipartite.h"  // IWYU pragma: export
#include "match/matcher.h"    // IWYU pragma: export

#include "lsh/lsh_index.h"  // IWYU pragma: export
#include "lsh/signature.h"  // IWYU pragma: export

#include "core/candidates.h"       // IWYU pragma: export
#include "core/edge_spill.h"       // IWYU pragma: export
#include "core/history.h"          // IWYU pragma: export
#include "core/linkage_context.h"  // IWYU pragma: export
#include "core/pairing.h"          // IWYU pragma: export
#include "core/proximity.h"        // IWYU pragma: export
#include "core/score_kernel.h"     // IWYU pragma: export
#include "core/sctx.h"             // IWYU pragma: export
#include "core/sharded.h"          // IWYU pragma: export
#include "core/similarity.h"       // IWYU pragma: export
#include "core/slim.h"        // IWYU pragma: export
#include "core/threshold.h"   // IWYU pragma: export
#include "core/tuning.h"      // IWYU pragma: export

#include "baselines/gm.h"       // IWYU pragma: export
#include "baselines/st_link.h"  // IWYU pragma: export

#include "eval/links_io.h"    // IWYU pragma: export
#include "eval/metrics.h"     // IWYU pragma: export
#include "eval/report.h"      // IWYU pragma: export
#include "eval/robustness.h"  // IWYU pragma: export
#include "eval/runner.h"      // IWYU pragma: export
#include "eval/table.h"       // IWYU pragma: export

#endif  // SLIM_SLIM_H_
