// Wire protocol of the slim_serve daemon: "slim-serve-v1".
//
// Newline-delimited text over a local stream socket. Every request is one
// line; every response is one line beginning "OK" or
// "ERR <code> <message>". The only unsolicited traffic is "EVENT ..."
// lines pushed to connections that issued SUBSCRIBE. Scores are formatted
// with FormatFixed(score, 6) — the exact formatting of the links CSV
// (eval/links_io.h), so a TOPK score and a SAVE'd CSV row agree byte for
// byte. Full protocol reference: docs/SERVING.md.
//
// Commands (case-sensitive, single-space separated):
//   INGEST <A|B> (<entity> <lat> <lng> <timestamp>)+
//   LINK
//   TOPK <entity> [k]
//   SUBSCRIBE
//   STATS
//   SAVE <path>
//   SHUTDOWN
#ifndef SLIM_SERVE_PROTOCOL_H_
#define SLIM_SERVE_PROTOCOL_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/linkage_context.h"
#include "data/record.h"

namespace slim {

/// Hard cap on one protocol line (request or response), terminator
/// excluded. The server rejects longer requests with ERR too-long and
/// discards input until the next newline.
inline constexpr size_t kMaxProtocolLineBytes = 64 * 1024;

/// Protocol identifier returned in the handshake.
inline constexpr std::string_view kServeProtocolVersion = "slim-serve-v1";

enum class ServeCommandKind {
  kIngest,
  kLink,
  kTopK,
  kSubscribe,
  kStats,
  kSave,
  kShutdown,
};

/// One parsed request line.
struct ServeCommand {
  ServeCommandKind kind = ServeCommandKind::kLink;
  LinkageSide side = LinkageSide::kE;  // INGEST
  std::vector<Record> records;         // INGEST
  EntityId entity = 0;                 // TOPK
  size_t k = 5;                        // TOPK (default 5)
  std::string path;                    // SAVE
};

/// Parses one request line (no terminator). Errors carry the wire error
/// code as the first word of the message ("bad-command ..." /
/// "bad-argument ..."), ready for FormatServeError.
Result<ServeCommand> ParseServeCommand(std::string_view line);

/// "ERR <code-and-message>" — `detail` must already lead with the error
/// code word (bad-command, bad-argument, too-long, shutdown, io).
std::string FormatServeError(std::string_view detail);

/// Score formatting shared with the links CSV (6-digit FormatFixed).
std::string FormatServeScore(double score);

}  // namespace slim

#endif  // SLIM_SERVE_PROTOCOL_H_
