#include "serve/protocol.h"

#include <string>

#include "common/strings.h"

namespace slim {
namespace {

Status BadCommand(std::string_view what) {
  return Status::InvalidArgument("bad-command " + std::string(what));
}

Status BadArgument(std::string_view what) {
  return Status::InvalidArgument("bad-argument " + std::string(what));
}

}  // namespace

Result<ServeCommand> ParseServeCommand(std::string_view line) {
  if (line.size() > kMaxProtocolLineBytes) {
    return Status::InvalidArgument("too-long line exceeds " +
                                   std::to_string(kMaxProtocolLineBytes) +
                                   " bytes");
  }
  const std::vector<std::string_view> tokens =
      SplitString(StripAsciiWhitespace(line), ' ');
  if (tokens.empty() || tokens.front().empty()) {
    return BadCommand("empty line");
  }
  const std::string_view verb = tokens.front();
  ServeCommand cmd;

  if (verb == "INGEST") {
    cmd.kind = ServeCommandKind::kIngest;
    if (tokens.size() < 6 || (tokens.size() - 2) % 4 != 0) {
      return BadArgument(
          "INGEST expects <A|B> then (entity lat lng timestamp) groups");
    }
    if (tokens[1] == "A") {
      cmd.side = LinkageSide::kE;
    } else if (tokens[1] == "B") {
      cmd.side = LinkageSide::kI;
    } else {
      return BadArgument("INGEST side must be A or B");
    }
    cmd.records.reserve((tokens.size() - 2) / 4);
    for (size_t i = 2; i + 3 < tokens.size(); i += 4) {
      const auto entity = ParseInt64(tokens[i]);
      const auto lat = ParseDouble(tokens[i + 1]);
      const auto lng = ParseDouble(tokens[i + 2]);
      const auto timestamp = ParseInt64(tokens[i + 3]);
      if (!entity.ok() || !lat.ok() || !lng.ok() || !timestamp.ok()) {
        return BadArgument("INGEST record fields must be numeric");
      }
      if (*lat < -90.0 || *lat > 90.0 || *lng < -180.0 || *lng > 180.0) {
        return BadArgument("INGEST coordinates out of range");
      }
      cmd.records.push_back({*entity, {*lat, *lng}, *timestamp});
    }
    return cmd;
  }
  if (verb == "LINK") {
    if (tokens.size() != 1) return BadArgument("LINK takes no arguments");
    cmd.kind = ServeCommandKind::kLink;
    return cmd;
  }
  if (verb == "TOPK") {
    if (tokens.size() != 2 && tokens.size() != 3) {
      return BadArgument("TOPK expects <entity> [k]");
    }
    cmd.kind = ServeCommandKind::kTopK;
    const auto entity = ParseInt64(tokens[1]);
    if (!entity.ok()) return BadArgument("TOPK entity must be an integer");
    cmd.entity = *entity;
    if (tokens.size() == 3) {
      const auto k = ParseInt64(tokens[2]);
      if (!k.ok() || *k < 1) return BadArgument("TOPK k must be >= 1");
      cmd.k = static_cast<size_t>(*k);
    }
    return cmd;
  }
  if (verb == "SUBSCRIBE") {
    if (tokens.size() != 1) return BadArgument("SUBSCRIBE takes no arguments");
    cmd.kind = ServeCommandKind::kSubscribe;
    return cmd;
  }
  if (verb == "STATS") {
    if (tokens.size() != 1) return BadArgument("STATS takes no arguments");
    cmd.kind = ServeCommandKind::kStats;
    return cmd;
  }
  if (verb == "SAVE") {
    if (tokens.size() != 2) return BadArgument("SAVE expects <path>");
    cmd.kind = ServeCommandKind::kSave;
    cmd.path = std::string(tokens[1]);
    return cmd;
  }
  if (verb == "SHUTDOWN") {
    if (tokens.size() != 1) return BadArgument("SHUTDOWN takes no arguments");
    cmd.kind = ServeCommandKind::kShutdown;
    return cmd;
  }
  return BadCommand("unknown command \"" + std::string(verb) + "\"");
}

std::string FormatServeError(std::string_view detail) {
  return "ERR " + std::string(detail);
}

std::string FormatServeScore(double score) { return FormatFixed(score, 6); }

}  // namespace slim
