#include "serve/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace slim {
namespace {

/// Per-connection state. Connections are kept in accept order, which fixes
/// the order subscribers receive events in.
struct Connection {
  int fd = -1;
  std::string in;           // bytes received, not yet framed into lines
  bool discarding = false;  // oversized request: drop until next '\n'
  bool subscribed = false;
};

/// Blocking best-effort write of `line` + '\n'. Returns false when the peer
/// is gone (the caller drops the connection). MSG_NOSIGNAL keeps a dead
/// subscriber from killing the daemon with SIGPIPE.
bool WriteLine(int fd, std::string_view line) {
  std::string framed(line);
  framed.push_back('\n');
  size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n =
        ::send(fd, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

void CloseAll(int listen_fd, std::vector<Connection>* conns) {
  for (Connection& c : *conns) {
    if (c.fd >= 0) ::close(c.fd);
  }
  conns->clear();
  ::close(listen_fd);
}

}  // namespace

Status RunServer(const ServeOptions& options, LinkageService* service,
                 const std::atomic<bool>* stop) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options.socket_path);
  }
  std::memcpy(addr.sun_path, options.socket_path.c_str(),
              options.socket_path.size() + 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  ::unlink(options.socket_path.c_str());  // stale socket from a crash
  if (::bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd);
    return Status::IoError("bind(" + options.socket_path +
                           "): " + std::string(std::strerror(err)));
  }
  if (::listen(listen_fd, 16) != 0) {
    const int err = errno;
    ::close(listen_fd);
    ::unlink(options.socket_path.c_str());
    return Status::IoError("listen(): " + std::string(std::strerror(err)));
  }

  std::vector<Connection> conns;
  bool shutting_down = false;
  while (!shutting_down && (stop == nullptr || !stop->load())) {
    std::vector<pollfd> fds;
    fds.push_back({listen_fd, POLLIN, 0});
    for (const Connection& c : conns) fds.push_back({c.fd, POLLIN, 0});

    const int ready =
        ::poll(fds.data(), fds.size(),
               options.poll_interval_ms > 0 ? options.poll_interval_ms : 200);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: loop re-checks `stop`
      CloseAll(listen_fd, &conns);
      ::unlink(options.socket_path.c_str());
      return Status::IoError("poll(): " + std::string(std::strerror(errno)));
    }
    if (ready == 0) continue;

    if (fds[0].revents & POLLIN) {
      const int client = ::accept(listen_fd, nullptr, nullptr);
      if (client >= 0) {
        if (WriteLine(client, service->HelloLine())) {
          conns.push_back({client, {}, false, false});
        } else {
          ::close(client);
        }
      }
    }

    // Read from ready connections; `conns` may gain members via accept
    // above but fds[i + 1] still pairs with the first conns.size() entries.
    for (size_t i = 0; i + 1 < fds.size(); ++i) {
      Connection& c = conns[i];
      if (!(fds[i + 1].revents & (POLLIN | POLLHUP | POLLERR))) continue;
      char buf[4096];
      const ssize_t n = ::recv(c.fd, buf, sizeof(buf), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
        ::close(c.fd);
        c.fd = -1;  // reaped below
        continue;
      }
      c.in.append(buf, static_cast<size_t>(n));

      // Frame complete lines. Executing here — inside the poll loop, in
      // fd order — is what makes a scripted session deterministic.
      size_t newline;
      while (c.fd >= 0 && (newline = c.in.find('\n')) != std::string::npos) {
        std::string line = c.in.substr(0, newline);
        c.in.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (c.discarding) {
          c.discarding = false;  // tail of an oversized request
          continue;
        }
        const ServeReply reply = service->Execute(line);
        if (!WriteLine(c.fd, reply.line)) {
          ::close(c.fd);
          c.fd = -1;
          break;
        }
        if (reply.subscribe) c.subscribed = true;
        for (const std::string& event : reply.events) {
          for (Connection& sub : conns) {
            if (sub.fd < 0 || !sub.subscribed) continue;
            if (!WriteLine(sub.fd, event)) {
              ::close(sub.fd);
              sub.fd = -1;
            }
          }
        }
        if (reply.shutdown) {
          shutting_down = true;
          break;
        }
      }
      if (c.fd >= 0 && !c.discarding && c.in.size() > kMaxProtocolLineBytes) {
        // Request exceeds the line cap with no newline yet: answer once,
        // then drop bytes until the terminator shows up.
        if (!WriteLine(c.fd, FormatServeError(
                                 "too-long line exceeds " +
                                 std::to_string(kMaxProtocolLineBytes) +
                                 " bytes"))) {
          ::close(c.fd);
          c.fd = -1;
        } else {
          c.in.clear();
          c.discarding = true;
        }
      }
    }

    std::vector<Connection> alive;
    alive.reserve(conns.size());
    for (Connection& c : conns) {
      if (c.fd >= 0) alive.push_back(std::move(c));
    }
    conns = std::move(alive);
  }

  CloseAll(listen_fd, &conns);
  ::unlink(options.socket_path.c_str());
  return Status::Ok();
}

}  // namespace slim
