// Unix-domain-socket line server wrapping LinkageService.
//
// Single-threaded by design: one poll loop accepts connections, reads
// newline-framed requests, and executes them strictly in arrival order —
// so epochs, responses, and subscriber event streams are deterministic
// for any scripted client sequence (the linkage work inside an epoch
// still parallelises over SlimConfig::threads). Responses and events are
// written before the next request is read.
//
// Framing: requests end in '\n' (a trailing '\r' is stripped). A request
// longer than kMaxProtocolLineBytes is answered with ERR too-long and
// the connection's input is discarded up to the next newline. A client
// that disconnects mid-line is dropped silently.
//
// Shutdown: a SHUTDOWN command answers "OK bye", then the server closes
// every connection, unlinks the socket path, and returns. An external
// stop flag (SIGINT/SIGTERM in slim_serve) is honoured at the next poll
// tick, same cleanup.
#ifndef SLIM_SERVE_SERVER_H_
#define SLIM_SERVE_SERVER_H_

#include <atomic>
#include <string>

#include "common/status.h"
#include "serve/service.h"

namespace slim {

struct ServeOptions {
  /// Filesystem path of the listening AF_UNIX socket. A stale file at
  /// the path is unlinked before binding.
  std::string socket_path;
  /// How often the loop wakes to check `stop` when idle.
  int poll_interval_ms = 200;
};

/// Binds, listens, and serves until SHUTDOWN or `*stop` becomes true.
/// Returns Ok on a clean shutdown, an error Status when the socket could
/// not be created or bound.
Status RunServer(const ServeOptions& options, LinkageService* service,
                 const std::atomic<bool>* stop = nullptr);

}  // namespace slim

#endif  // SLIM_SERVE_SERVER_H_
