#include "serve/service.h"

#include <string>
#include <utility>

#include "common/build_info.h"
#include "common/strings.h"
#include "core/candidates.h"
#include "eval/links_io.h"

namespace slim {
namespace {

void AppendLinkEvents(int epoch, char sign,
                      const std::vector<LinkedEntityPair>& links,
                      std::vector<std::string>* events) {
  for (const LinkedEntityPair& link : links) {
    events->push_back("EVENT epoch=" + std::to_string(epoch) + " link " +
                      sign + " " + std::to_string(link.u) + " " +
                      std::to_string(link.v) + " " +
                      FormatServeScore(link.score));
  }
}

}  // namespace

LinkageService::LinkageService(SlimConfig config)
    : linker_(std::move(config)) {}

std::string LinkageService::HelloLine() const {
  return std::string("HELLO ") + std::string(kServeProtocolVersion) +
         " build=" + BuildGitDescribe() +
         " candidates=" + std::string(CandidateKindName(
                              linker_.config().candidates));
}

ServeReply LinkageService::Execute(std::string_view line) {
  ServeReply reply;
  if (line.size() > kMaxProtocolLineBytes) {
    reply.line = FormatServeError("too-long line exceeds " +
                                  std::to_string(kMaxProtocolLineBytes) +
                                  " bytes");
    return reply;
  }
  auto parsed = ParseServeCommand(line);
  if (!parsed.ok()) {
    reply.line = FormatServeError(parsed.status().message());
    return reply;
  }
  if (shut_down_) {
    reply.line = FormatServeError("shutdown daemon is shutting down");
    return reply;
  }
  ServeCommand& cmd = parsed.value();
  switch (cmd.kind) {
    case ServeCommandKind::kIngest: {
      linker_.Ingest(cmd.side, cmd.records);
      reply.line =
          "OK ingested=" + std::to_string(cmd.records.size()) +
          " pending_a=" +
          std::to_string(linker_.pending_records(LinkageSide::kE)) +
          " pending_b=" +
          std::to_string(linker_.pending_records(LinkageSide::kI));
      return reply;
    }
    case ServeCommandKind::kLink: {
      auto epoch = linker_.LinkEpoch();
      if (!epoch.ok()) {
        reply.line = FormatServeError("io " +
                                      std::string(epoch.status().message()));
        return reply;
      }
      const EpochResult& r = epoch.value();
      reply.line =
          "OK epoch=" + std::to_string(r.epoch) +
          " links=" + std::to_string(r.linkage.links.size()) +
          " added=" + std::to_string(r.added_links.size()) +
          " removed=" + std::to_string(r.removed_links.size()) +
          " scored=" + std::to_string(r.incremental.pairs_scored) +
          " reused=" + std::to_string(r.incremental.pairs_reused) +
          " threshold=" +
          (r.linkage.threshold_valid
               ? FormatServeScore(r.linkage.threshold.threshold)
               : "none");
      AppendLinkEvents(r.epoch, '-', r.removed_links, &reply.events);
      AppendLinkEvents(r.epoch, '+', r.added_links, &reply.events);
      reply.events.push_back(
          "EVENT epoch=" + std::to_string(r.epoch) +
          " sealed links=" + std::to_string(r.linkage.links.size()));
      return reply;
    }
    case ServeCommandKind::kTopK: {
      const std::vector<LinkedEntityPair> top =
          linker_.TopK(cmd.entity, cmd.k);
      reply.line = "OK matches=" + std::to_string(top.size());
      for (const LinkedEntityPair& match : top) {
        reply.line += " " + std::to_string(match.v) + ":" +
                      FormatServeScore(match.score);
      }
      return reply;
    }
    case ServeCommandKind::kSubscribe: {
      reply.subscribe = true;
      reply.line = "OK subscribed epoch=" + std::to_string(linker_.epoch());
      return reply;
    }
    case ServeCommandKind::kStats: {
      const LinkageContext& ctx = linker_.context();
      reply.line =
          "OK epoch=" + std::to_string(linker_.epoch()) +
          " entities_a=" + std::to_string(ctx.store_e.size()) +
          " entities_b=" + std::to_string(ctx.store_i.size()) +
          " records_a=" +
          std::to_string(linker_.total_records(LinkageSide::kE)) +
          " records_b=" +
          std::to_string(linker_.total_records(LinkageSide::kI)) +
          " pending_a=" +
          std::to_string(linker_.pending_records(LinkageSide::kE)) +
          " pending_b=" +
          std::to_string(linker_.pending_records(LinkageSide::kI)) +
          " bins=" + std::to_string(ctx.vocab.size()) +
          " links=" + std::to_string(linker_.links().size());
      return reply;
    }
    case ServeCommandKind::kSave: {
      const Status written = WriteLinksCsv(linker_.links(), cmd.path);
      if (!written.ok()) {
        reply.line =
            FormatServeError("io " + std::string(written.message()));
        return reply;
      }
      reply.line = "OK saved=" + cmd.path +
                   " links=" + std::to_string(linker_.links().size());
      return reply;
    }
    case ServeCommandKind::kShutdown: {
      shut_down_ = true;
      reply.shutdown = true;
      reply.line = "OK bye";
      return reply;
    }
  }
  reply.line = FormatServeError("bad-command unreachable");
  return reply;
}

}  // namespace slim
