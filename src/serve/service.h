// Transport-free command executor of the slim_serve daemon.
//
// LinkageService owns the IncrementalLinker and turns parsed protocol
// lines into response lines, independent of any socket — the unit tests
// (tests/test_serve_protocol.cc) drive it directly, and the server
// (serve/server.h) is a thin framing loop around it.
//
// Determinism: responses are pure functions of the command sequence
// executed so far (scores via FormatFixed, link sets from the
// incremental engine's bit-identity contract), so a scripted session
// always yields the same byte stream. Event lines for SUBSCRIBErs are
// emitted in (u, v)-sorted order, removals before additions.
#ifndef SLIM_SERVE_SERVICE_H_
#define SLIM_SERVE_SERVICE_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/incremental.h"
#include "core/slim.h"
#include "serve/protocol.h"

namespace slim {

/// Everything one executed command produced.
struct ServeReply {
  /// The single response line for the issuing connection (unterminated).
  std::string line;
  /// Broadcast lines for every subscribed connection (LINK only).
  std::vector<std::string> events;
  /// The issuing connection asked to become a subscriber.
  bool subscribe = false;
  /// The daemon must stop accepting and exit after delivering `line`.
  bool shutdown = false;
};

class LinkageService {
 public:
  explicit LinkageService(SlimConfig config);

  /// The handshake line greeting every new connection: protocol version
  /// plus build provenance (common/build_info.h).
  std::string HelloLine() const;

  /// Parses and executes one request line. Never throws; malformed or
  /// post-shutdown input comes back as an "ERR ..." response line.
  ServeReply Execute(std::string_view line);

  /// True once SHUTDOWN was accepted: every later command (including
  /// INGEST) is refused with ERR shutdown.
  bool shut_down() const { return shut_down_; }

  const IncrementalLinker& linker() const { return linker_; }

 private:
  IncrementalLinker linker_;
  bool shut_down_ = false;
};

}  // namespace slim

#endif  // SLIM_SERVE_SERVICE_H_
