// Robustness quality harness: parameterized dataset degradations and the
// sweep driver that measures how linkage quality (precision / recall / F1)
// decays along each degradation axis.
//
// Four axes, each emulating a real data pathology:
//   * GPS noise        — every record displaced by half-normal(sigma) meters
//                        in a uniform direction (the generators' own noise
//                        convention), emulating worse positioning.
//   * downsampling     — each record kept independently with probability p,
//                        emulating a lower ping rate / sparser service use.
//   * entity drop      — only the first ceil(q * N) entities of a seeded
//                        shuffle survive; the sweep applies this to side B
//                        only, emulating asymmetric service density.
//   * truncation       — each entity keeps only the first ceil(f * n)
//                        records of its timeline, emulating a shorter
//                        observation window.
//
// All degradations are deterministic in (input, spec): the record/entity
// RNG streams are forked per entity *rank* so a fixed dataset always
// degrades the same way. Quality metrics are evaluated against the
// UNdegraded ground truth — losing a true partner to degradation counts
// against recall, which is exactly the decay being measured.
#ifndef SLIM_EVAL_ROBUSTNESS_H_
#define SLIM_EVAL_ROBUSTNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/slim.h"
#include "data/dataset.h"
#include "data/sampler.h"
#include "eval/metrics.h"

namespace slim {

/// One parameterized corruption. Defaults are the identity (no change).
struct DegradationSpec {
  /// Half-normal GPS displacement sigma, meters. 0 = off.
  double gps_noise_meters = 0.0;
  /// Per-record keep probability in (0, 1]. 1 = keep all.
  double record_keep_probability = 1.0;
  /// Fraction of entities kept (seeded-shuffle prefix) in (0, 1].
  double entity_keep_fraction = 1.0;
  /// Per-entity record-prefix keep fraction in (0, 1].
  double truncate_keep_fraction = 1.0;
  /// Degradation RNG seed (noise, downsampling, entity shuffle).
  uint64_t seed = 2024;
};

/// True when `spec` changes nothing (all knobs at their identity values).
bool IsIdentityDegradation(const DegradationSpec& spec);

/// Applies `spec` to a finalized dataset. Order: entity drop, truncation,
/// downsampling, noise. Deterministic in (input, spec); the identity spec
/// returns a record-identical dataset.
LocationDataset DegradeDataset(const LocationDataset& input,
                               const DegradationSpec& spec);

/// The degradation axes the sweep walks.
enum class DegradationAxis {
  kGpsNoise = 0,    // value = sigma, meters (0 = pristine)
  kDownsample,      // value = keep probability (1 = pristine)
  kEntityDrop,      // value = B-side entity keep fraction (1 = pristine)
  kTruncate,        // value = record-prefix keep fraction (1 = pristine)
};

/// Stable identifier used in the sweep JSON ("gps_noise_meters",
/// "record_keep", "entity_keep_b", "truncate_keep").
const char* DegradationAxisName(DegradationAxis axis);

/// The spec for one grid point of `axis` (all other knobs identity).
DegradationSpec SpecForAxisValue(DegradationAxis axis, double value,
                                 uint64_t seed);

/// Quality and run facts at one degradation grid point.
struct SweepPoint {
  double value = 0.0;
  LinkageQuality quality;
  size_t links = 0;
  size_t entities_a = 0;
  size_t entities_b = 0;
  double seconds = 0.0;
};

/// One axis' curve: quality at each grid value (pristine value first).
struct SweepCurve {
  DegradationAxis axis = DegradationAxis::kGpsNoise;
  std::vector<SweepPoint> points;
};

/// One workload's full sweep: the zero-degradation baseline plus one curve
/// per requested axis.
struct SweepWorkloadResult {
  std::string workload;
  size_t truth_pairs = 0;
  SweepPoint baseline;
  std::vector<SweepCurve> curves;
};

/// Sweep configuration. The linkage pipeline config is reused at every
/// grid point; min_records re-applies the paper's sparse-entity filter
/// after degradation (downsampling/truncation can push entities below it).
struct SweepOptions {
  SlimConfig config;
  size_t min_records = 6;
  uint64_t seed = 2024;
};

/// Runs the full link pipeline on the degraded pair and evaluates it
/// against `truth`. Entity drops apply to side B only; every other axis
/// degrades both sides (with independent RNG streams).
SweepPoint RunSweepPoint(const LocationDataset& a, const LocationDataset& b,
                         const GroundTruth& truth, DegradationAxis axis,
                         double value, const SweepOptions& options);

/// Walks `values` along `axis` (values[0] should be the pristine value so
/// curves start at the baseline).
SweepCurve RunDegradationSweep(const LocationDataset& a,
                               const LocationDataset& b,
                               const GroundTruth& truth, DegradationAxis axis,
                               const std::vector<double>& values,
                               const SweepOptions& options);

/// Renders the sweep as a markdown document (one table per workload/axis),
/// in the style of eval/report.
std::string RenderSweepReport(const std::vector<SweepWorkloadResult>& results);

/// Writes the versioned machine-readable record (schema "slim-sweep-v1").
Status WriteSweepJson(const std::vector<SweepWorkloadResult>& results,
                      bool quick, uint64_t seed, const std::string& path);

}  // namespace slim

#endif  // SLIM_EVAL_ROBUSTNESS_H_
