#include "eval/links_io.h"

#include <fstream>

#include "common/strings.h"

namespace slim {

Status WriteLinksCsv(const std::vector<LinkedEntityPair>& links,
                     const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "entity_a,entity_b,score\n";
  for (const auto& link : links) {
    out << link.u << ',' << link.v << ','
        << StrFormat("%.6f", link.score) << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<LinkedEntityPair>> ReadLinksCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<LinkedEntityPair> links;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    if (line_no == 1 && stripped.rfind("entity_a", 0) == 0) continue;
    const auto fields = SplitString(stripped, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 3 fields", path.c_str(), line_no));
    }
    auto a = ParseInt64(fields[0]);
    auto b = ParseInt64(fields[1]);
    auto s = ParseDouble(fields[2]);
    if (!a.ok() || !b.ok() || !s.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed link", path.c_str(), line_no));
    }
    links.push_back({*a, *b, *s});
  }
  return links;
}

}  // namespace slim
