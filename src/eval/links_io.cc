#include "eval/links_io.h"

#include <fstream>

#include "common/io.h"
#include "common/strings.h"

namespace slim {

Status WriteLinksCsv(const std::vector<LinkedEntityPair>& links,
                     const std::string& path) {
  FileWriter out(path);
  if (!out.ok()) return Status::IoError("cannot open for write: " + path);
  out.buf() = "entity_a,entity_b,score\n";
  for (const auto& link : links) {
    std::string& buf = out.buf();
    buf += std::to_string(link.u);
    buf += ',';
    buf += std::to_string(link.v);
    buf += ',';
    // FormatFixed, not "%.6f": scores must round-trip under any locale.
    buf += FormatFixed(link.score, 6);
    buf += '\n';
    out.FlushIfFull();
  }
  return out.Finish(path);
}

Result<std::vector<LinkedEntityPair>> ReadLinksCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::vector<LinkedEntityPair> links;
  std::string line;
  size_t line_no = 0;
  bool saw_content = false;
  while (std::getline(in, line)) {
    ++line_no;
    std::string_view sv = line;
    if (line_no == 1) sv = StripUtf8Bom(sv);
    const auto stripped = StripAsciiWhitespace(sv);
    if (stripped.empty()) continue;
    // The header is optional and may follow blank lines / a BOM; it is
    // only recognised as the first non-blank line.
    if (!saw_content) {
      saw_content = true;
      if (stripped.rfind("entity_a", 0) == 0) continue;
    }
    const auto fields = SplitString(stripped, ',');
    if (fields.size() != 3) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 3 fields", path.c_str(), line_no));
    }
    auto a = ParseInt64(fields[0]);
    auto b = ParseInt64(fields[1]);
    auto s = ParseDouble(fields[2]);
    if (!a.ok() || !b.ok() || !s.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed link", path.c_str(), line_no));
    }
    links.push_back({*a, *b, *s});
  }
  return links;
}

}  // namespace slim
