#include "eval/runner.h"

#include <cstdlib>
#include <string_view>

#include "common/check.h"
#include "common/strings.h"

namespace slim {

BenchScale BenchScaleFromEnv() {
  const char* env = std::getenv("SLIM_BENCH_SCALE");
  if (env != nullptr && std::string_view(env) == "full") {
    return BenchScale::kFull;
  }
  return BenchScale::kSmall;
}

CabGeneratorOptions CabOptionsForScale(BenchScale scale) {
  CabGeneratorOptions opt;
  if (scale == BenchScale::kFull) {
    // Paper scale: 530 taxis over 24 days, ~11M records.
    opt.num_taxis = 530;
    opt.duration_days = 24.0;
    opt.record_interval_seconds = 100.0;
  } else {
    // Same shape, laptop scale: dense traces, few entities.
    opt.num_taxis = 120;
    opt.duration_days = 3.0;
    opt.record_interval_seconds = 300.0;
  }
  return opt;
}

CheckinGeneratorOptions CheckinOptionsForScale(BenchScale scale) {
  CheckinGeneratorOptions opt;
  if (scale == BenchScale::kFull) {
    // Paper scale: enough users that each side samples ~30k entities.
    opt.num_cities = 120;
    opt.num_users = 90000;
  } else {
    opt.num_cities = 30;
    opt.num_users = 2400;
  }
  return opt;
}

CommuteGeneratorOptions CommuteOptionsForScale(BenchScale scale) {
  CommuteGeneratorOptions opt;
  if (scale == BenchScale::kFull) {
    // Metro scale: a few thousand commuters over four weekly cycles.
    opt.num_commuters = 2000;
    opt.duration_days = 28.0;
  } else {
    opt.num_commuters = 200;
    opt.duration_days = 7.0;
  }
  return opt;
}

const LocationDataset& CachedCabMaster(BenchScale scale) {
  static const LocationDataset small =
      GenerateCabDataset(CabOptionsForScale(BenchScale::kSmall));
  if (scale == BenchScale::kSmall) return small;
  static const LocationDataset full =
      GenerateCabDataset(CabOptionsForScale(BenchScale::kFull));
  return full;
}

const LocationDataset& CachedCheckinMaster(BenchScale scale) {
  static const LocationDataset small =
      GenerateCheckinDataset(CheckinOptionsForScale(BenchScale::kSmall));
  if (scale == BenchScale::kSmall) return small;
  static const LocationDataset full =
      GenerateCheckinDataset(CheckinOptionsForScale(BenchScale::kFull));
  return full;
}

const LocationDataset& CachedCommuteMaster(BenchScale scale) {
  static const LocationDataset small =
      GenerateCommuteDataset(CommuteOptionsForScale(BenchScale::kSmall));
  if (scale == BenchScale::kSmall) return small;
  static const LocationDataset full =
      GenerateCommuteDataset(CommuteOptionsForScale(BenchScale::kFull));
  return full;
}

ExperimentOutcome RunLinkage(const LocationDataset& master,
                             const PairSampleOptions& sample_options,
                             const SlimConfig& config) {
  auto sample = SampleLinkedPair(master, sample_options);
  SLIM_CHECK_MSG(sample.ok(), sample.status().ToString().c_str());

  const SlimLinker linker(config);
  auto linked = linker.Link(sample->a, sample->b);
  SLIM_CHECK_MSG(linked.ok(), linked.status().ToString().c_str());

  ExperimentOutcome out;
  out.result = std::move(linked.value());
  out.quality = EvaluateLinks(out.result.links, sample->truth);
  return out;
}

std::string Fmt(double v, int decimals) {
  return StrFormat("%.*f", decimals, v);
}

}  // namespace slim
