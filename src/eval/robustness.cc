#include "eval/robustness.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/check.h"
#include "common/rng.h"
#include "common/strings.h"

namespace slim {
namespace {

// One independent degradation stream per (sweep seed, axis, grid value,
// side) so every grid point corrupts the data its own reproducible way.
uint64_t MixSeed(uint64_t seed, DegradationAxis axis, double value,
                 int side) {
  uint64_t value_bits = 0;
  std::memcpy(&value_bits, &value, sizeof(value_bits));
  uint64_t h = seed;
  h ^= SplitMix64(static_cast<uint64_t>(axis) + 1).Next();
  h ^= SplitMix64(value_bits).Next();
  h ^= SplitMix64(static_cast<uint64_t>(side) + 0x51).Next();
  return h;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

bool IsIdentityDegradation(const DegradationSpec& spec) {
  return spec.gps_noise_meters <= 0.0 &&
         spec.record_keep_probability >= 1.0 &&
         spec.entity_keep_fraction >= 1.0 &&
         spec.truncate_keep_fraction >= 1.0;
}

LocationDataset DegradeDataset(const LocationDataset& input,
                               const DegradationSpec& spec) {
  SLIM_CHECK_MSG(spec.record_keep_probability > 0.0 &&
                     spec.record_keep_probability <= 1.0,
                 "record_keep_probability must be in (0, 1]");
  SLIM_CHECK_MSG(spec.entity_keep_fraction > 0.0 &&
                     spec.entity_keep_fraction <= 1.0,
                 "entity_keep_fraction must be in (0, 1]");
  SLIM_CHECK_MSG(spec.truncate_keep_fraction > 0.0 &&
                     spec.truncate_keep_fraction <= 1.0,
                 "truncate_keep_fraction must be in (0, 1]");

  const std::vector<EntityId>& ids = input.entity_ids();
  Rng master_rng(spec.seed);

  // Entity drop: survivors are the first ceil(q * N) ranks of a seeded
  // Fisher-Yates shuffle — the kept count is exact, not just expected.
  std::vector<bool> keep_entity(ids.size(), true);
  if (spec.entity_keep_fraction < 1.0 && !ids.empty()) {
    std::vector<size_t> order(ids.size());
    for (size_t k = 0; k < order.size(); ++k) order[k] = k;
    for (size_t k = order.size() - 1; k > 0; --k) {
      const size_t j = static_cast<size_t>(master_rng.NextUint64(k + 1));
      std::swap(order[k], order[j]);
    }
    const size_t kept = static_cast<size_t>(std::ceil(
        spec.entity_keep_fraction * static_cast<double>(ids.size())));
    keep_entity.assign(ids.size(), false);
    for (size_t k = 0; k < kept; ++k) keep_entity[order[k]] = true;
  }

  std::vector<Record> records;
  records.reserve(input.num_records());
  for (size_t rank = 0; rank < ids.size(); ++rank) {
    if (!keep_entity[rank]) continue;
    // Per-rank stream: a fixed dataset always degrades the same way,
    // independent of which other entities exist.
    Rng rng = master_rng.Fork(rank);
    const auto recs = input.RecordsOf(ids[rank]);
    size_t take = recs.size();
    if (spec.truncate_keep_fraction < 1.0) {
      take = static_cast<size_t>(std::ceil(
          spec.truncate_keep_fraction * static_cast<double>(recs.size())));
    }
    for (size_t k = 0; k < take; ++k) {
      if (spec.record_keep_probability < 1.0 &&
          !rng.NextBernoulli(spec.record_keep_probability)) {
        continue;
      }
      Record r = recs[k];
      if (spec.gps_noise_meters > 0.0) {
        r.location = DestinationPoint(
                         r.location, rng.NextDouble(0.0, 360.0),
                         std::abs(rng.NextGaussian()) * spec.gps_noise_meters)
                         .Normalized();
      }
      records.push_back(r);
    }
  }
  return LocationDataset::FromRecords(input.name(), std::move(records));
}

const char* DegradationAxisName(DegradationAxis axis) {
  switch (axis) {
    case DegradationAxis::kGpsNoise:
      return "gps_noise_meters";
    case DegradationAxis::kDownsample:
      return "record_keep";
    case DegradationAxis::kEntityDrop:
      return "entity_keep_b";
    case DegradationAxis::kTruncate:
      return "truncate_keep";
  }
  return "unknown";
}

DegradationSpec SpecForAxisValue(DegradationAxis axis, double value,
                                 uint64_t seed) {
  DegradationSpec spec;
  spec.seed = seed;
  switch (axis) {
    case DegradationAxis::kGpsNoise:
      spec.gps_noise_meters = value;
      break;
    case DegradationAxis::kDownsample:
      spec.record_keep_probability = value;
      break;
    case DegradationAxis::kEntityDrop:
      spec.entity_keep_fraction = value;
      break;
    case DegradationAxis::kTruncate:
      spec.truncate_keep_fraction = value;
      break;
  }
  return spec;
}

SweepPoint RunSweepPoint(const LocationDataset& a, const LocationDataset& b,
                         const GroundTruth& truth, DegradationAxis axis,
                         double value, const SweepOptions& options) {
  // Side A never loses entities (the asymmetric-density axis drops B
  // entities only); noise / downsampling / truncation hit both sides
  // through independent streams.
  DegradationSpec spec_a =
      SpecForAxisValue(axis, value, MixSeed(options.seed, axis, value, 0));
  spec_a.entity_keep_fraction = 1.0;
  const DegradationSpec spec_b =
      SpecForAxisValue(axis, value, MixSeed(options.seed, axis, value, 1));

  const double start = NowSeconds();
  LocationDataset da = DegradeDataset(a, spec_a);
  LocationDataset db = DegradeDataset(b, spec_b);
  if (options.min_records > 0) {
    da.FilterMinRecords(options.min_records);
    db.FilterMinRecords(options.min_records);
  }

  const SlimLinker linker(options.config);
  const bool use_sharded = options.config.shards > 0 ||
                           options.config.shard_memory_budget_bytes > 0;
  auto result = use_sharded ? linker.LinkSharded(da, db) : linker.Link(da, db);
  SLIM_CHECK_MSG(result.ok(), result.status().ToString().c_str());

  SweepPoint point;
  point.value = value;
  point.quality = EvaluateLinks(result->links, truth);
  point.links = result->links.size();
  point.entities_a = da.num_entities();
  point.entities_b = db.num_entities();
  point.seconds = NowSeconds() - start;
  return point;
}

SweepCurve RunDegradationSweep(const LocationDataset& a,
                               const LocationDataset& b,
                               const GroundTruth& truth, DegradationAxis axis,
                               const std::vector<double>& values,
                               const SweepOptions& options) {
  SweepCurve curve;
  curve.axis = axis;
  curve.points.reserve(values.size());
  for (double value : values) {
    curve.points.push_back(
        RunSweepPoint(a, b, truth, axis, value, options));
  }
  return curve;
}

std::string RenderSweepReport(
    const std::vector<SweepWorkloadResult>& results) {
  std::string md = "# SLIM robustness sweep\n\n";
  md +=
      "Linkage quality (against the undegraded ground truth) as each "
      "degradation axis tightens; axis definitions in docs/DATASETS.md.\n";
  for (const SweepWorkloadResult& wl : results) {
    md += StrFormat("\n## Workload `%s`\n\n", wl.workload.c_str());
    md += StrFormat(
        "Baseline (no degradation): precision %.4f, recall %.4f, F1 %.4f "
        "— %zu links over %zu truth pairs (%zu x %zu entities).\n",
        wl.baseline.quality.precision, wl.baseline.quality.recall,
        wl.baseline.quality.f1, wl.baseline.links, wl.truth_pairs,
        wl.baseline.entities_a, wl.baseline.entities_b);
    for (const SweepCurve& curve : wl.curves) {
      md += StrFormat("\n### Axis `%s`\n\n", DegradationAxisName(curve.axis));
      md += "| value | precision | recall | F1 | links | entities A x B |\n";
      md += "|---|---|---|---|---|---|\n";
      for (const SweepPoint& p : curve.points) {
        md += StrFormat("| %g | %.4f | %.4f | %.4f | %zu | %zu x %zu |\n",
                        p.value, p.quality.precision, p.quality.recall,
                        p.quality.f1, p.links, p.entities_a, p.entities_b);
      }
    }
  }
  return md;
}

namespace {

void AppendPointJson(const SweepPoint& p, const char* indent,
                     std::string* out) {
  *out += "{\n";
  *out += StrFormat("%s  \"value\": %g,\n", indent, p.value);
  *out += StrFormat("%s  \"precision\": %.6f,\n", indent,
                    p.quality.precision);
  *out += StrFormat("%s  \"recall\": %.6f,\n", indent, p.quality.recall);
  *out += StrFormat("%s  \"f1\": %.6f,\n", indent, p.quality.f1);
  *out += StrFormat("%s  \"links\": %zu,\n", indent, p.links);
  *out += StrFormat("%s  \"entities_a\": %zu,\n", indent, p.entities_a);
  *out += StrFormat("%s  \"entities_b\": %zu,\n", indent, p.entities_b);
  *out += StrFormat("%s  \"seconds\": %.6f\n", indent, p.seconds);
  *out += indent;
  *out += "}";
}

}  // namespace

Status WriteSweepJson(const std::vector<SweepWorkloadResult>& results,
                      bool quick, uint64_t seed, const std::string& path) {
  std::string json = "{\n  \"schema\": \"slim-sweep-v1\",\n";
  json += StrFormat("  \"quick\": %s,\n", quick ? "true" : "false");
  json += StrFormat("  \"seed\": %llu,\n",
                    static_cast<unsigned long long>(seed));
  json += "  \"workloads\": [\n";
  for (size_t w = 0; w < results.size(); ++w) {
    const SweepWorkloadResult& wl = results[w];
    json += "    {\n";
    json += StrFormat("      \"workload\": \"%s\",\n", wl.workload.c_str());
    json += StrFormat("      \"truth_pairs\": %zu,\n", wl.truth_pairs);
    json += "      \"baseline\": ";
    AppendPointJson(wl.baseline, "      ", &json);
    json += ",\n      \"curves\": [\n";
    for (size_t c = 0; c < wl.curves.size(); ++c) {
      const SweepCurve& curve = wl.curves[c];
      json += StrFormat("        {\n          \"axis\": \"%s\",\n",
                        DegradationAxisName(curve.axis));
      json += "          \"points\": [\n";
      for (size_t k = 0; k < curve.points.size(); ++k) {
        json += "            ";
        AppendPointJson(curve.points[k], "            ", &json);
        json += k + 1 < curve.points.size() ? ",\n" : "\n";
      }
      json += "          ]\n        }";
      json += c + 1 < wl.curves.size() ? ",\n" : "\n";
    }
    json += "      ]\n    }";
    json += w + 1 < results.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.good()) return Status::IoError("cannot open " + path);
  out << json;
  out.flush();
  if (!out.good()) return Status::IoError("cannot write " + path);
  return Status::Ok();
}

}  // namespace slim
