// Ground-truth evaluation metrics used throughout the paper's Sec. 5:
// precision / recall / F1 over produced links, and Hit-Precision@k over the
// scored candidate lists.
#ifndef SLIM_EVAL_METRICS_H_
#define SLIM_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "core/slim.h"
#include "data/sampler.h"
#include "match/bipartite.h"

namespace slim {

/// Confusion counts and derived rates for a set of links.
struct LinkageQuality {
  uint64_t true_positives = 0;
  uint64_t false_positives = 0;
  uint64_t false_negatives = 0;
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
};

/// Scores `links` against `truth`. A link counts as a true positive only if
/// it exactly matches a ground-truth pair; recall is over all ground-truth
/// pairs.
LinkageQuality EvaluateLinks(const std::vector<LinkedEntityPair>& links,
                             const GroundTruth& truth);

/// Hit-Precision@k (paper Sec. 5.5): for each left-side entity u in
/// `left_entities`, rank all scored right-side partners by decreasing score
/// (ties toward smaller id); if u's true partner appears at 1-based rank
/// r <= k the entity contributes 1 - (r - 1) / k, otherwise 0. Entities
/// without a ground-truth partner (or whose partner was never scored)
/// contribute 0, and the mean runs over ALL of `left_entities` — with a
/// 50% intersection ratio the best achievable value is therefore 0.5,
/// matching the paper's setup.
double HitPrecisionAtK(const BipartiteGraph& scored_pairs,
                       const std::vector<EntityId>& left_entities,
                       const GroundTruth& truth, int k);

}  // namespace slim

#endif  // SLIM_EVAL_METRICS_H_
