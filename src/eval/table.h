// Column-aligned ASCII table printer for the figure-reproduction benches.
#ifndef SLIM_EVAL_TABLE_H_
#define SLIM_EVAL_TABLE_H_

#include <string>
#include <vector>

namespace slim {

/// Accumulates rows and prints them with aligned columns:
///
///   TablePrinter t({"level", "precision", "recall"});
///   t.AddRow({"12", "0.98", "0.94"});
///   t.Print();
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows).
  std::string ToString() const;
  /// Writes ToString() to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace slim

#endif  // SLIM_EVAL_TABLE_H_
