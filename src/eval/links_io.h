// Persistence for linkage results: links as CSV (entity_a,entity_b,score).
#ifndef SLIM_EVAL_LINKS_IO_H_
#define SLIM_EVAL_LINKS_IO_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/slim.h"

namespace slim {

/// Writes the links to `path` as "entity_a,entity_b,score" rows with a
/// header line. Overwrites any existing file.
Status WriteLinksCsv(const std::vector<LinkedEntityPair>& links,
                     const std::string& path);

/// Reads links back from `path` (the WriteLinksCsv format).
Result<std::vector<LinkedEntityPair>> ReadLinksCsv(const std::string& path);

}  // namespace slim

#endif  // SLIM_EVAL_LINKS_IO_H_
