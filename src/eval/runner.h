// Shared harness for the figure-reproduction benches: bench-scale
// configuration (env SLIM_BENCH_SCALE=small|full), cached master datasets,
// and a standard "link and evaluate" runner.
#ifndef SLIM_EVAL_RUNNER_H_
#define SLIM_EVAL_RUNNER_H_

#include <cstdint>
#include <string>

#include "core/slim.h"
#include "data/cab_generator.h"
#include "data/checkin_generator.h"
#include "data/commute_generator.h"
#include "data/sampler.h"
#include "eval/metrics.h"

namespace slim {

/// Bench workload scale.
enum class BenchScale {
  kSmall,  // finishes the full harness on a laptop-class machine (default)
  kFull,   // paper-scale entity counts (hours of runtime)
};

/// Reads SLIM_BENCH_SCALE from the environment ("small"/"full"),
/// defaulting to small.
BenchScale BenchScaleFromEnv();

/// Generator options matching the chosen scale for the two workloads (see
/// DESIGN.md §1 for how these mirror the paper's Cab and SM datasets).
CabGeneratorOptions CabOptionsForScale(BenchScale scale);
CheckinGeneratorOptions CheckinOptionsForScale(BenchScale scale);
CommuteGeneratorOptions CommuteOptionsForScale(BenchScale scale);

/// Master datasets, generated once per process and cached.
const LocationDataset& CachedCabMaster(BenchScale scale);
const LocationDataset& CachedCheckinMaster(BenchScale scale);
const LocationDataset& CachedCommuteMaster(BenchScale scale);

/// One linkage experiment outcome: SLIM's result plus its ground-truth
/// quality.
struct ExperimentOutcome {
  LinkageResult result;
  LinkageQuality quality;
};

/// Samples the pair from `master` and runs `config` on it.
/// Aborts (SLIM_CHECK) on configuration errors — benches want loud failure.
ExperimentOutcome RunLinkage(const LocationDataset& master,
                             const PairSampleOptions& sample_options,
                             const SlimConfig& config);

/// Convenience: "0.9876" style fixed formatting for bench tables.
std::string Fmt(double v, int decimals = 4);

}  // namespace slim

#endif  // SLIM_EVAL_RUNNER_H_
