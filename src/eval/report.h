// Human-readable linkage reports.
//
// Renders a LinkageResult (and optionally its ground-truth quality) as a
// self-contained markdown document: headline numbers, phase timings, the
// matched-score histogram around the detected stop threshold, and the LSH
// filtering effectiveness. Used by the slim_link CLI's --report flag.
#ifndef SLIM_EVAL_REPORT_H_
#define SLIM_EVAL_REPORT_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "core/slim.h"
#include "eval/metrics.h"

namespace slim {

/// Inputs for RenderLinkageReport.
struct ReportOptions {
  std::string title = "SLIM linkage report";
  /// Names of the two datasets, for display.
  std::string dataset_a = "A";
  std::string dataset_b = "B";
  /// When provided, a ground-truth quality section is included.
  std::optional<LinkageQuality> quality;
  /// Histogram bins for the matched-score section.
  int histogram_bins = 20;
};

/// Renders the markdown report.
std::string RenderLinkageReport(const LinkageResult& result,
                                const ReportOptions& options);

/// Renders and writes the report to `path`.
Status WriteLinkageReport(const LinkageResult& result,
                          const ReportOptions& options,
                          const std::string& path);

}  // namespace slim

#endif  // SLIM_EVAL_REPORT_H_
