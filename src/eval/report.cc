#include "eval/report.h"

#include <algorithm>
#include <fstream>

#include "common/strings.h"
#include "stats/histogram.h"

namespace slim {

std::string RenderLinkageReport(const LinkageResult& result,
                                const ReportOptions& options) {
  std::string md;
  md += "# " + options.title + "\n\n";
  md += StrFormat("Linking `%s` (left) to `%s` (right).\n\n",
                  options.dataset_a.c_str(), options.dataset_b.c_str());

  md += "## Headline\n\n";
  md += StrFormat("- **links produced:** %zu\n", result.links.size());
  md += StrFormat("- **pairs matched before thresholding:** %zu\n",
                  result.matching.pairs.size());
  md += StrFormat("- **positive-score candidate edges:** %zu\n",
                  result.graph.num_edges());
  if (result.threshold_valid) {
    md += StrFormat(
        "- **stop threshold:** %.2f (model-expected precision %.3f, "
        "recall %.3f, F1 %.3f)\n",
        result.threshold.threshold, result.threshold.expected_precision,
        result.threshold.expected_recall, result.threshold.expected_f1);
  } else {
    md += "- **stop threshold:** not applied (weight distribution did not "
          "support a two-population fit; all matched pairs kept)\n";
  }
  md += StrFormat("- **candidate generator:** %s\n",
                  std::string(CandidateKindName(result.candidates_used))
                      .c_str());
  md += StrFormat(
      "- **pair space:** %s of %s possible pairs scored (%.2f%%)\n",
      FormatWithCommas(static_cast<int64_t>(result.candidate_pairs)).c_str(),
      FormatWithCommas(static_cast<int64_t>(result.possible_pairs)).c_str(),
      result.possible_pairs > 0
          ? 100.0 * static_cast<double>(result.candidate_pairs) /
                static_cast<double>(result.possible_pairs)
          : 0.0);
  md += StrFormat(
      "- **record comparisons:** %s; alibi pairs hit: %s\n",
      FormatWithCommas(static_cast<int64_t>(result.stats.record_comparisons))
          .c_str(),
      FormatWithCommas(static_cast<int64_t>(result.stats.alibi_pairs))
          .c_str());
  const uint64_t cache_lookups =
      result.stats.cache_hits + result.stats.cache_misses;
  md += StrFormat(
      "- **distance cache:** %s hits / %s misses (%.1f%% hit rate)\n\n",
      FormatWithCommas(static_cast<int64_t>(result.stats.cache_hits)).c_str(),
      FormatWithCommas(static_cast<int64_t>(result.stats.cache_misses))
          .c_str(),
      cache_lookups > 0 ? 100.0 * static_cast<double>(result.stats.cache_hits) /
                              static_cast<double>(cache_lookups)
                        : 0.0);

  if (options.quality.has_value()) {
    const LinkageQuality& q = *options.quality;
    md += "## Ground-truth quality\n\n";
    md += "| precision | recall | F1 | TP | FP | FN |\n";
    md += "|---|---|---|---|---|---|\n";
    md += StrFormat("| %.4f | %.4f | %.4f | %llu | %llu | %llu |\n\n",
                    q.precision, q.recall, q.f1,
                    static_cast<unsigned long long>(q.true_positives),
                    static_cast<unsigned long long>(q.false_positives),
                    static_cast<unsigned long long>(q.false_negatives));
  }

  md += "## Phase timings\n\n";
  md += "| phase | seconds |\n|---|---|\n";
  md += StrFormat("| histories | %.3f |\n", result.seconds_histories);
  md += StrFormat("| LSH index | %.3f |\n", result.seconds_lsh);
  md += StrFormat("| scoring | %.3f |\n", result.seconds_scoring);
  md += StrFormat("| matching | %.3f |\n", result.seconds_matching);
  md += StrFormat("| **total** | **%.3f** |\n\n", result.seconds_total);

  if (result.matching.pairs.size() >= 2) {
    std::vector<double> weights;
    weights.reserve(result.matching.pairs.size());
    for (const auto& e : result.matching.pairs) weights.push_back(e.weight);
    const auto [mn, mx] = std::minmax_element(weights.begin(), weights.end());
    if (*mx > *mn) {
      md += "## Matched-score distribution\n\n```\n";
      Histogram h(*mn, *mx, options.histogram_bins);
      for (double w : weights) h.Add(w);
      md += h.ToAscii(40);
      if (result.threshold_valid) {
        md += StrFormat("stop threshold at %.2f\n",
                        result.threshold.threshold);
      }
      md += "```\n";
    }
  }
  return md;
}

Status WriteLinkageReport(const LinkageResult& result,
                          const ReportOptions& options,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  const std::string md = RenderLinkageReport(result, options);
  out.write(md.data(), static_cast<std::streamsize>(md.size()));
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

}  // namespace slim
