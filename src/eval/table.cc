#include "eval/table.h"

#include <cstdio>

#include "common/check.h"

namespace slim {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SLIM_CHECK_MSG(!headers_.empty(), "table needs at least one column");
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  SLIM_CHECK_MSG(cells.size() == headers_.size(),
                 "row width does not match header");
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > width[c]) width[c] = row[c].size();
    }
  }
  auto append_row = [&](std::string* out,
                        const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      *out += row[c];
      out->append(width[c] - row[c].size(), ' ');
      *out += (c + 1 < row.size()) ? "  " : "";
    }
    *out += '\n';
  };
  std::string out;
  append_row(&out, headers_);
  size_t total = 0;
  for (size_t c = 0; c < width.size(); ++c) total += width[c] + 2;
  out.append(total >= 2 ? total - 2 : total, '-');
  out += '\n';
  for (const auto& row : rows_) append_row(&out, row);
  return out;
}

void TablePrinter::Print() const {
  const std::string s = ToString();
  std::fwrite(s.data(), 1, s.size(), stdout);
  std::fflush(stdout);
}

}  // namespace slim
