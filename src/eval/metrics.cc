#include "eval/metrics.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"

namespace slim {

LinkageQuality EvaluateLinks(const std::vector<LinkedEntityPair>& links,
                             const GroundTruth& truth) {
  LinkageQuality q;
  for (const auto& link : links) {
    if (truth.AreLinked(link.u, link.v)) {
      ++q.true_positives;
    } else {
      ++q.false_positives;
    }
  }
  SLIM_CHECK(truth.size() >= q.true_positives);
  q.false_negatives = truth.size() - q.true_positives;
  const double tp = static_cast<double>(q.true_positives);
  q.precision = (q.true_positives + q.false_positives) > 0
                    ? tp / static_cast<double>(q.true_positives +
                                               q.false_positives)
                    : 0.0;
  q.recall = truth.size() > 0 ? tp / static_cast<double>(truth.size()) : 0.0;
  q.f1 = (q.precision + q.recall) > 0.0
             ? 2.0 * q.precision * q.recall / (q.precision + q.recall)
             : 0.0;
  return q;
}

double HitPrecisionAtK(const BipartiteGraph& scored_pairs,
                       const std::vector<EntityId>& left_entities,
                       const GroundTruth& truth, int k) {
  SLIM_CHECK_MSG(k >= 1, "HitPrecision requires k >= 1");
  if (left_entities.empty()) return 0.0;

  // Bucket the scored edges by left entity.
  std::unordered_map<EntityId, std::vector<std::pair<double, EntityId>>>
      by_left;
  for (const auto& e : scored_pairs.edges()) {
    by_left[e.u].emplace_back(e.weight, e.v);
  }

  double total = 0.0;
  for (EntityId u : left_entities) {
    const auto truth_it = truth.a_to_b.find(u);
    if (truth_it == truth.a_to_b.end()) continue;  // contributes 0
    const auto lst = by_left.find(u);
    if (lst == by_left.end()) continue;
    auto scored = lst->second;
    std::sort(scored.begin(), scored.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (size_t rank0 = 0;
         rank0 < scored.size() && rank0 < static_cast<size_t>(k); ++rank0) {
      if (scored[rank0].second == truth_it->second) {
        total += 1.0 - static_cast<double>(rank0) / static_cast<double>(k);
        break;
      }
    }
  }
  return total / static_cast<double>(left_entities.size());
}

}  // namespace slim
