// Principal branch of the Lambert W function, W0(x): the inverse of
// f(w) = w * e^w on [-1/e, inf).
//
// The paper (Sec. 4) sizes the LSH banding as b = e^{W(-s * ln t)} where s
// is the signature length and t the similarity threshold.
#ifndef SLIM_STATS_LAMBERT_W_H_
#define SLIM_STATS_LAMBERT_W_H_

namespace slim {

/// W0(x) for x >= -1/e. Halley iteration, accurate to ~1e-12.
/// Requires x >= -1/e (checked).
double LambertW0(double x);

}  // namespace slim

#endif  // SLIM_STATS_LAMBERT_W_H_
