#include "stats/histogram.h"

#include <algorithm>

#include "common/check.h"
#include "common/strings.h"

namespace slim {

Histogram::Histogram(double lo, double hi, int num_bins)
    : lo_(lo), hi_(hi) {
  SLIM_CHECK_MSG(hi > lo, "Histogram requires hi > lo");
  SLIM_CHECK_MSG(num_bins >= 1, "Histogram requires >= 1 bin");
  width_ = (hi - lo) / num_bins;
  counts_.assign(static_cast<size_t>(num_bins), 0);
}

Histogram Histogram::FromValues(const std::vector<double>& values,
                                int num_bins) {
  SLIM_CHECK_MSG(!values.empty(), "Histogram::FromValues requires values");
  const auto [mn, mx] = std::minmax_element(values.begin(), values.end());
  const double span = (*mx > *mn) ? (*mx - *mn) : 1.0;
  Histogram h(*mn, *mn + span, num_bins);
  for (double v : values) h.Add(v);
  return h;
}

void Histogram::Add(double value) {
  long bin = static_cast<long>((value - lo_) / width_);
  bin = std::clamp<long>(bin, 0, static_cast<long>(counts_.size()) - 1);
  ++counts_[static_cast<size_t>(bin)];
  ++total_;
}

uint64_t Histogram::count(int bin) const {
  SLIM_CHECK(bin >= 0 && static_cast<size_t>(bin) < counts_.size());
  return counts_[static_cast<size_t>(bin)];
}

double Histogram::BinCenter(int bin) const {
  SLIM_CHECK(bin >= 0 && static_cast<size_t>(bin) < counts_.size());
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::BinLow(int bin) const {
  SLIM_CHECK(bin >= 0 && static_cast<size_t>(bin) < counts_.size());
  return lo_ + static_cast<double>(bin) * width_;
}

std::string Histogram::ToAscii(int max_bar_width) const {
  uint64_t peak = 0;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  std::string out;
  for (size_t b = 0; b < counts_.size(); ++b) {
    const int bar =
        peak == 0 ? 0
                  : static_cast<int>(static_cast<double>(counts_[b]) /
                                     static_cast<double>(peak) *
                                     max_bar_width);
    out += StrFormat("%12.2f | %-*s %llu\n", BinLow(static_cast<int>(b)),
                     max_bar_width,
                     std::string(static_cast<size_t>(bar), '#').c_str(),
                     static_cast<unsigned long long>(counts_[b]));
  }
  return out;
}

}  // namespace slim
