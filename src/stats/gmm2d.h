// 2-D Gaussian Mixture Model with full covariances, fitted with EM.
//
// Used by the GM baseline (Wang et al., NDSS'18), which models each
// entity's spatial footprint as a mixture of 2-D Gaussians over (projected)
// record locations and scores candidate pairs by cross log-likelihood.
#ifndef SLIM_STATS_GMM2D_H_
#define SLIM_STATS_GMM2D_H_

#include <array>
#include <vector>

#include "common/status.h"

namespace slim {

/// A 2-D point (the GM baseline uses local-meter projections).
struct Point2 {
  double x = 0.0;
  double y = 0.0;
};

/// One 2-D Gaussian component with full covariance [[xx, xy], [xy, yy]].
struct Gaussian2D {
  double weight = 0.0;
  Point2 mean;
  double cov_xx = 1.0;
  double cov_xy = 0.0;
  double cov_yy = 1.0;

  /// Component density at p (without the mixing weight).
  double Pdf(const Point2& p) const;
  /// Log density at p (without the mixing weight).
  double LogPdf(const Point2& p) const;
};

/// A fitted 2-D mixture.
struct GaussianMixture2D {
  std::vector<Gaussian2D> components;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;

  double Pdf(const Point2& p) const;
  /// log of the mixture density, floored to keep scores finite far from all
  /// components.
  double LogPdf(const Point2& p) const;
};

/// Options for FitGmm2D.
struct Gmm2DFitOptions {
  int num_components = 3;
  int max_iterations = 100;
  double tolerance = 1e-6;
  /// Minimum eigenvalue of any covariance, in squared input units
  /// (meters^2 for the GM baseline: 50 m floor by default).
  double covariance_floor = 2500.0;
};

/// Fits a K-component 2-D mixture with EM (k-means++-style deterministic
/// farthest-point init). K is clamped to the number of distinct points.
/// Fails when points is empty.
Result<GaussianMixture2D> FitGmm2D(const std::vector<Point2>& points,
                                   const Gmm2DFitOptions& options = {});

}  // namespace slim

#endif  // SLIM_STATS_GMM2D_H_
