// Otsu's method (1979): histogram-based binarisation threshold maximising
// between-class variance. The paper reports it gives results similar to the
// GMM-based stop-threshold detection (Sec. 5.2.1); provided as an
// alternative ThresholdDetector backend.
#ifndef SLIM_STATS_OTSU_H_
#define SLIM_STATS_OTSU_H_

#include <vector>

namespace slim {

/// Computes Otsu's threshold over `values` using a `num_bins`-bin histogram
/// spanning [min, max]. Returns the bin-boundary value that maximises the
/// between-class variance. Requires at least 2 distinct values.
double OtsuThreshold(const std::vector<double>& values, int num_bins = 256);

}  // namespace slim

#endif  // SLIM_STATS_OTSU_H_
