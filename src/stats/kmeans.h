// 1-D k-means, used to initialise the EM fit of the Gaussian mixture and as
// the "2-means" stop-threshold alternative the paper mentions (Sec. 5.2.1).
#ifndef SLIM_STATS_KMEANS_H_
#define SLIM_STATS_KMEANS_H_

#include <cstddef>
#include <vector>

namespace slim {

/// Result of a 1-D k-means clustering.
struct KMeans1DResult {
  std::vector<double> centers;      // sorted ascending
  std::vector<int> assignment;      // per input value, index into centers
  std::vector<size_t> cluster_size; // per center
  int iterations = 0;
  bool converged = false;
};

/// Lloyd's algorithm on scalars with deterministic quantile initialisation.
/// Requires k >= 1 and values non-empty; k is clamped to the number of
/// distinct values.
KMeans1DResult KMeans1D(const std::vector<double>& values, int k,
                        int max_iterations = 100);

/// The midpoint between the two cluster centers of a 2-means split —
/// a simple binarisation threshold. Requires at least 2 distinct values.
double TwoMeansThreshold(const std::vector<double>& values);

}  // namespace slim

#endif  // SLIM_STATS_KMEANS_H_
