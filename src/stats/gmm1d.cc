#include "stats/gmm1d.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/kmeans.h"

namespace slim {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;  // 1/sqrt(2*pi)
constexpr double kInvSqrt2 = 0.7071067811865476;    // 1/sqrt(2)

}  // namespace

double Gaussian1D::Pdf(double x) const {
  SLIM_DCHECK(variance > 0.0);
  const double z = (x - mean) / std::sqrt(variance);
  return kInvSqrt2Pi / std::sqrt(variance) * std::exp(-0.5 * z * z);
}

double Gaussian1D::Cdf(double x) const {
  SLIM_DCHECK(variance > 0.0);
  const double z = (x - mean) / std::sqrt(variance);
  return 0.5 * std::erfc(-z * kInvSqrt2);
}

double GaussianMixture1D::Pdf(double x) const {
  double p = 0.0;
  for (const auto& c : components) p += c.weight * c.Pdf(x);
  return p;
}

double GaussianMixture1D::Cdf(double x) const {
  double p = 0.0;
  for (const auto& c : components) p += c.weight * c.Cdf(x);
  return p;
}

double GaussianMixture1D::Responsibility(int k, double x) const {
  SLIM_CHECK(k >= 0 && static_cast<size_t>(k) < components.size());
  const double total = Pdf(x);
  if (total <= 0.0) return 0.0;
  const auto& c = components[static_cast<size_t>(k)];
  return c.weight * c.Pdf(x) / total;
}

Result<GaussianMixture1D> FitGmm1D(const std::vector<double>& values,
                                   const GmmFitOptions& options) {
  const int k = options.num_components;
  if (k < 1) return Status::InvalidArgument("num_components must be >= 1");
  if (values.size() < static_cast<size_t>(k)) {
    return Status::InvalidArgument(
        "need at least K values to fit K components");
  }

  // Data variance for the floor.
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(values.size());
  double var = 0.0;
  for (double v : values) var += (v - mean) * (v - mean);
  var /= static_cast<double>(values.size());
  if (var <= 0.0) {
    return Status::InvalidArgument("all values identical; GMM undefined");
  }
  const double var_floor = std::max(var * options.variance_floor_fraction,
                                    1e-12);

  // Init from k-means.
  const KMeans1DResult km = KMeans1D(values, k);
  const int keff = static_cast<int>(km.centers.size());
  GaussianMixture1D gmm;
  gmm.components.resize(static_cast<size_t>(keff));
  for (int c = 0; c < keff; ++c) {
    auto& comp = gmm.components[static_cast<size_t>(c)];
    comp.mean = km.centers[static_cast<size_t>(c)];
    comp.weight = std::max(
        1e-6, static_cast<double>(km.cluster_size[static_cast<size_t>(c)]) /
                  static_cast<double>(values.size()));
    double cvar = 0.0;
    size_t cn = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      if (km.assignment[i] == c) {
        cvar += (values[i] - comp.mean) * (values[i] - comp.mean);
        ++cn;
      }
    }
    comp.variance = std::max(cn > 0 ? cvar / static_cast<double>(cn) : var,
                             var_floor);
  }
  // Renormalise weights.
  double wsum = 0.0;
  for (const auto& c : gmm.components) wsum += c.weight;
  for (auto& c : gmm.components) c.weight /= wsum;

  const size_t n = values.size();
  std::vector<double> resp(n * static_cast<size_t>(keff));
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (gmm.iterations = 0; gmm.iterations < options.max_iterations;
       ++gmm.iterations) {
    // E-step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (int c = 0; c < keff; ++c) {
        const auto& comp = gmm.components[static_cast<size_t>(c)];
        const double p = comp.weight * comp.Pdf(values[i]);
        resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)] = p;
        total += p;
      }
      if (total <= 0.0) {
        // Point in the far tail of every component: spread evenly.
        for (int c = 0; c < keff; ++c) {
          resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)] =
              1.0 / static_cast<double>(keff);
        }
        ll += -745.0;  // log of ~double-min; keeps ll finite
      } else {
        for (int c = 0; c < keff; ++c) {
          resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)] /= total;
        }
        ll += std::log(total);
      }
    }
    gmm.log_likelihood = ll;

    // M-step.
    for (int c = 0; c < keff; ++c) {
      double nk = 0.0, mu = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r =
            resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)];
        nk += r;
        mu += r * values[i];
      }
      auto& comp = gmm.components[static_cast<size_t>(c)];
      if (nk < 1e-10) {
        // Dead component: park it at the data mean with a broad variance.
        comp.weight = 1e-10;
        comp.mean = mean;
        comp.variance = var;
        continue;
      }
      mu /= nk;
      double sigma2 = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r =
            resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)];
        sigma2 += r * (values[i] - mu) * (values[i] - mu);
      }
      comp.weight = nk / static_cast<double>(n);
      comp.mean = mu;
      comp.variance = std::max(sigma2 / nk, var_floor);
    }
    // Renormalise (dead components may have skewed the sum).
    wsum = 0.0;
    for (const auto& c : gmm.components) wsum += c.weight;
    for (auto& c : gmm.components) c.weight /= wsum;

    if (std::abs(ll - prev_ll) / static_cast<double>(n) < options.tolerance) {
      gmm.converged = true;
      break;
    }
    prev_ll = ll;
  }

  std::sort(gmm.components.begin(), gmm.components.end(),
            [](const Gaussian1D& a, const Gaussian1D& b) {
              return a.mean < b.mean;
            });
  return gmm;
}

}  // namespace slim
