// Fixed-bin histogram used for Fig. 2 / Fig. 6 style score-distribution
// output and by the threshold detectors.
#ifndef SLIM_STATS_HISTOGRAM_H_
#define SLIM_STATS_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace slim {

/// Equal-width histogram over a [lo, hi] range.
class Histogram {
 public:
  /// Creates `num_bins` equal bins over [lo, hi]. Requires hi > lo,
  /// num_bins >= 1.
  Histogram(double lo, double hi, int num_bins);

  /// Builds a histogram spanning the min..max of `values`.
  static Histogram FromValues(const std::vector<double>& values,
                              int num_bins);

  /// Adds one observation; values outside [lo, hi] clamp to the edge bins.
  void Add(double value);

  int num_bins() const { return static_cast<int>(counts_.size()); }
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  uint64_t count(int bin) const;
  uint64_t total() const { return total_; }
  /// Center value of a bin.
  double BinCenter(int bin) const;
  /// Inclusive lower edge of a bin.
  double BinLow(int bin) const;

  /// Multi-line ASCII rendering (one row per bin, # bars), for bench output.
  std::string ToAscii(int max_bar_width = 60) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace slim

#endif  // SLIM_STATS_HISTOGRAM_H_
