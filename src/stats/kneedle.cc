#include "stats/kneedle.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace slim {

std::optional<size_t> FindKneedle(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  const KneedleOptions& options) {
  SLIM_CHECK_MSG(x.size() == y.size(), "Kneedle: x/y size mismatch");
  if (x.size() < 3) return std::nullopt;
  for (size_t i = 1; i < x.size(); ++i) {
    SLIM_CHECK_MSG(x[i] > x[i - 1], "Kneedle: x must be strictly increasing");
  }

  const size_t n = x.size();
  // 1. Normalise both axes to [0, 1].
  const double x_lo = x.front(), x_hi = x.back();
  const auto [y_mn, y_mx] = std::minmax_element(y.begin(), y.end());
  if (*y_mx == *y_mn) return std::nullopt;  // flat line: no knee
  std::vector<double> xn(n), yn(n);
  for (size_t i = 0; i < n; ++i) {
    xn[i] = (x[i] - x_lo) / (x_hi - x_lo);
    yn[i] = (y[i] - *y_mn) / (*y_mx - *y_mn);
  }

  // 2. Transform to the concave-increasing canonical form.
  if (options.curve == KneedleCurve::kConvexDecreasing) {
    for (size_t i = 0; i < n; ++i) yn[i] = 1.0 - yn[i];
  }

  // 3. Difference curve.
  std::vector<double> diff(n);
  for (size_t i = 0; i < n; ++i) diff[i] = yn[i] - xn[i];

  // 4. Local maxima of the difference curve, with the sensitivity cutoff.
  double step_sum = 0.0;
  for (size_t i = 1; i < n; ++i) step_sum += xn[i] - xn[i - 1];
  const double avg_step = step_sum / static_cast<double>(n - 1);

  std::optional<size_t> best;
  for (size_t i = 1; i + 1 < n; ++i) {
    if (diff[i] >= diff[i - 1] && diff[i] >= diff[i + 1]) {
      const double threshold = diff[i] - options.sensitivity * avg_step;
      // Accept the candidate if the difference curve drops below the
      // threshold before the next local maximum (original stopping rule).
      for (size_t j = i + 1; j < n; ++j) {
        if (diff[j] > diff[i]) break;  // a higher maximum supersedes
        if (diff[j] < threshold) {
          best = i;
          break;
        }
      }
      if (!best && i + 2 == n && diff[i] > 0.0) best = i;  // knee at the end
      if (best) break;
    }
  }
  return best;
}

}  // namespace slim
