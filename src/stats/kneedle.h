// Kneedle knee/elbow detection (Satopaa et al., ICDCS-W 2011), cited by the
// paper [36] for two auto-tuning decisions: the spatial-level selection
// (Sec. 3.3, "best trade-off point detection algorithm (aka. elbow point
// detection) as implemented in [36]") and ST-Link's k/l selection.
#ifndef SLIM_STATS_KNEEDLE_H_
#define SLIM_STATS_KNEEDLE_H_

#include <cstddef>
#include <optional>
#include <vector>

namespace slim {

/// Curve shape expected by the detector.
enum class KneedleCurve {
  kConcaveIncreasing,  // knee of y rising with diminishing returns
  kConvexDecreasing,   // elbow of y falling with diminishing returns
};

/// Options for the detector.
struct KneedleOptions {
  KneedleCurve curve = KneedleCurve::kConvexDecreasing;
  /// Sensitivity S of the original algorithm: larger is more conservative.
  double sensitivity = 1.0;
};

/// Returns the index (into x/y) of the detected knee/elbow, or nullopt when
/// the curve has no knee (e.g. a straight line). x must be strictly
/// increasing; x and y must have equal size >= 3.
std::optional<size_t> FindKneedle(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  const KneedleOptions& options = {});

}  // namespace slim

#endif  // SLIM_STATS_KNEEDLE_H_
