#include "stats/gmm2d.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace slim {
namespace {

constexpr double kLog2Pi = 1.8378770664093453;  // log(2*pi)
constexpr double kLogFloor = -745.0;            // ~log(DBL_MIN)

// Determinant and inverse of [[xx, xy], [xy, yy]].
struct Cov2 {
  double det;
  double inv_xx, inv_xy, inv_yy;
};

Cov2 Invert(double xx, double xy, double yy) {
  Cov2 c;
  c.det = xx * yy - xy * xy;
  SLIM_DCHECK(c.det > 0.0);
  c.inv_xx = yy / c.det;
  c.inv_yy = xx / c.det;
  c.inv_xy = -xy / c.det;
  return c;
}

// Enforces a minimum eigenvalue on a symmetric 2x2 covariance.
void FloorCovariance(double floor, double* xx, double* xy, double* yy) {
  const double tr = *xx + *yy;
  const double det = *xx * *yy - *xy * *xy;
  const double disc = std::sqrt(std::max(0.0, tr * tr / 4.0 - det));
  const double lmin = tr / 2.0 - disc;
  if (lmin >= floor) return;
  // Shift both eigenvalues up by (floor - lmin): adds a multiple of I.
  const double shift = floor - lmin;
  *xx += shift;
  *yy += shift;
}

}  // namespace

double Gaussian2D::LogPdf(const Point2& p) const {
  const Cov2 c = Invert(cov_xx, cov_xy, cov_yy);
  const double dx = p.x - mean.x;
  const double dy = p.y - mean.y;
  const double maha =
      dx * dx * c.inv_xx + 2.0 * dx * dy * c.inv_xy + dy * dy * c.inv_yy;
  // N(p; mu, Sigma) in 2-D: -log(2*pi) - log(det)/2 - maha/2.
  return -kLog2Pi - 0.5 * std::log(c.det) - 0.5 * maha;
}

double Gaussian2D::Pdf(const Point2& p) const { return std::exp(LogPdf(p)); }

double GaussianMixture2D::Pdf(const Point2& p) const {
  double total = 0.0;
  for (const auto& c : components) total += c.weight * c.Pdf(p);
  return total;
}

double GaussianMixture2D::LogPdf(const Point2& p) const {
  const double total = Pdf(p);
  if (total <= 0.0) return kLogFloor;
  return std::max(std::log(total), kLogFloor);
}

Result<GaussianMixture2D> FitGmm2D(const std::vector<Point2>& points,
                                   const Gmm2DFitOptions& options) {
  if (points.empty()) return Status::InvalidArgument("FitGmm2D: no points");
  if (options.num_components < 1) {
    return Status::InvalidArgument("num_components must be >= 1");
  }

  // Deterministic farthest-point initial centers.
  std::vector<Point2> centers;
  centers.push_back(points.front());
  while (centers.size() < static_cast<size_t>(options.num_components)) {
    double best_d = -1.0;
    Point2 best = points.front();
    for (const Point2& p : points) {
      double dmin = std::numeric_limits<double>::infinity();
      for (const Point2& c : centers) {
        const double d = (p.x - c.x) * (p.x - c.x) + (p.y - c.y) * (p.y - c.y);
        dmin = std::min(dmin, d);
      }
      if (dmin > best_d) {
        best_d = dmin;
        best = p;
      }
    }
    if (best_d <= 0.0) break;  // fewer distinct points than K
    centers.push_back(best);
  }
  const int keff = static_cast<int>(centers.size());

  GaussianMixture2D gmm;
  gmm.components.resize(static_cast<size_t>(keff));
  for (int c = 0; c < keff; ++c) {
    auto& comp = gmm.components[static_cast<size_t>(c)];
    comp.weight = 1.0 / static_cast<double>(keff);
    comp.mean = centers[static_cast<size_t>(c)];
    comp.cov_xx = comp.cov_yy = std::max(options.covariance_floor, 1.0);
    comp.cov_xy = 0.0;
  }

  const size_t n = points.size();
  std::vector<double> resp(n * static_cast<size_t>(keff));
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (gmm.iterations = 0; gmm.iterations < options.max_iterations;
       ++gmm.iterations) {
    // E-step.
    double ll = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double total = 0.0;
      for (int c = 0; c < keff; ++c) {
        const auto& comp = gmm.components[static_cast<size_t>(c)];
        const double p = comp.weight * comp.Pdf(points[i]);
        resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)] = p;
        total += p;
      }
      if (total <= 0.0) {
        for (int c = 0; c < keff; ++c) {
          resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)] =
              1.0 / static_cast<double>(keff);
        }
        ll += kLogFloor;
      } else {
        for (int c = 0; c < keff; ++c) {
          resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)] /= total;
        }
        ll += std::log(total);
      }
    }
    gmm.log_likelihood = ll;

    // M-step.
    for (int c = 0; c < keff; ++c) {
      double nk = 0.0, mx = 0.0, my = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r =
            resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)];
        nk += r;
        mx += r * points[i].x;
        my += r * points[i].y;
      }
      auto& comp = gmm.components[static_cast<size_t>(c)];
      if (nk < 1e-10) {
        comp.weight = 1e-10;
        continue;
      }
      mx /= nk;
      my /= nk;
      double sxx = 0.0, sxy = 0.0, syy = 0.0;
      for (size_t i = 0; i < n; ++i) {
        const double r =
            resp[i * static_cast<size_t>(keff) + static_cast<size_t>(c)];
        const double dx = points[i].x - mx;
        const double dy = points[i].y - my;
        sxx += r * dx * dx;
        sxy += r * dx * dy;
        syy += r * dy * dy;
      }
      comp.weight = nk / static_cast<double>(n);
      comp.mean = {mx, my};
      comp.cov_xx = sxx / nk;
      comp.cov_xy = sxy / nk;
      comp.cov_yy = syy / nk;
      FloorCovariance(options.covariance_floor, &comp.cov_xx, &comp.cov_xy,
                      &comp.cov_yy);
    }
    double wsum = 0.0;
    for (const auto& c : gmm.components) wsum += c.weight;
    for (auto& c : gmm.components) c.weight /= wsum;

    if (std::abs(ll - prev_ll) / static_cast<double>(n) < options.tolerance) {
      gmm.converged = true;
      break;
    }
    prev_ll = ll;
  }
  return gmm;
}

}  // namespace slim
