#include "stats/lambert_w.h"

#include <cmath>

#include "common/check.h"

namespace slim {

double LambertW0(double x) {
  constexpr double kMinArg = -0.36787944117144233;  // -1/e
  SLIM_CHECK_MSG(x >= kMinArg - 1e-12, "LambertW0 defined for x >= -1/e");
  if (x < kMinArg) x = kMinArg;
  if (x == 0.0) return 0.0;

  // Initial guess: series near 0, log-based for large x, sqrt expansion
  // near the branch point.
  double w;
  if (x < -0.3) {
    // Clamp against tiny negative rounding at the branch point itself.
    const double arg = std::max(0.0, 2.0 * (std::exp(1.0) * x + 1.0));
    const double p = std::sqrt(arg);
    w = -1.0 + p - p * p / 3.0;
  } else if (x < 1.0) {
    w = x * (1.0 - x + 1.5 * x * x);
  } else if (x < 10.0) {
    // log(1 + x) is within ~20% of W on [1, 10); Halley does the rest.
    w = std::log(1.0 + x);
  } else {
    const double lx = std::log(x);
    const double llx = std::log(lx);
    w = lx - llx + llx / lx;
  }

  for (int it = 0; it < 64; ++it) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    if (f == 0.0) break;
    // Halley step; at the branch point (w = -1) the correction term's
    // denominator vanishes, so fall back to plain Newton there.
    double denom = ew * (w + 1.0);
    const double halley_denom = 2.0 * w + 2.0;
    if (halley_denom != 0.0) denom -= (w + 2.0) * f / halley_denom;
    if (denom == 0.0 || !std::isfinite(denom)) break;
    const double dw = f / denom;
    w -= dw;
    if (std::abs(dw) < 1e-14 * (1.0 + std::abs(w))) break;
  }
  return w;
}

}  // namespace slim
