// 1-D Gaussian Mixture Model fitted with EM.
//
// SLIM fits a two-component mixture over the matched-edge weights: one
// component models the false-positive links, the other (larger mean) the
// true positives, and the automated stop threshold is derived from the
// components' CDFs (paper Sec. 3.2). The fitter is generic in the number of
// components; SLIM uses K = 2.
#ifndef SLIM_STATS_GMM1D_H_
#define SLIM_STATS_GMM1D_H_

#include <vector>

#include "common/status.h"

namespace slim {

/// One mixture component.
struct Gaussian1D {
  double weight = 0.0;  // mixing proportion, sums to 1 across components
  double mean = 0.0;
  double variance = 1.0;

  /// Component density at x (without the mixing weight).
  double Pdf(double x) const;
  /// Component CDF at x (without the mixing weight).
  double Cdf(double x) const;
};

/// A fitted mixture, components sorted by ascending mean.
struct GaussianMixture1D {
  std::vector<Gaussian1D> components;
  double log_likelihood = 0.0;
  int iterations = 0;
  bool converged = false;

  /// Mixture density at x.
  double Pdf(double x) const;
  /// Mixture CDF at x.
  double Cdf(double x) const;
  /// Posterior responsibility of component k at x.
  double Responsibility(int k, double x) const;
};

/// Options for FitGmm1D.
struct GmmFitOptions {
  int num_components = 2;
  int max_iterations = 200;
  /// EM stops when the per-point log-likelihood improves by less than this.
  double tolerance = 1e-7;
  /// Variance floor, as a fraction of the data variance (keeps components
  /// from collapsing onto a single point).
  double variance_floor_fraction = 1e-6;
};

/// Fits a K-component mixture with EM, initialised from 1-D k-means.
/// Fails when values.size() < K or all values are identical.
Result<GaussianMixture1D> FitGmm1D(const std::vector<double>& values,
                                   const GmmFitOptions& options = {});

}  // namespace slim

#endif  // SLIM_STATS_GMM1D_H_
