#include "stats/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace slim {

KMeans1DResult KMeans1D(const std::vector<double>& values, int k,
                        int max_iterations) {
  SLIM_CHECK_MSG(!values.empty(), "KMeans1D requires values");
  SLIM_CHECK_MSG(k >= 1, "KMeans1D requires k >= 1");

  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  k = std::min<int>(k, static_cast<int>(sorted.size()));

  KMeans1DResult res;
  // Quantile init over distinct values: deterministic and spread out.
  res.centers.resize(static_cast<size_t>(k));
  for (int c = 0; c < k; ++c) {
    const double q = (static_cast<double>(c) + 0.5) / static_cast<double>(k);
    res.centers[static_cast<size_t>(c)] =
        sorted[static_cast<size_t>(q * static_cast<double>(sorted.size() - 1))];
  }

  res.assignment.assign(values.size(), 0);
  for (res.iterations = 0; res.iterations < max_iterations; ++res.iterations) {
    bool changed = false;
    // Assign.
    for (size_t i = 0; i < values.size(); ++i) {
      int best = 0;
      double best_d = std::numeric_limits<double>::infinity();
      for (int c = 0; c < k; ++c) {
        const double d =
            std::abs(values[i] - res.centers[static_cast<size_t>(c)]);
        if (d < best_d) {
          best_d = d;
          best = c;
        }
      }
      if (res.assignment[i] != best) {
        res.assignment[i] = best;
        changed = true;
      }
    }
    // Update.
    std::vector<double> sum(static_cast<size_t>(k), 0.0);
    std::vector<size_t> count(static_cast<size_t>(k), 0);
    for (size_t i = 0; i < values.size(); ++i) {
      sum[static_cast<size_t>(res.assignment[i])] += values[i];
      ++count[static_cast<size_t>(res.assignment[i])];
    }
    for (int c = 0; c < k; ++c) {
      if (count[static_cast<size_t>(c)] > 0) {
        res.centers[static_cast<size_t>(c)] =
            sum[static_cast<size_t>(c)] /
            static_cast<double>(count[static_cast<size_t>(c)]);
      }
    }
    if (!changed) {
      res.converged = true;
      break;
    }
  }

  // Sort centers ascending and remap assignments.
  std::vector<size_t> order(static_cast<size_t>(k));
  for (size_t c = 0; c < order.size(); ++c) order[c] = c;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return res.centers[a] < res.centers[b];
  });
  std::vector<int> remap(static_cast<size_t>(k));
  std::vector<double> centers_sorted(static_cast<size_t>(k));
  for (size_t rank = 0; rank < order.size(); ++rank) {
    remap[order[rank]] = static_cast<int>(rank);
    centers_sorted[rank] = res.centers[order[rank]];
  }
  res.centers = std::move(centers_sorted);
  for (auto& a : res.assignment) a = remap[static_cast<size_t>(a)];
  res.cluster_size.assign(static_cast<size_t>(k), 0);
  for (int a : res.assignment) ++res.cluster_size[static_cast<size_t>(a)];
  return res;
}

double TwoMeansThreshold(const std::vector<double>& values) {
  const KMeans1DResult r = KMeans1D(values, 2);
  SLIM_CHECK_MSG(r.centers.size() == 2,
                 "TwoMeansThreshold requires >= 2 distinct values");
  return 0.5 * (r.centers[0] + r.centers[1]);
}

}  // namespace slim
