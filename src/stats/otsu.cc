#include "stats/otsu.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace slim {

double OtsuThreshold(const std::vector<double>& values, int num_bins) {
  SLIM_CHECK_MSG(values.size() >= 2, "OtsuThreshold requires >= 2 values");
  SLIM_CHECK_MSG(num_bins >= 2, "OtsuThreshold requires >= 2 bins");
  const auto [mn_it, mx_it] = std::minmax_element(values.begin(), values.end());
  const double mn = *mn_it, mx = *mx_it;
  SLIM_CHECK_MSG(mx > mn, "OtsuThreshold requires distinct values");

  const size_t bins = static_cast<size_t>(num_bins);
  std::vector<double> hist(bins, 0.0);
  const double scale = static_cast<double>(bins) / (mx - mn);
  for (double v : values) {
    size_t b = static_cast<size_t>((v - mn) * scale);
    if (b >= bins) b = bins - 1;
    hist[b] += 1.0;
  }
  const double total = static_cast<double>(values.size());
  for (double& h : hist) h /= total;

  double mu_total = 0.0;
  for (size_t b = 0; b < bins; ++b)
    mu_total += (static_cast<double>(b) + 0.5) * hist[b];

  // On perfectly separated data the between-class variance is flat across
  // the whole empty gap; average all maximising bins so the threshold lands
  // mid-gap (standard Otsu practice) instead of at the gap's low edge.
  double best_sigma = -1.0;
  double best_bin_sum = 0.0;
  size_t best_bin_count = 0;
  double w0 = 0.0, mu0_acc = 0.0;
  for (size_t b = 0; b + 1 < bins; ++b) {
    w0 += hist[b];
    mu0_acc += (static_cast<double>(b) + 0.5) * hist[b];
    const double w1 = 1.0 - w0;
    if (w0 <= 0.0 || w1 <= 0.0) continue;
    const double mu0 = mu0_acc / w0;
    const double mu1 = (mu_total - mu0_acc) / w1;
    const double sigma_b = w0 * w1 * (mu0 - mu1) * (mu0 - mu1);
    if (sigma_b > best_sigma + 1e-12) {
      best_sigma = sigma_b;
      best_bin_sum = static_cast<double>(b);
      best_bin_count = 1;
    } else if (sigma_b >= best_sigma - 1e-12) {
      best_bin_sum += static_cast<double>(b);
      ++best_bin_count;
    }
  }
  const double best_bin =
      best_bin_count > 0 ? best_bin_sum / static_cast<double>(best_bin_count)
                         : 0.0;
  // Threshold at the upper edge of the (averaged) best split bin.
  return mn + (best_bin + 1.0) / scale;
}

}  // namespace slim
