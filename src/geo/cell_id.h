// Hierarchical spatial grid, standing in for Google S2 (see DESIGN.md §1).
//
// The Earth's surface is partitioned by a lat/lng quadtree: level 0 is the
// whole surface, and each level splits every cell into a 2x2 grid, so level
// L is a 2^L x 2^L equirectangular grid. At the maximum level (28) a cell
// spans ~7.5 cm of latitude — finer than any positioning system SLIM
// ingests, and comparable to S2's leaf resolution for our purposes.
//
// SLIM uses exactly three capabilities of the spatial library, all provided
// here: (1) point -> cell id at a configurable level, (2) parent/child
// navigation between levels (for LSH dominating-cell queries at coarser
// levels than the history leaves), and (3) a geographic distance between
// cells (for the proximity function, Eq. 1 of the paper).
#ifndef SLIM_GEO_CELL_ID_H_
#define SLIM_GEO_CELL_ID_H_

#include <cstdint>
#include <functional>
#include <string>

#include "geo/latlng.h"

namespace slim {

/// Latitude/longitude axis-aligned rectangle (degrees), closed on the low
/// edges, open on the high edges (except at the domain boundary).
struct LatLngRect {
  double lat_lo = 0.0;
  double lat_hi = 0.0;
  double lng_lo = 0.0;
  double lng_hi = 0.0;

  LatLng Center() const {
    return {0.5 * (lat_lo + lat_hi), 0.5 * (lng_lo + lng_hi)};
  }
};

/// Identifier of one grid cell. 64-bit value ordering groups cells of the
/// same level; the all-zero value is the invalid sentinel.
///
/// Bit layout: [63:62]=validity tag (01), [61:56]=level, [55:28]=lat index i,
/// [27:0]=lng index j, with i, j in [0, 2^level).
class CellId {
 public:
  static constexpr int kMaxLevel = 28;

  /// Constructs the invalid cell id.
  constexpr CellId() : id_(0) {}

  /// Reconstructs a cell id from its raw 64-bit representation. The result
  /// may be invalid; check IsValid().
  static constexpr CellId FromRaw(uint64_t raw) { return CellId(raw); }

  /// The cell at `level` containing `point` (normalised first).
  /// Requires 0 <= level <= kMaxLevel.
  static CellId FromLatLng(const LatLng& point, int level);

  /// The cell with the given grid indices. Requires valid level and
  /// i, j < 2^level.
  static CellId FromIndices(int level, uint64_t i, uint64_t j);

  /// Parses the hex token produced by ToToken(). Returns invalid on garbage.
  static CellId FromToken(const std::string& token);

  bool IsValid() const;
  /// Hierarchy depth (0..kMaxLevel). Requires IsValid().
  int level() const;
  /// Latitude grid index in [0, 2^level). Requires IsValid().
  uint64_t i() const;
  /// Longitude grid index in [0, 2^level). Requires IsValid().
  uint64_t j() const;
  uint64_t raw() const { return id_; }

  /// Geodetic bounds of this cell. Requires IsValid().
  LatLngRect Bounds() const;
  /// Center point of this cell. Requires IsValid().
  LatLng CenterLatLng() const;

  /// The ancestor at `level` (<= this cell's level). Requires IsValid().
  CellId Parent(int level) const;
  /// The immediate parent; requires level() > 0.
  CellId Parent() const;
  /// Child k (0..3) one level down, in (i,j) bit order. Requires
  /// level() < kMaxLevel.
  CellId Child(int k) const;
  /// True if `other` equals this cell or is a descendant of it.
  bool Contains(CellId other) const;

  /// Lowercase-hex token; round-trips through FromToken().
  std::string ToToken() const;

  friend bool operator==(CellId a, CellId b) { return a.id_ == b.id_; }
  friend bool operator!=(CellId a, CellId b) { return a.id_ != b.id_; }
  friend bool operator<(CellId a, CellId b) { return a.id_ < b.id_; }

 private:
  explicit constexpr CellId(uint64_t id) : id_(id) {}

  uint64_t id_;
};

/// Minimum great-circle distance in meters between the two cells' bounding
/// rectangles (0 when the cells touch or overlap, e.g. for neighbours or an
/// ancestor/descendant pair). This is the `d` of the paper's Eq. 1.
double MinDistanceMeters(CellId a, CellId b);

/// Great-circle distance between the two cells' center points. Provided as
/// an ablation alternative to MinDistanceMeters.
double CenterDistanceMeters(CellId a, CellId b);

/// Approximate edge lengths (meters) of a cell at `level` at the equator:
/// useful for choosing spatial levels. Latitude extent is constant per
/// level; longitude extent shrinks with cos(lat).
double CellLatExtentMeters(int level);

}  // namespace slim

/// Hash support so CellId can key unordered containers.
template <>
struct std::hash<slim::CellId> {
  size_t operator()(slim::CellId c) const noexcept {
    // SplitMix64 finaliser over the raw id.
    uint64_t z = c.raw() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(z ^ (z >> 31));
  }
};

#endif  // SLIM_GEO_CELL_ID_H_
