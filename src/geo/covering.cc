#include "geo/covering.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace slim {

std::vector<CellId> CellsCoveringRect(const LatLngRect& rect, int level,
                                      size_t max_cells) {
  SLIM_CHECK_MSG(level >= 0 && level <= CellId::kMaxLevel,
                 "invalid cell level");
  SLIM_CHECK_MSG(rect.lat_hi >= rect.lat_lo, "invalid rect latitudes");

  const double lat_lo = std::clamp(rect.lat_lo, -90.0, 90.0);
  const double lat_hi = std::clamp(rect.lat_hi, -90.0, 90.0);

  const CellId sw = CellId::FromLatLng({lat_lo, rect.lng_lo}, level);
  const CellId ne_lat = CellId::FromLatLng({lat_hi, rect.lng_lo}, level);
  const uint64_t i_lo = sw.i();
  const uint64_t i_hi = ne_lat.i();

  // Longitude may wrap: enumerate column indices along the (possibly
  // wrapped) interval from lng_lo east to lng_hi.
  const uint64_t n = 1ULL << level;
  const uint64_t j_lo = CellId::FromLatLng({lat_lo, rect.lng_lo}, level).j();
  const uint64_t j_hi = CellId::FromLatLng({lat_lo, rect.lng_hi}, level).j();
  std::vector<uint64_t> cols;
  uint64_t j = j_lo;
  for (;;) {
    cols.push_back(j);
    if (j == j_hi) break;
    j = (j + 1) % n;
    SLIM_CHECK_MSG(cols.size() <= n, "covering column enumeration ran away");
  }

  std::vector<CellId> out;
  const size_t rows = static_cast<size_t>(i_hi - i_lo + 1);
  SLIM_CHECK_MSG(rows * cols.size() <= max_cells,
                 "covering exceeds max_cells; use a coarser level");
  out.reserve(rows * cols.size());
  for (uint64_t i = i_lo; i <= i_hi; ++i) {
    for (uint64_t c : cols) out.push_back(CellId::FromIndices(level, i, c));
  }
  return out;
}

std::vector<CellId> CellsCoveringDisc(const LatLng& center, double radius_m,
                                      int level, size_t max_cells) {
  SLIM_CHECK_MSG(radius_m >= 0.0, "radius must be non-negative");
  const LatLng c = center.Normalized();
  const double dlat = radius_m / kEarthRadiusMeters * (180.0 / M_PI);
  const double coslat =
      std::max(0.01, std::cos(c.lat_deg * M_PI / 180.0));
  const double dlng = std::min(180.0, dlat / coslat);
  LatLngRect rect;
  rect.lat_lo = c.lat_deg - dlat;
  rect.lat_hi = c.lat_deg + dlat;
  // Wrap the lng interval into [-180, 180).
  auto wrap = [](double lng) {
    double x = std::fmod(lng + 180.0, 360.0);
    if (x < 0) x += 360.0;
    return x - 180.0;
  };
  if (dlng >= 180.0) {
    rect.lng_lo = -180.0;
    rect.lng_hi = 179.999999;
  } else {
    rect.lng_lo = wrap(c.lng_deg - dlng);
    rect.lng_hi = wrap(c.lng_deg + dlng);
  }
  return CellsCoveringRect(rect, level, max_cells);
}

}  // namespace slim
