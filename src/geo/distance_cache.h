// Memoised cell-to-cell distances.
//
// Pairwise similarity scoring recomputes MinDistanceMeters for the same
// cell pairs constantly (hotspot cells recur across windows and entity
// pairs), and the underlying spherical trigonometry dominates the scoring
// profile. This cache keys on the unordered cell pair and is bounded: past
// `capacity` entries new pairs are computed without being stored.
//
// Not thread-safe by design — the scoring loop keeps one cache per worker
// shard.
#ifndef SLIM_GEO_DISTANCE_CACHE_H_
#define SLIM_GEO_DISTANCE_CACHE_H_

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <utility>

#include "geo/cell_id.h"

namespace slim {

/// Bounded memo table over MinDistanceMeters(a, b).
class CellDistanceCache {
 public:
  /// `capacity` bounds the number of stored pairs (0 disables storage,
  /// turning Get into a plain computation). The default keeps the table
  /// around ~50 MB worst case; fine-grained workloads overflow it and fall
  /// back to direct computation for the long tail of rare pairs.
  explicit CellDistanceCache(size_t capacity = 1 << 20)
      : capacity_(capacity) {
    map_.reserve(std::min<size_t>(capacity_, 1 << 16));
  }

  /// Minimum geographic distance between the two cells, in meters.
  double Get(CellId a, CellId b) {
    if (a.raw() > b.raw()) std::swap(a, b);
    const Key key{a.raw(), b.raw()};
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
    const double d = MinDistanceMeters(a, b);
    if (map_.size() < capacity_) map_.emplace(key, d);
    ++misses_;
    return d;
  }

  size_t size() const { return map_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  using Key = std::pair<uint64_t, uint64_t>;
  struct KeyHash {
    size_t operator()(const Key& k) const noexcept {
      uint64_t z = k.first * 0x9e3779b97f4a7c15ULL ^ k.second;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return static_cast<size_t>(z ^ (z >> 31));
    }
  };

  size_t capacity_;
  std::unordered_map<Key, double, KeyHash> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace slim

#endif  // SLIM_GEO_DISTANCE_CACHE_H_
