#include "geo/latlng.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace slim {
namespace {

constexpr double kDegToRad = M_PI / 180.0;
constexpr double kRadToDeg = 180.0 / M_PI;

}  // namespace

bool LatLng::IsValid() const {
  return lat_deg >= -90.0 && lat_deg <= 90.0 && lng_deg >= -180.0 &&
         lng_deg < 180.0;
}

LatLng LatLng::Normalized() const {
  LatLng out;
  out.lat_deg = std::clamp(lat_deg, -90.0, 90.0);
  double lng = std::fmod(lng_deg, 360.0);
  if (lng < -180.0) lng += 360.0;
  if (lng >= 180.0) lng -= 360.0;
  out.lng_deg = lng;
  return out;
}

std::string LatLng::ToString() const {
  return StrFormat("(%.6f, %.6f)", lat_deg, lng_deg);
}

double HaversineMeters(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlat = (b.lat_deg - a.lat_deg) * kDegToRad;
  const double dlng = (b.lng_deg - a.lng_deg) * kDegToRad;
  const double sin_dlat = std::sin(dlat / 2.0);
  const double sin_dlng = std::sin(dlng / 2.0);
  const double h =
      sin_dlat * sin_dlat +
      std::cos(lat1) * std::cos(lat2) * sin_dlng * sin_dlng;
  return 2.0 * kEarthRadiusMeters * std::asin(std::min(1.0, std::sqrt(h)));
}

LatLng DestinationPoint(const LatLng& origin, double bearing_deg,
                        double distance_m) {
  const double lat1 = origin.lat_deg * kDegToRad;
  const double lng1 = origin.lng_deg * kDegToRad;
  const double brg = bearing_deg * kDegToRad;
  const double ang = distance_m / kEarthRadiusMeters;
  const double sin_lat2 = std::sin(lat1) * std::cos(ang) +
                          std::cos(lat1) * std::sin(ang) * std::cos(brg);
  const double lat2 = std::asin(std::clamp(sin_lat2, -1.0, 1.0));
  const double y = std::sin(brg) * std::sin(ang) * std::cos(lat1);
  const double x = std::cos(ang) - std::sin(lat1) * sin_lat2;
  const double lng2 = lng1 + std::atan2(y, x);
  return LatLng{lat2 * kRadToDeg, lng2 * kRadToDeg}.Normalized();
}

double InitialBearingDeg(const LatLng& a, const LatLng& b) {
  const double lat1 = a.lat_deg * kDegToRad;
  const double lat2 = b.lat_deg * kDegToRad;
  const double dlng = (b.lng_deg - a.lng_deg) * kDegToRad;
  const double y = std::sin(dlng) * std::cos(lat2);
  const double x = std::cos(lat1) * std::sin(lat2) -
                   std::sin(lat1) * std::cos(lat2) * std::cos(dlng);
  double brg = std::atan2(y, x) * kRadToDeg;
  if (brg < 0.0) brg += 360.0;
  return brg;
}

}  // namespace slim
