// Cell coverings of simple regions.
//
// Supports the paper's region-records extension (Sec. 2.1): "our approach
// can be extended to datasets that contain record locations as regions, by
// copying a record into multiple cells within the mobility histories". A
// covering enumerates the grid cells of one level that intersect a
// geodetic rectangle or a disc around a point.
#ifndef SLIM_GEO_COVERING_H_
#define SLIM_GEO_COVERING_H_

#include <vector>

#include "geo/cell_id.h"

namespace slim {

/// All cells at `level` whose bounds intersect `rect` (lat clamped to the
/// poles, lng wrapped across the antimeridian). `max_cells` guards against
/// accidental huge enumerations at fine levels; the call aborts if the
/// covering would exceed it.
std::vector<CellId> CellsCoveringRect(const LatLngRect& rect, int level,
                                      size_t max_cells = 4096);

/// All cells at `level` intersecting the `radius_m` disc around `center`
/// (approximated by the disc's bounding rectangle).
std::vector<CellId> CellsCoveringDisc(const LatLng& center, double radius_m,
                                      int level, size_t max_cells = 4096);

}  // namespace slim

#endif  // SLIM_GEO_COVERING_H_
