#include "geo/cell_id.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace slim {
namespace {

constexpr uint64_t kValidTag = 1ULL << 62;
constexpr int kLevelShift = 56;
constexpr int kIShift = 28;
constexpr uint64_t kIndexMask = (1ULL << 28) - 1;
constexpr uint64_t kLevelMask = 0x3f;

double GridCount(int level) { return std::ldexp(1.0, level); }  // 2^level

}  // namespace

CellId CellId::FromLatLng(const LatLng& point, int level) {
  SLIM_CHECK_MSG(level >= 0 && level <= kMaxLevel, "invalid cell level");
  const LatLng p = point.Normalized();
  const double n = GridCount(level);
  // Map lat [-90,90] -> [0,n), lng [-180,180) -> [0,n).
  double fi = (p.lat_deg + 90.0) / 180.0 * n;
  double fj = (p.lng_deg + 180.0) / 360.0 * n;
  uint64_t i = static_cast<uint64_t>(std::min(fi, n - 1.0));
  uint64_t j = static_cast<uint64_t>(std::min(fj, n - 1.0));
  return FromIndices(level, i, j);
}

CellId CellId::FromIndices(int level, uint64_t i, uint64_t j) {
  SLIM_CHECK_MSG(level >= 0 && level <= kMaxLevel, "invalid cell level");
  const uint64_t n = 1ULL << level;
  SLIM_CHECK_MSG(i < n && j < n, "cell index out of range for level");
  return CellId(kValidTag | (static_cast<uint64_t>(level) << kLevelShift) |
                (i << kIShift) | j);
}

CellId CellId::FromToken(const std::string& token) {
  if (token.empty() || token.size() > 16) return CellId();
  uint64_t raw = 0;
  for (char ch : token) {
    raw <<= 4;
    if (ch >= '0' && ch <= '9') {
      raw |= static_cast<uint64_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      raw |= static_cast<uint64_t>(ch - 'a' + 10);
    } else {
      return CellId();
    }
  }
  CellId c(raw);
  return c.IsValid() ? c : CellId();
}

bool CellId::IsValid() const {
  if ((id_ & kValidTag) == 0) return false;
  if (id_ >> 63) return false;
  const int lvl = static_cast<int>((id_ >> kLevelShift) & kLevelMask);
  if (lvl > kMaxLevel) return false;
  const uint64_t n = 1ULL << lvl;
  return ((id_ >> kIShift) & kIndexMask) < n && (id_ & kIndexMask) < n;
}

int CellId::level() const {
  SLIM_DCHECK(IsValid());
  return static_cast<int>((id_ >> kLevelShift) & kLevelMask);
}

uint64_t CellId::i() const {
  SLIM_DCHECK(IsValid());
  return (id_ >> kIShift) & kIndexMask;
}

uint64_t CellId::j() const {
  SLIM_DCHECK(IsValid());
  return id_ & kIndexMask;
}

LatLngRect CellId::Bounds() const {
  SLIM_CHECK(IsValid());
  const double n = GridCount(level());
  LatLngRect r;
  r.lat_lo = -90.0 + 180.0 * static_cast<double>(i()) / n;
  r.lat_hi = -90.0 + 180.0 * static_cast<double>(i() + 1) / n;
  r.lng_lo = -180.0 + 360.0 * static_cast<double>(j()) / n;
  r.lng_hi = -180.0 + 360.0 * static_cast<double>(j() + 1) / n;
  return r;
}

LatLng CellId::CenterLatLng() const { return Bounds().Center(); }

CellId CellId::Parent(int target_level) const {
  SLIM_CHECK(IsValid());
  SLIM_CHECK_MSG(target_level >= 0 && target_level <= level(),
                 "Parent level must be in [0, level()]");
  const int shift = level() - target_level;
  return FromIndices(target_level, i() >> shift, j() >> shift);
}

CellId CellId::Parent() const {
  SLIM_CHECK_MSG(level() > 0, "level-0 cell has no parent");
  return Parent(level() - 1);
}

CellId CellId::Child(int k) const {
  SLIM_CHECK(IsValid());
  SLIM_CHECK_MSG(k >= 0 && k < 4, "child index must be 0..3");
  SLIM_CHECK_MSG(level() < kMaxLevel, "cell is already at kMaxLevel");
  const uint64_t ci = (i() << 1) | static_cast<uint64_t>(k >> 1);
  const uint64_t cj = (j() << 1) | static_cast<uint64_t>(k & 1);
  return FromIndices(level() + 1, ci, cj);
}

bool CellId::Contains(CellId other) const {
  if (!IsValid() || !other.IsValid()) return false;
  if (other.level() < level()) return false;
  return other.Parent(level()) == *this;
}

std::string CellId::ToToken() const {
  return StrFormat("%llx", static_cast<unsigned long long>(id_));
}

namespace {

// Nearest latitudes between two intervals: if they overlap, both outputs are
// the overlap endpoint of largest |lat| (great-circle longitude gaps shrink
// toward the poles, so the minimum distance uses the most poleward common
// latitude); otherwise the facing endpoints.
void NearestLats(const LatLngRect& a, const LatLngRect& b, double* la,
                 double* lb) {
  if (a.lat_hi < b.lat_lo) {
    *la = a.lat_hi;
    *lb = b.lat_lo;
  } else if (b.lat_hi < a.lat_lo) {
    *la = a.lat_lo;
    *lb = b.lat_hi;
  } else {
    const double lo = std::max(a.lat_lo, b.lat_lo);
    const double hi = std::min(a.lat_hi, b.lat_hi);
    const double poleward = std::abs(lo) > std::abs(hi) ? lo : hi;
    *la = poleward;
    *lb = poleward;
  }
}

// Nearest longitudes between two intervals on the [-180, 180) circle.
void NearestLngs(const LatLngRect& a, const LatLngRect& b, double* la,
                 double* lb) {
  // Overlap without wrap (cells never wrap across the antimeridian).
  if (a.lng_lo <= b.lng_hi && b.lng_lo <= a.lng_hi) {
    const double common = 0.5 * (std::max(a.lng_lo, b.lng_lo) +
                                 std::min(a.lng_hi, b.lng_hi));
    *la = common;
    *lb = common;
    return;
  }
  // Two candidate gaps: eastward from a to b and eastward from b to a.
  auto wrap360 = [](double x) {
    double y = std::fmod(x, 360.0);
    if (y < 0) y += 360.0;
    return y;
  };
  const double gap_ab = wrap360(b.lng_lo - a.lng_hi);  // a's east edge -> b
  const double gap_ba = wrap360(a.lng_lo - b.lng_hi);  // b's east edge -> a
  if (gap_ab <= gap_ba) {
    *la = a.lng_hi;
    *lb = b.lng_lo;
  } else {
    *la = a.lng_lo;
    *lb = b.lng_hi;
  }
}

}  // namespace

double MinDistanceMeters(CellId a, CellId b) {
  SLIM_CHECK(a.IsValid() && b.IsValid());
  if (a == b || a.Contains(b) || b.Contains(a)) return 0.0;
  const LatLngRect ra = a.Bounds();
  const LatLngRect rb = b.Bounds();
  double lat_a, lat_b, lng_a, lng_b;
  NearestLats(ra, rb, &lat_a, &lat_b);
  NearestLngs(ra, rb, &lng_a, &lng_b);
  return HaversineMeters(LatLng{lat_a, lng_a}, LatLng{lat_b, lng_b});
}

double CenterDistanceMeters(CellId a, CellId b) {
  SLIM_CHECK(a.IsValid() && b.IsValid());
  return HaversineMeters(a.CenterLatLng(), b.CenterLatLng());
}

double CellLatExtentMeters(int level) {
  SLIM_CHECK_MSG(level >= 0 && level <= CellId::kMaxLevel,
                 "invalid cell level");
  const double degrees = 180.0 / GridCount(level);
  return degrees * (M_PI / 180.0) * kEarthRadiusMeters;
}

}  // namespace slim
