// Geodetic point type and great-circle helpers.
//
// SLIM only needs distances and simple forward geodesics (for the synthetic
// workload generators), so a spherical Earth model is used throughout with
// the IUGG mean radius. All distances are meters, all angles degrees.
#ifndef SLIM_GEO_LATLNG_H_
#define SLIM_GEO_LATLNG_H_

#include <string>

namespace slim {

/// Mean Earth radius in meters (IUGG).
inline constexpr double kEarthRadiusMeters = 6371008.8;

/// A WGS84-style latitude/longitude pair in degrees.
/// Valid range: lat in [-90, 90], lng in [-180, 180).
struct LatLng {
  double lat_deg = 0.0;
  double lng_deg = 0.0;

  /// True if both coordinates are inside the valid range.
  bool IsValid() const;

  /// Clamps latitude into [-90, 90] and wraps longitude into [-180, 180).
  LatLng Normalized() const;

  bool operator==(const LatLng& other) const = default;

  /// "(<lat>, <lng>)" with 6 decimal places (~0.1 m resolution).
  std::string ToString() const;
};

/// Great-circle (haversine) distance between two points, in meters.
double HaversineMeters(const LatLng& a, const LatLng& b);

/// Forward geodesic on the sphere: the point reached by travelling
/// `distance_m` meters from `origin` along `bearing_deg` (clockwise from
/// north). Used by the trajectory generators.
LatLng DestinationPoint(const LatLng& origin, double bearing_deg,
                        double distance_m);

/// Initial bearing (degrees clockwise from north, in [0, 360)) of the
/// great-circle path from `a` to `b`.
double InitialBearingDeg(const LatLng& a, const LatLng& b);

}  // namespace slim

#endif  // SLIM_GEO_LATLNG_H_
