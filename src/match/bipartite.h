// Weighted bipartite graph over the entities of the two datasets
// (paper Sec. 3.2): left vertices come from dataset E, right vertices from
// dataset I, and edge weights are similarity scores. Only positive-score
// pairs are added (the paper adds no edge for negative scores).
#ifndef SLIM_MATCH_BIPARTITE_H_
#define SLIM_MATCH_BIPARTITE_H_

#include <cstddef>
#include <vector>

#include "data/record.h"

namespace slim {

/// One weighted edge (u from dataset E, v from dataset I).
struct WeightedEdge {
  EntityId u = 0;
  EntityId v = 0;
  double weight = 0.0;

  bool operator==(const WeightedEdge&) const = default;
};

/// The canonical (u, v) edge order every driver seals its edge set into.
/// A total order whenever each (u, v) pair appears once (each pair is
/// scored exactly once), so the sealed graph is independent of thread,
/// shard, and spill-run boundaries.
inline bool PairEdgeOrder(const WeightedEdge& a, const WeightedEdge& b) {
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

/// Edge-list bipartite graph. Vertices are implicit (any EntityId may
/// appear); parallel edges are not checked — callers add each (u, v) once.
class BipartiteGraph {
 public:
  BipartiteGraph() = default;
  explicit BipartiteGraph(std::vector<WeightedEdge> edges)
      : edges_(std::move(edges)) {}

  void AddEdge(EntityId u, EntityId v, double weight) {
    edges_.push_back({u, v, weight});
  }
  void Reserve(size_t n) { edges_.reserve(n); }

  const std::vector<WeightedEdge>& edges() const { return edges_; }
  size_t num_edges() const { return edges_.size(); }

  /// Distinct left / right vertex counts.
  size_t num_left_vertices() const;
  size_t num_right_vertices() const;

 private:
  std::vector<WeightedEdge> edges_;
};

}  // namespace slim

#endif  // SLIM_MATCH_BIPARTITE_H_
