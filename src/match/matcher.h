// Maximum-weight bipartite matching (the assignment problem, paper
// Sec. 3.2).
//
// SLIM adopts the simple greedy heuristic — "link the pair with the highest
// similarity at each step" — which is what the paper evaluates. An exact
// O(n^3) Hungarian solver is provided as a reference implementation for the
// ablation benches and for verifying how far the heuristic is from optimal
// on small instances.
#ifndef SLIM_MATCH_MATCHER_H_
#define SLIM_MATCH_MATCHER_H_

#include <vector>

#include "match/bipartite.h"

namespace slim {

/// A one-to-one matching: no entity appears in more than one selected edge.
struct Matching {
  std::vector<WeightedEdge> pairs;
  double total_weight = 0.0;

  /// Verifies the one-to-one constraint; used by tests and SLIM_DCHECKs.
  bool IsValidMatching() const;
};

/// Greedy maximum-sum matching: repeatedly selects the heaviest remaining
/// edge whose endpoints are both unmatched. Deterministic: ties break on
/// (u, v). O(E log E).
Matching GreedyMaxWeightMatching(const BipartiteGraph& graph);

/// Exact maximum-weight bipartite matching via the Hungarian algorithm
/// (shortest augmenting paths with potentials), treating absent edges as
/// weight 0 and dropping zero-weight pairs from the result. O(n^2 m) on the
/// dense matrix — intended for graphs up to a few thousand vertices.
Matching HungarianMaxWeightMatching(const BipartiteGraph& graph);

}  // namespace slim

#endif  // SLIM_MATCH_MATCHER_H_
