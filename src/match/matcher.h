// Maximum-weight bipartite matching (the assignment problem, paper
// Sec. 3.2).
//
// SLIM adopts the simple greedy heuristic — "link the pair with the highest
// similarity at each step" — which is what the paper evaluates. An exact
// O(n^3) Hungarian solver is provided as a reference implementation for the
// ablation benches and for verifying how far the heuristic is from optimal
// on small instances.
#ifndef SLIM_MATCH_MATCHER_H_
#define SLIM_MATCH_MATCHER_H_

#include <unordered_set>
#include <vector>

#include "match/bipartite.h"

namespace slim {

/// A one-to-one matching: no entity appears in more than one selected edge.
struct Matching {
  std::vector<WeightedEdge> pairs;
  double total_weight = 0.0;

  /// Verifies the one-to-one constraint; used by tests and SLIM_DCHECKs.
  bool IsValidMatching() const;
};

/// Comparator fixing the greedy selection order: heaviest edge first, ties
/// broken on (u, v). A total order whenever each (u, v) pair appears once,
/// which makes the greedy matching independent of how the edges were
/// produced — the property the external (run-merged) edge path relies on.
bool GreedyEdgeOrder(const WeightedEdge& a, const WeightedEdge& b);

/// Incremental greedy matcher for edge streams that already arrive in
/// GreedyEdgeOrder (e.g. the external matcher's score-ordered merge,
/// core/edge_spill.h). Offer() consumes one edge at a time, so the full
/// edge set never needs to be resident; Take() finalises. Offering edges
/// out of order is a programming error (SLIM_DCHECKed).
class StreamingGreedyMatcher {
 public:
  void Offer(const WeightedEdge& edge);
  Matching Take();

 private:
  Matching matching_;
  std::unordered_set<EntityId> used_u_, used_v_;
  WeightedEdge last_;
  bool any_ = false;
};

/// Greedy maximum-sum matching: repeatedly selects the heaviest remaining
/// edge whose endpoints are both unmatched. Deterministic: ties break on
/// (u, v). O(E log E). Equivalent to sorting by GreedyEdgeOrder and
/// streaming through StreamingGreedyMatcher (and implemented that way, so
/// the in-memory and streamed paths cannot drift).
Matching GreedyMaxWeightMatching(const BipartiteGraph& graph);

/// Exact maximum-weight bipartite matching via the Hungarian algorithm
/// (shortest augmenting paths with potentials), treating absent edges as
/// weight 0 and dropping zero-weight pairs from the result. O(n^2 m) on the
/// dense matrix — intended for graphs up to a few thousand vertices.
Matching HungarianMaxWeightMatching(const BipartiteGraph& graph);

}  // namespace slim

#endif  // SLIM_MATCH_MATCHER_H_
