#include "match/bipartite.h"

#include <unordered_set>

namespace slim {

size_t BipartiteGraph::num_left_vertices() const {
  std::unordered_set<EntityId> seen;
  for (const auto& e : edges_) seen.insert(e.u);
  return seen.size();
}

size_t BipartiteGraph::num_right_vertices() const {
  std::unordered_set<EntityId> seen;
  for (const auto& e : edges_) seen.insert(e.v);
  return seen.size();
}

}  // namespace slim
