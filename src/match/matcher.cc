#include "match/matcher.h"

#include <algorithm>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/check.h"

namespace slim {

bool Matching::IsValidMatching() const {
  std::unordered_set<EntityId> left, right;
  for (const auto& e : pairs) {
    if (!left.insert(e.u).second) return false;
    if (!right.insert(e.v).second) return false;
  }
  return true;
}

bool GreedyEdgeOrder(const WeightedEdge& a, const WeightedEdge& b) {
  if (a.weight != b.weight) return a.weight > b.weight;
  if (a.u != b.u) return a.u < b.u;
  return a.v < b.v;
}

void StreamingGreedyMatcher::Offer(const WeightedEdge& edge) {
  SLIM_DCHECK(!any_ || !GreedyEdgeOrder(edge, last_));
  last_ = edge;
  any_ = true;
  if (used_u_.count(edge.u) || used_v_.count(edge.v)) return;
  used_u_.insert(edge.u);
  used_v_.insert(edge.v);
  matching_.pairs.push_back(edge);
  matching_.total_weight += edge.weight;
}

Matching StreamingGreedyMatcher::Take() {
  SLIM_DCHECK(matching_.IsValidMatching());
  used_u_.clear();
  used_v_.clear();
  any_ = false;
  return std::move(matching_);
}

Matching GreedyMaxWeightMatching(const BipartiteGraph& graph) {
  std::vector<WeightedEdge> edges = graph.edges();
  std::sort(edges.begin(), edges.end(), GreedyEdgeOrder);
  StreamingGreedyMatcher matcher;
  for (const auto& e : edges) matcher.Offer(e);
  return matcher.Take();
}

Matching HungarianMaxWeightMatching(const BipartiteGraph& graph) {
  // Collect vertex universes; ensure rows <= cols by transposing if needed.
  std::vector<EntityId> lefts, rights;
  {
    std::unordered_set<EntityId> ls, rs;
    for (const auto& e : graph.edges()) {
      if (ls.insert(e.u).second) lefts.push_back(e.u);
      if (rs.insert(e.v).second) rights.push_back(e.v);
    }
  }
  std::sort(lefts.begin(), lefts.end());
  std::sort(rights.begin(), rights.end());
  const bool transposed = lefts.size() > rights.size();
  if (transposed) std::swap(lefts, rights);

  const size_t n = lefts.size();
  const size_t m = rights.size();
  Matching result;
  if (n == 0) return result;

  std::unordered_map<EntityId, size_t> lidx, ridx;
  for (size_t i = 0; i < n; ++i) lidx[lefts[i]] = i;
  for (size_t j = 0; j < m; ++j) ridx[rights[j]] = j;

  // Dense cost matrix, minimisation form: cost = -weight; absent edge = 0.
  std::vector<std::vector<double>> cost(n, std::vector<double>(m, 0.0));
  for (const auto& e : graph.edges()) {
    const size_t i = transposed ? lidx.at(e.v) : lidx.at(e.u);
    const size_t j = transposed ? ridx.at(e.u) : ridx.at(e.v);
    cost[i][j] = std::min(cost[i][j], -e.weight);
  }

  // Shortest-augmenting-path Hungarian (1-indexed internal arrays).
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> u_pot(n + 1, 0.0), v_pot(m + 1, 0.0);
  std::vector<size_t> p(m + 1, 0);    // p[j]: row matched to column j
  std::vector<size_t> way(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    p[0] = i;
    size_t j0 = 0;
    std::vector<double> minv(m + 1, kInf);
    std::vector<char> used(m + 1, 0);
    do {
      used[j0] = 1;
      const size_t i0 = p[j0];
      double delta = kInf;
      size_t j1 = 0;
      for (size_t j = 1; j <= m; ++j) {
        if (used[j]) continue;
        const double cur = cost[i0 - 1][j - 1] - u_pot[i0] - v_pot[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (size_t j = 0; j <= m; ++j) {
        if (used[j]) {
          u_pot[p[j]] += delta;
          v_pot[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  // Read out assignments; keep only pairs backed by a real positive edge.
  std::unordered_map<EntityId, std::unordered_map<EntityId, double>> weights;
  for (const auto& e : graph.edges()) weights[e.u][e.v] = e.weight;
  for (size_t j = 1; j <= m; ++j) {
    if (p[j] == 0) continue;
    const EntityId a = transposed ? rights[j - 1] : lefts[p[j] - 1];
    const EntityId b = transposed ? lefts[p[j] - 1] : rights[j - 1];
    const auto it = weights.find(a);
    if (it == weights.end()) continue;
    const auto jt = it->second.find(b);
    if (jt == it->second.end()) continue;
    result.pairs.push_back({a, b, jt->second});
    result.total_weight += jt->second;
  }
  std::sort(result.pairs.begin(), result.pairs.end(),
            [](const WeightedEdge& a, const WeightedEdge& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });
  SLIM_DCHECK(result.IsValidMatching());
  return result;
}

}  // namespace slim
