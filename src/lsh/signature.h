// LSH signatures for mobility histories (paper Sec. 4).
//
// A history's signature is the list of its *dominating grid cells* — the
// cell holding most of the entity's records — for a fixed series of
// non-overlapping query time windows that span the same global period in
// the same order for every history. Query windows with no records yield a
// placeholder that is omitted from band hashing. Signature similarity is
// the fraction of matching dominating cells.
#ifndef SLIM_LSH_SIGNATURE_H_
#define SLIM_LSH_SIGNATURE_H_

#include <cstdint>
#include <vector>

#include "temporal/window_tree.h"

namespace slim {

/// Placeholder raw cell value marking "no records in this query window".
inline constexpr uint64_t kSignaturePlaceholder = 0;

/// A history signature: raw cell ids (or placeholders), one per query
/// window, in global query order.
struct LshSignature {
  std::vector<uint64_t> cells;

  size_t size() const { return cells.size(); }
  bool IsPlaceholder(size_t idx) const {
    return cells[idx] == kSignaturePlaceholder;
  }
};

/// LSH configuration (paper Sec. 4 / Sec. 5.3 defaults).
struct LshConfig {
  /// Candidate-pair similarity threshold t; bands are sized so signatures
  /// with similarity >= t land in a common bucket with high probability.
  double similarity_threshold = 0.6;
  /// Spatial level of the dominating cells (coarser than or equal to the
  /// history leaf level; Fig. 8 sweeps 4..20, Sec. 5.3.2 uses 16).
  int signature_spatial_level = 16;
  /// Query window length in leaf windows (Fig. 8 sweeps 1..192; Sec. 5.3.2
  /// uses 48, i.e. 12 h for 15-minute leaves).
  int temporal_step_windows = 48;
  /// Buckets per band (Sec. 5.3: 4096 default, up to 2^20).
  size_t num_buckets = 4096;
  /// Salt for the band hash.
  uint64_t hash_seed = 0x51f15e11aa5eed01ULL;
};

/// Builds the signature of one history over the global query grid
/// [global_w_begin, global_w_end) in steps of `step_windows` leaf windows.
/// `spatial_level` must not exceed the tree's leaf level. An empty tree
/// produces an all-placeholder signature.
LshSignature BuildSignature(const WindowSegmentTree& tree,
                            int64_t global_w_begin, int64_t global_w_end,
                            int step_windows, int spatial_level);

/// Fraction of signature positions with identical dominating cells, over
/// the signature size (placeholder positions only match nothing — a
/// position where either side is a placeholder does not count as a match).
/// Requires equal sizes; empty signatures have similarity 0.
double SignatureSimilarity(const LshSignature& a, const LshSignature& b);

/// Number of bands b for signature size s and threshold t, per the paper:
/// b = e^{W(-s ln t)} (rounded, clamped to [1, s]). Requires s >= 1 and
/// 0 < t < 1.
int ComputeNumBands(size_t signature_size, double threshold);

/// Probability that two signatures of similarity `t` share at least one
/// identical band: 1 - (1 - t^r)^b (the S-curve).
double BandCollisionProbability(double t, int rows_per_band, int num_bands);

/// The S-curve's approximate inflection threshold (1/b)^(1/r).
double ApproximateThreshold(int rows_per_band, int num_bands);

}  // namespace slim

#endif  // SLIM_LSH_SIGNATURE_H_
