#include "lsh/lsh_index.h"

#include <algorithm>
#include <limits>

#include "common/check.h"

namespace slim {
namespace {

// 64-bit mix for band hashing (SplitMix64 finaliser).
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Hashes one band of a signature; returns false when every row is a
// placeholder (the band carries no evidence and must not collide).
bool HashBand(const LshSignature& sig, size_t row_begin, size_t row_end,
              uint64_t seed, uint64_t* out) {
  uint64_t h = seed ^ Mix(row_begin * 0x9e3779b97f4a7c15ULL);
  bool any = false;
  for (size_t row = row_begin; row < row_end && row < sig.size(); ++row) {
    if (sig.IsPlaceholder(row)) continue;
    any = true;
    // Positions participate so that the same cell in different query
    // windows does not collide.
    h = Mix(h ^ Mix((row + 1) * 0xd1b54a32d192ed03ULL) ^ sig.cells[row]);
  }
  *out = h;
  return any;
}

}  // namespace

LshIndex LshIndex::Build(const std::vector<Entry>& side_e,
                         const std::vector<Entry>& side_i,
                         const LshConfig& config) {
  SLIM_CHECK_MSG(config.num_buckets >= 1, "num_buckets must be >= 1");
  LshIndex index;

  // Global query grid over the union of occupied windows.
  int64_t w_lo = std::numeric_limits<int64_t>::max();
  int64_t w_hi = std::numeric_limits<int64_t>::min();
  auto widen = [&](const std::vector<Entry>& side) {
    for (const Entry& e : side) {
      SLIM_CHECK(e.tree != nullptr);
      if (e.tree->empty()) continue;
      w_lo = std::min(w_lo, e.tree->min_window());
      w_hi = std::max(w_hi, e.tree->max_window());
    }
  };
  widen(side_e);
  widen(side_i);
  if (w_lo > w_hi) return index;  // nothing occupied anywhere

  const int64_t w_end = w_hi + 1;
  // Signatures.
  for (const Entry& e : side_e) {
    index.left_signatures_[e.entity] =
        BuildSignature(*e.tree, w_lo, w_end, config.temporal_step_windows,
                       config.signature_spatial_level);
  }
  for (const Entry& e : side_i) {
    index.right_signatures_[e.entity] =
        BuildSignature(*e.tree, w_lo, w_end, config.temporal_step_windows,
                       config.signature_spatial_level);
  }
  index.signature_size_ = index.left_signatures_.empty()
                              ? (index.right_signatures_.empty()
                                     ? 0
                                     : index.right_signatures_.begin()
                                           ->second.size())
                              : index.left_signatures_.begin()->second.size();
  if (index.signature_size_ == 0) return index;

  // Banding (Lambert-W sizing).
  index.num_bands_ =
      ComputeNumBands(index.signature_size_, config.similarity_threshold);
  index.rows_per_band_ = static_cast<int>(
      (index.signature_size_ + static_cast<size_t>(index.num_bands_) - 1) /
      static_cast<size_t>(index.num_bands_));

  // Bucket tables, one per band: bucket -> (left entities, right entities).
  struct Bucket {
    std::vector<EntityId> left;
    std::vector<EntityId> right;
  };
  for (int band = 0; band < index.num_bands_; ++band) {
    const size_t row_begin =
        static_cast<size_t>(band) * static_cast<size_t>(index.rows_per_band_);
    const size_t row_end =
        row_begin + static_cast<size_t>(index.rows_per_band_);
    std::unordered_map<uint64_t, Bucket> buckets;

    for (const Entry& e : side_e) {
      uint64_t h;
      if (HashBand(index.left_signatures_.at(e.entity), row_begin, row_end,
                   config.hash_seed, &h)) {
        buckets[h % config.num_buckets].left.push_back(e.entity);
      }
    }
    for (const Entry& e : side_i) {
      uint64_t h;
      if (HashBand(index.right_signatures_.at(e.entity), row_begin, row_end,
                   config.hash_seed, &h)) {
        buckets[h % config.num_buckets].right.push_back(e.entity);
      }
    }
    for (const auto& [hash, bucket] : buckets) {
      if (bucket.left.empty() || bucket.right.empty()) continue;
      for (EntityId u : bucket.left) {
        auto& list = index.candidates_[u];
        list.insert(list.end(), bucket.right.begin(), bucket.right.end());
      }
    }
  }

  // De-duplicate candidate lists.
  for (auto& [u, list] : index.candidates_) {
    std::sort(list.begin(), list.end());
    list.erase(std::unique(list.begin(), list.end()), list.end());
    index.total_candidate_pairs_ += list.size();
  }
  return index;
}

const std::vector<EntityId>& LshIndex::CandidatesFor(EntityId u) const {
  const auto it = candidates_.find(u);
  return it == candidates_.end() ? empty_ : it->second;
}

const LshSignature* LshIndex::LeftSignature(EntityId u) const {
  const auto it = left_signatures_.find(u);
  return it == left_signatures_.end() ? nullptr : &it->second;
}

const LshSignature* LshIndex::RightSignature(EntityId v) const {
  const auto it = right_signatures_.find(v);
  return it == right_signatures_.end() ? nullptr : &it->second;
}

}  // namespace slim
