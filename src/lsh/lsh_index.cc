#include "lsh/lsh_index.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"

namespace slim {
namespace {

// 64-bit mix for band hashing (SplitMix64 finaliser).
uint64_t Mix(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Hashes one band of a signature; returns false when every row is a
// placeholder (the band carries no evidence and must not collide).
bool HashBand(const LshSignature& sig, size_t row_begin, size_t row_end,
              uint64_t seed, uint64_t* out) {
  uint64_t h = seed ^ Mix(row_begin * 0x9e3779b97f4a7c15ULL);
  bool any = false;
  for (size_t row = row_begin; row < row_end && row < sig.size(); ++row) {
    if (sig.IsPlaceholder(row)) continue;
    any = true;
    // Positions participate so that the same cell in different query
    // windows does not collide.
    h = Mix(h ^ Mix((row + 1) * 0xd1b54a32d192ed03ULL) ^ sig.cells[row]);
  }
  *out = h;
  return any;
}

// Marks "this entity's band was all placeholders; it lands in no bucket".
constexpr uint64_t kNoBucket = std::numeric_limits<uint64_t>::max();

}  // namespace

LshIndex::PositionIndex LshIndex::IndexPositions(
    const std::vector<Entry>& side) {
  PositionIndex index;
  index.reserve(side.size());
  for (size_t k = 0; k < side.size(); ++k) {
    index.emplace_back(side[k].entity, static_cast<uint32_t>(k));
  }
  std::sort(index.begin(), index.end());
  return index;
}

const uint32_t* LshIndex::FindPosition(const PositionIndex& index,
                                       EntityId entity) {
  const auto it = std::lower_bound(
      index.begin(), index.end(), entity,
      [](const auto& pair, EntityId e) { return pair.first < e; });
  if (it == index.end() || it->first != entity) return nullptr;
  return &it->second;
}

LshIndex LshIndex::Build(const std::vector<Entry>& side_e,
                         const std::vector<Entry>& side_i,
                         const LshConfig& config, int threads,
                         const LshWindowSpan* fixed_span) {
  return BuildImpl(side_e, side_i, config, threads, fixed_span, nullptr,
                   nullptr, nullptr);
}

LshIndex LshIndex::BuildReusing(const LshIndex& previous,
                                const std::vector<Entry>& side_e,
                                const std::vector<Entry>& side_i,
                                const std::vector<uint8_t>& fresh_e,
                                const std::vector<uint8_t>& fresh_i,
                                const LshConfig& config, int threads,
                                const LshWindowSpan* fixed_span) {
  SLIM_CHECK_MSG(fresh_e.size() == side_e.size() &&
                     fresh_i.size() == side_i.size(),
                 "fresh flags must parallel the side entries");
  return BuildImpl(side_e, side_i, config, threads, fixed_span, &previous,
                   &fresh_e, &fresh_i);
}

LshIndex LshIndex::BuildImpl(const std::vector<Entry>& side_e,
                             const std::vector<Entry>& side_i,
                             const LshConfig& config, int threads,
                             const LshWindowSpan* fixed_span,
                             const LshIndex* previous,
                             const std::vector<uint8_t>* fresh_e,
                             const std::vector<uint8_t>* fresh_i) {
  SLIM_CHECK_MSG(config.num_buckets >= 1, "num_buckets must be >= 1");
  LshIndex index;
  index.candidates_.resize(side_e.size());
  index.left_positions_ = IndexPositions(side_e);
  index.right_positions_ = IndexPositions(side_i);
  index.right_entities_.reserve(side_i.size());
  for (const Entry& e : side_i) index.right_entities_.push_back(e.entity);

  // Query grid: the caller-pinned span, else the union of occupied windows.
  int64_t w_lo = std::numeric_limits<int64_t>::max();
  int64_t w_hi = std::numeric_limits<int64_t>::min();
  if (fixed_span != nullptr) {
    w_lo = fixed_span->lo;
    w_hi = fixed_span->end - 1;
  } else {
    auto widen = [&](const std::vector<Entry>& side) {
      for (const Entry& e : side) {
        SLIM_CHECK(e.tree != nullptr);
        if (e.tree->empty()) continue;
        w_lo = std::min(w_lo, e.tree->min_window());
        w_hi = std::max(w_hi, e.tree->max_window());
      }
    };
    widen(side_e);
    widen(side_i);
  }
  if (w_lo > w_hi) {
    // Nothing occupied anywhere: empty signatures, no candidates.
    index.left_signatures_.resize(side_e.size());
    index.right_signatures_.resize(side_i.size());
    return index;
  }

  const int64_t w_end = w_hi + 1;
  index.span_ = {w_lo, w_end};
  if (previous != nullptr) {
    // Signature reuse is only sound over an identical query grid; the
    // incremental caller compares spans and falls back to Build() when
    // the grid moved, so a mismatch here is a caller bug.
    SLIM_CHECK_MSG(previous->span_.lo == w_lo && previous->span_.end == w_end,
                   "BuildReusing over a different query-grid span");
  }

  // Signatures: one per entity, independent of each other — shard over
  // entities into pre-sized vectors (entity order fixed by the caller).
  // With a `previous` index, an entity flagged not-fresh copies its old
  // signature instead of recomputing it (bit-identical: BuildSignature is
  // pure in the tree and the grid, and neither changed for it).
  index.left_signatures_.resize(side_e.size());
  index.right_signatures_.resize(side_i.size());
  auto build_side = [&](const std::vector<Entry>& side,
                        const std::vector<uint8_t>* fresh, bool left,
                        std::vector<LshSignature>& out) {
    ParallelFor(
        side.size(),
        [&](size_t begin, size_t end, int) {
          for (size_t k = begin; k < end; ++k) {
            if (previous != nullptr && fresh != nullptr && (*fresh)[k] == 0) {
              const LshSignature* prev =
                  left ? previous->LeftSignature(side[k].entity)
                       : previous->RightSignature(side[k].entity);
              if (prev != nullptr) {
                out[k] = *prev;
                continue;
              }
            }
            out[k] = BuildSignature(*side[k].tree, w_lo, w_end,
                                    config.temporal_step_windows,
                                    config.signature_spatial_level);
          }
        },
        threads);
  };
  build_side(side_e, fresh_e, true, index.left_signatures_);
  build_side(side_i, fresh_i, false, index.right_signatures_);
  index.signature_size_ =
      !index.left_signatures_.empty()
          ? index.left_signatures_.front().size()
          : (!index.right_signatures_.empty()
                 ? index.right_signatures_.front().size()
                 : 0);
  if (index.signature_size_ == 0) return index;

  // Banding (Lambert-W sizing).
  index.num_bands_ =
      ComputeNumBands(index.signature_size_, config.similarity_threshold);
  index.rows_per_band_ = static_cast<int>(
      (index.signature_size_ + static_cast<size_t>(index.num_bands_) - 1) /
      static_cast<size_t>(index.num_bands_));

  // Bucket tables, sharded over bands: each band hashes the right side into
  // its own bucket map and records every left entity's bucket key. Bands
  // are fully independent, and within a band rights are appended in side_i
  // order, so the tables never depend on scheduling.
  struct BandTable {
    // bucket key -> right-side positions, in side_i order.
    std::unordered_map<uint64_t, std::vector<uint32_t>> right_buckets;
    // per left-entity index: its bucket key, or kNoBucket.
    std::vector<uint64_t> left_key;
  };
  std::vector<BandTable> bands(static_cast<size_t>(index.num_bands_));
  ParallelFor(
      static_cast<size_t>(index.num_bands_),
      [&](size_t begin, size_t end, int) {
        for (size_t band = begin; band < end; ++band) {
          const size_t row_begin =
              band * static_cast<size_t>(index.rows_per_band_);
          const size_t row_end =
              row_begin + static_cast<size_t>(index.rows_per_band_);
          BandTable& table = bands[band];
          table.left_key.assign(side_e.size(), kNoBucket);
          uint64_t h;
          for (size_t k = 0; k < side_e.size(); ++k) {
            if (HashBand(index.left_signatures_[k], row_begin, row_end,
                         config.hash_seed, &h)) {
              table.left_key[k] = h % config.num_buckets;
            }
          }
          for (size_t k = 0; k < side_i.size(); ++k) {
            if (HashBand(index.right_signatures_[k], row_begin, row_end,
                         config.hash_seed, &h)) {
              table.right_buckets[h % config.num_buckets].push_back(
                  static_cast<uint32_t>(k));
            }
          }
        }
      },
      threads);

  // Candidate gathering + de-duplication, sharded over left entities: each
  // left entity unions its bucket's rights across bands (band order) and
  // sorts/uniques its own list.
  ParallelFor(
      side_e.size(),
      [&](size_t begin, size_t end, int) {
        for (size_t k = begin; k < end; ++k) {
          std::vector<uint32_t>& list = index.candidates_[k];
          for (const BandTable& table : bands) {
            const uint64_t key = table.left_key[k];
            if (key == kNoBucket) continue;
            const auto it = table.right_buckets.find(key);
            if (it == table.right_buckets.end()) continue;
            list.insert(list.end(), it->second.begin(), it->second.end());
          }
          std::sort(list.begin(), list.end());
          list.erase(std::unique(list.begin(), list.end()), list.end());
        }
      },
      threads);

  // The candidate-pair total, in left-entity order.
  for (const auto& list : index.candidates_) {
    index.total_candidate_pairs_ += list.size();
  }
  return index;
}

std::vector<EntityId> LshIndex::CandidatesFor(EntityId u) const {
  const uint32_t* pos = FindPosition(left_positions_, u);
  if (pos == nullptr) return {};
  std::vector<EntityId> out;
  out.reserve(candidates_[*pos].size());
  for (const uint32_t right_pos : candidates_[*pos]) {
    out.push_back(right_entities_[right_pos]);
  }
  return out;
}

const LshSignature* LshIndex::LeftSignature(EntityId u) const {
  const uint32_t* pos = FindPosition(left_positions_, u);
  return pos == nullptr ? nullptr : &left_signatures_[*pos];
}

const LshSignature* LshIndex::RightSignature(EntityId v) const {
  const uint32_t* pos = FindPosition(right_positions_, v);
  return pos == nullptr ? nullptr : &right_signatures_[*pos];
}

}  // namespace slim
