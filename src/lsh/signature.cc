#include "lsh/signature.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/lambert_w.h"

namespace slim {

LshSignature BuildSignature(const WindowSegmentTree& tree,
                            int64_t global_w_begin, int64_t global_w_end,
                            int step_windows, int spatial_level) {
  SLIM_CHECK_MSG(step_windows > 0, "temporal step must be positive");
  SLIM_CHECK_MSG(global_w_end > global_w_begin, "empty global window range");
  LshSignature sig;
  const int64_t span = global_w_end - global_w_begin;
  const int64_t steps =
      (span + step_windows - 1) / static_cast<int64_t>(step_windows);
  sig.cells.reserve(static_cast<size_t>(steps));
  for (int64_t q = 0; q < steps; ++q) {
    const int64_t lo = global_w_begin + q * step_windows;
    const int64_t hi = std::min(global_w_end, lo + step_windows);
    if (tree.empty()) {
      sig.cells.push_back(kSignaturePlaceholder);
      continue;
    }
    const auto dom = tree.DominatingCell(lo, hi, spatial_level);
    sig.cells.push_back(dom.has_value() ? dom->raw() : kSignaturePlaceholder);
  }
  return sig;
}

double SignatureSimilarity(const LshSignature& a, const LshSignature& b) {
  SLIM_CHECK_MSG(a.size() == b.size(), "signature size mismatch");
  if (a.size() == 0) return 0.0;
  size_t matches = 0;
  for (size_t k = 0; k < a.size(); ++k) {
    if (a.cells[k] != kSignaturePlaceholder && a.cells[k] == b.cells[k]) {
      ++matches;
    }
  }
  return static_cast<double>(matches) / static_cast<double>(a.size());
}

int ComputeNumBands(size_t signature_size, double threshold) {
  SLIM_CHECK_MSG(signature_size >= 1, "signature size must be >= 1");
  SLIM_CHECK_MSG(threshold > 0.0 && threshold < 1.0,
                 "threshold must be in (0, 1)");
  const double s = static_cast<double>(signature_size);
  const double b = std::exp(LambertW0(-s * std::log(threshold)));
  const long rounded = std::lround(b);
  return static_cast<int>(
      std::clamp<long>(rounded, 1, static_cast<long>(signature_size)));
}

double BandCollisionProbability(double t, int rows_per_band, int num_bands) {
  SLIM_CHECK_MSG(rows_per_band >= 1 && num_bands >= 1, "invalid banding");
  return 1.0 - std::pow(1.0 - std::pow(t, rows_per_band), num_bands);
}

double ApproximateThreshold(int rows_per_band, int num_bands) {
  SLIM_CHECK_MSG(rows_per_band >= 1 && num_bands >= 1, "invalid banding");
  return std::pow(1.0 / static_cast<double>(num_bands),
                  1.0 / static_cast<double>(rows_per_band));
}

}  // namespace slim
