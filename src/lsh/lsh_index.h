// Banded LSH index over mobility-history signatures (paper Sec. 4).
//
// Signatures are split into b bands of r rows; each band is hashed into a
// large bucket array, and a cross-dataset pair becomes a linkage candidate
// when any band of the two signatures collides. The band count is derived
// from the similarity threshold via the Lambert-W sizing (signature.h).
// Placeholder rows are omitted from a band's hash; a band that is entirely
// placeholders is not hashed at all (an empty band carries no evidence).
//
// Storage is dense: signatures and candidate lists live in flat per-side
// vectors addressed by entry position, with one sorted (entity -> position)
// array per side backing the EntityId lookups — no per-entity hash maps.
#ifndef SLIM_LSH_LSH_INDEX_H_
#define SLIM_LSH_LSH_INDEX_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "data/record.h"
#include "lsh/signature.h"
#include "temporal/window_tree.h"

namespace slim {

/// A fixed [lo, end) leaf-window range for the signature query grid.
/// Candidate collisions are a pairwise predicate over band hashes, so an
/// index built over a *subset* of one side under the same span produces
/// exactly the full index's candidates restricted to that subset — the
/// property the sharded linkage driver (core/sharded.h) relies on.
struct LshWindowSpan {
  int64_t lo = 0;
  int64_t end = 0;  // exclusive

  bool empty() const { return lo >= end; }
};

/// Candidate-pair index between two sides (dataset E = left, I = right).
class LshIndex {
 public:
  /// One indexable history: the entity id plus its window tree. The tree
  /// pointer must outlive the Build() call (signatures are extracted
  /// eagerly; the tree is not retained).
  struct Entry {
    EntityId entity = 0;
    const WindowSegmentTree* tree = nullptr;
  };

  /// Builds the index. The query grid spans the union of both sides'
  /// occupied window ranges, so signature positions align across every
  /// history. Empty sides are allowed.
  ///
  /// `fixed_span`, when non-null, pins the query grid to an externally
  /// computed window range instead of the union of the two inputs. Sharded
  /// builds pass the span of the *full* problem so that signatures — and
  /// therefore band hashes and candidates — are identical to a monolithic
  /// build whatever subset of a side they receive.
  ///
  /// Construction is data-parallel over `threads` workers (<= 0 means the
  /// library default; see common/parallel.h): signature computation shards
  /// over entities, bucket building shards over bands, and candidate
  /// gathering + de-duplication shards over left entities. Every merge is
  /// ordered (entity order, band order), so the index is identical at
  /// every thread count.
  static LshIndex Build(const std::vector<Entry>& side_e,
                        const std::vector<Entry>& side_i,
                        const LshConfig& config, int threads = 0,
                        const LshWindowSpan* fixed_span = nullptr);

  /// Rebuilds the index over updated sides, reusing the signature of any
  /// entity whose history did not change since `previous` was built
  /// (fresh_X[k] == 0, positions parallel to side_X) and that `previous`
  /// indexed. BuildSignature is a pure function of (tree, span, step,
  /// level), so a reused signature is bit-identical to a recomputed one;
  /// the banding, bucket, and candidate stages always run from scratch,
  /// making the result identical to Build() over the same inputs at every
  /// thread count. `previous` must have been built under the same config
  /// and over the same query-grid span (CHECK-enforced against span());
  /// when the span moved, fall back to Build().
  static LshIndex BuildReusing(const LshIndex& previous,
                               const std::vector<Entry>& side_e,
                               const std::vector<Entry>& side_i,
                               const std::vector<uint8_t>& fresh_e,
                               const std::vector<uint8_t>& fresh_i,
                               const LshConfig& config, int threads = 0,
                               const LshWindowSpan* fixed_span = nullptr);

  /// The query-grid span this index was built over ([0, 0) when nothing
  /// was occupied). An incremental caller compares it against the next
  /// epoch's span to decide between BuildReusing and a fresh Build.
  const LshWindowSpan& span() const { return span_; }

  /// Sorted, de-duplicated right-side candidates for left entity `u`,
  /// materialised as entity ids (empty when u collided with nothing or was
  /// not indexed). Lists ascend by right-side Build() position, which is
  /// ascending entity id whenever side_i was passed in ascending order (as
  /// every pipeline caller does). Diagnostics/tests API — the hot path
  /// uses CandidatePositionsAt.
  std::vector<EntityId> CandidatesFor(EntityId u) const;

  /// Candidates of the left entity at Build() position `left_pos`, as
  /// right-side Build() positions — zero-conversion access for dense
  /// callers (core/candidates.h, where positions are EntityIdx).
  const std::vector<uint32_t>& CandidatePositionsAt(size_t left_pos) const {
    return candidates_[left_pos];
  }

  /// Sum over left entities of their candidate count.
  uint64_t total_candidate_pairs() const { return total_candidate_pairs_; }

  size_t signature_size() const { return signature_size_; }
  int num_bands() const { return num_bands_; }
  int rows_per_band() const { return rows_per_band_; }

  /// The signature built for a left/right entity (tests + diagnostics);
  /// nullptr when the entity was not indexed.
  const LshSignature* LeftSignature(EntityId u) const;
  const LshSignature* RightSignature(EntityId v) const;

 private:
  // Sorted (entity, Build position) pairs for one side.
  using PositionIndex = std::vector<std::pair<EntityId, uint32_t>>;

  static LshIndex BuildImpl(const std::vector<Entry>& side_e,
                            const std::vector<Entry>& side_i,
                            const LshConfig& config, int threads,
                            const LshWindowSpan* fixed_span,
                            const LshIndex* previous,
                            const std::vector<uint8_t>* fresh_e,
                            const std::vector<uint8_t>* fresh_i);
  static PositionIndex IndexPositions(const std::vector<Entry>& side);
  static const uint32_t* FindPosition(const PositionIndex& index,
                                      EntityId entity);

  // Dense per-position storage, in Build() input order. Candidate lists
  // hold right-side positions (indices into right_entities_).
  std::vector<std::vector<uint32_t>> candidates_;  // per left position
  std::vector<EntityId> right_entities_;
  std::vector<LshSignature> left_signatures_;
  std::vector<LshSignature> right_signatures_;
  PositionIndex left_positions_;
  PositionIndex right_positions_;
  uint64_t total_candidate_pairs_ = 0;
  size_t signature_size_ = 0;
  int num_bands_ = 0;
  int rows_per_band_ = 0;
  LshWindowSpan span_;
};

}  // namespace slim

#endif  // SLIM_LSH_LSH_INDEX_H_
