// Runtime CPU feature detection for the SIMD kernel dispatch.
//
// The scoring kernels (core/score_kernel.h) are compiled with per-function
// target attributes, so the binary always contains every variant; these
// probes decide at runtime which ones are safe to call on the machine the
// process actually landed on. On non-x86 targets (or compilers without
// __builtin_cpu_supports) every probe returns false and the dispatch falls
// back to the scalar reference kernel.
#ifndef SLIM_COMMON_CPU_H_
#define SLIM_COMMON_CPU_H_

namespace slim {

/// True when the CPU executes SSE4.2 (and the build can emit it).
bool CpuHasSse42();

/// True when the CPU executes AVX2 (and the build can emit it).
bool CpuHasAvx2();

}  // namespace slim

#endif  // SLIM_COMMON_CPU_H_
