#include "common/rng.h"

#include <cmath>

#include "common/check.h"

namespace slim {

Rng::Rng(uint64_t seed) : seed_(seed) {
  SplitMix64 sm(seed);
  for (auto& w : s_) w = sm.Next();
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  SLIM_DCHECK(lo <= hi);
  return lo + (hi - lo) * NextDouble();
}

uint64_t Rng::NextUint64(uint64_t n) {
  SLIM_CHECK_MSG(n > 0, "NextUint64 requires n > 0");
  // Lemire-style rejection: accept values below the largest multiple of n.
  const uint64_t threshold = -n % n;
  for (;;) {
    const uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::NextInt64(int64_t lo, int64_t hi) {
  SLIM_CHECK_MSG(lo <= hi, "NextInt64 requires lo <= hi");
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextUint64(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_gauss_) {
    has_gauss_ = false;
    return gauss_;
  }
  double u, v, s;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  gauss_ = v * factor;
  has_gauss_ = true;
  return u * factor;
}

double Rng::NextExponential(double lambda) {
  SLIM_CHECK_MSG(lambda > 0.0, "NextExponential requires lambda > 0");
  // Guard against log(0).
  double u;
  do {
    u = NextDouble();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

uint64_t Rng::NextZipf(uint64_t n, double exponent) {
  SLIM_CHECK_MSG(n > 0, "NextZipf requires n > 0");
  if (n == 1) return 0;
  if (exponent <= 0.0) return NextUint64(n);
  // Devroye's rejection method over the continuous envelope.
  const double s = exponent;
  const double nd = static_cast<double>(n);
  // H(x) = integral of x^-s; handle s == 1 separately.
  auto h = [s](double x) {
    return s == 1.0 ? std::log(x) : (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
  };
  auto h_inv = [s](double y) {
    return s == 1.0 ? std::exp(y)
                    : std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
  };
  const double hmax = h(nd + 0.5);
  const double hmin = h(0.5);
  for (;;) {
    const double u = NextDouble(hmin, hmax);
    const double x = h_inv(u);
    const uint64_t k = static_cast<uint64_t>(x + 0.5);
    const double kk = static_cast<double>(k == 0 ? 1 : k);
    // Accept with the exact mass / envelope ratio.
    if (NextDouble() * std::pow(x / kk, s) <= 1.0) {
      const uint64_t idx = (k == 0 ? 1 : k) - 1;
      if (idx < n) return idx;
    }
  }
}

uint64_t Rng::NextPoisson(double mean) {
  SLIM_CHECK_MSG(mean >= 0.0, "NextPoisson requires mean >= 0");
  if (mean == 0.0) return 0;
  if (mean > 64.0) {
    // Normal approximation, adequate for workload generation.
    const double x = mean + std::sqrt(mean) * NextGaussian();
    return x <= 0.0 ? 0 : static_cast<uint64_t>(x + 0.5);
  }
  const double limit = std::exp(-mean);
  uint64_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= NextDouble();
  } while (p > limit);
  return k - 1;
}

Rng Rng::Fork(uint64_t stream) {
  SplitMix64 sm(seed_ ^ (0x632be59bd9b4e019ULL * (stream + 1)));
  return Rng(sm.Next());
}

}  // namespace slim
