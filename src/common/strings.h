// Small string helpers shared by the CSV layer and the bench table printers.
#ifndef SLIM_COMMON_STRINGS_H_
#define SLIM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace slim {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Strict parses; the whole (stripped) string must be consumed.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats n with thousands separators ("1,234,567") for bench output.
std::string FormatWithCommas(int64_t n);

}  // namespace slim

#endif  // SLIM_COMMON_STRINGS_H_
