// Small string helpers shared by the CSV layer and the bench table printers.
#ifndef SLIM_COMMON_STRINGS_H_
#define SLIM_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace slim {

/// Splits `s` on `delim`; keeps empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string_view> SplitString(std::string_view s, char delim);

/// Removes leading/trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Removes a leading UTF-8 byte-order mark (EF BB BF) if present. Text
/// editors on some platforms prepend one; file readers strip it before
/// looking at the first line.
std::string_view StripUtf8Bom(std::string_view s);

/// Strict parses; the whole (stripped) string must be consumed. Both are
/// locale-independent (std::from_chars): a comma-decimal global locale
/// neither corrupts nor rejects "3.25". A leading '+' is accepted.
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// Locale-independent fixed-point formatting, equivalent to what
/// printf("%.*f") produces under the "C" locale regardless of the global
/// locale (std::to_chars). Writers use this so a comma-decimal locale can
/// never corrupt a CSV file.
std::string FormatFixed(double v, int precision);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats n with thousands separators ("1,234,567") for bench output.
std::string FormatWithCommas(int64_t n);

}  // namespace slim

#endif  // SLIM_COMMON_STRINGS_H_
