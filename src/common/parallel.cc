#include "common/parallel.h"

#include <algorithm>
#include <thread>
#include <vector>

namespace slim {

int DefaultThreadCount() {
  const unsigned hc = std::thread::hardware_concurrency();
  return static_cast<int>(std::clamp(hc, 1u, 8u));
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t, int)>& fn,
                 int threads) {
  if (n == 0) return;
  int t = threads > 0 ? threads : DefaultThreadCount();
  t = static_cast<int>(std::min<size_t>(static_cast<size_t>(t), n));
  if (t <= 1) {
    fn(0, n, 0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(t));
  const size_t chunk = (n + static_cast<size_t>(t) - 1) / static_cast<size_t>(t);
  for (int shard = 0; shard < t; ++shard) {
    const size_t begin = static_cast<size_t>(shard) * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    pool.emplace_back([&fn, begin, end, shard] { fn(begin, end, shard); });
  }
  for (auto& th : pool) th.join();
}

}  // namespace slim
