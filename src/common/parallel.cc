#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

namespace slim {
namespace {

// True while the current thread is executing a shard of some pool's job;
// nested Run()/ParallelFor() calls from inside a shard run inline instead of
// deadlocking on the (busy) pool.
thread_local bool t_in_shard = false;

// Inline fallback: same shard layout, executed sequentially on the caller.
void RunInline(size_t n, const std::function<void(size_t, size_t, int)>& fn,
               int shards) {
  const size_t chunk =
      (n + static_cast<size_t>(shards) - 1) / static_cast<size_t>(shards);
  for (int shard = 0; shard < shards; ++shard) {
    const size_t begin = static_cast<size_t>(shard) * chunk;
    const size_t end = std::min(n, begin + chunk);
    if (begin >= end) break;
    fn(begin, end, shard);
  }
}

}  // namespace

int DefaultThreadCount() {
  if (const char* env = std::getenv("SLIM_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0 &&
        v <= std::numeric_limits<int>::max()) {
      return static_cast<int>(v);
    }
    // Malformed, non-positive, or out-of-range values fall through to the
    // hardware count (the contract is "at least 1 in every case").
  }
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadPool::ThreadPool(int threads)
    : threads_(std::max(1, threads > 0 ? threads : DefaultThreadCount())) {
  workers_.reserve(static_cast<size_t>(threads_ - 1));
  for (int i = 0; i < threads_ - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

ThreadPool& ThreadPool::Shared() {
  // Intentionally leaked: worker threads must not be joined during static
  // destruction (library code may run parallel stages until process exit).
  // slim-lint: allow(SLIM-HYG-101, intentional leaked singleton)
  static ThreadPool* pool = new ThreadPool();
  return *pool;
}

void ThreadPool::WorkerLoop() {
  uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    job_cv_.wait(lock, [&] { return stop_ || job_id_ != seen; });
    if (stop_) return;
    seen = job_id_;
    lock.unlock();
    ExecuteShards(seen);
    lock.lock();
  }
}

// Shard claiming runs under mu_; only the shard bodies themselves execute
// unlocked. Shards are coarse (one per thread per stage), so the lock is
// cold. The `id` check makes a late-waking worker from a previous job bow
// out instead of touching the current job's state.
void ThreadPool::ExecuteShards(uint64_t id) {
  t_in_shard = true;
  std::unique_lock<std::mutex> lock(mu_);
  while (job_id_ == id && next_shard_ < job_shards_) {
    const int shard = next_shard_++;
    const auto* fn = job_fn_;
    const size_t begin = static_cast<size_t>(shard) * job_chunk_;
    const size_t end = std::min(job_n_, begin + job_chunk_);
    const bool skip = begin >= end || cancel_;
    lock.unlock();
    std::exception_ptr err;
    if (!skip) {
      try {
        (*fn)(begin, end, shard);
      } catch (...) {
        err = std::current_exception();
      }
    }
    lock.lock();
    if (err) {
      if (!error_) error_ = err;
      cancel_ = true;
    }
    ++shards_done_;
    if (shards_done_ == job_shards_) done_cv_.notify_all();
  }
  t_in_shard = false;
}

void ThreadPool::Run(size_t n,
                     const std::function<void(size_t, size_t, int)>& fn,
                     int shards) {
  if (n == 0) return;
  int s = shards > 0 ? shards : threads_;
  s = static_cast<int>(std::min<size_t>(static_cast<size_t>(s), n));
  if (s <= 1) {
    fn(0, n, 0);
    return;
  }
  if (t_in_shard || threads_ <= 1) {
    // Nested call (or a workerless pool): same shard layout, run inline.
    RunInline(n, fn, s);
    return;
  }

  std::lock_guard<std::mutex> run_lock(run_mu_);
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_n_ = n;
    job_chunk_ = (n + static_cast<size_t>(s) - 1) / static_cast<size_t>(s);
    job_shards_ = s;
    next_shard_ = 0;
    cancel_ = false;
    shards_done_ = 0;
    error_ = nullptr;
    id = ++job_id_;
  }
  job_cv_.notify_all();
  ExecuteShards(id);  // the calling thread works too

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return shards_done_ == job_shards_; });
    job_fn_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void ParallelFor(size_t n,
                 const std::function<void(size_t, size_t, int)>& fn,
                 int threads) {
  if (n == 0) return;
  int t = threads > 0 ? threads : DefaultThreadCount();
  t = static_cast<int>(std::min<size_t>(static_cast<size_t>(t), n));
  if (t <= 1) {
    fn(0, n, 0);
    return;
  }
  ThreadPool::Shared().Run(n, fn, t);
}

}  // namespace slim
