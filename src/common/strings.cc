#include "common/strings.h"

#include <algorithm>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cctype>
#include <cstring>
#include <system_error>

namespace slim {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string_view StripUtf8Bom(std::string_view s) {
  if (s.size() >= 3 && static_cast<unsigned char>(s[0]) == 0xEF &&
      static_cast<unsigned char>(s[1]) == 0xBB &&
      static_cast<unsigned char>(s[2]) == 0xBF) {
    s.remove_prefix(3);
  }
  return s;
}

namespace {

// std::from_chars rejects the explicit '+' sign strtoll/strtod accepted;
// keep accepting it for compatibility with hand-written input files.
std::string_view DropLeadingPlus(std::string_view s) {
  if (s.size() > 1 && s.front() == '+' && s[1] != '-' && s[1] != '+') {
    s.remove_prefix(1);
  }
  return s;
}

}  // namespace

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  const std::string_view digits = DropLeadingPlus(s);
  int64_t v = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v, 10);
  if (ec == std::errc::result_out_of_range)
    return Status::OutOfRange("integer out of range: " + std::string(s));
  if (ec != std::errc() || ptr != digits.data() + digits.size())
    return Status::InvalidArgument("not an integer: " + std::string(s));
  return v;
}

Result<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty double field");
  const std::string_view digits = DropLeadingPlus(s);
  double v = 0.0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), v);
  if (ec == std::errc::result_out_of_range)
    return Status::OutOfRange("double out of range: " + std::string(s));
  if (ec != std::errc() || ptr != digits.data() + digits.size())
    return Status::InvalidArgument("not a double: " + std::string(s));
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatFixed(double v, int precision) {
  if (precision < 0) precision = 0;
  char stack_buf[64];
  auto r = std::to_chars(stack_buf, stack_buf + sizeof(stack_buf), v,
                         std::chars_format::fixed, precision);
  if (r.ec == std::errc()) return std::string(stack_buf, r.ptr);
  // Fixed formatting of a huge magnitude: up to 309 integer digits plus
  // sign, point, and the fractional digits.
  std::string big(320 + static_cast<size_t>(precision), '\0');
  r = std::to_chars(big.data(), big.data() + big.size(), v,
                    std::chars_format::fixed, precision);
  big.resize(r.ec == std::errc() ? static_cast<size_t>(r.ptr - big.data())
                                 : 0);
  return big;
}

std::string FormatWithCommas(int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace slim
