#include "common/strings.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>
#include <cctype>
#include <cstring>

namespace slim {

std::vector<std::string_view> SplitString(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE)
    return Status::OutOfRange("integer out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("not an integer: " + buf);
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripAsciiWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty double field");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) return Status::OutOfRange("double out of range: " + buf);
  if (end != buf.c_str() + buf.size())
    return Status::InvalidArgument("not a double: " + buf);
  return v;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatWithCommas(int64_t n) {
  const bool neg = n < 0;
  std::string digits = std::to_string(neg ? -n : n);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3 + 1);
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace slim
