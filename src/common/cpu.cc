#include "common/cpu.h"

// SLIM_X86_KERNELS gates both the probes here and the SIMD kernel bodies in
// core/score_kernel.cc, so the two can never disagree about availability.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SLIM_X86_KERNELS 1
#else
#define SLIM_X86_KERNELS 0
#endif

namespace slim {

bool CpuHasSse42() {
#if SLIM_X86_KERNELS
  return __builtin_cpu_supports("sse4.2") != 0;
#else
  return false;
#endif
}

bool CpuHasAvx2() {
#if SLIM_X86_KERNELS
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace slim
