#include "common/io.h"

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#endif

namespace slim {

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  out->clear();
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size >= 0) {
    out->resize(static_cast<size_t>(size));
    in.seekg(0);
    if (size > 0) in.read(out->data(), size);
    if (!in) return Status::IoError("read failed: " + path);
    return Status::Ok();
  }
  // Non-seekable input: the seeks failed without consuming anything, so
  // clear the error state and stream from the start.
  in.clear();
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    out->append(buf, static_cast<size_t>(in.gcount()));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return Status::Ok();
}

Status FileContents::Open(const std::string& path) {
#ifndef _WIN32
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open for read: " + path);
  struct stat st{};
  if (::fstat(fd, &st) == 0 && S_ISREG(st.st_mode) && st.st_size > 0) {
    void* map = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                       MAP_PRIVATE, fd, 0);
    if (map != MAP_FAILED) {
      ::close(fd);
      map_ = map;
      map_size_ = static_cast<size_t>(st.st_size);
      return Status::Ok();
    }
    // mmap can fail on exotic filesystems — fall through to the copy; the
    // fd's offset is untouched.
  }
  // Stream from the fd we already hold — never close and re-open the
  // path: a FIFO discards its buffered bytes the moment the last reader
  // closes, and a fresh open could block forever or race the writer.
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n > 0) {
      fallback_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (errno == EINTR) continue;
    ::close(fd);
    return Status::IoError("read failed: " + path);
  }
  ::close(fd);
  return Status::Ok();
#else
  return ReadFileToString(path, &fallback_);
#endif
}

FileContents::~FileContents() {
#ifndef _WIN32
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
}

}  // namespace slim
