// Data-parallel execution for the linkage pipeline.
//
// Every parallel stage in SLIM follows the same shape: split [0, n) into
// contiguous shards, run `fn(begin, end, shard)` concurrently, keep any
// mutable state in per-shard accumulators, and merge the accumulators in
// shard order afterwards. Because the shard partition depends only on (n,
// shard count) — never on thread scheduling — a stage that merges its
// shards in order produces bit-identical results at every thread count.
//
// ThreadPool is the reusable executor behind that pattern: a fixed set of
// persistent workers (created once, reused by every stage) plus the calling
// thread, which participates in the work instead of blocking idle.
// ParallelFor is the convenience wrapper almost all call sites use.
#ifndef SLIM_COMMON_PARALLEL_H_
#define SLIM_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace slim {

/// Returns the library-wide default parallelism: the value of the
/// SLIM_THREADS environment variable when it is set to a positive integer,
/// otherwise std::thread::hardware_concurrency(), and at least 1 in every
/// case. There is no built-in upper cap — on a 64-way machine the default
/// is 64; set SLIM_THREADS (or a per-call `threads` argument) to limit it.
int DefaultThreadCount();

/// A fixed-size pool of persistent worker threads executing sharded loops.
///
/// Run() partitions [0, n) into `shards` contiguous ranges and hands them to
/// the workers *and the calling thread* via dynamic claiming; it blocks
/// until every shard finished and rethrows the first exception any shard
/// threw. The shard layout depends only on (n, shards), so per-shard
/// accumulators merged in shard order are deterministic regardless of which
/// thread ran which shard, or how many threads exist.
///
/// A pool of `threads` provides at most `threads`-way concurrency
/// (`threads - 1` workers plus the caller). Asking Run() for more shards
/// than that is allowed — extra shards queue behind the claiming loop — so
/// callers can pin the shard layout (for determinism tests, say) without
/// caring about the machine size.
///
/// Run() is serialised: concurrent calls from different threads queue, and
/// a nested call from inside a running shard executes inline on the calling
/// thread (no deadlock, same results).
class ThreadPool {
 public:
  /// Creates `threads - 1` persistent workers; <= 0 means
  /// DefaultThreadCount(). A 1-thread pool runs everything inline.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Concurrency this pool provides (workers + calling thread).
  int num_threads() const { return threads_; }

  /// Runs fn(begin, end, shard) over `shards` contiguous shards of [0, n),
  /// shard in [0, effective_shards) where effective_shards =
  /// min(shards <= 0 ? num_threads() : shards, n). Blocks until complete;
  /// rethrows the first exception thrown by any shard (remaining shards are
  /// skipped once an exception is recorded).
  void Run(size_t n, const std::function<void(size_t begin, size_t end,
                                              int shard)>& fn,
           int shards = 0);

  /// The process-wide pool, created on first use with DefaultThreadCount()
  /// threads (so SLIM_THREADS is honored if set before the first parallel
  /// stage runs). Never destroyed — worker threads live for the process.
  static ThreadPool& Shared();

 private:
  void WorkerLoop();
  /// Claims and executes shards of job `id` until none remain (or the pool
  /// moved on to a newer job).
  void ExecuteShards(uint64_t id);

  const int threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers: "a new job is ready"
  std::condition_variable done_cv_;  // Run(): "all shards finished"
  uint64_t job_id_ = 0;              // bumped once per Run()
  bool stop_ = false;

  // Current job, all guarded by mu_; shard bodies execute unlocked, the
  // claim bookkeeping does not.
  const std::function<void(size_t, size_t, int)>* job_fn_ = nullptr;
  size_t job_n_ = 0;
  size_t job_chunk_ = 0;
  int job_shards_ = 0;
  int next_shard_ = 0;
  bool cancel_ = false;
  int shards_done_ = 0;
  std::exception_ptr error_;  // first exception thrown by a shard

  std::mutex run_mu_;  // serialises Run() callers
};

/// Runs fn(begin, end, shard) over a contiguous partition of [0, n) with
/// shard in [0, min(threads, n)), on the shared pool. `threads` <= 0 means
/// DefaultThreadCount(). Blocks until all shards complete and rethrows the
/// first shard exception. With an effective thread count of 1 the call runs
/// inline as fn(0, n, 0).
///
/// Callers keeping per-shard accumulators should size them by the effective
/// thread count and merge them in shard order — that merge order, plus the
/// deterministic shard partition, is what makes every SLIM stage produce
/// identical results at any thread count.
void ParallelFor(
    size_t n,
    const std::function<void(size_t begin, size_t end, int shard)>& fn,
    int threads = 0);

}  // namespace slim

#endif  // SLIM_COMMON_PARALLEL_H_
