// Minimal data-parallel helper used by the pairwise scoring stage.
//
// ParallelFor splits [0, n) into contiguous shards and runs `fn(begin, end,
// shard)` on a small pool of std::threads. The shard index lets callers keep
// per-shard accumulators (stats counters, edge lists) and merge them
// deterministically afterwards — results never depend on thread scheduling.
#ifndef SLIM_COMMON_PARALLEL_H_
#define SLIM_COMMON_PARALLEL_H_

#include <cstddef>
#include <functional>

namespace slim {

/// Returns the library-wide default parallelism: min(hardware_concurrency, 8),
/// at least 1. Override per call site via the `threads` argument.
int DefaultThreadCount();

/// Runs fn(begin, end, shard) over a contiguous partition of [0, n) on
/// `threads` threads (<=0 means DefaultThreadCount()). Blocks until all
/// shards complete. fn must be safe to call concurrently on disjoint ranges.
/// With threads == 1 (or n small) the call runs inline with shard == 0.
void ParallelFor(size_t n,
                 const std::function<void(size_t begin, size_t end, int shard)>& fn,
                 int threads = 0);

}  // namespace slim

#endif  // SLIM_COMMON_PARALLEL_H_
