// Whole-file I/O helpers shared by the dataset readers/writers.
#ifndef SLIM_COMMON_IO_H_
#define SLIM_COMMON_IO_H_

#include <fstream>
#include <string>
#include <string_view>

#include "common/status.h"

namespace slim {

/// Reads the entire file at `path` into `*out`. Seekable files are sized
/// up front and read in one call; non-seekable inputs (FIFOs, character
/// devices) fall back to streaming, so `slim_link --a <(zcat a.csv.gz)`
/// keeps working.
Status ReadFileToString(const std::string& path, std::string* out);

/// Read-only access to a file's bytes for the dataset parsers. Regular
/// files are memory-mapped (no copy — a 10 GB CSV does not need 10 GB of
/// heap on top of the parsed records); FIFOs, process substitution, and
/// anything else unmappable fall back to ReadFileToString. The view stays
/// valid for this object's lifetime.
class FileContents {
 public:
  FileContents() = default;
  ~FileContents();
  FileContents(const FileContents&) = delete;
  FileContents& operator=(const FileContents&) = delete;

  /// Loads `path`. On failure returns the same IoError statuses as
  /// ReadFileToString.
  Status Open(const std::string& path);

  std::string_view view() const {
    return map_ != nullptr
               ? std::string_view(static_cast<const char*>(map_), map_size_)
               : std::string_view(fallback_);
  }

 private:
  std::string fallback_;
  void* map_ = nullptr;
  size_t map_size_ = 0;
};

/// Buffered whole-file writer: append to buf(), call FlushIfFull() after
/// each record, and Finish() once at the end. Keeps the write path to one
/// syscall per ~1 MB regardless of record size.
///
///   FileWriter w(path);
///   if (!w.ok()) return Status::IoError("cannot open for write: " + path);
///   w.buf() += ...;
///   w.FlushIfFull();
///   return w.Finish(path);
class FileWriter {
 public:
  explicit FileWriter(const std::string& path)
      : out_(path, std::ios::trunc | std::ios::binary) {
    buf_.reserve(kFlushBytes);
  }

  /// False when the file could not be opened for writing.
  bool ok() const { return static_cast<bool>(out_); }

  std::string& buf() { return buf_; }

  /// Writes the buffer through once it reaches the flush threshold.
  void FlushIfFull() {
    if (buf_.size() >= kFlushBytes) Flush();
  }

  /// Flushes the remainder and returns the final stream status.
  Status Finish(const std::string& path_for_error) {
    Flush();
    out_.flush();
    if (!out_) return Status::IoError("write failed: " + path_for_error);
    return Status::Ok();
  }

 private:
  static constexpr size_t kFlushBytes = 1 << 20;

  void Flush() {
    if (buf_.empty()) return;
    out_.write(buf_.data(), static_cast<std::streamsize>(buf_.size()));
    buf_.clear();
  }

  std::ofstream out_;
  std::string buf_;
};

}  // namespace slim

#endif  // SLIM_COMMON_IO_H_
