// Process resource introspection for the benchmark instrumentation.
#ifndef SLIM_COMMON_RESOURCE_H_
#define SLIM_COMMON_RESOURCE_H_

#include <cstdint>

namespace slim {

/// High-water-mark resident set size of this process, in bytes. Monotone
/// non-decreasing over the process lifetime (the kernel never lowers the
/// peak), so per-stage samples bound each stage's footprint from above.
/// Returns 0 on platforms without getrusage support.
uint64_t CurrentPeakRssBytes();

}  // namespace slim

#endif  // SLIM_COMMON_RESOURCE_H_
