// Owned-or-mapped flat array: the backing-store abstraction behind the
// dense linkage context (core/linkage_context.h).
//
// A FlatArray<T> is a contiguous read-only sequence that either OWNS its
// elements (a std::vector<T>, the in-heap build path) or VIEWS them inside
// memory some other object keeps alive (an mmap'ed SCTX file —
// core/sctx.h). Readers cannot tell the difference: data()/size()/span()
// and element access behave identically, so SimilarityEngine and the score
// kernels run unchanged over either backing. Mutation is an owned-mode
// privilege; calling a mutator on a view aborts (SLIM_CHECK), which keeps
// the mapped pages honestly read-only.
//
// Copy/move semantics are the default member-wise ones: copying a view
// copies the pointer (the mapping's owner — e.g. LinkageContext's backing
// handle — must outlive every copy), copying an owned array deep-copies
// the vector. T must be trivially copyable: these arrays are exactly the
// ones SCTX serialises as raw little-endian bytes.
#ifndef SLIM_COMMON_FLAT_ARRAY_H_
#define SLIM_COMMON_FLAT_ARRAY_H_

#include <cstddef>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/check.h"

namespace slim {

template <typename T>
class FlatArray {
  static_assert(std::is_trivially_copyable_v<T>,
                "FlatArray elements are serialised as raw bytes");

 public:
  FlatArray() = default;
  /// Owned backing (implicit so `array = std::move(vec)` keeps working in
  /// builder code).
  FlatArray(std::vector<T> owned) : owned_(std::move(owned)) {}  // NOLINT
  FlatArray& operator=(std::vector<T> owned) {
    owned_ = std::move(owned);
    view_ = nullptr;
    view_size_ = 0;
    return *this;
  }

  /// A view of `size` elements at `data`, owned by someone else. `data` may
  /// be null only when size == 0.
  static FlatArray View(const T* data, size_t size) {
    SLIM_CHECK_MSG(data != nullptr || size == 0,
                   "FlatArray view of null storage");
    FlatArray a;
    a.view_ = data;
    a.view_size_ = size;
    return a;
  }

  /// True when this array views storage owned elsewhere.
  bool is_view() const { return view_ != nullptr; }

  size_t size() const { return is_view() ? view_size_ : owned_.size(); }
  bool empty() const { return size() == 0; }
  const T* data() const { return is_view() ? view_ : owned_.data(); }
  const T& operator[](size_t i) const { return data()[i]; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size(); }
  const T& front() const { return data()[0]; }
  const T& back() const { return data()[size() - 1]; }
  std::span<const T> span() const { return {data(), size()}; }

  /// The owned vector, for builder-side mutation (resize/assign/writes).
  /// Aborts on a view: mapped backings are read-only by contract.
  std::vector<T>& owned() {
    SLIM_CHECK_MSG(!is_view(), "mutating a mapped (read-only) FlatArray");
    return owned_;
  }

  /// Element-wise equality over contents, whatever the backing mix.
  friend bool operator==(const FlatArray& a, const FlatArray& b) {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!(a[i] == b[i])) return false;
    }
    return true;
  }

 private:
  std::vector<T> owned_;
  const T* view_ = nullptr;  // non-null -> view mode
  size_t view_size_ = 0;
};

}  // namespace slim

#endif  // SLIM_COMMON_FLAT_ARRAY_H_
