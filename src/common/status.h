// Lightweight Status / Result<T> error handling, in the spirit of
// arrow::Status / rocksdb::Status: fallible library entry points (I/O,
// parsing, configuration validation) return Status instead of throwing.
#ifndef SLIM_COMMON_STATUS_H_
#define SLIM_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace slim {

/// Error category for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a human-readable name for a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a message for non-OK results.
///
/// Usage mirrors RocksDB:
///   Status s = dataset.WriteCsv(path);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Minimal StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Accessors intentionally have no fallback value.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status to the caller.
#define SLIM_RETURN_NOT_OK(expr)        \
  do {                                  \
    ::slim::Status _st = (expr);        \
    if (!_st.ok()) return _st;          \
  } while (false)

}  // namespace slim

#endif  // SLIM_COMMON_STATUS_H_
