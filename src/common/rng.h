// Deterministic, seedable random number generation.
//
// All stochastic components of the library (workload generators, samplers,
// EM initialisation, LSH hashing salts) draw from these generators so that
// every experiment is reproducible from a single seed. std::mt19937 is
// avoided in public APIs to keep cross-platform determinism obvious and the
// state small.
#ifndef SLIM_COMMON_RNG_H_
#define SLIM_COMMON_RNG_H_

#include <cstdint>

namespace slim {

/// SplitMix64: tiny generator used for seeding and hashing salts.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna): the library's workhorse generator.
/// Fast, 256-bit state, passes BigCrush; deterministic across platforms.
class Rng {
 public:
  /// Seeds the four state words from SplitMix64(seed), per the authors'
  /// recommendation. Any seed (including 0) is valid.
  explicit Rng(uint64_t seed);

  /// Next 64 uniformly distributed bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling to
  /// avoid modulo bias.
  uint64_t NextUint64(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt64(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Marsaglia polar method (deterministic given state).
  double NextGaussian();

  /// Exponential with rate lambda > 0.
  double NextExponential(double lambda);

  /// Zipf-like integer in [0, n): probability of k proportional to
  /// 1/(k+1)^exponent. Requires n > 0, exponent >= 0. O(1) via rejection
  /// sampling (Devroye).
  uint64_t NextZipf(uint64_t n, double exponent);

  /// Poisson-distributed count with the given mean (>= 0). Knuth's method
  /// for small means, normal approximation above 64.
  uint64_t NextPoisson(double mean);

  /// Derives an independent generator; stream `i` is reproducible from the
  /// parent seed. Used to give each entity / thread its own stream.
  Rng Fork(uint64_t stream);

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
  // Cached second deviate for NextGaussian.
  bool has_gauss_ = false;
  double gauss_ = 0.0;
  uint64_t seed_;  // retained for Fork()
};

}  // namespace slim

#endif  // SLIM_COMMON_RNG_H_
