// Precondition / invariant checking macros. Programming errors abort with a
// message (both in debug and release); fallible inputs go through Status.
#ifndef SLIM_COMMON_CHECK_H_
#define SLIM_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace slim::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "SLIM_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace slim::internal

/// Aborts with a diagnostic if `cond` is false. Active in all build types:
/// these guard API contracts, not hot inner loops.
#define SLIM_CHECK(cond)                                               \
  do {                                                                 \
    if (!(cond))                                                       \
      ::slim::internal::CheckFailed(__FILE__, __LINE__, #cond, "");    \
  } while (false)

#define SLIM_CHECK_MSG(cond, msg)                                      \
  do {                                                                 \
    if (!(cond))                                                       \
      ::slim::internal::CheckFailed(__FILE__, __LINE__, #cond, (msg)); \
  } while (false)

/// Debug-only check for hot paths.
#ifdef NDEBUG
#define SLIM_DCHECK(cond) \
  do {                    \
  } while (false)
#else
#define SLIM_DCHECK(cond) SLIM_CHECK(cond)
#endif

#endif  // SLIM_COMMON_CHECK_H_
