// Build provenance stamped at configure time (cmake/build_info.cc.in).
//
// CMake runs `git describe --always --dirty --tags` when it configures the
// build and bakes the result into the slim::build_info library, together
// with the project version and the schema versions this binary speaks
// (SBIN, SCTX, the slim_link bench JSON, the slim_serve wire protocol).
// Every CLI tool prints the string for `--version`, benches record it in
// their JSON documents, and the slim_serve handshake returns it so CI
// smoke logs identify the binary under test.
//
// The stamp is frozen at configure time: rebuilding after new commits
// without re-running CMake keeps the old describe output. CI always
// configures from scratch, so workflow logs are accurate; locally the
// `-dirty` suffix plus the hash is close enough for triage.
#ifndef SLIM_COMMON_BUILD_INFO_H_
#define SLIM_COMMON_BUILD_INFO_H_

namespace slim {

/// `git describe --always --dirty --tags` output at configure time, or
/// "unknown" when the source tree was not a git checkout.
const char* BuildGitDescribe();

/// One-line build identity: "slim <version> (<git describe>) schemas: ...".
const char* BuildVersionString();

}  // namespace slim

#endif  // SLIM_COMMON_BUILD_INFO_H_
