// GM baseline (Wang et al., "De-anonymization of Mobility Trajectories:
// Dissecting the Gaps between Theory and Practice", NDSS 2018) —
// reimplemented from its description (see DESIGN.md §1).
//
// GM learns a per-entity mobility model: a Gaussian-mixture over the
// entity's record locations (capturing where it spends time) plus a
// Markov transition model over coarse grid cells (capturing how it moves).
// A candidate pair (u, v) is scored by the symmetric cross log-likelihood
// of each side's records under the other side's model; unlike SLIM, records
// from *different* temporal windows still contribute (the model is
// time-free). GM has no scaling mechanism — every cross pair is scored —
// and produces pair weights rather than a one-to-one linkage, so (exactly
// as the SLIM paper does in Sec. 5.5) SLIM's matching and stop-threshold
// detection are applied on top of GM's scores.
#ifndef SLIM_BASELINES_GM_H_
#define SLIM_BASELINES_GM_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/slim.h"
#include "data/dataset.h"
#include "match/bipartite.h"

namespace slim {

/// GM configuration.
struct GmConfig {
  /// Components of the per-entity spatial mixture.
  int num_components = 3;
  /// Grid level of the Markov transition states.
  int markov_level = 10;
  /// Window width used to discretise the transition sequence.
  int64_t window_seconds = 3600;
  /// Weight of the transition log-likelihood relative to the spatial one.
  double markov_weight = 0.5;
  /// Laplace smoothing for transition probabilities.
  double transition_smoothing = 0.5;
  int threads = 0;
};

/// GM output.
struct GmResult {
  /// Final links after SLIM's matching + stop threshold, sorted by u.
  std::vector<LinkedEntityPair> links;
  /// All scored pairs (cross log-likelihoods; for Hit-Precision@k).
  BipartiteGraph graph;
  /// Threshold decision over the matched weights.
  ThresholdDecision threshold;
  bool threshold_valid = false;
  /// Record-model evaluations performed (likelihood lookups).
  uint64_t record_comparisons = 0;
  double seconds_total = 0.0;
};

/// Runs GM over the two datasets. Scores *every* cross pair (GM has no
/// blocking), so runtime is quadratic in the entity counts.
class GmLinker {
 public:
  explicit GmLinker(GmConfig config);

  Result<GmResult> Link(const LocationDataset& dataset_e,
                        const LocationDataset& dataset_i) const;

 private:
  GmConfig config_;
};

}  // namespace slim

#endif  // SLIM_BASELINES_GM_H_
