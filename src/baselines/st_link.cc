#include "baselines/st_link.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "common/check.h"
#include "common/parallel.h"
#include "core/history.h"
#include "geo/distance_cache.h"
#include "stats/kneedle.h"
#include "temporal/time_window.h"

namespace slim {
namespace {

// Per-pair accumulation state.
struct PairStats {
  uint32_t cooccurrences = 0;
  uint32_t alibis = 0;
  std::unordered_set<uint64_t> diverse_cells;  // cells where co-occurring
};

// Elbow detection over a count distribution: x = candidate minimum value,
// y = number of pairs reaching at least x (a convex decreasing survival
// curve). Falls back to `fallback` when no elbow exists.
uint32_t DetectMinimum(const std::vector<uint32_t>& values,
                       uint32_t fallback) {
  if (values.empty()) return fallback;
  std::map<uint32_t, uint64_t> freq;
  for (uint32_t v : values) ++freq[v];
  std::vector<double> xs, ys;
  uint64_t remaining = values.size();
  for (const auto& [value, count] : freq) {
    xs.push_back(static_cast<double>(value));
    ys.push_back(static_cast<double>(remaining));  // pairs with >= value
    remaining -= count;
  }
  if (xs.size() < 3) return fallback;
  KneedleOptions ko;
  ko.curve = KneedleCurve::kConvexDecreasing;
  const auto elbow = FindKneedle(xs, ys, ko);
  if (!elbow.has_value()) return fallback;
  return static_cast<uint32_t>(xs[*elbow]);
}

}  // namespace

StLinkLinker::StLinkLinker(StLinkConfig config) : config_(std::move(config)) {
  SLIM_CHECK_MSG(config_.window_seconds > 0, "window width must be positive");
  SLIM_CHECK_MSG(config_.co_location_radius_m > 0,
                 "co-location radius must be positive");
}

Result<StLinkResult> StLinkLinker::Link(
    const LocationDataset& dataset_e,
    const LocationDataset& dataset_i) const {
  if (!dataset_e.finalized() || !dataset_i.finalized()) {
    return Status::FailedPrecondition("datasets must be finalized");
  }
  const auto t_start = std::chrono::steady_clock::now();
  StLinkResult result;

  // Reuse the history representation as the windowed-bin index.
  HistoryConfig hc;
  hc.spatial_level = config_.spatial_level;
  hc.window_seconds = config_.window_seconds;
  const HistorySet set_e = HistorySet::Build(dataset_e, hc);
  const HistorySet set_i = HistorySet::Build(dataset_i, hc);
  const double runaway =
      RunawayDistanceMeters(config_.window_seconds, config_.max_speed_mps);

  // Window -> active histories, for blocking.
  std::unordered_map<int64_t, std::vector<const MobilityHistory*>> active_i;
  for (const auto& h : set_i.histories()) {
    for (int64_t w : h.windows()) active_i[w].push_back(&h);
  }

  // Accumulate pair statistics, parallel over the left side.
  const auto& lefts = set_e.histories();
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();
  struct Shard {
    std::unordered_map<uint64_t, PairStats> pairs;  // (u_idx<<32)|v_idx key
    uint64_t comparisons = 0;
  };
  std::vector<Shard> shards(static_cast<size_t>(threads));
  std::unordered_map<EntityId, uint32_t> right_index;
  {
    uint32_t idx = 0;
    for (const auto& h : set_i.histories()) right_index[h.entity()] = idx++;
  }

  ParallelFor(
      lefts.size(),
      [&](size_t begin, size_t end, int shard_id) {
        Shard& shard = shards[static_cast<size_t>(shard_id)];
        CellDistanceCache cache;
        for (size_t k = begin; k < end; ++k) {
          const MobilityHistory& hu = lefts[k];
          for (int64_t w : hu.windows()) {
            const auto it = active_i.find(w);
            if (it == active_i.end()) continue;
            const auto bins_u = hu.BinsInWindow(w);
            for (const MobilityHistory* hv : it->second) {
              const auto bins_v = hv->BinsInWindow(w);
              const uint64_t key =
                  (static_cast<uint64_t>(k) << 32) |
                  right_index.at(hv->entity());
              PairStats& ps = shard.pairs[key];
              for (const auto& bu : bins_u) {
                for (const auto& bv : bins_v) {
                  ++shard.comparisons;
                  const double d = cache.Get(bu.cell, bv.cell);
                  if (d <= config_.co_location_radius_m) {
                    ++ps.cooccurrences;
                    ps.diverse_cells.insert(bu.cell.raw());
                  } else if (d > runaway) {
                    ++ps.alibis;
                  }
                }
              }
            }
          }
        }
      },
      threads);

  // Drain the shards into one key-sorted vector. Every traversal below is
  // result-producing (graph edges, qualifying pairs, links), so the order
  // must come from the (left, right) key, never from hash-table layout.
  std::vector<std::pair<uint64_t, PairStats>> sorted_pairs;
  {
    size_t total = 0;
    for (const Shard& s : shards) total += s.pairs.size();
    sorted_pairs.reserve(total);
  }
  for (Shard& s : shards) {
    result.record_comparisons += s.comparisons;
    // Drain order is irrelevant: the vector is key-sorted before any
    // result-producing traversal.
    // slim-lint: allow(SLIM-DET-001, drained then key-sorted below)
    for (auto& [key, ps] : s.pairs) {
      sorted_pairs.emplace_back(key, std::move(ps));
    }
  }
  std::sort(sorted_pairs.begin(), sorted_pairs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // Left indices partition across shards, so keys are unique; merge
  // adjacent duplicates defensively anyway.
  {
    size_t w = 0;
    for (size_t r = 0; r < sorted_pairs.size(); ++r) {
      if (w > 0 && sorted_pairs[w - 1].first == sorted_pairs[r].first) {
        PairStats& dst = sorted_pairs[w - 1].second;
        PairStats& src = sorted_pairs[r].second;
        dst.cooccurrences += src.cooccurrences;
        dst.alibis += src.alibis;
        // slim-lint: allow(SLIM-DET-001, set union is order-insensitive)
        dst.diverse_cells.insert(src.diverse_cells.begin(),
                                 src.diverse_cells.end());
      } else {
        if (w != r) sorted_pairs[w] = std::move(sorted_pairs[r]);
        ++w;
      }
    }
    sorted_pairs.resize(w);
  }

  // Auto-detect k and l when requested.
  std::vector<uint32_t> k_values, l_values;
  for (const auto& [key, ps] : sorted_pairs) {
    if (ps.cooccurrences > 0) {
      k_values.push_back(ps.cooccurrences);
      l_values.push_back(static_cast<uint32_t>(ps.diverse_cells.size()));
    }
  }
  result.k_used = config_.min_cooccurrences != 0
                      ? config_.min_cooccurrences
                      : DetectMinimum(k_values, /*fallback=*/3);
  result.l_used = config_.min_diversity != 0
                      ? config_.min_diversity
                      : DetectMinimum(l_values, /*fallback=*/2);

  // Qualifying pairs + candidate graph (weights = co-occurrence counts).
  // std::map: the loops over these feed result.links and the ambiguity
  // census, so their iteration order is part of the output contract.
  std::map<EntityId, std::vector<EntityId>> quals_by_u;
  std::map<EntityId, std::vector<EntityId>> quals_by_v;
  for (const auto& [key, ps] : sorted_pairs) {
    const EntityId u =
        lefts[static_cast<size_t>(key >> 32)].entity();
    const EntityId v =
        set_i.histories()[static_cast<size_t>(key & 0xffffffffULL)].entity();
    if (ps.cooccurrences > 0) {
      result.graph.AddEdge(u, v, static_cast<double>(ps.cooccurrences));
    }
    if (ps.cooccurrences >= result.k_used &&
        ps.diverse_cells.size() >= result.l_used &&
        ps.alibis <= config_.alibi_tolerance) {
      quals_by_u[u].push_back(v);
      quals_by_v[v].push_back(u);
    }
  }

  // Ambiguity: any entity qualifying with more than one counterpart is
  // dropped (both directions must be unique).
  std::unordered_set<EntityId> ambiguous_u, ambiguous_v;
  for (const auto& [u, vs] : quals_by_u) {
    if (vs.size() > 1) ambiguous_u.insert(u);
  }
  for (const auto& [v, us] : quals_by_v) {
    if (us.size() > 1) ambiguous_v.insert(v);
  }
  result.ambiguous_entities = ambiguous_u.size() + ambiguous_v.size();

  for (const auto& [u, vs] : quals_by_u) {
    if (ambiguous_u.count(u)) continue;
    const EntityId v = vs.front();
    if (ambiguous_v.count(v)) continue;
    result.links.push_back({u, v, 0.0});
  }
  // Attach co-occurrence counts as scores.
  {
    std::unordered_map<EntityId, std::unordered_map<EntityId, double>> w;
    for (const auto& e : result.graph.edges()) w[e.u][e.v] = e.weight;
    for (auto& link : result.links) link.score = w[link.u][link.v];
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedEntityPair& a, const LinkedEntityPair& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });

  result.seconds_total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return result;
}

}  // namespace slim
