#include "baselines/gm.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "common/check.h"
#include "common/parallel.h"
#include "geo/cell_id.h"
#include "stats/gmm2d.h"
#include "temporal/time_window.h"

namespace slim {
namespace {

constexpr double kDegToRad = 0.017453292519943295;
constexpr double kMetersPerDegLat = 111194.9266;  // mean, spherical

// Per-entity mobility model.
struct EntityModel {
  EntityId entity = 0;
  // Local equirectangular projection frame (meters around the centroid).
  double ref_lat = 0.0;
  double ref_lng = 0.0;
  double cos_ref = 1.0;
  GaussianMixture2D spatial;
  // Markov transitions over coarse cells: state -> (next -> count).
  std::unordered_map<uint64_t, std::unordered_map<uint64_t, uint32_t>>
      transitions;
  std::unordered_map<uint64_t, uint32_t> state_totals;
  size_t num_states = 0;

  Point2 Project(const LatLng& p) const {
    return {(p.lng_deg - ref_lng) * cos_ref * kMetersPerDegLat,
            (p.lat_deg - ref_lat) * kMetersPerDegLat};
  }

  // Smoothed log P(from -> to).
  double TransitionLogProb(uint64_t from, uint64_t to, double smoothing) const {
    const double states =
        static_cast<double>(std::max<size_t>(num_states, 1));
    const auto it = transitions.find(from);
    double count = 0.0, total = 0.0;
    if (it != transitions.end()) {
      const auto jt = it->second.find(to);
      if (jt != it->second.end()) count = jt->second;
      total = static_cast<double>(state_totals.at(from));
    }
    return std::log((count + smoothing) / (total + smoothing * states));
  }
};

EntityModel FitEntityModel(EntityId entity, std::span<const Record> records,
                           const GmConfig& config) {
  EntityModel m;
  m.entity = entity;
  SLIM_CHECK(!records.empty());

  double lat = 0.0, lng = 0.0;
  for (const Record& r : records) {
    lat += r.location.lat_deg;
    lng += r.location.lng_deg;
  }
  m.ref_lat = lat / static_cast<double>(records.size());
  m.ref_lng = lng / static_cast<double>(records.size());
  m.cos_ref = std::cos(m.ref_lat * kDegToRad);

  std::vector<Point2> pts;
  pts.reserve(records.size());
  for (const Record& r : records) pts.push_back(m.Project(r.location));
  Gmm2DFitOptions fit;
  fit.num_components = config.num_components;
  auto gmm = FitGmm2D(pts, fit);
  SLIM_CHECK_MSG(gmm.ok(), "per-entity GMM fit failed");
  m.spatial = std::move(gmm.value());

  // Markov chain over the dominant cell per window (records are sorted by
  // timestamp within an entity).
  uint64_t prev_state = 0;
  int64_t prev_window = std::numeric_limits<int64_t>::min();
  std::unordered_map<uint64_t, char> seen_states;
  for (const Record& r : records) {
    const int64_t w = WindowIndexOf(r.timestamp, config.window_seconds);
    const uint64_t state =
        CellId::FromLatLng(r.location, config.markov_level).raw();
    seen_states[state] = 1;
    if (prev_window != std::numeric_limits<int64_t>::min() &&
        w == prev_window + 1) {
      ++m.transitions[prev_state][state];
      ++m.state_totals[prev_state];
    }
    if (w != prev_window) {
      prev_window = w;
      prev_state = state;
    }
  }
  m.num_states = seen_states.size();
  return m;
}

// Average log-likelihood of `records` under `model` (spatial + Markov).
double CrossLogLikelihood(const EntityModel& model,
                          std::span<const Record> records,
                          const GmConfig& config, uint64_t* evaluations) {
  SLIM_CHECK(!records.empty());
  double spatial = 0.0;
  for (const Record& r : records) {
    spatial += model.spatial.LogPdf(model.Project(r.location));
    ++*evaluations;
  }
  spatial /= static_cast<double>(records.size());

  double markov = 0.0;
  size_t steps = 0;
  int64_t prev_window = std::numeric_limits<int64_t>::min();
  uint64_t prev_state = 0;
  for (const Record& r : records) {
    const int64_t w = WindowIndexOf(r.timestamp, config.window_seconds);
    const uint64_t state =
        CellId::FromLatLng(r.location, config.markov_level).raw();
    if (prev_window != std::numeric_limits<int64_t>::min() &&
        w == prev_window + 1) {
      markov += model.TransitionLogProb(prev_state, state,
                                        config.transition_smoothing);
      ++steps;
    }
    if (w != prev_window) {
      prev_window = w;
      prev_state = state;
    }
  }
  if (steps > 0) markov /= static_cast<double>(steps);
  return spatial + config.markov_weight * markov;
}

}  // namespace

GmLinker::GmLinker(GmConfig config) : config_(std::move(config)) {
  SLIM_CHECK_MSG(config_.num_components >= 1, "num_components must be >= 1");
  SLIM_CHECK_MSG(config_.window_seconds > 0, "window width must be positive");
}

Result<GmResult> GmLinker::Link(const LocationDataset& dataset_e,
                                const LocationDataset& dataset_i) const {
  if (!dataset_e.finalized() || !dataset_i.finalized()) {
    return Status::FailedPrecondition("datasets must be finalized");
  }
  const auto t_start = std::chrono::steady_clock::now();
  GmResult result;

  // Fit one model per entity on both sides.
  std::vector<EntityModel> models_e, models_i;
  models_e.reserve(dataset_e.num_entities());
  for (EntityId e : dataset_e.entity_ids()) {
    models_e.push_back(FitEntityModel(e, dataset_e.RecordsOf(e), config_));
  }
  models_i.reserve(dataset_i.num_entities());
  for (EntityId e : dataset_i.entity_ids()) {
    models_i.push_back(FitEntityModel(e, dataset_i.RecordsOf(e), config_));
  }
  if (models_e.empty() || models_i.empty()) {
    result.seconds_total = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - t_start)
                               .count();
    return result;
  }

  // Score every cross pair (GM has no blocking / filtering step).
  const int threads =
      config_.threads > 0 ? config_.threads : DefaultThreadCount();
  std::vector<std::vector<WeightedEdge>> shard_edges(
      static_cast<size_t>(threads));
  std::vector<uint64_t> shard_evals(static_cast<size_t>(threads), 0);
  ParallelFor(
      models_e.size(),
      [&](size_t begin, size_t end, int shard) {
        auto& edges = shard_edges[static_cast<size_t>(shard)];
        uint64_t* evals = &shard_evals[static_cast<size_t>(shard)];
        for (size_t a = begin; a < end; ++a) {
          const auto ru = dataset_e.RecordsOf(models_e[a].entity);
          for (const EntityModel& mv : models_i) {
            const auto rv = dataset_i.RecordsOf(mv.entity);
            const double s =
                0.5 * CrossLogLikelihood(models_e[a], rv, config_, evals) +
                0.5 * CrossLogLikelihood(mv, ru, config_, evals);
            edges.push_back({models_e[a].entity, mv.entity, s});
          }
        }
      },
      threads);
  for (int shard = 0; shard < threads; ++shard) {
    result.record_comparisons += shard_evals[static_cast<size_t>(shard)];
    for (const auto& e : shard_edges[static_cast<size_t>(shard)]) {
      result.graph.AddEdge(e.u, e.v, e.weight);
    }
  }

  // SLIM's matching + stop threshold over GM's scores (paper Sec. 5.5).
  const Matching matching = GreedyMaxWeightMatching(result.graph);
  std::vector<double> weights;
  weights.reserve(matching.pairs.size());
  for (const auto& e : matching.pairs) weights.push_back(e.weight);
  double cutoff = -std::numeric_limits<double>::infinity();
  auto decision = DetectStopThreshold(weights);
  if (decision.ok()) {
    result.threshold = std::move(decision.value());
    result.threshold_valid = true;
    cutoff = result.threshold.threshold;
  }
  for (const auto& e : matching.pairs) {
    if (e.weight > cutoff) result.links.push_back({e.u, e.v, e.weight});
  }
  std::sort(result.links.begin(), result.links.end(),
            [](const LinkedEntityPair& a, const LinkedEntityPair& b) {
              if (a.u != b.u) return a.u < b.u;
              return a.v < b.v;
            });

  result.seconds_total =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t_start)
          .count();
  return result;
}

}  // namespace slim
