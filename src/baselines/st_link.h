// ST-Link baseline (Basık et al., "Spatio-Temporal Linkage over
// Location-Enhanced Services", IEEE TMC 2018) — reimplemented from its
// description in that paper and in SLIM's Sec. 5.5.
//
// ST-Link slides a temporal window over both datasets and counts
// *co-occurrences*: record pairs of (u, v) falling in the same window and
// within a co-location radius. A pair qualifies when it has at least k
// co-occurrences spread over at least l diverse locations and at most
// `alibi_tolerance` alibi record pairs (same window, farther apart than the
// runaway distance). k and l are picked from the data via trade-off (elbow)
// detection over the k / l value distributions. Entities qualifying with
// more than one counterpart are ambiguous and dropped entirely.
#ifndef SLIM_BASELINES_ST_LINK_H_
#define SLIM_BASELINES_ST_LINK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/slim.h"
#include "data/dataset.h"
#include "match/bipartite.h"

namespace slim {

/// ST-Link configuration. Defaults mirror SLIM's experimental setup
/// (15-minute windows, level-12 cells, 2 km/min speed limit, alibi
/// tolerance 3 as used in Sec. 5.5).
struct StLinkConfig {
  int64_t window_seconds = 900;
  int spatial_level = 12;
  /// Records within this distance in a shared window co-occur.
  double co_location_radius_m = 500.0;
  /// Maximum entity speed for the alibi (runaway) distance.
  double max_speed_mps = 2000.0 / 60.0;
  /// Alibi record pairs tolerated before a pair is disqualified.
  uint32_t alibi_tolerance = 3;
  /// Minimum co-occurrence count k; 0 = auto (elbow detection).
  uint32_t min_cooccurrences = 0;
  /// Minimum diverse co-occurrence locations l; 0 = auto (elbow detection).
  uint32_t min_diversity = 0;
  int threads = 0;
};

/// ST-Link output.
struct StLinkResult {
  /// Final links, sorted by u.
  std::vector<LinkedEntityPair> links;
  /// Candidate graph weighted by co-occurrence count (for Hit-Precision@k).
  BipartiteGraph graph;
  /// The k / l values actually used (after auto-detection).
  uint32_t k_used = 0;
  uint32_t l_used = 0;
  /// Entities dropped for qualifying with multiple counterparts.
  uint64_t ambiguous_entities = 0;
  /// Bin-pair distance computations (comparable to SimilarityStats).
  uint64_t record_comparisons = 0;
  double seconds_total = 0.0;
};

/// Runs ST-Link over the two datasets.
class StLinkLinker {
 public:
  explicit StLinkLinker(StLinkConfig config);

  Result<StLinkResult> Link(const LocationDataset& dataset_e,
                            const LocationDataset& dataset_i) const;

 private:
  StLinkConfig config_;
};

}  // namespace slim

#endif  // SLIM_BASELINES_ST_LINK_H_
