// Hierarchical temporal aggregation over a mobility history (paper Fig. 1).
//
// Leaves are the occupied time windows of one entity, each holding the
// spatial cells seen in that window with per-cell record counts. Every
// internal node aggregates the cell -> count mapping of its subtree, exactly
// as the paper's mobility-history tree: "each non-leaf node keeps the
// occurrence counts of the cell ids in its sub-tree".
//
// The tree exists to answer the LSH layer's *dominating-cell* queries
// (Sec. 4): "the grid cell containing most records of the owner entity in a
// given time range", optionally aggregated at a coarser spatial level than
// the leaf cells. A query for range [w_begin, w_end) visits O(log n)
// canonical nodes and merges their (already aggregated) count maps, instead
// of rescanning the records.
#ifndef SLIM_TEMPORAL_WINDOW_TREE_H_
#define SLIM_TEMPORAL_WINDOW_TREE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "geo/cell_id.h"

namespace slim {

/// One leaf observation: `count` records of the entity fell into spatial
/// cell `cell` during time window `window`.
struct WindowedCellCount {
  int64_t window = 0;
  CellId cell;
  uint32_t count = 0;
};

/// Segment tree over the occupied windows of one entity.
class WindowSegmentTree {
 public:
  /// An aggregated (cell, record count) entry, sorted by cell id.
  using CellCounts = std::vector<std::pair<CellId, uint32_t>>;

  WindowSegmentTree() = default;

  /// Builds the tree from leaf observations. Entries may arrive unsorted and
  /// may repeat a (window, cell) pair; counts are summed. Invalid cells and
  /// zero counts are rejected.
  static WindowSegmentTree Build(std::vector<WindowedCellCount> entries);

  bool empty() const { return nodes_.empty(); }

  /// Number of occupied leaf windows.
  size_t num_windows() const { return num_leaves_; }

  /// Smallest / largest occupied window index. Requires !empty().
  int64_t min_window() const;
  int64_t max_window() const;

  /// Total records across the whole history.
  uint64_t total_records() const;

  /// The cell with the highest record count in [w_begin, w_end), with cells
  /// first mapped to their ancestor at `spatial_level` (which must not
  /// exceed the leaf cells' level). Ties break toward the smaller cell id so
  /// results are deterministic. Returns nullopt if the range holds no
  /// records.
  std::optional<CellId> DominatingCell(int64_t w_begin, int64_t w_end,
                                       int spatial_level) const;

  /// Aggregated per-cell record counts in [w_begin, w_end) at
  /// `spatial_level`; sorted by cell id. Empty if the range holds no records.
  CellCounts RangeCellCounts(int64_t w_begin, int64_t w_end,
                             int spatial_level) const;

  /// Total records with timestamps in [w_begin, w_end).
  uint64_t RangeRecordCount(int64_t w_begin, int64_t w_end) const;

  /// The spatial level of the leaf cells (all leaves share one level).
  /// Requires !empty().
  int leaf_spatial_level() const { return leaf_level_; }

 private:
  struct Node {
    int64_t window_lo = 0;  // inclusive, in window-index space
    int64_t window_hi = 0;  // inclusive
    int left = -1;          // child node indices; -1 for leaves
    int right = -1;
    CellCounts counts;      // aggregated cell -> record count
    uint64_t records = 0;   // sum of counts
  };

  // Recursively builds over leaves_[lo..hi] (indices into the sorted,
  // deduplicated leaf array). Returns node index.
  int BuildRange(const std::vector<std::pair<int64_t, CellCounts>>& leaves,
                 size_t lo, size_t hi);

  void Collect(int node, int64_t w_begin, int64_t w_end,
               std::vector<int>* out) const;

  std::vector<Node> nodes_;
  int root_ = -1;
  size_t num_leaves_ = 0;
  int leaf_level_ = -1;
};

}  // namespace slim

#endif  // SLIM_TEMPORAL_WINDOW_TREE_H_
