#include "temporal/window_tree.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"

namespace slim {
namespace {

// Merges b into a (both sorted by cell id), summing counts.
void MergeCounts(WindowSegmentTree::CellCounts* a,
                 const WindowSegmentTree::CellCounts& b) {
  WindowSegmentTree::CellCounts out;
  out.reserve(a->size() + b.size());
  size_t ia = 0, ib = 0;
  while (ia < a->size() && ib < b.size()) {
    if ((*a)[ia].first < b[ib].first) {
      out.push_back((*a)[ia++]);
    } else if (b[ib].first < (*a)[ia].first) {
      out.push_back(b[ib++]);
    } else {
      out.emplace_back((*a)[ia].first, (*a)[ia].second + b[ib].second);
      ++ia;
      ++ib;
    }
  }
  while (ia < a->size()) out.push_back((*a)[ia++]);
  while (ib < b.size()) out.push_back(b[ib++]);
  *a = std::move(out);
}

}  // namespace

WindowSegmentTree WindowSegmentTree::Build(
    std::vector<WindowedCellCount> entries) {
  WindowSegmentTree tree;
  if (entries.empty()) return tree;

  int leaf_level = -1;
  // window -> (cell -> count), ordered so leaves come out sorted.
  std::map<int64_t, std::map<CellId, uint32_t>> grouped;
  for (const auto& e : entries) {
    SLIM_CHECK_MSG(e.cell.IsValid(), "WindowSegmentTree: invalid cell");
    SLIM_CHECK_MSG(e.count > 0, "WindowSegmentTree: zero count");
    if (leaf_level < 0) {
      leaf_level = e.cell.level();
    } else {
      SLIM_CHECK_MSG(e.cell.level() == leaf_level,
                     "WindowSegmentTree: mixed leaf cell levels");
    }
    grouped[e.window][e.cell] += e.count;
  }

  std::vector<std::pair<int64_t, CellCounts>> leaves;
  leaves.reserve(grouped.size());
  for (auto& [w, cells] : grouped) {
    CellCounts cc(cells.begin(), cells.end());
    leaves.emplace_back(w, std::move(cc));
  }

  tree.leaf_level_ = leaf_level;
  tree.num_leaves_ = leaves.size();
  tree.nodes_.reserve(2 * leaves.size());
  tree.root_ = tree.BuildRange(leaves, 0, leaves.size() - 1);
  return tree;
}

int WindowSegmentTree::BuildRange(
    const std::vector<std::pair<int64_t, CellCounts>>& leaves, size_t lo,
    size_t hi) {
  if (lo == hi) {
    Node leaf;
    leaf.window_lo = leaf.window_hi = leaves[lo].first;
    leaf.counts = leaves[lo].second;
    for (const auto& [cell, count] : leaf.counts) leaf.records += count;
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  }
  const size_t mid = lo + (hi - lo) / 2;
  const int left = BuildRange(leaves, lo, mid);
  const int right = BuildRange(leaves, mid + 1, hi);
  Node inner;
  inner.window_lo = nodes_[static_cast<size_t>(left)].window_lo;
  inner.window_hi = nodes_[static_cast<size_t>(right)].window_hi;
  inner.left = left;
  inner.right = right;
  inner.counts = nodes_[static_cast<size_t>(left)].counts;
  MergeCounts(&inner.counts, nodes_[static_cast<size_t>(right)].counts);
  inner.records = nodes_[static_cast<size_t>(left)].records +
                  nodes_[static_cast<size_t>(right)].records;
  nodes_.push_back(std::move(inner));
  return static_cast<int>(nodes_.size() - 1);
}

int64_t WindowSegmentTree::min_window() const {
  SLIM_CHECK(!empty());
  return nodes_[static_cast<size_t>(root_)].window_lo;
}

int64_t WindowSegmentTree::max_window() const {
  SLIM_CHECK(!empty());
  return nodes_[static_cast<size_t>(root_)].window_hi;
}

uint64_t WindowSegmentTree::total_records() const {
  return empty() ? 0 : nodes_[static_cast<size_t>(root_)].records;
}

void WindowSegmentTree::Collect(int node, int64_t w_begin, int64_t w_end,
                                std::vector<int>* out) const {
  if (node < 0) return;
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.window_hi < w_begin || n.window_lo >= w_end) return;  // disjoint
  if (n.window_lo >= w_begin && n.window_hi < w_end) {        // contained
    out->push_back(node);
    return;
  }
  Collect(n.left, w_begin, w_end, out);
  Collect(n.right, w_begin, w_end, out);
}

WindowSegmentTree::CellCounts WindowSegmentTree::RangeCellCounts(
    int64_t w_begin, int64_t w_end, int spatial_level) const {
  CellCounts result;
  if (empty() || w_begin >= w_end) return result;
  SLIM_CHECK_MSG(spatial_level >= 0 && spatial_level <= leaf_level_,
                 "query spatial level must be <= leaf level");
  std::vector<int> canonical;
  Collect(root_, w_begin, w_end, &canonical);
  if (canonical.empty()) return result;

  // std::map, not unordered: result is assigned straight from the
  // aggregate, so its traversal order (sorted by cell id) is the output
  // order DominatingCell's tie-break depends on.
  std::map<CellId, uint32_t> agg;
  for (int node : canonical) {
    for (const auto& [cell, count] : nodes_[static_cast<size_t>(node)].counts) {
      agg[cell.Parent(spatial_level)] += count;
    }
  }
  result.assign(agg.begin(), agg.end());
  return result;
}

std::optional<CellId> WindowSegmentTree::DominatingCell(
    int64_t w_begin, int64_t w_end, int spatial_level) const {
  const CellCounts counts = RangeCellCounts(w_begin, w_end, spatial_level);
  if (counts.empty()) return std::nullopt;
  // Max count; ties -> smaller cell id (counts are sorted by cell).
  const auto best = std::max_element(
      counts.begin(), counts.end(),
      [](const auto& a, const auto& b) { return a.second < b.second; });
  return best->first;
}

uint64_t WindowSegmentTree::RangeRecordCount(int64_t w_begin,
                                             int64_t w_end) const {
  if (empty() || w_begin >= w_end) return 0;
  std::vector<int> canonical;
  Collect(root_, w_begin, w_end, &canonical);
  uint64_t total = 0;
  for (int node : canonical) total += nodes_[static_cast<size_t>(node)].records;
  return total;
}

}  // namespace slim
