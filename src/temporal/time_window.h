// Temporal window indexing.
//
// The mobility-history representation (paper Sec. 2.3) buckets record
// timestamps into fixed-width leaf windows. A window is identified by its
// integer index: window w covers [w * width, (w + 1) * width) in epoch
// seconds. Hierarchical aggregation over windows lives in WindowSegmentTree.
#ifndef SLIM_TEMPORAL_TIME_WINDOW_H_
#define SLIM_TEMPORAL_TIME_WINDOW_H_

#include <cstdint>

#include "common/check.h"

namespace slim {

/// Index of the window of width `width_seconds` containing `epoch_seconds`
/// (floor division, correct for negative timestamps).
inline int64_t WindowIndexOf(int64_t epoch_seconds, int64_t width_seconds) {
  SLIM_DCHECK(width_seconds > 0);
  int64_t q = epoch_seconds / width_seconds;
  if (epoch_seconds % width_seconds < 0) --q;
  return q;
}

/// Start timestamp (epoch seconds) of window `w`.
inline int64_t WindowStart(int64_t w, int64_t width_seconds) {
  return w * width_seconds;
}

/// The "runaway distance" R = |w| * alpha of the paper (Sec. 3.1.1): the
/// farthest an entity can travel within one window of `width_seconds` at
/// maximum speed `max_speed_mps` (meters/second).
inline double RunawayDistanceMeters(int64_t width_seconds,
                                    double max_speed_mps) {
  SLIM_DCHECK(width_seconds > 0 && max_speed_mps > 0.0);
  return static_cast<double>(width_seconds) * max_speed_mps;
}

}  // namespace slim

#endif  // SLIM_TEMPORAL_TIME_WINDOW_H_
