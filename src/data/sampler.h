// Experiment sampler (paper Sec. 5.1).
//
// From one master dataset it derives the two location datasets to be linked:
//   * the *entity intersection ratio* rho controls what fraction of the
//     (smaller) side's entities also appear on the other side, and
//   * the *record inclusion probability* p independently downsamples each
//     side's records, emulating two asynchronously-used services.
// Entities with fewer than `min_records` surviving records are dropped (the
// paper ignores entities with <= 5 records). Both sides are re-anonymised
// with fresh, unrelated ids; the ground-truth mapping between them is
// returned alongside for evaluation only.
#ifndef SLIM_DATA_SAMPLER_H_
#define SLIM_DATA_SAMPLER_H_

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/status.h"
#include "data/dataset.h"

namespace slim {

/// Evaluation-only mapping between the anonymised ids of the two sampled
/// datasets. An entry (a, b) states that id `a` in dataset A and id `b` in
/// dataset B are the same real-world entity.
struct GroundTruth {
  std::unordered_map<EntityId, EntityId> a_to_b;

  size_t size() const { return a_to_b.size(); }
  bool AreLinked(EntityId a, EntityId b) const {
    const auto it = a_to_b.find(a);
    return it != a_to_b.end() && it->second == b;
  }
};

/// Configuration for SampleLinkedPair().
struct PairSampleOptions {
  /// Number of entities drawn for each side (paper: 265 for Cab, ~30k for
  /// SM). 0 means "as many as the master dataset allows" given the ratio.
  size_t entities_per_side = 0;

  /// Fraction of the smaller side's entities present on both sides
  /// (paper default 0.5). Must be in [0, 1].
  double intersection_ratio = 0.5;

  /// Probability that a master record of a kept entity enters a given side
  /// (paper default 0.5; the two sides draw independently). Must be in
  /// (0, 1].
  double inclusion_probability = 0.5;

  /// Entities with fewer than this many records on a side are dropped from
  /// that side (paper: "ignore an entity if it does not have more than 5
  /// records" -> 6).
  size_t min_records = 6;

  /// Optional per-side perturbations emulating measurement differences
  /// between two distinct services.
  double location_noise_meters = 0.0;
  int64_t time_jitter_seconds = 0;

  uint64_t seed = 7;
};

/// The two datasets to be linked plus their evaluation-only ground truth.
struct LinkedPairSample {
  LocationDataset a;
  LocationDataset b;
  GroundTruth truth;
};

/// Draws the two overlapping sides from `master` per `options`.
/// Fails if the master has too few entities for the requested sizes/ratio.
Result<LinkedPairSample> SampleLinkedPair(const LocationDataset& master,
                                          const PairSampleOptions& options);

}  // namespace slim

#endif  // SLIM_DATA_SAMPLER_H_
