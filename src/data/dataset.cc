#include "data/dataset.h"

#include <algorithm>

#include "common/check.h"

namespace slim {

LocationDataset LocationDataset::FromRecords(std::string name,
                                             std::vector<Record> records) {
  LocationDataset ds(std::move(name));
  ds.records_ = std::move(records);
  ds.Finalize();
  return ds;
}

void LocationDataset::Add(const Record& r) {
  records_.push_back(r);
  finalized_ = false;
}

void LocationDataset::Add(EntityId entity, const LatLng& location,
                          int64_t timestamp) {
  Add(Record{entity, location, timestamp});
}

void LocationDataset::Finalize() {
  if (finalized_) return;
  std::sort(records_.begin(), records_.end(),
            [](const Record& a, const Record& b) {
              if (a.entity != b.entity) return a.entity < b.entity;
              if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
              if (a.location.lat_deg != b.location.lat_deg)
                return a.location.lat_deg < b.location.lat_deg;
              return a.location.lng_deg < b.location.lng_deg;
            });
  entity_ids_.clear();
  index_.clear();
  size_t start = 0;
  for (size_t i = 0; i <= records_.size(); ++i) {
    if (i == records_.size() ||
        (i > 0 && records_[i].entity != records_[i - 1].entity)) {
      if (i > start) {
        entity_ids_.push_back(records_[start].entity);
        index_[records_[start].entity] = {start, i};
      }
      start = i;
    }
  }
  finalized_ = true;
}

void LocationDataset::RequireFinalized() const {
  SLIM_CHECK_MSG(finalized_, "LocationDataset must be finalized before reads");
}

size_t LocationDataset::num_entities() const {
  RequireFinalized();
  return entity_ids_.size();
}

const std::vector<Record>& LocationDataset::records() const {
  RequireFinalized();
  return records_;
}

const std::vector<EntityId>& LocationDataset::entity_ids() const {
  RequireFinalized();
  return entity_ids_;
}

bool LocationDataset::ContainsEntity(EntityId entity) const {
  RequireFinalized();
  return index_.count(entity) > 0;
}

std::span<const Record> LocationDataset::RecordsOf(EntityId entity) const {
  RequireFinalized();
  const auto it = index_.find(entity);
  if (it == index_.end()) return {};
  return std::span<const Record>(records_.data() + it->second.first,
                                 it->second.second - it->second.first);
}

std::pair<int64_t, int64_t> LocationDataset::TimeRange() const {
  RequireFinalized();
  SLIM_CHECK_MSG(!records_.empty(), "TimeRange of an empty dataset");
  int64_t lo = records_.front().timestamp;
  int64_t hi = lo;
  for (const Record& r : records_) {
    lo = std::min(lo, r.timestamp);
    hi = std::max(hi, r.timestamp);
  }
  return {lo, hi};
}

double LocationDataset::AvgRecordsPerEntity() const {
  RequireFinalized();
  if (entity_ids_.empty()) return 0.0;
  return static_cast<double>(records_.size()) /
         static_cast<double>(entity_ids_.size());
}

size_t LocationDataset::FilterMinRecords(size_t min_records) {
  RequireFinalized();
  std::vector<Record> kept;
  kept.reserve(records_.size());
  size_t removed_entities = 0;
  for (EntityId e : entity_ids_) {
    const auto span = RecordsOf(e);
    if (span.size() >= min_records) {
      kept.insert(kept.end(), span.begin(), span.end());
    } else {
      ++removed_entities;
    }
  }
  records_ = std::move(kept);
  finalized_ = false;
  Finalize();
  return removed_entities;
}

}  // namespace slim
