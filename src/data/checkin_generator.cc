#include "data/checkin_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace slim {
namespace {

struct City {
  LatLng center;
  std::vector<LatLng> venues;
};

LatLng RandomCityCenter(Rng* rng) {
  // Keep cities between +/- 60 degrees latitude (where people live) and
  // anywhere in longitude.
  return LatLng{rng->NextDouble(-60.0, 60.0), rng->NextDouble(-180.0, 180.0)};
}

LatLng RandomPointInDisc(const LatLng& center, double radius_m, Rng* rng) {
  const double bearing = rng->NextDouble(0.0, 360.0);
  // sqrt for uniform density over the disc.
  const double dist = radius_m * std::sqrt(rng->NextDouble());
  return DestinationPoint(center, bearing, dist);
}

}  // namespace

LocationDataset GenerateCheckinDataset(const CheckinGeneratorOptions& opt) {
  SLIM_CHECK_MSG(opt.num_users > 0, "num_users must be positive");
  SLIM_CHECK_MSG(opt.num_cities > 0, "num_cities must be positive");
  SLIM_CHECK_MSG(opt.mean_checkins > 0, "mean_checkins must be positive");
  SLIM_CHECK_MSG(opt.min_favorites > 0 &&
                     opt.max_favorites >= opt.min_favorites,
                 "favourite venue range invalid");

  Rng master_rng(opt.seed);

  // Assign users to home cities first so venue pools can be sized.
  std::vector<size_t> home_city(static_cast<size_t>(opt.num_users));
  std::vector<size_t> city_population(static_cast<size_t>(opt.num_cities), 0);
  for (auto& c : home_city) {
    c = master_rng.NextZipf(static_cast<uint64_t>(opt.num_cities),
                            opt.city_skew);
    ++city_population[c];
  }

  std::vector<City> cities(static_cast<size_t>(opt.num_cities));
  for (size_t c = 0; c < cities.size(); ++c) {
    cities[c].center = RandomCityCenter(&master_rng);
    const size_t pool =
        std::max(static_cast<size_t>(opt.venues_per_city_min),
                 static_cast<size_t>(std::ceil(
                     static_cast<double>(city_population[c]) *
                     opt.venues_per_user_factor)));
    cities[c].venues.reserve(pool);
    for (size_t v = 0; v < pool; ++v) {
      cities[c].venues.push_back(RandomPointInDisc(
          cities[c].center, opt.city_radius_meters, &master_rng));
    }
  }

  const double duration_s = opt.duration_days * 86400.0;
  LocationDataset out("sm");
  out.Reserve(static_cast<size_t>(static_cast<double>(opt.num_users) *
                                  opt.mean_checkins * 1.1));

  for (int user = 0; user < opt.num_users; ++user) {
    Rng rng = master_rng.Fork(static_cast<uint64_t>(user));
    const City& home = cities[home_city[static_cast<size_t>(user)]];

    // Personal favourite venues, Zipf over the city pool so popular venues
    // are shared across users.
    const int n_fav = static_cast<int>(
        rng.NextInt64(opt.min_favorites, opt.max_favorites));
    std::vector<LatLng> favorites;
    favorites.reserve(static_cast<size_t>(n_fav));
    for (int f = 0; f < n_fav; ++f) {
      const size_t v = rng.NextZipf(home.venues.size(), opt.venue_skew);
      favorites.push_back(home.venues[v]);
    }

    // Optional trip window to another city.
    bool travels = rng.NextBernoulli(opt.travel_probability) &&
                   cities.size() > 1;
    double trip_start = 0.0, trip_end = 0.0;
    const City* trip_city = nullptr;
    if (travels) {
      const double trip_len =
          std::min(opt.travel_days * 86400.0, duration_s * 0.5);
      trip_start = rng.NextDouble(0.0, duration_s - trip_len);
      trip_end = trip_start + trip_len;
      size_t other;
      do {
        other = rng.NextUint64(cities.size());
      } while (other == home_city[static_cast<size_t>(user)]);
      trip_city = &cities[other];
    }

    const uint64_t n_checkins = rng.NextPoisson(opt.mean_checkins);
    for (uint64_t k = 0; k < n_checkins; ++k) {
      const double t = rng.NextDouble(0.0, duration_s);
      LatLng where;
      if (travels && t >= trip_start && t < trip_end) {
        // Away: random venue of the trip city.
        where = trip_city->venues[rng.NextUint64(trip_city->venues.size())];
      } else {
        where = favorites[rng.NextUint64(favorites.size())];
      }
      if (opt.position_noise_meters > 0.0) {
        where = DestinationPoint(
            where, rng.NextDouble(0.0, 360.0),
            std::abs(rng.NextGaussian()) * opt.position_noise_meters);
      }
      out.Add(static_cast<EntityId>(user), where,
              opt.start_epoch + static_cast<int64_t>(t));
    }
  }
  out.Finalize();
  return out;
}

}  // namespace slim
