// Synthetic stand-in for the paper's SM dataset (Twitter + Foursquare
// check-ins; see DESIGN.md §1 for the substitution argument).
//
// The generator produces sparse check-in behaviour: users live in one of a
// set of popularity-skewed cities spread over the globe, repeatedly visit a
// small personal set of venues drawn from a shared per-city venue pool
// (popular venues are shared across many users, which is what makes the
// similarity score's IDF term meaningful), and occasionally travel to
// another city. Check-in times follow a Poisson process over the collection
// period. The shape matches the real SM data: many entities, ~tens of
// records each, global spread, heavy venue reuse, temporal asynchrony.
#ifndef SLIM_DATA_CHECKIN_GENERATOR_H_
#define SLIM_DATA_CHECKIN_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace slim {

/// Configuration for GenerateCheckinDataset(). Defaults give a scaled-down
/// population for tests; paper scale is num_users~500k with ~11 checkins
/// each over 26 days.
struct CheckinGeneratorOptions {
  int num_users = 2000;
  double duration_days = 26.0;
  /// Mean check-ins per user over the whole period (Poisson).
  double mean_checkins = 24.0;
  /// First record timestamp (epoch seconds). 2017-10-03T00:00Z, matching
  /// the real SM collection start.
  int64_t start_epoch = 1507075200;

  /// Number of cities; users pick a home city ~ Zipf(city_skew).
  int num_cities = 40;
  double city_skew = 1.0;
  /// City radius, meters (venues live within this disc).
  double city_radius_meters = 8000.0;

  /// Venue pool size per city = max(venues_per_city_min,
  /// users_in_city * venues_per_user_factor); users pick their personal
  /// venue set ~ Zipf(venue_skew) from the pool.
  int venues_per_city_min = 50;
  double venues_per_user_factor = 2.0;
  double venue_skew = 0.8;
  /// Personal favourite-venue count range.
  int min_favorites = 4;
  int max_favorites = 12;

  /// Probability a user takes one multi-day trip to another city.
  double travel_probability = 0.1;
  double travel_days = 2.0;

  /// Check-in position noise (GPS / venue centroid error), meters.
  double position_noise_meters = 50.0;

  uint64_t seed = 43;
};

/// Generates the master check-in dataset (entity ids 0..num_users-1); feed
/// it to SampleLinkedPair() to derive the two sides of a linkage experiment.
LocationDataset GenerateCheckinDataset(const CheckinGeneratorOptions& options);

}  // namespace slim

#endif  // SLIM_DATA_CHECKIN_GENERATOR_H_
