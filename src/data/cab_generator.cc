#include "data/cab_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace slim {
namespace {

struct Hotspot {
  LatLng center;
  double weight;
};

LatLng UniformInBox(const CabGeneratorOptions& opt, Rng* rng) {
  return LatLng{rng->NextDouble(opt.lat_lo, opt.lat_hi),
                rng->NextDouble(opt.lng_lo, opt.lng_hi)};
}

LatLng ClampToBox(const CabGeneratorOptions& opt, const LatLng& p) {
  return LatLng{std::clamp(p.lat_deg, opt.lat_lo, opt.lat_hi),
                std::clamp(p.lng_deg, opt.lng_lo, opt.lng_hi)};
}

// Linear interpolation in lat/lng is accurate enough inside a ~20 km box.
LatLng Interpolate(const LatLng& a, const LatLng& b, double f) {
  return LatLng{a.lat_deg + (b.lat_deg - a.lat_deg) * f,
                a.lng_deg + (b.lng_deg - a.lng_deg) * f};
}

}  // namespace

LocationDataset GenerateCabDataset(const CabGeneratorOptions& opt) {
  SLIM_CHECK_MSG(opt.num_taxis > 0, "num_taxis must be positive");
  SLIM_CHECK_MSG(opt.duration_days > 0, "duration_days must be positive");
  SLIM_CHECK_MSG(opt.record_interval_seconds > 0,
                 "record_interval_seconds must be positive");
  SLIM_CHECK_MSG(
      opt.min_speed_kmh > 0 && opt.max_speed_kmh >= opt.min_speed_kmh,
                 "speed range invalid");

  Rng master_rng(opt.seed);

  // Hotspots with Zipf popularity.
  std::vector<Hotspot> hotspots;
  hotspots.reserve(static_cast<size_t>(opt.num_hotspots));
  for (int h = 0; h < opt.num_hotspots; ++h) {
    hotspots.push_back(
        {UniformInBox(opt, &master_rng),
         1.0 / std::pow(static_cast<double>(h + 1), opt.hotspot_skew)});
  }
  double total_weight = 0.0;
  for (const auto& h : hotspots) total_weight += h.weight;

  auto pick_destination = [&](Rng* rng) -> LatLng {
    if (!hotspots.empty() && rng->NextBernoulli(opt.hotspot_probability)) {
      double x = rng->NextDouble() * total_weight;
      size_t idx = 0;
      for (; idx + 1 < hotspots.size(); ++idx) {
        x -= hotspots[idx].weight;
        if (x <= 0.0) break;
      }
      const LatLng c = hotspots[idx].center;
      const double bearing = rng->NextDouble(0.0, 360.0);
      const double dist =
          std::abs(rng->NextGaussian()) * opt.hotspot_sigma_meters;
      return ClampToBox(opt, DestinationPoint(c, bearing, dist));
    }
    return UniformInBox(opt, rng);
  };

  const double duration_s = opt.duration_days * 86400.0;
  LocationDataset out("cab");
  out.Reserve(static_cast<size_t>(
      static_cast<double>(opt.num_taxis) * duration_s /
      opt.record_interval_seconds * 1.05));

  for (int taxi = 0; taxi < opt.num_taxis; ++taxi) {
    Rng rng = master_rng.Fork(static_cast<uint64_t>(taxi));
    double now = 0.0;  // seconds since start
    LatLng pos = pick_destination(&rng);
    // Stagger sampling phases across taxis.
    double next_sample = rng.NextDouble(0.0, opt.record_interval_seconds);
    // Duty cycling: stagger the first shift boundary, too.
    const bool duty_cycling =
        opt.rest_hours_mean > 0.0 && opt.duty_hours_mean > 0.0;
    double shift_end =
        duty_cycling
            ? rng.NextDouble(0.0, opt.duty_hours_mean * 3600.0)
            : duration_s;

    auto emit = [&](const LatLng& p, double t) {
      LatLng noisy = p;
      if (opt.gps_noise_meters > 0.0) {
        noisy = DestinationPoint(
            p, rng.NextDouble(0.0, 360.0),
            std::abs(rng.NextGaussian()) * opt.gps_noise_meters);
      }
      out.Add(static_cast<EntityId>(taxi), ClampToBox(opt, noisy),
              opt.start_epoch + static_cast<int64_t>(t));
    };

    while (now < duration_s) {
      if (duty_cycling && now >= shift_end) {
        // Park: stay silent through the rest period, then start a new
        // shift from the same position (physically consistent).
        const double rest =
            rng.NextExponential(1.0 / (opt.rest_hours_mean * 3600.0));
        now += rest;
        next_sample = std::max(next_sample, now);
        shift_end = now + rng.NextExponential(
                              1.0 / (opt.duty_hours_mean * 3600.0));
        continue;
      }

      // One leg: drive from pos to dest at a constant speed, then dwell.
      const LatLng dest = pick_destination(&rng);
      const double speed_mps =
          rng.NextDouble(opt.min_speed_kmh, opt.max_speed_kmh) / 3.6;
      const double leg_len = HaversineMeters(pos, dest);
      const double leg_time = leg_len / speed_mps;
      const double leg_end = now + leg_time;
      const double sample_until = std::min(leg_end, shift_end);

      while (next_sample <= sample_until && next_sample < duration_s) {
        const double f = leg_time > 0.0 ? (next_sample - now) / leg_time : 1.0;
        emit(Interpolate(pos, dest, std::clamp(f, 0.0, 1.0)), next_sample);
        next_sample += opt.record_interval_seconds *
                       rng.NextDouble(0.7, 1.3);  // cadence jitter
      }
      now = leg_end;
      pos = dest;
      if (duty_cycling && now >= shift_end) continue;

      const double dwell = rng.NextExponential(1.0 / opt.dwell_mean_seconds);
      const double dwell_end = now + dwell;
      const double dwell_until = std::min(dwell_end, shift_end);
      while (next_sample <= dwell_until && next_sample < duration_s) {
        emit(pos, next_sample);
        next_sample += opt.record_interval_seconds * rng.NextDouble(0.7, 1.3);
      }
      now = dwell_end;
    }
  }
  out.Finalize();
  return out;
}

}  // namespace slim
