#include "data/dataset_io.h"

#include <cstring>
#include <fstream>

#include "common/io.h"
#include "data/csv.h"
#include "data/sbin.h"

namespace slim {

const char* DatasetFormatName(DatasetFormat format) {
  switch (format) {
    case DatasetFormat::kAuto:
      return "auto";
    case DatasetFormat::kCsv:
      return "csv";
    case DatasetFormat::kSbin:
      return "sbin";
  }
  return "unknown";
}

Result<DatasetFormat> ParseDatasetFormat(std::string_view s) {
  if (s == "auto") return DatasetFormat::kAuto;
  if (s == "csv") return DatasetFormat::kCsv;
  if (s == "sbin") return DatasetFormat::kSbin;
  return Status::InvalidArgument("unknown dataset format: \"" +
                                 std::string(s) +
                                 "\" (expected auto|csv|sbin)");
}

Result<DatasetFormat> SniffDatasetFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for read: " + path);
  char head[sizeof(kSbinMagic)] = {};
  in.read(head, sizeof(head));
  if (in.gcount() == static_cast<std::streamsize>(sizeof(head)) &&
      std::memcmp(head, kSbinMagic, sizeof(head)) == 0) {
    return DatasetFormat::kSbin;
  }
  return DatasetFormat::kCsv;
}

Result<LocationDataset> ReadDataset(const std::string& path,
                                    const std::string& name,
                                    const DatasetIoOptions& options) {
  CsvReadOptions csv;
  csv.io_threads = options.io_threads;
  switch (options.format) {
    case DatasetFormat::kCsv:
      return ReadCsv(path, name, csv);
    case DatasetFormat::kSbin:
      return ReadSbin(path, name);
    case DatasetFormat::kAuto:
      break;
  }
  // Auto-detection loads the file once and sniffs the in-memory bytes —
  // never a second open, so pipes and process substitution work here too.
  FileContents content;
  SLIM_RETURN_NOT_OK(content.Open(path));
  const std::string_view bytes = content.view();
  if (bytes.size() >= sizeof(kSbinMagic) &&
      std::memcmp(bytes.data(), kSbinMagic, sizeof(kSbinMagic)) == 0) {
    return ParseSbin(bytes, name, path);
  }
  return ParseCsv(bytes, name, csv, path);
}

Status WriteDataset(const LocationDataset& dataset, const std::string& path,
                    DatasetFormat format) {
  if (format == DatasetFormat::kAuto) {
    format = path.size() >= 5 && path.compare(path.size() - 5, 5, ".sbin") == 0
                 ? DatasetFormat::kSbin
                 : DatasetFormat::kCsv;
  }
  return format == DatasetFormat::kSbin ? WriteSbin(dataset, path)
                                        : WriteCsv(dataset, path);
}

}  // namespace slim
