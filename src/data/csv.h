// CSV persistence for location datasets.
//
// Format (one header line, then one record per line):
//   entity_id,lat,lng,timestamp
// matching the minimal feature set the paper retains ("we use only time,
// lat-long and anonymized user-id, and remove all other features").
#ifndef SLIM_DATA_CSV_H_
#define SLIM_DATA_CSV_H_

#include <string>

#include "common/status.h"
#include "data/dataset.h"

namespace slim {

/// Writes `dataset` to `path`. Overwrites any existing file.
Status WriteCsv(const LocationDataset& dataset, const std::string& path);

/// Reads a dataset (named `name`) from `path`. Fails with a line-numbered
/// message on malformed rows or out-of-range coordinates.
Result<LocationDataset> ReadCsv(const std::string& path,
                                const std::string& name);

}  // namespace slim

#endif  // SLIM_DATA_CSV_H_
