// CSV persistence for location datasets.
//
// Format (one header line, then one record per line):
//   entity_id,lat,lng,timestamp
// matching the minimal feature set the paper retains ("we use only time,
// lat-long and anonymized user-id, and remove all other features").
//
// Reading is chunked and parallel: the file is split into byte ranges
// aligned to line boundaries, chunks are parsed concurrently on the shared
// ThreadPool, and per-chunk record vectors are concatenated in chunk order
// — so the resulting dataset is bit-identical at every thread count, and
// the reported error is always the earliest malformed line in the file.
// Formatting and parsing are locale-independent (std::to_chars /
// std::from_chars); the global C locale cannot corrupt output or reject
// valid input.
#ifndef SLIM_DATA_CSV_H_
#define SLIM_DATA_CSV_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace slim {

/// Writes `dataset` to `path`. Overwrites any existing file. Coordinates
/// are written with 7 decimal places (~1 cm), which round-trips exactly
/// for values quantized to 1e-7 degrees.
Status WriteCsv(const LocationDataset& dataset, const std::string& path);

struct CsvReadOptions {
  /// Worker threads for chunked parsing; <= 0 means DefaultThreadCount().
  /// The parsed dataset is identical at every setting.
  int io_threads = 0;
  /// The reader never splits the file into chunks smaller than this (or
  /// more chunks than io_threads). The default keeps small files on the
  /// serial path; tests lower it to force multi-chunk parses.
  size_t min_chunk_bytes = 1 << 16;
};

/// Reads a dataset (named `name`) from `path`. A UTF-8 BOM is stripped and
/// a header starting with "entity_id" is skipped wherever the first
/// non-blank line is. Fails with a "path:line:" message on malformed rows
/// and on raw coordinates that are non-finite or outside |lat| <= 90,
/// |lng| <= 180 (validated before normalization). Non-seekable inputs
/// (FIFOs, process substitution) are supported.
Result<LocationDataset> ReadCsv(const std::string& path,
                                const std::string& name,
                                const CsvReadOptions& options = {});

/// Parses CSV `content` already in memory (same semantics as ReadCsv;
/// used by ReadDataset after sniffing, and handy for buffers received
/// over the network). `source` names the input in error messages
/// ("source:line: message").
Result<LocationDataset> ParseCsv(std::string_view content,
                                 const std::string& name,
                                 const CsvReadOptions& options = {},
                                 const std::string& source = "csv");

}  // namespace slim

#endif  // SLIM_DATA_CSV_H_
