#include "data/sbin.h"

#include <bit>
#include <cstring>
#include <limits>
#include <vector>

#include "common/io.h"
#include "common/strings.h"
#include "data/dataset_io.h"

namespace slim {
namespace {

// Explicit little-endian byte codecs: SBIN files are portable across hosts
// regardless of native endianness.
void PutU32Le(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64Le(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32Le(const char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

uint64_t GetU64Le(const char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | static_cast<unsigned char>(p[i]);
  }
  return v;
}

}  // namespace

Status WriteSbin(const LocationDataset& dataset, const std::string& path) {
  FileWriter out(path);
  if (!out.ok()) return Status::IoError("cannot open for write: " + path);

  const std::vector<Record>& records = dataset.records();
  out.buf().append(kSbinMagic, sizeof(kSbinMagic));
  PutU32Le(kSbinVersion, &out.buf());
  PutU64Le(static_cast<uint64_t>(records.size()), &out.buf());
  for (const Record& r : records) {
    std::string& buf = out.buf();
    PutU64Le(static_cast<uint64_t>(r.entity), &buf);
    PutU64Le(std::bit_cast<uint64_t>(r.location.lat_deg), &buf);
    PutU64Le(std::bit_cast<uint64_t>(r.location.lng_deg), &buf);
    PutU64Le(static_cast<uint64_t>(r.timestamp), &buf);
    out.FlushIfFull();
  }
  return out.Finish(path);
}

Result<LocationDataset> ReadSbin(const std::string& path,
                                 const std::string& name) {
  FileContents content;
  SLIM_RETURN_NOT_OK(content.Open(path));
  return ParseSbin(content.view(), name, path);
}

Result<LocationDataset> ParseSbin(std::string_view content,
                                  const std::string& name,
                                  const std::string& source) {
  if (content.size() < kSbinHeaderBytes) {
    return Status::InvalidArgument(
        StrFormat("%s: too short for an SBIN header (%zu bytes)",
                  source.c_str(), content.size()));
  }
  if (std::memcmp(content.data(), kSbinMagic, sizeof(kSbinMagic)) != 0) {
    return Status::InvalidArgument(source + ": bad magic (not an SBIN file)");
  }
  const uint32_t version = GetU32Le(content.data() + 4);
  if (version != kSbinVersion) {
    return Status::InvalidArgument(
        StrFormat("%s: unsupported SBIN version %u (expected %u)",
                  source.c_str(), version, kSbinVersion));
  }
  const uint64_t count = GetU64Le(content.data() + 8);
  const uint64_t max_count =
      (std::numeric_limits<uint64_t>::max() - kSbinHeaderBytes) /
      kSbinRecordBytes;
  if (count > max_count ||
      content.size() != kSbinHeaderBytes + count * kSbinRecordBytes) {
    return Status::InvalidArgument(StrFormat(
        "%s: header says %llu records (%llu bytes), file has %zu bytes",
        source.c_str(), static_cast<unsigned long long>(count),
        static_cast<unsigned long long>(
            count <= max_count ? kSbinHeaderBytes + count * kSbinRecordBytes
                               : 0),
        content.size()));
  }

  std::vector<Record> records;
  records.reserve(static_cast<size_t>(count));
  const char* p = content.data() + kSbinHeaderBytes;
  for (uint64_t i = 0; i < count; ++i, p += kSbinRecordBytes) {
    const auto entity = static_cast<int64_t>(GetU64Le(p));
    const double lat = std::bit_cast<double>(GetU64Le(p + 8));
    const double lng = std::bit_cast<double>(GetU64Le(p + 16));
    const auto timestamp = static_cast<int64_t>(GetU64Le(p + 24));
    if (!RawCoordinateInRange(lat, lng)) {
      return Status::OutOfRange(StrFormat(
          "%s: record %llu: %s", source.c_str(),
          static_cast<unsigned long long>(i),
          std::isfinite(lat) && std::isfinite(lng)
              ? "coordinate out of range"
              : "non-finite coordinate"));
    }
    records.push_back(Record{entity, LatLng{lat, lng}.Normalized(), timestamp});
  }
  return LocationDataset::FromRecords(name, std::move(records));
}

}  // namespace slim
