#include "data/csv.h"

#include <fstream>
#include <string>

#include "common/strings.h"

namespace slim {

Status WriteCsv(const LocationDataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IoError("cannot open for write: " + path);
  out << "entity_id,lat,lng,timestamp\n";
  for (const Record& r : dataset.records()) {
    out << r.entity << ',' << StrFormat("%.7f", r.location.lat_deg) << ','
        << StrFormat("%.7f", r.location.lng_deg) << ',' << r.timestamp
        << '\n';
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<LocationDataset> ReadCsv(const std::string& path,
                                const std::string& name) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for read: " + path);
  std::string line;
  size_t line_no = 0;
  std::vector<Record> records;
  while (std::getline(in, line)) {
    ++line_no;
    const auto stripped = StripAsciiWhitespace(line);
    if (stripped.empty()) continue;
    if (line_no == 1 && stripped.rfind("entity_id", 0) == 0) continue;  // header
    const auto fields = SplitString(stripped, ',');
    if (fields.size() != 4) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 4 fields, got %zu", path.c_str(),
                    line_no, fields.size()));
    }
    auto entity = ParseInt64(fields[0]);
    auto lat = ParseDouble(fields[1]);
    auto lng = ParseDouble(fields[2]);
    auto ts = ParseInt64(fields[3]);
    if (!entity.ok() || !lat.ok() || !lng.ok() || !ts.ok()) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: malformed record", path.c_str(), line_no));
    }
    const LatLng loc = LatLng{*lat, *lng}.Normalized();
    if (std::abs(*lat) > 90.0 || std::abs(*lng) > 360.0) {
      return Status::OutOfRange(
          StrFormat("%s:%zu: coordinate out of range", path.c_str(), line_no));
    }
    records.push_back(Record{*entity, loc, *ts});
  }
  return LocationDataset::FromRecords(name, std::move(records));
}

}  // namespace slim
