#include "data/csv.h"

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/io.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "data/dataset_io.h"

namespace slim {

Status WriteCsv(const LocationDataset& dataset, const std::string& path) {
  FileWriter out(path);
  if (!out.ok()) return Status::IoError("cannot open for write: " + path);
  out.buf() = "entity_id,lat,lng,timestamp\n";
  for (const Record& r : dataset.records()) {
    std::string& buf = out.buf();
    buf += std::to_string(r.entity);
    buf += ',';
    buf += FormatFixed(r.location.lat_deg, 7);
    buf += ',';
    buf += FormatFixed(r.location.lng_deg, 7);
    buf += ',';
    buf += std::to_string(r.timestamp);
    buf += '\n';
    out.FlushIfFull();
  }
  return out.Finish(path);
}

namespace {

constexpr size_t kNoError = static_cast<size_t>(-1);

// First malformed line of a chunk: the byte offset of its line start (the
// global line number is derived lazily, only on the error path) plus the
// ready-to-prefix detail message.
struct LineError {
  size_t offset = kNoError;
  StatusCode code = StatusCode::kOk;
  std::string detail;
};

struct ChunkResult {
  std::vector<Record> records;
  LineError error;
};

// Parses every line whose first byte lies in [begin, end) of `data`. The
// caller aligns chunk boundaries to line starts, so no line straddles two
// chunks. Stops at the chunk's first malformed line.
void ParseChunk(std::string_view data, size_t begin, size_t end,
                ChunkResult* out) {
  out->records.reserve((end - begin) / 24 + 1);
  size_t pos = begin;
  while (pos < end) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) eol = data.size();
    const size_t line_start = pos;
    const std::string_view line =
        StripAsciiWhitespace(data.substr(pos, eol - pos));
    pos = eol + 1;
    if (line.empty()) continue;
    const auto fields = SplitString(line, ',');
    if (fields.size() != 4) {
      out->error = {line_start, StatusCode::kInvalidArgument,
                    StrFormat("expected 4 fields, got %zu", fields.size())};
      return;
    }
    auto entity = ParseInt64(fields[0]);
    auto lat = ParseDouble(fields[1]);
    auto lng = ParseDouble(fields[2]);
    auto ts = ParseInt64(fields[3]);
    if (!entity.ok() || !lat.ok() || !lng.ok() || !ts.ok()) {
      out->error = {line_start, StatusCode::kInvalidArgument,
                    "malformed record"};
      return;
    }
    // Validate the raw values, before Normalized() could mask them.
    if (!RawCoordinateInRange(*lat, *lng)) {
      out->error = {line_start, StatusCode::kOutOfRange,
                    std::isfinite(*lat) && std::isfinite(*lng)
                        ? "coordinate out of range"
                        : "non-finite coordinate"};
      return;
    }
    out->records.push_back(
        Record{*entity, LatLng{*lat, *lng}.Normalized(), *ts});
  }
}

}  // namespace

Result<LocationDataset> ReadCsv(const std::string& path,
                                const std::string& name,
                                const CsvReadOptions& options) {
  FileContents content;
  SLIM_RETURN_NOT_OK(content.Open(path));
  return ParseCsv(content.view(), name, options, path);
}

Result<LocationDataset> ParseCsv(std::string_view content,
                                 const std::string& name,
                                 const CsvReadOptions& options,
                                 const std::string& source) {
  const std::string_view data = content;
  size_t start = data.size() - StripUtf8Bom(data).size();

  // Skip the header when the first non-blank line starts with "entity_id"
  // — wherever that line is (leading blank lines are fine).
  for (size_t pos = start; pos < data.size();) {
    size_t eol = data.find('\n', pos);
    if (eol == std::string_view::npos) eol = data.size();
    const std::string_view line =
        StripAsciiWhitespace(data.substr(pos, eol - pos));
    if (!line.empty()) {
      if (line.rfind("entity_id", 0) == 0) {
        start = std::min(eol + 1, data.size());
      }
      break;
    }
    pos = eol + 1;
  }

  // Chunk layout: a pure function of (file content, start, io_threads,
  // min_chunk_bytes) — never of scheduling — so the chunk-ordered merge
  // below yields the same dataset at every thread count.
  const int threads =
      options.io_threads <= 0 ? DefaultThreadCount() : options.io_threads;
  const size_t body = data.size() - start;
  const size_t by_size =
      options.min_chunk_bytes == 0 ? body : body / options.min_chunk_bytes;
  const size_t num_chunks = std::max<size_t>(
      1, std::min<size_t>(static_cast<size_t>(threads), by_size));
  std::vector<size_t> bounds{start};
  for (size_t i = 1; i < num_chunks; ++i) {
    const size_t target = start + i * (body / num_chunks);
    const size_t nl = data.find('\n', target);
    const size_t aligned = nl == std::string_view::npos ? data.size() : nl + 1;
    if (aligned > bounds.back() && aligned < data.size()) {
      bounds.push_back(aligned);
    }
  }

  std::vector<ChunkResult> chunks(bounds.size());
  auto parse_range = [&](size_t cb, size_t ce, int) {
    for (size_t c = cb; c < ce; ++c) {
      const size_t end = c + 1 < bounds.size() ? bounds[c + 1] : data.size();
      ParseChunk(data, bounds[c], end, &chunks[c]);
    }
  };
  if (bounds.size() == 1) {
    parse_range(0, 1, 0);
  } else {
    ParallelFor(bounds.size(), parse_range, threads);
  }

  // Earliest malformed line across all chunks wins, matching what a serial
  // scan would have reported.
  const LineError* first = nullptr;
  size_t total = 0;
  for (const ChunkResult& chunk : chunks) {
    total += chunk.records.size();
    if (chunk.error.offset != kNoError &&
        (first == nullptr || chunk.error.offset < first->offset)) {
      first = &chunk.error;
    }
  }
  if (first != nullptr) {
    const auto line_no =
        1 + std::count(content.begin(),
                       content.begin() + static_cast<std::ptrdiff_t>(
                                             first->offset),
                       '\n');
    std::string msg = StrFormat("%s:%lld: %s", source.c_str(),
                                static_cast<long long>(line_no),
                                first->detail.c_str());
    return first->code == StatusCode::kOutOfRange
               ? Status::OutOfRange(std::move(msg))
               : Status::InvalidArgument(std::move(msg));
  }

  if (chunks.size() == 1) {
    return LocationDataset::FromRecords(name, std::move(chunks[0].records));
  }
  std::vector<Record> records;
  records.reserve(total);
  for (ChunkResult& chunk : chunks) {
    records.insert(records.end(), chunk.records.begin(), chunk.records.end());
  }
  return LocationDataset::FromRecords(name, std::move(records));
}

}  // namespace slim
