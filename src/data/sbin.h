// SBIN v1 — the compact binary dataset format.
//
// Layout (all integers little-endian, doubles as IEEE-754 bit patterns):
//
//   offset  size  field
//   0       4     magic "SBIN"
//   4       4     format version (currently 1), uint32
//   8       8     record count N, uint64
//   16      32*N  records: {entity int64, lat double, lng double,
//                           timestamp int64}
//
// The file size must be exactly 16 + 32*N bytes; anything else is rejected
// as truncated or trailing garbage. Coordinates are validated like CSV
// input (finite, |lat| <= 90, |lng| <= 180) so a corrupt file cannot smuggle
// NaNs into a dataset. Reading is a single buffer scan — no text parsing —
// which is what makes SBIN the fast path for large corpora (see
// bench/bench_ingest.cc for measured rows/sec).
#ifndef SLIM_DATA_SBIN_H_
#define SLIM_DATA_SBIN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace slim {

inline constexpr char kSbinMagic[4] = {'S', 'B', 'I', 'N'};
inline constexpr uint32_t kSbinVersion = 1;
inline constexpr size_t kSbinHeaderBytes = 16;
inline constexpr size_t kSbinRecordBytes = 32;

/// Writes `dataset` to `path` in SBIN v1. Overwrites any existing file.
Status WriteSbin(const LocationDataset& dataset, const std::string& path);

/// Reads an SBIN file into a dataset named `name`. Fails with a
/// path-prefixed message on bad magic, unsupported version, size mismatch,
/// or out-of-range coordinates (the offending record index is named).
/// Non-seekable inputs (FIFOs, process substitution) are supported.
Result<LocationDataset> ReadSbin(const std::string& path,
                                 const std::string& name);

/// Parses SBIN `content` already in memory (same semantics as ReadSbin).
/// `source` names the input in error messages.
Result<LocationDataset> ParseSbin(std::string_view content,
                                  const std::string& name,
                                  const std::string& source = "sbin");

}  // namespace slim

#endif  // SLIM_DATA_SBIN_H_
