// The record triple {u, l, t} of the paper (Sec. 2.1).
#ifndef SLIM_DATA_RECORD_H_
#define SLIM_DATA_RECORD_H_

#include <cstdint>

#include "geo/latlng.h"

namespace slim {

/// Identifier of an entity within one dataset. Ids are dataset-local and
/// anonymised — the same real-world entity carries unrelated ids in the two
/// datasets being linked (that is the whole problem).
using EntityId = int64_t;

/// One spatio-temporal usage record: entity `entity` was observed at
/// `location` at epoch-second `timestamp`.
struct Record {
  EntityId entity = 0;
  LatLng location;
  int64_t timestamp = 0;

  bool operator==(const Record&) const = default;
};

}  // namespace slim

#endif  // SLIM_DATA_RECORD_H_
