// Synthetic stand-in for the paper's Cab dataset (SF taxi traces; see
// DESIGN.md §1 for the substitution argument).
//
// The generator simulates a taxi fleet in the San Francisco bounding box
// with a random-waypoint mobility model biased toward a small set of
// popularity-skewed hotspots (downtown, airport, ...). Taxis alternate
// between driving legs at street speeds and short dwells; their position is
// recorded at a fixed GPS sampling cadence with measurement noise. The
// result matches the statistical shape SLIM's evaluation depends on: few
// entities, dense traces (~10^4 records each), bounded area, strong spatial
// skew, physically consistent speeds (which is what makes alibi detection
// meaningful).
#ifndef SLIM_DATA_CAB_GENERATOR_H_
#define SLIM_DATA_CAB_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace slim {

/// Configuration for GenerateCabDataset(). Defaults give a scaled-down
/// fleet suitable for tests; paper scale is num_taxis=530, duration_days=24,
/// record_interval_seconds~=100 (11M records total).
struct CabGeneratorOptions {
  int num_taxis = 100;
  double duration_days = 6.0;
  /// Mean seconds between consecutive GPS fixes of one taxi.
  double record_interval_seconds = 120.0;
  /// First record timestamp (epoch seconds). 2008-05-17T00:00Z, matching
  /// the real trace's start date.
  int64_t start_epoch = 1210982400;

  /// Service bounding box (San Francisco Bay Area). Deliberately wider
  /// than one 15-minute runaway distance (30 km) so that cross-entity
  /// same-window observations can exceed it — the precondition for alibi
  /// pairs, which the real trace has (airport / south-bay runs).
  double lat_lo = 37.20, lat_hi = 37.95;
  double lng_lo = -122.55, lng_hi = -121.95;

  /// Duty cycling: taxis alternate on-duty stretches (producing records)
  /// with off-duty rests (parked, silent), like the real fleet. Durations
  /// are exponential with these means; set rest to 0 for an always-on
  /// fleet. Off-duty gaps keep coarse-level time-location bins from being
  /// shared by the entire fleet (which would zero out every IDF).
  double duty_hours_mean = 10.0;
  double rest_hours_mean = 8.0;

  /// Number of hotspots; destination popularity is Zipf(hotspot_skew).
  int num_hotspots = 12;
  double hotspot_skew = 1.0;
  /// Fraction of legs that target a hotspot (rest: uniform point in box).
  double hotspot_probability = 0.7;
  /// Gaussian jitter around a hotspot center, meters.
  double hotspot_sigma_meters = 800.0;

  /// Driving speed range, km/h (drawn uniformly per leg).
  double min_speed_kmh = 15.0;
  double max_speed_kmh = 60.0;
  /// Mean dwell at a destination, seconds (exponential).
  double dwell_mean_seconds = 300.0;

  /// GPS noise standard deviation, meters.
  double gps_noise_meters = 20.0;

  uint64_t seed = 42;
};

/// Generates the master taxi dataset (entity ids 0..num_taxis-1); feed it to
/// SampleLinkedPair() to derive the two sides of a linkage experiment.
LocationDataset GenerateCabDataset(const CabGeneratorOptions& options);

}  // namespace slim

#endif  // SLIM_DATA_CAB_GENERATOR_H_
