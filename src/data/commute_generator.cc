#include "data/commute_generator.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

namespace slim {
namespace {

struct WorkCenter {
  LatLng center;
  double weight;
  std::vector<LatLng> lunch_venues;
};

LatLng UniformInBox(const CommuteGeneratorOptions& opt, Rng* rng) {
  return LatLng{rng->NextDouble(opt.lat_lo, opt.lat_hi),
                rng->NextDouble(opt.lng_lo, opt.lng_hi)};
}

LatLng ClampToBox(const CommuteGeneratorOptions& opt, const LatLng& p) {
  return LatLng{std::clamp(p.lat_deg, opt.lat_lo, opt.lat_hi),
                std::clamp(p.lng_deg, opt.lng_lo, opt.lng_hi)};
}

// Linear interpolation in lat/lng is accurate enough inside a metro box.
LatLng Interpolate(const LatLng& a, const LatLng& b, double f) {
  return LatLng{a.lat_deg + (b.lat_deg - a.lat_deg) * f,
                a.lng_deg + (b.lng_deg - a.lng_deg) * f};
}

LatLng JitterAround(const LatLng& center, double sigma_m,
                    const CommuteGeneratorOptions& opt, Rng* rng) {
  const double bearing = rng->NextDouble(0.0, 360.0);
  const double dist = std::abs(rng->NextGaussian()) * sigma_m;
  return ClampToBox(opt, DestinationPoint(center, bearing, dist));
}

size_t PickZipfWeighted(const std::vector<WorkCenter>& centers,
                        double total_weight, Rng* rng) {
  double x = rng->NextDouble() * total_weight;
  size_t idx = 0;
  for (; idx + 1 < centers.size(); ++idx) {
    x -= centers[idx].weight;
    if (x <= 0.0) break;
  }
  return idx;
}

}  // namespace

LocationDataset GenerateCommuteDataset(const CommuteGeneratorOptions& opt) {
  SLIM_CHECK_MSG(opt.num_commuters > 0, "num_commuters must be positive");
  SLIM_CHECK_MSG(opt.duration_days > 0, "duration_days must be positive");
  SLIM_CHECK_MSG(opt.num_work_centers > 0,
                 "num_work_centers must be positive");
  SLIM_CHECK_MSG(opt.trip_interval_seconds > 0 &&
                     opt.dwell_interval_seconds > 0,
                 "sampling cadences must be positive");
  SLIM_CHECK_MSG(opt.walk_speed_kmh > 0 && opt.bike_speed_kmh > 0 &&
                     opt.drive_min_speed_kmh > 0 &&
                     opt.drive_max_speed_kmh >= opt.drive_min_speed_kmh,
                 "speed configuration invalid");

  Rng master_rng(opt.seed);

  // Shared geography: employment centers (Zipf popularity, each with a
  // small shared lunch-venue pool) and weekend POIs.
  std::vector<WorkCenter> centers;
  centers.reserve(static_cast<size_t>(opt.num_work_centers));
  for (int c = 0; c < opt.num_work_centers; ++c) {
    WorkCenter wc;
    wc.center = UniformInBox(opt, &master_rng);
    wc.weight =
        1.0 / std::pow(static_cast<double>(c + 1), opt.work_center_skew);
    wc.lunch_venues.reserve(
        static_cast<size_t>(std::max(opt.lunch_venues_per_center, 1)));
    for (int v = 0; v < std::max(opt.lunch_venues_per_center, 1); ++v) {
      wc.lunch_venues.push_back(JitterAround(
          wc.center, opt.lunch_radius_meters, opt, &master_rng));
    }
    centers.push_back(std::move(wc));
  }
  double total_weight = 0.0;
  for (const auto& wc : centers) total_weight += wc.weight;

  std::vector<LatLng> pois;
  pois.reserve(static_cast<size_t>(std::max(opt.num_poi, 1)));
  for (int p = 0; p < std::max(opt.num_poi, 1); ++p) {
    pois.push_back(UniformInBox(opt, &master_rng));
  }

  const double duration_s = opt.duration_days * 86400.0;
  const int num_days =
      static_cast<int>(std::ceil(opt.duration_days - 1e-9));
  LocationDataset out("commute");
  // Rough per-agent-day record budget: two commute legs plus dwell pings.
  out.Reserve(static_cast<size_t>(static_cast<double>(opt.num_commuters) *
                                  opt.duration_days *
                                  (86400.0 / opt.dwell_interval_seconds + 50)));

  for (int agent = 0; agent < opt.num_commuters; ++agent) {
    Rng rng = master_rng.Fork(static_cast<uint64_t>(agent));

    const LatLng home = UniformInBox(opt, &rng);
    const size_t center_idx = PickZipfWeighted(centers, total_weight, &rng);
    const WorkCenter& wc = centers[center_idx];
    const LatLng work =
        JitterAround(wc.center, opt.work_center_sigma_meters, opt, &rng);

    // Modal choice, constrained by the commute distance.
    const double commute_m = HaversineMeters(home, work);
    double commute_speed_kmh;
    if (commute_m <= opt.max_walk_commute_km * 1000.0 &&
        rng.NextBernoulli(opt.walk_probability)) {
      commute_speed_kmh = opt.walk_speed_kmh;
    } else if (commute_m <= opt.max_bike_commute_km * 1000.0 &&
               rng.NextBernoulli(opt.bike_probability)) {
      commute_speed_kmh = opt.bike_speed_kmh;
    } else {
      commute_speed_kmh =
          rng.NextDouble(opt.drive_min_speed_kmh, opt.drive_max_speed_kmh);
    }
    const double drive_speed_kmh =
        rng.NextDouble(opt.drive_min_speed_kmh, opt.drive_max_speed_kmh);

    // The agent's personal schedule offset.
    const double agent_depart_offset_s =
        rng.NextGaussian() * opt.depart_agent_sigma_minutes * 60.0;

    auto emit = [&](const LatLng& p, double t) {
      if (t < 0.0 || t >= duration_s) return;
      LatLng noisy = p;
      if (opt.gps_noise_meters > 0.0) {
        noisy = DestinationPoint(
            p, rng.NextDouble(0.0, 360.0),
            std::abs(rng.NextGaussian()) * opt.gps_noise_meters);
      }
      out.Add(static_cast<EntityId>(agent), ClampToBox(opt, noisy),
              opt.start_epoch + static_cast<int64_t>(t));
    };

    // Travels from `from` to `to` starting at `t`, emitting samples at the
    // trip cadence; returns the arrival time.
    auto travel = [&](const LatLng& from, const LatLng& to, double t,
                      double speed_kmh) -> double {
      const double leg_time =
          HaversineMeters(from, to) / (speed_kmh / 3.6);
      double s = t + opt.trip_interval_seconds * rng.NextDouble(0.7, 1.3);
      while (s < t + leg_time) {
        emit(Interpolate(from, to, (s - t) / leg_time), s);
        s += opt.trip_interval_seconds * rng.NextDouble(0.7, 1.3);
      }
      return t + leg_time;
    };

    // Stays at `p` from `t_start` to `t_end`, emitting sparse pings.
    auto dwell = [&](const LatLng& p, double t_start, double t_end) {
      double s =
          t_start + opt.dwell_interval_seconds * rng.NextDouble(0.3, 1.3);
      while (s < t_end) {
        emit(p, s);
        s += opt.dwell_interval_seconds * rng.NextDouble(0.7, 1.3);
      }
    };

    // Time at which the agent is back home and free; carried across days
    // so a trip running past midnight can never overlap the next day's
    // home pings (positions stay physically continuous).
    double t = 0.0;
    for (int day = 0; day < num_days; ++day) {
      const double day_start = static_cast<double>(day) * 86400.0;
      const double day_end = std::min(day_start + 86400.0, duration_s);
      const bool weekday = (day % 7) < 5;

      if (weekday) {
        const double depart = std::max(
            std::clamp(
                day_start + opt.depart_mean_hour * 3600.0 +
                    agent_depart_offset_s +
                    rng.NextGaussian() * opt.depart_day_sigma_minutes * 60.0,
                day_start + 4.0 * 3600.0, day_start + 12.0 * 3600.0),
            t);
        dwell(home, t, depart);
        t = travel(home, work, depart, commute_speed_kmh);
        const double work_hours = std::clamp(
            opt.work_hours_mean + rng.NextGaussian() * opt.work_hours_sigma,
            4.0, 12.0);
        const double leave = t + work_hours * 3600.0;
        if (rng.NextBernoulli(opt.lunch_probability) &&
            leave - t > 5.0 * 3600.0) {
          // Walk to a shared lunch venue of this center ~4h into the day,
          // eat for half an hour, walk back.
          const double lunch_depart = t + 4.0 * 3600.0;
          dwell(work, t, lunch_depart);
          const LatLng venue = wc.lunch_venues[rng.NextZipf(
              wc.lunch_venues.size(), opt.poi_skew)];
          double lt =
              travel(work, venue, lunch_depart, opt.walk_speed_kmh);
          const double lunch_end = lt + 1800.0;
          dwell(venue, lt, lunch_end);
          t = travel(venue, work, lunch_end, opt.walk_speed_kmh);
          dwell(work, t, leave);
        } else {
          dwell(work, t, leave);
        }
        // A long lunch walk can overrun `leave`; never depart mid-trip.
        t = travel(work, home, std::max(leave, t), commute_speed_kmh);
        dwell(home, t, day_end);
        t = std::max(t, day_end);
      } else {
        // Weekend: excursions to shared POIs, otherwise at home.
        const uint64_t n_trips = rng.NextPoisson(opt.weekend_trips_mean);
        std::vector<double> starts;
        starts.reserve(n_trips);
        for (uint64_t k = 0; k < n_trips; ++k) {
          starts.push_back(day_start +
                           rng.NextDouble(9.0 * 3600.0, 19.0 * 3600.0));
        }
        std::sort(starts.begin(), starts.end());
        for (double s : starts) {
          s = std::max(s, t);  // previous excursion may still be running
          if (s >= day_end) break;
          dwell(home, t, s);
          const LatLng poi =
              pois[rng.NextZipf(pois.size(), opt.poi_skew)];
          t = travel(home, poi, s, drive_speed_kmh);
          const double visit_end =
              t + rng.NextDouble(1.0 * 3600.0, 3.0 * 3600.0);
          dwell(poi, t, visit_end);
          t = travel(poi, home, visit_end, drive_speed_kmh);
        }
        dwell(home, t, day_end);
        t = std::max(t, day_end);
      }
    }
  }
  out.Finalize();
  return out;
}

}  // namespace slim
