// Format-independent dataset ingest/egress: one entry point that speaks
// every on-disk dataset format the library knows (CSV and SBIN today),
// with auto-detection so callers never have to care which one a file is.
//
// Readers share one validation contract, applied to the *raw* values in
// the file before any normalization: entity/timestamp must parse, both
// coordinates must be finite, |lat| <= 90 and |lng| <= 180. Records are
// stored normalized (lng wrapped into [-180, 180)).
#ifndef SLIM_DATA_DATASET_IO_H_
#define SLIM_DATA_DATASET_IO_H_

#include <cmath>
#include <string>
#include <string_view>

#include "common/status.h"
#include "data/dataset.h"

namespace slim {

/// On-disk dataset formats. kAuto means: sniff the file content when
/// reading (SBIN magic vs text), pick by extension when writing (".sbin"
/// -> SBIN, anything else -> CSV).
enum class DatasetFormat { kAuto = 0, kCsv, kSbin };

/// "auto", "csv", or "sbin".
const char* DatasetFormatName(DatasetFormat format);

/// Parses a --format flag value ("auto" | "csv" | "sbin").
Result<DatasetFormat> ParseDatasetFormat(std::string_view s);

/// The shared raw-coordinate validation every reader applies before
/// normalizing: finite, |lat| <= 90, |lng| <= 180 (180 itself is accepted
/// and wraps to -180).
inline bool RawCoordinateInRange(double lat_deg, double lng_deg) {
  return std::isfinite(lat_deg) && std::isfinite(lng_deg) &&
         std::abs(lat_deg) <= 90.0 && std::abs(lng_deg) <= 180.0;
}

struct DatasetIoOptions {
  DatasetFormat format = DatasetFormat::kAuto;
  /// Worker threads for formats with a parallel parser (CSV). <= 0 means
  /// DefaultThreadCount(). Results are bit-identical at every setting.
  int io_threads = 0;
};

/// Determines the on-disk format of `path` from its first bytes (the SBIN
/// magic vs anything else = CSV). Fails only on I/O errors. Consumes the
/// file's first bytes, so only use it on regular re-openable files;
/// ReadDataset sniffs in memory instead and has no such restriction.
Result<DatasetFormat> SniffDatasetFormat(const std::string& path);

/// Reads a dataset named `name` from `path` in `options.format`
/// (auto-detected by default). Works on non-seekable inputs (FIFOs,
/// process substitution) in every format mode: auto-detection reads the
/// file once and sniffs the bytes in memory.
Result<LocationDataset> ReadDataset(const std::string& path,
                                    const std::string& name,
                                    const DatasetIoOptions& options = {});

/// Writes `dataset` to `path` in `format` (kAuto: by extension).
/// Overwrites any existing file.
Status WriteDataset(const LocationDataset& dataset, const std::string& path,
                    DatasetFormat format = DatasetFormat::kAuto);

}  // namespace slim

#endif  // SLIM_DATA_DATASET_IO_H_
