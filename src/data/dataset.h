// In-memory location dataset (paper Sec. 2.1): a named collection of
// records, indexed by entity for contiguous per-entity access.
#ifndef SLIM_DATA_DATASET_H_
#define SLIM_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "data/record.h"

namespace slim {

/// A location dataset. Mutation happens through Add(); before any read
/// accessor is used the dataset must be finalized (records are sorted by
/// (entity, timestamp) and the entity index is built). Finalize() is
/// idempotent and called implicitly by the factory helpers.
class LocationDataset {
 public:
  LocationDataset() = default;
  explicit LocationDataset(std::string name) : name_(std::move(name)) {}

  /// Builds a finalized dataset from a record vector.
  static LocationDataset FromRecords(std::string name,
                                     std::vector<Record> records);

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Appends a record; invalidates finalization.
  void Add(const Record& r);
  void Add(EntityId entity, const LatLng& location, int64_t timestamp);
  void Reserve(size_t n) { records_.reserve(n); }

  /// Sorts records and rebuilds the entity index. Safe to call repeatedly.
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t num_records() const { return records_.size(); }
  size_t num_entities() const;

  /// All records, sorted by (entity, timestamp). Requires finalized().
  const std::vector<Record>& records() const;

  /// Sorted list of distinct entity ids. Requires finalized().
  const std::vector<EntityId>& entity_ids() const;

  /// True if the dataset contains at least one record of `entity`.
  bool ContainsEntity(EntityId entity) const;

  /// The records of one entity, sorted by timestamp; empty span when the
  /// entity is absent. Requires finalized().
  std::span<const Record> RecordsOf(EntityId entity) const;

  /// [min, max] record timestamp. Requires finalized() and non-empty.
  std::pair<int64_t, int64_t> TimeRange() const;

  /// num_records / num_entities (0 when empty).
  double AvgRecordsPerEntity() const;

  /// Removes all entities having fewer than `min_records` records (the
  /// paper drops entities with <= 5 records, i.e. min_records = 6). Returns
  /// the number of entities removed. Keeps the dataset finalized.
  size_t FilterMinRecords(size_t min_records);

 private:
  void RequireFinalized() const;

  std::string name_;
  std::vector<Record> records_;
  std::vector<EntityId> entity_ids_;
  // entity -> [first, last) positions in records_.
  std::unordered_map<EntityId, std::pair<size_t, size_t>> index_;
  bool finalized_ = false;
};

}  // namespace slim

#endif  // SLIM_DATA_DATASET_H_
