// Agent-based commute workload — the third synthetic generator, structurally
// unlike the cab fleet (few dense entities) and the check-in crowd (many
// sparse entities): a metro-area population with per-entity home/work
// anchors and a weekly schedule. The model follows the SimMobility /
// EPR-style agent simulations referenced in PAPERS.md.
//
// Each commuter owns a fixed home location (unique, suburban-uniform) and a
// fixed workplace drawn from a small set of popularity-skewed employment
// centers (shared across many commuters — that sharing is what gives the
// similarity score's IDF term its contrast, exactly like check-in venues).
// On weekdays the agent pings sparsely at home overnight, commutes to work
// at a modal speed (walk / bike / drive, chosen per agent from the commute
// distance), dwells at work with an optional lunch excursion to a shared
// per-center lunch venue, and commutes home in the evening. On weekends the
// agent takes zero or more excursions to popularity-skewed points of
// interest. Movement is continuous (every location change is a traveled
// leg at its modal speed), so alibi detection stays meaningful; positions
// are sampled densely while moving and sparsely while dwelling, with GPS
// measurement noise.
#ifndef SLIM_DATA_COMMUTE_GENERATOR_H_
#define SLIM_DATA_COMMUTE_GENERATOR_H_

#include <cstdint>

#include "data/dataset.h"

namespace slim {

/// Configuration for GenerateCommuteDataset(). Defaults give a
/// metro-population suitable for tests and the quick robustness sweep;
/// scale num_commuters / duration_days up for bench runs.
struct CommuteGeneratorOptions {
  int num_commuters = 400;
  /// Collection duration; 14 days covers two full weekly cycles.
  double duration_days = 14.0;
  /// First record timestamp (epoch seconds). 2019-03-04T00:00Z is a
  /// Monday, so day k of the simulation has day-of-week k % 7 (0 = Mon).
  int64_t start_epoch = 1551657600;

  /// Metro bounding box (default: Chicago-sized, ~55 x 40 km). Homes are
  /// uniform in the box; a box this wide keeps same-window cross-entity
  /// observations above one alibi-speed reach, like the cab box.
  double lat_lo = 41.60, lat_hi = 42.10;
  double lng_lo = -88.00, lng_hi = -87.50;

  /// Employment centers; workplace popularity is Zipf(work_center_skew).
  int num_work_centers = 8;
  double work_center_skew = 1.0;
  /// Gaussian jitter of a workplace around its center, meters (the
  /// agent's building — fixed per agent).
  double work_center_sigma_meters = 500.0;
  /// Shared lunch venues per employment center (drawn within
  /// lunch_radius_meters of the center; picked Zipf per lunch break).
  int lunch_venues_per_center = 6;
  double lunch_radius_meters = 400.0;

  /// Weekend points of interest shared across the population; excursion
  /// destinations are Zipf(poi_skew).
  int num_poi = 40;
  double poi_skew = 0.8;

  /// Weekday departure: mean hours after midnight, a per-agent offset
  /// (their personal schedule) and a smaller per-day jitter.
  double depart_mean_hour = 8.0;
  double depart_agent_sigma_minutes = 45.0;
  double depart_day_sigma_minutes = 10.0;
  /// Time spent at work, hours (Gaussian, clamped to [4, 12]).
  double work_hours_mean = 8.5;
  double work_hours_sigma = 0.75;
  /// Probability of a lunch excursion on a given workday.
  double lunch_probability = 0.4;

  /// Modal split. An agent walks only if the commute is within
  /// max_walk_commute_km (bikes within max_bike_commute_km); otherwise it
  /// drives. Weekend excursions always travel at driving speed.
  double walk_probability = 0.2;
  double bike_probability = 0.3;
  double max_walk_commute_km = 3.0;
  double max_bike_commute_km = 10.0;
  double walk_speed_kmh = 4.5;
  double bike_speed_kmh = 14.0;
  double drive_min_speed_kmh = 25.0;
  double drive_max_speed_kmh = 55.0;

  /// Mean weekend excursions per weekend day (Poisson); each dwells 1-3 h
  /// at the POI.
  double weekend_trips_mean = 1.2;

  /// Sampling cadence: dense while moving, sparse pings while dwelling
  /// (a phone's motion-triggered duty cycle). Both get +-30% jitter.
  double trip_interval_seconds = 90.0;
  double dwell_interval_seconds = 2400.0;

  /// GPS noise standard deviation, meters.
  double gps_noise_meters = 15.0;

  uint64_t seed = 44;
};

/// Generates the master commute dataset (entity ids 0..num_commuters-1);
/// feed it to SampleLinkedPair() to derive the two sides of a linkage
/// experiment.
LocationDataset GenerateCommuteDataset(const CommuteGeneratorOptions& options);

}  // namespace slim

#endif  // SLIM_DATA_COMMUTE_GENERATOR_H_
