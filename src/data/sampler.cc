#include "data/sampler.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"

namespace slim {
namespace {

// Fisher-Yates shuffle driven by our deterministic Rng.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  for (size_t i = v->size(); i > 1; --i) {
    const size_t j = static_cast<size_t>(rng->NextUint64(i));
    std::swap((*v)[i - 1], (*v)[j]);
  }
}

// Copies the records of `master_entity` into `side`, applying inclusion
// sampling and the per-side perturbations. Returns how many records were
// emitted.
size_t EmitRecords(const LocationDataset& master, EntityId master_entity,
                   EntityId new_id, const PairSampleOptions& opt,
                   LocationDataset* side, Rng* rng) {
  size_t emitted = 0;
  for (const Record& r : master.RecordsOf(master_entity)) {
    if (!rng->NextBernoulli(opt.inclusion_probability)) continue;
    Record out = r;
    out.entity = new_id;
    if (opt.location_noise_meters > 0.0) {
      const double bearing = rng->NextDouble(0.0, 360.0);
      const double dist =
          std::abs(rng->NextGaussian()) * opt.location_noise_meters;
      out.location = DestinationPoint(out.location, bearing, dist);
    }
    if (opt.time_jitter_seconds > 0) {
      out.timestamp +=
          rng->NextInt64(-opt.time_jitter_seconds, opt.time_jitter_seconds);
    }
    side->Add(out);
    ++emitted;
  }
  return emitted;
}

}  // namespace

Result<LinkedPairSample> SampleLinkedPair(const LocationDataset& master,
                                          const PairSampleOptions& options) {
  if (options.intersection_ratio < 0.0 || options.intersection_ratio > 1.0) {
    return Status::InvalidArgument("intersection_ratio must be in [0,1]");
  }
  if (options.inclusion_probability <= 0.0 ||
      options.inclusion_probability > 1.0) {
    return Status::InvalidArgument("inclusion_probability must be in (0,1]");
  }

  std::vector<EntityId> pool = master.entity_ids();
  Rng rng(options.seed);
  Shuffle(&pool, &rng);

  // Choose side size n and common count c = round(rho * n) such that
  // 2n - c <= |pool|.
  size_t n = options.entities_per_side;
  const double rho = options.intersection_ratio;
  if (n == 0) {
    // Largest n with 2n - round(rho*n) <= |pool|.
    n = pool.size();
    while (n > 0) {
      const size_t c =
          static_cast<size_t>(std::llround(rho * static_cast<double>(n)));
      if (2 * n - c <= pool.size()) break;
      --n;
    }
  }
  const size_t c =
      static_cast<size_t>(std::llround(rho * static_cast<double>(n)));
  if (n == 0 || 2 * n - c > pool.size()) {
    return Status::InvalidArgument(StrFormat(
        "master has %zu entities; cannot draw two sides of %zu with %zu "
        "common",
        pool.size(), n, c));
  }

  // pool[0, c)           -> common entities
  // pool[c, n)           -> exclusive to A
  // pool[n, 2n - c)      -> exclusive to B
  LinkedPairSample out;
  out.a.set_name(master.name() + "/A");
  out.b.set_name(master.name() + "/B");

  // Fresh anonymised ids, assigned in shuffled orders that differ per side
  // so ids carry no alignment signal.
  std::vector<size_t> order_a(n), order_b(n);
  for (size_t i = 0; i < n; ++i) order_a[i] = i;
  Shuffle(&order_a, &rng);
  for (size_t i = 0; i < n; ++i) order_b[i] = i;
  Shuffle(&order_b, &rng);

  // Per-master-entity ids on each side; common entities occupy the first c
  // slots of each side's source list.
  std::vector<EntityId> side_a_master(pool.begin(),
                                      pool.begin() + static_cast<long>(n));
  std::vector<EntityId> side_b_master(pool.begin(),
                                      pool.begin() + static_cast<long>(c));
  side_b_master.insert(side_b_master.end(),
                       pool.begin() + static_cast<long>(n),
                       pool.begin() + static_cast<long>(2 * n - c));

  std::unordered_map<EntityId, EntityId> a_ids;  // master -> new id in A
  std::unordered_map<EntityId, EntityId> b_ids;  // master -> new id in B
  for (size_t i = 0; i < n; ++i) {
    a_ids[side_a_master[i]] = static_cast<EntityId>(order_a[i]);
    b_ids[side_b_master[i]] = static_cast<EntityId>(order_b[i]);
  }

  // Each (side, master entity) gets its own forked record stream, so the
  // emitted bytes are independent of emission order entirely. The previous
  // code consumed one shared RNG while iterating a_ids/b_ids — an
  // unordered_map — which made the generated datasets depend on the
  // standard library's hash-table layout (SLIM-DET-001): the same seed
  // produced different records on different toolchains. Streams 2m+1 /
  // 2m+2 for master id m never collide across the two sides.
  for (size_t i = 0; i < n; ++i) {
    const EntityId m = side_a_master[i];
    Rng rec_rng = rng.Fork(static_cast<uint64_t>(m) * 2 + 1);
    EmitRecords(master, m, a_ids.at(m), options, &out.a, &rec_rng);
  }
  for (size_t i = 0; i < n; ++i) {
    const EntityId m = side_b_master[i];
    Rng rec_rng = rng.Fork(static_cast<uint64_t>(m) * 2 + 2);
    EmitRecords(master, m, b_ids.at(m), options, &out.b, &rec_rng);
  }
  out.a.Finalize();
  out.b.Finalize();
  if (options.min_records > 0) {
    out.a.FilterMinRecords(options.min_records);
    out.b.FilterMinRecords(options.min_records);
  }

  // Ground truth: common master entities that survived filtering on BOTH
  // sides.
  for (size_t i = 0; i < c; ++i) {
    const EntityId m = pool[i];
    const EntityId ida = a_ids.at(m);
    const EntityId idb = b_ids.at(m);
    if (out.a.ContainsEntity(ida) && out.b.ContainsEntity(idb)) {
      out.truth.a_to_b[ida] = idb;
    }
  }
  return out;
}

}  // namespace slim
