// slim_sweep: robustness sweeps over parameterized data degradations.
//
// Generates (or loads) a linked dataset pair, then re-runs the full SLIM
// pipeline while one degradation axis at a time tightens — GPS noise,
// temporal downsampling, asymmetric entity density, record truncation —
// and records the precision/recall/F1 curve per axis.
//
//   # default: commute + sm workloads, all four axes, full grids
//   slim_sweep --out BENCH_sweep.json --report sweep.md
//
//   # CI quick gate: coarse grids, fail unless the commute baseline
//   # (zero degradation) reaches F1 0.95
//   slim_sweep --quick --gate_f1 0.95 --gate_workload commute
//              --out BENCH_sweep_quick.json
//
//   # sweep a pre-generated experiment instead of a synthetic workload
//   slim_sweep --a exp_a.csv --b exp_b.csv --truth exp_truth.csv --out s.json
#include <cstdio>
#include <string>
#include <vector>

#include "common/build_info.h"
#include "flags.h"
#include "slim.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: slim_sweep --out sweep.json [options]\n"
      "       slim_sweep --a A.csv --b B.csv --truth T.csv --out sweep.json\n"
      "options:\n"
      "  --workloads LIST   comma list of commute|sm|cab (default "
      "commute,sm)\n"
      "  --axes LIST        comma list of noise|downsample|density|truncate\n"
      "                     (default: all four)\n"
      "  --quick            coarse grids and smaller workloads (CI gate)\n"
      "  --gate_f1 X        exit 1 unless every gated workload's baseline\n"
      "                     F1 >= X (default 0 = no gate)\n"
      "  --gate_workload W  apply --gate_f1 to workload W only\n"
      "                     (default: every workload swept)\n"
      "  --report PATH      also write the markdown curve tables\n"
      "  --entities N       override the master workload entity count\n"
      "  --days D           override the collection duration\n"
      "  --intersection R   entity intersection ratio (default 0.5)\n"
      "  --inclusion P      record inclusion probability (default 0.5)\n"
      "  --seed S           sweep seed (default 2024)\n"
      "  --candidates KIND  candidate generator: lsh|brute|grid (default "
      "lsh)\n"
      "  --threads N        worker threads (default: SLIM_THREADS env)\n"
      "  --shards K         run every point through the sharded driver\n"
      "  --min_records N    drop entities with fewer records (default 6)\n"
      "  --version          print the build/version string and exit\n");
}

std::vector<std::string> SplitList(const std::string& csv) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

slim::DegradationAxis ParseAxis(const std::string& name) {
  if (name == "noise") return slim::DegradationAxis::kGpsNoise;
  if (name == "downsample") return slim::DegradationAxis::kDownsample;
  if (name == "density") return slim::DegradationAxis::kEntityDrop;
  if (name == "truncate") return slim::DegradationAxis::kTruncate;
  slim::tools::Flags::Fail(
      "unknown axis: " + name +
      " (expected noise|downsample|density|truncate)");
}

// Grid of degradation values per axis. Every grid starts at the identity
// value so each curve embeds its own zero-degradation point.
std::vector<double> AxisGrid(slim::DegradationAxis axis, bool quick) {
  switch (axis) {
    case slim::DegradationAxis::kGpsNoise:
      return quick ? std::vector<double>{0.0, 50.0, 200.0}
                   : std::vector<double>{0.0, 25.0, 50.0, 100.0, 200.0, 400.0};
    case slim::DegradationAxis::kDownsample:
      return quick ? std::vector<double>{1.0, 0.5, 0.25}
                   : std::vector<double>{1.0, 0.75, 0.5, 0.25, 0.1};
    case slim::DegradationAxis::kEntityDrop:
      return quick ? std::vector<double>{1.0, 0.6, 0.3}
                   : std::vector<double>{1.0, 0.8, 0.6, 0.4, 0.2};
    case slim::DegradationAxis::kTruncate:
      return quick ? std::vector<double>{1.0, 0.5, 0.25}
                   : std::vector<double>{1.0, 0.75, 0.5, 0.25};
  }
  return {};
}

slim::LocationDataset GenerateWorkload(const std::string& name,
                                       const slim::tools::Flags& flags,
                                       bool quick, uint64_t seed) {
  if (name == "commute") {
    slim::CommuteGeneratorOptions opt =
        slim::CommuteOptionsForScale(slim::BenchScale::kSmall);
    if (quick) {
      opt.num_commuters = 60;
      opt.duration_days = 5.0;
    }
    opt.num_commuters =
        static_cast<int>(flags.GetInt("entities", opt.num_commuters));
    opt.duration_days = flags.GetDouble("days", opt.duration_days);
    opt.seed = seed;
    return slim::GenerateCommuteDataset(opt);
  }
  if (name == "sm") {
    slim::CheckinGeneratorOptions opt =
        slim::CheckinOptionsForScale(slim::BenchScale::kSmall);
    if (quick) opt.num_users = 600;
    opt.num_users = static_cast<int>(flags.GetInt("entities", opt.num_users));
    opt.seed = seed;
    return slim::GenerateCheckinDataset(opt);
  }
  if (name == "cab") {
    slim::CabGeneratorOptions opt =
        slim::CabOptionsForScale(slim::BenchScale::kSmall);
    if (quick) {
      opt.num_taxis = 40;
      opt.duration_days = 2.0;
    }
    opt.num_taxis = static_cast<int>(flags.GetInt("entities", opt.num_taxis));
    opt.duration_days = flags.GetDouble("days", opt.duration_days);
    opt.seed = seed;
    return slim::GenerateCabDataset(opt);
  }
  slim::tools::Flags::Fail("unknown workload: " + name +
                           " (expected commute|sm|cab)");
}

slim::SweepWorkloadResult SweepPair(
    const std::string& name, const slim::LocationDataset& a,
    const slim::LocationDataset& b, const slim::GroundTruth& truth,
    const std::vector<slim::DegradationAxis>& axes, bool quick,
    const slim::SweepOptions& options) {
  slim::SweepWorkloadResult wl;
  wl.workload = name;
  wl.truth_pairs = truth.size();
  // Identity point: gps noise 0 leaves every knob at its no-op value.
  wl.baseline = slim::RunSweepPoint(a, b, truth,
                                    slim::DegradationAxis::kGpsNoise, 0.0,
                                    options);
  std::fprintf(stderr,
               "[%s] baseline: precision %.4f recall %.4f f1 %.4f "
               "(%zu links / %zu truth pairs, %.2fs)\n",
               name.c_str(), wl.baseline.quality.precision,
               wl.baseline.quality.recall, wl.baseline.quality.f1,
               wl.baseline.links, wl.truth_pairs, wl.baseline.seconds);
  for (const slim::DegradationAxis axis : axes) {
    const std::vector<double> grid = AxisGrid(axis, quick);
    slim::SweepCurve curve =
        slim::RunDegradationSweep(a, b, truth, axis, grid, options);
    for (const slim::SweepPoint& p : curve.points) {
      std::fprintf(stderr, "[%s] %s=%g: f1 %.4f (%.2fs)\n", name.c_str(),
                   slim::DegradationAxisName(axis), p.value, p.quality.f1,
                   p.seconds);
    }
    wl.curves.push_back(std::move(curve));
  }
  return wl;
}

}  // namespace

int main(int argc, char** argv) {
  slim::tools::Flags flags(argc, argv);
  if (flags.GetBool("version", false)) {
    std::printf("%s\n", slim::BuildVersionString());
    return 0;
  }
  const std::string out_path = flags.GetString("out", "");
  if (out_path.empty()) {
    Usage();
    return 2;
  }
  const bool quick = flags.GetBool("quick", false);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 2024));

  std::vector<slim::DegradationAxis> axes;
  const std::string axes_flag =
      flags.GetString("axes", "noise,downsample,density,truncate");
  for (const std::string& name : SplitList(axes_flag)) {
    axes.push_back(ParseAxis(name));
  }
  if (axes.empty()) slim::tools::Flags::Fail("--axes selects no axis");

  slim::SweepOptions options;
  options.seed = seed;
  options.min_records = static_cast<size_t>(flags.GetInt("min_records", 6));
  auto candidates =
      slim::ParseCandidateKind(flags.GetString("candidates", "lsh"));
  if (!candidates.ok()) {
    slim::tools::Flags::Fail(candidates.status().ToString());
  }
  options.config.candidates = *candidates;
  options.config.threads = static_cast<int>(flags.GetInt("threads", 0));
  options.config.shards = static_cast<int>(flags.GetInt("shards", 0));

  std::vector<slim::SweepWorkloadResult> results;
  const std::string path_a = flags.GetString("a", "");
  if (!path_a.empty()) {
    // Loaded-pair mode: sweep a pre-generated experiment.
    const std::string path_b = flags.GetString("b", "");
    const std::string path_truth = flags.GetString("truth", "");
    if (path_b.empty() || path_truth.empty()) {
      Usage();
      return 2;
    }
    auto a = slim::ReadDataset(path_a, "A");
    if (!a.ok()) slim::tools::Flags::Fail(a.status().ToString());
    auto b = slim::ReadDataset(path_b, "B");
    if (!b.ok()) slim::tools::Flags::Fail(b.status().ToString());
    auto truth_links = slim::ReadLinksCsv(path_truth);
    if (!truth_links.ok()) {
      slim::tools::Flags::Fail(truth_links.status().ToString());
    }
    slim::GroundTruth truth;
    for (const slim::LinkedEntityPair& pair : *truth_links) {
      truth.a_to_b[pair.u] = pair.v;
    }
    results.push_back(
        SweepPair("custom", *a, *b, truth, axes, quick, options));
  } else {
    for (const std::string& name :
         SplitList(flags.GetString("workloads", "commute,sm"))) {
      const slim::LocationDataset master =
          GenerateWorkload(name, flags, quick, seed);
      slim::PairSampleOptions sample_options;
      sample_options.intersection_ratio =
          flags.GetDouble("intersection", 0.5);
      sample_options.inclusion_probability =
          flags.GetDouble("inclusion", 0.5);
      sample_options.seed = seed + 1;
      auto sample = slim::SampleLinkedPair(master, sample_options);
      if (!sample.ok()) slim::tools::Flags::Fail(sample.status().ToString());
      results.push_back(SweepPair(name, sample->a, sample->b, sample->truth,
                                  axes, quick, options));
    }
  }
  if (results.empty()) {
    slim::tools::Flags::Fail("--workloads selects no workload");
  }

  const slim::Status st =
      slim::WriteSweepJson(results, quick, seed, out_path);
  if (!st.ok()) slim::tools::Flags::Fail(st.ToString());
  std::fprintf(stderr, "wrote %s\n", out_path.c_str());

  const std::string report_path = flags.GetString("report", "");
  if (!report_path.empty()) {
    const std::string md = slim::RenderSweepReport(results);
    std::FILE* f = std::fopen(report_path.c_str(), "w");
    if (f == nullptr) slim::tools::Flags::Fail("cannot write " + report_path);
    std::fwrite(md.data(), 1, md.size(), f);
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", report_path.c_str());
  }

  // Quality gate: the zero-degradation baseline must clear --gate_f1.
  const double gate_f1 = flags.GetDouble("gate_f1", 0.0);
  if (gate_f1 > 0.0) {
    const std::string gate_workload = flags.GetString("gate_workload", "");
    bool gate_seen = false;
    bool gate_ok = true;
    for (const slim::SweepWorkloadResult& wl : results) {
      if (!gate_workload.empty() && wl.workload != gate_workload) continue;
      gate_seen = true;
      if (wl.baseline.quality.f1 < gate_f1) {
        std::fprintf(stderr, "GATE FAIL: %s baseline F1 %.4f < %.4f\n",
                     wl.workload.c_str(), wl.baseline.quality.f1, gate_f1);
        gate_ok = false;
      } else {
        std::fprintf(stderr, "gate ok: %s baseline F1 %.4f >= %.4f\n",
                     wl.workload.c_str(), wl.baseline.quality.f1, gate_f1);
      }
    }
    if (!gate_seen) {
      slim::tools::Flags::Fail("--gate_workload " + gate_workload +
                               " was not swept");
    }
    if (!gate_ok) return 1;
  }
  return 0;
}
