// slim_link: link two mobility CSV datasets from the command line.
//
//   slim_link --a service_a.csv --b service_b.sbin --out links.csv
//             [--format auto|csv|sbin] [--io_threads N]
//             [--spatial_level N | --auto_tune]
//             [--window_minutes M] [--b_param X] [--max_speed_kmh S]
//             [--candidates lsh|brute|grid] [--no_lsh] [--grid_max_bin N]
//             [--grid_min_overlap N] [--kernel auto|scalar|sse42|avx2]
//             [--lsh_level N] [--lsh_step N] [--lsh_threshold T]
//             [--lsh_buckets N] [--threshold gmm|otsu|two_means|none]
//             [--matcher greedy|hungarian] [--threads N] [--region_radius_m R]
//             [--shards K | --memory_budget_mb M] [--left_shards L]
//             [--sctx PATH] [--no_graph] [--spill_run_mb M]
//             [--bench_json PATH]
//
// Inputs: CSV (entity_id,lat,lng,timestamp epoch seconds, header optional)
// or SBIN (docs/ARCHITECTURE.md#data); --format=auto sniffs each file.
// Output CSV: entity_a,entity_b,score.
#include <cstdio>

#include "common/build_info.h"
#include "flags.h"
#include "slim.h"

namespace {

// Escapes a string for use inside a JSON string literal (quotes,
// backslashes, control characters — enough for arbitrary file paths).
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      out += slim::StrFormat("\\u%04x", c);
    } else {
      out += c;
    }
  }
  return out;
}

void Usage() {
  std::fprintf(
      stderr,
      "usage: slim_link --a A.csv --b B.csv --out links.csv [options]\n"
      "options:\n"
      "  --format KIND         input dataset format: auto|csv|sbin "
      "(default auto)\n"
      "  --io_threads N        worker threads for parallel CSV parsing\n"
      "                        (default: all; results identical at any N)\n"
      "  --spatial_level N     history leaf cell level (default 12)\n"
      "  --auto_tune           pick the spatial level automatically "
      "(Sec. 3.3)\n"
      "  --window_minutes M    leaf window width (default 15)\n"
      "  --b_param X           length-normalisation strength in [0,1] "
      "(default 0.5)\n"
      "  --max_speed_kmh S     alibi speed limit (default 120)\n"
      "  --region_radius_m R   treat records as R-meter regions (default 0)\n"
      "  --candidates KIND     candidate generator: lsh|brute|grid "
      "(default lsh)\n"
      "  --no_lsh              alias for --candidates brute\n"
      "  --grid_max_bin N      grid blocking: skip bins shared by > N right\n"
      "                        entities (default 0 = no cap)\n"
      "  --grid_min_overlap N  grid blocking: drop pairs with quantized\n"
      "                        co-visit mass < N (default 0 = keep all)\n"
      "  --kernel KIND         scoring kernel: auto|scalar|sse42|avx2\n"
      "                        (default auto; links are bit-identical on\n"
      "                        every kernel, SLIM_KERNEL env sets the auto\n"
      "                        choice)\n"
      "  --lsh_level N         signature spatial level (default 10)\n"
      "  --lsh_step N          query step in leaf windows (default 8)\n"
      "  --lsh_threshold T     candidate similarity threshold (default 0.5)\n"
      "  --lsh_buckets N       buckets per band (default 4096)\n"
      "  --threshold KIND      gmm|otsu|two_means|none (default gmm)\n"
      "  --matcher KIND        greedy|hungarian (default greedy)\n"
      "  --min_records N       drop entities with fewer records (default 6)\n"
      "  --threads N           worker threads for every pipeline stage\n"
      "                        (default: SLIM_THREADS env, else hardware)\n"
      "  --shards K            run the sharded driver with K contiguous\n"
      "                        right-side shards; links are bit-identical\n"
      "                        to the monolithic path at every K\n"
      "  --memory_budget_mb M  run the sharded driver with as many shards\n"
      "                        as an M-MB per-block budget demands\n"
      "                        (ignored when --shards is given)\n"
      "  --left_shards L       sharded driver: also split the LEFT side\n"
      "                        into L contiguous shards (L x K blocks);\n"
      "                        links are bit-identical at every (L, K)\n"
      "  --sctx PATH           sharded driver: serialize the built context\n"
      "                        to PATH on first use, then memory-map it\n"
      "                        read-only (SCTX; core/sctx.h). An existing\n"
      "                        file is mapped directly without re-interning\n"
      "                        the datasets\n"
      "  --no_graph            sharded driver: skip materialising the edge\n"
      "                        graph and stream score-ordered edges into\n"
      "                        the greedy matcher (bounded memory; links\n"
      "                        are bit-identical, the bench JSON just\n"
      "                        lacks graph-derived fields)\n"
      "  --spill_run_mb M      sharded driver: external-sort run-buffer\n"
      "                        budget in MB (default 64)\n"
      "  --report PATH         also write a markdown linkage report\n"
      "  --bench_json PATH     also write per-stage wall times, distance-\n"
      "                        cache efficacy, peak RSS, and shard\n"
      "                        provenance as JSON (schema\n"
      "                        slim-link-bench-v5; see docs/BENCHMARKS.md)\n"
      "  --version             print the build/version string and exit\n");
}

}  // namespace

int main(int argc, char** argv) {
  slim::tools::Flags flags(argc, argv);
  if (flags.GetBool("version", false)) {
    std::printf("%s\n", slim::BuildVersionString());
    return 0;
  }
  const std::string path_a = flags.GetString("a", "");
  const std::string path_b = flags.GetString("b", "");
  const std::string path_out = flags.GetString("out", "");
  if (path_a.empty() || path_b.empty() || path_out.empty()) {
    Usage();
    return 2;
  }

  slim::DatasetIoOptions io;
  auto format = slim::ParseDatasetFormat(flags.GetString("format", "auto"));
  if (!format.ok()) slim::tools::Flags::Fail(format.status().ToString());
  io.format = *format;
  io.io_threads = static_cast<int>(flags.GetInt("io_threads", 0));

  auto a = slim::ReadDataset(path_a, "A", io);
  if (!a.ok()) slim::tools::Flags::Fail(a.status().ToString());
  auto b = slim::ReadDataset(path_b, "B", io);
  if (!b.ok()) slim::tools::Flags::Fail(b.status().ToString());

  const size_t min_records =
      static_cast<size_t>(flags.GetInt("min_records", 6));
  if (min_records > 0) {
    a->FilterMinRecords(min_records);
    b->FilterMinRecords(min_records);
  }
  std::fprintf(stderr, "A: %zu entities / %zu records; B: %zu / %zu\n",
               a->num_entities(), a->num_records(), b->num_entities(),
               b->num_records());

  slim::SlimConfig config;
  config.history.window_seconds = flags.GetInt("window_minutes", 15) * 60;
  config.history.spatial_level =
      static_cast<int>(flags.GetInt("spatial_level", 12));
  config.history.region_radius_meters = flags.GetDouble("region_radius_m", 0);
  config.similarity.b = flags.GetDouble("b_param", 0.5);
  config.similarity.proximity.max_speed_mps =
      flags.GetDouble("max_speed_kmh", 120.0) / 3.6;
  const std::string candidates_flag = flags.GetString("candidates", "");
  auto candidates = slim::ParseCandidateKind(
      candidates_flag.empty() ? "lsh" : candidates_flag);
  if (!candidates.ok()) {
    slim::tools::Flags::Fail(candidates.status().ToString());
  }
  config.candidates = *candidates;
  if (flags.GetBool("no_lsh", false)) {
    // Legacy alias. Refuse a contradictory explicit --candidates rather
    // than silently discarding it.
    if (!candidates_flag.empty() &&
        *candidates != slim::CandidateKind::kBruteForce) {
      slim::tools::Flags::Fail("--no_lsh conflicts with --candidates " +
                               candidates_flag);
    }
    config.candidates = slim::CandidateKind::kBruteForce;
  }
  config.grid.max_bin_entities =
      static_cast<uint32_t>(flags.GetInt("grid_max_bin", 0));
  config.grid.min_overlap_records =
      static_cast<uint32_t>(flags.GetInt("grid_min_overlap", 0));
  const std::string kernel_flag = flags.GetString("kernel", "auto");
  const auto kernel = slim::ParseScoreKernel(kernel_flag);
  if (!kernel.has_value()) {
    slim::tools::Flags::Fail("unknown --kernel: " + kernel_flag +
                             " (expected auto|scalar|sse42|avx2)");
  }
  if (!slim::ScoreKernelSupported(*kernel)) {
    slim::tools::Flags::Fail("--kernel " + kernel_flag +
                             " is not supported by this CPU");
  }
  config.similarity.kernel = *kernel;
  config.lsh.signature_spatial_level =
      static_cast<int>(flags.GetInt("lsh_level", 10));
  config.lsh.temporal_step_windows =
      static_cast<int>(flags.GetInt("lsh_step", 8));
  config.lsh.similarity_threshold = flags.GetDouble("lsh_threshold", 0.5);
  config.lsh.num_buckets =
      static_cast<size_t>(flags.GetInt("lsh_buckets", 4096));
  config.threads = static_cast<int>(flags.GetInt("threads", 0));
  config.shards = static_cast<int>(flags.GetInt("shards", 0));
  config.left_shards = static_cast<int>(flags.GetInt("left_shards", 0));
  const long long budget_mb = flags.GetInt("memory_budget_mb", 0);
  if (budget_mb < 0) {
    slim::tools::Flags::Fail("--memory_budget_mb must be >= 0");
  }
  config.shard_memory_budget_bytes =
      static_cast<uint64_t>(budget_mb) * (uint64_t{1} << 20);
  config.sctx_path = flags.GetString("sctx", "");
  config.keep_graph = !flags.GetBool("no_graph", false);
  const long long spill_run_mb = flags.GetInt("spill_run_mb", 64);
  if (spill_run_mb <= 0) {
    slim::tools::Flags::Fail("--spill_run_mb must be > 0");
  }
  config.spill_run_bytes =
      static_cast<uint64_t>(spill_run_mb) * (uint64_t{1} << 20);
  // Any sharding/scale knob selects the sharded driver; otherwise the
  // monolithic path runs (the outputs are bit-identical either way).
  const bool use_sharded =
      config.shards > 0 || config.left_shards > 1 ||
      config.shard_memory_budget_bytes > 0 || !config.sctx_path.empty() ||
      !config.keep_graph;

  const std::string thr = flags.GetString("threshold", "gmm");
  if (thr == "gmm") {
    config.threshold_method = slim::ThresholdMethod::kGmmExpectedF1;
  } else if (thr == "otsu") {
    config.threshold_method = slim::ThresholdMethod::kOtsu;
  } else if (thr == "two_means") {
    config.threshold_method = slim::ThresholdMethod::kTwoMeans;
  } else if (thr == "none") {
    config.apply_stop_threshold = false;
  } else {
    slim::tools::Flags::Fail("unknown --threshold: " + thr);
  }
  const std::string matcher = flags.GetString("matcher", "greedy");
  if (matcher == "hungarian") {
    config.matcher = slim::MatcherKind::kHungarian;
  } else if (matcher != "greedy") {
    slim::tools::Flags::Fail("unknown --matcher: " + matcher);
  }

  if (flags.GetBool("auto_tune", false)) {
    slim::TuningOptions tuning;
    tuning.window_seconds = config.history.window_seconds;
    auto level = slim::AutoTuneSpatialLevelForPair(*a, *b, tuning);
    if (!level.ok()) slim::tools::Flags::Fail(level.status().ToString());
    config.history.spatial_level = *level;
    if (config.lsh.signature_spatial_level > *level) {
      config.lsh.signature_spatial_level = *level;
    }
    std::fprintf(stderr, "auto-tuned spatial level: %d\n", *level);
  }

  const slim::SlimLinker linker(config);
  auto result = use_sharded ? linker.LinkSharded(*a, *b) : linker.Link(*a, *b);
  if (!result.ok()) slim::tools::Flags::Fail(result.status().ToString());

  if (use_sharded) {
    std::fprintf(
        stderr,
        "sharded driver: %d x %d block(s), %llu edges via %s "
        "(%llu spill bytes, %d merge pass(es))\n",
        result->left_shards_used, result->shards_used,
        static_cast<unsigned long long>(result->spilled_edges),
        result->spill_on_disk ? "disk spill" : "memory",
        static_cast<unsigned long long>(result->spill_bytes_written),
        result->merge_passes);
  }
  std::fprintf(stderr,
               "scored %llu of %llu pairs; %zu matched; %zu linked "
               "(threshold %s); %.2fs total\n",
               static_cast<unsigned long long>(result->candidate_pairs),
               static_cast<unsigned long long>(result->possible_pairs),
               result->matching.pairs.size(), result->links.size(),
               result->threshold_valid
                   ? slim::StrFormat("%.2f", result->threshold.threshold)
                         .c_str()
                   : "n/a",
               result->seconds_total);

  const slim::Status st = slim::WriteLinksCsv(result->links, path_out);
  if (!st.ok()) slim::tools::Flags::Fail(st.ToString());
  std::fprintf(stderr, "wrote %s\n", path_out.c_str());

  const std::string bench_json_path = flags.GetString("bench_json", "");
  if (!bench_json_path.empty()) {
    std::FILE* f = std::fopen(bench_json_path.c_str(), "w");
    if (f == nullptr) {
      slim::tools::Flags::Fail("cannot write " + bench_json_path);
    }
    std::fprintf(
        f,
        "{\n"
        "  \"schema\": \"slim-link-bench-v5\",\n"
        "  \"build\": \"%s\",\n"
        "  \"a\": \"%s\",\n"
        "  \"b\": \"%s\",\n"
        "  \"entities_a\": %zu,\n"
        "  \"entities_b\": %zu,\n"
        "  \"threads\": %d,\n"
        "  \"shards\": %d,\n"
        "  \"left_shards\": %d,\n"
        "  \"spilled_edges\": %llu,\n"
        "  \"spill_on_disk\": %s,\n"
        "  \"spill_bytes_written\": %llu,\n"
        "  \"merge_passes\": %d,\n"
        "  \"candidates\": \"%s\",\n"
        "  \"kernel\": \"%s\",\n"
        "  \"candidate_pairs\": %llu,\n"
        "  \"possible_pairs\": %llu,\n"
        "  \"links\": %zu,\n"
        "  \"distance_cache\": {\n"
        "    \"hits\": %llu,\n"
        "    \"misses\": %llu\n"
        "  },\n"
        "  \"seconds\": {\n"
        "    \"histories\": %.6f,\n"
        "    \"lsh\": %.6f,\n"
        "    \"scoring\": %.6f,\n"
        "    \"matching\": %.6f,\n"
        "    \"total\": %.6f\n"
        "  },\n"
        "  \"peak_rss_bytes\": {\n"
        "    \"histories\": %llu,\n"
        "    \"lsh\": %llu,\n"
        "    \"scoring\": %llu,\n"
        "    \"matching\": %llu,\n"
        "    \"total\": %llu\n"
        "  }\n"
        "}\n",
        JsonEscape(slim::BuildGitDescribe()).c_str(),
        JsonEscape(path_a).c_str(), JsonEscape(path_b).c_str(),
        a->num_entities(), b->num_entities(),
        config.threads > 0 ? config.threads : slim::DefaultThreadCount(),
        result->shards_used, result->left_shards_used,
        static_cast<unsigned long long>(result->spilled_edges),
        result->spill_on_disk ? "true" : "false",
        static_cast<unsigned long long>(result->spill_bytes_written),
        result->merge_passes,
        std::string(slim::CandidateKindName(result->candidates_used)).c_str(),
        slim::ScoreKernelName(slim::ResolveScoreKernel(*kernel)),
        static_cast<unsigned long long>(result->candidate_pairs),
        static_cast<unsigned long long>(result->possible_pairs),
        result->links.size(),
        static_cast<unsigned long long>(result->stats.cache_hits),
        static_cast<unsigned long long>(result->stats.cache_misses),
        result->seconds_histories, result->seconds_lsh,
        result->seconds_scoring, result->seconds_matching,
        result->seconds_total,
        static_cast<unsigned long long>(result->rss_peak_histories),
        static_cast<unsigned long long>(result->rss_peak_lsh),
        static_cast<unsigned long long>(result->rss_peak_scoring),
        static_cast<unsigned long long>(result->rss_peak_matching),
        static_cast<unsigned long long>(result->rss_peak_total));
    std::fclose(f);
    std::fprintf(stderr, "wrote %s\n", bench_json_path.c_str());
  }

  const std::string report_path = flags.GetString("report", "");
  if (!report_path.empty()) {
    slim::ReportOptions ropt;
    ropt.dataset_a = path_a;
    ropt.dataset_b = path_b;
    const slim::Status rs =
        slim::WriteLinkageReport(*result, ropt, report_path);
    if (!rs.ok()) slim::tools::Flags::Fail(rs.ToString());
    std::fprintf(stderr, "wrote %s\n", report_path.c_str());
  }
  return 0;
}
