// slim_generate: produce synthetic mobility workloads and (optionally) the
// two-sided linkage experiment files with ground truth.
//
//   # one master dataset
//   slim_generate --workload cab --out master.csv [--entities N] [--days D]
//
//   # a full linkage experiment: A side, B side, and the truth mapping
//   slim_generate --workload sm --experiment --out_prefix exp_
//                 [--entities N] [--days D] [--intersection R]
//                 [--inclusion P] [--seed S]
#include <cstdio>
#include <fstream>

#include "flags.h"
#include "slim.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: slim_generate --workload cab|sm --out master.csv [options]\n"
      "       slim_generate --workload cab|sm --experiment "
      "--out_prefix PFX [options]\n"
      "options:\n"
      "  --format KIND      output dataset format: auto|csv|sbin\n"
      "                     (auto picks sbin for *.sbin paths, else csv)\n"
      "  --entities N       entities in the master workload\n"
      "  --days D           collection duration\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --intersection R   entity intersection ratio (default 0.5)\n"
      "  --inclusion P      record inclusion probability (default 0.5)\n"
      "  --side_entities N  entities per experiment side (default: auto)\n");
}

slim::LocationDataset Generate(const slim::tools::Flags& flags,
                               const std::string& workload) {
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (workload == "cab") {
    slim::CabGeneratorOptions opt;
    opt.num_taxis = static_cast<int>(flags.GetInt("entities", 100));
    opt.duration_days = flags.GetDouble("days", 6.0);
    opt.seed = seed;
    return slim::GenerateCabDataset(opt);
  }
  if (workload == "sm") {
    slim::CheckinGeneratorOptions opt;
    opt.num_users = static_cast<int>(flags.GetInt("entities", 2000));
    opt.duration_days = flags.GetDouble("days", 26.0);
    opt.seed = seed;
    return slim::GenerateCheckinDataset(opt);
  }
  slim::tools::Flags::Fail("unknown --workload: " + workload +
                           " (expected cab|sm)");
}

}  // namespace

int main(int argc, char** argv) {
  slim::tools::Flags flags(argc, argv);
  const std::string workload = flags.GetString("workload", "");
  if (workload.empty()) {
    Usage();
    return 2;
  }
  auto format = slim::ParseDatasetFormat(flags.GetString("format", "auto"));
  if (!format.ok()) slim::tools::Flags::Fail(format.status().ToString());

  const slim::LocationDataset master = Generate(flags, workload);
  std::fprintf(stderr, "generated %zu entities / %zu records\n",
               master.num_entities(), master.num_records());

  if (!flags.GetBool("experiment", false)) {
    const std::string out = flags.GetString("out", "");
    if (out.empty()) {
      Usage();
      return 2;
    }
    const slim::Status st = slim::WriteDataset(master, out, *format);
    if (!st.ok()) slim::tools::Flags::Fail(st.ToString());
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }

  // Two-sided experiment with ground truth.
  const std::string prefix = flags.GetString("out_prefix", "");
  if (prefix.empty()) {
    Usage();
    return 2;
  }
  slim::PairSampleOptions opt;
  opt.entities_per_side =
      static_cast<size_t>(flags.GetInt("side_entities", 0));
  opt.intersection_ratio = flags.GetDouble("intersection", 0.5);
  opt.inclusion_probability = flags.GetDouble("inclusion", 0.5);
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 42)) + 1;
  auto sample = slim::SampleLinkedPair(master, opt);
  if (!sample.ok()) slim::tools::Flags::Fail(sample.status().ToString());

  // Side files carry the extension of the chosen format; slim_link's
  // default --format=auto detects either.
  const char* side_ext =
      *format == slim::DatasetFormat::kSbin ? ".sbin" : ".csv";
  const std::string path_a = prefix + "a" + side_ext;
  const std::string path_b = prefix + "b" + side_ext;
  const slim::Status sa = slim::WriteDataset(sample->a, path_a, *format);
  if (!sa.ok()) slim::tools::Flags::Fail(sa.ToString());
  const slim::Status sb = slim::WriteDataset(sample->b, path_b, *format);
  if (!sb.ok()) slim::tools::Flags::Fail(sb.ToString());

  // Ground truth in the links-CSV format (score 1.0).
  std::vector<slim::LinkedEntityPair> truth;
  for (const auto& [ua, ub] : sample->truth.a_to_b) {
    truth.push_back({ua, ub, 1.0});
  }
  const slim::Status st = slim::WriteLinksCsv(truth, prefix + "truth.csv");
  if (!st.ok()) slim::tools::Flags::Fail(st.ToString());

  std::fprintf(stderr,
               "wrote %s (%zu entities), %s (%zu entities), "
               "%struth.csv (%zu pairs)\n",
               path_a.c_str(), sample->a.num_entities(), path_b.c_str(),
               sample->b.num_entities(), prefix.c_str(),
               sample->truth.size());
  return 0;
}
