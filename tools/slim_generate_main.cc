// slim_generate: produce synthetic mobility workloads and (optionally) the
// two-sided linkage experiment files with ground truth.
//
//   # one master dataset
//   slim_generate --workload cab --out master.csv [--entities N] [--days D]
//
//   # a full linkage experiment: A side, B side, and the truth mapping
//   slim_generate --workload sm --experiment --out_prefix exp_
//                 [--entities N] [--days D] [--intersection R]
//                 [--inclusion P] [--seed S]
#include <cstdio>
#include <fstream>

#include "common/build_info.h"
#include "flags.h"
#include "slim.h"

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: slim_generate --workload cab|sm|commute --out master.csv "
      "[options]\n"
      "       slim_generate --workload cab|sm|commute --experiment "
      "--out_prefix PFX [options]\n"
      "       slim_generate --preset sm100k --out_prefix PFX [options]\n"
      "options:\n"
      "  --preset NAME      named scenario: sm100k is the 100k-entities-\n"
      "                     per-side SM experiment the sharded driver\n"
      "                     targets (slim_link --shards; docs/BENCHMARKS.md);\n"
      "                     sm1m is the 1M-per-side scale the mmap + external-\n"
      "                     matcher pipeline targets (slim_link --sctx\n"
      "                     --left_shards --no_graph)\n"
      "  --format KIND      output dataset format: auto|csv|sbin\n"
      "                     (auto picks sbin for *.sbin paths, else csv)\n"
      "  --entities N       entities in the master workload\n"
      "  --days D           collection duration\n"
      "  --seed S           RNG seed (default 42)\n"
      "  --intersection R   entity intersection ratio (default 0.5)\n"
      "  --inclusion P      record inclusion probability (default 0.5)\n"
      "  --side_entities N  entities per experiment side (default: auto)\n"
      "  --version          print the build/version string and exit\n");
}

// Preset-dependent defaults; every explicit flag still wins.
struct GenerateDefaults {
  const char* workload = "";
  long long entities_cab = 100;
  long long entities_sm = 2000;
  long long entities_commute = 400;
  long long side_entities = 0;
  bool experiment = false;
};

slim::LocationDataset Generate(const slim::tools::Flags& flags,
                               const std::string& workload,
                               const GenerateDefaults& defaults) {
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  if (workload == "cab") {
    slim::CabGeneratorOptions opt;
    opt.num_taxis =
        static_cast<int>(flags.GetInt("entities", defaults.entities_cab));
    opt.duration_days = flags.GetDouble("days", 6.0);
    opt.seed = seed;
    return slim::GenerateCabDataset(opt);
  }
  if (workload == "sm") {
    slim::CheckinGeneratorOptions opt;
    opt.num_users =
        static_cast<int>(flags.GetInt("entities", defaults.entities_sm));
    opt.duration_days = flags.GetDouble("days", 26.0);
    opt.seed = seed;
    return slim::GenerateCheckinDataset(opt);
  }
  if (workload == "commute") {
    slim::CommuteGeneratorOptions opt;
    opt.num_commuters =
        static_cast<int>(flags.GetInt("entities", defaults.entities_commute));
    opt.duration_days = flags.GetDouble("days", 14.0);
    opt.seed = seed;
    return slim::GenerateCommuteDataset(opt);
  }
  slim::tools::Flags::Fail("unknown --workload: " + workload +
                           " (expected cab|sm|commute)");
}

}  // namespace

int main(int argc, char** argv) {
  slim::tools::Flags flags(argc, argv);
  if (flags.GetBool("version", false)) {
    std::printf("%s\n", slim::BuildVersionString());
    return 0;
  }
  GenerateDefaults defaults;
  const std::string preset = flags.GetString("preset", "");
  if (preset == "sm100k") {
    // The sharded-linkage scenario: a 200k-user SM master sampled into two
    // 100k-entity sides — the scale bench_sharded records in
    // BENCH_sharded.json. Master generation is the slow part (~minutes);
    // prefer --format sbin for fast reload into slim_link.
    defaults.workload = "sm";
    defaults.entities_sm = 200000;
    defaults.side_entities = 100000;
    defaults.experiment = true;
  } else if (preset == "sm1m") {
    // The 1M-entities-per-side scenario: a 2M-user SM master sampled into
    // two 1M-entity sides — the scale the mmap-backed context + external
    // matcher target (docs/BENCHMARKS.md, "Scaling to 1M entities per
    // side"). Use --format sbin: the CSV forms are tens of GB slower to
    // parse than the whole linkage run.
    defaults.workload = "sm";
    defaults.entities_sm = 2000000;
    defaults.side_entities = 1000000;
    defaults.experiment = true;
  } else if (!preset.empty()) {
    slim::tools::Flags::Fail("unknown --preset: " + preset +
                             " (expected sm100k|sm1m)");
  }
  const std::string workload =
      flags.GetString("workload", defaults.workload);
  if (workload.empty()) {
    Usage();
    return 2;
  }
  auto format = slim::ParseDatasetFormat(flags.GetString("format", "auto"));
  if (!format.ok()) slim::tools::Flags::Fail(format.status().ToString());

  const slim::LocationDataset master = Generate(flags, workload, defaults);
  std::fprintf(stderr, "generated %zu entities / %zu records\n",
               master.num_entities(), master.num_records());

  if (!flags.GetBool("experiment", defaults.experiment)) {
    const std::string out = flags.GetString("out", "");
    if (out.empty()) {
      Usage();
      return 2;
    }
    const slim::Status st = slim::WriteDataset(master, out, *format);
    if (!st.ok()) slim::tools::Flags::Fail(st.ToString());
    std::fprintf(stderr, "wrote %s\n", out.c_str());
    return 0;
  }

  // Two-sided experiment with ground truth.
  const std::string prefix = flags.GetString("out_prefix", "");
  if (prefix.empty()) {
    Usage();
    return 2;
  }
  slim::PairSampleOptions opt;
  opt.entities_per_side = static_cast<size_t>(
      flags.GetInt("side_entities", defaults.side_entities));
  opt.intersection_ratio = flags.GetDouble("intersection", 0.5);
  opt.inclusion_probability = flags.GetDouble("inclusion", 0.5);
  opt.seed = static_cast<uint64_t>(flags.GetInt("seed", 42)) + 1;
  auto sample = slim::SampleLinkedPair(master, opt);
  if (!sample.ok()) slim::tools::Flags::Fail(sample.status().ToString());

  // Side files carry the extension of the chosen format; slim_link's
  // default --format=auto detects either.
  const char* side_ext =
      *format == slim::DatasetFormat::kSbin ? ".sbin" : ".csv";
  const std::string path_a = prefix + "a" + side_ext;
  const std::string path_b = prefix + "b" + side_ext;
  const slim::Status sa = slim::WriteDataset(sample->a, path_a, *format);
  if (!sa.ok()) slim::tools::Flags::Fail(sa.ToString());
  const slim::Status sb = slim::WriteDataset(sample->b, path_b, *format);
  if (!sb.ok()) slim::tools::Flags::Fail(sb.ToString());

  // Ground truth in the links-CSV format (score 1.0).
  std::vector<slim::LinkedEntityPair> truth;
  for (const auto& [ua, ub] : sample->truth.a_to_b) {
    truth.push_back({ua, ub, 1.0});
  }
  const slim::Status st = slim::WriteLinksCsv(truth, prefix + "truth.csv");
  if (!st.ok()) slim::tools::Flags::Fail(st.ToString());

  std::fprintf(stderr,
               "wrote %s (%zu entities), %s (%zu entities), "
               "%struth.csv (%zu pairs)\n",
               path_a.c_str(), sample->a.num_entities(), path_b.c_str(),
               sample->b.num_entities(), prefix.c_str(),
               sample->truth.size());
  return 0;
}
