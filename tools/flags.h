// Tiny command-line flag parser for the slim tools: --key=value and
// --key value forms, with typed getters and an automatic usage dump.
#ifndef SLIM_TOOLS_FLAGS_H_
#define SLIM_TOOLS_FLAGS_H_

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/strings.h"

namespace slim::tools {

/// Parsed command line: --flag=value / --flag value pairs plus positionals.
class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        positional_.push_back(std::move(arg));
        continue;
      }
      arg = arg.substr(2);
      const size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "true";  // boolean flag
      }
    }
  }

  bool Has(const std::string& key) const { return values_.count(key) > 0; }

  std::string GetString(const std::string& key,
                        const std::string& def) const {
    const auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

  int64_t GetInt(const std::string& key, int64_t def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    auto v = ParseInt64(it->second);
    if (!v.ok()) Fail("flag --" + key + " expects an integer");
    return *v;
  }

  double GetDouble(const std::string& key, double def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    auto v = ParseDouble(it->second);
    if (!v.ok()) Fail("flag --" + key + " expects a number");
    return *v;
  }

  bool GetBool(const std::string& key, bool def) const {
    const auto it = values_.find(key);
    if (it == values_.end()) return def;
    return it->second == "true" || it->second == "1" || it->second == "yes";
  }

  const std::vector<std::string>& positional() const { return positional_; }

  [[noreturn]] static void Fail(const std::string& message) {
    std::fprintf(stderr, "error: %s\n", message.c_str());
    std::exit(2);
  }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace slim::tools

#endif  // SLIM_TOOLS_FLAGS_H_
