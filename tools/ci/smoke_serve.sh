#!/usr/bin/env bash
# CI smoke: the slim_serve daemon end to end — start it on a Unix socket,
# ingest a generated experiment pair in TWO epochs through the line
# protocol, LINK after each, SAVE the epoch-2 links, query TOPK/STATS,
# and shut down cleanly. The saved epoch-2 links must be byte-identical
# to a from-scratch `slim_link --min_records 0` over the union of
# everything ingested (the incremental engine applies no record filter) —
# this is the serving determinism contract of docs/SERVING.md.
#
# Runs locally too:  tools/ci/smoke_serve.sh [build_dir]
set -euo pipefail

BUILD="${1:-build}"
TMP="$(mktemp -d)"
SOCK="$TMP/slim_serve.sock"
DAEMON_PID=""
trap '[ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null; rm -rf "$TMP"' EXIT

"$BUILD/tools/slim_serve" --version

"$BUILD/tools/slim_generate" --workload cab --experiment \
  --out_prefix "$TMP/serve_" --entities 24 --days 1

# CSV records -> INGEST lines, batched 100 records per protocol line
# (well under the 64 KiB line cap).
csv_to_ingest() { # <A|B> <csv>
  awk -F, -v side="$1" 'NR > 1 {
    rec = rec " " $1 " " $2 " " $3 " " $4; n++
    if (n == 100) { print "INGEST " side rec; rec = ""; n = 0 }
  } END { if (n > 0) print "INGEST " side rec }' "$2"
}
csv_to_ingest A "$TMP/serve_a.csv" > "$TMP/ingest_a.txt"
csv_to_ingest B "$TMP/serve_b.csv" > "$TMP/ingest_b.txt"
HALF_A=$(( ($(wc -l < "$TMP/ingest_a.txt") + 1) / 2 ))
HALF_B=$(( ($(wc -l < "$TMP/ingest_b.txt") + 1) / 2 ))

{
  head -n "$HALF_A" "$TMP/ingest_a.txt"
  head -n "$HALF_B" "$TMP/ingest_b.txt"
  echo "LINK"
  tail -n +"$((HALF_A + 1))" "$TMP/ingest_a.txt"
  tail -n +"$((HALF_B + 1))" "$TMP/ingest_b.txt"
  echo "LINK"
  echo "SAVE $TMP/links_serve.csv"
  echo "STATS"
  echo "TOPK 0 3"
  echo "SHUTDOWN"
} > "$TMP/session.txt"

"$BUILD/tools/slim_serve" --socket "$SOCK" &
DAEMON_PID=$!
for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "smoke_serve: daemon never bound $SOCK" >&2; exit 1; }

# The client exits 3 on any ERR reply, so a protocol regression fails
# the script even before the byte comparison below.
"$BUILD/tools/slim_serve" --connect "$SOCK" \
  < "$TMP/session.txt" > "$TMP/replies.txt"
cat "$TMP/replies.txt"

# SHUTDOWN must end the daemon with exit code 0 and remove the socket.
wait "$DAEMON_PID"
DAEMON_PID=""
[ ! -e "$SOCK" ] || { echo "smoke_serve: socket left behind" >&2; exit 1; }

grep -q "^HELLO slim-serve-v1 " "$TMP/replies.txt"
grep -q "^OK epoch=1 " "$TMP/replies.txt"
grep -q "^OK epoch=2 " "$TMP/replies.txt"
grep -q "^OK saved=" "$TMP/replies.txt"
grep -q "^OK bye$" "$TMP/replies.txt"

# The determinism contract: epoch-2 links byte-identical to a batch run
# over the union of both epochs (= the full generated pair).
"$BUILD/tools/slim_link" --a "$TMP/serve_a.csv" --b "$TMP/serve_b.csv" \
  --out "$TMP/links_batch.csv" --min_records 0
cmp "$TMP/links_batch.csv" "$TMP/links_serve.csv"

echo "smoke_serve: OK"
