#!/usr/bin/env bash
# CI smoke: the quick bench gates of the Release leg — each suite
# re-measures its stage, enforces its determinism contract, and fails on
# a >2x regression against the committed baseline where one exists
# (docs/BENCHMARKS.md). Records land in the current directory as
# BENCH_*_quick.json for the artifact upload.
#
#   tools/ci/smoke_bench.sh [build_dir] [suite]
#
# With no suite, runs all of: pipeline ingest kernel sharded scale sweep.
# CI invokes one suite per step so each gate is its own line in the run.
set -euo pipefail

BUILD="${1:-build}"
SUITE="${2:-all}"

run_suite() {
  case "$1" in
    pipeline)
      "$BUILD/bench/bench_pipeline" --quick \
        --out BENCH_pipeline_quick.json \
        --baseline bench/baselines/BENCH_pipeline_quick.json ;;
    ingest)
      "$BUILD/bench/bench_ingest" --quick \
        --out BENCH_ingest_quick.json \
        --baseline bench/baselines/BENCH_ingest_quick.json ;;
    kernel)
      "$BUILD/bench/bench_kernel" --quick \
        --out BENCH_kernel_quick.json \
        --baseline bench/baselines/BENCH_kernel_quick.json ;;
    sharded)
      "$BUILD/bench/bench_sharded" --quick \
        --out BENCH_sharded_quick.json ;;
    scale)
      "$BUILD/bench/bench_scale" --quick \
        --out BENCH_scale_quick.json ;;
    sweep)
      "$BUILD/tools/slim_sweep" --quick \
        --gate_f1 0.95 --gate_workload commute \
        --out BENCH_sweep_quick.json ;;
    *)
      echo "smoke_bench: unknown suite '$1'" >&2
      echo "suites: pipeline ingest kernel sharded scale sweep" >&2
      exit 2 ;;
  esac
}

if [ "$SUITE" = "all" ]; then
  for suite in pipeline ingest kernel sharded scale sweep; do
    run_suite "$suite"
  done
else
  run_suite "$SUITE"
fi

echo "smoke_bench: OK ($SUITE)"
