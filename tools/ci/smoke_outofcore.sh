#!/usr/bin/env bash
# CI smoke: the out-of-core flow end to end. Generates an SM pair, runs
# the monolithic driver, then the mmap-backed driver (SCTX serialize on
# the first run, map-existing on the second) with a 1 MB budget that
# forces multi-shard blocks, an on-disk edge spill, and the external
# merge + streaming matcher (--no_graph). The links files must be
# byte-identical to the monolithic run every time.
#
# Runs locally too:  tools/ci/smoke_outofcore.sh [build_dir]
set -euo pipefail

BUILD="${1:-build}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/tools/slim_generate" --workload sm --experiment \
  --out_prefix "$TMP/sctx_" --entities 1600 --side_entities 800 \
  --format sbin
"$BUILD/tools/slim_link" --a "$TMP/sctx_a.sbin" --b "$TMP/sctx_b.sbin" \
  --out "$TMP/links_mono_sm.csv"
"$BUILD/tools/slim_link" --a "$TMP/sctx_a.sbin" --b "$TMP/sctx_b.sbin" \
  --out "$TMP/links_sctx.csv" --sctx "$TMP/context.sctx" \
  --left_shards 2 --memory_budget_mb 1 --spill_run_mb 1 --no_graph
cmp "$TMP/links_mono_sm.csv" "$TMP/links_sctx.csv"
test -s "$TMP/context.sctx"
"$BUILD/tools/slim_link" --a "$TMP/sctx_a.sbin" --b "$TMP/sctx_b.sbin" \
  --out "$TMP/links_sctx2.csv" --sctx "$TMP/context.sctx" \
  --left_shards 2 --memory_budget_mb 1 --spill_run_mb 1 --no_graph
cmp "$TMP/links_mono_sm.csv" "$TMP/links_sctx2.csv"

echo "smoke_outofcore: OK"
