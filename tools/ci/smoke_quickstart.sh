#!/usr/bin/env bash
# CI smoke: the quickstart example, the CLI link flow, and sharded-driver
# parity (the sharded driver must reproduce the monolithic links exactly).
#
# Runs locally too:  tools/ci/smoke_quickstart.sh [build_dir]
set -euo pipefail

BUILD="${1:-build}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/quickstart"

"$BUILD/tools/slim_generate" --workload cab --experiment \
  --out_prefix "$TMP/exp_" --entities 40 --days 1
"$BUILD/tools/slim_link" --a "$TMP/exp_a.csv" --b "$TMP/exp_b.csv" \
  --out "$TMP/links.csv"
"$BUILD/tools/slim_link" --a "$TMP/exp_a.csv" --b "$TMP/exp_b.csv" \
  --out "$TMP/links_sharded.csv" --shards 3
cmp "$TMP/links.csv" "$TMP/links_sharded.csv"

echo "smoke_quickstart: OK"
