#!/usr/bin/env python3
"""Run the curated .clang-tidy set over the compilation database.

Filters compile_commands.json down to first-party TUs (src/ tools/ bench/
tests/, minus the lint fixture corpus and generated files), fans the TUs
out over a worker pool, and prints a per-check summary.  WarningsAsErrors
in .clang-tidy makes any finding fatal, so CI can gate on the exit code.

Exit status: 0 clean, 1 findings, 2 usage error, 77 when no clang-tidy
binary exists (ctest maps 77 to SKIPPED; pass --require to turn the
missing binary into a hard failure, which CI does).

Usage:
  tools/run_clang_tidy.py -p build               # whole tree
  tools/run_clang_tidy.py -p build src/core      # subset by prefix
  tools/run_clang_tidy.py -p build --require -j 8
"""

import argparse
import json
import multiprocessing
import os
import re
import shutil
import subprocess
import sys

FIRST_PARTY = ("src/", "tools/", "bench/", "tests/", "examples/")
EXCLUDES = ("tests/lint/fixtures/",)

# Newest first; plain `clang-tidy` preferred over versioned spellings.
CANDIDATE_NAMES = ["clang-tidy"] + [f"clang-tidy-{v}" for v in range(22, 11, -1)]

CHECK_TAG_RE = re.compile(r"\[([a-z0-9.,-]+)\]\s*$")


def find_clang_tidy():
    for name in CANDIDATE_NAMES:
        path = shutil.which(name)
        if path:
            return path
    return None


def first_party_tus(build_dir, root, prefixes):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.isfile(db_path):
        print(f"error: {db_path} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON (the default here)",
              file=sys.stderr)
        sys.exit(2)
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)
    tus = []
    for entry in db:
        path = os.path.normpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        try:
            rel = os.path.relpath(path, root).replace(os.sep, "/")
        except ValueError:
            continue
        if rel.startswith(".."):
            continue  # generated / third-party TU outside the repo
        if not rel.startswith(FIRST_PARTY):
            continue
        if any(rel.startswith(e) for e in EXCLUDES):
            continue
        if prefixes and not any(rel.startswith(p) for p in prefixes):
            continue
        tus.append(rel)
    return sorted(set(tus))


def run_one(args):
    tidy, build_dir, root, tu = args
    proc = subprocess.run(
        [tidy, "-p", build_dir, "--quiet", tu],
        cwd=root, capture_output=True, text=True)
    return tu, proc.returncode, proc.stdout, proc.stderr


def main(argv):
    ap = argparse.ArgumentParser(prog="run_clang_tidy")
    ap.add_argument("prefixes", nargs="*",
                    help="restrict to TUs under these repo-relative prefixes")
    ap.add_argument("-p", "--build-dir", default="build")
    ap.add_argument("-j", "--jobs", type=int,
                    default=max(1, multiprocessing.cpu_count()))
    ap.add_argument("--require", action="store_true",
                    help="fail (not skip) when clang-tidy is unavailable")
    args = ap.parse_args(argv)

    root = os.path.abspath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir))
    build_dir = os.path.abspath(args.build_dir)

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: no clang-tidy binary on PATH "
              f"(tried {CANDIDATE_NAMES[0]} and versioned names)",
              file=sys.stderr)
        return 1 if args.require else 77

    tus = first_party_tus(build_dir, root, args.prefixes)
    if not tus:
        print("run_clang_tidy: no matching first-party TUs", file=sys.stderr)
        return 2

    failures = 0
    by_check = {}
    work = [(tidy, build_dir, root, tu) for tu in tus]
    with multiprocessing.Pool(args.jobs) as pool:
        for tu, rc, out, err in pool.imap_unordered(run_one, work):
            if rc != 0:
                failures += 1
                sys.stdout.write(out)
                # clang-tidy puts config errors on stderr; surface those.
                if not out.strip():
                    sys.stderr.write(err)
                for line in out.splitlines():
                    m = CHECK_TAG_RE.search(line)
                    if m and (": warning:" in line or ": error:" in line):
                        for check in m.group(1).split(","):
                            by_check[check] = by_check.get(check, 0) + 1
    print(f"run_clang_tidy: {len(tus)} TUs, {failures} with findings",
          file=sys.stderr)
    if by_check:
        print("findings by check:", file=sys.stderr)
        for check in sorted(by_check, key=by_check.get, reverse=True):
            print(f"  {by_check[check]:5d}  {check}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
