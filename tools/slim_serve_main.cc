// slim_serve: incremental linkage daemon and line-protocol client.
//
// Daemon (default):
//   slim_serve --socket /tmp/slim.sock
//              [--spatial_level N] [--window_minutes M] [--b_param X]
//              [--max_speed_kmh S] [--candidates lsh|brute|grid]
//              [--matcher greedy|hungarian] [--threshold gmm|otsu|two_means|
//              none] [--threads N]
//   Serves the slim-serve-v1 protocol (docs/SERVING.md) on a Unix-domain
//   socket until SHUTDOWN or SIGINT/SIGTERM. Epoch link sets are
//   bit-identical to a from-scratch slim_link --min_records 0 run over
//   the union of all ingested records.
//
// Client:
//   slim_serve --connect /tmp/slim.sock [--listen]
//   Prints the handshake, then sends each stdin line as one request and
//   prints its reply. Exits 3 as soon as a reply is "ERR ...". With
//   --listen, stays connected after stdin is exhausted and prints pushed
//   EVENT lines until the server closes the connection.
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>

#include "common/build_info.h"
#include "flags.h"
#include "serve/server.h"
#include "slim.h"

namespace {

std::atomic<bool> g_stop{false};

void HandleStopSignal(int) { g_stop.store(true); }

void Usage() {
  std::fprintf(
      stderr,
      "usage: slim_serve --socket PATH [pipeline options]   (daemon)\n"
      "       slim_serve --connect PATH [--listen]          (client)\n"
      "daemon options:\n"
      "  --socket PATH         Unix-domain socket to listen on\n"
      "  --spatial_level N     history leaf cell level (default 12)\n"
      "  --window_minutes M    leaf window width (default 15)\n"
      "  --b_param X           length-normalisation strength (default 0.5)\n"
      "  --max_speed_kmh S     alibi speed limit (default 120)\n"
      "  --candidates KIND     lsh|brute|grid (default lsh)\n"
      "  --lsh_level N         signature spatial level (default 10)\n"
      "  --lsh_step N          query step in leaf windows (default 8)\n"
      "  --lsh_threshold T     candidate similarity threshold (default 0.5)\n"
      "  --lsh_buckets N       buckets per band (default 4096)\n"
      "  --matcher KIND        greedy|hungarian (default greedy)\n"
      "  --threshold KIND      gmm|otsu|two_means|none (default gmm)\n"
      "  --threads N           worker threads per epoch (default: env/hw)\n"
      "client options:\n"
      "  --connect PATH        send stdin lines to a running daemon\n"
      "  --listen              after stdin, print EVENT lines until the\n"
      "                        server closes the connection\n"
      "  --version             print the build/version string and exit\n");
}

/// Connects, relays stdin as requests, prints every server line. Exit
/// codes: 0 clean, 2 connect failure, 3 the server answered ERR.
int RunClient(const std::string& path, bool listen_after) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
    return 2;
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket(): %s\n", std::strerror(errno));
    return 2;
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "error: connect(%s): %s\n", path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 2;
  }

  std::string buffer;
  bool server_gone = false;
  // Pulls one '\n'-terminated line out of the socket. Returns false on EOF.
  const auto read_line = [&](std::string* line) {
    size_t newline;
    while ((newline = buffer.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        server_gone = true;
        return false;
      }
      buffer.append(chunk, static_cast<size_t>(n));
    }
    line->assign(buffer, 0, newline);
    buffer.erase(0, newline + 1);
    return true;
  };
  const auto send_line = [&](const std::string& line) {
    std::string framed = line + "\n";
    size_t off = 0;
    while (off < framed.size()) {
      const ssize_t n = ::send(fd, framed.data() + off, framed.size() - off,
                               MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n < 0) return false;
      off += static_cast<size_t>(n);
    }
    return true;
  };

  int rc = 0;
  std::string line;
  if (read_line(&line)) {
    std::printf("%s\n", line.c_str());  // HELLO handshake
  } else {
    std::fprintf(stderr, "error: no handshake from %s\n", path.c_str());
    ::close(fd);
    return 2;
  }

  std::string request;
  char* lineptr = nullptr;
  size_t cap = 0;
  ssize_t len;
  while (rc == 0 && (len = ::getline(&lineptr, &cap, stdin)) >= 0) {
    request.assign(lineptr, static_cast<size_t>(len));
    while (!request.empty() &&
           (request.back() == '\n' || request.back() == '\r')) {
      request.pop_back();
    }
    if (request.empty()) continue;
    if (!send_line(request)) {
      std::fprintf(stderr, "error: server closed the connection\n");
      rc = 2;
      break;
    }
    // EVENT lines from this client's own SUBSCRIBE may precede the
    // reply; print them in arrival order, the reply ends the exchange.
    while (read_line(&line)) {
      std::printf("%s\n", line.c_str());
      if (line.rfind("EVENT ", 0) == 0) continue;
      if (line.rfind("ERR ", 0) == 0) rc = 3;
      break;
    }
    if (server_gone) break;
  }
  std::free(lineptr);

  if (rc == 0 && listen_after && !server_gone) {
    while (read_line(&line)) std::printf("%s\n", line.c_str());
  }
  std::fflush(stdout);
  ::close(fd);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  slim::tools::Flags flags(argc, argv);
  if (flags.GetBool("version", false)) {
    std::printf("%s\n", slim::BuildVersionString());
    return 0;
  }
  if (flags.GetBool("help", false)) {
    Usage();
    return 0;
  }

  const std::string connect_path = flags.GetString("connect", "");
  if (!connect_path.empty()) {
    return RunClient(connect_path, flags.GetBool("listen", false));
  }

  const std::string socket_path = flags.GetString("socket", "");
  if (socket_path.empty()) {
    Usage();
    return 2;
  }

  slim::SlimConfig config;
  config.history.window_seconds = flags.GetInt("window_minutes", 15) * 60;
  config.history.spatial_level =
      static_cast<int>(flags.GetInt("spatial_level", 12));
  config.similarity.b = flags.GetDouble("b_param", 0.5);
  config.similarity.proximity.max_speed_mps =
      flags.GetDouble("max_speed_kmh", 120.0) / 3.6;
  auto candidates =
      slim::ParseCandidateKind(flags.GetString("candidates", "lsh"));
  if (!candidates.ok()) {
    slim::tools::Flags::Fail(candidates.status().ToString());
  }
  config.candidates = *candidates;
  // Same defaults as slim_link, so a daemon session and a from-scratch
  // batch run agree byte for byte without extra flags (docs/SERVING.md).
  config.lsh.signature_spatial_level =
      static_cast<int>(flags.GetInt("lsh_level", 10));
  config.lsh.temporal_step_windows =
      static_cast<int>(flags.GetInt("lsh_step", 8));
  config.lsh.similarity_threshold = flags.GetDouble("lsh_threshold", 0.5);
  config.lsh.num_buckets =
      static_cast<size_t>(flags.GetInt("lsh_buckets", 4096));
  const std::string matcher = flags.GetString("matcher", "greedy");
  if (matcher == "hungarian") {
    config.matcher = slim::MatcherKind::kHungarian;
  } else if (matcher != "greedy") {
    slim::tools::Flags::Fail("unknown --matcher: " + matcher);
  }
  const std::string thr = flags.GetString("threshold", "gmm");
  if (thr == "gmm") {
    config.threshold_method = slim::ThresholdMethod::kGmmExpectedF1;
  } else if (thr == "otsu") {
    config.threshold_method = slim::ThresholdMethod::kOtsu;
  } else if (thr == "two_means") {
    config.threshold_method = slim::ThresholdMethod::kTwoMeans;
  } else if (thr == "none") {
    config.apply_stop_threshold = false;
  } else {
    slim::tools::Flags::Fail("unknown --threshold: " + thr);
  }
  config.threads = static_cast<int>(flags.GetInt("threads", 0));

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  slim::LinkageService service(config);
  slim::ServeOptions options;
  options.socket_path = socket_path;
  std::fprintf(stderr, "slim_serve %s listening on %s\n",
               slim::BuildGitDescribe(), socket_path.c_str());
  const slim::Status st = slim::RunServer(options, &service, &g_stop);
  if (!st.ok()) slim::tools::Flags::Fail(st.ToString());
  std::fprintf(stderr, "slim_serve: clean shutdown after epoch %d\n",
               service.linker().epoch());
  return 0;
}
