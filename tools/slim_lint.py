#!/usr/bin/env python3
"""slim_lint: SLIM-specific determinism and hygiene invariants.

Every PR since the pipeline went parallel has staked its correctness claim
on bit-identical links across thread counts, shard counts, and SIMD
kernels.  The compiler cannot see those invariants; this checker encodes
them as named, suppressible rules so the next refactor cannot silently
reintroduce nondeterminism.

Rules (catalog with rationale: docs/STATIC_ANALYSIS.md):

  SLIM-DET-001  No iteration over unordered_{map,set} in result-producing
                code (src/, tools/).  Hash-table iteration order depends
                on libstdc++ version, seed values, and insertion history;
                anything derived from it breaks the bit-identity contract.
                Use the dense/sorted structures (CSR HistoryStore,
                BinVocabulary, std::map, sorted vectors) instead.
  SLIM-DET-002  No ambient entropy: std::random_device, rand()/srand(),
                time(nullptr)-style seeding outside src/common/rng.
                All randomness flows through slim::Rng with an explicit
                seed so every run is replayable.
  SLIM-DET-003  No floating-point accumulation with unspecified order:
                std::reduce / std::transform_reduce over float/double,
                std::atomic<float|double>.  FP addition is not
                associative; reduction order must be fixed (sequential
                std::accumulate or the ordered shard merges in
                common/parallel).
  SLIM-DET-004  No locale-dependent numeric parse/format in parsers and
                writers: stod/stof family, strtod/strtof, atof, sscanf,
                imbue, setlocale.  A de_DE locale flips '.' and ','; use
                std::from_chars / std::to_chars (common/strings).
  SLIM-HYG-101  No raw new/new[]/malloc/calloc/realloc/free in src/.
                Core code owns memory through containers and
                unique_ptr/make_unique; raw allocation leaks on the error
                paths Status-based code takes routinely.
  SLIM-HYG-102  Every header carries the canonical include guard
                SLIM_<PATH>_H_ (path relative to the repo root, leading
                src/ stripped, uppercased, separators as '_').  Copy-paste
                guards silently make one of the two headers vanish from
                any TU that includes both.

Suppressions:
  // slim-lint: allow(SLIM-DET-001, <reason>)        this or next line
  // slim-lint: allow-file(SLIM-DET-001, <reason>)   whole file

A suppression without a reason is itself a finding (SLIM-LINT-000), as is
one that suppresses nothing.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Usage:
  tools/slim_lint.py                  # scan src/ tools/ bench/ tests/
  tools/slim_lint.py path...          # scan specific files/dirs
  tools/slim_lint.py --root DIR       # treat DIR as the repo root
  tools/slim_lint.py --list-rules
"""

import argparse
import os
import re
import sys

# ---------------------------------------------------------------------------
# Rule table
# ---------------------------------------------------------------------------

RULES = {
    "SLIM-DET-001": "iteration over unordered container in "
    "result-producing code (use dense/sorted structures)",
    "SLIM-DET-002": "ambient entropy source outside common/rng "
    "(use slim::Rng with an explicit seed)",
    "SLIM-DET-003": "floating-point accumulation with unspecified order "
    "(fix the reduction order)",
    "SLIM-DET-004": "locale-dependent numeric parse/format "
    "(use from_chars/to_chars via common/strings)",
    "SLIM-HYG-101": "raw allocation in core code "
    "(use containers or make_unique)",
    "SLIM-HYG-102": "header include guard missing or not canonical",
    "SLIM-LINT-000": "malformed or unused slim-lint suppression",
}

# Paths whose findings the rule applies to, as path-prefix tuples relative
# to the repo root.  Rules not listed apply everywhere scanned.
RULE_SCOPE = {
    # Result-producing code: the library and the CLI tools.  bench/ and
    # tests/ consume results; they may hash or count with unordered
    # containers freely.
    "SLIM-DET-001": ("src/", "tools/"),
    "SLIM-HYG-101": ("src/",),
}

# Files exempt from a rule (the rule's own implementation home).
RULE_EXEMPT_FILES = {
    "SLIM-DET-002": ("src/common/rng.h", "src/common/rng.cc"),
}

DEFAULT_SCAN_DIRS = ("src", "tools", "bench", "tests")
# Lint fixture files deliberately violate the rules.
DEFAULT_EXCLUDES = ("tests/lint/fixtures/",)

SUPPRESS_RE = re.compile(
    r"slim-lint:\s*(allow|allow-file)\(\s*(SLIM-[A-Z]+-\d+)\s*(?:,\s*([^)]*))?\)"
)

UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<"
)
# A name bound to an unordered container: locals, members, and (via the
# trailing [&*\s]* and the ')'/',' terminators) reference/pointer function
# parameters -- `const std::unordered_set<int>& seen)` registers `seen`.
UNORDERED_NAME_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;={]*>[&*\s]*"
    r"(?P<names>[A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*[;={(),]"
)
FOR_OPEN_RE = re.compile(r"\bfor\s*\(")
ITER_BEGIN_RE = re.compile(r"\b(?P<obj>[A-Za-z_]\w*)\s*\.\s*c?begin\s*\(")

DET002_RE = re.compile(
    r"\bstd::random_device\b|\brandom_device\s+\w|\bsrand\s*\(|"
    r"(?<![\w:.])rand\s*\(\s*\)|\btime\s*\(\s*(?:nullptr|NULL|0)\s*\)"
)
DET003_RE = re.compile(r"\bstd::(?:transform_)?reduce\s*[(<]")
DET003_ATOMIC_RE = re.compile(r"\bstd::atomic\s*<\s*(?:float|double)\b")
DET004_RE = re.compile(
    r"\bstd::sto(?:d|f|ld)\s*\(|\bstrto(?:d|f|ld)\s*\(|"
    r"(?<![\w:.])atof\s*\(|\bsscanf\s*\(|\.\s*imbue\s*\(|\bsetlocale\s*\("
)
HYG101_RE = re.compile(
    r"(?<![\w:.])(?:malloc|calloc|realloc|free)\s*\(|"
    r"(?<![\w.])\bnew\b(?!\s*\()"  # `new T`, `new T[n]`; not `->new(...)`
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving newlines.

    Keeps line/column positions stable so findings point at real code.
    Handles //, /* */, "...", '...' and the R"(...)"-style raw literals
    used in the tests.
    """
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c == "R" and text[i : i + 2] == 'R"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            end = n if end == -1 else end + len(m.group(1)) + 2
            seg = text[i:end]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = end
        elif c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(c + " " * (j - i - 2) + c if j - i >= 2 else c)
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


class FileLint:
    def __init__(self, relpath, text):
        self.relpath = relpath
        self.raw_lines = text.split("\n")
        self.code_lines = strip_comments_and_strings(text).split("\n")
        self.findings = []  # (line, rule, message)
        # rule -> set of line numbers with a line suppression, or "file"
        self.suppressions = {}
        self.used = set()  # (rule, line) pairs actually consumed
        self._collect_suppressions()

    def _collect_suppressions(self):
        for ln, line in enumerate(self.raw_lines, 1):
            for m in SUPPRESS_RE.finditer(line):
                kind, rule, reason = m.group(1), m.group(2), m.group(3)
                if rule not in RULES:
                    self.findings.append(
                        (ln, "SLIM-LINT-000", f"unknown rule id {rule!r}")
                    )
                    continue
                if not (reason or "").strip():
                    self.findings.append(
                        (ln, "SLIM-LINT-000",
                         f"suppression of {rule} carries no reason")
                    )
                    continue
                slot = self.suppressions.setdefault(rule, set())
                slot.add("file" if kind == "allow-file" else ln)

    def _suppressed(self, rule, line):
        slot = self.suppressions.get(rule, set())
        if "file" in slot:
            self.used.add((rule, "file"))
            return True
        # A line suppression covers its own line and the following line
        # (comment-above style).
        for cand in (line, line - 1):
            if cand in slot:
                self.used.add((rule, cand))
                return True
        return False

    def report(self, rule, line, message):
        if not self._suppressed(rule, line):
            self.findings.append((line, rule, message))

    def in_scope(self, rule):
        scope = RULE_SCOPE.get(rule)
        if scope is not None and not self.relpath.startswith(scope):
            return False
        if self.relpath in RULE_EXEMPT_FILES.get(rule, ()):
            return False
        return True

    # -- rule implementations ---------------------------------------------

    def check_det001(self):
        if not self.in_scope("SLIM-DET-001"):
            return
        # Names declared (or bound) with an unordered container type in
        # this file.  Member declarations count: `map_` in a header is
        # iterated from the matching .cc via `obj.map_` or plain `map_`.
        names = set()
        for code in self.code_lines:
            if "unordered_" not in code:
                continue
            for m in UNORDERED_NAME_DECL_RE.finditer(code):
                for nm in m.group("names").split(","):
                    names.add(nm.strip())
        # Headers are paired with their .cc: pick up names from the
        # sibling header so iteration in foo.cc over a member declared in
        # foo.h is caught.
        names |= self._sibling_header_unordered_names()
        if not names:
            return
        name_re = re.compile(
            r"(?:^|[^\w.])(?:[A-Za-z_]\w*\s*[.]\s*|->\s*)?(?P<n>%s)\b"
            % "|".join(re.escape(n) for n in sorted(names))
        )
        for ln, code in enumerate(self.code_lines, 1):
            for rng in self._range_for_exprs(code):
                if name_re.search(rng) or "unordered_" in rng:
                    self.report(
                        "SLIM-DET-001", ln,
                        f"range-for over unordered container ({rng.strip()!r})",
                    )
            for m in ITER_BEGIN_RE.finditer(code):
                if m.group("obj") in names:
                    self.report(
                        "SLIM-DET-001", ln,
                        f"iterator walk over unordered container "
                        f"{m.group('obj')!r}",
                    )

    @staticmethod
    def _range_for_exprs(code):
        """Yield the range expression of each range-for on this line.

        Walks to the close paren that balances `for (` and splits on the
        first colon at paren depth 1 (ignoring `::`).  Classic
        semicolon-fors yield nothing.
        """
        for m in FOR_OPEN_RE.finditer(code):
            depth, i = 1, m.end()
            colon = None
            semis = False
            while i < len(code) and depth:
                c = code[i]
                if c == "(" or c == "[" or c == "{":
                    depth += 1
                elif c == ")" or c == "]" or c == "}":
                    depth -= 1
                elif depth == 1 and c == ";":
                    semis = True
                elif (depth == 1 and c == ":" and colon is None
                      and code[i - 1] != ":"
                      and (i + 1 >= len(code) or code[i + 1] != ":")):
                    colon = i
                i += 1
            if depth == 0 and colon is not None and not semis:
                yield code[colon + 1 : i - 1]

    def _sibling_header_unordered_names(self):
        if not self.relpath.endswith(".cc"):
            return set()
        header = self.relpath[:-3] + ".h"
        path = os.path.join(self._root, header)
        if not os.path.isfile(path):
            return set()
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                code = strip_comments_and_strings(f.read())
        except OSError:
            return set()
        names = set()
        for m in UNORDERED_NAME_DECL_RE.finditer(code):
            for nm in m.group("names").split(","):
                names.add(nm.strip())
        return names

    def check_regex_rule(self, rule, regexes, what):
        if not self.in_scope(rule):
            return
        for ln, code in enumerate(self.code_lines, 1):
            for rx in regexes:
                m = rx.search(code)
                if m:
                    self.report(rule, ln, f"{what}: {m.group(0).strip()!r}")

    def check_hyg102(self):
        if not self.relpath.endswith(".h"):
            return
        rel = self.relpath
        if rel.startswith("src/"):
            rel = rel[len("src/"):]
        expected = "SLIM_" + re.sub(r"[^A-Za-z0-9]", "_", rel).upper() + "_"
        guard_line = None
        guard = None
        for ln, code in enumerate(self.code_lines, 1):
            s = code.strip()
            if s.startswith("#ifndef "):
                guard_line = ln
                guard = s.split(None, 1)[1].strip()
                break
            if s:  # first real code before any guard
                break
        if guard is None:
            self.report("SLIM-HYG-102", 1,
                        f"missing include guard (expected {expected})")
            return
        if guard != expected:
            self.report("SLIM-HYG-102", guard_line,
                        f"guard {guard} is not canonical "
                        f"(expected {expected})")
            return
        # #define must follow immediately.
        nxt = (self.code_lines[guard_line].strip()
               if guard_line < len(self.code_lines) else "")
        if nxt != f"#define {expected}":
            self.report("SLIM-HYG-102", guard_line + 1,
                        f"#define {expected} must follow the #ifndef")

    def check_unused_suppressions(self):
        for rule, slots in self.suppressions.items():
            for slot in slots:
                if (rule, slot) not in self.used:
                    ln = 1 if slot == "file" else slot
                    self.findings.append(
                        (ln, "SLIM-LINT-000",
                         f"suppression of {rule} matches no finding")
                    )

    def run(self, root):
        self._root = root
        self.check_det001()
        self.check_regex_rule("SLIM-DET-002", [DET002_RE],
                              "ambient entropy source")
        self.check_regex_rule("SLIM-DET-003", [DET003_RE, DET003_ATOMIC_RE],
                              "unordered floating-point reduction")
        self.check_regex_rule("SLIM-DET-004", [DET004_RE],
                              "locale-dependent numeric call")
        self.check_regex_rule("SLIM-HYG-101", [HYG101_RE], "raw allocation")
        self.check_hyg102()
        self.check_unused_suppressions()
        return sorted(self.findings)


def iter_source_files(root, paths, excludes):
    seen = set()
    for p in paths:
        ap = os.path.abspath(p)
        if os.path.isfile(ap):
            files = [ap]
        else:
            files = []
            for dirpath, dirnames, filenames in os.walk(ap):
                dirnames.sort()
                for fn in sorted(filenames):
                    if fn.endswith((".cc", ".h")):
                        files.append(os.path.join(dirpath, fn))
        for f in files:
            rel = os.path.relpath(f, root).replace(os.sep, "/")
            if rel in seen or any(rel.startswith(e) for e in excludes):
                continue
            seen.add(rel)
            yield rel, f


def main(argv):
    ap = argparse.ArgumentParser(prog="slim_lint", add_help=True)
    ap.add_argument("paths", nargs="*", help="files or directories")
    ap.add_argument("--root", default=None,
                    help="repo root (default: parent of this script)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--no-default-excludes", action="store_true",
                    help="also scan the lint fixture corpus")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULES):
            print(f"{rule}  {RULES[rule]}")
        return 0

    root = os.path.abspath(
        args.root
        or os.path.join(os.path.dirname(os.path.abspath(__file__)), os.pardir)
    )
    paths = args.paths or [
        os.path.join(root, d)
        for d in DEFAULT_SCAN_DIRS
        if os.path.isdir(os.path.join(root, d))
    ]
    excludes = () if args.no_default_excludes else DEFAULT_EXCLUDES

    total = 0
    nfiles = 0
    for rel, path in iter_source_files(root, paths, excludes):
        nfiles += 1
        try:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            print(f"{rel}: error: {e}", file=sys.stderr)
            return 2
        for ln, rule, message in FileLint(rel, text).run(root):
            print(f"{rel}:{ln}: [{rule}] {message}")
            total += 1
    print(
        f"slim_lint: {nfiles} files, {total} finding(s)",
        file=sys.stderr,
    )
    return 1 if total else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
