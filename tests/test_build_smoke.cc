// Build-wiring smoke test: the umbrella header plus a stock SlimConfig must
// carry a tiny workload through the whole pipeline (generate -> sample ->
// link -> evaluate). Exercises every library layer the CMake graph links —
// a target that compiles but mislinks, or a default that no longer runs end
// to end, fails here before any behavioural suite runs.
#include "slim.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(BuildSmoke, DefaultConfigLinksEndToEnd) {
  CabGeneratorOptions gen;
  gen.num_taxis = 12;
  gen.duration_days = 1.0;
  gen.record_interval_seconds = 600.0;
  const LocationDataset master = GenerateCabDataset(gen);
  ASSERT_GT(master.num_records(), 0u);

  PairSampleOptions sampling;
  sampling.entities_per_side = 8;
  sampling.intersection_ratio = 0.5;
  sampling.inclusion_probability = 0.6;
  sampling.seed = 3;
  auto sample = SampleLinkedPair(master, sampling);
  ASSERT_TRUE(sample.ok()) << sample.status().ToString();

  // The stock configuration, untouched: this is the contract README.md and
  // the quickstart advertise.
  const SlimConfig config;
  const SlimLinker linker(config);
  auto result = linker.Link(sample->a, sample->b);
  ASSERT_TRUE(result.ok()) << result.status().ToString();

  // Every layer left evidence of having run.
  EXPECT_GT(result->possible_pairs, 0u);                  // core/history
  EXPECT_LE(result->candidate_pairs, result->possible_pairs);  // lsh
  EXPECT_GT(result->stats.entity_pairs, 0u);              // core/similarity
  EXPECT_GE(result->links.size(), 1u);                    // match + threshold
  for (const LinkedEntityPair& link : result->links) {
    EXPECT_GT(link.score, 0.0);
  }

  // eval: the metrics layer accepts the links and the truth mapping.
  const LinkageQuality q = EvaluateLinks(result->links, sample->truth);
  EXPECT_GE(q.precision, 0.0);
  EXPECT_LE(q.precision, 1.0);
}

TEST(BuildSmoke, DefaultConfigMatchesDocumentedDefaults) {
  // Guards the doc-comment contract on SlimConfig (core/slim.h): paper
  // Sec. 5 pipeline defaults plus the deliberately coarse LSH operating
  // point. If a default changes, update the header comment and README too.
  const SlimConfig config;
  EXPECT_EQ(config.history.spatial_level, 12);
  EXPECT_EQ(config.history.window_seconds, 900);
  EXPECT_DOUBLE_EQ(config.similarity.b, 0.5);
  EXPECT_DOUBLE_EQ(config.similarity.proximity.max_speed_mps, 2000.0 / 60.0);
  EXPECT_EQ(config.candidates, CandidateKind::kLsh);
  EXPECT_EQ(config.grid.max_bin_entities, 0u);
  EXPECT_DOUBLE_EQ(config.lsh.similarity_threshold, 0.5);
  EXPECT_EQ(config.lsh.signature_spatial_level, 10);
  EXPECT_EQ(config.lsh.temporal_step_windows, 8);
  EXPECT_EQ(config.lsh.num_buckets, 4096u);
  EXPECT_EQ(config.threshold_method, ThresholdMethod::kGmmExpectedF1);
  EXPECT_TRUE(config.apply_stop_threshold);
  EXPECT_EQ(config.matcher, MatcherKind::kGreedy);
}

}  // namespace
}  // namespace slim
