#include "common/status.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryConstructorsCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(Status, EveryCodeHasAName) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IoError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
}

TEST(Result, HoldsValueOnSuccess) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatusOnFailure) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

Status FailingHelper() { return Status::IoError("disk on fire"); }

Status PropagatesViaMacro() {
  SLIM_RETURN_NOT_OK(FailingHelper());
  return Status::Ok();  // unreachable
}

TEST(Status, ReturnNotOkMacroPropagates) {
  const Status s = PropagatesViaMacro();
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace slim
