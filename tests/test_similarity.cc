// Tests of the similarity score S (Eq. 2), organised around the five
// desired properties of Sec. 3.1 plus Alg. 1's MFN alibi pass.
#include "core/similarity.h"

#include <cmath>

#include <gtest/gtest.h>

#include "test_util.h"

namespace slim {
namespace {

constexpr int64_t kWindow = 900;

// Anchor points inside the SF box (level-12 cells ~4.9 km of latitude).
const LatLng kHome{37.700, -122.450};
// ~10 km north: one level-12 cell of gap, so the minimum cell distance is
// ~5 km — positive (adjacent cells would give distance 0) yet well inside
// the 30 km runaway.
const LatLng kNearby{37.790, -122.450};
const LatLng kFarCity{38.600, -122.450};  // ~100 km north: alibi territory

HistoryConfig Config() {
  HistoryConfig c;
  c.spatial_level = 12;
  c.window_seconds = kWindow;
  return c;
}

SimilarityConfig Bare() {
  // Proximity-only scoring: no idf, no normalisation, no MFN.
  SimilarityConfig c;
  c.use_idf = false;
  c.use_normalization = false;
  c.use_mfn = false;
  return c;
}

// One record per listed (window, location).
LocationDataset MakeDataset(
    const char* name,
    const std::vector<std::pair<EntityId,
                                std::vector<std::pair<int, LatLng>>>>& spec) {
  LocationDataset ds(name);
  for (const auto& [entity, bins] : spec) {
    for (const auto& [w, loc] : bins) {
      ds.Add(entity, loc, static_cast<int64_t>(w) * kWindow + 450);
    }
  }
  ds.Finalize();
  return ds;
}

double ScorePair(const LocationDataset& e, const LocationDataset& i,
                 const SimilarityConfig& cfg, EntityId u, EntityId v,
                 SimilarityStats* stats_out = nullptr) {
  const LinkageContext ctx = LinkageContext::Build(e, i, Config());
  const SimilarityEngine engine(ctx, cfg);
  SimilarityStats stats;
  const double s = engine.Score(u, v, &stats);
  if (stats_out != nullptr) *stats_out = stats;
  return s;
}

// ---- Property 1: award matching of close time-location bins. ----

TEST(Similarity, ExactCoLocationScoresHigherThanNearby) {
  const auto e = MakeDataset("E", {{0, {{0, kHome}, {1, kHome}}}});
  const auto same = MakeDataset("I", {{0, {{0, kHome}, {1, kHome}}}});
  const auto near = MakeDataset("I", {{0, {{0, kNearby}, {1, kNearby}}}});
  const double s_same = ScorePair(e, same, Bare(), 0, 0);
  const double s_near = ScorePair(e, near, Bare(), 0, 0);
  EXPECT_GT(s_same, s_near);
  EXPECT_GT(s_near, 0.0);  // close bins still contribute positively
  // Two exact matches, proximity 1 each, no scaling -> score 2.
  EXPECT_NEAR(s_same, 2.0, 1e-9);
}

TEST(Similarity, MoreMatchingWindowsMeansHigherScore) {
  const auto e3 = MakeDataset(
      "E", {{0, {{0, kHome}, {1, kHome}, {2, kHome}}}});
  const auto i3 = MakeDataset(
      "I", {{0, {{0, kHome}, {1, kHome}, {2, kHome}}}});
  const auto i1 = MakeDataset("I", {{0, {{0, kHome}}}});
  EXPECT_GT(ScorePair(e3, i3, Bare(), 0, 0), ScorePair(e3, i1, Bare(), 0, 0));
}

// ---- Property 2: tolerate temporal asynchrony. ----

TEST(Similarity, UnmatchedWindowsDoNotPenalize) {
  // v2 has extra activity in windows u never saw; with scaling disabled the
  // score must be identical to the perfectly-aligned v1.
  const auto e = MakeDataset("E", {{0, {{0, kHome}, {1, kHome}}}});
  const auto aligned = MakeDataset("I", {{0, {{0, kHome}, {1, kHome}}}});
  const auto async = MakeDataset(
      "I",
      {{0, {{0, kHome}, {1, kHome}, {5, kNearby}, {6, kNearby}, {7, kHome}}}});
  EXPECT_DOUBLE_EQ(ScorePair(e, aligned, Bare(), 0, 0),
                   ScorePair(e, async, Bare(), 0, 0));
}

TEST(Similarity, DisjointWindowsScoreZeroNotNegative) {
  const auto e = MakeDataset("E", {{0, {{0, kHome}, {1, kHome}}}});
  const auto i = MakeDataset("I", {{0, {{10, kHome}, {11, kHome}}}});
  EXPECT_DOUBLE_EQ(ScorePair(e, i, Bare(), 0, 0), 0.0);
}

// ---- Property 3: penalize alibi time-location bins. ----

TEST(Similarity, AlibiWindowReducesScore) {
  const auto e = MakeDataset("E", {{0, {{0, kHome}, {1, kHome}}}});
  const auto clean = MakeDataset("I", {{0, {{0, kHome}}}});
  const auto alibi = MakeDataset("I", {{0, {{0, kHome}, {1, kFarCity}}}});
  SimilarityStats stats;
  const double s_clean = ScorePair(e, clean, Bare(), 0, 0);
  const double s_alibi = ScorePair(e, alibi, Bare(), 0, 0, &stats);
  EXPECT_LT(s_alibi, s_clean);
  EXPECT_GT(stats.alibi_pairs, 0u);
}

TEST(Similarity, PureAlibiPairScoresNegative) {
  const auto e = MakeDataset("E", {{0, {{0, kHome}}}});
  const auto i = MakeDataset("I", {{0, {{0, kFarCity}}}});
  EXPECT_LT(ScorePair(e, i, Bare(), 0, 0), 0.0);
}

// ---- Alg. 1's MFN pass: catch alibis that MNN pairing misses. ----

TEST(Similarity, MfnCatchesAlibiHiddenByNearestPairing) {
  // The paper's example: u has one bin; v has a close bin AND a far (alibi)
  // bin in the same window. MNN alone pairs only the close one.
  const auto e = MakeDataset("E", {{0, {{0, kHome}}}});
  const auto i = MakeDataset("I", {{0, {{0, kHome}, {0, kFarCity}}}});

  SimilarityConfig no_mfn = Bare();
  SimilarityConfig with_mfn = Bare();
  with_mfn.use_mfn = true;

  const double s_plain = ScorePair(e, i, no_mfn, 0, 0);
  SimilarityStats stats;
  const double s_mfn = ScorePair(e, i, with_mfn, 0, 0, &stats);
  EXPECT_DOUBLE_EQ(s_plain, 1.0);  // only the exact match counted
  EXPECT_LT(s_mfn, s_plain);       // alibi pulled the score down
  EXPECT_GT(stats.alibi_pairs, 0u);
}

TEST(Similarity, MfnAddsNothingWhenNoAlibiExists) {
  const auto e = MakeDataset("E", {{0, {{0, kHome}}}});
  const auto i = MakeDataset("I", {{0, {{0, kHome}, {0, kNearby}}}});
  SimilarityConfig no_mfn = Bare();
  SimilarityConfig with_mfn = Bare();
  with_mfn.use_mfn = true;
  // The furthest pair is within the runaway distance: delta >= 0, skipped.
  EXPECT_DOUBLE_EQ(ScorePair(e, i, no_mfn, 0, 0),
                   ScorePair(e, i, with_mfn, 0, 0));
}

// ---- Property 4: award infrequent cells (IDF). ----

TEST(Similarity, RareBinsContributeMoreThanCommonBins) {
  // 10 entities per side; entity 0 visits a unique cell, entities 1..9 all
  // share one cell. The rare-cell pair must outscore a common-cell pair.
  std::vector<std::pair<EntityId, std::vector<std::pair<int, LatLng>>>> spec;
  spec.push_back({0, {{0, kFarCity}}});
  for (EntityId u = 1; u <= 9; ++u) spec.push_back({u, {{0, kHome}}});
  const auto e = MakeDataset("E", spec);
  const auto i = MakeDataset("I", spec);

  SimilarityConfig cfg = Bare();
  cfg.use_idf = true;
  const double s_rare = ScorePair(e, i, cfg, 0, 0);
  const double s_common = ScorePair(e, i, cfg, 1, 1);
  EXPECT_GT(s_rare, s_common);
  // Exact values: idf_rare = log(10/1), idf_common = log(10/9).
  EXPECT_NEAR(s_rare, std::log(10.0), 1e-9);
  EXPECT_NEAR(s_common, std::log(10.0 / 9.0), 1e-9);
}

TEST(Similarity, CrossDatasetIdfTakesTheMinimum) {
  // The cell is rare in E (1 of 3) but ubiquitous in I (3 of 3): the
  // contribution must use I's lower idf.
  const auto e = MakeDataset(
      "E", {{0, {{0, kHome}}}, {1, {{0, kNearby}}}, {2, {{0, kFarCity}}}});
  const auto i = MakeDataset(
      "I", {{0, {{0, kHome}}}, {1, {{0, kHome}}}, {2, {{0, kHome}}}});
  SimilarityConfig cfg = Bare();
  cfg.use_idf = true;
  // idf(E) = log(3), idf(I) = log(1) = 0 -> min = 0 -> score 0.
  EXPECT_NEAR(ScorePair(e, i, cfg, 0, 0), 0.0, 1e-12);
}

// ---- Property 5: normalize by history size. ----

TEST(Similarity, LongHistoriesAreNormalizedDown) {
  // Entities 0 (short) and 1 (long) have the same single match with their
  // counterpart; with b = 1 the long history's score shrinks.
  const auto e = MakeDataset(
      "E", {{0, {{0, kHome}}},
            {1, {{0, kHome}, {10, kNearby}, {11, kNearby}, {12, kNearby},
                 {13, kNearby}, {14, kNearby}, {15, kNearby}}}});
  const auto i = MakeDataset("I", {{0, {{0, kHome}}}, {1, {{0, kHome}}}});

  SimilarityConfig cfg = Bare();
  cfg.use_normalization = true;
  cfg.b = 1.0;
  const double s_short = ScorePair(e, i, cfg, 0, 0);
  const double s_long = ScorePair(e, i, cfg, 1, 1);
  EXPECT_GT(s_short, s_long);

  // With b = 0 the normalisation vanishes and both pairs tie.
  cfg.b = 0.0;
  EXPECT_DOUBLE_EQ(ScorePair(e, i, cfg, 0, 0), ScorePair(e, i, cfg, 1, 1));
}

// ---- Pairing ablation and engine mechanics. ----

TEST(Similarity, AllPairsOvercountsSharedWindows) {
  // u and v both have 2 co-located bins in one window: MNN counts 2 pairs,
  // the Cartesian product counts 4.
  const auto e = MakeDataset("E", {{0, {{0, kHome}, {0, kNearby}}}});
  const auto i = MakeDataset("I", {{0, {{0, kHome}, {0, kNearby}}}});
  SimilarityConfig mnn = Bare();
  SimilarityConfig all = Bare();
  all.pairing = PairingKind::kAllPairs;
  EXPECT_GT(ScorePair(e, i, all, 0, 0), ScorePair(e, i, mnn, 0, 0));
}

TEST(Similarity, ScoreIsSymmetricUnderSideSwap) {
  const auto e = MakeDataset(
      "E", {{0, {{0, kHome}, {1, kNearby}, {3, kHome}}},
            {1, {{0, kFarCity}}}});
  const auto i = MakeDataset(
      "I", {{5, {{0, kHome}, {1, kHome}, {2, kNearby}}},
            {6, {{3, kNearby}}}});
  const LinkageContext fwd_ctx = LinkageContext::Build(e, i, Config());
  const LinkageContext rev_ctx = LinkageContext::Build(i, e, Config());
  SimilarityConfig cfg;  // full scoring, defaults
  const SimilarityEngine fwd(fwd_ctx, cfg);
  const SimilarityEngine rev(rev_ctx, cfg);
  SimilarityStats st;
  for (EntityId u : {0, 1}) {
    for (EntityId v : {5, 6}) {
      EXPECT_NEAR(fwd.Score(u, v, &st), rev.Score(v, u, &st), 1e-12)
          << "pair " << u << "," << v;
    }
  }
}

TEST(Similarity, UnknownEntitiesScoreZero) {
  const auto e = MakeDataset("E", {{0, {{0, kHome}}}});
  const auto i = MakeDataset("I", {{0, {{0, kHome}}}});
  const LinkageContext ctx = LinkageContext::Build(e, i, Config());
  const SimilarityEngine engine(ctx, SimilarityConfig{});
  SimilarityStats st;
  EXPECT_DOUBLE_EQ(engine.Score(99, 0, &st), 0.0);
  EXPECT_DOUBLE_EQ(engine.Score(0, 99, &st), 0.0);
}

TEST(Similarity, RecordComparisonCounterMatchesBinProducts) {
  // Window 0: 2x2 bins; window 1: 1x1 -> 5 comparisons.
  const auto e = MakeDataset(
      "E", {{0, {{0, kHome}, {0, kNearby}, {1, kHome}}}});
  const auto i = MakeDataset(
      "I", {{0, {{0, kHome}, {0, kFarCity}, {1, kNearby}}}});
  SimilarityStats stats;
  ScorePair(e, i, Bare(), 0, 0, &stats);
  EXPECT_EQ(stats.record_comparisons, 5u);
  EXPECT_EQ(stats.entity_pairs, 1u);
}

TEST(Similarity, SelfScoreIsPositiveAndMaximalForAnchoredEntities) {
  Rng rng(9);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 6; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 10, kWindow);
  // Symmetric context: the dataset on both sides, so S(u, u) is the self
  // score the auto-tuner relies on.
  const LinkageContext ctx = LinkageContext::Build(ds, ds, Config());
  const SimilarityEngine engine(ctx, SimilarityConfig{});
  SimilarityStats st;
  for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
    const double self = engine.ScoreIndexed(u, u, &st);
    EXPECT_GT(self, 0.0);
    for (EntityIdx v = 0; v < ctx.store_i.size(); ++v) {
      if (v == u) continue;
      EXPECT_GE(self, engine.ScoreIndexed(u, v, &st) - 1e-9);
    }
  }
}

}  // namespace
}  // namespace slim
