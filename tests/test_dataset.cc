#include "data/dataset.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

LocationDataset SmallDataset() {
  LocationDataset ds("t");
  ds.Add(2, {37.1, -122.1}, 300);
  ds.Add(1, {37.2, -122.2}, 100);
  ds.Add(2, {37.3, -122.3}, 100);
  ds.Add(1, {37.4, -122.4}, 200);
  ds.Add(3, {37.5, -122.5}, 50);
  ds.Finalize();
  return ds;
}

TEST(LocationDataset, FinalizeSortsByEntityThenTime) {
  const LocationDataset ds = SmallDataset();
  const auto& r = ds.records();
  ASSERT_EQ(r.size(), 5u);
  EXPECT_EQ(r[0].entity, 1);
  EXPECT_EQ(r[0].timestamp, 100);
  EXPECT_EQ(r[1].entity, 1);
  EXPECT_EQ(r[1].timestamp, 200);
  EXPECT_EQ(r[2].entity, 2);
  EXPECT_EQ(r[2].timestamp, 100);
  EXPECT_EQ(r[4].entity, 3);
}

TEST(LocationDataset, EntityIdsSortedAndCounted) {
  const LocationDataset ds = SmallDataset();
  EXPECT_EQ(ds.num_entities(), 3u);
  EXPECT_EQ(ds.entity_ids(), (std::vector<EntityId>{1, 2, 3}));
}

TEST(LocationDataset, RecordsOfReturnsContiguousSpan) {
  const LocationDataset ds = SmallDataset();
  const auto span = ds.RecordsOf(2);
  ASSERT_EQ(span.size(), 2u);
  EXPECT_EQ(span[0].timestamp, 100);
  EXPECT_EQ(span[1].timestamp, 300);
  EXPECT_TRUE(ds.RecordsOf(99).empty());
}

TEST(LocationDataset, ContainsEntity) {
  const LocationDataset ds = SmallDataset();
  EXPECT_TRUE(ds.ContainsEntity(1));
  EXPECT_FALSE(ds.ContainsEntity(42));
}

TEST(LocationDataset, TimeRange) {
  const LocationDataset ds = SmallDataset();
  const auto [lo, hi] = ds.TimeRange();
  EXPECT_EQ(lo, 50);
  EXPECT_EQ(hi, 300);
}

TEST(LocationDataset, AvgRecordsPerEntity) {
  const LocationDataset ds = SmallDataset();
  EXPECT_NEAR(ds.AvgRecordsPerEntity(), 5.0 / 3.0, 1e-12);
}

TEST(LocationDataset, FilterMinRecordsDropsSparseEntities) {
  LocationDataset ds = SmallDataset();
  const size_t removed = ds.FilterMinRecords(2);
  EXPECT_EQ(removed, 1u);  // entity 3 had one record
  EXPECT_EQ(ds.num_entities(), 2u);
  EXPECT_FALSE(ds.ContainsEntity(3));
  EXPECT_EQ(ds.num_records(), 4u);
}

TEST(LocationDataset, FilterMinRecordsKeepsEverythingAtOne) {
  LocationDataset ds = SmallDataset();
  EXPECT_EQ(ds.FilterMinRecords(1), 0u);
  EXPECT_EQ(ds.num_entities(), 3u);
}

TEST(LocationDataset, FromRecordsFinalizes) {
  std::vector<Record> recs = {{7, {1.0, 2.0}, 10}, {7, {1.0, 2.0}, 5}};
  const LocationDataset ds = LocationDataset::FromRecords("x", recs);
  EXPECT_TRUE(ds.finalized());
  EXPECT_EQ(ds.records()[0].timestamp, 5);
  EXPECT_EQ(ds.name(), "x");
}

TEST(LocationDataset, EmptyDatasetBehaves) {
  LocationDataset ds("empty");
  ds.Finalize();
  EXPECT_EQ(ds.num_entities(), 0u);
  EXPECT_EQ(ds.num_records(), 0u);
  EXPECT_DOUBLE_EQ(ds.AvgRecordsPerEntity(), 0.0);
}

TEST(LocationDataset, AddAfterFinalizeRequiresRefinalize) {
  LocationDataset ds = SmallDataset();
  ds.Add(9, {37.0, -122.0}, 1);
  EXPECT_FALSE(ds.finalized());
  ds.Finalize();
  EXPECT_EQ(ds.num_entities(), 4u);
}

TEST(LocationDataset, DeathOnUnfinalizedRead) {
  LocationDataset ds("u");
  ds.Add(1, {0, 0}, 0);
  EXPECT_DEATH((void)ds.records(), "finalized");
}

}  // namespace
}  // namespace slim
