// Shared helpers for the SLIM test suite.
#ifndef SLIM_TESTS_TEST_UTIL_H_
#define SLIM_TESTS_TEST_UTIL_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "geo/latlng.h"

namespace slim::testing {

/// San Francisco-ish bounding box used across tests.
inline constexpr double kBoxLatLo = 37.60;
inline constexpr double kBoxLatHi = 37.81;
inline constexpr double kBoxLngLo = -122.52;
inline constexpr double kBoxLngHi = -122.38;

inline LatLng RandomPointInBox(Rng* rng) {
  return LatLng{rng->NextDouble(kBoxLatLo, kBoxLatHi),
                rng->NextDouble(kBoxLngLo, kBoxLngHi)};
}

/// A dataset where every entity sits at one fixed anchor point and emits
/// one record per window over [0, windows). Useful for exact-score tests.
inline LocationDataset MakeAnchoredDataset(
    const std::vector<LatLng>& anchors, int windows, int64_t window_seconds,
    const char* name = "anchored") {
  LocationDataset ds(name);
  for (size_t e = 0; e < anchors.size(); ++e) {
    for (int w = 0; w < windows; ++w) {
      ds.Add(static_cast<EntityId>(e), anchors[e],
             static_cast<int64_t>(w) * window_seconds + window_seconds / 2);
    }
  }
  ds.Finalize();
  return ds;
}

}  // namespace slim::testing

#endif  // SLIM_TESTS_TEST_UTIL_H_
