#include "data/dataset_io.h"

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <thread>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/sbin.h"

namespace slim {
namespace {

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_dsio_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  static LocationDataset SampleDataset() {
    LocationDataset ds("sample");
    ds.Add(1, {37.7749000, -122.4194000}, 1000);
    ds.Add(2, {-33.8568000, 151.2153000}, 2000);
    ds.Add(1, {37.7750000, -122.4190000}, 1500);
    ds.Finalize();
    return ds;
  }

  std::filesystem::path dir_;
};

TEST(ParseDatasetFormat, AcceptsKnownNamesRejectsOthers) {
  EXPECT_EQ(ParseDatasetFormat("auto").value(), DatasetFormat::kAuto);
  EXPECT_EQ(ParseDatasetFormat("csv").value(), DatasetFormat::kCsv);
  EXPECT_EQ(ParseDatasetFormat("sbin").value(), DatasetFormat::kSbin);
  EXPECT_FALSE(ParseDatasetFormat("parquet").ok());
  EXPECT_FALSE(ParseDatasetFormat("").ok());
  EXPECT_FALSE(ParseDatasetFormat("CSV").ok());
}

TEST(DatasetFormatNames, RoundTrip) {
  EXPECT_STREQ(DatasetFormatName(DatasetFormat::kAuto), "auto");
  EXPECT_STREQ(DatasetFormatName(DatasetFormat::kCsv), "csv");
  EXPECT_STREQ(DatasetFormatName(DatasetFormat::kSbin), "sbin");
}

TEST_F(DatasetIoTest, RawCoordinateValidationContract) {
  EXPECT_TRUE(RawCoordinateInRange(0.0, 0.0));
  EXPECT_TRUE(RawCoordinateInRange(90.0, 180.0));
  EXPECT_TRUE(RawCoordinateInRange(-90.0, -180.0));
  EXPECT_FALSE(RawCoordinateInRange(90.5, 0.0));
  EXPECT_FALSE(RawCoordinateInRange(0.0, 180.5));
  EXPECT_FALSE(RawCoordinateInRange(0.0, 360.0));  // the old lenient bound
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(RawCoordinateInRange(nan, 0.0));
  EXPECT_FALSE(RawCoordinateInRange(0.0, inf));
}

TEST_F(DatasetIoTest, SniffDetectsSbinAndCsvRegardlessOfExtension) {
  const LocationDataset ds = SampleDataset();
  // Deliberately misleading extensions: content wins.
  const std::string sbin_as_csv = Path("actually_sbin.csv");
  const std::string csv_as_bin = Path("actually_csv.bin");
  ASSERT_TRUE(WriteSbin(ds, sbin_as_csv).ok());
  ASSERT_TRUE(WriteCsv(ds, csv_as_bin).ok());
  EXPECT_EQ(SniffDatasetFormat(sbin_as_csv).value(), DatasetFormat::kSbin);
  EXPECT_EQ(SniffDatasetFormat(csv_as_bin).value(), DatasetFormat::kCsv);

  auto a = ReadDataset(sbin_as_csv, "a");
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  auto b = ReadDataset(csv_as_bin, "b");
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->records(), b->records());
  EXPECT_EQ(a->records(), ds.records());
}

TEST_F(DatasetIoTest, ExplicitFormatOverridesSniffing) {
  const LocationDataset ds = SampleDataset();
  const std::string csv_path = Path("data.csv");
  ASSERT_TRUE(WriteCsv(ds, csv_path).ok());
  DatasetIoOptions opt;
  opt.format = DatasetFormat::kSbin;
  auto r = ReadDataset(csv_path, "x", opt);
  ASSERT_FALSE(r.ok());  // a CSV file is not a valid SBIN file
  EXPECT_NE(r.status().message().find("magic"), std::string::npos)
      << r.status().message();
}

TEST_F(DatasetIoTest, WriteAutoPicksFormatByExtension) {
  const LocationDataset ds = SampleDataset();
  const std::string sbin_path = Path("out.sbin");
  const std::string csv_path = Path("out.csv");
  ASSERT_TRUE(WriteDataset(ds, sbin_path).ok());
  ASSERT_TRUE(WriteDataset(ds, csv_path).ok());
  EXPECT_EQ(SniffDatasetFormat(sbin_path).value(), DatasetFormat::kSbin);
  EXPECT_EQ(SniffDatasetFormat(csv_path).value(), DatasetFormat::kCsv);

  std::ifstream in(csv_path);
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_EQ(first_line, "entity_id,lat,lng,timestamp");
}

TEST_F(DatasetIoTest, WriteExplicitFormatIgnoresExtension) {
  const LocationDataset ds = SampleDataset();
  const std::string path = Path("binary.csv");
  ASSERT_TRUE(WriteDataset(ds, path, DatasetFormat::kSbin).ok());
  EXPECT_EQ(SniffDatasetFormat(path).value(), DatasetFormat::kSbin);
}

TEST_F(DatasetIoTest, MissingFileIsIoError) {
  auto r = ReadDataset(Path("missing.any"), "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(DatasetIoTest, AutoDetectionWorksOnANonSeekablePipe) {
  // The sniff must not consume bytes from the input: auto-detection reads
  // once and inspects the buffer, so `slim_link --a <(zcat a.csv.gz)`
  // works with the default --format auto.
  const std::string fifo = Path("pipe.csv");
  ASSERT_EQ(::mkfifo(fifo.c_str(), 0600), 0);
  std::thread writer([&] {
    std::ofstream out(fifo);  // blocks until the reader opens
    out << "entity_id,lat,lng,timestamp\n";
    out << "1,37.0,-122.0,100\n";
  });
  auto r = ReadDataset(fifo, "pipe");  // default options: kAuto
  writer.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->num_records(), 1u);
  EXPECT_EQ(r->records()[0].entity, 1);
}

TEST_F(DatasetIoTest, IoThreadsOptionIsHonoredAndDeterministic) {
  const LocationDataset ds = SampleDataset();
  const std::string path = Path("threads.csv");
  ASSERT_TRUE(WriteCsv(ds, path).ok());
  DatasetIoOptions serial;
  serial.io_threads = 1;
  DatasetIoOptions parallel;
  parallel.io_threads = 8;
  auto a = ReadDataset(path, "a", serial);
  auto b = ReadDataset(path, "b", parallel);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records(), b->records());
}

}  // namespace
}  // namespace slim
