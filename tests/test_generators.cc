#include "data/cab_generator.h"
#include "data/checkin_generator.h"

#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "geo/cell_id.h"
#include "geo/latlng.h"

namespace slim {
namespace {

CabGeneratorOptions SmallCab() {
  CabGeneratorOptions opt;
  opt.num_taxis = 10;
  opt.duration_days = 0.5;
  opt.record_interval_seconds = 120.0;
  return opt;
}

TEST(CabGenerator, ProducesAllTaxis) {
  const LocationDataset ds = GenerateCabDataset(SmallCab());
  EXPECT_EQ(ds.num_entities(), 10u);
}

TEST(CabGenerator, RecordCountNearExpectation) {
  const CabGeneratorOptions opt = SmallCab();
  const LocationDataset ds = GenerateCabDataset(opt);
  // Records accrue only during the on-duty fraction of the timeline.
  const double duty_fraction =
      opt.duty_hours_mean / (opt.duty_hours_mean + opt.rest_hours_mean);
  const double expected = opt.duration_days * 86400.0 /
                          opt.record_interval_seconds * duty_fraction;
  EXPECT_NEAR(ds.AvgRecordsPerEntity(), expected, expected * 0.30);
}

TEST(CabGenerator, AlwaysOnFleetWhenRestDisabled) {
  CabGeneratorOptions opt = SmallCab();
  opt.rest_hours_mean = 0.0;
  const LocationDataset ds = GenerateCabDataset(opt);
  const double expected =
      opt.duration_days * 86400.0 / opt.record_interval_seconds;
  EXPECT_NEAR(ds.AvgRecordsPerEntity(), expected, expected * 0.15);
}

TEST(CabGenerator, DutyCyclingCreatesSilentGaps) {
  const CabGeneratorOptions opt = SmallCab();
  const LocationDataset ds = GenerateCabDataset(opt);
  // At least one taxi should show a gap much longer than the sampling
  // interval (an off-duty rest).
  bool found_gap = false;
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    for (size_t k = 1; k < recs.size(); ++k) {
      if (recs[k].timestamp - recs[k - 1].timestamp >
          static_cast<int64_t>(10 * opt.record_interval_seconds)) {
        found_gap = true;
        break;
      }
    }
    if (found_gap) break;
  }
  EXPECT_TRUE(found_gap);
}

TEST(CabGenerator, RecordsStayInsideCityBox) {
  const CabGeneratorOptions opt = SmallCab();
  const LocationDataset ds = GenerateCabDataset(opt);
  for (const Record& r : ds.records()) {
    EXPECT_GE(r.location.lat_deg, opt.lat_lo);
    EXPECT_LE(r.location.lat_deg, opt.lat_hi);
    EXPECT_GE(r.location.lng_deg, opt.lng_lo);
    EXPECT_LE(r.location.lng_deg, opt.lng_hi);
  }
}

TEST(CabGenerator, TimestampsInsideDuration) {
  const CabGeneratorOptions opt = SmallCab();
  const LocationDataset ds = GenerateCabDataset(opt);
  const auto [lo, hi] = ds.TimeRange();
  EXPECT_GE(lo, opt.start_epoch);
  EXPECT_LE(hi, opt.start_epoch +
                    static_cast<int64_t>(opt.duration_days * 86400.0));
}

TEST(CabGenerator, MovementIsPhysicallyConsistent) {
  // Consecutive records of one taxi must respect speed limits (plus GPS
  // noise): this is the property alibi detection relies on.
  CabGeneratorOptions opt = SmallCab();
  opt.gps_noise_meters = 0.0;
  const LocationDataset ds = GenerateCabDataset(opt);
  const double max_speed = opt.max_speed_kmh / 3.6;  // m/s
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    for (size_t k = 1; k < recs.size(); ++k) {
      const double dt =
          static_cast<double>(recs[k].timestamp - recs[k - 1].timestamp);
      if (dt <= 0) continue;
      const double dd =
          HaversineMeters(recs[k - 1].location, recs[k].location);
      EXPECT_LE(dd / dt, max_speed * 1.05)
          << "taxi " << e << " jumped " << dd << " m in " << dt << " s";
    }
  }
}

TEST(CabGenerator, DeterministicForSeed) {
  const LocationDataset a = GenerateCabDataset(SmallCab());
  const LocationDataset b = GenerateCabDataset(SmallCab());
  EXPECT_EQ(a.records(), b.records());
}

TEST(CabGenerator, SeedChangesOutput) {
  CabGeneratorOptions opt = SmallCab();
  const LocationDataset a = GenerateCabDataset(opt);
  opt.seed = 1000;
  const LocationDataset b = GenerateCabDataset(opt);
  EXPECT_NE(a.records(), b.records());
}

TEST(CabGenerator, SpatialSkewFromHotspots) {
  // With hotspot bias on, cell occupancy must be visibly skewed: the top
  // cell should hold far more than a uniform share of records.
  const LocationDataset ds = GenerateCabDataset(SmallCab());
  std::unordered_map<uint64_t, size_t> counts;
  for (const Record& r : ds.records()) {
    ++counts[CellId::FromLatLng(r.location, 12).raw()];
  }
  size_t top = 0;
  for (const auto& [cell, c] : counts) top = std::max(top, c);
  const double uniform_share =
      static_cast<double>(ds.num_records()) /
      static_cast<double>(counts.size());
  EXPECT_GT(static_cast<double>(top), 2.0 * uniform_share);
}

CheckinGeneratorOptions SmallCheckin() {
  CheckinGeneratorOptions opt;
  opt.num_users = 300;
  opt.num_cities = 8;
  return opt;
}

TEST(CheckinGenerator, SparsePerUserRecords) {
  const CheckinGeneratorOptions opt = SmallCheckin();
  const LocationDataset ds = GenerateCheckinDataset(opt);
  EXPECT_NEAR(ds.AvgRecordsPerEntity(), opt.mean_checkins,
              opt.mean_checkins * 0.2);
}

TEST(CheckinGenerator, MostUsersPresent) {
  const LocationDataset ds = GenerateCheckinDataset(SmallCheckin());
  // Poisson(24) almost never yields 0 check-ins; nearly all users exist.
  EXPECT_GE(ds.num_entities(), 295u);
}

TEST(CheckinGenerator, VenuesAreSharedAcrossUsers) {
  // Popular venues must be reused by many users (this is what gives the
  // IDF term its meaning). Count distinct users per fine cell.
  const LocationDataset ds = GenerateCheckinDataset(SmallCheckin());
  std::unordered_map<uint64_t, std::unordered_set<EntityId>> users_per_cell;
  for (const Record& r : ds.records()) {
    users_per_cell[CellId::FromLatLng(r.location, 16).raw()].insert(r.entity);
  }
  size_t max_users = 0;
  for (const auto& [cell, users] : users_per_cell) {
    max_users = std::max(max_users, users.size());
  }
  EXPECT_GE(max_users, 5u);
}

TEST(CheckinGenerator, TimestampsSpanThePeriod) {
  const CheckinGeneratorOptions opt = SmallCheckin();
  const LocationDataset ds = GenerateCheckinDataset(opt);
  const auto [lo, hi] = ds.TimeRange();
  EXPECT_GE(lo, opt.start_epoch);
  EXPECT_LE(hi, opt.start_epoch +
                    static_cast<int64_t>(opt.duration_days * 86400.0));
  // Spread: the range should cover most of the period.
  EXPECT_GT(hi - lo, static_cast<int64_t>(opt.duration_days * 86400.0 * 0.9));
}

TEST(CheckinGenerator, UsersAreCityLocal) {
  // A non-travelling user's checkins should cluster within city radius
  // (plus noise). Verify the median user spread is city-scale, not global.
  const CheckinGeneratorOptions opt = SmallCheckin();
  const LocationDataset ds = GenerateCheckinDataset(opt);
  size_t local_users = 0, counted = 0;
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    if (recs.size() < 3) continue;
    ++counted;
    double max_d = 0.0;
    for (size_t i = 1; i < recs.size(); ++i) {
      max_d = std::max(
          max_d, HaversineMeters(recs[0].location, recs[i].location));
    }
    if (max_d < 4.0 * opt.city_radius_meters) ++local_users;
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(static_cast<double>(local_users) / static_cast<double>(counted),
            0.7);
}

TEST(CheckinGenerator, DeterministicForSeed) {
  const LocationDataset a = GenerateCheckinDataset(SmallCheckin());
  const LocationDataset b = GenerateCheckinDataset(SmallCheckin());
  EXPECT_EQ(a.records(), b.records());
}

}  // namespace
}  // namespace slim
