#include "eval/robustness.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/slim.h"
#include "data/commute_generator.h"
#include "data/sampler.h"
#include "eval/metrics.h"
#include "geo/latlng.h"

namespace slim {
namespace {

// One small commute-workload linkage experiment, generated once: dense,
// distinctive traces whose baseline linkage is (near-)perfect, so every
// quality loss in these tests is attributable to the degradation applied.
const LocationDataset& Master() {
  static const LocationDataset ds = [] {
    CommuteGeneratorOptions opt;
    opt.num_commuters = 40;
    opt.duration_days = 5.0;
    return GenerateCommuteDataset(opt);
  }();
  return ds;
}

const LinkedPairSample& Pair() {
  static const LinkedPairSample sample = [] {
    PairSampleOptions opt;
    opt.seed = 7;
    auto s = SampleLinkedPair(Master(), opt);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return *std::move(s);
  }();
  return sample;
}

TEST(DegradeDataset, IdentitySpecIsANoOp) {
  const DegradationSpec identity;
  EXPECT_TRUE(IsIdentityDegradation(identity));
  const LocationDataset out = DegradeDataset(Master(), identity);
  EXPECT_EQ(out.records(), Master().records());
}

TEST(DegradeDataset, NonIdentitySpecsAreDetected) {
  DegradationSpec spec;
  spec.gps_noise_meters = 10.0;
  EXPECT_FALSE(IsIdentityDegradation(spec));
  spec = DegradationSpec();
  spec.record_keep_probability = 0.9;
  EXPECT_FALSE(IsIdentityDegradation(spec));
  spec = DegradationSpec();
  spec.entity_keep_fraction = 0.9;
  EXPECT_FALSE(IsIdentityDegradation(spec));
  spec = DegradationSpec();
  spec.truncate_keep_fraction = 0.9;
  EXPECT_FALSE(IsIdentityDegradation(spec));
}

TEST(DegradeDataset, DeterministicPerSeed) {
  DegradationSpec spec;
  spec.gps_noise_meters = 50.0;
  spec.record_keep_probability = 0.5;
  const LocationDataset a = DegradeDataset(Master(), spec);
  const LocationDataset b = DegradeDataset(Master(), spec);
  EXPECT_EQ(a.records(), b.records());
  spec.seed += 1;
  const LocationDataset c = DegradeDataset(Master(), spec);
  EXPECT_NE(a.records(), c.records());
}

TEST(DegradeDataset, TruncationKeepsPerEntityPrefix) {
  DegradationSpec spec;
  spec.truncate_keep_fraction = 0.5;
  const LocationDataset out = DegradeDataset(Master(), spec);
  EXPECT_EQ(out.num_entities(), Master().num_entities());
  for (EntityId e : Master().entity_ids()) {
    const auto full = Master().RecordsOf(e);
    const auto kept = out.RecordsOf(e);
    const size_t expect = static_cast<size_t>(
        std::ceil(0.5 * static_cast<double>(full.size())));
    ASSERT_EQ(kept.size(), expect) << "entity " << e;
    for (size_t k = 0; k < kept.size(); ++k) {
      EXPECT_EQ(kept[k], full[k]) << "entity " << e << " record " << k;
    }
  }
}

TEST(DegradeDataset, EntityDropKeepsExactCount) {
  DegradationSpec spec;
  spec.entity_keep_fraction = 0.4;
  const LocationDataset out = DegradeDataset(Master(), spec);
  const size_t expect = static_cast<size_t>(std::ceil(
      0.4 * static_cast<double>(Master().num_entities())));
  EXPECT_EQ(out.num_entities(), expect);
  // Survivors keep their full, unmodified histories.
  for (EntityId e : out.entity_ids()) {
    const auto full = Master().RecordsOf(e);
    const auto kept = out.RecordsOf(e);
    ASSERT_EQ(kept.size(), full.size()) << "entity " << e;
    for (size_t k = 0; k < kept.size(); ++k) EXPECT_EQ(kept[k], full[k]);
  }
}

TEST(DegradeDataset, DownsampleKeepsApproximateFraction) {
  DegradationSpec spec;
  spec.record_keep_probability = 0.5;
  const LocationDataset out = DegradeDataset(Master(), spec);
  const double fraction = static_cast<double>(out.num_records()) /
                          static_cast<double>(Master().num_records());
  EXPECT_NEAR(fraction, 0.5, 0.05);
  // Every kept record is an original record of the same entity.
  for (EntityId e : out.entity_ids()) {
    const auto full = Master().RecordsOf(e);
    for (const Record& r : out.RecordsOf(e)) {
      EXPECT_TRUE(std::find(full.begin(), full.end(), r) != full.end());
    }
  }
}

TEST(DegradeDataset, NoiseDisplacesLocationsOnly) {
  DegradationSpec spec;
  spec.gps_noise_meters = 50.0;
  const LocationDataset out = DegradeDataset(Master(), spec);
  ASSERT_EQ(out.num_records(), Master().num_records());
  double sum_disp = 0.0;
  const auto& before = Master().records();
  const auto& after = out.records();
  for (size_t k = 0; k < before.size(); ++k) {
    EXPECT_EQ(after[k].entity, before[k].entity);
    EXPECT_EQ(after[k].timestamp, before[k].timestamp);
    sum_disp += HaversineMeters(before[k].location, after[k].location);
  }
  // Half-normal displacement with sigma 50 m has mean ~40 m.
  const double mean_disp = sum_disp / static_cast<double>(before.size());
  EXPECT_GT(mean_disp, 15.0);
  EXPECT_LT(mean_disp, 150.0);
}

TEST(RobustnessSweep, ZeroDegradationLinksNearPerfectly) {
  const SweepOptions options;
  const SweepPoint point =
      RunSweepPoint(Pair().a, Pair().b, Pair().truth,
                    DegradationAxis::kGpsNoise, 0.0, options);
  EXPECT_GE(point.quality.f1, 0.95);
  EXPECT_GE(point.quality.precision, 0.95);
  EXPECT_GE(point.quality.recall, 0.95);
}

TEST(RobustnessSweep, F1MonotoneNonIncreasingAlongEveryAxis) {
  // The core metamorphic property: more degradation must not (materially)
  // improve linkage. Real curves wobble by a few hundredths from RNG, so
  // allow a small tolerance per step.
  const SweepOptions options;
  const double tolerance = 0.05;
  const struct {
    DegradationAxis axis;
    std::vector<double> grid;
  } sweeps[] = {
      {DegradationAxis::kGpsNoise, {0.0, 50.0, 200.0}},
      {DegradationAxis::kDownsample, {1.0, 0.5, 0.25}},
      {DegradationAxis::kEntityDrop, {1.0, 0.6, 0.3}},
      {DegradationAxis::kTruncate, {1.0, 0.5, 0.25}},
  };
  for (const auto& sweep : sweeps) {
    const SweepCurve curve = RunDegradationSweep(
        Pair().a, Pair().b, Pair().truth, sweep.axis, sweep.grid, options);
    ASSERT_EQ(curve.points.size(), sweep.grid.size());
    for (size_t k = 1; k < curve.points.size(); ++k) {
      EXPECT_LE(curve.points[k].quality.f1,
                curve.points[k - 1].quality.f1 + tolerance)
          << DegradationAxisName(sweep.axis) << " value "
          << curve.points[k].value;
    }
  }
}

// Renames every entity id through `offset - rank` (an order-reversing
// bijection), returning the renamed dataset and the id mapping.
std::pair<LocationDataset, std::unordered_map<EntityId, EntityId>>
PermuteIds(const LocationDataset& input, EntityId offset) {
  std::unordered_map<EntityId, EntityId> mapping;
  const auto& ids = input.entity_ids();
  for (size_t rank = 0; rank < ids.size(); ++rank) {
    mapping[ids[rank]] = offset - static_cast<EntityId>(rank);
  }
  std::vector<Record> records = input.records();
  for (Record& r : records) r.entity = mapping.at(r.entity);
  return {LocationDataset::FromRecords(input.name(), std::move(records)),
          std::move(mapping)};
}

TEST(RobustnessSweep, InvariantUnderEntityIdPermutation) {
  // Linkage depends on histories, not on entity naming: renaming every id
  // on both sides (and the truth with them) must produce the same linked
  // pairs under the same renaming, and therefore identical quality.
  DegradationSpec spec;
  spec.gps_noise_meters = 100.0;
  spec.record_keep_probability = 0.7;
  LocationDataset a = DegradeDataset(Pair().a, spec);
  spec.seed += 1;
  LocationDataset b = DegradeDataset(Pair().b, spec);
  a.FilterMinRecords(6);
  b.FilterMinRecords(6);

  const SlimConfig config;
  const SlimLinker linker(config);
  auto base = linker.Link(a, b);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  auto [pa, map_a] = PermuteIds(a, 1000000);
  auto [pb, map_b] = PermuteIds(b, 2000000);
  auto permuted = linker.Link(pa, pb);
  ASSERT_TRUE(permuted.ok()) << permuted.status().ToString();

  std::set<std::pair<EntityId, EntityId>> base_pairs, permuted_pairs;
  for (const LinkedEntityPair& link : base->links) {
    base_pairs.insert({map_a.at(link.u), map_b.at(link.v)});
  }
  for (const LinkedEntityPair& link : permuted->links) {
    permuted_pairs.insert({link.u, link.v});
  }
  EXPECT_EQ(base_pairs, permuted_pairs);

  GroundTruth permuted_truth;
  for (const auto& [ua, ub] : Pair().truth.a_to_b) {
    if (map_a.count(ua) == 0 || map_b.count(ub) == 0) continue;
    permuted_truth.a_to_b[map_a.at(ua)] = map_b.at(ub);
  }
  const LinkageQuality q1 = EvaluateLinks(base->links, Pair().truth);
  const LinkageQuality q2 = EvaluateLinks(permuted->links, permuted_truth);
  EXPECT_EQ(q1.true_positives, q2.true_positives);
  EXPECT_EQ(q1.false_positives, q2.false_positives);
}

TEST(RobustnessSweep, BitIdenticalAcrossThreadCounts) {
  DegradationSpec spec;
  spec.gps_noise_meters = 50.0;
  LocationDataset a = DegradeDataset(Pair().a, spec);
  spec.seed += 1;
  LocationDataset b = DegradeDataset(Pair().b, spec);
  a.FilterMinRecords(6);
  b.FilterMinRecords(6);

  SlimConfig config;
  config.threads = 1;
  auto single = SlimLinker(config).Link(a, b);
  ASSERT_TRUE(single.ok()) << single.status().ToString();
  config.threads = 8;
  auto parallel = SlimLinker(config).Link(a, b);
  ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
  EXPECT_EQ(single->links, parallel->links);
}

TEST(RobustnessSweep, BitIdenticalAcrossShardCounts) {
  DegradationSpec spec;
  spec.record_keep_probability = 0.8;
  LocationDataset a = DegradeDataset(Pair().a, spec);
  spec.seed += 1;
  LocationDataset b = DegradeDataset(Pair().b, spec);
  a.FilterMinRecords(6);
  b.FilterMinRecords(6);

  SlimConfig config;
  auto mono = SlimLinker(config).Link(a, b);
  ASSERT_TRUE(mono.ok()) << mono.status().ToString();
  for (const int shards : {1, 3}) {
    config.shards = shards;
    auto sharded = SlimLinker(config).LinkSharded(a, b);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    EXPECT_EQ(mono->links, sharded->links) << shards << " shard(s)";
  }
}

}  // namespace
}  // namespace slim
