#include "temporal/window_tree.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "temporal/time_window.h"

namespace slim {
namespace {

CellId Cell(int level, uint64_t i, uint64_t j) {
  return CellId::FromIndices(level, i, j);
}

TEST(WindowIndex, FloorsTowardMinusInfinity) {
  EXPECT_EQ(WindowIndexOf(0, 900), 0);
  EXPECT_EQ(WindowIndexOf(899, 900), 0);
  EXPECT_EQ(WindowIndexOf(900, 900), 1);
  EXPECT_EQ(WindowIndexOf(-1, 900), -1);
  EXPECT_EQ(WindowIndexOf(-900, 900), -1);
  EXPECT_EQ(WindowIndexOf(-901, 900), -2);
}

TEST(WindowIndex, StartInvertsIndex) {
  for (int64_t t : {-5000, -1, 0, 1, 899, 12345}) {
    const int64_t w = WindowIndexOf(t, 900);
    EXPECT_LE(WindowStart(w, 900), t);
    EXPECT_GT(WindowStart(w + 1, 900), t);
  }
}

TEST(RunawayDistance, ScalesWithWindowAndSpeed) {
  EXPECT_DOUBLE_EQ(RunawayDistanceMeters(900, 33.0), 29700.0);
  EXPECT_DOUBLE_EQ(RunawayDistanceMeters(60, 10.0), 600.0);
}

TEST(WindowSegmentTree, EmptyTree) {
  const WindowSegmentTree t = WindowSegmentTree::Build({});
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.total_records(), 0u);
  EXPECT_FALSE(t.DominatingCell(0, 100, 0).has_value());
}

TEST(WindowSegmentTree, SingleLeaf) {
  const CellId c = Cell(12, 100, 200);
  const WindowSegmentTree t = WindowSegmentTree::Build({{5, c, 3}});
  EXPECT_FALSE(t.empty());
  EXPECT_EQ(t.num_windows(), 1u);
  EXPECT_EQ(t.min_window(), 5);
  EXPECT_EQ(t.max_window(), 5);
  EXPECT_EQ(t.total_records(), 3u);
  EXPECT_EQ(t.DominatingCell(5, 6, 12).value(), c);
  EXPECT_FALSE(t.DominatingCell(6, 10, 12).has_value());
  EXPECT_EQ(t.RangeRecordCount(0, 100), 3u);
}

TEST(WindowSegmentTree, DuplicateEntriesAreSummed) {
  const CellId c = Cell(12, 1, 1);
  const WindowSegmentTree t =
      WindowSegmentTree::Build({{3, c, 2}, {3, c, 5}});
  EXPECT_EQ(t.total_records(), 7u);
  const auto counts = t.RangeCellCounts(3, 4, 12);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts[0].second, 7u);
}

TEST(WindowSegmentTree, DominatingCellPicksMaxCount) {
  const CellId a = Cell(12, 10, 10);
  const CellId b = Cell(12, 20, 20);
  const WindowSegmentTree t = WindowSegmentTree::Build({
      {0, a, 3},
      {0, b, 2},
      {1, b, 4},
  });
  EXPECT_EQ(t.DominatingCell(0, 1, 12).value(), a);   // 3 vs 2
  EXPECT_EQ(t.DominatingCell(0, 2, 12).value(), b);   // 3 vs 6
  EXPECT_EQ(t.DominatingCell(1, 2, 12).value(), b);
}

TEST(WindowSegmentTree, DominatingCellTieBreaksDeterministically) {
  const CellId a = Cell(12, 10, 10);
  const CellId b = Cell(12, 20, 20);
  const WindowSegmentTree t =
      WindowSegmentTree::Build({{0, a, 2}, {0, b, 2}});
  // Equal counts -> smaller cell id wins.
  EXPECT_EQ(t.DominatingCell(0, 1, 12).value(), std::min(a, b));
}

TEST(WindowSegmentTree, CoarserLevelAggregatesSiblings) {
  // Two sibling leaf cells with 2+2 records vs a distant cell with 3:
  // at the leaf level the distant cell dominates, at the parent level the
  // siblings' combined count (4) wins.
  const CellId parent = Cell(11, 100, 100);
  const CellId sib0 = parent.Child(0);
  const CellId sib1 = parent.Child(1);
  const CellId far = Cell(12, 1000, 1000);
  const WindowSegmentTree t = WindowSegmentTree::Build({
      {0, sib0, 2},
      {0, sib1, 2},
      {0, far, 3},
  });
  EXPECT_EQ(t.DominatingCell(0, 1, 12).value(), far);
  EXPECT_EQ(t.DominatingCell(0, 1, 11).value(), parent);
}

TEST(WindowSegmentTree, SparseWindowsQueryCorrectly) {
  const CellId a = Cell(10, 5, 5);
  const CellId b = Cell(10, 6, 6);
  const WindowSegmentTree t = WindowSegmentTree::Build({
      {-100, a, 1},
      {0, b, 2},
      {1000, a, 5},
  });
  EXPECT_EQ(t.min_window(), -100);
  EXPECT_EQ(t.max_window(), 1000);
  EXPECT_EQ(t.RangeRecordCount(-100, 1001), 8u);
  EXPECT_EQ(t.RangeRecordCount(-99, 1000), 2u);
  EXPECT_EQ(t.DominatingCell(500, 1001, 10).value(), a);
}

// Property test: range queries must agree with a brute-force recomputation
// over random leaf data, for random ranges and levels.
class WindowTreeProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowTreeProperty, RangeCountsMatchBruteForce) {
  Rng rng(GetParam());
  std::vector<WindowedCellCount> entries;
  const int n = 200;
  for (int k = 0; k < n; ++k) {
    entries.push_back(
        {rng.NextInt64(-50, 50),
         Cell(14, rng.NextUint64(100) + 1000, rng.NextUint64(100) + 1000),
         static_cast<uint32_t>(rng.NextInt64(1, 5))});
  }
  const WindowSegmentTree tree = WindowSegmentTree::Build(entries);

  for (int q = 0; q < 50; ++q) {
    const int64_t lo = rng.NextInt64(-60, 60);
    const int64_t hi = lo + rng.NextInt64(0, 40);
    const int level = static_cast<int>(rng.NextInt64(8, 14));

    // Brute force.
    std::map<CellId, uint32_t> expect;
    uint64_t expect_total = 0;
    for (const auto& e : entries) {
      if (e.window >= lo && e.window < hi) {
        expect[e.cell.Parent(level)] += e.count;
        expect_total += e.count;
      }
    }

    const auto got = tree.RangeCellCounts(lo, hi, level);
    ASSERT_EQ(got.size(), expect.size()) << "range [" << lo << "," << hi << ")";
    for (const auto& [cell, count] : got) {
      EXPECT_EQ(expect.at(cell), count);
    }
    EXPECT_EQ(tree.RangeRecordCount(lo, hi), expect_total);

    if (!expect.empty()) {
      uint32_t best_count = 0;
      CellId best;
      for (const auto& [cell, count] : expect) {
        if (count > best_count) {
          best_count = count;
          best = cell;
        }
      }
      // The tree's pick must have the maximal count (ties allowed).
      const CellId dom = tree.DominatingCell(lo, hi, level).value();
      EXPECT_EQ(expect.at(dom), best_count);
    } else {
      EXPECT_FALSE(tree.DominatingCell(lo, hi, level).has_value());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowTreeProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace slim
