#include "stats/gmm2d.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slim {
namespace {

std::vector<Point2> TwoBlobs(uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.NextGaussian() * 100.0, rng.NextGaussian() * 100.0});
  }
  for (int i = 0; i < 300; ++i) {
    pts.push_back({5000.0 + rng.NextGaussian() * 100.0,
                   5000.0 + rng.NextGaussian() * 100.0});
  }
  return pts;
}

TEST(Gaussian2D, LogPdfMatchesClosedForm) {
  Gaussian2D g;
  g.weight = 1.0;
  g.mean = {0.0, 0.0};
  g.cov_xx = 4.0;
  g.cov_yy = 9.0;
  g.cov_xy = 0.0;
  // At the mean: -log(2*pi) - 0.5*log(det) with det = 36.
  EXPECT_NEAR(g.LogPdf({0.0, 0.0}),
              -std::log(2.0 * M_PI) - 0.5 * std::log(36.0), 1e-12);
  // One-sigma along x drops by 0.5.
  EXPECT_NEAR(g.LogPdf({2.0, 0.0}), g.LogPdf({0.0, 0.0}) - 0.5, 1e-12);
}

TEST(FitGmm2D, RecoversTwoBlobs) {
  Gmm2DFitOptions opt;
  opt.num_components = 2;
  auto fit = FitGmm2D(TwoBlobs(3), opt);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  ASSERT_EQ(fit->components.size(), 2u);
  std::vector<Point2> means = {fit->components[0].mean,
                               fit->components[1].mean};
  std::sort(means.begin(), means.end(),
            [](const Point2& a, const Point2& b) { return a.x < b.x; });
  EXPECT_NEAR(means[0].x, 0.0, 50.0);
  EXPECT_NEAR(means[0].y, 0.0, 50.0);
  EXPECT_NEAR(means[1].x, 5000.0, 50.0);
  EXPECT_NEAR(means[1].y, 5000.0, 50.0);
  for (const auto& c : fit->components) EXPECT_NEAR(c.weight, 0.5, 0.05);
}

TEST(FitGmm2D, LogPdfHigherNearMassThanFarAway) {
  Gmm2DFitOptions opt;
  opt.num_components = 2;
  auto fit = FitGmm2D(TwoBlobs(5), opt);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->LogPdf({0.0, 0.0}), fit->LogPdf({2500.0, 2500.0}));
  EXPECT_GT(fit->LogPdf({5000.0, 5000.0}), fit->LogPdf({-3000.0, 8000.0}));
}

TEST(FitGmm2D, LogPdfIsFiniteEvenVeryFarAway) {
  auto fit = FitGmm2D(TwoBlobs(7));
  ASSERT_TRUE(fit.ok());
  const double far = fit->LogPdf({1e9, -1e9});
  EXPECT_TRUE(std::isfinite(far));
}

TEST(FitGmm2D, HandlesFewerDistinctPointsThanComponents) {
  std::vector<Point2> pts = {{1, 1}, {1, 1}, {2, 2}};
  Gmm2DFitOptions opt;
  opt.num_components = 3;
  auto fit = FitGmm2D(pts, opt);
  ASSERT_TRUE(fit.ok());
  EXPECT_LE(fit->components.size(), 2u);
}

TEST(FitGmm2D, CovarianceFloorPreventsCollapse) {
  // All points identical: covariance must stay at the floor, not 0.
  std::vector<Point2> pts(50, Point2{3.0, 4.0});
  Gmm2DFitOptions opt;
  opt.num_components = 1;
  opt.covariance_floor = 100.0;
  auto fit = FitGmm2D(pts, opt);
  ASSERT_TRUE(fit.ok());
  EXPECT_GE(fit->components[0].cov_xx, 100.0 - 1e-9);
  EXPECT_GE(fit->components[0].cov_yy, 100.0 - 1e-9);
  EXPECT_TRUE(std::isfinite(fit->LogPdf({3.0, 4.0})));
}

TEST(FitGmm2D, FailsOnEmptyInput) {
  EXPECT_FALSE(FitGmm2D({}).ok());
}

TEST(FitGmm2D, AnisotropicCovarianceIsLearned) {
  Rng rng(11);
  std::vector<Point2> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({rng.NextGaussian() * 200.0, rng.NextGaussian() * 10.0});
  }
  Gmm2DFitOptions opt;
  opt.num_components = 1;
  opt.covariance_floor = 1.0;
  auto fit = FitGmm2D(pts, opt);
  ASSERT_TRUE(fit.ok());
  EXPECT_GT(fit->components[0].cov_xx, 10.0 * fit->components[0].cov_yy);
}

}  // namespace
}  // namespace slim
