#include "lsh/lsh_index.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "core/history.h"
#include "data/cab_generator.h"
#include "test_util.h"

namespace slim {
namespace {

constexpr int64_t kWindow = 900;

HistoryConfig HConfig(int level = 16) {
  HistoryConfig c;
  c.spatial_level = level;
  c.window_seconds = kWindow;
  return c;
}

LshConfig LConfig() {
  LshConfig c;
  c.similarity_threshold = 0.6;
  c.signature_spatial_level = 14;
  c.temporal_step_windows = 4;
  c.num_buckets = 4096;
  return c;
}

std::vector<LshIndex::Entry> Entries(const HistorySet& set) {
  std::vector<LshIndex::Entry> out;
  for (const auto& h : set.histories()) out.push_back({h.entity(), &h.tree()});
  return out;
}

TEST(LshIndex, EmptySidesProduceNoCandidates) {
  const LshIndex idx = LshIndex::Build({}, {}, LConfig());
  EXPECT_EQ(idx.total_candidate_pairs(), 0u);
  EXPECT_TRUE(idx.CandidatesFor(1).empty());
}

TEST(LshIndex, IdenticalBehaviourCollides) {
  // Entities with the same trajectory on both sides must be candidates.
  Rng rng(1);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 8; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 24, kWindow);
  const HistorySet set_e = HistorySet::Build(ds, HConfig());
  const HistorySet set_i = HistorySet::Build(ds, HConfig());
  const LshIndex idx = LshIndex::Build(Entries(set_e), Entries(set_i),
                                       LConfig());
  for (const auto& h : set_e.histories()) {
    const auto& cands = idx.CandidatesFor(h.entity());
    EXPECT_TRUE(std::binary_search(cands.begin(), cands.end(), h.entity()))
        << "entity " << h.entity() << " does not see itself";
  }
}

TEST(LshIndex, DisjointPlacesRarelyCollide) {
  // Left entities live in SF, right entities in (translated) LA: their
  // dominating cells never match, so candidate lists stay empty.
  Rng rng(2);
  std::vector<LatLng> sf, la;
  for (int k = 0; k < 6; ++k) {
    const LatLng p = testing::RandomPointInBox(&rng);
    sf.push_back(p);
    la.push_back({p.lat_deg - 3.0, p.lng_deg + 4.0});
  }
  const LocationDataset ds_e = testing::MakeAnchoredDataset(sf, 24, kWindow);
  const LocationDataset ds_i = testing::MakeAnchoredDataset(la, 24, kWindow);
  const HistorySet set_e = HistorySet::Build(ds_e, HConfig());
  const HistorySet set_i = HistorySet::Build(ds_i, HConfig());
  const LshIndex idx =
      LshIndex::Build(Entries(set_e), Entries(set_i), LConfig());
  EXPECT_EQ(idx.total_candidate_pairs(), 0u);
}

TEST(LshIndex, BandGeometryCoversSignature) {
  Rng rng(3);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 4; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 48, kWindow);
  const HistorySet set = HistorySet::Build(ds, HConfig());
  const LshIndex idx = LshIndex::Build(Entries(set), Entries(set), LConfig());
  EXPECT_GT(idx.signature_size(), 0u);
  EXPECT_GE(idx.num_bands(), 1);
  EXPECT_GE(idx.rows_per_band(), 1);
  EXPECT_GE(static_cast<size_t>(idx.num_bands()) *
                static_cast<size_t>(idx.rows_per_band()),
            idx.signature_size());
}

TEST(LshIndex, SignaturesAccessibleAndAligned) {
  Rng rng(4);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 3; ++k) {
    anchors.push_back(testing::RandomPointInBox(&rng));
  }
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 12, kWindow);
  const HistorySet set = HistorySet::Build(ds, HConfig());
  const LshIndex idx = LshIndex::Build(Entries(set), Entries(set), LConfig());
  const LshSignature* left = idx.LeftSignature(0);
  const LshSignature* right = idx.RightSignature(0);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_EQ(left->size(), idx.signature_size());
  EXPECT_DOUBLE_EQ(SignatureSimilarity(*left, *right), 1.0);
  EXPECT_EQ(idx.LeftSignature(999), nullptr);
}

TEST(LshIndex, CandidateRecallForSimilarPairsIsHigh) {
  // Sample a cab workload twice (the linkage setting): for most entities
  // the true counterpart must be among the LSH candidates.
  CabGeneratorOptions gopt;
  gopt.num_taxis = 30;
  gopt.duration_days = 2.0;
  gopt.record_interval_seconds = 300.0;
  const LocationDataset master = GenerateCabDataset(gopt);

  // Two half-sampled sides with identical entity ids (master ids).
  Rng rng(7);
  LocationDataset a("a"), b("b");
  for (const Record& r : master.records()) {
    if (rng.NextBernoulli(0.5)) a.Add(r);
    if (rng.NextBernoulli(0.5)) b.Add(r);
  }
  a.Finalize();
  b.Finalize();

  const HistorySet set_e = HistorySet::Build(a, HConfig());
  const HistorySet set_i = HistorySet::Build(b, HConfig());
  LshConfig lc = LConfig();
  // Operating point found on this workload (cf. the Fig. 8 sweep):
  // level-10 signatures over 2-hour queries with t = 0.4 keep full recall
  // while pruning ~90% of the pair space.
  lc.signature_spatial_level = 10;
  lc.temporal_step_windows = 8;
  lc.similarity_threshold = 0.4;
  const LshIndex idx = LshIndex::Build(Entries(set_e), Entries(set_i), lc);

  size_t hits = 0, total = 0;
  for (const auto& h : set_e.histories()) {
    if (set_i.Find(h.entity()) == nullptr) continue;
    ++total;
    const auto& cands = idx.CandidatesFor(h.entity());
    hits += std::binary_search(cands.begin(), cands.end(), h.entity());
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(total), 0.8);
  // And it must actually filter: far fewer candidates than the full cross
  // product.
  EXPECT_LT(idx.total_candidate_pairs(),
            static_cast<uint64_t>(set_e.size()) * set_i.size());
}

TEST(LshIndex, CandidateListsAreSortedAndUnique) {
  Rng rng(8);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 10; ++k)
    anchors.push_back(testing::RandomPointInBox(&rng));
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 24, kWindow);
  const HistorySet set = HistorySet::Build(ds, HConfig());
  const LshIndex idx = LshIndex::Build(Entries(set), Entries(set), LConfig());
  for (const auto& h : set.histories()) {
    const auto& cands = idx.CandidatesFor(h.entity());
    EXPECT_TRUE(std::is_sorted(cands.begin(), cands.end()));
    EXPECT_EQ(std::adjacent_find(cands.begin(), cands.end()), cands.end());
  }
}

TEST(LshIndex, MoreBucketsNeverAddCandidates) {
  // Hash collisions only merge buckets; growing the bucket array can only
  // shrink (or keep) the candidate sets.
  Rng rng(9);
  std::vector<LatLng> anchors;
  for (int k = 0; k < 12; ++k)
    anchors.push_back(testing::RandomPointInBox(&rng));
  const LocationDataset ds =
      testing::MakeAnchoredDataset(anchors, 24, kWindow);
  const HistorySet set = HistorySet::Build(ds, HConfig());
  LshConfig small = LConfig();
  small.num_buckets = 16;
  LshConfig big = LConfig();
  big.num_buckets = 1 << 20;
  const LshIndex idx_small =
      LshIndex::Build(Entries(set), Entries(set), small);
  const LshIndex idx_big = LshIndex::Build(Entries(set), Entries(set), big);
  EXPECT_GE(idx_small.total_candidate_pairs(),
            idx_big.total_candidate_pairs());
}

}  // namespace
}  // namespace slim
