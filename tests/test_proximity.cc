#include "core/proximity.h"

#include <cmath>

#include <gtest/gtest.h>

namespace slim {
namespace {

constexpr int64_t kWindow = 900;  // 15 min

ProximityConfig DefaultProx() { return ProximityConfig{}; }

TEST(Runaway, PaperDefaultIs30KmFor15MinWindows) {
  // 2 km/min * 15 min = 30 km.
  EXPECT_NEAR(RunawayMeters(DefaultProx(), kWindow), 30000.0, 1e-6);
}

TEST(SpatialProximity, SameCellScoresOne) {
  EXPECT_DOUBLE_EQ(SpatialProximity(0.0, 30000.0, 1e-6), 1.0);
}

TEST(SpatialProximity, ZeroAtRunawayDistance) {
  EXPECT_NEAR(SpatialProximity(30000.0, 30000.0, 1e-6), 0.0, 1e-12);
}

TEST(SpatialProximity, NegativeBeyondRunaway) {
  EXPECT_LT(SpatialProximity(30001.0, 30000.0, 1e-6), 0.0);
  EXPECT_LT(SpatialProximity(45000.0, 30000.0, 1e-6), -0.9);
}

TEST(SpatialProximity, MonotoneDecreasingThenClamped) {
  // Strictly decreasing up to the clamp point (~2R), flat at the floor
  // beyond it.
  double prev = 2.0;
  for (double d = 0.0; d < 59000.0; d += 1000.0) {
    const double p = SpatialProximity(d, 30000.0, 1e-6);
    EXPECT_LT(p, prev);
    prev = p;
  }
  const double floor = SpatialProximity(60000.0, 30000.0, 1e-6);
  for (double d = 60000.0; d <= 100000.0; d += 10000.0) {
    EXPECT_DOUBLE_EQ(SpatialProximity(d, 30000.0, 1e-6), floor);
  }
}

TEST(SpatialProximity, ClampBoundsThePenalty) {
  // At and beyond 2R the value clamps to log2(eps) instead of -inf.
  const double floor = std::log2(1e-6);
  EXPECT_NEAR(SpatialProximity(60000.0, 30000.0, 1e-6), floor, 1e-9);
  EXPECT_NEAR(SpatialProximity(1e12, 30000.0, 1e-6), floor, 1e-9);
  EXPECT_TRUE(std::isfinite(SpatialProximity(1e12, 30000.0, 1e-6)));
}

TEST(SpatialProximity, HalfwayPointMatchesFormula) {
  // d = R/2 -> log2(1.5).
  EXPECT_NEAR(SpatialProximity(15000.0, 30000.0, 1e-6), std::log2(1.5),
              1e-12);
}

TEST(SpatialProximity, SteeperSlopeNearRunaway) {
  // The paper: value decreases "with an increasing slope" toward R.
  const double r = 30000.0;
  const double d1 = SpatialProximity(0.0, r, 1e-6) -
                    SpatialProximity(0.1 * r, r, 1e-6);
  const double d2 = SpatialProximity(0.8 * r, r, 1e-6) -
                    SpatialProximity(0.9 * r, r, 1e-6);
  EXPECT_GT(d2, d1);
}

TEST(BinProximity, DifferentWindowsScoreZero) {
  const CellId c = CellId::FromLatLng({37.7, -122.4}, 12);
  const TimeLocationBin e{0, c, 1};
  const TimeLocationBin i{1, c, 1};
  EXPECT_DOUBLE_EQ(BinProximity(e, i, DefaultProx(), kWindow), 0.0);
}

TEST(BinProximity, SameWindowSameCellScoresOne) {
  const CellId c = CellId::FromLatLng({37.7, -122.4}, 12);
  const TimeLocationBin e{3, c, 1};
  const TimeLocationBin i{3, c, 5};
  EXPECT_DOUBLE_EQ(BinProximity(e, i, DefaultProx(), kWindow), 1.0);
}

TEST(BinProximity, AlibiCellsScoreNegative) {
  // Two cells ~100 km apart within one 15-minute window: a clear alibi.
  const TimeLocationBin e{3, CellId::FromLatLng({37.7, -122.4}, 12), 1};
  const TimeLocationBin i{3, CellId::FromLatLng({38.6, -122.4}, 12), 1};
  EXPECT_LT(BinProximity(e, i, DefaultProx(), kWindow), 0.0);
}

TEST(BinProximity, NearbyCellsScoreBetweenZeroAndOne) {
  // ~10 km apart: within the 30 km runaway, positive but below 1.
  const TimeLocationBin e{3, CellId::FromLatLng({37.70, -122.40}, 12), 1};
  const TimeLocationBin i{3, CellId::FromLatLng({37.79, -122.40}, 12), 1};
  const double p = BinProximity(e, i, DefaultProx(), kWindow);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1.0);
}

TEST(IsAlibi, ThresholdAtRunaway) {
  EXPECT_FALSE(IsAlibi(29999.0, 30000.0));
  EXPECT_FALSE(IsAlibi(30000.0, 30000.0));
  EXPECT_TRUE(IsAlibi(30000.1, 30000.0));
}

TEST(Runaway, WiderWindowsTolerateLargerDistances) {
  const ProximityConfig cfg = DefaultProx();
  EXPECT_LT(RunawayMeters(cfg, 300), RunawayMeters(cfg, 900));
  EXPECT_LT(RunawayMeters(cfg, 900), RunawayMeters(cfg, 3600));
  // A 40 km hop is an alibi for 15-min windows, fine for 6-hour windows.
  EXPECT_LT(SpatialProximity(40000.0, RunawayMeters(cfg, 900), 1e-6), 0.0);
  EXPECT_GT(SpatialProximity(40000.0, RunawayMeters(cfg, 21600), 1e-6), 0.0);
}

}  // namespace
}  // namespace slim
