#include "data/sampler.h"

#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "test_util.h"

namespace slim {
namespace {

// Master dataset: `entities` entities with `records_each` records spread
// over distinct times/places.
LocationDataset MakeMaster(int entities, int records_each) {
  LocationDataset ds("master");
  Rng rng(77);
  for (int e = 0; e < entities; ++e) {
    for (int r = 0; r < records_each; ++r) {
      ds.Add(e, testing::RandomPointInBox(&rng),
             static_cast<int64_t>(r) * 600 + e);
    }
  }
  ds.Finalize();
  return ds;
}

TEST(Sampler, RejectsBadParameters) {
  const LocationDataset master = MakeMaster(10, 20);
  PairSampleOptions opt;
  opt.intersection_ratio = 1.5;
  EXPECT_FALSE(SampleLinkedPair(master, opt).ok());
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 0.0;
  EXPECT_FALSE(SampleLinkedPair(master, opt).ok());
}

TEST(Sampler, RejectsWhenMasterTooSmall) {
  const LocationDataset master = MakeMaster(10, 20);
  PairSampleOptions opt;
  opt.entities_per_side = 8;
  opt.intersection_ratio = 0.0;  // would need 16 entities
  EXPECT_FALSE(SampleLinkedPair(master, opt).ok());
}

TEST(Sampler, ProducesRequestedIntersection) {
  const LocationDataset master = MakeMaster(100, 40);
  for (double rho : {0.0, 0.3, 0.5, 0.7, 1.0}) {
    PairSampleOptions opt;
    opt.entities_per_side = 40;
    opt.intersection_ratio = rho;
    opt.inclusion_probability = 1.0;
    opt.min_records = 0;
    auto s = SampleLinkedPair(master, opt);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    EXPECT_EQ(s->a.num_entities(), 40u);
    EXPECT_EQ(s->b.num_entities(), 40u);
    EXPECT_EQ(s->truth.size(),
              static_cast<size_t>(std::llround(rho * 40)));
  }
}

TEST(Sampler, GroundTruthPairsExistInBothSides) {
  const LocationDataset master = MakeMaster(60, 30);
  PairSampleOptions opt;
  opt.entities_per_side = 25;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok());
  for (const auto& [a, b] : s->truth.a_to_b) {
    EXPECT_TRUE(s->a.ContainsEntity(a));
    EXPECT_TRUE(s->b.ContainsEntity(b));
  }
}

TEST(Sampler, TruthIsOneToOne) {
  const LocationDataset master = MakeMaster(60, 30);
  PairSampleOptions opt;
  opt.entities_per_side = 25;
  opt.intersection_ratio = 0.8;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok());
  std::unordered_set<EntityId> bs;
  for (const auto& [a, b] : s->truth.a_to_b) {
    EXPECT_TRUE(bs.insert(b).second) << "duplicate b " << b;
  }
}

TEST(Sampler, InclusionProbabilityThinsRecords) {
  const LocationDataset master = MakeMaster(40, 100);
  PairSampleOptions opt;
  opt.entities_per_side = 15;
  opt.min_records = 0;

  opt.inclusion_probability = 1.0;
  auto dense = SampleLinkedPair(master, opt);
  ASSERT_TRUE(dense.ok());
  EXPECT_NEAR(dense->a.AvgRecordsPerEntity(), 100.0, 1e-9);

  opt.inclusion_probability = 0.3;
  auto sparse = SampleLinkedPair(master, opt);
  ASSERT_TRUE(sparse.ok());
  EXPECT_NEAR(sparse->a.AvgRecordsPerEntity(), 30.0, 5.0);
  EXPECT_NEAR(sparse->b.AvgRecordsPerEntity(), 30.0, 5.0);
}

TEST(Sampler, SidesDrawRecordsIndependently) {
  const LocationDataset master = MakeMaster(10, 200);
  PairSampleOptions opt;
  opt.entities_per_side = 5;
  opt.intersection_ratio = 1.0;
  opt.inclusion_probability = 0.5;
  opt.min_records = 0;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok());
  // With p=0.5 drawn independently, the two sides of a common entity share
  // ~25% of master records; identical record sets would indicate correlated
  // draws. Compare timestamp multisets of one truth pair.
  const auto [a, b] = *s->truth.a_to_b.begin();
  std::unordered_set<int64_t> ta;
  for (const auto& r : s->a.RecordsOf(a)) ta.insert(r.timestamp);
  size_t shared = 0;
  const auto rb = s->b.RecordsOf(b);
  for (const auto& r : rb) shared += ta.count(r.timestamp);
  EXPECT_LT(shared, rb.size());  // not a subset/copy
  EXPECT_GT(shared, 0u);         // but overlapping
}

TEST(Sampler, MinRecordsFilterApplies) {
  const LocationDataset master = MakeMaster(50, 8);
  PairSampleOptions opt;
  opt.entities_per_side = 20;
  opt.inclusion_probability = 0.4;  // expect ~3.2 records/entity
  opt.min_records = 6;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok());
  for (EntityId e : s->a.entity_ids()) {
    EXPECT_GE(s->a.RecordsOf(e).size(), 6u);
  }
}

TEST(Sampler, DeterministicForSameSeed) {
  const LocationDataset master = MakeMaster(40, 20);
  PairSampleOptions opt;
  opt.entities_per_side = 15;
  opt.seed = 9;
  auto s1 = SampleLinkedPair(master, opt);
  auto s2 = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_EQ(s1->a.records(), s2->a.records());
  EXPECT_EQ(s1->b.records(), s2->b.records());
  EXPECT_EQ(s1->truth.a_to_b, s2->truth.a_to_b);
}

TEST(Sampler, DifferentSeedsDiffer) {
  const LocationDataset master = MakeMaster(40, 20);
  PairSampleOptions opt;
  opt.entities_per_side = 15;
  opt.seed = 9;
  auto s1 = SampleLinkedPair(master, opt);
  opt.seed = 10;
  auto s2 = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s1.ok() && s2.ok());
  EXPECT_NE(s1->a.records(), s2->a.records());
}

TEST(Sampler, AutoSizeUsesWholePool) {
  const LocationDataset master = MakeMaster(30, 10);
  PairSampleOptions opt;
  opt.entities_per_side = 0;  // auto
  opt.intersection_ratio = 0.5;
  opt.inclusion_probability = 1.0;
  opt.min_records = 0;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok());
  // n = 20, c = 10 -> 2n - c = 30 exactly.
  EXPECT_EQ(s->a.num_entities(), 20u);
  EXPECT_EQ(s->b.num_entities(), 20u);
  EXPECT_EQ(s->truth.size(), 10u);
}

TEST(Sampler, LocationNoisePerturbsPositions) {
  const LocationDataset master = MakeMaster(10, 50);
  PairSampleOptions opt;
  opt.entities_per_side = 5;
  opt.intersection_ratio = 1.0;
  opt.inclusion_probability = 1.0;
  opt.min_records = 0;
  opt.location_noise_meters = 100.0;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok());
  // Positions should no longer exactly match master records.
  bool any_moved = false;
  for (const auto& r : s->a.records()) {
    for (const auto& m : master.records()) {
      if (m.timestamp == r.timestamp && m.location == r.location) goto next;
    }
    any_moved = true;
    break;
  next:;
  }
  EXPECT_TRUE(any_moved);
}

// Regression (PR 8): records used to be emitted — and per-record RNG state
// consumed — while iterating the master->new-id unordered_map, so the
// byte-exact sample depended on the standard library's hash table layout.
// Each (side, master entity) now forks its own record stream, making the
// bytes emission-order independent. This golden hash pins the exact
// output; reintroducing layout-dependent order changes the hash on at
// least one stdlib even when same-binary determinism still holds.
TEST(Sampler, ByteExactOutputIsPinned) {
  const LocationDataset master = MakeMaster(60, 30);
  PairSampleOptions opt;
  opt.entities_per_side = 25;
  opt.intersection_ratio = 0.6;
  opt.time_jitter_seconds = 30;
  opt.seed = 123;
  auto s = SampleLinkedPair(master, opt);
  ASSERT_TRUE(s.ok()) << s.status().ToString();

  uint64_t h = 1469598103934665603ull;  // FNV-1a 64
  const auto mix = [&h](const void* p, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const auto mix_dataset = [&](const LocationDataset& ds) {
    for (const Record& r : ds.records()) {
      mix(&r.entity, sizeof(r.entity));
      mix(&r.location.lat_deg, sizeof(double));
      mix(&r.location.lng_deg, sizeof(double));
      mix(&r.timestamp, sizeof(r.timestamp));
    }
  };
  mix_dataset(s->a);
  mix_dataset(s->b);
  std::vector<std::pair<EntityId, EntityId>> truth(s->truth.a_to_b.begin(),
                                                   s->truth.a_to_b.end());
  std::sort(truth.begin(), truth.end());
  for (const auto& [a, b] : truth) {
    mix(&a, sizeof(a));
    mix(&b, sizeof(b));
  }
  EXPECT_EQ(h, 0xedd55d32e7ea5e86ull);
}

}  // namespace
}  // namespace slim
