#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextDoubleRangeRespected) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.NextDouble(-5.0, 3.0);
    EXPECT_GE(v, -5.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, NextUint64Unbiased) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[rng.NextUint64(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, trials / 10, trials / 100);  // within 10% relative
  }
}

TEST(Rng, NextInt64CoversInclusiveRange) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.NextInt64(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, GaussianMomentsMatchStandardNormal) {
  Rng rng(23);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(29);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ZipfFavorsSmallIndices) {
  Rng rng(31);
  std::vector<int> counts(20, 0);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t k = rng.NextZipf(20, 1.0);
    ASSERT_LT(k, 20u);
    ++counts[k];
  }
  EXPECT_GT(counts[0], counts[4]);
  EXPECT_GT(counts[4], counts[19]);
  // Rough Zipf check: p(0)/p(1) ~ 2.
  EXPECT_NEAR(static_cast<double>(counts[0]) / counts[1], 2.0, 0.5);
}

TEST(Rng, ZipfZeroExponentIsUniform) {
  Rng rng(37);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 50000; ++i) ++counts[rng.NextZipf(5, 0.0)];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(41);
  const int n = 50000;
  uint64_t total = 0;
  for (int i = 0; i < n; ++i) total += rng.NextPoisson(6.5);
  EXPECT_NEAR(static_cast<double>(total) / n, 6.5, 0.1);
  // Large-mean branch (normal approximation).
  total = 0;
  for (int i = 0; i < n; ++i) total += rng.NextPoisson(100.0);
  EXPECT_NEAR(static_cast<double>(total) / n, 100.0, 0.5);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(43);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(Rng, ForkedStreamsAreIndependentAndReproducible) {
  Rng parent1(99), parent2(99);
  Rng fork_a = parent1.Fork(0);
  Rng fork_b = parent1.Fork(1);
  Rng fork_a2 = parent2.Fork(0);
  // Same stream id from same seed reproduces.
  for (int i = 0; i < 50; ++i) EXPECT_EQ(fork_a.Next(), fork_a2.Next());
  // Different stream ids diverge.
  Rng fork_a3 = parent2.Fork(0);
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (fork_a3.Next() == fork_b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(SplitMix64, KnownSequenceIsStable) {
  SplitMix64 sm(0);
  const uint64_t first = sm.Next();
  SplitMix64 sm2(0);
  EXPECT_EQ(sm2.Next(), first);
  EXPECT_NE(sm.Next(), first);
}

}  // namespace
}  // namespace slim
