#include "data/commute_generator.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "geo/cell_id.h"
#include "geo/latlng.h"

namespace slim {
namespace {

CommuteGeneratorOptions SmallCommute() {
  CommuteGeneratorOptions opt;
  opt.num_commuters = 30;
  opt.duration_days = 7.0;  // one full weekly cycle: 5 weekdays + weekend
  return opt;
}

// Day-of-week of a timestamp under the generator's epoch convention
// (start_epoch is a Monday, so day k has dow k % 7 with 0 = Monday).
int DayOfWeek(const CommuteGeneratorOptions& opt, int64_t ts) {
  return static_cast<int>(((ts - opt.start_epoch) / 86400) % 7);
}

double HourOfDay(const CommuteGeneratorOptions& opt, int64_t ts) {
  return static_cast<double>((ts - opt.start_epoch) % 86400) / 3600.0;
}

TEST(CommuteGenerator, ProducesAllCommuters) {
  // Every agent pings at home overnight regardless of schedule draws.
  const LocationDataset ds = GenerateCommuteDataset(SmallCommute());
  EXPECT_EQ(ds.num_entities(), 30u);
}

TEST(CommuteGenerator, DeterministicForSeed) {
  const LocationDataset a = GenerateCommuteDataset(SmallCommute());
  const LocationDataset b = GenerateCommuteDataset(SmallCommute());
  EXPECT_EQ(a.records(), b.records());
}

TEST(CommuteGenerator, SeedChangesOutput) {
  CommuteGeneratorOptions opt = SmallCommute();
  const LocationDataset a = GenerateCommuteDataset(opt);
  opt.seed = 1000;
  const LocationDataset b = GenerateCommuteDataset(opt);
  EXPECT_NE(a.records(), b.records());
}

TEST(CommuteGenerator, RecordsStayInsideMetroBox) {
  const CommuteGeneratorOptions opt = SmallCommute();
  const LocationDataset ds = GenerateCommuteDataset(opt);
  for (const Record& r : ds.records()) {
    EXPECT_GE(r.location.lat_deg, opt.lat_lo);
    EXPECT_LE(r.location.lat_deg, opt.lat_hi);
    EXPECT_GE(r.location.lng_deg, opt.lng_lo);
    EXPECT_LE(r.location.lng_deg, opt.lng_hi);
  }
}

TEST(CommuteGenerator, TimestampsInsideDuration) {
  const CommuteGeneratorOptions opt = SmallCommute();
  const LocationDataset ds = GenerateCommuteDataset(opt);
  const auto [lo, hi] = ds.TimeRange();
  EXPECT_GE(lo, opt.start_epoch);
  EXPECT_LE(hi, opt.start_epoch +
                    static_cast<int64_t>(opt.duration_days * 86400.0));
}

TEST(CommuteGenerator, MovementIsPhysicallyConsistent) {
  // With GPS noise off, consecutive records of one commuter must respect
  // the fastest modal speed — including across day boundaries (a late
  // trip must not overlap the next morning's home pings). This is the
  // property alibi detection relies on.
  CommuteGeneratorOptions opt = SmallCommute();
  opt.gps_noise_meters = 0.0;
  const LocationDataset ds = GenerateCommuteDataset(opt);
  const double max_speed = opt.drive_max_speed_kmh / 3.6;  // m/s
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    for (size_t k = 1; k < recs.size(); ++k) {
      const double dt =
          static_cast<double>(recs[k].timestamp - recs[k - 1].timestamp);
      if (dt <= 0) continue;
      const double dd =
          HaversineMeters(recs[k - 1].location, recs[k].location);
      EXPECT_LE(dd / dt, max_speed * 1.05)
          << "commuter " << e << " jumped " << dd << " m in " << dt << " s";
    }
  }
}

TEST(CommuteGenerator, WeekdayHomeWorkBimodality) {
  // The defining signature of a commuter: overnight records and weekday
  // midday records cluster at two well-separated anchors.
  CommuteGeneratorOptions opt = SmallCommute();
  opt.gps_noise_meters = 0.0;
  const LocationDataset ds = GenerateCommuteDataset(opt);
  size_t bimodal = 0, counted = 0;
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    std::vector<LatLng> night, midday;
    for (const Record& r : recs) {
      if (DayOfWeek(opt, r.timestamp) >= 5) continue;  // weekdays only
      const double hour = HourOfDay(opt, r.timestamp);
      if (hour < 5.0) night.push_back(r.location);
      if (hour >= 11.0 && hour < 16.0) midday.push_back(r.location);
    }
    if (night.empty() || midday.size() < 3) continue;
    ++counted;
    // Midday records include the lunch break, so compare against the
    // per-agent midday mode rather than the mean.
    std::unordered_map<uint64_t, size_t> cells;
    for (const LatLng& p : midday) ++cells[CellId::FromLatLng(p, 16).raw()];
    uint64_t top_cell = 0;
    size_t top = 0;
    for (const auto& [cell, count] : cells) {
      if (count > top) top = count, top_cell = cell;
    }
    LatLng work{0, 0};
    for (const LatLng& p : midday) {
      if (CellId::FromLatLng(p, 16).raw() == top_cell) {
        work = p;
        break;
      }
    }
    if (HaversineMeters(night.front(), work) > 1000.0) ++bimodal;
  }
  ASSERT_GT(counted, 20u);
  EXPECT_GT(static_cast<double>(bimodal) / static_cast<double>(counted),
            0.8);
}

TEST(CommuteGenerator, WorkCentersAreSharedAcrossCommuters) {
  // Many commuters share few employment centers — the venue reuse that
  // gives the similarity score's IDF term its contrast. Count distinct
  // agents per coarse cell during weekday working hours.
  const CommuteGeneratorOptions opt = SmallCommute();
  const LocationDataset ds = GenerateCommuteDataset(opt);
  std::unordered_map<uint64_t, std::unordered_set<EntityId>> agents_per_cell;
  for (const Record& r : ds.records()) {
    if (DayOfWeek(opt, r.timestamp) >= 5) continue;
    const double hour = HourOfDay(opt, r.timestamp);
    if (hour < 11.0 || hour >= 16.0) continue;
    agents_per_cell[CellId::FromLatLng(r.location, 12).raw()].insert(
        r.entity);
  }
  size_t max_agents = 0;
  for (const auto& [cell, agents] : agents_per_cell) {
    max_agents = std::max(max_agents, agents.size());
  }
  // Zipf(1.0) over 8 centers sends well over an even share to the top one.
  EXPECT_GE(max_agents, 5u);
}

TEST(CommuteGenerator, WeekendExcursionsLeaveTheCommuteAxis) {
  // On weekends agents visit shared POIs: some records must fall far from
  // both overnight anchor and weekday workplace.
  CommuteGeneratorOptions opt = SmallCommute();
  opt.gps_noise_meters = 0.0;
  const LocationDataset ds = GenerateCommuteDataset(opt);
  size_t excursion_records = 0;
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    const LatLng home = recs.front().location;
    for (const Record& r : recs) {
      if (DayOfWeek(opt, r.timestamp) < 5) continue;
      if (HaversineMeters(home, r.location) > 2000.0) {
        ++excursion_records;
        break;  // one travelling weekend record per agent is enough
      }
    }
  }
  // Poisson(1.2) excursions per weekend day over 30 agents and 2 weekend
  // days: nearly every agent leaves home at least once.
  EXPECT_GE(excursion_records, 15u);
}

TEST(CommuteGenerator, DwellSamplingIsSparserThanTripSampling) {
  // The motion-triggered duty cycle: gaps while dwelling are much longer
  // than gaps while travelling, so both cadences must appear.
  const CommuteGeneratorOptions opt = SmallCommute();
  const LocationDataset ds = GenerateCommuteDataset(opt);
  size_t trip_gaps = 0, dwell_gaps = 0;
  for (EntityId e : ds.entity_ids()) {
    const auto recs = ds.RecordsOf(e);
    for (size_t k = 1; k < recs.size(); ++k) {
      const int64_t gap = recs[k].timestamp - recs[k - 1].timestamp;
      if (gap <= static_cast<int64_t>(2 * opt.trip_interval_seconds)) {
        ++trip_gaps;
      } else if (gap >=
                 static_cast<int64_t>(0.5 * opt.dwell_interval_seconds)) {
        ++dwell_gaps;
      }
    }
  }
  EXPECT_GT(trip_gaps, 100u);
  EXPECT_GT(dwell_gaps, 100u);
}

}  // namespace
}  // namespace slim
