#include "data/sbin.h"

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/csv.h"

namespace slim {
namespace {

class SbinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_sbin_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const char* name) { return (dir_ / name).string(); }

  std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  }

  void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // A deterministic random dataset exercising negative coordinates, the
  // poles/antimeridian neighborhood, and negative timestamps.
  static LocationDataset RandomDataset(uint64_t seed, size_t n,
                                       bool quantized) {
    Rng rng(seed);
    std::vector<Record> records;
    records.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      Record r;
      r.entity = static_cast<EntityId>(rng.NextUint64(n / 4 + 1));
      r.location.lat_deg = rng.NextDouble(-90.0, 90.0);
      r.location.lng_deg = rng.NextDouble(-180.0, 180.0);
      if (quantized) {
        r.location.lat_deg = std::round(r.location.lat_deg * 1e7) / 1e7;
        r.location.lng_deg = std::round(r.location.lng_deg * 1e7) / 1e7;
      }
      r.timestamp = rng.NextInt64(-1000000, 2000000000);
      records.push_back(r);
    }
    return LocationDataset::FromRecords("rand", std::move(records));
  }

  std::filesystem::path dir_;
};

TEST_F(SbinTest, RoundTripEmptyDataset) {
  LocationDataset ds("empty");
  ds.Finalize();
  const std::string path = Path("empty.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  auto loaded = ReadSbin(path, "empty2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->num_records(), 0u);
}

TEST_F(SbinTest, RoundTripIsLosslessAtFullDoublePrecision) {
  // Unlike CSV, SBIN stores the exact bit pattern — no quantization needed.
  const LocationDataset ds = RandomDataset(7, 500, /*quantized=*/false);
  const std::string path = Path("full.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  auto loaded = ReadSbin(path, "full2");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->records(), ds.records());
}

TEST_F(SbinTest, CsvSbinCrossRoundTripProperty) {
  // write CSV -> read -> write SBIN -> read must reproduce the CSV-read
  // dataset exactly; with 1e-7-quantized inputs all four stages agree.
  for (const uint64_t seed : {11u, 12u, 13u}) {
    const LocationDataset ds = RandomDataset(seed, 300, /*quantized=*/true);
    const std::string csv = Path("cross.csv");
    const std::string sbin = Path("cross.sbin");
    ASSERT_TRUE(WriteCsv(ds, csv).ok());
    auto from_csv = ReadCsv(csv, "c");
    ASSERT_TRUE(from_csv.ok()) << from_csv.status().ToString();
    EXPECT_EQ(from_csv->records(), ds.records()) << "seed " << seed;
    ASSERT_TRUE(WriteSbin(*from_csv, sbin).ok());
    auto from_sbin = ReadSbin(sbin, "s");
    ASSERT_TRUE(from_sbin.ok()) << from_sbin.status().ToString();
    EXPECT_EQ(from_sbin->records(), from_csv->records()) << "seed " << seed;
  }
}

TEST_F(SbinTest, MissingFileFails) {
  auto r = ReadSbin(Path("nope.sbin"), "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIoError);
}

TEST_F(SbinTest, BadMagicFailsWithPathContext) {
  const std::string path = Path("junk.sbin");
  WriteFile(path, std::string("JUNKJUNKJUNKJUNK"));
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find(path), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("magic"), std::string::npos);
}

TEST_F(SbinTest, TooShortHeaderFails) {
  const std::string path = Path("short.sbin");
  WriteFile(path, std::string("SBIN"));
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("too short"), std::string::npos);
}

TEST_F(SbinTest, UnsupportedVersionFails) {
  LocationDataset ds("v");
  ds.Add(1, {1.0, 2.0}, 3);
  ds.Finalize();
  const std::string path = Path("v2.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  std::string bytes = ReadFile(path);
  bytes[4] = 2;  // bump the version field
  WriteFile(path, bytes);
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("version 2"), std::string::npos)
      << r.status().message();
}

TEST_F(SbinTest, TruncatedFileFails) {
  const LocationDataset ds = RandomDataset(5, 10, true);
  const std::string path = Path("trunc.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  std::string bytes = ReadFile(path);
  bytes.resize(bytes.size() - 7);
  WriteFile(path, bytes);
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("file has"), std::string::npos)
      << r.status().message();
}

TEST_F(SbinTest, TrailingGarbageFails) {
  const LocationDataset ds = RandomDataset(5, 10, true);
  const std::string path = Path("trail.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  std::string bytes = ReadFile(path);
  bytes += "extra";
  WriteFile(path, bytes);
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
}

TEST_F(SbinTest, NonFiniteCoordinateFailsWithRecordIndex) {
  LocationDataset ds("nf");
  ds.Add(1, {10.0, 20.0}, 1);
  ds.Add(2, {30.0, 40.0}, 2);
  ds.Finalize();
  const std::string path = Path("nan.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  std::string bytes = ReadFile(path);
  // Overwrite record 1's latitude (offset 16 + 32 + 8) with a NaN pattern.
  const double nan_value = std::nan("");
  uint64_t bits;
  std::memcpy(&bits, &nan_value, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    bytes[16 + 32 + 8 + i] = static_cast<char>(bits >> (8 * i));
  }
  WriteFile(path, bytes);
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("record 1"), std::string::npos)
      << r.status().message();
  EXPECT_NE(r.status().message().find("non-finite"), std::string::npos);
}

TEST_F(SbinTest, OutOfRangeCoordinateFails) {
  LocationDataset ds("oor");
  ds.Add(1, {10.0, 20.0}, 1);
  ds.Finalize();
  const std::string path = Path("oor.sbin");
  ASSERT_TRUE(WriteSbin(ds, path).ok());
  std::string bytes = ReadFile(path);
  const double big = 200.0;  // |lng| > 180
  uint64_t bits;
  std::memcpy(&bits, &big, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    bytes[16 + 16 + i] = static_cast<char>(bits >> (8 * i));
  }
  WriteFile(path, bytes);
  auto r = ReadSbin(path, "x");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST_F(SbinTest, WriteToUnwritablePathFails) {
  LocationDataset ds("w");
  ds.Finalize();
  EXPECT_FALSE(WriteSbin(ds, "/nonexistent_dir_xyz/out.sbin").ok());
}

}  // namespace
}  // namespace slim
