#include "common/strings.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(SplitString, KeepsEmptyFields) {
  const auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitString, SingleFieldWithoutDelimiter) {
  const auto parts = SplitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitString, EmptyInputYieldsOneEmptyField) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripAsciiWhitespace, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\t \n"), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(StripUtf8Bom, StripsOnlyALeadingBom) {
  EXPECT_EQ(StripUtf8Bom("\xEF\xBB\xBFhello"), "hello");
  EXPECT_EQ(StripUtf8Bom("hello"), "hello");
  EXPECT_EQ(StripUtf8Bom(""), "");
  EXPECT_EQ(StripUtf8Bom("\xEF\xBB"), "\xEF\xBB");  // incomplete: kept
}

TEST(ParseInt64, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64("+7").value(), 7);
  EXPECT_EQ(ParseInt64(" 1234 ").value(), 1234);
}

TEST(ParseInt64, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("+").ok());
  EXPECT_FALSE(ParseInt64("+-5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseInt64, OverflowIsOutOfRangeNotInvalid) {
  auto r = ParseInt64("99999999999999999999999");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(ParseDouble, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_DOUBLE_EQ(ParseDouble("+2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble(".5").value(), 0.5);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("1,5").ok());  // comma decimals never parse
}

TEST(ParseDouble, HugeExponentIsOutOfRange) {
  auto r = ParseDouble("1e999");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(FormatFixed, MatchesPrintfInTheCLocale) {
  EXPECT_EQ(FormatFixed(1.0 / 3.0, 3), "0.333");
  EXPECT_EQ(FormatFixed(-122.4194, 7), "-122.4194000");
  EXPECT_EQ(FormatFixed(0.0, 2), "0.00");
  EXPECT_EQ(FormatFixed(2.5, 0), "2");  // round-half-even, like printf
}

TEST(FormatFixed, SurvivesHugeMagnitudes) {
  const std::string s = FormatFixed(1e300, 7);
  ASSERT_FALSE(s.empty());
  EXPECT_EQ(s.size(), 301u + 1u + 7u);  // 301 digits, point, 7 decimals
  EXPECT_DOUBLE_EQ(ParseDouble(s).value(), 1e300);
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.3f", 1.0 / 3.0), "0.333");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FormatWithCommas, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace slim
