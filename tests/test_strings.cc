#include "common/strings.h"

#include <gtest/gtest.h>

namespace slim {
namespace {

TEST(SplitString, KeepsEmptyFields) {
  const auto parts = SplitString("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(SplitString, SingleFieldWithoutDelimiter) {
  const auto parts = SplitString("hello", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "hello");
}

TEST(SplitString, EmptyInputYieldsOneEmptyField) {
  const auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StripAsciiWhitespace, StripsBothEnds) {
  EXPECT_EQ(StripAsciiWhitespace("  x y\t\n"), "x y");
  EXPECT_EQ(StripAsciiWhitespace("\t \n"), "");
  EXPECT_EQ(StripAsciiWhitespace("abc"), "abc");
}

TEST(ParseInt64, ParsesValidIntegers) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64(" 1234 ").value(), 1234);
}

TEST(ParseInt64, RejectsGarbage) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDouble, ParsesValidDoubles) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.25").value(), 3.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
}

TEST(ParseDouble, RejectsGarbage) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(StrFormat("%d-%s", 5, "x"), "5-x");
  EXPECT_EQ(StrFormat("%.3f", 1.0 / 3.0), "0.333");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(FormatWithCommas, GroupsThousands) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatWithCommas(-1234567), "-1,234,567");
}

}  // namespace
}  // namespace slim
