// Adversarial ingest corpus: hostile or corrupt dataset files must produce
// clean Status errors (never crashes, hangs, or garbage records) through
// ReadDataset's format sniffing and both parsers. These tests also run in
// the ASan/UBSan CI legs, so an out-of-bounds read while parsing a
// truncated header fails loudly even when it happens to return the right
// Status.
#include <cmath>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/dataset_io.h"
#include "data/sbin.h"

namespace slim {
namespace {

class IngestAdversarialTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    dir_ = std::filesystem::temp_directory_path() /
           ("slim_adv_" + std::string(info->name()) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Write(const char* name, const std::string& bytes) {
    const std::string path = (dir_ / name).string();
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    return path;
  }

  // Expects a clean parse failure: error status, non-crashing, and a
  // message that names the offending file.
  void ExpectRejected(const std::string& path,
                      DatasetFormat format = DatasetFormat::kAuto) {
    DatasetIoOptions opt;
    opt.format = format;
    auto r = ReadDataset(path, "x", opt);
    ASSERT_FALSE(r.ok()) << path << " parsed as " << r->num_records()
                         << " records";
    EXPECT_FALSE(r.status().message().empty());
    EXPECT_NE(r.status().message().find(
                  std::filesystem::path(path).filename().string()),
              std::string::npos)
        << r.status().message();
  }

  std::filesystem::path dir_;
};

std::string PutU32(uint32_t v) {
  char b[4];
  std::memcpy(b, &v, sizeof(v));
  return std::string(b, sizeof(b));
}

std::string PutU64(uint64_t v) {
  char b[8];
  std::memcpy(b, &v, sizeof(v));
  return std::string(b, sizeof(b));
}

std::string PutF64(double v) {
  char b[8];
  std::memcpy(b, &v, sizeof(v));
  return std::string(b, sizeof(b));
}

std::string SbinHeader(uint64_t count, uint32_t version = kSbinVersion) {
  return std::string(kSbinMagic, sizeof(kSbinMagic)) + PutU32(version) +
         PutU64(count);
}

std::string SbinRecord(int64_t entity, double lat, double lng, int64_t ts) {
  return PutU64(static_cast<uint64_t>(entity)) + PutF64(lat) + PutF64(lng) +
         PutU64(static_cast<uint64_t>(ts));
}

// ---- Truncated SBIN headers. ----

TEST_F(IngestAdversarialTest, TruncatedSbinHeaderEveryPrefixLength) {
  const std::string header = SbinHeader(1);
  for (size_t len = 1; len < kSbinHeaderBytes; ++len) {
    const std::string path =
        Write(("prefix_" + std::to_string(len) + ".sbin").c_str(),
              header.substr(0, len));
    // Explicit --format sbin must reject every truncated header.
    ExpectRejected(path, DatasetFormat::kSbin);
    if (len >= sizeof(kSbinMagic)) {
      // With the full magic present, auto-sniffing also routes to the SBIN
      // parser, which must reject just the same.
      ExpectRejected(path);
    }
  }
}

TEST_F(IngestAdversarialTest, SbinHeaderWithNoPayload) {
  ExpectRejected(Write("no_payload.sbin", SbinHeader(3)));
}

TEST_F(IngestAdversarialTest, SbinTruncatedPayload) {
  const std::string good =
      SbinHeader(2) + SbinRecord(1, 10.0, 20.0, 100) +
      SbinRecord(2, 11.0, 21.0, 200);
  // Chop the final record short at several offsets.
  for (size_t cut : {1u, 7u, 31u}) {
    ExpectRejected(Write(("cut_" + std::to_string(cut) + ".sbin").c_str(),
                         good.substr(0, good.size() - cut)));
  }
}

TEST_F(IngestAdversarialTest, SbinTrailingGarbage) {
  const std::string good = SbinHeader(1) + SbinRecord(1, 10.0, 20.0, 100);
  ExpectRejected(Write("trailing.sbin", good + "tail"));
}

TEST_F(IngestAdversarialTest, SbinWrongVersion) {
  ExpectRejected(Write("v2.sbin", SbinHeader(1, /*version=*/2) +
                                      SbinRecord(1, 10.0, 20.0, 100)));
}

TEST_F(IngestAdversarialTest, SbinAbsurdRecordCount) {
  // A count that would overflow size arithmetic must be rejected up front,
  // not trusted into a multi-exabyte reserve.
  ExpectRejected(Write("absurd.sbin", SbinHeader(uint64_t{1} << 60)));
}

TEST_F(IngestAdversarialTest, SbinSmuggledNonFiniteCoordinates) {
  const double nan = std::nan("");
  ExpectRejected(Write("nan.sbin",
                       SbinHeader(1) + SbinRecord(1, nan, 20.0, 100)));
  ExpectRejected(Write("range.sbin",
                       SbinHeader(1) + SbinRecord(1, 95.0, 20.0, 100)));
}

// ---- CSV/SBIN magic collisions. ----

TEST_F(IngestAdversarialTest, CsvTextStartingWithSbinMagic) {
  // A text file whose first bytes spell "SBIN" sniffs as SBIN; it must be
  // rejected cleanly (size/garbage checks), not half-parsed as either
  // format.
  ExpectRejected(Write("collision.csv",
                       "SBIN_station,37.0,-122.0,100\n1,37.0,-122.0,200\n"));
}

TEST_F(IngestAdversarialTest, SbinBytesForcedThroughTheCsvParser) {
  const std::string good = SbinHeader(1) + SbinRecord(1, 10.0, 20.0, 100);
  ExpectRejected(Write("forced.csv", good), DatasetFormat::kCsv);
}

// ---- Mixed and wrong delimiters. ----

TEST_F(IngestAdversarialTest, SemicolonDelimitedRows) {
  ExpectRejected(Write("semi.csv", "entity_id,lat,lng,timestamp\n"
                                   "1;37.0;-122.0;100\n"));
}

TEST_F(IngestAdversarialTest, TabDelimitedRows) {
  ExpectRejected(Write("tabs.csv", "1\t37.0\t-122.0\t100\n"));
}

TEST_F(IngestAdversarialTest, MixedDelimitersWithinOneRow) {
  ExpectRejected(Write("mixed.csv", "1,37.0;-122.0,100\n"));
}

TEST_F(IngestAdversarialTest, WrongColumnCounts) {
  ExpectRejected(Write("short_row.csv", "1,37.0,-122.0\n"));
  ExpectRejected(Write("long_row.csv", "1,37.0,-122.0,100,extra\n"));
}

TEST_F(IngestAdversarialTest, NonNumericFields) {
  ExpectRejected(Write("junk_id.csv", "abc,37.0,-122.0,100\n"));
  ExpectRejected(Write("junk_ts.csv", "1,37.0,-122.0,yesterday\n"));
}

TEST_F(IngestAdversarialTest, CsvErrorNamesTheOffendingLine) {
  auto r = ReadDataset(
      Write("line3.csv",
            "entity_id,lat,lng,timestamp\n1,37.0,-122.0,100\n1;2;3;4\n"),
      "x");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find(":3:"), std::string::npos)
      << r.status().message();
}

// ---- Zero-record files. ----
//
// Empty inputs are *valid* by the format contracts (test_csv, test_sbin pin
// the round-trips): what the adversarial corpus asserts is that they are
// handled cleanly and deterministically — an empty dataset with zero
// entities, never an error in one format and a crash in the other.

TEST_F(IngestAdversarialTest, ZeroRecordFilesParseAsCleanEmptyDatasets) {
  const std::string cases[] = {
      Write("empty.csv", ""),
      Write("header_only.csv", "entity_id,lat,lng,timestamp\n"),
      Write("blank_lines.csv", "\n\n\n"),
      Write("zero.sbin", SbinHeader(0)),
  };
  for (const std::string& path : cases) {
    auto r = ReadDataset(path, "x");
    ASSERT_TRUE(r.ok()) << path << ": " << r.status().ToString();
    EXPECT_EQ(r->num_records(), 0u) << path;
    EXPECT_EQ(r->num_entities(), 0u) << path;
  }
}

TEST_F(IngestAdversarialTest, ZeroRecordSbinWithTrailingBytesIsRejected) {
  ExpectRejected(Write("zero_tail.sbin", SbinHeader(0) + "x"));
}

}  // namespace
}  // namespace slim
