// The sharded linkage driver's contract (core/sharded.h):
//
//   * LinkSharded is bit-identical to the monolithic Link at every
//     (left shards x right shards x threads), for every candidate
//     generator — including against the committed pre-refactor goldens
//     (tests/golden/), and with the graph-free streaming matcher.
//   * Block-restricted candidate generators are exact restrictions of the
//     monolithic candidate set (the union over an L x K block partition
//     reproduces it).
//   * The shard planner covers [0, rights) with balanced contiguous
//     ranges, honors explicit counts, and derives counts from the memory
//     budget.
//   * The external edge sort (core/edge_spill.h) replays every appended
//     edge exactly once in both global orders, on disk and in memory,
//     degrades to memory when no spill file can be created, and surfaces a
//     corrupt spill as IoError instead of crashing.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/resource.h"
#include "core/edge_spill.h"
#include "slim.h"

namespace slim {
namespace {

// The same SM-style workload test_determinism shards over: big enough that
// every parallel stage actually shards, and that 7 right shards are all
// non-trivial.
const LinkedPairSample& Sample() {
  static const LinkedPairSample* sample = [] {
    CheckinGeneratorOptions gen;
    gen.num_users = 500;
    gen.seed = 77;
    const LocationDataset master = GenerateCheckinDataset(gen);
    PairSampleOptions sampling;
    sampling.entities_per_side = 220;
    sampling.intersection_ratio = 0.5;
    sampling.inclusion_probability = 0.5;
    sampling.seed = 78;
    auto s = SampleLinkedPair(master, sampling);
    EXPECT_TRUE(s.ok()) << s.status().ToString();
    return new LinkedPairSample(std::move(s.value()));
  }();
  return *sample;
}

void ExpectIdenticalResults(const LinkageResult& a, const LinkageResult& b,
                            const std::string& label) {
  // Doubles compare exactly: bit-identical is the contract, not "close".
  EXPECT_EQ(a.links, b.links) << label;
  EXPECT_EQ(a.matching.pairs, b.matching.pairs) << label;
  EXPECT_DOUBLE_EQ(a.matching.total_weight, b.matching.total_weight) << label;
  EXPECT_EQ(a.graph.edges(), b.graph.edges()) << label;
  EXPECT_EQ(a.candidate_pairs, b.candidate_pairs) << label;
  EXPECT_EQ(a.possible_pairs, b.possible_pairs) << label;
  EXPECT_EQ(a.stats.record_comparisons, b.stats.record_comparisons) << label;
  EXPECT_EQ(a.stats.alibi_pairs, b.stats.alibi_pairs) << label;
  EXPECT_EQ(a.stats.entity_pairs, b.stats.entity_pairs) << label;
  // The hit/miss split depends on sharding (each block warms its own
  // cache); only the sum is invariant — same contract as thread counts.
  EXPECT_EQ(a.stats.cache_hits + a.stats.cache_misses,
            b.stats.cache_hits + b.stats.cache_misses)
      << label;
  EXPECT_EQ(a.threshold_valid, b.threshold_valid) << label;
  if (a.threshold_valid && b.threshold_valid) {
    EXPECT_DOUBLE_EQ(a.threshold.threshold, b.threshold.threshold) << label;
  }
}

// ---- Shard planning. ----

TEST(ShardPlan, FixedCoversBalancedContiguousRanges) {
  const ShardPlan plan = ShardPlan::Fixed(23, 5);
  ASSERT_EQ(plan.shards, 5);
  ASSERT_EQ(plan.ranges.size(), 5u);
  EntityIdx expected_begin = 0;
  size_t min_size = 23, max_size = 0;
  for (const auto& [begin, end] : plan.ranges) {
    EXPECT_EQ(begin, expected_begin);
    ASSERT_LT(begin, end);
    min_size = std::min<size_t>(min_size, end - begin);
    max_size = std::max<size_t>(max_size, end - begin);
    expected_begin = end;
  }
  EXPECT_EQ(expected_begin, 23u);
  EXPECT_LE(max_size - min_size, 1u);
}

TEST(ShardPlan, FixedClampsToTheRightStore) {
  const ShardPlan plan = ShardPlan::Fixed(3, 100);
  EXPECT_EQ(plan.shards, 3);
  ASSERT_EQ(plan.ranges.size(), 3u);
  EXPECT_EQ(plan.ranges.front(), (std::pair<EntityIdx, EntityIdx>{0, 1}));

  const ShardPlan empty = ShardPlan::Fixed(0, 4);
  EXPECT_EQ(empty.shards, 1);
  ASSERT_EQ(empty.ranges.size(), 1u);
  EXPECT_EQ(empty.ranges.front(), (std::pair<EntityIdx, EntityIdx>{0, 0}));

  const ShardPlan nonpositive = ShardPlan::Fixed(9, 0);
  EXPECT_EQ(nonpositive.shards, 1);
}

TEST(ShardPlan, BudgetDerivesTheShardCount) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  SlimConfig config;

  // Explicit count wins over any budget.
  config.shards = 3;
  config.shard_memory_budget_bytes = 1;
  EXPECT_EQ(EstimateShardPlan(ctx, config, 0).shards, 3);

  // No count, no budget: one shard.
  config.shards = 0;
  config.shard_memory_budget_bytes = 0;
  EXPECT_EQ(EstimateShardPlan(ctx, config, 0).shards, 1);

  // A huge budget needs no sharding; a tiny one shards hard (clamped to
  // the store size).
  config.shard_memory_budget_bytes = uint64_t{1} << 40;
  EXPECT_EQ(EstimateShardPlan(ctx, config, 0).shards, 1);
  config.shard_memory_budget_bytes = 1;
  const ShardPlan tight = EstimateShardPlan(ctx, config, 0);
  EXPECT_EQ(tight.shards, static_cast<int>(ctx.store_i.size()));
  EXPECT_GT(tight.per_entity_bytes, 0u);

  // Monotone: a bigger budget never yields more shards.
  config.shard_memory_budget_bytes = 1u << 20;
  const int k_small_budget = EstimateShardPlan(ctx, config, 0).shards;
  config.shard_memory_budget_bytes = 8u << 20;
  EXPECT_LE(EstimateShardPlan(ctx, config, 0).shards, k_small_budget);
}

TEST(ShardPlan, PerEntityEstimateHasAFloor) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  EXPECT_GE(EstimateBlockBytesPerEntity(ctx, 0), 64u);
  EXPECT_GE(EstimateBlockBytesPerEntity(ctx, CurrentPeakRssBytes()), 64u);
}

// ---- External edge sort. ----

std::vector<WeightedEdge> MakeEdges(int base, int n) {
  std::vector<WeightedEdge> edges;
  for (int k = 0; k < n; ++k) {
    edges.push_back({base + k, base - k, 0.5 + 0.001 * k});
  }
  return edges;
}

std::vector<WeightedEdge> CollectScan(EdgeSpill* spill, EdgeOrder order) {
  std::vector<WeightedEdge> out;
  const Status s =
      spill->Scan(order, [&out](const WeightedEdge& e) { out.push_back(e); });
  EXPECT_TRUE(s.ok()) << s.ToString();
  return out;
}

TEST(EdgeSpill, ScansBothGlobalOrdersOnDiskAndInMemory) {
  for (const bool to_disk : {false, true}) {
    EdgeSpillOptions options;
    options.to_disk = to_disk;
    // Two edges per run: multiple runs and a real k-way merge on disk.
    options.run_bytes = 2 * sizeof(WeightedEdge);
    EdgeSpill spill(options);
    EXPECT_EQ(spill.size(), 0u);
    spill.Append(MakeEdges(100, 3));
    spill.Append({});  // empty blocks are legal
    spill.Append(MakeEdges(7, 4));
    ASSERT_TRUE(spill.Seal().ok());
    EXPECT_EQ(spill.size(), 7u);
    if (to_disk && spill.on_disk()) {
      EXPECT_GT(spill.run_count(), 1u);
      EXPECT_EQ(spill.spill_bytes_written(), 7 * sizeof(WeightedEdge));
    }

    std::vector<WeightedEdge> all = MakeEdges(100, 3);
    const std::vector<WeightedEdge> tail = MakeEdges(7, 4);
    all.insert(all.end(), tail.begin(), tail.end());

    std::vector<WeightedEdge> by_pair = all;
    std::sort(by_pair.begin(), by_pair.end(), PairEdgeOrder);
    std::vector<WeightedEdge> by_score = all;
    std::sort(by_score.begin(), by_score.end(), GreedyEdgeOrder);

    // Both orders, and both again: scans are repeatable. Scanning the
    // non-run order exercises the resort + second merge path on disk.
    EXPECT_EQ(CollectScan(&spill, EdgeOrder::kPair), by_pair)
        << "to_disk=" << to_disk;
    EXPECT_EQ(CollectScan(&spill, EdgeOrder::kScore), by_score)
        << "to_disk=" << to_disk;
    EXPECT_EQ(CollectScan(&spill, EdgeOrder::kPair), by_pair);
    EXPECT_EQ(CollectScan(&spill, EdgeOrder::kScore), by_score);
    if (to_disk && spill.on_disk()) {
      EXPECT_EQ(spill.merge_passes(), 4);
      // The resort pass rewrites every edge exactly once, lazily.
      EXPECT_EQ(spill.spill_bytes_written(), 14 * sizeof(WeightedEdge));
    }
  }
}

TEST(EdgeSpill, SealIsIdempotentAndEmptySpillScansNothing) {
  EdgeSpillOptions options;
  options.to_disk = true;
  EdgeSpill spill(options);
  ASSERT_TRUE(spill.Seal().ok());
  ASSERT_TRUE(spill.Seal().ok());
  EXPECT_EQ(CollectScan(&spill, EdgeOrder::kPair), std::vector<WeightedEdge>{});
  EXPECT_EQ(CollectScan(&spill, EdgeOrder::kScore),
            std::vector<WeightedEdge>{});
}

TEST(EdgeSpill, DiskSpillActuallyUsesAFile) {
  EdgeSpillOptions options;
  options.to_disk = true;
  EdgeSpill spill(options);
  if (!spill.on_disk()) GTEST_SKIP() << "no tmpfile on this platform";
  spill.Append(MakeEdges(1, 4));
  ASSERT_TRUE(spill.Seal().ok());
  EXPECT_TRUE(spill.on_disk());
  std::vector<WeightedEdge> expected = MakeEdges(1, 4);
  std::sort(expected.begin(), expected.end(), PairEdgeOrder);
  EXPECT_EQ(CollectScan(&spill, EdgeOrder::kPair), expected);
}

TEST(EdgeSpill, FallsBackToMemoryWhenTheSpillFileCannotBeCreated) {
  EdgeSpillOptions options;
  options.to_disk = true;
  // A path whose directory does not exist: creation must fail, and the
  // spill must degrade to the in-memory buffer instead of crashing.
  options.spill_path = "/nonexistent-slim-spill-dir/spill.bin";
  EdgeSpill spill(options);
  EXPECT_FALSE(spill.on_disk());
  spill.Append(MakeEdges(1, 4));
  ASSERT_TRUE(spill.Seal().ok());
  EXPECT_EQ(spill.run_count(), 0u);
  std::vector<WeightedEdge> expected = MakeEdges(1, 4);
  std::sort(expected.begin(), expected.end(), GreedyEdgeOrder);
  EXPECT_EQ(CollectScan(&spill, EdgeOrder::kScore), expected);
}

TEST(EdgeSpill, TruncatedSpillSurfacesAsIoErrorNotACrash) {
  const std::string path = ::testing::TempDir() + "/slim_spill_corrupt.bin";
  EdgeSpillOptions options;
  options.to_disk = true;
  options.run_bytes = 2 * sizeof(WeightedEdge);
  options.spill_path = path;
  EdgeSpill spill(options);
  if (!spill.on_disk()) GTEST_SKIP() << "cannot create " << path;
  spill.Append(MakeEdges(1, 3));
  spill.Append(MakeEdges(20, 3));
  spill.Append(MakeEdges(40, 2));
  ASSERT_TRUE(spill.Seal().ok());
  ASSERT_GT(spill.run_count(), 1u);

  // Truncate the live spill behind the spill's back: the recorded run
  // extents now point past EOF, so the merge's reads come up short.
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  const Status pair_scan =
      spill.Scan(EdgeOrder::kPair, [](const WeightedEdge&) {});
  EXPECT_FALSE(pair_scan.ok());
  const Status score_scan =
      spill.Scan(EdgeOrder::kScore, [](const WeightedEdge&) {});
  EXPECT_FALSE(score_scan.ok());
}

// ---- Shard-restricted candidate generation. ----

class ShardCandidates : public ::testing::TestWithParam<CandidateKind> {};

TEST_P(ShardCandidates, UnionOverAPartitionEqualsTheFullGenerator) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  const SlimConfig defaults;
  const auto full = MakeCandidateGenerator(GetParam(), ctx, defaults.lsh,
                                           defaults.grid, 1);

  const EntityIdx lefts = static_cast<EntityIdx>(ctx.store_e.size());
  for (const int shards : {2, 7}) {
    const ShardPlan plan = ShardPlan::Fixed(ctx.store_i.size(), shards);
    std::vector<std::unique_ptr<CandidateGenerator>> parts;
    uint64_t total = 0;
    for (const auto& [begin, end] : plan.ranges) {
      parts.push_back(MakeShardCandidateGenerator(GetParam(), ctx,
                                                  defaults.lsh, defaults.grid,
                                                  0, lefts, begin, end, 1));
      total += parts.back()->total_candidate_pairs();
      EXPECT_EQ(parts.back()->name(), full->name());
    }
    EXPECT_EQ(total, full->total_candidate_pairs()) << shards;

    for (EntityIdx u = 0; u < ctx.store_e.size(); ++u) {
      std::vector<EntityIdx> merged;
      for (size_t s = 0; s < parts.size(); ++s) {
        const auto span = parts[s]->CandidatesFor(u);
        // Shard lists are ascending and stay inside their range, so
        // concatenation in shard order IS the sorted union.
        for (const EntityIdx v : span) {
          EXPECT_GE(v, plan.ranges[s].first);
          EXPECT_LT(v, plan.ranges[s].second);
        }
        merged.insert(merged.end(), span.begin(), span.end());
      }
      const auto expected = full->CandidatesFor(u);
      ASSERT_EQ(merged, std::vector<EntityIdx>(expected.begin(),
                                               expected.end()))
          << "left " << u << " at " << shards << " shards";
    }
  }
}

TEST_P(ShardCandidates, LeftRightBlockGridEqualsTheFullGenerator) {
  const LinkageContext ctx =
      LinkageContext::Build(Sample().a, Sample().b, HistoryConfig{}, 1);
  const SlimConfig defaults;
  const auto full = MakeCandidateGenerator(GetParam(), ctx, defaults.lsh,
                                           defaults.grid, 1);

  // A 3 x 4 block grid: every left entity appears in exactly one row of
  // blocks, and its candidate list is the row's concatenation in right
  // order — the exact-restriction property the L x K driver relies on.
  const auto left_ranges = BalancedEntityRanges(ctx.store_e.size(), 3);
  const auto right_ranges = BalancedEntityRanges(ctx.store_i.size(), 4);
  uint64_t total = 0;
  for (const auto& [left_begin, left_end] : left_ranges) {
    std::vector<std::unique_ptr<CandidateGenerator>> row;
    for (const auto& [right_begin, right_end] : right_ranges) {
      row.push_back(MakeShardCandidateGenerator(
          GetParam(), ctx, defaults.lsh, defaults.grid, left_begin, left_end,
          right_begin, right_end, 1));
      total += row.back()->total_candidate_pairs();
    }
    for (EntityIdx u = left_begin; u < left_end; ++u) {
      std::vector<EntityIdx> merged;
      for (size_t s = 0; s < row.size(); ++s) {
        const auto span = row[s]->CandidatesFor(u);
        for (const EntityIdx v : span) {
          EXPECT_GE(v, right_ranges[s].first);
          EXPECT_LT(v, right_ranges[s].second);
        }
        merged.insert(merged.end(), span.begin(), span.end());
      }
      const auto expected = full->CandidatesFor(u);
      ASSERT_EQ(merged, std::vector<EntityIdx>(expected.begin(),
                                               expected.end()))
          << "left " << u;
    }
  }
  EXPECT_EQ(total, full->total_candidate_pairs());
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ShardCandidates,
                         ::testing::Values(CandidateKind::kLsh,
                                           CandidateKind::kBruteForce,
                                           CandidateKind::kGrid),
                         [](const auto& pinfo) {
                           return std::string(CandidateKindName(pinfo.param));
                         });

// ---- The driver: sharded == monolithic, at every K x threads. ----

class ShardedDriver : public ::testing::TestWithParam<CandidateKind> {};

TEST_P(ShardedDriver, MatchesTheMonolithicPathAtEveryShardAndThreadCount) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 1;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_GT(reference->links.size(), 0u);

  for (const auto& [left_shards, shards] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 2}, {1, 7}, {2, 2},
                                        {3, 7}}) {
    for (const int threads : {1, 8}) {
      config.left_shards = left_shards;
      config.shards = shards;
      config.threads = threads;
      const auto sharded = SlimLinker(config).LinkSharded(Sample().a,
                                                          Sample().b);
      ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
      EXPECT_EQ(sharded->shards_used, shards);
      EXPECT_EQ(sharded->left_shards_used, left_shards);
      EXPECT_EQ(sharded->candidates_used, GetParam());
      // Every positive-score edge passes through the spill; the medium is
      // a temp file only when L x K > 1 (spilling a single block would
      // reload everything immediately).
      EXPECT_EQ(sharded->spilled_edges, sharded->graph.num_edges());
      if (left_shards * shards == 1) {
        EXPECT_FALSE(sharded->spill_on_disk);
      }
      ExpectIdenticalResults(
          *reference, *sharded,
          StrFormat("%s left_shards=%d shards=%d threads=%d",
                    std::string(CandidateKindName(GetParam())).c_str(),
                    left_shards, shards, threads));
    }
  }
}

TEST_P(ShardedDriver, StreamingMatcherMatchesWithoutTheGraph) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 2;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok());
  ASSERT_GT(reference->links.size(), 0u);

  // keep_graph = false: edges stream from the score-ordered merge straight
  // into the greedy matcher; links/matching/threshold must still be
  // bit-identical, with only the graph left empty.
  config.keep_graph = false;
  config.left_shards = 2;
  config.shards = 3;
  const auto streamed = SlimLinker(config).LinkSharded(Sample().a, Sample().b);
  ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
  EXPECT_EQ(streamed->graph.num_edges(), 0u);
  EXPECT_EQ(streamed->links, reference->links);
  EXPECT_EQ(streamed->matching.pairs, reference->matching.pairs);
  EXPECT_DOUBLE_EQ(streamed->matching.total_weight,
                   reference->matching.total_weight);
  EXPECT_EQ(streamed->threshold_valid, reference->threshold_valid);
  if (streamed->threshold_valid) {
    EXPECT_DOUBLE_EQ(streamed->threshold.threshold,
                     reference->threshold.threshold);
  }
  EXPECT_EQ(streamed->spilled_edges, reference->graph.num_edges());
  // The score-ordered runs merge in a single pass: no resort needed.
  if (streamed->spill_on_disk) {
    EXPECT_EQ(streamed->merge_passes, 1);
  }
}

TEST_P(ShardedDriver, BudgetDrivenRunMatchesToo) {
  SlimConfig config;
  config.candidates = GetParam();
  config.threads = 2;
  const auto reference = SlimLinker(config).Link(Sample().a, Sample().b);
  ASSERT_TRUE(reference.ok());

  // A deliberately small budget so the planner actually shards.
  config.shards = 0;
  config.shard_memory_budget_bytes = 1u << 20;
  const auto sharded = SlimLinker(config).LinkSharded(Sample().a, Sample().b);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_GE(sharded->shards_used, 1);
  ExpectIdenticalResults(*reference, *sharded, "budget-driven");
}

INSTANTIATE_TEST_SUITE_P(AllGenerators, ShardedDriver,
                         ::testing::Values(CandidateKind::kLsh,
                                           CandidateKind::kBruteForce,
                                           CandidateKind::kGrid),
                         [](const auto& pinfo) {
                           return std::string(CandidateKindName(pinfo.param));
                         });

TEST(ShardedDriver, EmptySidesShortCircuit) {
  LocationDataset empty("empty");
  empty.Finalize();
  SlimConfig config;
  config.shards = 4;
  const auto result = SlimLinker(config).LinkSharded(empty, Sample().b);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->links.empty());
  EXPECT_EQ(result->possible_pairs, 0u);
}

TEST(ShardedDriver, RequiresFinalizedDatasets) {
  LocationDataset raw("raw");
  raw.Add(1, {37.7, -122.4}, 1000);
  const auto result = SlimLinker(SlimConfig{}).LinkSharded(raw, Sample().b);
  EXPECT_FALSE(result.ok());
}

// ---- Golden bit-identity: sharded runs against the committed goldens. ----

std::string GoldenPath(const char* name) {
  return std::string(SLIM_TEST_GOLDEN_DIR) + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// u,v,score at 17 fixed decimals — the exact format of the committed
// quick_links_*.csv goldens (see test_determinism.cc).
std::vector<std::string> FormatLinks(
    const std::vector<LinkedEntityPair>& links) {
  std::vector<std::string> lines;
  lines.reserve(links.size());
  for (const auto& link : links) {
    lines.push_back(std::to_string(link.u) + "," + std::to_string(link.v) +
                    "," + FormatFixed(link.score, 17));
  }
  return lines;
}

class ShardedGoldenLinks : public ::testing::Test {
 protected:
  static const LocationDataset& A() {
    static const LocationDataset* a = Load("quick_a.csv", "A");
    return *a;
  }
  static const LocationDataset& B() {
    static const LocationDataset* b = Load("quick_b.csv", "B");
    return *b;
  }

 private:
  static const LocationDataset* Load(const char* name, const char* label) {
    auto ds = ReadDataset(GoldenPath(name), label);
    EXPECT_TRUE(ds.ok()) << ds.status().ToString();
    return new LocationDataset(std::move(ds.value()));
  }
};

TEST_F(ShardedGoldenLinks, EveryGeneratorShardCountAndThreadCount) {
  const struct {
    CandidateKind kind;
    const char* golden;
  } cases[] = {
      {CandidateKind::kLsh, "quick_links_lsh.csv"},
      {CandidateKind::kBruteForce, "quick_links_brute.csv"},
      {CandidateKind::kGrid, "quick_links_grid.csv"},
  };
  // The (L, K) plans the 1M methodology gates on (docs/BENCHMARKS.md),
  // plus the legacy right-only counts the pre-refactor goldens pinned.
  const std::pair<int, int> plans[] = {{1, 1}, {1, 2}, {1, 7},
                                       {2, 4}, {4, 16}};
  for (const auto& c : cases) {
    const std::vector<std::string> golden = ReadLines(GoldenPath(c.golden));
    ASSERT_GT(golden.size(), 0u) << c.golden;
    for (const auto& [left_shards, shards] : plans) {
      for (const int threads : {1, 8}) {
        SlimConfig config;
        config.candidates = c.kind;
        config.left_shards = left_shards;
        config.shards = shards;
        config.threads = threads;
        const auto result =
            SlimLinker(config).LinkSharded(A(), B());
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(FormatLinks(result->links), golden)
            << c.golden << " left_shards=" << left_shards
            << " shards=" << shards << " threads=" << threads;
      }
    }
  }
}

}  // namespace
}  // namespace slim
